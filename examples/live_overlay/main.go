// live_overlay runs the paper's testbed experiments (§2.3, Figs 4-6)
// with real TCP nodes on localhost:
//
//  1. The A -> B -> C pipeline: agent A floods peer B beyond its
//     processing capacity; observer C counts what B still forwards —
//     the saturation and drop-rate behaviour of Figures 5 and 6.
//  2. A DD-POLICE-protected star: the hub detects the flooding agent
//     via buddy-group Neighbor_Traffic reports and disconnects it with
//     a Bye(451).
package main

import (
	"fmt"
	"log"
	"time"

	"ddpolice/internal/gnet"
	"ddpolice/internal/police"
)

func main() {
	pipeline()
	defended()
}

// pipeline reproduces the Fig 5/6 measurement at 1/10 the paper's rate
// so it finishes in seconds: B's capacity is 1,500 q/min and A offers
// ~2,900 q/min, so B should drop ~48% — the paper's testbed saw 47% at
// 15k capacity / 29k offered.
func pipeline() {
	fmt.Println("== testbed pipeline A -> B -> C (Figs 5-6, scaled 1/10) ==")
	mk := func(name string, id int32, capacity float64) *gnet.Node {
		cfg := gnet.DefaultConfig(name)
		cfg.NodeID = id
		cfg.CapacityPerMin = capacity
		cfg.Burst = 10
		cfg.Seed = uint64(id)
		n, err := gnet.NewNode(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	a := mk("A", 1, 1e9)
	b := mk("B", 2, 1500)
	c := mk("C", 3, 1e9)
	defer a.Close()
	defer b.Close()
	defer c.Close()
	if err := a.Connect(b.Addr()); err != nil {
		log.Fatal(err)
	}
	if err := b.Connect(c.Addr()); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	offeredPerMin := 2900.0
	interval := time.Duration(float64(time.Minute) / offeredPerMin)
	deadline := time.Now().Add(5 * time.Second)
	ticker := time.NewTicker(interval)
	offered := 0
	for time.Now().Before(deadline) {
		<-ticker.C
		a.SendRawQuery(fmt.Sprintf("bogus-%d", offered))
		offered++
	}
	ticker.Stop()
	time.Sleep(300 * time.Millisecond)

	st := b.Stats()
	total := st.QueriesProcessed + st.QueriesDropped
	fmt.Printf("A offered %d queries; B processed %d, dropped %d (%.0f%%); C received %d\n",
		offered, st.QueriesProcessed, st.QueriesDropped,
		float64(st.QueriesDropped)/float64(total)*100,
		c.Stats().QueriesReceived)
}

// defended runs a DD-POLICE star: three good peers and one agent
// around a hub, with shortened monitoring windows so the detection
// plays out in seconds.
func defended() {
	fmt.Println("\n== DD-POLICE live detection ==")
	pcfg := police.DefaultConfig()
	pcfg.Q0 = 10 // scaled-down good-peer issuing bound
	pcfg.WarnThreshold = 50
	mk := func(name string, id int32) *gnet.Node {
		cfg := gnet.DefaultConfig(name)
		cfg.NodeID = id
		cfg.Seed = uint64(id)
		cfg.Police = &pcfg
		cfg.MinuteLength = 500 * time.Millisecond
		n, err := gnet.NewNode(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	hub := mk("hub", 1)
	good1 := mk("good1", 2)
	good2 := mk("good2", 3)
	agent := mk("agent", 66)
	defer hub.Close()
	defer good1.Close()
	defer good2.Close()
	defer agent.Close()
	for _, n := range []*gnet.Node{good1, good2, agent} {
		if err := n.Connect(hub.Addr()); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)

	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(2 * time.Millisecond) // ~500 bogus q/s
		defer ticker.Stop()
		i := 0
		for {
			select {
			case <-ticker.C:
				agent.SendRawQuery(fmt.Sprintf("attack-%d", i))
				i++
			case <-stop:
				return
			}
		}
	}()

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if ds := hub.Stats().Disconnects; len(ds) > 0 {
			close(stop)
			fmt.Printf("hub disconnected the agent: %s\n", ds[0].Reason)
			fmt.Printf("remaining hub neighbors: %v (good peers kept)\n", hub.Neighbors())
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	close(stop)
	fmt.Println("no detection within deadline (unexpected)")
}
