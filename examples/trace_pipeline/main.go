// trace_pipeline walks the paper's §2.3 data path end to end, entirely
// in-process: synthesize a query trace like the one the monitoring
// super-node captured (13M queries over 24h, Zipf-popular keywords),
// analyze it (rates, popularity fit), and replay its head through the
// message-level simulator the way the DDoS-agent prototype replays a
// log file.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"ddpolice/internal/eventsim"
	"ddpolice/internal/msgsim"
	"ddpolice/internal/overlay"
	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
	"ddpolice/internal/workload"
)

func main() {
	const peers = 400
	src := rng.New(7)

	// 1. Synthesize a 10-minute trace at the paper's 0.3 queries/min/peer.
	catCfg := workload.DefaultCatalogConfig()
	catCfg.NumObjects = 2000
	cat, err := workload.NewCatalog(catCfg, peers, src)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	tw := workload.NewTraceWriter(&buf, false)
	n, err := workload.GenerateTrace(tw, cat, peers, 0.3, 600, src)
	if err != nil {
		log.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d queries over 10 minutes from %d peers (%d bytes)\n",
		n, peers, buf.Len())

	// 2. Analyze: recover the popularity exponent from the raw log.
	counts := make([]uint64, catCfg.NumObjects)
	tr, err := workload.NewTraceReader(bytes.NewReader(buf.Bytes()), false)
	if err != nil {
		log.Fatal(err)
	}
	var records []workload.TraceRecord
	for {
		rec, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		counts[rec.Object]++
		records = append(records, rec)
	}
	if s, err := workload.FitZipf(counts); err == nil {
		fmt.Printf("fitted Zipf exponent: %.2f (configured %.2f; Gnutella traces [16]: ~0.8)\n",
			s, catCfg.ZipfExponent)
	}

	// 3. Replay through the message-level simulator on a live overlay.
	g, err := topology.BarabasiAlbert(rng.New(8), peers, 3)
	if err != nil {
		log.Fatal(err)
	}
	ov := overlay.New(g)
	simCfg := msgsim.DefaultConfig()
	sim, err := msgsim.New(ov, simCfg, rng.New(9))
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range records {
		sim.IssueAt(eventsim.Time(rec.TimestampMS)*eventsim.Millisecond,
			rec.Issuer, cat.Holders(rec.Object))
	}
	sim.Run(15 * eventsim.Minute)

	var hits, total int
	var msgs float64
	for _, o := range sim.Outcomes() {
		total++
		msgs += o.QueryMessages
		if o.Hit {
			hits++
		}
	}
	fmt.Printf("replayed %d queries: %.1f%% answered, %.0f messages (%.0f per query)\n",
		total, float64(hits)/float64(total)*100, msgs, msgs/float64(total))
}
