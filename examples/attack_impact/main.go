// attack_impact reproduces the paper's §3.6 finding — "Consequences of
// overlay DDoS attack in P2Ps" — by sweeping the number of compromised
// peers and measuring how an *undefended* flooding-based system decays:
// traffic multiplies, response time inflates, and most queries fail.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ddpolice"
)

func main() {
	base := ddpolice.DefaultConfig()
	base.NumPeers = 800
	base.DurationSec = 480
	base.AttackStartSec = 60

	baseline, err := ddpolice.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "agents\ttraffic (x baseline)\tresponse (x baseline)\tsuccess (%)\tfailed queries (%)")
	fmt.Fprintf(w, "0\t1.00\t1.00\t%.1f\t%.1f\n",
		baseline.OverallSuccess*100, (1-baseline.OverallSuccess)*100)
	for _, agents := range []int{1, 2, 4, 8, 16} {
		cfg := base
		cfg.NumAgents = agents
		r, err := ddpolice.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.1f\t%.1f\n",
			agents,
			r.MeanTraffic/baseline.MeanTraffic,
			r.MeanResponseTime/baseline.MeanResponseTime,
			r.OverallSuccess*100,
			(1-r.OverallSuccess)*100)
	}
	w.Flush()
	fmt.Println("\nThe paper's headline (at 10x our scale): tens of agents double the")
	fmt.Println("traffic, and at the largest populations most queries fail outright.")
}
