// structured_comparison runs the paper's §5 future-work question: what
// does the same overlay DDoS attack do to a structured (Chord-style)
// P2P system? Flooding amplifies every bogus query by the flood-ball
// size; a DHT lookup costs O(log n) hops, so the attacker's leverage
// collapses.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ddpolice"
)

func main() {
	scale := ddpolice.QuickScale()
	scale.NumPeers = 800
	scale.DurationSec = 360
	scale.AgentCounts = []int{0, 2, 4, 8, 16}

	pts, err := ddpolice.StructuredStudy(scale)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "agents\tflooding (Gnutella) success %\tDHT (Chord) success %\tDHT hops")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\n",
			p.Agents, p.UnstructuredSuccess*100, p.StructuredSuccess*100, p.StructuredMeanHops)
	}
	w.Flush()
	fmt.Println("\nEach bogus request costs the DHT ~log2(n)/2 node-visits instead of")
	fmt.Println("an O(coverage) flood: the saturation knee moves out by roughly the")
	fmt.Println("amplification ratio, which is why flooding-based search is the")
	fmt.Println("paper's vulnerable case.")
}
