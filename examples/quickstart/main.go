// Quickstart: simulate an unstructured P2P system, hit it with overlay
// flooding DDoS agents, and defend it with DD-POLICE.
package main

import (
	"fmt"
	"log"

	"ddpolice"
)

func main() {
	// A small overlay so this runs in a second or two.
	cfg := ddpolice.DefaultConfig()
	cfg.NumPeers = 600
	cfg.DurationSec = 600 // 10 simulated minutes
	cfg.AttackStartSec = 120
	cfg.NumAgents = 6 // 1% of peers are DDoS agents

	undefended, err := ddpolice.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.PoliceEnabled = true // same attack, now with DD-POLICE
	defended, err := ddpolice.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("overlay DDoS with", cfg.NumAgents, "agents on", cfg.NumPeers, "peers:")
	fmt.Printf("  undefended: success %.1f%%, response %.3fs, traffic %.0f msgs/min\n",
		undefended.OverallSuccess*100, undefended.MeanResponseTime, undefended.MeanTraffic)
	fmt.Printf("  DD-POLICE:  success %.1f%%, response %.3fs, traffic %.0f msgs/min\n",
		defended.OverallSuccess*100, defended.MeanResponseTime, defended.MeanTraffic)
	fmt.Printf("  detections: %d disconnect decisions; %d/%d agents identified; %d good peers wrongly cut\n",
		defended.Detections, cfg.NumAgents-defended.FalsePositives, cfg.NumAgents,
		defended.FalseNegatives)

	fmt.Println("\nper-minute success rate (S(t)):")
	for minute, s := range defended.SuccessSeries {
		bar := ""
		for i := 0; i < int(s*40); i++ {
			bar += "#"
		}
		fmt.Printf("  min %2d %5.1f%% %s\n", minute, s*100, bar)
	}
}
