// defense_tuning explores the paper's central deployment question: how
// to pick the cut threshold CT (§3.7 / Figures 12-14). Small CT reacts
// fast but wrongly disconnects good peers; large CT spares good peers
// but lets borderline agents (high-degree or bandwidth-capped) escape.
// The paper recommends CT in [5, 7].
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ddpolice"
)

func main() {
	scale := ddpolice.QuickScale()
	scale.NumPeers = 800
	scale.DurationSec = 600
	scale.TimelineAgents = 8
	scale.CutThresholds = []float64{1, 2, 3, 5, 7, 10, 15}

	pts, err := ddpolice.Fig13And14(scale)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CT\tgood peers wrongly cut\tagents missed\tfalse judgment\trecovery (min)\tstable damage (%)")
	bestCT, bestFJ := 0.0, 1<<30
	for _, p := range pts {
		rec := fmt.Sprint(p.RecoveryMinutes)
		if p.RecoveryMinutes < 0 {
			rec = "never"
		}
		fmt.Fprintf(w, "%g\t%d\t%d\t%d\t%s\t%.1f\n",
			p.CutThreshold, p.FalseNegatives, p.FalsePositives,
			p.FalseJudgment, rec, p.StableDamage)
		if p.FalseJudgment < bestFJ {
			bestFJ, bestCT = p.FalseJudgment, p.CutThreshold
		}
	}
	w.Flush()
	fmt.Printf("\nlowest false judgment at CT = %g (the paper lands on CT in [5,7])\n", bestCT)

	// Show the Fig 12 dynamic at two contrasting thresholds.
	scale.TimelineCTs = []float64{3, 10}
	tl, err := ddpolice.Fig12(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndamage rate D(t) by minute:")
	for _, v := range tl {
		fmt.Printf("  %-14s", v.Label)
		for _, d := range v.Damage {
			fmt.Printf(" %5.1f", d)
		}
		fmt.Println()
	}
}
