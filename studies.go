package ddpolice

// Extension studies beyond the paper's figures: DD-POLICE-r (§3.5
// promises r > 1), the §3.1 lying-peer countermeasure, and ablations of
// the modeling decisions DESIGN.md calls out.

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"ddpolice/internal/capacity"
	"ddpolice/internal/chord"
	"ddpolice/internal/faults"
	"ddpolice/internal/journal"
	"ddpolice/internal/metrics"
	"ddpolice/internal/overload"
	"ddpolice/internal/rng"
)

// RadiusPoint compares DD-POLICE-r variants.
type RadiusPoint struct {
	Radius          int
	Detections      int
	FalseNegatives  int
	FalsePositives  int
	ListMessages    uint64
	Success         float64
	RecoveryMinutes int
}

// RadiusStudy contrasts DD-POLICE-1 with DD-POLICE-2 under heavy churn:
// r=2 relays neighbor lists one hop further, so buddy-group views
// survive a missed exchange at the cost of more control traffic (the
// §3.5 motivation for r > 1).
func RadiusStudy(scale Scale) ([]RadiusPoint, error) {
	base := scale.baseConfig()
	// Heavy churn is where the radius matters.
	base.Churn.MeanLifetime = 300
	base.Churn.StddevLifetime = 70
	base.Churn.MeanOffline = 300
	baseline, err := scale.run(base)
	if err != nil {
		return nil, err
	}
	out := make([]RadiusPoint, 0, 2)
	for _, r := range []int{1, 2} {
		cfg := base
		cfg.NumAgents = scale.TimelineAgents
		cfg.PoliceEnabled = true
		cfg.Police.Radius = r
		res, err := scale.run(cfg)
		if err != nil {
			return nil, err
		}
		dmg := metrics.DamageSeries(baseline.SuccessSeries, res.SuccessSeries)
		rec, err := metrics.RecoveryTime(dmg, 20, 15)
		if err != nil {
			rec = 0
		}
		out = append(out, RadiusPoint{
			Radius:          r,
			Detections:      res.Detections,
			FalseNegatives:  res.FalseNegatives,
			FalsePositives:  res.FalsePositives,
			ListMessages:    res.Overhead.NeighborListMsgs,
			Success:         res.OverallSuccess,
			RecoveryMinutes: rec,
		})
	}
	return out, nil
}

// LiarPoint is one row of the lying-peer study.
type LiarPoint struct {
	Label          string
	Detections     int
	FalsePositives int
	Success        float64
	VerifyMsgs     uint64
}

// LiarStudy evaluates the §3.1 countermeasure: agents fabricate
// neighbor-list entries; with VerifyLists enabled, receivers confirm
// each claim with the named peer and disconnect inconsistent liars.
func LiarStudy(scale Scale) ([]LiarPoint, error) {
	rows := []struct {
		label  string
		lie    bool
		verify bool
	}{
		{"honest lists", false, false},
		{"lying agents, no verification", true, false},
		{"lying agents + verification", true, true},
	}
	out := make([]LiarPoint, 0, len(rows))
	for _, row := range rows {
		cfg := scale.baseConfig()
		cfg.NumAgents = scale.TimelineAgents
		cfg.PoliceEnabled = true
		cfg.AgentsLieAboutLists = row.lie
		cfg.Police.VerifyLists = row.verify
		res, err := scale.run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, LiarPoint{
			Label:          row.label,
			Detections:     res.Detections,
			FalsePositives: res.FalsePositives,
			Success:        res.OverallSuccess,
			VerifyMsgs:     res.Overhead.VerifyMsgs,
		})
	}
	return out, nil
}

// BaselinePoint compares defense strategies against the same attack.
type BaselinePoint struct {
	Label          string
	Success        float64
	Response       float64
	Detections     int
	FalseNegatives int
}

// BaselineDefenseStudy contrasts DD-POLICE with the related-work
// baseline the paper singles out (§4, reference [21]): application-
// layer load balancing that gives every connection a fair share of a
// peer's capacity. The paper argues the survival approach "could be
// less effective when the number of DDoS agents is getting large"
// because it never removes the attackers; DD-POLICE does.
func BaselineDefenseStudy(scale Scale) ([]BaselinePoint, error) {
	rows := []struct {
		label  string
		mutate func(*Config)
	}{
		{"no defense", func(*Config) {}},
		{"fair-share drop [21]", func(c *Config) { c.FairShareDrop = true }},
		{"DD-POLICE", func(c *Config) { c.PoliceEnabled = true }},
		{"DD-POLICE + fair-share", func(c *Config) { c.PoliceEnabled = true; c.FairShareDrop = true }},
	}
	out := make([]BaselinePoint, 0, len(rows))
	for _, row := range rows {
		cfg := scale.baseConfig()
		cfg.NumAgents = scale.TimelineAgents
		row.mutate(&cfg)
		r, err := scale.run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, BaselinePoint{
			Label:          row.label,
			Success:        r.OverallSuccess,
			Response:       r.MeanResponseTime,
			Detections:     r.Detections,
			FalseNegatives: r.FalseNegatives,
		})
	}
	return out, nil
}

// AblationPoint is one modeling-decision ablation row.
type AblationPoint struct {
	Label          string
	Success        float64
	SuccessNoDef   float64
	Detections     int
	FalseNegatives int
	FalsePositives int
}

// AblationStudy re-runs the 10-agent scenario with each calibrated
// modeling decision toggled, quantifying how load-bearing it is:
//
//   - "default": the calibrated operating point;
//   - "ideal counters": the paper's forward-everything monitoring plane
//     (breaks detection; DESIGN.md finding 1);
//   - "paper capacity 10k": the literal 10,000 q/min processing rate
//     (masks agents behind background flows; finding 1);
//   - "ttl 7": full-coverage floods (cliff damage; finding 2);
//   - "broadcast agents": agents flood the same stream to all
//     neighbors instead of the Fig 1 spray;
//   - "no churn": a static population.
func AblationStudy(scale Scale) ([]AblationPoint, error) {
	type variant struct {
		label  string
		mutate func(*Config)
	}
	variants := []variant{
		{"default", func(*Config) {}},
		{"ideal counters", func(c *Config) { c.IdealCounters = true }},
		{"paper capacity 10k", func(c *Config) { c.GoodCapacityPerMin = 10000 }},
		{"ttl 7", func(c *Config) { c.TTL = 7; c.Agent.TTL = 7 }},
		{"broadcast agents", func(c *Config) { c.Agent.Mode = broadcastMode }},
		{"no churn", func(c *Config) { c.ChurnEnabled = false }},
	}
	out := make([]AblationPoint, 0, len(variants))
	for _, v := range variants {
		undef := scale.baseConfig()
		undef.NumAgents = scale.TimelineAgents
		v.mutate(&undef)
		ru, err := scale.run(undef)
		if err != nil {
			return nil, fmt.Errorf("%s (undefended): %w", v.label, err)
		}
		def := undef
		def.PoliceEnabled = true
		rd, err := scale.run(def)
		if err != nil {
			return nil, fmt.Errorf("%s (defended): %w", v.label, err)
		}
		out = append(out, AblationPoint{
			Label:          v.label,
			Success:        rd.OverallSuccess,
			SuccessNoDef:   ru.OverallSuccess,
			Detections:     rd.Detections,
			FalseNegatives: rd.FalseNegatives,
			FalsePositives: rd.FalsePositives,
		})
	}
	return out, nil
}

// BlacklistPoint compares DD-POLICE with and without the re-join
// blacklist extension.
type BlacklistPoint struct {
	Label        string
	StableDamage float64
	Detections   int
	Success      float64
}

// BlacklistStudy measures the §5 future-work extension: the paper
// notes that nothing stops a disconnected agent from rejoining and
// launching another round. In the simulator that re-entry happens every
// time a previously-attacked good peer churns (its cuts are reset), and
// it is what keeps the residual damage in Figure 12 above zero. A
// blacklist lets observers cut convicted suspects on sight.
func BlacklistStudy(scale Scale) ([]BlacklistPoint, error) {
	base := scale.baseConfig()
	baseline, err := scale.run(base)
	if err != nil {
		return nil, err
	}
	rows := []struct {
		label string
		secs  float64
	}{
		{"DD-POLICE (paper: no memory)", 0},
		{"DD-POLICE + 10-minute blacklist", 600},
	}
	out := make([]BlacklistPoint, 0, len(rows))
	for _, row := range rows {
		cfg := base
		cfg.NumAgents = scale.TimelineAgents
		cfg.PoliceEnabled = true
		cfg.Police.BlacklistSec = row.secs
		r, err := scale.run(cfg)
		if err != nil {
			return nil, err
		}
		dmg := metrics.DamageSeries(baseline.SuccessSeries, r.SuccessSeries)
		out = append(out, BlacklistPoint{
			Label:        row.label,
			StableDamage: metrics.MeanTail(dmg, 0.3),
			Detections:   r.Detections,
			Success:      r.OverallSuccess,
		})
	}
	return out, nil
}

// StructuredPoint compares attack damage on unstructured flooding vs a
// Chord-style structured overlay at the same agent count.
type StructuredPoint struct {
	Agents              int
	UnstructuredSuccess float64
	StructuredSuccess   float64
	StructuredMeanHops  float64
}

// StructuredStudy realizes the paper's other §5 future-work direction:
// "studying overlay DDoS in structured P2P systems [40]". The same
// agents (20k bogus requests/min each) flood a Chord ring whose nodes
// have the same per-peer capacity as the unstructured simulator's
// peers. A DHT lookup costs O(log n) hops instead of an O(coverage)
// flood, so the attacker's amplification — and the damage — collapses.
func StructuredStudy(scale Scale) ([]StructuredPoint, error) {
	base := scale.baseConfig()
	out := make([]StructuredPoint, 0, len(scale.AgentCounts))
	for _, agents := range scale.AgentCounts {
		// Unstructured reference: undefended flooding system.
		cfg := base
		cfg.NumAgents = agents
		un, err := scale.run(cfg)
		if err != nil {
			return nil, err
		}
		// Structured run at matching size, capacity, rates and duration.
		st, err := runChord(scale, agents)
		if err != nil {
			return nil, err
		}
		out = append(out, StructuredPoint{
			Agents:              agents,
			UnstructuredSuccess: un.OverallSuccess,
			StructuredSuccess:   st.success,
			StructuredMeanHops:  st.meanHops,
		})
	}
	return out, nil
}

type chordOutcome struct {
	success  float64
	meanHops float64
}

func runChord(scale Scale, agents int) (chordOutcome, error) {
	src := rng.New(scale.Seed)
	ccfg := chord.DefaultConfig()
	ccfg.CapacityPerMin = capacity.EffectiveForwardPerMin
	ring, err := chord.New(scale.NumPeers, ccfg, src.Split())
	if err != nil {
		return chordOutcome{}, err
	}
	agentIDs := src.Perm(scale.NumPeers)[:agents]
	good := src.Split()
	bogus := src.Split()
	const goodPerMin = 0.3
	agentPerTick := capacity.BadPeerIssuePerMin / 60
	var issued, ok uint64
	for t := 0; t < scale.DurationSec; t++ {
		ring.Tick()
		if t >= scale.AttackStartSec {
			for _, a := range agentIDs {
				for i := 0; i < agentPerTick; i++ {
					ring.Lookup(a, chord.NodeID(bogus.Uint64()))
				}
			}
		}
		n := good.Poisson(goodPerMin / 60 * float64(scale.NumPeers))
		for i := 0; i < n; i++ {
			issued++
			if res := ring.Lookup(good.Intn(scale.NumPeers), chord.NodeID(good.Uint64())); res.OK {
				ok++
			}
		}
	}
	outcome := chordOutcome{meanHops: ring.Stats().MeanHops}
	if issued > 0 {
		outcome.success = float64(ok) / float64(issued)
	}
	return outcome, nil
}

// DetectPoint is one suspect's detection timeline, reconstructed from
// the event journal: when its flood became visible, when the first
// observer crossed the warning threshold, when the first full
// Neighbor_Traffic round completed, and when the first edge was cut.
type DetectPoint struct {
	Suspect      int
	Agent        bool    // true when the suspect is a DDoS agent
	FloodStart   float64 // attack onset (agents) or first warning (good peers)
	FirstWarning float64
	QuorumAt     float64 // first completed indicator computation
	CutAt        float64
	LatencySec   float64 // CutAt - FloodStart
	Reports      int     // nt_report events before the first cut
	Timeouts     int     // nt_timeout events before the first cut
}

// DetectCDFPoint is one step of the detection-latency CDF.
type DetectCDFPoint struct {
	LatencySec float64
	Fraction   float64
}

// DetectReport is the journal-driven detection-pipeline study output.
type DetectReport struct {
	Points     []DetectPoint
	CDF        []DetectCDFPoint
	NTMessages uint64  // Neighbor_Traffic messages sent over the run
	Cuts       int     // cut events in the journal
	NTPerCut   float64 // NT overhead amortized per cut
	Events     int     // journal occupancy after the run
	Dropped    uint64  // events lost to the ring bound
}

// DetectTimelines reconstructs per-suspect detection timelines from a
// journal's events. Only suspects that were actually cut yield a
// point; counts cover the window up to each suspect's first cut, so a
// later re-detection round does not inflate the first one's cost.
func DetectTimelines(events []journal.Event) []DetectPoint {
	attackAt := map[int64]float64{}
	for _, e := range events {
		if e.Type == journal.TypeAttackStart {
			attackAt[e.Peer] = e.T
		}
	}
	type track struct {
		warning, quorum, cut float64
		hasWarn, hasQuorum   bool
		reports, timeouts    int
	}
	tracks := map[int64]*track{}
	at := func(id int64) *track {
		tr, ok := tracks[id]
		if !ok {
			tr = &track{cut: -1}
			tracks[id] = tr
		}
		return tr
	}
	for _, e := range events {
		tr := at(e.Peer)
		if tr.cut >= 0 {
			continue // timeline frozen at the first cut
		}
		switch e.Type {
		case journal.TypeWarning:
			if !tr.hasWarn {
				tr.warning, tr.hasWarn = e.T, true
			}
		case journal.TypeIndicator:
			if !tr.hasQuorum {
				tr.quorum, tr.hasQuorum = e.T, true
			}
		case journal.TypeNTReport:
			tr.reports++
		case journal.TypeNTTimeout:
			tr.timeouts++
		case journal.TypeCut:
			tr.cut = e.T
		}
	}
	ids := make([]int64, 0, len(tracks))
	for id, tr := range tracks {
		if tr.cut >= 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]DetectPoint, 0, len(ids))
	for _, id := range ids {
		tr := tracks[id]
		p := DetectPoint{
			Suspect:      int(id),
			FirstWarning: tr.warning,
			QuorumAt:     tr.quorum,
			CutAt:        tr.cut,
			Reports:      tr.reports,
			Timeouts:     tr.timeouts,
		}
		if start, isAgent := attackAt[id]; isAgent {
			p.Agent = true
			p.FloodStart = start
		} else {
			// A collateral good peer never "started flooding"; its
			// pipeline latency runs from the first warning instead.
			p.FloodStart = tr.warning
		}
		p.LatencySec = p.CutAt - p.FloodStart
		out = append(out, p)
	}
	return out
}

// detectCDF turns the per-suspect latencies into an empirical CDF.
func detectCDF(pts []DetectPoint) []DetectCDFPoint {
	lat := make([]float64, 0, len(pts))
	for _, p := range pts {
		lat = append(lat, p.LatencySec)
	}
	sort.Float64s(lat)
	out := make([]DetectCDFPoint, 0, len(lat))
	for i, v := range lat {
		out = append(out, DetectCDFPoint{
			LatencySec: v,
			Fraction:   float64(i+1) / float64(len(lat)),
		})
	}
	return out
}

// DetectStudy runs one seeded attack scenario with the event journal
// attached and reconstructs the detection pipeline's behaviour from
// it: per-suspect timelines, the detection-latency CDF, and the
// Neighbor_Traffic overhead amortized per cut. It runs a single
// simulation (not a seed average) because the journal narrates one
// run; scale.Seed picks which.
func DetectStudy(scale Scale) (*DetectReport, error) {
	cfg := scale.baseConfig()
	cfg.NumAgents = scale.TimelineAgents
	cfg.PoliceEnabled = true
	jr := journal.New(1 << 16)
	cfg.Journal = jr
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	events := jr.Events()
	cuts := 0
	for _, e := range events {
		if e.Type == journal.TypeCut {
			cuts++
		}
	}
	rep := &DetectReport{
		Points:     DetectTimelines(events),
		NTMessages: res.Overhead.NeighborTrafficMsgs,
		Cuts:       cuts,
		Events:     jr.Len(),
		Dropped:    jr.Dropped(),
	}
	rep.CDF = detectCDF(rep.Points)
	if cuts > 0 {
		rep.NTPerCut = float64(rep.NTMessages) / float64(cuts)
	}
	return rep, nil
}

// FaultPoint is one cell of the fault-plane sweep: DD-POLICE judgment
// quality at a given injected control-message loss rate under a given
// churn regime.
type FaultPoint struct {
	ControlLoss    float64
	Churn          string
	Detections     int
	FalseNegatives int
	FalsePositives int
	FalseJudgment  int // FN + FP, the paper's combined error metric
	Success        float64
}

// FaultsStudy sweeps injected control loss against churn regimes. The
// paper's §3.3 claim is that treating missing Neighbor_Traffic reports
// as zeros keeps judgments safe when control messages are lost; this
// study quantifies how far that holds as the fault plane degrades the
// control channel and crash churn leaves stale buddy-group state
// behind (a crashed peer never sends the leave-side notifications).
func FaultsStudy(scale Scale, losses []float64) ([]FaultPoint, error) {
	churns := []struct {
		label  string
		mutate func(*Config)
	}{
		{"none", func(c *Config) { c.ChurnEnabled = false }},
		{"paper", func(c *Config) { c.ChurnEnabled = true }},
		{"crash-heavy", func(c *Config) {
			c.ChurnEnabled = true
			c.Churn.MeanLifetime = 300
			c.Churn.StddevLifetime = 70
			c.Churn.MeanOffline = 300
			c.Churn.CrashFraction = 0.5
		}},
	}
	out := make([]FaultPoint, 0, len(churns)*len(losses))
	for _, ch := range churns {
		for _, loss := range losses {
			cfg := scale.baseConfig()
			cfg.NumAgents = scale.TimelineAgents
			cfg.PoliceEnabled = true
			ch.mutate(&cfg)
			if loss > 0 {
				cfg.Faults = &faults.Schedule{ControlLoss: loss}
			}
			res, err := scale.run(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, FaultPoint{
				ControlLoss:    loss,
				Churn:          ch.label,
				Detections:     res.Detections,
				FalseNegatives: res.FalseNegatives,
				FalsePositives: res.FalsePositives,
				FalseJudgment:  res.FalseNegatives + res.FalsePositives,
				Success:        res.OverallSuccess,
			})
		}
	}
	return out, nil
}

// OverloadPoint is one cell of the overload-resilience sweep: control
// delivery, query shedding and time-to-cut at a given
// offered-over-capacity factor, with and without the overload plane.
type OverloadPoint struct {
	Factor          float64 // agent rate as a multiple of peer capacity
	Plane           bool    // overload-resilience plane enabled
	ControlDelivery float64 // control messages delivered / sent
	QueryShedRate   float64 // query messages dropped / offered
	TimeToCutSec    float64 // first cut after attack start; -1 = never
	Detections      int
	Degraded        int // degraded-minute transitions journaled
}

// OverloadStudy sweeps the attack's offered-over-capacity factor with
// the overload-resilience plane off and on. The PR 7 claim it
// substantiates: as agents push 1x..10x a peer's processing capacity,
// the class-aware control reserve keeps DD-POLICE delivery >= 95% and
// time-to-cut bounded (degrading gracefully with load), while the
// unprotected control plane rides the same saturated links as the
// flood and loses up to ControlLossCap of its messages.
func OverloadStudy(scale Scale, factors []float64) ([]OverloadPoint, error) {
	out := make([]OverloadPoint, 0, 2*len(factors))
	for _, f := range factors {
		for _, plane := range []bool{false, true} {
			cfg := scale.baseConfig()
			cfg.NumAgents = scale.TimelineAgents
			cfg.PoliceEnabled = true
			cfg.Agent.RatePerMin = f * cfg.GoodCapacityPerMin
			if plane {
				cfg.Overload = &overload.SimPlane{}
			}
			jr := journal.New(1 << 16)
			cfg.Journal = jr
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			var msgs, drops float64
			for _, m := range res.Minutes {
				msgs += m.QueryMsgs
				drops += m.CapacityDrop
			}
			p := OverloadPoint{
				Factor:          f,
				Plane:           plane,
				ControlDelivery: 1,
				TimeToCutSec:    -1,
				Detections:      res.Detections,
			}
			if msgs+drops > 0 {
				p.QueryShedRate = drops / (msgs + drops)
			}
			if sent := res.Overhead.Total(); sent > 0 {
				p.ControlDelivery = 1 - float64(res.ControlLost)/float64(sent)
			}
			for _, e := range jr.Events() {
				switch e.Type {
				case journal.TypeCut:
					if t := e.T - float64(cfg.AttackStartSec); p.TimeToCutSec < 0 || t < p.TimeToCutSec {
						p.TimeToCutSec = t
					}
				case journal.TypeDegraded:
					p.Degraded++
				}
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// ScalePoint is one cell of the peers-vs-tick-latency scale study: the
// measured per-tick cost of the steady (no-churn, undefended) tick loop
// at one overlay size.
type ScalePoint struct {
	Peers         int
	NsPerTick     float64
	AllocsPerTick float64
	BytesPerTick  float64
	PeersPerSec   float64 // peers advanced per wall-clock second
}

// ScaleStudy measures how the tick loop's wall-clock and allocation
// cost grow with overlay size — the dense-index scale claim made
// concrete: per-tick cost must grow with the active-peer count and the
// query workload, not with any hidden O(N) rescan. Each overlay size
// runs one steady simulation of durationSec simulated seconds; the
// reported figures are whole-run means (setup amortized), so compare
// trends across sizes, not absolute ns across machines.
func ScaleStudy(peerCounts []int, durationSec int, seed uint64) ([]ScalePoint, error) {
	out := make([]ScalePoint, 0, len(peerCounts))
	for _, peers := range peerCounts {
		cfg := DefaultConfig()
		cfg.NumPeers = peers
		cfg.DurationSec = durationSec
		cfg.ChurnEnabled = false
		cfg.Seed = seed
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		if _, err := Run(cfg); err != nil {
			return nil, err
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&m1)
		ticks := float64(durationSec)
		p := ScalePoint{
			Peers:         peers,
			NsPerTick:     float64(elapsed.Nanoseconds()) / ticks,
			AllocsPerTick: float64(m1.Mallocs-m0.Mallocs) / ticks,
			BytesPerTick:  float64(m1.TotalAlloc-m0.TotalAlloc) / ticks,
		}
		p.PeersPerSec = float64(peers) / (p.NsPerTick / 1e9)
		out = append(out, p)
	}
	return out, nil
}
