package ddpolice

import (
	"bytes"
	"strings"
	"testing"

	"ddpolice/internal/capacity"
)

func svgOK(t *testing.T, name string, err error, buf *bytes.Buffer) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "</svg>") {
		t.Fatalf("%s: not an SVG document", name)
	}
	if strings.Contains(s, "NaN") {
		t.Fatalf("%s: NaN leaked into coordinates", name)
	}
}

func TestFigureCharts(t *testing.T) {
	sat := []capacity.SaturationPoint{
		{OfferedPerMin: 1000, ProcessedPerMin: 1000, DropRate: 0},
		{OfferedPerMin: 20000, ProcessedPerMin: 15000, DropRate: 0.25},
		{OfferedPerMin: 29000, ProcessedPerMin: 15000, DropRate: 0.48},
	}
	var buf bytes.Buffer
	svgOK(t, "fig5", Fig5SVG(&buf, sat), &buf)
	buf.Reset()
	svgOK(t, "fig6", Fig6SVG(&buf, sat), &buf)

	sweep := []SweepPoint{
		{Agents: 0, TrafficBaseline: 100, TrafficAttack: 100, TrafficDefended: 100,
			SuccessBaseline: 0.9, SuccessAttack: 0.9, SuccessDefended: 0.9,
			ResponseBaseline: 0.2, ResponseAttack: 0.2, ResponseDefended: 0.2},
		{Agents: 10, TrafficBaseline: 100, TrafficAttack: 450, TrafficDefended: 170,
			SuccessBaseline: 0.9, SuccessAttack: 0.5, SuccessDefended: 0.8,
			ResponseBaseline: 0.2, ResponseAttack: 0.48, ResponseDefended: 0.22},
	}
	buf.Reset()
	svgOK(t, "fig9", Fig9SVG(&buf, sweep), &buf)
	if c := strings.Count(buf.String(), "<polyline"); c != 3 {
		t.Fatalf("fig9 series = %d, want 3", c)
	}
	buf.Reset()
	svgOK(t, "fig10", Fig10SVG(&buf, sweep), &buf)
	buf.Reset()
	svgOK(t, "fig11", Fig11SVG(&buf, sweep), &buf)

	buf.Reset()
	tl := []Timeline{
		{Label: "no DD-POLICE", Damage: []float64{0, 50, 48}},
		{Label: "DD-POLICE-3", Damage: []float64{0, 50, 10}},
	}
	svgOK(t, "fig12", Fig12SVG(&buf, tl), &buf)

	cts := []CTPoint{
		{CutThreshold: 1, FalseNegatives: 120, FalseJudgment: 120, RecoveryMinutes: 1},
		{CutThreshold: 10, FalseNegatives: 4, FalsePositives: 2, FalseJudgment: 6, RecoveryMinutes: -1},
	}
	buf.Reset()
	svgOK(t, "fig13", Fig13SVG(&buf, cts), &buf)
	buf.Reset()
	svgOK(t, "fig14", Fig14SVG(&buf, cts), &buf)
}
