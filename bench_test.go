package ddpolice

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its figure's data at QuickScale per iteration, so
// `go test -bench .` (or `make benchgo`) replays the whole evaluation;
// cmd/ddexp runs the same harness at PaperScale and prints the rows.
//
// These benches answer "does the evaluation still reproduce, and how
// long does a figure take" — the pinned perf *trajectory* (fixed
// fixtures, committed BENCH.json, the traversal-cache speedup gate)
// lives in cmd/ddbench, run via `make bench`.

import (
	"testing"
	"time"

	"ddpolice/internal/protocol"
	"ddpolice/internal/rng"
	"ddpolice/internal/sim"
)

// BenchmarkTable1NeighborTrafficCodec measures encoding+decoding the
// Table 1 wire message (43 bytes: 23-byte header + 20-byte body).
func BenchmarkTable1NeighborTrafficCodec(b *testing.B) {
	nt := protocol.NeighborTraffic{
		SourceIP:  [4]byte{10, 0, 0, 1},
		SuspectIP: [4]byte{10, 0, 0, 2},
		Timestamp: 1234567,
		Outgoing:  20000,
		Incoming:  120,
	}
	guid := protocol.NewGUID(rng.New(1))
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = protocol.Encode(buf[:0], guid, 1, 0, nt)
		if _, _, err := protocol.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5ProcessedVsOffered regenerates the Figure 5 saturation
// curve (queries processed/min vs offered/min).
func BenchmarkFig5ProcessedVsOffered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := Fig5And6()
		if err != nil {
			b.Fatal(err)
		}
		if pts[len(pts)-1].ProcessedPerMin < 10000 {
			b.Fatal("saturation plateau missing")
		}
	}
}

// BenchmarkFig6DropRate regenerates the Figure 6 drop-rate curve and
// checks the paper's 47%-at-29k anchor.
func BenchmarkFig6DropRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := Fig5And6()
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		if last.DropRate < 0.4 || last.DropRate > 0.55 {
			b.Fatalf("drop rate at 29k/min = %v, want ~0.47", last.DropRate)
		}
	}
}

// benchSweep shares one Fig 9-11 sweep across the three figure benches
// within a single iteration.
func benchSweep(b *testing.B) []SweepPoint {
	b.Helper()
	pts, err := Fig9To11(QuickScale())
	if err != nil {
		b.Fatal(err)
	}
	return pts
}

// BenchmarkFig9TrafficCost regenerates the traffic-cost-vs-agents
// curves (Figure 9).
func BenchmarkFig9TrafficCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := benchSweep(b)
		last := pts[len(pts)-1]
		if last.TrafficAttack <= last.TrafficBaseline {
			b.Fatal("attack did not inflate traffic")
		}
	}
}

// BenchmarkFig10ResponseTime regenerates the response-time-vs-agents
// curves (Figure 10).
func BenchmarkFig10ResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := benchSweep(b)
		last := pts[len(pts)-1]
		if last.ResponseAttack <= last.ResponseBaseline {
			b.Fatal("attack did not inflate response time")
		}
	}
}

// BenchmarkFig11SuccessRate regenerates the success-rate-vs-agents
// curves (Figure 11).
func BenchmarkFig11SuccessRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := benchSweep(b)
		last := pts[len(pts)-1]
		if last.SuccessAttack >= last.SuccessBaseline {
			b.Fatal("attack did not depress success rate")
		}
		if last.SuccessDefended <= last.SuccessAttack {
			b.Fatal("DD-POLICE did not restore success")
		}
	}
}

// BenchmarkFig12DamageRateTimeline regenerates the damage-rate
// timelines for no-defense and the CT variants (Figure 12).
func BenchmarkFig12DamageRateTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tl, err := Fig12(QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(tl) != 4 {
			b.Fatalf("timelines = %d, want no-defense + 3 CTs", len(tl))
		}
	}
}

// BenchmarkFig13ErrorsVsCT regenerates the error counts across the cut
// threshold sweep (Figure 13).
func BenchmarkFig13ErrorsVsCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := Fig13And14(QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("empty CT sweep")
		}
	}
}

// BenchmarkFig14RecoveryTime regenerates the damage-recovery-time
// curve across the cut threshold sweep (Figure 14).
func BenchmarkFig14RecoveryTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := Fig13And14(QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.RecoveryMinutes < -1 {
				b.Fatal("invalid recovery time")
			}
		}
	}
}

// BenchmarkExchangeFrequencyStudy regenerates the §3.7.1 neighbor-list
// exchange frequency comparison.
func BenchmarkExchangeFrequencyStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := ExchangeFrequencyStudy(QuickScale(), []float64{1, 2, 5})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 4 {
			b.Fatalf("rows = %d, want 3 periodic + event-driven", len(pts))
		}
	}
}

// BenchmarkCheatingStrategies regenerates the §3.4 cheating analysis.
func BenchmarkCheatingStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := CheatingStudy(QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 4 {
			b.Fatalf("rows = %d, want 4 strategies", len(pts))
		}
	}
}

// BenchmarkSimStageBreakdown runs one defended-attack simulation per
// iteration with run telemetry on and reports where the wall-clock
// goes, stage by stage, as <stage>-ns/op custom metrics alongside the
// usual ns/op.
func BenchmarkSimStageBreakdown(b *testing.B) {
	scale := QuickScale()
	cfg := sim.DefaultConfig()
	cfg.Seed = scale.Seed
	cfg.NumPeers = scale.NumPeers
	cfg.DurationSec = scale.DurationSec
	cfg.AttackStartSec = scale.AttackStartSec
	cfg.NumAgents = scale.TimelineAgents
	cfg.PoliceEnabled = true
	cfg.Telemetry = true
	totals := make(map[string]time.Duration)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range r.Stages {
			totals[st.Name] += st.Total
		}
	}
	b.StopTimer()
	for _, name := range sim.StageNames {
		b.ReportMetric(float64(totals[name].Nanoseconds())/float64(b.N), name+"-ns/op")
	}
}
