package ddpolice

// Chart builders: map each experiment's output onto an SVG line chart
// (internal/viz). cmd/ddexp -svg <dir> renders the actual figures.

import (
	"io"

	"ddpolice/internal/capacity"
	"ddpolice/internal/viz"
)

func renderChart(w io.Writer, c *viz.Chart) error { return c.RenderSVG(w) }

// Fig5SVG renders queries processed/min vs offered/min.
func Fig5SVG(w io.Writer, pts []capacity.SaturationPoint) error {
	var x, y []float64
	for _, p := range pts {
		x = append(x, p.OfferedPerMin)
		y = append(y, p.ProcessedPerMin)
	}
	return renderChart(w, &viz.Chart{
		Title:  "Figure 5: queries sent out vs processed",
		XLabel: "offered (queries/min)",
		YLabel: "processed (queries/min)",
		Series: []viz.Series{{Label: "processed", X: x, Y: y}},
	})
}

// Fig6SVG renders the drop rate vs offered rate.
func Fig6SVG(w io.Writer, pts []capacity.SaturationPoint) error {
	var x, y []float64
	for _, p := range pts {
		x = append(x, p.OfferedPerMin)
		y = append(y, p.DropRate*100)
	}
	lo := 0.0
	return renderChart(w, &viz.Chart{
		Title:  "Figure 6: query drop rate vs query density",
		XLabel: "offered (queries/min)",
		YLabel: "drop rate (%)",
		YMin:   &lo,
		Series: []viz.Series{{Label: "drop rate", X: x, Y: y}},
	})
}

// sweepSeries extracts the three scenario curves for one metric.
func sweepSeries(pts []SweepPoint, metric func(SweepPoint) (base, atk, def float64)) []viz.Series {
	var x, b, a, d []float64
	for _, p := range pts {
		pb, pa, pd := metric(p)
		x = append(x, float64(p.Agents))
		b = append(b, pb)
		a = append(a, pa)
		d = append(d, pd)
	}
	return []viz.Series{
		{Label: "no DDoS attack", X: x, Y: b},
		{Label: "DDoS, no defense", X: x, Y: a},
		{Label: "DDoS + DD-POLICE", X: x, Y: d},
	}
}

// Fig9SVG renders traffic cost vs agents.
func Fig9SVG(w io.Writer, pts []SweepPoint) error {
	return renderChart(w, &viz.Chart{
		Title:  "Figure 9: average traffic cost",
		XLabel: "number of DDoS agents",
		YLabel: "messages per minute",
		Series: sweepSeries(pts, func(p SweepPoint) (float64, float64, float64) {
			return p.TrafficBaseline, p.TrafficAttack, p.TrafficDefended
		}),
	})
}

// Fig10SVG renders response time vs agents.
func Fig10SVG(w io.Writer, pts []SweepPoint) error {
	return renderChart(w, &viz.Chart{
		Title:  "Figure 10: average response time",
		XLabel: "number of DDoS agents",
		YLabel: "seconds",
		Series: sweepSeries(pts, func(p SweepPoint) (float64, float64, float64) {
			return p.ResponseBaseline, p.ResponseAttack, p.ResponseDefended
		}),
	})
}

// Fig11SVG renders success rate vs agents.
func Fig11SVG(w io.Writer, pts []SweepPoint) error {
	lo, hi := 0.0, 100.0
	return renderChart(w, &viz.Chart{
		Title:  "Figure 11: average success rate",
		XLabel: "number of DDoS agents",
		YLabel: "success rate (%)",
		YMin:   &lo, YMax: &hi,
		Series: sweepSeries(pts, func(p SweepPoint) (float64, float64, float64) {
			return p.SuccessBaseline * 100, p.SuccessAttack * 100, p.SuccessDefended * 100
		}),
	})
}

// Fig12SVG renders the damage-rate timelines.
func Fig12SVG(w io.Writer, tl []Timeline) error {
	lo := 0.0
	var series []viz.Series
	for _, v := range tl {
		var x []float64
		for m := range v.Damage {
			x = append(x, float64(m))
		}
		series = append(series, viz.Series{Label: v.Label, X: x, Y: v.Damage})
	}
	return renderChart(w, &viz.Chart{
		Title:  "Figure 12: damage rate over time",
		XLabel: "minute",
		YLabel: "damage rate (%)",
		YMin:   &lo,
		Series: series,
	})
}

// Fig13SVG renders the three error curves vs CT.
func Fig13SVG(w io.Writer, pts []CTPoint) error {
	var x, fn, fp, fj []float64
	for _, p := range pts {
		x = append(x, p.CutThreshold)
		fn = append(fn, float64(p.FalseNegatives))
		fp = append(fp, float64(p.FalsePositives))
		fj = append(fj, float64(p.FalseJudgment))
	}
	return renderChart(w, &viz.Chart{
		Title:  "Figure 13: errors vs cut threshold",
		XLabel: "cut threshold CT",
		YLabel: "errors",
		Series: []viz.Series{
			{Label: "false judgment", X: x, Y: fj},
			{Label: "false negative", X: x, Y: fn},
			{Label: "false positive", X: x, Y: fp},
		},
	})
}

// Fig14SVG renders the recovery time vs CT (never-recovered points are
// drawn at the top of the plotted range).
func Fig14SVG(w io.Writer, pts []CTPoint) error {
	maxRec := 1.0
	for _, p := range pts {
		if float64(p.RecoveryMinutes) > maxRec {
			maxRec = float64(p.RecoveryMinutes)
		}
	}
	var x, y []float64
	for _, p := range pts {
		x = append(x, p.CutThreshold)
		if p.RecoveryMinutes < 0 {
			y = append(y, maxRec+1) // sentinel: never recovered
		} else {
			y = append(y, float64(p.RecoveryMinutes))
		}
	}
	lo := 0.0
	return renderChart(w, &viz.Chart{
		Title:  "Figure 14: damage recovery time vs cut threshold",
		XLabel: "cut threshold CT",
		YLabel: "recovery time (min)",
		YMin:   &lo,
		Series: []viz.Series{{Label: "damage recovery time", X: x, Y: y}},
	})
}

// DetectCDFSVG renders the detection-latency CDF reconstructed from
// the event journal (agents and collateral good peers together).
func DetectCDFSVG(w io.Writer, rep *DetectReport) error {
	var x, y []float64
	for _, p := range rep.CDF {
		x = append(x, p.LatencySec)
		y = append(y, p.Fraction)
	}
	lo := 0.0
	return renderChart(w, &viz.Chart{
		Title:  "Detection latency CDF (journal-reconstructed)",
		XLabel: "seconds from flood start to cut",
		YLabel: "fraction of cut suspects",
		YMin:   &lo,
		Series: []viz.Series{{Label: "detection latency", X: x, Y: y}},
	})
}

// FaultsSVG renders the false-judgment surface of the fault-plane
// study: one curve per churn regime, control loss on the x-axis.
func FaultsSVG(w io.Writer, pts []FaultPoint) error {
	series := map[string]*viz.Series{}
	var order []string
	for _, p := range pts {
		s, ok := series[p.Churn]
		if !ok {
			s = &viz.Series{Label: "churn: " + p.Churn}
			series[p.Churn] = s
			order = append(order, p.Churn)
		}
		s.X = append(s.X, p.ControlLoss)
		s.Y = append(s.Y, float64(p.FalseJudgment))
	}
	lo := 0.0
	c := &viz.Chart{
		Title:  "Fault plane: false judgments vs control loss",
		XLabel: "injected control-message loss",
		YLabel: "false judgments (FN + FP)",
		YMin:   &lo,
	}
	for _, k := range order {
		c.Series = append(c.Series, *series[k])
	}
	return renderChart(w, c)
}

// OverloadSVG renders the headline curve of the overload study:
// time-to-cut vs offered-over-capacity factor, one series with the
// overload plane off and one with it on. Points where the agent was
// never cut are omitted from their series.
func OverloadSVG(w io.Writer, pts []OverloadPoint) error {
	var off, on viz.Series
	off.Label, on.Label = "plane off", "plane on"
	for _, p := range pts {
		if p.TimeToCutSec < 0 {
			continue
		}
		s := &off
		if p.Plane {
			s = &on
		}
		s.X = append(s.X, p.Factor)
		s.Y = append(s.Y, p.TimeToCutSec)
	}
	lo := 0.0
	return renderChart(w, &viz.Chart{
		Title:  "Overload plane: time to cut vs offered-over-capacity",
		XLabel: "agent rate / peer capacity",
		YLabel: "time to first cut (s)",
		YMin:   &lo,
		Series: []viz.Series{off, on},
	})
}

// ScaleSVG renders the scale study's headline curve: per-tick
// wall-clock cost vs overlay size. Linear-ish growth is the pass
// condition — a superlinear bend means an O(N) (or worse) rescan crept
// back into the tick loop.
func ScaleSVG(w io.Writer, pts []ScalePoint) error {
	var s viz.Series
	s.Label = "steady tick"
	for _, p := range pts {
		s.X = append(s.X, float64(p.Peers))
		s.Y = append(s.Y, p.NsPerTick/1e6)
	}
	lo := 0.0
	return renderChart(w, &viz.Chart{
		Title:  "Tick latency vs overlay size",
		XLabel: "peers",
		YLabel: "ms per simulated tick",
		YMin:   &lo,
		Series: []viz.Series{s},
	})
}
