// Package ddpolice is a reproduction of "Defending P2Ps from Overlay
// Flooding-based DDoS" (Liu, Liu, Wang, Xiao — ICPP 2007): an
// unstructured (Gnutella-style) P2P simulation substrate, the overlay
// flooding DDoS attack it studies, and the paper's DD-POLICE defense —
// buddy groups, Neighbor_Traffic reports (Table 1) and the
// General/Single indicators of Definitions 2.1-2.3.
//
// The package is a facade over the internal subsystems:
//
//   - internal/sim       — the end-to-end overlay simulator
//   - internal/police    — the DD-POLICE protocol
//   - internal/attack    — DDoS agent models
//   - internal/gnet      — live TCP Gnutella-lite nodes
//   - internal/capacity  — the single-peer saturation model (Figs 5-6)
//
// Quick start:
//
//	cfg := ddpolice.DefaultConfig()
//	cfg.NumAgents = 10
//	cfg.PoliceEnabled = true
//	res, err := ddpolice.Run(cfg)
//
// The Experiment functions regenerate every table and figure of the
// paper's evaluation; cmd/ddexp drives them from the command line and
// bench_test.go exposes each as a testing.B benchmark.
package ddpolice

import (
	"ddpolice/internal/attack"
	"ddpolice/internal/overlay"
	"ddpolice/internal/police"
	"ddpolice/internal/sim"
)

// Config parameterizes one simulation run (see internal/sim).
type Config = sim.Config

// Result is a finished run's aggregate output.
type Result = sim.Result

// PoliceConfig holds the DD-POLICE protocol parameters.
type PoliceConfig = police.Config

// AgentConfig describes the DDoS agents' behaviour.
type AgentConfig = attack.AgentConfig

// ChurnConfig models peer session dynamics.
type ChurnConfig = overlay.ChurnConfig

// DefaultConfig returns the paper's simulation environment, scaled per
// DESIGN.md ("Calibration").
func DefaultConfig() Config { return sim.DefaultConfig() }

// DefaultPoliceConfig returns the paper's DD-POLICE operating point
// (q0 = 100, warning threshold 500/min, CT = 5, 2-minute exchanges).
func DefaultPoliceConfig() PoliceConfig { return police.DefaultConfig() }

// Run executes one simulation.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// RunParallel executes several configurations concurrently (bounded by
// GOMAXPROCS) and returns results in input order.
func RunParallel(cfgs []Config) ([]*Result, error) { return sim.RunParallel(cfgs) }

// broadcastMode aliases the attack package's broadcast spreading mode
// for use in study configurations.
const broadcastMode = attack.ModeBroadcast
