module ddpolice

go 1.22
