package ddpolice

// The causal-trace study: span-level detection latencies and flood
// fan-out per agent count, the ddexp `-fig trace` figure. Where the
// journal-based timeline studies report when detection events happened,
// this one reports where the time went between them — stage-by-stage
// along each detection's critical path — straight from the tracing
// plane's span trees.

import (
	"io"

	"ddpolice/internal/trace"
	"ddpolice/internal/viz"
)

// TracePoint is one row of the causal-trace study: the mean
// warning-to-stage latencies over every detection that reached a cut,
// plus the flood's span-level shape, at one agent count. Stage means
// are -1 when no detection reached that stage.
type TracePoint struct {
	Agents       int
	Traces       int // whole traces recorded
	Spans        int
	Warnings     int     // detection traces (warning roots)
	Cuts         int     // detections whose path reached a cut
	MeanRequest  float64 // warning -> nt_request (s)
	MeanIndic    float64 // warning -> indicator (s)
	MeanCut      float64 // warning -> cut (s)
	HopsPerQuery float64 // mean hop spans per query trace
	MaxDepth     int     // deepest flood front observed
}

// TraceStudy runs one fully-sampled traced simulation per agent count
// (police on) and condenses the span streams into TracePoints.
func TraceStudy(scale Scale) ([]TracePoint, error) {
	out := make([]TracePoint, 0, len(scale.AgentCounts))
	for _, agents := range scale.AgentCounts {
		cfg := scale.baseConfig()
		cfg.NumAgents = agents
		cfg.PoliceEnabled = true
		tr := trace.New(1.0, 0)
		cfg.Trace = tr
		if _, err := Run(cfg); err != nil {
			return nil, err
		}
		views := trace.Group(tr.Spans())
		p := TracePoint{
			Agents: agents, Traces: tr.TraceCount(), Spans: tr.Len(),
			MeanRequest: -1, MeanIndic: -1, MeanCut: -1,
		}
		queries, hops := 0, 0
		for _, tv := range views {
			if tv.Kind() != "query" {
				continue
			}
			queries++
			for d, n := range trace.FanOut(tv) {
				hops += n
				if n > 0 && d+1 > p.MaxDepth {
					p.MaxDepth = d + 1
				}
			}
		}
		if queries > 0 {
			p.HopsPerQuery = float64(hops) / float64(queries)
		}
		var sumReq, sumInd, sumCut float64
		for _, dp := range trace.DetectionPaths(views) {
			p.Warnings++
			if dp.CutSec < 0 {
				continue
			}
			p.Cuts++
			sumReq += dp.RequestSec
			sumInd += dp.IndicSec
			sumCut += dp.CutSec
		}
		if p.Cuts > 0 {
			n := float64(p.Cuts)
			p.MeanRequest, p.MeanIndic, p.MeanCut = sumReq/n, sumInd/n, sumCut/n
		}
		out = append(out, p)
	}
	return out, nil
}

// TracePointsCSV renders the causal-trace study rows.
func TracePointsCSV(w io.Writer, pts []TracePoint) error {
	rows := [][]string{{
		"agents", "traces", "spans", "warnings", "cuts",
		"mean_request_sec", "mean_indicator_sec", "mean_cut_sec",
		"hops_per_query", "max_depth",
	}}
	for _, p := range pts {
		rows = append(rows, []string{
			d(p.Agents), d(p.Traces), d(p.Spans), d(p.Warnings), d(p.Cuts),
			f(p.MeanRequest), f(p.MeanIndic), f(p.MeanCut),
			f(p.HopsPerQuery), d(p.MaxDepth),
		})
	}
	return writeAll(w, rows)
}

// TraceSVG renders the study's headline: mean warning-to-stage latency
// per agent count, one series per critical-path stage. Agent counts
// where no detection reached a cut are omitted.
func TraceSVG(w io.Writer, pts []TracePoint) error {
	var req, ind, cut viz.Series
	req.Label, ind.Label, cut.Label = "nt_request", "indicator", "cut"
	for _, p := range pts {
		if p.Cuts == 0 {
			continue
		}
		req.X, req.Y = append(req.X, float64(p.Agents)), append(req.Y, p.MeanRequest)
		ind.X, ind.Y = append(ind.X, float64(p.Agents)), append(ind.Y, p.MeanIndic)
		cut.X, cut.Y = append(cut.X, float64(p.Agents)), append(cut.Y, p.MeanCut)
	}
	lo := 0.0
	return renderChart(w, &viz.Chart{
		Title:  "Causal traces: detection critical-path latency vs agents",
		XLabel: "DDoS agents",
		YLabel: "mean latency after warning (s)",
		YMin:   &lo,
		Series: []viz.Series{req, ind, cut},
	})
}
