package ddpolice

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"ddpolice/internal/capacity"
)

// parse reads back CSV output and verifies rectangular shape.
func parse(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("unparseable CSV: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("empty CSV")
	}
	for i, r := range rows {
		if len(r) != len(rows[0]) {
			t.Fatalf("row %d has %d fields, header has %d", i, len(r), len(rows[0]))
		}
	}
	return rows
}

func TestSaturationCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []capacity.SaturationPoint{
		{OfferedPerMin: 1000, ProcessedPerMin: 1000, DropRate: 0},
		{OfferedPerMin: 29000, ProcessedPerMin: 15000, DropRate: 0.483},
	}
	if err := SaturationCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, &buf)
	if len(rows) != 3 || rows[2][2] != "0.483" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSweepCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []SweepPoint{{Agents: 5, TrafficBaseline: 100, TrafficAttack: 300,
		SuccessBaseline: 0.9, SuccessAttack: 0.5, Detections: 12}}
	if err := SweepCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, &buf)
	if rows[1][0] != "5" || rows[1][10] != "12" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestTimelinesCSVRaggedSeries(t *testing.T) {
	var buf bytes.Buffer
	tl := []Timeline{
		{Label: "a", Damage: []float64{1, 2, 3}},
		{Label: "b", Damage: []float64{9}},
	}
	if err := TimelinesCSV(&buf, tl); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, &buf)
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[2][2] != "" {
		t.Fatalf("short series not padded: %v", rows[2])
	}
	// Empty input still yields a header.
	buf.Reset()
	if err := TimelinesCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "minute") {
		t.Fatalf("empty timelines CSV = %q", buf.String())
	}
}

func TestRemainingCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	if err := CTPointsCSV(&buf, []CTPoint{{CutThreshold: 5, FalseNegatives: 3, RecoveryMinutes: -1}}); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, &buf)
	if rows[1][4] != "-1" {
		t.Fatalf("never-recovered sentinel lost: %v", rows[1])
	}

	buf.Reset()
	if err := FreqPointsCSV(&buf, []FreqPoint{{Label: "periodic 2min", PeriodSec: 120, ListMessages: 9}}); err != nil {
		t.Fatal(err)
	}
	parse(t, &buf)

	buf.Reset()
	if err := CheatPointsCSV(&buf, []CheatPoint{{Strategy: "deflate", Detections: 7, Success: 0.5}}); err != nil {
		t.Fatal(err)
	}
	parse(t, &buf)

	buf.Reset()
	if err := RadiusPointsCSV(&buf, []RadiusPoint{{Radius: 2, ListMessages: 100}}); err != nil {
		t.Fatal(err)
	}
	parse(t, &buf)

	buf.Reset()
	if err := LiarPointsCSV(&buf, []LiarPoint{{Label: "lying agents + verification", VerifyMsgs: 4}}); err != nil {
		t.Fatal(err)
	}
	parse(t, &buf)

	buf.Reset()
	if err := AblationPointsCSV(&buf, []AblationPoint{{Label: "ttl 7", Success: 0.6, SuccessNoDef: 0.2}}); err != nil {
		t.Fatal(err)
	}
	parse(t, &buf)
}
