// Package outfile gives the cmd tools write-error-safe output files.
//
// The failure mode it exists for: a tool writes its results through a
// bare `defer f.Close()`, the disk fills (or the file hits a quota, or
// NFS reports the error only at close), and the deferred Close silently
// discards the error — the tool exits zero with a truncated file that
// downstream steps treat as a complete result. Every byte a tool emits
// must flow through a path whose Flush and Close errors are checked,
// and a failed write must turn into a nonzero exit.
package outfile

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// File is a buffered output file whose Close reports every deferred
// write error: the first Write error is sticky, Flush and the
// underlying close are both checked, and the path is included in the
// returned error. It implements io.WriteCloser.
type File struct {
	path   string
	f      *os.File
	bw     *bufio.Writer
	err    error
	closed bool
}

// Create opens path for writing (truncating), buffered.
func Create(path string) (*File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &File{path: path, f: f, bw: bufio.NewWriter(f)}, nil
}

// Write buffers p. After the first error every subsequent Write fails
// fast with it, so a producer that ignores Write errors (a fmt.Fprintf
// loop) still cannot mask the failure: Close returns it.
func (o *File) Write(p []byte) (int, error) {
	if o.err != nil {
		return 0, o.err
	}
	n, err := o.bw.Write(p)
	if err != nil {
		o.err = err
	}
	return n, err
}

// Close flushes the buffer and closes the file, returning the first
// error seen across Write, Flush, and the file close. It is idempotent:
// extra calls return the same verdict without double-closing, so a
// belt-and-braces `defer f.Close()` can coexist with the mandatory
// checked Close on the success path.
func (o *File) Close() error {
	if !o.closed {
		o.closed = true
		if err := o.bw.Flush(); o.err == nil {
			o.err = err
		}
		if err := o.f.Close(); o.err == nil {
			o.err = err
		}
	}
	if o.err != nil {
		return fmt.Errorf("write %s: %w", o.path, o.err)
	}
	return nil
}

// Write streams one whole payload: it opens path, hands fn a buffered
// writer, then flushes and closes, checking every step. This is the
// one-shot shape most tools need — producer code keeps returning plain
// io.Writer errors and the caller gets a single verdict that includes
// close-time failures.
func Write(path string, fn func(w io.Writer) error) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
