package outfile

import (
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
)

func TestWriteSuccess(t *testing.T) {
	path := t.TempDir() + "/out.txt"
	err := Write(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello\n")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\n" {
		t.Fatalf("content = %q", got)
	}
}

// /dev/full is the canonical injected-ENOSPC device: writes succeed
// into the buffer, the flush at close fails. A bare `defer f.Close()`
// reports success here — that is the exact bug this package removes.
func TestCloseReportsFullDisk(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	f, err := Create("/dev/full")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, "doomed"); err != nil {
		// A small write lands in the buffer; an immediate error is
		// acceptable too — either way Close must report it.
		t.Logf("write failed eagerly: %v", err)
	}
	err = f.Close()
	if err == nil {
		t.Fatal("Close() = nil writing to /dev/full, want ENOSPC")
	}
	if !strings.Contains(err.Error(), "/dev/full") {
		t.Errorf("error %q does not name the path", err)
	}
	// Idempotent: the second Close returns the same verdict.
	if err2 := f.Close(); err2 == nil {
		t.Error("second Close() = nil, want sticky error")
	}
}

func TestWriteReportsFullDisk(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	err := Write("/dev/full", func(w io.Writer) error {
		// Exceed the bufio buffer so the failure hits during fn, and
		// also exercise the flush-at-close path for the remainder.
		chunk := strings.Repeat("x", 8192)
		for i := 0; i < 16; i++ {
			if _, err := io.WriteString(w, chunk); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("Write to /dev/full succeeded")
	}
}

// A producer that drops Write's error return (fmt.Fprintf with no
// check) must still be caught by Close: the first error is sticky.
func TestStickyWriteError(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	f, err := Create("/dev/full")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		fmt.Fprintf(f, "%d: %s\n", i, strings.Repeat("y", 4096))
	}
	if err := f.Close(); err == nil {
		t.Fatal("Close() = nil after unchecked failing writes")
	}
}

func TestCreateError(t *testing.T) {
	if _, err := Create(t.TempDir() + "/no/such/dir/x"); err == nil {
		t.Fatal("Create in missing directory succeeded")
	}
}
