package workload

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
)

// TraceRecord is one logged query, mirroring the paper's trace
// collection experiment (§2.3): a monitoring super-node logged every
// query flooding past it over 24 hours (13,075,339 queries, 112 MB),
// and the DDoS-agent prototype replays such a log.
type TraceRecord struct {
	TimestampMS int64           // milliseconds since trace start
	Issuer      topology.NodeID // observed source (simulation id)
	Object      ObjectID        // searched object
	Keywords    string          // human-readable query string
}

// TraceWriter streams TraceRecords to a text log (one record per line:
// "ts_ms issuer object keywords"). Wrap w with gzip by passing
// compress=true to NewTraceWriter.
type TraceWriter struct {
	bw    *bufio.Writer
	gz    *gzip.Writer
	count uint64
}

// NewTraceWriter creates a writer over w, optionally gzip-compressed.
func NewTraceWriter(w io.Writer, compress bool) *TraceWriter {
	tw := &TraceWriter{}
	if compress {
		tw.gz = gzip.NewWriter(w)
		tw.bw = bufio.NewWriter(tw.gz)
	} else {
		tw.bw = bufio.NewWriter(w)
	}
	return tw
}

// Write appends one record.
func (tw *TraceWriter) Write(r TraceRecord) error {
	if strings.ContainsAny(r.Keywords, "\n\r") {
		return fmt.Errorf("workload: keywords contain newline")
	}
	_, err := fmt.Fprintf(tw.bw, "%d %d %d %s\n", r.TimestampMS, r.Issuer, r.Object, r.Keywords)
	if err == nil {
		tw.count++
	}
	return err
}

// Count returns the number of records written.
func (tw *TraceWriter) Count() uint64 { return tw.count }

// Close flushes buffers (and the gzip stream if enabled).
func (tw *TraceWriter) Close() error {
	if err := tw.bw.Flush(); err != nil {
		return err
	}
	if tw.gz != nil {
		return tw.gz.Close()
	}
	return nil
}

// TraceReader streams records back from a log produced by TraceWriter.
type TraceReader struct {
	sc   *bufio.Scanner
	gz   *gzip.Reader
	line int
}

// NewTraceReader opens a trace stream; set compressed if the log was
// written with compression.
func NewTraceReader(r io.Reader, compressed bool) (*TraceReader, error) {
	tr := &TraceReader{}
	if compressed {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("workload: opening gzip trace: %w", err)
		}
		tr.gz = gz
		tr.sc = bufio.NewScanner(gz)
	} else {
		tr.sc = bufio.NewScanner(r)
	}
	tr.sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return tr, nil
}

// Read returns the next record, or io.EOF at end of trace.
func (tr *TraceReader) Read() (TraceRecord, error) {
	var rec TraceRecord
	if !tr.sc.Scan() {
		if err := tr.sc.Err(); err != nil {
			return rec, err
		}
		return rec, io.EOF
	}
	tr.line++
	line := tr.sc.Text()
	parts := strings.SplitN(line, " ", 4)
	if len(parts) < 3 {
		return rec, fmt.Errorf("workload: trace line %d malformed: %q", tr.line, line)
	}
	ts, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("workload: trace line %d timestamp: %w", tr.line, err)
	}
	issuer, err := strconv.ParseInt(parts[1], 10, 32)
	if err != nil {
		return rec, fmt.Errorf("workload: trace line %d issuer: %w", tr.line, err)
	}
	obj, err := strconv.ParseInt(parts[2], 10, 32)
	if err != nil {
		return rec, fmt.Errorf("workload: trace line %d object: %w", tr.line, err)
	}
	rec.TimestampMS = ts
	rec.Issuer = topology.NodeID(issuer)
	rec.Object = ObjectID(obj)
	if len(parts) == 4 {
		rec.Keywords = parts[3]
	}
	return rec, nil
}

// Close releases the gzip reader if any.
func (tr *TraceReader) Close() error {
	if tr.gz != nil {
		return tr.gz.Close()
	}
	return nil
}

// keyword dictionary for synthetic query strings; drawn from the flavor
// of popular Gnutella-era searches.
var keywordDict = []string{
	"mp3", "live", "remix", "album", "divx", "dvd", "rip", "screener",
	"linux", "iso", "crack", "ebook", "pdf", "season", "episode",
	"soundtrack", "unplugged", "greatest", "hits", "concert", "acoustic",
}

// SynthesizeKeywords renders a plausible query string for an object.
func SynthesizeKeywords(o ObjectID, src *rng.Source) string {
	w1 := keywordDict[src.Intn(len(keywordDict))]
	w2 := keywordDict[src.Intn(len(keywordDict))]
	return fmt.Sprintf("%s %s obj%d", w1, w2, o)
}

// GenerateTrace synthesizes a trace of the given duration: peers in
// [0, numPeers) issue queries at ratePerMin with Zipf object choice,
// emitted in timestamp order. It returns the number of records written.
func GenerateTrace(tw *TraceWriter, cat *Catalog, numPeers int, ratePerMin float64, durationSec int, src *rng.Source) (uint64, error) {
	if numPeers <= 0 || durationSec <= 0 {
		return 0, fmt.Errorf("workload: GenerateTrace numPeers=%d duration=%d", numPeers, durationSec)
	}
	perSec := ratePerMin / 60 * float64(numPeers)
	var written uint64
	var batch []TraceRecord
	for sec := 0; sec < durationSec; sec++ {
		n := src.Poisson(perSec)
		batch = batch[:0]
		for i := 0; i < n; i++ {
			obj := cat.SampleObject()
			batch = append(batch, TraceRecord{
				TimestampMS: int64(sec)*1000 + int64(src.Intn(1000)),
				Issuer:      topology.NodeID(src.Intn(numPeers)),
				Object:      obj,
				Keywords:    SynthesizeKeywords(obj, src),
			})
		}
		sort.Slice(batch, func(i, j int) bool { return batch[i].TimestampMS < batch[j].TimestampMS })
		for _, rec := range batch {
			if err := tw.Write(rec); err != nil {
				return written, err
			}
			written++
		}
	}
	return written, nil
}
