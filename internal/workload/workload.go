// Package workload models what peers share and search for. The paper
// drives its simulations with query rates and popularity measured from
// real systems: every peer issues 0.3 queries per minute (from the
// Gnutella measurements in [16]: 12,805 IPs issued 1,146,782 queries in
// 5 hours) and basic settings follow the University of Washington KaZaA
// trace [20]. We reproduce that with a Zipf object-popularity catalog,
// popularity-proportional replication, and a Poisson query process.
package workload

import (
	"fmt"
	"math"
	"sort"

	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
)

// ObjectID identifies a shared object (rank order: 0 is most popular).
type ObjectID int32

// CatalogConfig parameterizes the shared-content model.
type CatalogConfig struct {
	NumObjects   int     // distinct objects in the system
	ZipfExponent float64 // popularity skew (Gnutella traces: ~0.8)
	MeanReplicas float64 // average replicas per object
	// ReplicationSkew controls how replica count scales with
	// popularity: replicas(o) ∝ popularity(o)^ReplicationSkew.
	// 1 = proportional (natural for fetch-and-share systems),
	// 0.5 = square-root (optimal for random search), 0 = uniform.
	ReplicationSkew float64
	MinReplicas     int // floor so every object exists somewhere
}

// DefaultCatalogConfig returns the baseline content model used by the
// experiments: 10,000 objects, Zipf 0.8, ~20 replicas each.
func DefaultCatalogConfig() CatalogConfig {
	return CatalogConfig{
		NumObjects:      10000,
		ZipfExponent:    0.8,
		MeanReplicas:    20,
		ReplicationSkew: 1,
		MinReplicas:     3,
	}
}

// Catalog holds object popularity and placement.
type Catalog struct {
	cfg        CatalogConfig
	popularity []float64           // normalized query probability per object
	holders    [][]topology.NodeID // object -> peers storing it
	zipf       *rng.Zipf
}

// NewCatalog builds a catalog and places replicas on the n peers.
func NewCatalog(cfg CatalogConfig, numPeers int, src *rng.Source) (*Catalog, error) {
	if cfg.NumObjects <= 0 {
		return nil, fmt.Errorf("workload: NumObjects = %d", cfg.NumObjects)
	}
	if numPeers <= 0 {
		return nil, fmt.Errorf("workload: numPeers = %d", numPeers)
	}
	if cfg.MeanReplicas <= 0 || cfg.MinReplicas < 1 {
		return nil, fmt.Errorf("workload: replica config %v/%d invalid", cfg.MeanReplicas, cfg.MinReplicas)
	}
	c := &Catalog{
		cfg:        cfg,
		popularity: rng.ZipfWeights(cfg.NumObjects, cfg.ZipfExponent),
		holders:    make([][]topology.NodeID, cfg.NumObjects),
		zipf:       rng.NewZipf(src.Split(), uint64(cfg.NumObjects), cfg.ZipfExponent),
	}
	// Replica budget shaped by popularity^skew, normalized to the mean.
	shape := make([]float64, cfg.NumObjects)
	var shapeSum float64
	for i, p := range c.popularity {
		shape[i] = math.Pow(p, cfg.ReplicationSkew)
		shapeSum += shape[i]
	}
	budget := cfg.MeanReplicas * float64(cfg.NumObjects)
	for o := 0; o < cfg.NumObjects; o++ {
		count := int(budget * shape[o] / shapeSum)
		if count < cfg.MinReplicas {
			count = cfg.MinReplicas
		}
		if count > numPeers {
			count = numPeers
		}
		c.holders[o] = samplePeers(src, numPeers, count)
	}
	return c, nil
}

// Holders returns the peers storing object o. Callers must not mutate.
func (c *Catalog) Holders(o ObjectID) []topology.NodeID { return c.holders[o] }

// NumObjects returns the catalog size.
func (c *Catalog) NumObjects() int { return len(c.holders) }

// Popularity returns the query probability of object o.
func (c *Catalog) Popularity(o ObjectID) float64 { return c.popularity[o] }

// SampleObject draws an object according to popularity.
func (c *Catalog) SampleObject() ObjectID { return ObjectID(c.zipf.Rank() - 1) }

// samplePeers draws count distinct peers via partial Fisher-Yates over
// a lazily materialized index map.
func samplePeers(src *rng.Source, n, count int) []topology.NodeID {
	if count > n {
		count = n
	}
	swapped := make(map[int]int, count*2)
	out := make([]topology.NodeID, count)
	get := func(i int) int {
		if v, ok := swapped[i]; ok {
			return v
		}
		return i
	}
	for i := 0; i < count; i++ {
		j := i + src.Intn(n-i)
		vi, vj := get(i), get(j)
		swapped[i], swapped[j] = vj, vi
		out[i] = topology.NodeID(vj)
	}
	return out
}

// QueryGen produces the good peers' query arrivals: a Poisson process
// at rate QueriesPerMin per online peer (paper: 0.3/min).
type QueryGen struct {
	ratePerSec float64
	src        *rng.Source
	catalog    *Catalog
	issued     uint64
}

// Query is one search request.
type Query struct {
	Issuer topology.NodeID
	Object ObjectID
}

// NewQueryGen builds a generator at the given per-peer per-minute rate.
func NewQueryGen(catalog *Catalog, queriesPerMin float64, src *rng.Source) (*QueryGen, error) {
	if queriesPerMin < 0 {
		return nil, fmt.Errorf("workload: negative query rate %v", queriesPerMin)
	}
	return &QueryGen{ratePerSec: queriesPerMin / 60, src: src, catalog: catalog}, nil
}

// Issued returns the total number of queries generated so far.
func (q *QueryGen) Issued() uint64 { return q.issued }

// Tick appends the queries issued during a dt-second interval by the
// given online peers and returns the extended slice.
func (q *QueryGen) Tick(online []topology.NodeID, dt float64, buf []Query) []Query {
	if len(online) == 0 || q.ratePerSec == 0 {
		return buf
	}
	total := q.src.Poisson(q.ratePerSec * dt * float64(len(online)))
	for i := 0; i < total; i++ {
		buf = append(buf, Query{
			Issuer: online[q.src.Intn(len(online))],
			Object: q.catalog.SampleObject(),
		})
		q.issued++
	}
	return buf
}

// FitZipf estimates the Zipf popularity exponent from observed
// per-object query counts by least-squares regression of log(frequency)
// on log(rank) over the most-queried objects (the head of the
// distribution, where the Zipf tail noise is smallest). It returns the
// fitted exponent (the negated slope). At least three distinct objects
// with positive counts are required.
func FitZipf(counts []uint64) (float64, error) {
	var positive []uint64
	for _, c := range counts {
		if c > 0 {
			positive = append(positive, c)
		}
	}
	if len(positive) < 3 {
		return 0, fmt.Errorf("workload: FitZipf needs >= 3 positive counts, got %d", len(positive))
	}
	sort.Slice(positive, func(i, j int) bool { return positive[i] > positive[j] })
	// Use the head: up to 100 top ranks (or all, if fewer).
	n := len(positive)
	if n > 100 {
		n = 100
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(positive[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("workload: FitZipf degenerate ranks")
	}
	slope := (float64(n)*sxy - sx*sy) / den
	return -slope, nil
}
