package workload

import (
	"bytes"
	"io"
	"math"
	"testing"

	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
)

func testCatalog(t *testing.T, cfg CatalogConfig, peers int, seed uint64) *Catalog {
	t.Helper()
	c, err := NewCatalog(cfg, peers, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCatalogInvariants(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.NumObjects = 500
	c := testCatalog(t, cfg, 2000, 1)
	if c.NumObjects() != 500 {
		t.Fatalf("objects = %d", c.NumObjects())
	}
	var totalReplicas int
	for o := ObjectID(0); o < 500; o++ {
		hs := c.Holders(o)
		if len(hs) < cfg.MinReplicas {
			t.Fatalf("object %d has %d replicas, below floor %d", o, len(hs), cfg.MinReplicas)
		}
		seen := map[topology.NodeID]bool{}
		for _, h := range hs {
			if h < 0 || int(h) >= 2000 {
				t.Fatalf("holder %d out of range", h)
			}
			if seen[h] {
				t.Fatalf("object %d has duplicate holder %d", o, h)
			}
			seen[h] = true
		}
		totalReplicas += len(hs)
	}
	mean := float64(totalReplicas) / 500
	// The MinReplicas floor only inflates the mean, and the truncation
	// to int deflates it slightly.
	if mean < cfg.MeanReplicas*0.8 || mean > cfg.MeanReplicas*2 {
		t.Fatalf("mean replicas = %v, want near %v", mean, cfg.MeanReplicas)
	}
}

func TestReplicationFollowsPopularity(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.NumObjects = 1000
	cfg.ReplicationSkew = 1
	c := testCatalog(t, cfg, 5000, 2)
	// Rank-0 object must have strictly more replicas than rank-999.
	if len(c.Holders(0)) <= len(c.Holders(999)) {
		t.Fatalf("top object %d replicas <= tail %d", len(c.Holders(0)), len(c.Holders(999)))
	}
	if c.Popularity(0) <= c.Popularity(999) {
		t.Fatal("popularity not rank ordered")
	}
}

func TestUniformReplicationSkewZero(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.NumObjects = 200
	cfg.ReplicationSkew = 0
	cfg.MeanReplicas = 10
	cfg.MinReplicas = 1
	c := testCatalog(t, cfg, 1000, 3)
	for o := ObjectID(0); o < 200; o++ {
		if got := len(c.Holders(o)); got != 10 {
			t.Fatalf("object %d: %d replicas, want exactly 10 under skew 0", o, got)
		}
	}
}

func TestCatalogErrors(t *testing.T) {
	src := rng.New(1)
	bad := []CatalogConfig{
		{NumObjects: 0, MeanReplicas: 1, MinReplicas: 1},
		{NumObjects: 10, MeanReplicas: 0, MinReplicas: 1},
		{NumObjects: 10, MeanReplicas: 5, MinReplicas: 0},
	}
	for i, cfg := range bad {
		if _, err := NewCatalog(cfg, 100, src); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewCatalog(DefaultCatalogConfig(), 0, src); err == nil {
		t.Error("zero peers accepted")
	}
}

func TestSampleObjectDistribution(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.NumObjects = 100
	c := testCatalog(t, cfg, 500, 4)
	counts := make([]int, 100)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[c.SampleObject()]++
	}
	for _, o := range []ObjectID{0, 10, 50} {
		want := c.Popularity(o)
		got := float64(counts[o]) / draws
		if math.Abs(got-want) > 4*math.Sqrt(want/draws)+0.002 {
			t.Errorf("object %d: freq %.5f, want %.5f", o, got, want)
		}
	}
}

func TestQueryGenRate(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.NumObjects = 50
	c := testCatalog(t, cfg, 100, 5)
	qg, err := NewQueryGen(c, 0.3, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	online := make([]topology.NodeID, 100)
	for i := range online {
		online[i] = topology.NodeID(i)
	}
	var total int
	const ticks = 6000 // 100 simulated minutes
	for i := 0; i < ticks; i++ {
		got := qg.Tick(online, 1, nil)
		total += len(got)
		for _, q := range got {
			if q.Issuer < 0 || int(q.Issuer) >= 100 {
				t.Fatalf("issuer %d out of range", q.Issuer)
			}
			if q.Object < 0 || int(q.Object) >= 50 {
				t.Fatalf("object %d out of range", q.Object)
			}
		}
	}
	// Expected: 0.3/min * 100 peers * 100 min = 3000.
	if total < 2700 || total > 3300 {
		t.Fatalf("generated %d queries, want ~3000", total)
	}
	if qg.Issued() != uint64(total) {
		t.Fatalf("Issued() = %d, want %d", qg.Issued(), total)
	}
}

func TestQueryGenEmptyOnline(t *testing.T) {
	c := testCatalog(t, CatalogConfig{NumObjects: 10, ZipfExponent: 1, MeanReplicas: 2, ReplicationSkew: 1, MinReplicas: 1}, 10, 7)
	qg, err := NewQueryGen(c, 100, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := qg.Tick(nil, 1, nil); len(got) != 0 {
		t.Fatalf("queries from empty population: %v", got)
	}
	if _, err := NewQueryGen(c, -1, rng.New(9)); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		var buf bytes.Buffer
		tw := NewTraceWriter(&buf, compressed)
		recs := []TraceRecord{
			{TimestampMS: 0, Issuer: 1, Object: 2, Keywords: "mp3 live obj2"},
			{TimestampMS: 1500, Issuer: 42, Object: 0, Keywords: ""},
			{TimestampMS: 99999, Issuer: 1999, Object: 9999, Keywords: "a b c d"},
		}
		for _, r := range recs {
			if err := tw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if tw.Count() != 3 {
			t.Fatalf("count = %d", tw.Count())
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		tr, err := NewTraceReader(&buf, compressed)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range recs {
			got, err := tr.Read()
			if err != nil {
				t.Fatalf("compressed=%v record %d: %v", compressed, i, err)
			}
			if got != want {
				t.Fatalf("compressed=%v record %d = %+v, want %+v", compressed, i, got, want)
			}
		}
		if _, err := tr.Read(); err != io.EOF {
			t.Fatalf("want EOF, got %v", err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTraceWriterRejectsNewlines(t *testing.T) {
	tw := NewTraceWriter(&bytes.Buffer{}, false)
	if err := tw.Write(TraceRecord{Keywords: "evil\ninjection"}); err == nil {
		t.Fatal("newline keywords accepted")
	}
}

func TestTraceReaderMalformed(t *testing.T) {
	tr, err := NewTraceReader(bytes.NewBufferString("not a record\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Read(); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestGenerateTrace(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.NumObjects = 100
	c := testCatalog(t, cfg, 200, 10)
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, false)
	// 200 peers at 30/min for 60 s => ~6000 records.
	n, err := GenerateTrace(tw, c, 200, 30, 60, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if n < 5400 || n > 6600 {
		t.Fatalf("generated %d records, want ~6000", n)
	}
	tr, err := NewTraceReader(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	var count uint64
	last := int64(-1)
	for {
		rec, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.TimestampMS < last {
			t.Fatalf("timestamps out of order: %d after %d", rec.TimestampMS, last)
		}
		last = rec.TimestampMS
		count++
	}
	if count != n {
		t.Fatalf("read %d records, wrote %d", count, n)
	}
}

func TestGenerateTraceErrors(t *testing.T) {
	c := testCatalog(t, CatalogConfig{NumObjects: 10, MeanReplicas: 2, MinReplicas: 1}, 10, 1)
	tw := NewTraceWriter(&bytes.Buffer{}, false)
	if _, err := GenerateTrace(tw, c, 0, 1, 10, rng.New(1)); err == nil {
		t.Error("zero peers accepted")
	}
	if _, err := GenerateTrace(tw, c, 10, 1, 0, rng.New(1)); err == nil {
		t.Error("zero duration accepted")
	}
}

func BenchmarkSampleObject(b *testing.B) {
	c, err := NewCatalog(DefaultCatalogConfig(), 2000, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		c.SampleObject()
	}
}

func TestFitZipfRecoversExponent(t *testing.T) {
	for _, s := range []float64{0.6, 0.8, 1.2} {
		cfg := DefaultCatalogConfig()
		cfg.NumObjects = 2000
		cfg.ZipfExponent = s
		c := testCatalog(t, cfg, 500, 42)
		counts := make([]uint64, cfg.NumObjects)
		for i := 0; i < 500000; i++ {
			counts[c.SampleObject()]++
		}
		got, err := FitZipf(counts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-s) > 0.1 {
			t.Errorf("s=%v: fitted %v", s, got)
		}
	}
}

func TestFitZipfErrors(t *testing.T) {
	if _, err := FitZipf([]uint64{5, 3}); err == nil {
		t.Error("two counts accepted")
	}
	if _, err := FitZipf([]uint64{0, 0, 0, 0}); err == nil {
		t.Error("all-zero counts accepted")
	}
	if _, err := FitZipf([]uint64{9, 4, 2, 1}); err != nil {
		t.Errorf("minimal valid input rejected: %v", err)
	}
}
