package topology

import (
	"math"
	"testing"

	"ddpolice/internal/rng"
)

func TestClusteringCoefficientKnownGraphs(t *testing.T) {
	// Triangle: every node's neighbors are connected -> C = 1.
	b := NewBuilder(3)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Build().ClusteringCoefficient(); got != 1 {
		t.Fatalf("triangle C = %v", got)
	}
	// Star: hub neighbors never interconnect -> C = 0.
	b = NewBuilder(5)
	for i := 1; i < 5; i++ {
		if err := b.AddEdge(0, NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Build().ClusteringCoefficient(); got != 0 {
		t.Fatalf("star C = %v", got)
	}
	// Ring lattice with k=2 has C = 0.5.
	g, err := RingLattice(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ClusteringCoefficient(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("ring-lattice C = %v, want 0.5", got)
	}
}

func TestAssortativityBAIsDisassortative(t *testing.T) {
	g, err := BarabasiAlbert(rng.New(5), 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := g.DegreeAssortativity()
	if r > 0.05 {
		t.Fatalf("BA assortativity = %v, expected non-positive (hubs attach to leaves)", r)
	}
	if r < -1 || r > 1 {
		t.Fatalf("assortativity %v outside [-1,1]", r)
	}
}

func TestAssortativityRegularGraphIsDegenerate(t *testing.T) {
	g, err := RingLattice(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	// All degrees equal: zero variance -> defined as 0.
	if got := g.DegreeAssortativity(); got != 0 {
		t.Fatalf("regular graph assortativity = %v", got)
	}
}

func TestSamplePathLengthsLine(t *testing.T) {
	b := NewBuilder(5)
	for i := 0; i < 4; i++ {
		if err := b.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	st, err := g.SamplePathLengths(rng.New(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	// All 20 ordered pairs; mean distance on a path of 5 nodes = 2.
	if st.Samples != 20 || st.Max != 4 {
		t.Fatalf("samples=%d max=%d", st.Samples, st.Max)
	}
	if math.Abs(st.Mean-2) > 1e-9 {
		t.Fatalf("mean = %v, want 2", st.Mean)
	}
	if st.WithinTTL7 != 1 {
		t.Fatalf("within TTL7 = %v", st.WithinTTL7)
	}
}

func TestSmallWorldClaim(t *testing.T) {
	// The paper cites [25]: ~95% of pairs within 7 hops. Our BRITE-like
	// 2000-peer topology should satisfy it comfortably.
	g, err := BarabasiAlbert(rng.New(6), 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.SamplePathLengths(rng.New(7), 50)
	if err != nil {
		t.Fatal(err)
	}
	if st.WithinTTL7 < 0.95 {
		t.Fatalf("within-7-hops fraction = %v, want >= 0.95", st.WithinTTL7)
	}
}

func TestBallSizesMonotone(t *testing.T) {
	g, err := BarabasiAlbert(rng.New(8), 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	balls, err := g.BallSizes(rng.New(9), 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(balls) != 5 {
		t.Fatalf("len = %d", len(balls))
	}
	prev := 0.0
	for h, b := range balls {
		if b < prev {
			t.Fatalf("ball sizes not monotone at hop %d: %v", h+1, balls)
		}
		prev = b
	}
	// Hop-1 ball = mean degree (~6).
	if balls[0] < 4 || balls[0] > 9 {
		t.Fatalf("hop-1 ball = %v, want ~ mean degree", balls[0])
	}
	// TTL-3 coverage at 2,000 peers is the simulator's partial-coverage
	// regime (DESIGN.md, finding 2): roughly a third of the overlay,
	// well away from the TTL-7 blanket.
	frac := balls[2] / 2000
	if frac < 0.1 || frac > 0.45 {
		t.Fatalf("TTL-3 coverage = %.2f, outside the calibration band", frac)
	}
	if balls[4]/2000 < 0.9 {
		t.Fatalf("TTL-5 coverage = %.2f, expected near-blanket", balls[4]/2000)
	}
}

func TestAnalysisErrors(t *testing.T) {
	g := NewBuilder(0).Build()
	if _, err := g.SamplePathLengths(rng.New(1), 1); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := g.BallSizes(rng.New(1), 1, 3); err == nil {
		t.Error("empty graph accepted")
	}
	g2, err := RingLattice(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.BallSizes(rng.New(1), 1, 0); err == nil {
		t.Error("zero maxHops accepted")
	}
}
