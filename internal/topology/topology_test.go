package topology

import (
	"testing"

	"ddpolice/internal/rng"
)

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
}

func TestBuilderBuild(t *testing.T) {
	b := NewBuilder(4)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	for v := NodeID(0); v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if !g.IsConnected() {
		t.Error("cycle should be connected")
	}
	if g.AvgDegree() != 2 {
		t.Errorf("avg degree = %v", g.AvgDegree())
	}
}

func TestBarabasiAlbertProperties(t *testing.T) {
	src := rng.New(42)
	g, err := BarabasiAlbert(src, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2000 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("BA graph must be connected")
	}
	// The paper's BRITE profile: avg degree ~6, most peers with 3-4
	// neighbors, a few with tens.
	if avg := g.AvgDegree(); avg < 5.5 || avg > 6.5 {
		t.Errorf("avg degree = %v, want ~6", avg)
	}
	hist := g.DegreeHistogram()
	minDeg := -1
	for d, c := range hist {
		if c > 0 {
			minDeg = d
			break
		}
	}
	if minDeg != 3 {
		t.Errorf("min degree = %d, want 3", minDeg)
	}
	smallDeg := hist[3] + hist[4]
	if frac := float64(smallDeg) / 2000; frac < 0.5 {
		t.Errorf("fraction of degree-3/4 nodes = %v, want majority", frac)
	}
	if g.MaxDegree() < 20 {
		t.Errorf("max degree = %d, want a high-degree tail (>=20)", g.MaxDegree())
	}
}

func TestBarabasiAlbertSmallDiameter(t *testing.T) {
	g, err := BarabasiAlbert(rng.New(7), 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The paper cites [25]: 95% of node pairs within 7 hops. BA graphs
	// are small-world; check eccentricity from a sample of sources.
	for _, start := range []NodeID{0, 500, 1999} {
		ecc, reached := g.EccentricityFrom(start)
		if reached != 2000 {
			t.Fatalf("BFS from %d reached %d nodes", start, reached)
		}
		if ecc > 10 {
			t.Errorf("eccentricity from %d = %d, want small-world (<=10)", start, ecc)
		}
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	src := rng.New(1)
	if _, err := BarabasiAlbert(src, 3, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := BarabasiAlbert(src, 3, 3); err == nil {
		t.Error("n <= m accepted")
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	g1, err := BarabasiAlbert(rng.New(99), 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BarabasiAlbert(rng.New(99), 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for v := NodeID(0); v < 300; v++ {
		if g1.Degree(v) != g2.Degree(v) {
			t.Fatalf("degree(%d) differs between same-seed runs", v)
		}
	}
}

func TestWaxmanConnected(t *testing.T) {
	g, err := Waxman(rng.New(5), 500, 0.15, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("Waxman graph must be bridged to connectivity")
	}
	if g.NumNodes() != 500 {
		t.Fatalf("n = %d", g.NumNodes())
	}
}

func TestWaxmanErrors(t *testing.T) {
	src := rng.New(1)
	for _, c := range []struct {
		n           int
		alpha, beta float64
	}{{0, 0.5, 0.5}, {10, 0, 0.5}, {10, 1.5, 0.5}, {10, 0.5, 0}} {
		if _, err := Waxman(src, c.n, c.alpha, c.beta); err == nil {
			t.Errorf("Waxman(%d,%v,%v) accepted", c.n, c.alpha, c.beta)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(rng.New(6), 400, 0.015)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("ER graph must be bridged to connectivity")
	}
	// E[deg] = p*(n-1) = 5.985; allow wide slack plus bridge edges.
	if avg := g.AvgDegree(); avg < 4.5 || avg > 7.5 {
		t.Errorf("avg degree = %v, want ~6", avg)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	g, err := ErdosRenyi(rng.New(1), 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	// p=0: only bridge edges -> a tree chain of 50 nodes.
	if g.NumEdges() != 49 || !g.IsConnected() {
		t.Fatalf("p=0: edges=%d connected=%v", g.NumEdges(), g.IsConnected())
	}
	if _, err := ErdosRenyi(rng.New(1), 10, 1.5); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestRingLattice(t *testing.T) {
	g, err := RingLattice(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := NodeID(0); v < 10; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if !g.IsConnected() {
		t.Fatal("ring must be connected")
	}
	if _, err := RingLattice(4, 2); err == nil {
		t.Error("2k >= n accepted")
	}
}

func TestComponentSizeOnDisconnected(t *testing.T) {
	b := NewBuilder(5)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.IsConnected() {
		t.Fatal("graph should be disconnected")
	}
	if got := g.ComponentSize(0); got != 2 {
		t.Errorf("component(0) = %d", got)
	}
	if got := g.ComponentSize(4); got != 1 {
		t.Errorf("component(4) = %d", got)
	}
}

func TestDegreeHistogramSums(t *testing.T) {
	g, err := BarabasiAlbert(rng.New(3), 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	hist := g.DegreeHistogram()
	total, degSum := 0, 0
	for d, c := range hist {
		total += c
		degSum += d * c
	}
	if total != 500 {
		t.Errorf("histogram covers %d nodes", total)
	}
	if degSum != 2*g.NumEdges() {
		t.Errorf("degree sum %d != 2*edges %d", degSum, 2*g.NumEdges())
	}
}

func BenchmarkBarabasiAlbert2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BarabasiAlbert(rng.New(uint64(i)), 2000, 3); err != nil {
			b.Fatal(err)
		}
	}
}
