// Package topology builds the logical overlay topologies used by the
// simulator. The paper generates its topologies with BRITE: "1 logical
// topologies with 2,000 peers. Most peers have 3 or 4 logical
// neighbors, and a few peers have tens of direct neighbors. The average
// number of neighbors of each node is 6." A Barabási–Albert
// preferential-attachment generator with m≈3 reproduces exactly that
// degree profile; Waxman and Erdős–Rényi generators are provided for
// ablations.
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a Graph.
type NodeID int32

// Graph is an immutable simple undirected graph in CSR-like adjacency
// form. Build one with a Builder or a generator.
type Graph struct {
	adj [][]NodeID
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, ns := range g.adj {
		total += len(ns)
	}
	return total / 2
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Neighbors returns the neighbor list of v. Callers must not mutate it.
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	ns := g.adj[u]
	for _, w := range ns {
		if w == v {
			return true
		}
	}
	return false
}

// AvgDegree returns the mean degree.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(len(g.adj))
}

// MaxDegree returns the largest degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, ns := range g.adj {
		if len(ns) > max {
			max = len(ns)
		}
	}
	return max
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for _, ns := range g.adj {
		counts[len(ns)]++
	}
	return counts
}

// IsConnected reports whether the graph is a single connected component.
func (g *Graph) IsConnected() bool {
	n := len(g.adj)
	if n == 0 {
		return true
	}
	return g.ComponentSize(0) == n
}

// ComponentSize returns the size of the connected component containing
// start, via BFS.
func (g *Graph) ComponentSize(start NodeID) int {
	visited := make([]bool, len(g.adj))
	queue := []NodeID{start}
	visited[start] = true
	count := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		count++
		for _, w := range g.adj[v] {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return count
}

// EccentricityFrom returns the BFS hop distance from start to the
// farthest reachable node, and the number of reachable nodes.
func (g *Graph) EccentricityFrom(start NodeID) (maxHops, reached int) {
	dist := make([]int32, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []NodeID{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		reached++
		if int(dist[v]) > maxHops {
			maxHops = int(dist[v])
		}
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return maxHops, reached
}

// Builder assembles a simple undirected graph incrementally.
type Builder struct {
	n     int
	edges map[[2]NodeID]struct{}
}

// NewBuilder creates a builder for a graph with n nodes and no edges.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("topology: negative node count")
	}
	return &Builder{n: n, edges: make(map[[2]NodeID]struct{})}
}

func edgeKey(u, v NodeID) [2]NodeID {
	if u > v {
		u, v = v, u
	}
	return [2]NodeID{u, v}
}

// AddEdge inserts edge {u, v}. Self-loops and duplicates are rejected
// with an error.
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("topology: self-loop on node %d", u)
	}
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return fmt.Errorf("topology: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	k := edgeKey(u, v)
	if _, dup := b.edges[k]; dup {
		return fmt.Errorf("topology: duplicate edge (%d,%d)", u, v)
	}
	b.edges[k] = struct{}{}
	return nil
}

// HasEdge reports whether {u, v} has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	_, ok := b.edges[edgeKey(u, v)]
	return ok
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable Graph with sorted adjacency lists.
func (b *Builder) Build() *Graph {
	adj := make([][]NodeID, b.n)
	deg := make([]int, b.n)
	for e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for i := range adj {
		adj[i] = make([]NodeID, 0, deg[i])
	}
	for e := range b.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for i := range adj {
		sort.Slice(adj[i], func(a, c int) bool { return adj[i][a] < adj[i][c] })
	}
	return &Graph{adj: adj}
}
