package topology

import (
	"fmt"
	"math"

	"ddpolice/internal/rng"
)

// BarabasiAlbert generates a preferential-attachment graph with n nodes
// where each arriving node attaches to m distinct existing nodes chosen
// with probability proportional to degree. The result has average
// degree ≈ 2m, a power-law tail ("a few peers have tens of direct
// neighbors"), and minimum degree m — matching the paper's BRITE
// topologies (n = 2000, m = 3 gives avg degree ≈ 6, most nodes 3–4).
func BarabasiAlbert(src *rng.Source, n, m int) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("topology: BarabasiAlbert m=%d < 1", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("topology: BarabasiAlbert n=%d too small for m=%d", n, m)
	}
	b := NewBuilder(n)
	// Seed: a clique over the first m+1 nodes so every node has degree
	// >= m from the start.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			if err := b.AddEdge(NodeID(i), NodeID(j)); err != nil {
				return nil, err
			}
		}
	}
	// repeated stores each endpoint once per incident edge, so sampling
	// uniformly from it is degree-proportional sampling.
	repeated := make([]NodeID, 0, 2*(m*(m+1)/2+(n-m-1)*m))
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			repeated = append(repeated, NodeID(i), NodeID(j))
		}
	}
	targets := make([]NodeID, 0, m)
	for v := m + 1; v < n; v++ {
		targets = targets[:0]
	sample:
		for len(targets) < m {
			t := repeated[src.Intn(len(repeated))]
			for _, prev := range targets {
				if prev == t {
					continue sample
				}
			}
			targets = append(targets, t)
		}
		for _, t := range targets {
			if err := b.AddEdge(NodeID(v), t); err != nil {
				return nil, err
			}
			repeated = append(repeated, NodeID(v), t)
		}
	}
	return b.Build(), nil
}

// Waxman generates the classic BRITE router-level model: n nodes placed
// uniformly in the unit square; each pair (u,v) is linked with
// probability alpha * exp(-d(u,v) / (beta * L)) where L = sqrt(2) is
// the maximum possible distance. If the result is disconnected, a
// minimal set of bridging edges joins the components.
func Waxman(src *rng.Source, n int, alpha, beta float64) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: Waxman n=%d", n)
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 {
		return nil, fmt.Errorf("topology: Waxman alpha=%v beta=%v out of range", alpha, beta)
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = src.Float64(), src.Float64()
	}
	maxDist := math.Sqrt2
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			d := math.Sqrt(dx*dx + dy*dy)
			if src.Bool(alpha * math.Exp(-d/(beta*maxDist))) {
				if err := b.AddEdge(NodeID(i), NodeID(j)); err != nil {
					return nil, err
				}
			}
		}
	}
	connectComponents(src, b, n)
	return b.Build(), nil
}

// ErdosRenyi generates G(n, p): every pair is linked independently with
// probability p, then components are bridged to guarantee connectivity.
func ErdosRenyi(src *rng.Source, n int, p float64) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: ErdosRenyi n=%d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: ErdosRenyi p=%v out of [0,1]", p)
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if src.Bool(p) {
				if err := b.AddEdge(NodeID(i), NodeID(j)); err != nil {
					return nil, err
				}
			}
		}
	}
	connectComponents(src, b, n)
	return b.Build(), nil
}

// RingLattice generates a ring where each node links to its k nearest
// neighbors on each side (2k total). Deterministic; used in tests where
// exact structure matters.
func RingLattice(n, k int) (*Graph, error) {
	if n < 3 || k < 1 || 2*k >= n {
		return nil, fmt.Errorf("topology: RingLattice n=%d k=%d invalid", n, k)
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for d := 1; d <= k; d++ {
			j := (i + d) % n
			if !b.HasEdge(NodeID(i), NodeID(j)) {
				if err := b.AddEdge(NodeID(i), NodeID(j)); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build(), nil
}

// connectComponents adds one edge between each pair of adjacent
// components (in discovery order) so the final graph is connected.
func connectComponents(src *rng.Source, b *Builder, n int) {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for e := range b.edges {
		ra, rb := find(int(e[0])), find(int(e[1]))
		if ra != rb {
			parent[ra] = rb
		}
	}
	// Collect one representative per component.
	reps := make([]NodeID, 0)
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		r := find(i)
		if !seen[r] {
			seen[r] = true
			reps = append(reps, NodeID(i))
		}
	}
	// Shuffle then chain the components together.
	src.Shuffle(len(reps), func(i, j int) { reps[i], reps[j] = reps[j], reps[i] })
	for i := 1; i < len(reps); i++ {
		// The representatives are in different components, so the edge
		// cannot be a duplicate or self-loop.
		if err := b.AddEdge(reps[i-1], reps[i]); err != nil {
			panic("topology: internal error bridging components: " + err.Error())
		}
	}
}
