package topology

// Structural analysis used to validate that generated topologies match
// the paper's BRITE profile (small-world reach, heavy-tailed degrees)
// and cited measurements ("95% of any two nodes are less than 7 hops
// away" [25]).

import (
	"fmt"
	"math"

	"ddpolice/internal/rng"
)

// ClusteringCoefficient returns the average local clustering
// coefficient: for each node with degree >= 2, the fraction of its
// neighbor pairs that are themselves connected.
func (g *Graph) ClusteringCoefficient() float64 {
	var sum float64
	counted := 0
	for v := range g.adj {
		ns := g.adj[v]
		k := len(ns)
		if k < 2 {
			continue
		}
		counted++
		links := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if g.HasEdge(ns[i], ns[j]) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(k*(k-1))
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's assortativity coefficient). BA graphs are mildly
// disassortative (hubs attach to leaves).
func (g *Graph) DegreeAssortativity() float64 {
	var sx, sy, sxx, syy, sxy float64
	m := 0
	for u := range g.adj {
		du := float64(len(g.adj[u]))
		for _, w := range g.adj[u] {
			dv := float64(len(g.adj[w]))
			// Each undirected edge appears twice (both orientations),
			// which symmetrizes the correlation.
			sx += du
			sy += dv
			sxx += du * du
			syy += dv * dv
			sxy += du * dv
			m++
		}
	}
	if m == 0 {
		return 0
	}
	n := float64(m)
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// PathLengthStats summarizes hop distances over sampled source BFS runs.
type PathLengthStats struct {
	Mean       float64
	Max        int     // max observed over the sampled sources
	WithinTTL7 float64 // fraction of sampled pairs within 7 hops
	Samples    int     // number of (source, destination) pairs measured
}

// SamplePathLengths runs BFS from `sources` randomly chosen nodes and
// aggregates hop statistics over all reachable pairs.
func (g *Graph) SamplePathLengths(src *rng.Source, sources int) (PathLengthStats, error) {
	n := len(g.adj)
	if n == 0 {
		return PathLengthStats{}, fmt.Errorf("topology: empty graph")
	}
	if sources <= 0 || sources > n {
		sources = n
	}
	perm := src.Perm(n)
	var st PathLengthStats
	var sum float64
	dist := make([]int32, n)
	queue := make([]NodeID, 0, n)
	for s := 0; s < sources; s++ {
		start := NodeID(perm[s])
		for i := range dist {
			dist[i] = -1
		}
		dist[start] = 0
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for v := 0; v < n; v++ {
			if NodeID(v) == start || dist[v] < 0 {
				continue
			}
			d := int(dist[v])
			st.Samples++
			sum += float64(d)
			if d > st.Max {
				st.Max = d
			}
			if d <= 7 {
				st.WithinTTL7++
			}
		}
	}
	if st.Samples > 0 {
		st.Mean = sum / float64(st.Samples)
		st.WithinTTL7 /= float64(st.Samples)
	}
	return st, nil
}

// BallSizes returns the mean number of nodes reachable within each hop
// count 1..maxHops from sampled sources — the flood-coverage profile
// that calibrates the simulator's TTL (DESIGN.md, finding 2).
func (g *Graph) BallSizes(src *rng.Source, sources, maxHops int) ([]float64, error) {
	n := len(g.adj)
	if n == 0 {
		return nil, fmt.Errorf("topology: empty graph")
	}
	if maxHops < 1 {
		return nil, fmt.Errorf("topology: maxHops %d", maxHops)
	}
	if sources <= 0 || sources > n {
		sources = n
	}
	perm := src.Perm(n)
	out := make([]float64, maxHops)
	dist := make([]int32, n)
	queue := make([]NodeID, 0, n)
	for s := 0; s < sources; s++ {
		start := NodeID(perm[s])
		for i := range dist {
			dist[i] = -1
		}
		dist[start] = 0
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if int(dist[v]) >= maxHops {
				continue
			}
			for _, w := range g.adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for v := 0; v < n; v++ {
			if d := int(dist[v]); d > 0 {
				for h := d; h <= maxHops; h++ {
					out[h-1]++
				}
			}
		}
	}
	for i := range out {
		out[i] /= float64(sources)
	}
	return out, nil
}
