package overload

import "testing"

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c != DefaultConfig() {
		t.Fatalf("zero config with defaults = %+v, want %+v", c, DefaultConfig())
	}
	c = Config{QueryQueueDepth: 16, TripThreshold: 50}.WithDefaults()
	if c.QueryQueueDepth != 16 || c.TripThreshold != 50 {
		t.Fatalf("explicit fields overwritten: %+v", c)
	}
	if c.ControlQueueDepth != 64 || c.TripWindows != 2 {
		t.Fatalf("unset fields not defaulted: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("defaults-completed config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{HighWatermark: 0.4, LowWatermark: 0.5},
		{HighWatermark: 1.5},
		{DegradedShedFrac: 1.5},
		{ControlReserveFrac: 1},
	}
	for i, c := range bad {
		if err := c.WithDefaults().Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

func TestShedderHysteresis(t *testing.T) {
	s := NewShedder(100, 0.75, 0.5)
	if s.ShouldShed(0) {
		t.Fatal("empty queue sheds")
	}
	if s.ShouldShed(74) {
		t.Fatal("below high watermark sheds")
	}
	if !s.ShouldShed(75) {
		t.Fatal("at high watermark does not shed")
	}
	// Inside the hysteresis band the shedder keeps shedding...
	if !s.ShouldShed(60) {
		t.Fatal("hysteresis band released shed too early")
	}
	// ...until it drains to the low watermark.
	if s.ShouldShed(50) {
		t.Fatal("at low watermark still shedding")
	}
	// And the band does not re-trip until high again.
	if s.ShouldShed(74) {
		t.Fatal("band re-tripped below high watermark")
	}
	if !s.ShouldShed(90) {
		t.Fatal("did not re-trip at high watermark")
	}
}

func TestShedderTinyQueue(t *testing.T) {
	// A capacity-1 queue degenerates to shed-when-full without a
	// zero/negative watermark.
	s := NewShedder(1, 0.75, 0.5)
	if s.ShouldShed(0) {
		t.Fatal("empty tiny queue sheds")
	}
	if !s.ShouldShed(1) {
		t.Fatal("full tiny queue does not shed")
	}
	if s.ShouldShed(0) {
		t.Fatal("drained tiny queue still sheds")
	}
}

func TestBreakerQuarantineLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBreaker(cfg)
	if b.State() != StateClosed {
		t.Fatalf("new breaker state = %v", b.State())
	}
	// One hot window is a strike, not a quarantine.
	if ev := b.CloseWindow(10_000); ev != EventNone {
		t.Fatalf("first hot window event = %v", ev)
	}
	if b.State() != StateClosed {
		t.Fatalf("state after one strike = %v", b.State())
	}
	// Second consecutive hot window trips the breaker.
	if ev := b.CloseWindow(10_000); ev != EventQuarantine {
		t.Fatalf("second hot window event = %v", ev)
	}
	if b.State() != StateQuarantined {
		t.Fatalf("state after trip = %v", b.State())
	}
	// Quarantined: only ProbeAdmit queries pass per window.
	admitted := 0
	for i := 0; i < 1000; i++ {
		if b.Admit() {
			admitted++
		}
	}
	if admitted != int(cfg.ProbeAdmit) {
		t.Fatalf("quarantined admits = %d, want %v", admitted, cfg.ProbeAdmit)
	}
	// Quarantine term: QuarantineWindows windows, then half-open.
	for i := 0; i < cfg.QuarantineWindows-1; i++ {
		if ev := b.CloseWindow(10_000); ev != EventNone {
			t.Fatalf("quarantine window %d event = %v", i, ev)
		}
	}
	if ev := b.CloseWindow(10_000); ev != EventProbe {
		t.Fatalf("quarantine term end event = %v", ev)
	}
	if b.State() != StateProbing {
		t.Fatalf("state after term = %v", b.State())
	}
	// A probing peer that keeps flooding goes straight back.
	if ev := b.CloseWindow(10_000); ev != EventQuarantine {
		t.Fatalf("failed probe event = %v", ev)
	}
	// Serve the term again, probe, and this time behave.
	for i := 0; i < cfg.QuarantineWindows; i++ {
		b.CloseWindow(0)
	}
	if b.State() != StateProbing {
		t.Fatalf("state after second term = %v", b.State())
	}
	if ev := b.CloseWindow(cfg.TripThreshold); ev != EventRestore {
		t.Fatalf("clean probe event = %v", ev)
	}
	if b.State() != StateClosed {
		t.Fatalf("state after restore = %v", b.State())
	}
	if !b.Admit() {
		t.Fatal("restored peer not admitted")
	}
}

func TestBreakerStrikesResetOnQuietWindow(t *testing.T) {
	b := NewBreaker(DefaultConfig())
	b.CloseWindow(10_000) // strike 1
	b.CloseWindow(0)      // quiet: strikes reset
	b.CloseWindow(10_000) // strike 1 again
	if b.State() != StateClosed {
		t.Fatalf("non-consecutive strikes quarantined: %v", b.State())
	}
	b.CloseWindow(10_000) // strike 2: trip
	if b.State() != StateQuarantined {
		t.Fatalf("consecutive strikes did not trip: %v", b.State())
	}
}

func TestBreakerAdmitResetsPerWindow(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBreaker(cfg)
	b.CloseWindow(10_000)
	b.CloseWindow(10_000)
	for i := 0; i < int(cfg.ProbeAdmit); i++ {
		if !b.Admit() {
			t.Fatalf("admit %d denied under allowance", i)
		}
	}
	if b.Admit() {
		t.Fatal("admit over allowance")
	}
	b.CloseWindow(10_000)
	if !b.Admit() {
		t.Fatal("allowance did not reset at window close")
	}
}

func TestBreakerDeterministic(t *testing.T) {
	// Same call sequence, same transitions — the breaker has no clock
	// and no randomness.
	run := func() []BreakerEvent {
		b := NewBreaker(DefaultConfig())
		offered := []float64{600, 700, 9000, 9000, 9000, 9000, 100, 100, 100, 100, 400}
		evs := make([]BreakerEvent, 0, len(offered))
		for _, o := range offered {
			evs = append(evs, b.CloseWindow(o))
		}
		return evs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at window %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDetectorHysteresis(t *testing.T) {
	d := NewDetector(DefaultConfig())
	if d.Degraded() {
		t.Fatal("new detector degraded")
	}
	if d.CloseWindow(40, 60) {
		t.Fatal("40% shed flipped mode")
	}
	if !d.CloseWindow(50, 50) {
		t.Fatal("50% shed did not enter degraded")
	}
	if !d.Degraded() {
		t.Fatal("not degraded after enter")
	}
	// Exit needs shed below half the threshold (25%).
	if d.CloseWindow(30, 70) {
		t.Fatal("30% shed exited degraded")
	}
	if !d.CloseWindow(10, 90) {
		t.Fatal("10% shed did not exit degraded")
	}
	if d.Degraded() {
		t.Fatal("degraded after exit")
	}
}

func TestDetectorIdleWindowRecovers(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.CloseWindow(100, 0)
	if !d.Degraded() {
		t.Fatal("all-shed window did not degrade")
	}
	if !d.CloseWindow(0, 0) {
		t.Fatal("idle window did not recover")
	}
	if d.Degraded() {
		t.Fatal("degraded after idle recovery")
	}
	if d.CloseWindow(0, 0) {
		t.Fatal("idle window flipped healthy mode")
	}
}

func TestSimPlaneDefaults(t *testing.T) {
	p := SimPlane{}.WithDefaults()
	if p != DefaultSimPlane() {
		t.Fatalf("zero plane with defaults = %+v, want %+v", p, DefaultSimPlane())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("default plane invalid: %v", err)
	}
	if err := (SimPlane{ControlReserveFrac: 1.5}).WithDefaults().Validate(); err == nil {
		t.Fatal("Validate accepted reserve >= 1")
	}
}

func TestClassString(t *testing.T) {
	if ClassControl.String() != "control" || ClassQuery.String() != "query" {
		t.Fatalf("class strings: %q %q", ClassControl, ClassQuery)
	}
	if StateQuarantined.String() != "quarantined" || EventRestore.String() != "restore" {
		t.Fatalf("state/event strings: %q %q", StateQuarantined, EventRestore)
	}
}
