// Package overload is the overload-resilience control plane shared by
// the live TCP node (internal/gnet) and the simulator (internal/sim).
//
// DD-POLICE's premise is that detection keeps running *while the
// overlay is being flooded*: the per-minute Out_query/In_query
// counters, the neighbor-list exchange and the Neighbor_Traffic rounds
// of §2-3 are exactly the messages a saturated node must still deliver
// when a flood has filled every queue. A node that sheds messages
// indiscriminately at saturation therefore sheds its own defense first
// (the Fig 5-6 regime: at 2x offered-over-capacity, half of *all*
// traffic is dropped, control included).
//
// The package provides three building blocks, each a small
// deterministic state machine with no clock and no goroutines, so the
// callers decide when windows close and the same inputs always yield
// the same transitions:
//
//   - Shedder: high/low watermark hysteresis over a bounded queue
//     depth. The query plane sheds when its queue crosses the high
//     watermark and keeps shedding until it drains below the low one;
//     the control plane only sheds when its (separate, shallow) queue
//     is actually full — the "last resort".
//   - Breaker: a per-peer quarantine circuit breaker. A peer whose
//     inbound query rate trips the warning threshold for enough
//     consecutive windows is quarantined — its queries are throttled
//     to a trickle while control traffic keeps flowing — and recovers
//     through a deterministic half-open probe window instead of being
//     stalled or cut outright.
//   - Detector: node-level degraded-mode detection. When the shed
//     fraction of a window crosses the threshold the node is marked
//     degraded (journaled by the caller), so detection latency under
//     overload is attributable to saturation rather than to the
//     indicators.
//
// SimPlane mirrors the same class-split budget in the simulator's
// fluid model (internal/sim wiring): a capacity fraction is reserved
// for the control plane, which bounds the control-message loss rate a
// saturated overlay can inflict, while the query plane sees the
// remaining capacity and sheds accordingly.
package overload

import "fmt"

// Class buckets messages for admission and backpressure. The split
// follows the paper's message taxonomy: the control plane carries
// everything detection depends on (Neighbor_Traffic, neighbor lists,
// handshake-adjacent Ping/Pong and the orderly Bye); the query plane
// carries the flood (Query/QueryHit) — the traffic an attacker can
// inflate without bound.
type Class uint8

// Message classes.
const (
	// ClassControl: NT, neighbor-list, Ping/Pong, Bye — sparse but
	// load-bearing; shed only as a last resort.
	ClassControl Class = iota
	// ClassQuery: Query and QueryHit — bulk flood traffic; shed first.
	ClassQuery
	// NumClasses counts the classes (for per-class arrays).
	NumClasses
)

// String names the class for telemetry and journal details.
func (c Class) String() string {
	if c == ClassControl {
		return "control"
	}
	return "query"
}

// Config parameterizes one node's overload plane. The zero value is
// not usable directly; call WithDefaults (or start from
// DefaultConfig) so unset fields get their documented defaults.
type Config struct {
	// QueryQueueDepth bounds the per-peer outbound query queue
	// (default 256, the historical single-queue depth).
	QueryQueueDepth int
	// ControlQueueDepth bounds the per-peer outbound control queue
	// (default 64). Control traffic is sparse; a shallow dedicated
	// queue keeps its worst-case latency small.
	ControlQueueDepth int
	// HighWatermark is the query-queue fill fraction above which query
	// sends start shedding (default 0.75).
	HighWatermark float64
	// LowWatermark is the fill fraction below which shedding stops
	// (default 0.5). The hysteresis band prevents shed/send flapping
	// at the boundary.
	LowWatermark float64

	// TripThreshold is the per-window inbound query count from one
	// peer that counts as a strike (default 500, the paper's warning
	// threshold).
	TripThreshold float64
	// TripWindows is how many consecutive strikes quarantine the peer
	// (default 2: a single hot window may be a legitimate burst).
	TripWindows int
	// QuarantineWindows is how many windows a quarantined peer stays
	// throttled before the breaker half-opens for a probe (default 3).
	QuarantineWindows int
	// ProbeAdmit is the per-window query allowance of a quarantined or
	// probing peer (default 100, the paper's q0 — a good peer's
	// legitimate traffic fits through the throttle).
	ProbeAdmit float64

	// DegradedShedFrac is the per-window shed fraction at which the
	// node marks itself degraded (default 0.5); it exits degraded mode
	// below half that (hysteresis).
	DegradedShedFrac float64

	// ControlReserveFrac of processing capacity is reserved for the
	// control plane (default 0.05); queries are admitted against the
	// remainder and can never starve it. Mirrors SimPlane's field of
	// the same name so the live node and the simulator split capacity
	// identically.
	ControlReserveFrac float64
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{
		QueryQueueDepth:   256,
		ControlQueueDepth: 64,
		HighWatermark:     0.75,
		LowWatermark:      0.5,
		TripThreshold:     500,
		TripWindows:       2,
		QuarantineWindows: 3,
		ProbeAdmit:        100,
		DegradedShedFrac:  0.5,

		ControlReserveFrac: 0.05,
	}
}

// WithDefaults fills unset (zero) fields with their defaults and
// returns the completed config.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.QueryQueueDepth <= 0 {
		c.QueryQueueDepth = d.QueryQueueDepth
	}
	if c.ControlQueueDepth <= 0 {
		c.ControlQueueDepth = d.ControlQueueDepth
	}
	if c.HighWatermark <= 0 {
		c.HighWatermark = d.HighWatermark
	}
	if c.LowWatermark <= 0 {
		c.LowWatermark = d.LowWatermark
	}
	if c.TripThreshold <= 0 {
		c.TripThreshold = d.TripThreshold
	}
	if c.TripWindows <= 0 {
		c.TripWindows = d.TripWindows
	}
	if c.QuarantineWindows <= 0 {
		c.QuarantineWindows = d.QuarantineWindows
	}
	if c.ProbeAdmit <= 0 {
		c.ProbeAdmit = d.ProbeAdmit
	}
	if c.DegradedShedFrac <= 0 {
		c.DegradedShedFrac = d.DegradedShedFrac
	}
	if c.ControlReserveFrac <= 0 {
		c.ControlReserveFrac = d.ControlReserveFrac
	}
	return c
}

// Validate reports configuration errors on a defaults-completed config.
func (c Config) Validate() error {
	if c.LowWatermark >= c.HighWatermark {
		return fmt.Errorf("overload: LowWatermark %v >= HighWatermark %v", c.LowWatermark, c.HighWatermark)
	}
	if c.HighWatermark > 1 {
		return fmt.Errorf("overload: HighWatermark %v > 1", c.HighWatermark)
	}
	if c.DegradedShedFrac > 1 {
		return fmt.Errorf("overload: DegradedShedFrac %v > 1", c.DegradedShedFrac)
	}
	if c.ControlReserveFrac >= 1 {
		return fmt.Errorf("overload: ControlReserveFrac %v >= 1", c.ControlReserveFrac)
	}
	return nil
}

// Shedder implements high/low watermark hysteresis over a bounded
// queue: once the observed depth crosses the high watermark, ShouldShed
// reports true until the depth drains below the low watermark. Not safe
// for concurrent use; each queue's owner guards its own shedder.
type Shedder struct {
	high, low int
	shedding  bool
}

// NewShedder sizes the watermarks for a queue of the given capacity.
// The high watermark is at least 1 and at least low+1, so a capacity-1
// queue degenerates to shed-when-full.
func NewShedder(capacity int, highFrac, lowFrac float64) Shedder {
	high := int(float64(capacity) * highFrac)
	low := int(float64(capacity) * lowFrac)
	if high < 1 {
		high = 1
	}
	if low >= high {
		low = high - 1
	}
	return Shedder{high: high, low: low}
}

// ShouldShed reports whether a message arriving at the given queue
// depth should be shed, updating the hysteresis state.
func (s *Shedder) ShouldShed(depth int) bool {
	if s.shedding {
		if depth <= s.low {
			s.shedding = false
		}
	} else if depth >= s.high {
		s.shedding = true
	}
	return s.shedding
}

// Shedding exposes the current hysteresis state (telemetry/tests).
func (s *Shedder) Shedding() bool { return s.shedding }

// BreakerState is one quarantine circuit breaker position.
type BreakerState uint8

// Breaker states.
const (
	// StateClosed: the peer is in good standing; queries flow freely.
	StateClosed BreakerState = iota
	// StateQuarantined: the breaker is open; the peer's queries are
	// throttled to ProbeAdmit per window while control still flows.
	StateQuarantined
	// StateProbing: half-open; one window's worth of throttled
	// admission decides between restore and re-quarantine.
	StateProbing
)

// String names the state for journal details and logs.
func (s BreakerState) String() string {
	switch s {
	case StateQuarantined:
		return "quarantined"
	case StateProbing:
		return "probing"
	default:
		return "closed"
	}
}

// BreakerEvent is the transition (if any) a window close produced.
type BreakerEvent uint8

// Breaker transitions reported by CloseWindow.
const (
	// EventNone: no state change this window.
	EventNone BreakerEvent = iota
	// EventQuarantine: the strike count reached TripWindows (or a
	// probe failed) and the peer entered quarantine.
	EventQuarantine
	// EventProbe: the quarantine term elapsed; the breaker half-opened.
	EventProbe
	// EventRestore: the probe window stayed under the trip threshold;
	// the peer returned to good standing.
	EventRestore
)

// String names the event for journal details.
func (e BreakerEvent) String() string {
	switch e {
	case EventQuarantine:
		return "quarantine"
	case EventProbe:
		return "probe"
	case EventRestore:
		return "restore"
	default:
		return "none"
	}
}

// Breaker is one peer's quarantine circuit breaker. All methods are
// deterministic functions of the call sequence; the owner (gnet's run
// loop) serializes access.
type Breaker struct {
	cfg      Config
	state    BreakerState
	strikes  int     // consecutive hot windows while closed
	served   int     // windows spent in the current quarantine term
	admitted float64 // queries admitted in the current window
}

// NewBreaker returns a closed breaker under cfg (defaults-completed).
func NewBreaker(cfg Config) *Breaker {
	return &Breaker{cfg: cfg}
}

// State returns the current breaker position.
func (b *Breaker) State() BreakerState { return b.state }

// Admit decides one inbound query's fate. Closed peers are always
// admitted; quarantined and probing peers get ProbeAdmit queries per
// window and shed the rest.
func (b *Breaker) Admit() bool {
	if b.state == StateClosed {
		return true
	}
	if b.admitted < b.cfg.ProbeAdmit {
		b.admitted++
		return true
	}
	return false
}

// CloseWindow rolls the breaker's window with the peer's *offered*
// inbound query count (admitted or not — a throttled flooder that
// keeps flooding must not pass its probe) and returns the transition
// taken, if any.
func (b *Breaker) CloseWindow(offered float64) BreakerEvent {
	b.admitted = 0
	switch b.state {
	case StateClosed:
		if offered > b.cfg.TripThreshold {
			b.strikes++
			if b.strikes >= b.cfg.TripWindows {
				b.state = StateQuarantined
				b.served = 0
				return EventQuarantine
			}
		} else {
			b.strikes = 0
		}
	case StateQuarantined:
		b.served++
		if b.served >= b.cfg.QuarantineWindows {
			b.state = StateProbing
			return EventProbe
		}
	case StateProbing:
		if offered > b.cfg.TripThreshold {
			b.state = StateQuarantined
			b.served = 0
			return EventQuarantine
		}
		b.state = StateClosed
		b.strikes = 0
		return EventRestore
	}
	return EventNone
}

// Detector tracks node-level degraded mode from per-window shed
// fractions, with enter-at-threshold / exit-at-half-threshold
// hysteresis. The owner journals the transitions it reports.
type Detector struct {
	cfg      Config
	degraded bool
}

// NewDetector returns a healthy detector under cfg (defaults-completed).
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg}
}

// Degraded reports the current mode.
func (d *Detector) Degraded() bool { return d.degraded }

// CloseWindow rolls one window with its shed and handled message
// counts and reports whether the mode changed (the new mode is read
// with Degraded).
func (d *Detector) CloseWindow(shed, handled float64) (changed bool) {
	total := shed + handled
	if total <= 0 {
		// An idle window carries no load signal; a degraded node with
		// no traffic at all has nothing left to shed and recovers.
		if d.degraded {
			d.degraded = false
			return true
		}
		return false
	}
	frac := shed / total
	if d.degraded {
		if frac < d.cfg.DegradedShedFrac/2 {
			d.degraded = false
			return true
		}
	} else if frac >= d.cfg.DegradedShedFrac {
		d.degraded = true
		return true
	}
	return false
}

// SimPlane parameterizes the simulator's mirror of the class-split
// budget (internal/sim Config.Overload). The fluid model has no
// per-message queues, so the mirror works at the budget level: a
// capacity fraction is reserved for the control plane — queries flood
// against the remaining (1-frac) capacity and shed more, while
// control-message loss is bounded by the reserve's own (small)
// exhaustion probability.
type SimPlane struct {
	// ControlReserveFrac of each peer's capacity is reserved for
	// control traffic (default 0.05). Query floods see the remainder.
	ControlReserveFrac float64
	// ControlLossCap bounds the congestion-derived control-message
	// loss while the reserve holds (default 0.05: delivery >= 95%).
	// Injected fault-plane loss (faults.Schedule.ControlLoss) still
	// adds on top — the reserve protects against congestion, not
	// against an adversarial network.
	ControlLossCap float64
	// DegradedLossThreshold is the query-plane drop fraction at which
	// a minute is journaled as degraded (default 0.5).
	DegradedLossThreshold float64
}

// DefaultSimPlane returns the documented defaults.
func DefaultSimPlane() SimPlane {
	return SimPlane{
		ControlReserveFrac:    0.05,
		ControlLossCap:        0.05,
		DegradedLossThreshold: 0.5,
	}
}

// WithDefaults fills unset (zero) fields with their defaults.
func (p SimPlane) WithDefaults() SimPlane {
	d := DefaultSimPlane()
	if p.ControlReserveFrac <= 0 {
		p.ControlReserveFrac = d.ControlReserveFrac
	}
	if p.ControlLossCap <= 0 {
		p.ControlLossCap = d.ControlLossCap
	}
	if p.DegradedLossThreshold <= 0 {
		p.DegradedLossThreshold = d.DegradedLossThreshold
	}
	return p
}

// Validate reports configuration errors on a defaults-completed plane.
func (p SimPlane) Validate() error {
	if p.ControlReserveFrac >= 1 {
		return fmt.Errorf("overload: ControlReserveFrac = %v (want < 1)", p.ControlReserveFrac)
	}
	if p.ControlLossCap >= 1 {
		return fmt.Errorf("overload: ControlLossCap = %v (want < 1)", p.ControlLossCap)
	}
	if p.DegradedLossThreshold > 1 {
		return fmt.Errorf("overload: DegradedLossThreshold = %v (want <= 1)", p.DegradedLossThreshold)
	}
	return nil
}
