package metrics

import (
	"math"
	"testing"

	"ddpolice/internal/flood"
)

func hitResult(delay float64, hops int, msgs float64) flood.QueryResult {
	return flood.QueryResult{
		Hit: true, FirstHitHops: hops, ResponseDelay: delay,
		QueryMessages: msgs, HitMessages: float64(hops),
	}
}

func missResult(msgs float64, drops int) flood.QueryResult {
	return flood.QueryResult{FirstHitHops: -1, QueryMessages: msgs, CapacityDrops: drops}
}

func TestCollectorMinuteAccounting(t *testing.T) {
	c := NewCollector()
	c.RecordQuery(hitResult(0.2, 2, 100))
	c.RecordQuery(hitResult(0.4, 4, 150))
	c.RecordQuery(missResult(50, 3))
	c.RecordBatch(flood.BatchResult{QueryMessages: 1000, CapacityDrops: 200})
	c.AddControl(25)
	c.SetOnline(42)
	c.CloseMinute()

	ms := c.Minutes()
	if len(ms) != 1 {
		t.Fatalf("minutes = %d", len(ms))
	}
	m := ms[0]
	if m.Issued != 3 || m.Succeeded != 2 {
		t.Fatalf("issued=%d succeeded=%d", m.Issued, m.Succeeded)
	}
	if got := m.SuccessRate(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("success rate = %v", got)
	}
	if m.QueryMsgs != 1300 {
		t.Fatalf("query msgs = %v", m.QueryMsgs)
	}
	if m.HitMsgs != 6 {
		t.Fatalf("hit msgs = %v", m.HitMsgs)
	}
	if m.ControlMsgs != 25 || m.OnlinePeers != 42 {
		t.Fatalf("control=%v online=%d", m.ControlMsgs, m.OnlinePeers)
	}
	if m.CapacityDrop != 203 {
		t.Fatalf("capacity drops = %v", m.CapacityDrop)
	}
	if got := m.TrafficCost(); got != 1300+6+25 {
		t.Fatalf("traffic cost = %v", got)
	}
}

func TestCollectorResponseStats(t *testing.T) {
	c := NewCollector()
	for _, d := range []float64{0.1, 0.2, 0.3, 0.4} {
		c.RecordQuery(hitResult(d, 2, 10))
	}
	c.RecordQuery(missResult(10, 0)) // misses must not pollute delay stats
	c.CloseMinute()
	if got := c.MeanResponseTime(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("mean response = %v", got)
	}
	if got := c.ResponseTimeQuantile(1); got != 0.4 {
		t.Fatalf("max response = %v", got)
	}
	if got := c.MeanHitHops(); got != 2 {
		t.Fatalf("mean hops = %v", got)
	}
}

func TestOverallSuccessAndTraffic(t *testing.T) {
	c := NewCollector()
	c.RecordQuery(hitResult(0.1, 1, 10))
	c.CloseMinute()
	c.RecordQuery(missResult(20, 0))
	c.RecordQuery(missResult(20, 0))
	c.CloseMinute()
	if got := c.OverallSuccessRate(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("overall success = %v", got)
	}
	// Traffic: minute 1 = 10 + 1 hit msg; minute 2 = 40.
	if got := c.MeanTrafficPerMinute(); math.Abs(got-25.5) > 1e-12 {
		t.Fatalf("mean traffic = %v", got)
	}
	s := c.SuccessSeries()
	if len(s) != 2 || s[0] != 1 || math.Abs(s[1]) > 1e-12 {
		t.Fatalf("series = %v", s)
	}
}

func TestEmptyMinuteSuccessRateIsOne(t *testing.T) {
	c := NewCollector()
	c.CloseMinute()
	if got := c.Minutes()[0].SuccessRate(); got != 1 {
		t.Fatalf("idle success rate = %v", got)
	}
	if got := c.OverallSuccessRate(); got != 1 {
		t.Fatalf("idle overall = %v", got)
	}
	if got := NewCollector().MeanTrafficPerMinute(); got != 0 {
		t.Fatalf("empty traffic = %v", got)
	}
}

func TestDamageSeries(t *testing.T) {
	baseline := []float64{0.9, 0.9, 0.9, 0.9}
	attacked := []float64{0.9, 0.45, 0.09, 0.95}
	d := DamageSeries(baseline, attacked)
	want := []float64{0, 50, 90, 0} // last clamps at 0
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-9 {
			t.Fatalf("damage[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestDamageSeriesLengthsAndZeros(t *testing.T) {
	d := DamageSeries([]float64{0.5, 0.5, 0.5}, []float64{0.25})
	if len(d) != 1 || d[0] != 50 {
		t.Fatalf("truncated damage = %v", d)
	}
	d = DamageSeries([]float64{0}, []float64{0})
	if d[0] != 0 {
		t.Fatalf("zero-baseline damage = %v", d)
	}
}

func TestRecoveryTime(t *testing.T) {
	damage := []float64{0, 5, 30, 80, 60, 25, 14, 10}
	got, err := RecoveryTime(damage, 20, 15)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 { // index 2 (first >= 20) to index 6 (first <= 15)
		t.Fatalf("recovery = %d, want 4", got)
	}
}

func TestRecoveryTimeNeverDamaged(t *testing.T) {
	if _, err := RecoveryTime([]float64{0, 5, 10}, 20, 15); err == nil {
		t.Fatal("expected error when damage never starts")
	}
}

func TestRecoveryTimeNeverRecovers(t *testing.T) {
	got, err := RecoveryTime([]float64{50, 60, 70}, 20, 15)
	if err != nil {
		t.Fatal(err)
	}
	if got != -1 {
		t.Fatalf("recovery = %d, want -1 sentinel", got)
	}
}

func TestMeanTail(t *testing.T) {
	series := []float64{100, 100, 10, 20}
	if got := MeanTail(series, 0.5); got != 15 {
		t.Fatalf("tail mean = %v", got)
	}
	if got := MeanTail(series, 1); got != 57.5 {
		t.Fatalf("full mean = %v", got)
	}
	if got := MeanTail(nil, 0.5); got != 0 {
		t.Fatalf("empty tail = %v", got)
	}
}

func TestCollectorHistograms(t *testing.T) {
	c := NewCollector()
	c.RecordQuery(hitResult(0.12, 2, 10))
	c.RecordQuery(hitResult(0.62, 3, 10))
	c.RecordQuery(missResult(5, 1)) // misses stay out of the histograms
	rh := c.ResponseHistogram()
	if rh.Count() != 2 {
		t.Fatalf("response histogram count = %d", rh.Count())
	}
	if rh.Bucket(2) != 1 { // 0.12s in [0.10, 0.15)
		t.Errorf("bucket for 0.12s = %d", rh.Bucket(2))
	}
	hh := c.HopHistogram()
	if hh.Count() != 2 || hh.Bucket(2) != 1 || hh.Bucket(3) != 1 {
		t.Errorf("hop histogram wrong: count=%d", hh.Count())
	}
}
