// Package metrics aggregates the evaluation quantities the paper
// reports: traffic cost, query response time, query success rate S(t),
// damage rate D(t), the three detection error counts, and damage
// recovery time.
package metrics

import (
	"fmt"

	"ddpolice/internal/flood"
	"ddpolice/internal/stats"
)

// MinuteStats summarizes one closed simulation minute.
type MinuteStats struct {
	Issued       int     // good queries issued (qw(t))
	Succeeded    int     // good queries with >= 1 hit (qs(t))
	QueryMsgs    float64 // query copies on the wire (good + attack)
	HitMsgs      float64 // QueryHit copies on the wire
	ControlMsgs  float64 // DD-POLICE control messages
	CapacityDrop float64 // queries discarded at saturated peers
	OnlinePeers  int
}

// SuccessRate returns qs(t)/qw(t), or 1 when no queries were issued
// (an idle system is not failing).
func (m MinuteStats) SuccessRate() float64 {
	if m.Issued == 0 {
		return 1
	}
	return float64(m.Succeeded) / float64(m.Issued)
}

// TrafficCost returns the minute's total message cost. The paper's
// "traffic cost is a function of consumed network bandwidth and other
// related expenses"; we count overlay message transmissions.
func (m MinuteStats) TrafficCost() float64 {
	return m.QueryMsgs + m.HitMsgs + m.ControlMsgs
}

// Collector accumulates per-minute statistics during a run.
type Collector struct {
	cur        MinuteStats
	minutes    []MinuteStats
	respTime   stats.Welford
	respSample *stats.Sample
	respHist   *stats.Histogram
	hopHist    *stats.Histogram
	hops       stats.Welford
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		respSample: stats.NewSample(4096),
		// 50 ms buckets up to 5 s cover idle through saturated paths.
		respHist: stats.NewHistogram(0, 5, 100),
		hopHist:  stats.NewHistogram(0, 16, 16),
	}
}

// RecordQuery folds in one good-peer query flood result.
func (c *Collector) RecordQuery(res flood.QueryResult) {
	c.cur.Issued++
	c.cur.QueryMsgs += res.QueryMessages
	c.cur.HitMsgs += res.HitMessages
	c.cur.CapacityDrop += float64(res.CapacityDrops)
	if res.Hit {
		c.cur.Succeeded++
		c.respTime.Add(res.ResponseDelay)
		c.respSample.Add(res.ResponseDelay)
		c.respHist.Add(res.ResponseDelay)
		c.hops.Add(float64(res.FirstHitHops))
		c.hopHist.Add(float64(res.FirstHitHops))
	}
}

// RecordBatch folds in an attacker batch flood result.
func (c *Collector) RecordBatch(res flood.BatchResult) {
	c.cur.QueryMsgs += res.QueryMessages
	c.cur.CapacityDrop += res.CapacityDrops
}

// AddControl counts DD-POLICE control messages for the current minute.
func (c *Collector) AddControl(msgs float64) { c.cur.ControlMsgs += msgs }

// SetOnline records the online population at minute close.
func (c *Collector) SetOnline(n int) { c.cur.OnlinePeers = n }

// CloseMinute finalizes the current minute and starts the next.
func (c *Collector) CloseMinute() {
	c.minutes = append(c.minutes, c.cur)
	c.cur = MinuteStats{}
}

// Minutes returns the closed per-minute records.
func (c *Collector) Minutes() []MinuteStats { return c.minutes }

// MeanResponseTime returns the mean response delay of successful
// queries in seconds.
func (c *Collector) MeanResponseTime() float64 { return c.respTime.Mean() }

// ResponseTimeQuantile returns the q-quantile of response delay.
func (c *Collector) ResponseTimeQuantile(q float64) float64 { return c.respSample.Quantile(q) }

// MeanHitHops returns the mean hop distance to the first responder.
func (c *Collector) MeanHitHops() float64 { return c.hops.Mean() }

// ResponseHistogram returns the response-delay histogram (50 ms
// buckets over [0, 5s)).
func (c *Collector) ResponseHistogram() *stats.Histogram { return c.respHist }

// HopHistogram returns the first-hit hop-count histogram.
func (c *Collector) HopHistogram() *stats.Histogram { return c.hopHist }

// OverallSuccessRate returns total qs / total qw across all minutes.
func (c *Collector) OverallSuccessRate() float64 {
	issued, succeeded := 0, 0
	for _, m := range c.minutes {
		issued += m.Issued
		succeeded += m.Succeeded
	}
	if issued == 0 {
		return 1
	}
	return float64(succeeded) / float64(issued)
}

// MeanTrafficPerMinute returns the mean per-minute traffic cost.
func (c *Collector) MeanTrafficPerMinute() float64 {
	if len(c.minutes) == 0 {
		return 0
	}
	var sum float64
	for _, m := range c.minutes {
		sum += m.TrafficCost()
	}
	return sum / float64(len(c.minutes))
}

// SuccessSeries returns S(t) per minute.
func (c *Collector) SuccessSeries() []float64 {
	out := make([]float64, len(c.minutes))
	for i, m := range c.minutes {
		out[i] = m.SuccessRate()
	}
	return out
}

// DamageSeries computes the paper's damage rate per minute:
// D(t) = (S(t) - S'(t)) / S(t) * 100%, where baseline is the success
// series without any attack and attacked the series under attack.
// Series are truncated to the shorter length; negative damage (attacked
// outperforming baseline through noise) clamps to 0.
func DamageSeries(baseline, attacked []float64) []float64 {
	n := len(baseline)
	if len(attacked) < n {
		n = len(attacked)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if baseline[i] <= 0 {
			out[i] = 0
			continue
		}
		d := (baseline[i] - attacked[i]) / baseline[i] * 100
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
	return out
}

// RecoveryTime implements the paper's damage recovery time: "the time
// period from when the system damage rate D(t) is equal or greater
// than 20% until when the damage is equal or less than 15%", in the
// series' time unit (minutes). It returns an error if the damage never
// reaches the start threshold, and -1 recovery if it never recovers.
func RecoveryTime(damage []float64, startPct, endPct float64) (int, error) {
	start := -1
	for i, d := range damage {
		if d >= startPct {
			start = i
			break
		}
	}
	if start < 0 {
		return 0, fmt.Errorf("metrics: damage never reached %v%%", startPct)
	}
	for i := start; i < len(damage); i++ {
		if damage[i] <= endPct {
			return i - start, nil
		}
	}
	return -1, nil
}

// MeanTail returns the mean of the final fraction (0,1] of the series,
// used for "stabilized damage rate" comparisons.
func MeanTail(series []float64, fraction float64) float64 {
	if len(series) == 0 || fraction <= 0 {
		return 0
	}
	from := int(float64(len(series)) * (1 - fraction))
	if from < 0 {
		from = 0
	}
	var sum float64
	for _, v := range series[from:] {
		sum += v
	}
	return sum / float64(len(series)-from)
}
