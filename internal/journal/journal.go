// Package journal is a bounded, lock-light event journal for the
// DD-POLICE detection lifecycle. Producers (the simulator's police
// engine, gnet's monitor/drop/reconnect paths, the fault plane) record
// small structured events; consumers read them back as a slice or as
// NDJSON — one JSON object per line — for the /journal endpoint and
// the detection-timeline analysis in cmd/ddexp.
//
// Timestamps are supplied by the caller: the simulator stamps logical
// seconds from its seeded clock, so two identical-seed runs produce
// byte-identical journals; gnet stamps wall-clock seconds. The journal
// itself never reads a clock.
//
// A nil *Journal is inert — Record is a nil-check no-op — mirroring
// the zero-cost-when-disabled contract of internal/telemetry.
package journal

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"ddpolice/internal/telemetry"
)

// Event types recorded by the detection pipeline and fault plane.
const (
	// TypeWarning: an observer's per-minute inbound count for a
	// neighbor crossed the warning threshold (Value = queries/min).
	TypeWarning = "warning_crossed"
	// TypeNTRequest: the observer started a Neighbor_Traffic round
	// for a suspect (K = buddy members asked).
	TypeNTRequest = "nt_request"
	// TypeNTReport: one buddy member's NT report reached the
	// observer (Member = reporter).
	TypeNTReport = "nt_report"
	// TypeNTTimeout: the verdict proceeded with missing reports
	// treated as zero, §3.3 (Value = reports missing; in the
	// simulator one event per silent member, Member set).
	TypeNTTimeout = "nt_timeout"
	// TypeNTDefer: the verdict was deferred one half-window because
	// no reports had arrived yet (PR 2 quorum deferral).
	TypeNTDefer = "nt_defer"
	// TypeIndicator: indicators computed for a suspect (G = g(j,t),
	// S = s(j,t,i), K = group size, Window = minute index).
	TypeIndicator = "indicator"
	// TypeCut: the observer cut the suspect (G/S as at the verdict).
	TypeCut = "cut"
	// TypeReconnect: reconnect supervisor activity (Detail =
	// attempt|ok|giveup, Value = attempt number).
	TypeReconnect = "reconnect"
	// TypePeerDrop: a live-node connection dropped (Detail =
	// transport|orderly|cut provenance).
	TypePeerDrop = "peer_drop"
	// TypeAttackStart: a flooding agent began its attack.
	TypeAttackStart = "attack_start"
	// TypeCrash: the fault plane crashed a peer without departure
	// notice.
	TypeCrash = "crash"
	// TypePartition: a timed partition cut the overlay (Value =
	// overlay edges cut).
	TypePartition = "partition"
	// TypeHeal: a timed partition healed (Value = edges restored).
	TypeHeal = "heal"
	// TypeShed: a node shed messages under overload (Detail = class
	// "query"/"control", Window = minute, Value = messages shed).
	TypeShed = "shed"
	// TypeDegraded: a node entered or left degraded mode (Detail =
	// "enter"/"exit", Window = minute, Value = shed fraction).
	TypeDegraded = "degraded"
	// TypeQuarantine: a peer's overload circuit breaker transitioned
	// (Peer = subject, Detail = "quarantine"/"probe"/"restore",
	// Value = offered inbound queries that window).
	TypeQuarantine = "quarantine"
	// TypeOverload: a scheduled capacity brownout started or ended
	// (Detail = "start"/"end", Value = capacity factor, K = peers).
	TypeOverload = "overload"
)

// Event is one journal entry. Node is the acting/observing peer, Peer
// the subject (suspect, dropped neighbor, crashed peer), Member a
// third party such as the buddy member reporting. Unused fields are
// omitted from the NDJSON encoding.
type Event struct {
	Seq    uint64  `json:"seq"`
	T      float64 `json:"t"` // seconds: logical (sim) or unix wall-clock (gnet)
	Type   string  `json:"type"`
	Node   int64   `json:"node,omitempty"`
	Peer   int64   `json:"peer,omitempty"`
	Member int64   `json:"member,omitempty"`
	G      float64 `json:"g,omitempty"`
	S      float64 `json:"s,omitempty"`
	K      int     `json:"k,omitempty"`
	Window int     `json:"window,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// Journal is a bounded ring of events. When full, Record overwrites
// the oldest entry and counts it as dropped; Seq keeps increasing, so
// gaps in a read-back are detectable. All methods are safe for
// concurrent use; Record takes one short mutex hold (no allocation, no
// encoding) so it is cheap enough for verdict-path call sites.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	next    int // oldest entry once the ring is full
	seq     uint64
	dropped uint64

	// dropGauge, when attached, mirrors the running drop count into a
	// telemetry gauge so a live /metrics scrape sees ring overflow as
	// it happens (nil-safe: telemetry instruments no-op on nil).
	dropGauge *telemetry.Gauge
}

// New returns a journal retaining the last capacity events (minimum 1).
func New(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{buf: make([]Event, 0, capacity)}
}

// Record stamps the next sequence number on e and appends it,
// overwriting the oldest entry when the ring is full. No-op on nil.
func (j *Journal) Record(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	if len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, e)
	} else {
		j.buf[j.next] = e
		j.next++
		if j.next == len(j.buf) {
			j.next = 0
		}
		j.dropped++
		j.dropGauge.Set(int64(j.dropped))
	}
	j.mu.Unlock()
}

// AttachTelemetry exposes the ring's overflow count as the
// "journal.dropped" gauge in reg, updated live as entries are
// overwritten. No-op when either side is nil.
func (j *Journal) AttachTelemetry(reg *telemetry.Registry) {
	if j == nil || reg == nil {
		return
	}
	j.mu.Lock()
	j.dropGauge = reg.Gauge("journal.dropped")
	j.dropGauge.Set(int64(j.dropped))
	j.mu.Unlock()
}

// Len returns the number of retained events (0 on nil).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.buf)
}

// Dropped returns how many events were overwritten (0 on nil).
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Events returns the retained events oldest-first (nil on nil).
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.buf))
	if len(j.buf) == cap(j.buf) {
		out = append(out, j.buf[j.next:]...)
		out = append(out, j.buf[:j.next]...)
	} else {
		out = append(out, j.buf...)
	}
	return out
}

// EventsSince returns the retained events with Seq strictly greater
// than since, oldest-first — the /journal?since= cursor read. Because
// sequence numbers are monotonic and the ring is ordered, the suffix
// is found by binary search over the rotated view.
func (j *Journal) EventsSince(since uint64) []Event {
	ev := j.Events()
	lo, hi := 0, len(ev)
	for lo < hi {
		mid := (lo + hi) / 2
		if ev[mid].Seq <= since {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return ev[lo:]
}

// Tail returns the newest n retained events oldest-first.
func (j *Journal) Tail(n int) []Event {
	ev := j.Events()
	if n < 0 {
		n = 0
	}
	if len(ev) > n {
		ev = ev[len(ev)-n:]
	}
	return ev
}

// WriteNDJSON writes the retained events oldest-first, one JSON object
// per line. The encoding is deterministic (fixed field order, omitted
// zero fields), so identical journals produce identical bytes.
func (j *Journal) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range j.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadNDJSON parses events back from an NDJSON stream (blank lines are
// skipped). The inverse of WriteNDJSON, used by the analysis tooling
// to consume journals written to disk.
func ReadNDJSON(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
