package journal

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"ddpolice/internal/telemetry"
)

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	j.Record(Event{Type: TypeCut}) // must not panic
	if j.Len() != 0 || j.Dropped() != 0 || j.Events() != nil {
		t.Fatalf("nil journal not inert: len=%d dropped=%d", j.Len(), j.Dropped())
	}
	if got := j.Tail(5); len(got) != 0 {
		t.Fatalf("nil Tail = %v", got)
	}
}

func TestJournalRingOverwritesOldest(t *testing.T) {
	j := New(4)
	for i := 1; i <= 10; i++ {
		j.Record(Event{T: float64(i), Type: TypeNTReport})
	}
	ev := j.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	if j.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", j.Dropped())
	}
	tail := j.Tail(2)
	if len(tail) != 2 || tail[0].Seq != 9 || tail[1].Seq != 10 {
		t.Fatalf("tail = %+v", tail)
	}
}

// TestJournalDroppedTelemetry: ring overflow must surface as the
// "journal.dropped" gauge so a /metrics scrape sees silent data loss.
func TestJournalDroppedTelemetry(t *testing.T) {
	j := New(4)
	reg := telemetry.New()
	j.AttachTelemetry(reg)
	gaugeVal := func() int64 {
		for _, g := range reg.Snapshot().Gauges {
			if g.Name == "journal.dropped" {
				return g.Value
			}
		}
		t.Fatal("journal.dropped gauge absent")
		return 0
	}
	if gaugeVal() != 0 {
		t.Fatalf("initial gauge = %d, want 0", gaugeVal())
	}
	for i := 0; i < 10; i++ {
		j.Record(Event{T: float64(i), Type: TypeNTReport})
	}
	if j.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", j.Dropped())
	}
	if gaugeVal() != 6 {
		t.Fatalf("gauge = %d, want 6", gaugeVal())
	}

	// Attaching late picks up drops that happened before the registry
	// existed.
	j2 := New(2)
	for i := 0; i < 5; i++ {
		j2.Record(Event{T: float64(i), Type: TypeShed})
	}
	reg2 := telemetry.New()
	j2.AttachTelemetry(reg2)
	for _, g := range reg2.Snapshot().Gauges {
		if g.Name == "journal.dropped" && g.Value != 3 {
			t.Fatalf("late-attach gauge = %d, want 3", g.Value)
		}
	}

	// Nil on either side must be a no-op.
	var nilJ *Journal
	nilJ.AttachTelemetry(reg)
	j.AttachTelemetry(nil)
	j.Record(Event{Type: TypeShed})
}

func TestEventsSince(t *testing.T) {
	j := New(4)
	for i := 1; i <= 10; i++ {
		j.Record(Event{T: float64(i), Type: TypeNTReport})
	}
	// Ring holds seq 7..10.
	for _, tc := range []struct {
		since uint64
		first uint64
		n     int
	}{
		{0, 7, 4}, {6, 7, 4}, {7, 8, 3}, {9, 10, 1}, {10, 0, 0}, {99, 0, 0},
	} {
		got := j.EventsSince(tc.since)
		if len(got) != tc.n {
			t.Fatalf("since=%d len = %d, want %d", tc.since, len(got), tc.n)
		}
		if tc.n > 0 && got[0].Seq != tc.first {
			t.Fatalf("since=%d first seq = %d, want %d", tc.since, got[0].Seq, tc.first)
		}
	}
	var nilJ *Journal
	if got := nilJ.EventsSince(0); len(got) != 0 {
		t.Fatalf("nil EventsSince = %v", got)
	}
}

func TestJournalNDJSONRoundTrip(t *testing.T) {
	j := New(16)
	j.Record(Event{T: 61, Type: TypeWarning, Node: 3, Peer: 9, Value: 720, Window: 1})
	j.Record(Event{T: 61, Type: TypeIndicator, Node: 3, Peer: 9, G: 12.5, S: 0.8, K: 5, Window: 1})
	j.Record(Event{T: 61, Type: TypeCut, Node: 3, Peer: 9, G: 12.5, S: 0.8})

	var buf bytes.Buffer
	if err := j.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("NDJSON lines = %d, want 3\n%s", got, buf.String())
	}
	back, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := j.Events()
	if len(back) != len(want) {
		t.Fatalf("round trip len = %d, want %d", len(back), len(want))
	}
	for i := range back {
		if back[i] != want[i] {
			t.Fatalf("event %d round trip = %+v, want %+v", i, back[i], want[i])
		}
	}
}

// TestJournalConcurrentWriters exercises Record/Events/Tail from many
// goroutines; run under -race this is the journal's data-race gate.
func TestJournalConcurrentWriters(t *testing.T) {
	j := New(256)
	const writers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Record(Event{T: float64(i), Type: TypeNTReport, Node: int64(w)})
				if i%64 == 0 {
					_ = j.Tail(8)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = j.Events()
			_ = j.Len()
			_ = j.Dropped()
		}
	}()
	wg.Wait()
	<-done
	if j.Len() != 256 {
		t.Fatalf("len = %d, want 256", j.Len())
	}
	if got := j.Dropped(); got != writers*per-256 {
		t.Fatalf("dropped = %d, want %d", got, writers*per-256)
	}
	ev := j.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("seq gap in ring: %d then %d", ev[i-1].Seq, ev[i].Seq)
		}
	}
}
