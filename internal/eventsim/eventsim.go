// Package eventsim implements a discrete-event simulation engine: a
// virtual clock and a binary-heap event queue with stable FIFO ordering
// among simultaneous events, plus cancellable timers. It backs the
// message-level simulator (internal/msgsim) that cross-validates the
// flow-level simulator.
package eventsim

import (
	"container/heap"
	"fmt"
)

// Time is virtual simulation time in nanosecond ticks. Use the
// convenience constants to stay unit-safe.
type Time int64

// Common durations in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time in seconds.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Event is a scheduled callback.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether Cancel was called (or the event already ran).
func (e *Event) Cancelled() bool { return e.index == -1 && e.fn == nil }

// At returns the scheduled virtual time.
func (e *Event) At() Time { return e.at }

// Engine is a single-threaded discrete-event executor. It is not safe
// for concurrent use; run one Engine per goroutine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	nmax   int // high-water mark of queue length
	nsched uint64
	nrun   uint64
}

// New returns an empty engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// ScheduledEvents returns the total number of events ever scheduled.
func (e *Engine) ScheduledEvents() uint64 { return e.nsched }

// ExecutedEvents returns the number of events that have run.
func (e *Engine) ExecutedEvents() uint64 { return e.nrun }

// QueueHighWater returns the maximum queue length observed.
func (e *Engine) QueueHighWater() int { return e.nmax }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics — it indicates a logic error in the caller.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("eventsim: nil event function")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	e.nsched++
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.nmax {
		e.nmax = len(e.queue)
	}
	return ev
}

// After schedules fn d ticks from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic("eventsim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Cancel removes ev from the queue if it has not run. It is a no-op for
// already-run or already-cancelled events.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.fn = nil
}

// Step runs the earliest event and advances the clock to it. It returns
// false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		ev.index = -1
		fn := ev.fn
		ev.fn = nil
		if fn == nil {
			continue // cancelled after pop race cannot happen, but be safe
		}
		e.now = ev.at
		e.nrun++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the
// clock to the deadline. Events scheduled beyond deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Every schedules fn to run every period ticks starting at now+period,
// until the returned stop function is called.
func (e *Engine) Every(period Time, fn func()) (stop func()) {
	if period <= 0 {
		panic("eventsim: non-positive period")
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = e.After(period, tick)
		}
	}
	pending = e.After(period, tick)
	return func() {
		stopped = true
		e.Cancel(pending)
	}
}

// eventHeap orders by (time, sequence) so simultaneous events run FIFO.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
