package eventsim

import (
	"testing"
)

func TestOrderingByTime(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", order)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := New()
	var at1, at2 Time
	e.After(100, func() {
		at1 = e.Now()
		e.After(50, func() { at2 = e.Now() })
	})
	e.Run()
	if at1 != 100 || at2 != 150 {
		t.Fatalf("at1=%v at2=%v", at1, at2)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	ev := e.At(10, func() { ran = true })
	e.Cancel(ev)
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after cancel")
	}
	// Double-cancel and nil-cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var order []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(Time(i*10), func() { order = append(order, i) })
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var ran []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(12)
	if len(ran) != 2 || e.Now() != 12 {
		t.Fatalf("ran=%v now=%v", ran, e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.RunUntil(100)
	if len(ran) != 4 || e.Now() != 100 {
		t.Fatalf("after second run: ran=%v now=%v", ran, e.Now())
	}
}

func TestRunUntilAdvancesEmptyClock(t *testing.T) {
	e := New()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEvery(t *testing.T) {
	e := New()
	count := 0
	var stop func()
	stop = e.Every(10, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	e.RunUntil(1000)
	if count != 3 {
		t.Fatalf("periodic ran %d times", count)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after stop", e.Pending())
	}
}

func TestEveryTiming(t *testing.T) {
	e := New()
	var times []Time
	stop := e.Every(7, func() { times = append(times, e.Now()) })
	e.RunUntil(22)
	stop()
	want := []Time{7, 14, 21}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn did not panic")
		}
	}()
	New().At(1, nil)
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestCounters(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	ev := e.At(99, func() {})
	e.Cancel(ev)
	e.Run()
	if e.ScheduledEvents() != 6 {
		t.Errorf("scheduled = %d", e.ScheduledEvents())
	}
	if e.ExecutedEvents() != 5 {
		t.Errorf("executed = %d", e.ExecutedEvents())
	}
	if e.QueueHighWater() < 5 {
		t.Errorf("high water = %d", e.QueueHighWater())
	}
}

func TestTimeConversions(t *testing.T) {
	if (2 * Second).Seconds() != 2 {
		t.Error("Seconds conversion wrong")
	}
	if Minute != 60*Second {
		t.Error("Minute constant wrong")
	}
	if s := (1500 * Millisecond).String(); s != "1.500000s" {
		t.Errorf("String() = %q", s)
	}
}

func TestCascadeLoad(t *testing.T) {
	// An event chain that fans out: verifies heap integrity under load.
	e := New()
	count := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		count++
		if depth == 0 {
			return
		}
		for i := 0; i < 3; i++ {
			e.After(Time(i+1), func() { spawn(depth - 1) })
		}
	}
	e.At(0, func() { spawn(8) })
	e.Run()
	want := (3*3*3*3*3*3*3*3*3 - 1) / 2 * 1 // sum 3^0..3^8 = (3^9-1)/2
	if count != want {
		t.Fatalf("count = %d, want %d", count, want)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 10000 {
			e.RunUntil(e.Now() + 500)
		}
	}
	e.Run()
}
