package protocol

import (
	"bufio"
	"fmt"
	"io"
)

// StreamReader decodes a sequence of framed messages from a byte
// stream (the body of a Gnutella connection after the handshake).
type StreamReader struct {
	br     *bufio.Reader
	header [HeaderSize]byte
	// Skip, when true, silently drops payloads that fail body decoding
	// instead of returning an error — a live node must survive a peer
	// that speaks newer payload types.
	Skip bool
	// skipped counts messages dropped in Skip mode.
	skipped uint64
}

// NewStreamReader wraps r; bufSize <= 0 selects a 64 KiB buffer.
func NewStreamReader(r io.Reader, bufSize int) *StreamReader {
	if bufSize <= 0 {
		bufSize = 64 * 1024
	}
	return &StreamReader{br: bufio.NewReaderSize(r, bufSize)}
}

// Skipped returns the number of undecodable messages dropped (Skip mode).
func (sr *StreamReader) Skipped() uint64 { return sr.skipped }

// Next reads one complete message. It returns io.EOF at a clean end of
// stream and io.ErrUnexpectedEOF on truncation.
func (sr *StreamReader) Next() (Message, error) {
	for {
		if _, err := io.ReadFull(sr.br, sr.header[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return Message{}, io.ErrUnexpectedEOF
			}
			return Message{}, err
		}
		h, err := DecodeHeader(sr.header[:])
		if err != nil {
			return Message{}, fmt.Errorf("protocol: stream header: %w", err)
		}
		payload := make([]byte, h.PayloadLen)
		if _, err := io.ReadFull(sr.br, payload); err != nil {
			return Message{}, io.ErrUnexpectedEOF
		}
		full := append(sr.header[:], payload...)
		msg, _, err := Decode(full)
		if err != nil {
			if sr.Skip {
				sr.skipped++
				continue
			}
			return Message{}, err
		}
		return msg, nil
	}
}

// WriteMessage frames and writes one message to w.
func WriteMessage(w io.Writer, guid GUID, ttl, hops byte, body Body) error {
	wire := Encode(nil, guid, ttl, hops, body)
	_, err := w.Write(wire)
	return err
}
