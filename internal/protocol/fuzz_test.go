package protocol

import (
	"bytes"
	"testing"

	"ddpolice/internal/rng"
)

// FuzzDecode drives the wire decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode to the identical
// wire form (round-trip stability). `go test` runs the seed corpus;
// `go test -fuzz=FuzzDecode ./internal/protocol` explores further.
func FuzzDecode(f *testing.F) {
	src := rng.New(1)
	f.Add(Encode(nil, NewGUID(src), 7, 0, Query{Keywords: "seed query"}))
	f.Add(Encode(nil, NewGUID(src), 1, 0, Ping{}))
	f.Add(Encode(nil, NewGUID(src), 1, 0, NeighborTraffic{Outgoing: 20000, Incoming: 3}))
	f.Add(Encode(nil, NewGUID(src), 1, 0, NeighborList{Neighbors: []PeerAddr{AddrFromNodeID(7, 6346)}}))
	f.Add(Encode(nil, NewGUID(src), 3, 2, Bye{Code: 451, Reason: "g>CT"}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := Encode(nil, msg.Header.GUID, msg.Header.TTL, msg.Header.Hops, msg.Body)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round-trip mismatch:\n in: %x\nout: %x", data[:n], re)
		}
	})
}
