package protocol

import (
	"encoding/binary"
	"fmt"
)

// NeighborTraffic is the DD-POLICE query-volume report message, payload
// type 0x83, with the exact body layout of the paper's Table 1:
//
//	byte offset  size  field
//	0            4     Source IP Address
//	4            4     Suspect IP Address
//	8            4     Source timestamp
//	12           4     # of Outgoing queries (Out_query(suspect), past minute)
//	16           4     # of Incoming queries (In_query(suspect), past minute)
//
// Total body size: 20 bytes; a full message is 23 (header) + 20 = 43
// bytes on the wire.
type NeighborTraffic struct {
	SourceIP  [4]byte
	SuspectIP [4]byte
	Timestamp uint32 // seconds, sender's clock
	Outgoing  uint32 // queries source -> suspect in the past minute
	Incoming  uint32 // queries suspect -> source in the past minute
}

// NeighborTrafficBodySize is the Table 1 body length in bytes.
const NeighborTrafficBodySize = 20

// Byte offsets of each Table 1 field within the body.
const (
	OffsetSourceIP  = 0
	OffsetSuspectIP = 4
	OffsetTimestamp = 8
	OffsetOutgoing  = 12
	OffsetIncoming  = 16
)

// Type implements Body.
func (NeighborTraffic) Type() byte { return TypeNeighborTraffic }

// AppendTo implements Body.
func (n NeighborTraffic) AppendTo(dst []byte) []byte {
	var b [NeighborTrafficBodySize]byte
	copy(b[OffsetSourceIP:], n.SourceIP[:])
	copy(b[OffsetSuspectIP:], n.SuspectIP[:])
	binary.LittleEndian.PutUint32(b[OffsetTimestamp:], n.Timestamp)
	binary.LittleEndian.PutUint32(b[OffsetOutgoing:], n.Outgoing)
	binary.LittleEndian.PutUint32(b[OffsetIncoming:], n.Incoming)
	return append(dst, b[:]...)
}

func decodeNeighborTraffic(payload []byte) (Body, error) {
	if len(payload) != NeighborTrafficBodySize {
		return nil, fmt.Errorf("protocol: neighbor_traffic payload %d bytes, want %d",
			len(payload), NeighborTrafficBodySize)
	}
	var n NeighborTraffic
	copy(n.SourceIP[:], payload[OffsetSourceIP:OffsetSourceIP+4])
	copy(n.SuspectIP[:], payload[OffsetSuspectIP:OffsetSuspectIP+4])
	n.Timestamp = binary.LittleEndian.Uint32(payload[OffsetTimestamp:])
	n.Outgoing = binary.LittleEndian.Uint32(payload[OffsetOutgoing:])
	n.Incoming = binary.LittleEndian.Uint32(payload[OffsetIncoming:])
	return n, nil
}
