package protocol

import (
	"bytes"
	"io"
	"testing"

	"ddpolice/internal/rng"
)

// drip delivers bytes one at a time to exercise partial reads.
type drip struct{ buf *bytes.Buffer }

func (d *drip) Read(p []byte) (int, error) {
	if d.buf.Len() == 0 {
		return 0, io.EOF
	}
	return d.buf.Read(p[:1])
}

func streamOf(bodies ...Body) *bytes.Buffer {
	src := rng.New(1)
	var buf bytes.Buffer
	for _, b := range bodies {
		if err := WriteMessage(&buf, NewGUID(src), DefaultTTL, 0, b); err != nil {
			panic(err)
		}
	}
	return &buf
}

func TestStreamReaderSequence(t *testing.T) {
	buf := streamOf(Ping{}, Query{Keywords: "abc"}, NeighborTraffic{Outgoing: 9})
	sr := NewStreamReader(buf, 0)
	wantTypes := []byte{TypePing, TypeQuery, TypeNeighborTraffic}
	for i, want := range wantTypes {
		msg, err := sr.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if msg.Header.Type != want {
			t.Fatalf("message %d type 0x%02x, want 0x%02x", i, msg.Header.Type, want)
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestStreamReaderFragmentedDelivery(t *testing.T) {
	buf := streamOf(Query{Keywords: "fragmented delivery test"}, Ping{})
	sr := NewStreamReader(&drip{buf}, 8)
	msg, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if q := msg.Body.(Query); q.Keywords != "fragmented delivery test" {
		t.Fatalf("keywords = %q", q.Keywords)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatalf("second message: %v", err)
	}
}

func TestStreamReaderTruncation(t *testing.T) {
	buf := streamOf(Query{Keywords: "whole"})
	wire := buf.Bytes()
	sr := NewStreamReader(bytes.NewReader(wire[:len(wire)-3]), 0)
	if _, err := sr.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	// Truncated mid-header too.
	sr = NewStreamReader(bytes.NewReader(wire[:10]), 0)
	if _, err := sr.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("mid-header: want ErrUnexpectedEOF, got %v", err)
	}
}

func TestStreamReaderOversizedPayload(t *testing.T) {
	h := Header{Type: TypeQuery, PayloadLen: MaxPayload + 1}
	wire := h.AppendTo(nil)
	sr := NewStreamReader(bytes.NewReader(wire), 0)
	if _, err := sr.Next(); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestStreamReaderSkipMode(t *testing.T) {
	// A bogus payload type in the middle; Skip mode continues.
	good := streamOf(Ping{})
	badHeader := Header{Type: 0x7F, PayloadLen: 2}
	bad := badHeader.AppendTo(nil)
	bad = append(bad, 0xAA, 0xBB)
	var buf bytes.Buffer
	buf.Write(bad)
	buf.Write(good.Bytes())

	sr := NewStreamReader(bytes.NewReader(buf.Bytes()), 0)
	if _, err := sr.Next(); err == nil {
		t.Fatal("strict mode accepted unknown type")
	}

	sr = NewStreamReader(bytes.NewReader(buf.Bytes()), 0)
	sr.Skip = true
	msg, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.Type != TypePing {
		t.Fatalf("type = 0x%02x", msg.Header.Type)
	}
	if sr.Skipped() != 1 {
		t.Fatalf("skipped = %d", sr.Skipped())
	}
}
