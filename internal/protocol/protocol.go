// Package protocol implements the Gnutella 0.6 wire format used by the
// live nodes (internal/gnet) and by the DD-POLICE extension messages.
//
// Every message starts with the unified 23-byte Gnutella header:
//
//	offset  size  field
//	0       16    Message GUID
//	16      1     Payload type
//	17      1     TTL
//	18      1     Hops
//	19      4     Payload length (little endian)
//
// Payload types: 0x00 Ping, 0x01 Pong, 0x02 Bye, 0x80 Query,
// 0x81 QueryHit, and the two DD-POLICE extensions defined by the paper:
// 0x83 Neighbor_Traffic (Table 1) and 0x84 Neighbor_List (the periodic
// neighbor-list exchange of §3.1).
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ddpolice/internal/rng"
)

// Payload type identifiers.
const (
	TypePing            byte = 0x00
	TypePong            byte = 0x01
	TypeBye             byte = 0x02
	TypeQuery           byte = 0x80
	TypeQueryHit        byte = 0x81
	TypeNeighborTraffic byte = 0x83 // paper Table 1: "can be defined as x83"
	TypeNeighborList    byte = 0x84
)

// HeaderSize is the unified Gnutella message header size in bytes.
const HeaderSize = 23

// MaxPayload bounds payload length to guard against hostile framing.
const MaxPayload = 1 << 20

// DefaultTTL is the customary Gnutella flood TTL.
const DefaultTTL = 7

// GUID is the 16-byte globally unique message identifier.
type GUID [16]byte

// NewGUID draws a random GUID from src.
func NewGUID(src *rng.Source) GUID {
	var g GUID
	binary.LittleEndian.PutUint64(g[0:8], src.Uint64())
	binary.LittleEndian.PutUint64(g[8:16], src.Uint64())
	return g
}

// String renders the GUID in hex.
func (g GUID) String() string { return fmt.Sprintf("%x", g[:]) }

// Header is the unified 23-byte message header.
type Header struct {
	GUID       GUID
	Type       byte
	TTL        byte
	Hops       byte
	PayloadLen uint32
}

// ErrShortBuffer is returned when a decode input is truncated.
var ErrShortBuffer = errors.New("protocol: short buffer")

// ErrPayloadTooLarge is returned when a header advertises an oversized payload.
var ErrPayloadTooLarge = errors.New("protocol: payload length exceeds limit")

// AppendTo appends the 23 wire bytes of h to dst and returns the result.
func (h *Header) AppendTo(dst []byte) []byte {
	dst = append(dst, h.GUID[:]...)
	dst = append(dst, h.Type, h.TTL, h.Hops)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], h.PayloadLen)
	return append(dst, lenBuf[:]...)
}

// DecodeHeader parses a 23-byte header from buf.
func DecodeHeader(buf []byte) (Header, error) {
	var h Header
	if len(buf) < HeaderSize {
		return h, ErrShortBuffer
	}
	copy(h.GUID[:], buf[0:16])
	h.Type = buf[16]
	h.TTL = buf[17]
	h.Hops = buf[18]
	h.PayloadLen = binary.LittleEndian.Uint32(buf[19:23])
	if h.PayloadLen > MaxPayload {
		return h, ErrPayloadTooLarge
	}
	return h, nil
}

// Message is a decoded wire message: header plus typed body.
type Message struct {
	Header Header
	Body   Body
}

// Body is implemented by each payload type.
type Body interface {
	// Type returns the payload type byte.
	Type() byte
	// AppendTo appends the payload wire bytes to dst.
	AppendTo(dst []byte) []byte
}

// Encode serializes header+body, fixing up Type and PayloadLen from body.
func Encode(dst []byte, guid GUID, ttl, hops byte, body Body) []byte {
	payload := body.AppendTo(nil)
	h := Header{GUID: guid, Type: body.Type(), TTL: ttl, Hops: hops, PayloadLen: uint32(len(payload))}
	dst = h.AppendTo(dst)
	return append(dst, payload...)
}

// Decode parses one complete message from buf, returning the message and
// the number of bytes consumed.
func Decode(buf []byte) (Message, int, error) {
	h, err := DecodeHeader(buf)
	if err != nil {
		return Message{}, 0, err
	}
	total := HeaderSize + int(h.PayloadLen)
	if len(buf) < total {
		return Message{}, 0, ErrShortBuffer
	}
	payload := buf[HeaderSize:total]
	var body Body
	switch h.Type {
	case TypePing:
		body, err = decodePing(payload)
	case TypePong:
		body, err = decodePong(payload)
	case TypeBye:
		body, err = decodeBye(payload)
	case TypeQuery:
		body, err = decodeQuery(payload)
	case TypeQueryHit:
		body, err = decodeQueryHit(payload)
	case TypeNeighborTraffic:
		body, err = decodeNeighborTraffic(payload)
	case TypeNeighborList:
		body, err = decodeNeighborList(payload)
	default:
		err = fmt.Errorf("protocol: unknown payload type 0x%02x", h.Type)
	}
	if err != nil {
		return Message{}, 0, err
	}
	return Message{Header: h, Body: body}, total, nil
}
