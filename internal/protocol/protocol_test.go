package protocol

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"ddpolice/internal/rng"
)

func roundTrip(t *testing.T, body Body, ttl, hops byte) Message {
	t.Helper()
	guid := NewGUID(rng.New(1))
	wire := Encode(nil, guid, ttl, hops, body)
	msg, n, err := Decode(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d bytes", n, len(wire))
	}
	if msg.Header.GUID != guid || msg.Header.TTL != ttl || msg.Header.Hops != hops {
		t.Fatalf("header mismatch: %+v", msg.Header)
	}
	if msg.Header.Type != body.Type() {
		t.Fatalf("type = 0x%02x, want 0x%02x", msg.Header.Type, body.Type())
	}
	return msg
}

func TestHeaderLayout(t *testing.T) {
	h := Header{Type: TypeQuery, TTL: 7, Hops: 2, PayloadLen: 0x01020304}
	for i := range h.GUID {
		h.GUID[i] = byte(i)
	}
	wire := h.AppendTo(nil)
	if len(wire) != HeaderSize {
		t.Fatalf("header size = %d, want 23", len(wire))
	}
	if !bytes.Equal(wire[0:16], h.GUID[:]) {
		t.Error("GUID bytes misplaced")
	}
	if wire[16] != TypeQuery || wire[17] != 7 || wire[18] != 2 {
		t.Error("type/ttl/hops misplaced")
	}
	if binary.LittleEndian.Uint32(wire[19:23]) != 0x01020304 {
		t.Error("payload length misplaced")
	}
}

// TestNeighborTrafficTable1Layout verifies the exact byte layout of the
// paper's Table 1: five 4-byte fields at offsets 0, 4, 8, 12, 16.
func TestNeighborTrafficTable1Layout(t *testing.T) {
	nt := NeighborTraffic{
		SourceIP:  [4]byte{10, 0, 0, 1},
		SuspectIP: [4]byte{10, 0, 0, 2},
		Timestamp: 0xAABBCCDD,
		Outgoing:  5000,
		Incoming:  120,
	}
	body := nt.AppendTo(nil)
	if len(body) != NeighborTrafficBodySize {
		t.Fatalf("body size = %d, want %d", len(body), NeighborTrafficBodySize)
	}
	if !bytes.Equal(body[OffsetSourceIP:OffsetSourceIP+4], nt.SourceIP[:]) {
		t.Error("Source IP not at offset 0")
	}
	if !bytes.Equal(body[OffsetSuspectIP:OffsetSuspectIP+4], nt.SuspectIP[:]) {
		t.Error("Suspect IP not at offset 4")
	}
	if binary.LittleEndian.Uint32(body[OffsetTimestamp:]) != 0xAABBCCDD {
		t.Error("timestamp not at offset 8")
	}
	if binary.LittleEndian.Uint32(body[OffsetOutgoing:]) != 5000 {
		t.Error("outgoing count not at offset 12")
	}
	if binary.LittleEndian.Uint32(body[OffsetIncoming:]) != 120 {
		t.Error("incoming count not at offset 16")
	}
	// The paper assigns payload type 0x83.
	if nt.Type() != 0x83 {
		t.Errorf("payload type = 0x%02x, want 0x83", nt.Type())
	}
	// Full message: 23-byte unified header + 20-byte body.
	wire := Encode(nil, GUID{}, 1, 0, nt)
	if len(wire) != 43 {
		t.Errorf("wire size = %d, want 43", len(wire))
	}
}

func TestNeighborTrafficRoundTrip(t *testing.T) {
	if err := quick.Check(func(src, sus [4]byte, ts, out, in uint32) bool {
		nt := NeighborTraffic{SourceIP: src, SuspectIP: sus, Timestamp: ts, Outgoing: out, Incoming: in}
		msg, n, err := Decode(Encode(nil, GUID{1}, 1, 0, nt))
		if err != nil || n != 43 {
			return false
		}
		return msg.Body.(NeighborTraffic) == nt
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPingRoundTrip(t *testing.T) {
	msg := roundTrip(t, Ping{}, DefaultTTL, 0)
	if _, ok := msg.Body.(Ping); !ok {
		t.Fatalf("body type %T", msg.Body)
	}
	if msg.Header.PayloadLen != 0 {
		t.Fatal("ping payload must be empty")
	}
}

func TestPongRoundTrip(t *testing.T) {
	p := Pong{Addr: AddrFromNodeID(1234, 6346), FileCount: 42, KBShared: 1 << 20}
	msg := roundTrip(t, p, 5, 2)
	if got := msg.Body.(Pong); got != p {
		t.Fatalf("pong = %+v, want %+v", got, p)
	}
}

func TestByeRoundTrip(t *testing.T) {
	b := Bye{Code: ByeCodeDDoSSuspect, Reason: "general indicator 6.3 > CT 5"}
	msg := roundTrip(t, b, 1, 0)
	if got := msg.Body.(Bye); got != b {
		t.Fatalf("bye = %+v, want %+v", got, b)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := Query{MinSpeed: 64, Keywords: "free mp3 music"}
	msg := roundTrip(t, q, 7, 0)
	if got := msg.Body.(Query); got != q {
		t.Fatalf("query = %+v, want %+v", got, q)
	}
}

func TestQueryEmptyKeywords(t *testing.T) {
	msg := roundTrip(t, Query{}, 7, 0)
	if got := msg.Body.(Query); got.Keywords != "" {
		t.Fatalf("keywords = %q", got.Keywords)
	}
}

// TestQueryTraceIDRoundTrip: the optional trace-ID trailer must survive
// the wire, and its absence must leave the legacy encoding untouched
// byte-for-byte so untraced nodes interoperate.
func TestQueryTraceIDRoundTrip(t *testing.T) {
	q := Query{MinSpeed: 64, Keywords: "free mp3 music", TraceID: 0xDEADBEEFCAFE0123}
	msg := roundTrip(t, q, 7, 0)
	if got := msg.Body.(Query); got != q {
		t.Fatalf("traced query = %+v, want %+v", got, q)
	}

	// TraceID 0 (untraced) encodes exactly as the legacy format: the
	// extension adds zero bytes.
	legacy := Query{MinSpeed: 64, Keywords: "free mp3 music"}
	wantWire := append([]byte{64, 0}, append([]byte("free mp3 music"), 0)...)
	if got := legacy.AppendTo(nil); !bytes.Equal(got, wantWire) {
		t.Fatalf("legacy wire = %v, want %v", got, wantWire)
	}
	if got := roundTrip(t, legacy, 7, 0).Body.(Query); got != legacy {
		t.Fatalf("legacy query = %+v, want %+v", got, legacy)
	}

	// The traced payload is legacy + 8 little-endian trace-ID bytes +
	// the tag byte.
	wire := q.AppendTo(nil)
	if len(wire) != len(wantWire)+9 {
		t.Fatalf("traced wire len = %d, want %d", len(wire), len(wantWire)+9)
	}
	if wire[len(wire)-1] != 'T' {
		t.Fatalf("traced wire tag = %q", wire[len(wire)-1])
	}
	if !bytes.Equal(wire[:len(wantWire)], wantWire) {
		t.Fatalf("traced wire prefix differs: %v", wire)
	}

	// Empty keywords with a trace ID must also survive.
	qe := Query{TraceID: 7}
	if got := roundTrip(t, qe, 7, 0).Body.(Query); got != qe {
		t.Fatalf("empty-keywords traced query = %+v, want %+v", got, qe)
	}
}

func TestQueryHitRoundTrip(t *testing.T) {
	var qguid GUID
	for i := range qguid {
		qguid[i] = byte(0xF0 + i)
	}
	qh := QueryHit{Addr: AddrFromNodeID(77, 6346), HitCount: 3, QueryGUID: qguid}
	msg := roundTrip(t, qh, 7, 4)
	if got := msg.Body.(QueryHit); got != qh {
		t.Fatalf("queryhit = %+v, want %+v", got, qh)
	}
}

func TestNeighborListRoundTrip(t *testing.T) {
	nl := NeighborList{Neighbors: []PeerAddr{
		AddrFromNodeID(1, 6346), AddrFromNodeID(2, 6346), AddrFromNodeID(500000, 1)}}
	msg := roundTrip(t, nl, 1, 0)
	got := msg.Body.(NeighborList)
	if len(got.Neighbors) != 3 {
		t.Fatalf("neighbors = %v", got.Neighbors)
	}
	for i := range nl.Neighbors {
		if got.Neighbors[i] != nl.Neighbors[i] {
			t.Fatalf("neighbor %d = %v, want %v", i, got.Neighbors[i], nl.Neighbors[i])
		}
	}
}

func TestNeighborListEmpty(t *testing.T) {
	msg := roundTrip(t, NeighborList{}, 1, 0)
	if got := msg.Body.(NeighborList); len(got.Neighbors) != 0 {
		t.Fatalf("neighbors = %v", got.Neighbors)
	}
}

func TestAddrNodeIDRoundTrip(t *testing.T) {
	if err := quick.Check(func(raw uint32) bool {
		id := int32(raw % (1 << 24))
		return AddrFromNodeID(id, 6346).NodeID() == id
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	// Truncated header.
	if _, _, err := Decode(make([]byte, 10)); err != ErrShortBuffer {
		t.Errorf("short header: %v", err)
	}
	// Header advertising more payload than present.
	h := Header{Type: TypePing, PayloadLen: 10}
	if _, _, err := Decode(h.AppendTo(nil)); err != ErrShortBuffer {
		t.Errorf("truncated payload: %v", err)
	}
	// Oversized advertised payload.
	h = Header{Type: TypeQuery, PayloadLen: MaxPayload + 1}
	if _, _, err := Decode(h.AppendTo(nil)); err != ErrPayloadTooLarge {
		t.Errorf("oversized payload: %v", err)
	}
	// Unknown type.
	h = Header{Type: 0x77, PayloadLen: 0}
	if _, _, err := Decode(h.AppendTo(nil)); err == nil {
		t.Error("unknown type accepted")
	}
	// Ping with non-empty payload.
	wire := Header{Type: TypePing, PayloadLen: 1}.appendWith(0xFF)
	if _, _, err := Decode(wire); err == nil {
		t.Error("ping with payload accepted")
	}
	// NeighborTraffic with wrong size.
	wire = Header{Type: TypeNeighborTraffic, PayloadLen: 19}.appendWith(make([]byte, 19)...)
	if _, _, err := Decode(wire); err == nil {
		t.Error("short neighbor_traffic accepted")
	}
	// Query without NUL terminator.
	wire = Header{Type: TypeQuery, PayloadLen: 5}.appendWith(0, 0, 'a', 'b', 'c')
	if _, _, err := Decode(wire); err == nil {
		t.Error("unterminated query accepted")
	}
	// NeighborList with inconsistent count.
	wire = Header{Type: TypeNeighborList, PayloadLen: 4}.appendWith(2, 0, 0, 0)
	if _, _, err := Decode(wire); err == nil {
		t.Error("inconsistent neighbor list accepted")
	}
}

func (h Header) appendWith(payload ...byte) []byte {
	return append(h.AppendTo(nil), payload...)
}

func TestDecodeStream(t *testing.T) {
	// Several messages back to back must decode sequentially.
	src := rng.New(2)
	var wire []byte
	wire = Encode(wire, NewGUID(src), 7, 0, Query{Keywords: "one"})
	wire = Encode(wire, NewGUID(src), 7, 0, Ping{})
	wire = Encode(wire, NewGUID(src), 7, 0, NeighborTraffic{Outgoing: 9})
	var types []byte
	for len(wire) > 0 {
		msg, n, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, msg.Header.Type)
		wire = wire[n:]
	}
	want := []byte{TypeQuery, TypePing, TypeNeighborTraffic}
	if !bytes.Equal(types, want) {
		t.Fatalf("types = %v, want %v", types, want)
	}
}

func TestGUIDUniqueness(t *testing.T) {
	src := rng.New(3)
	seen := make(map[GUID]bool, 10000)
	for i := 0; i < 10000; i++ {
		g := NewGUID(src)
		if seen[g] {
			t.Fatal("GUID collision")
		}
		seen[g] = true
	}
}

func BenchmarkTable1NeighborTrafficCodec(b *testing.B) {
	nt := NeighborTraffic{SourceIP: [4]byte{10, 0, 0, 1}, SuspectIP: [4]byte{10, 0, 0, 2},
		Timestamp: 12345, Outgoing: 5000, Incoming: 100}
	wire := Encode(nil, GUID{1}, 1, 0, nt)
	b.ReportAllocs()
	buf := make([]byte, 0, 64)
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], GUID{1}, 1, 0, nt)
		if _, _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryEncode(b *testing.B) {
	q := Query{Keywords: "ubuntu iso 22.04 desktop amd64"}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], GUID{1}, 7, 0, q)
	}
}
