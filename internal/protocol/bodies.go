package protocol

import (
	"encoding/binary"
	"fmt"
)

// PeerAddr is the 6-byte IPv4 address + port tuple Gnutella uses on the
// wire. In simulation contexts the IP encodes the peer's NodeID.
type PeerAddr struct {
	IP   [4]byte
	Port uint16
}

// AddrFromNodeID maps a simulator node id into a stable synthetic
// address in 10.0.0.0/8 so wire traces remain readable.
func AddrFromNodeID(id int32, port uint16) PeerAddr {
	return PeerAddr{
		IP:   [4]byte{10, byte(id >> 16), byte(id >> 8), byte(id)},
		Port: port,
	}
}

// NodeID recovers the node id from a synthetic 10.x.y.z address.
func (a PeerAddr) NodeID() int32 {
	return int32(a.IP[1])<<16 | int32(a.IP[2])<<8 | int32(a.IP[3])
}

// String renders "a.b.c.d:port".
func (a PeerAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", a.IP[0], a.IP[1], a.IP[2], a.IP[3], a.Port)
}

func (a PeerAddr) appendTo(dst []byte) []byte {
	dst = append(dst, a.IP[:]...)
	var p [2]byte
	binary.LittleEndian.PutUint16(p[:], a.Port)
	return append(dst, p[:]...)
}

func decodeAddr(buf []byte) (PeerAddr, error) {
	var a PeerAddr
	if len(buf) < 6 {
		return a, ErrShortBuffer
	}
	copy(a.IP[:], buf[0:4])
	a.Port = binary.LittleEndian.Uint16(buf[4:6])
	return a, nil
}

// Ping is the keep-alive / discovery probe (payload type 0x00). Its
// payload is empty in Gnutella 0.6.
type Ping struct{}

// Type implements Body.
func (Ping) Type() byte { return TypePing }

// AppendTo implements Body.
func (Ping) AppendTo(dst []byte) []byte { return dst }

func decodePing(payload []byte) (Body, error) {
	if len(payload) != 0 {
		return nil, fmt.Errorf("protocol: ping with %d-byte payload", len(payload))
	}
	return Ping{}, nil
}

// Pong answers a Ping (payload type 0x01): address plus shared-library
// statistics.
type Pong struct {
	Addr      PeerAddr
	FileCount uint32
	KBShared  uint32
}

// Type implements Body.
func (Pong) Type() byte { return TypePong }

// AppendTo implements Body.
func (p Pong) AppendTo(dst []byte) []byte {
	dst = p.Addr.appendTo(dst)
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], p.FileCount)
	binary.LittleEndian.PutUint32(b[4:8], p.KBShared)
	return append(dst, b[:]...)
}

func decodePong(payload []byte) (Body, error) {
	if len(payload) != 14 {
		return nil, fmt.Errorf("protocol: pong payload %d bytes, want 14", len(payload))
	}
	addr, err := decodeAddr(payload)
	if err != nil {
		return nil, err
	}
	return Pong{
		Addr:      addr,
		FileCount: binary.LittleEndian.Uint32(payload[6:10]),
		KBShared:  binary.LittleEndian.Uint32(payload[10:14]),
	}, nil
}

// Bye announces an orderly disconnect (payload type 0x02) with a reason
// code; DD-POLICE uses it to tell a disconnected suspect why it was cut
// ("send out a message to both peers indicating the reason", §3.1).
type Bye struct {
	Code   uint16
	Reason string
}

// Bye reason codes.
const (
	ByeCodeShutdown          uint16 = 200
	ByeCodeDDoSSuspect       uint16 = 451 // cut by DD-POLICE indicator
	ByeCodeNeighborListLiar  uint16 = 452 // inconsistent neighbor-list claim
	ByeCodeCapacityExhausted uint16 = 503
)

// Type implements Body.
func (Bye) Type() byte { return TypeBye }

// AppendTo implements Body.
func (b Bye) AppendTo(dst []byte) []byte {
	var c [2]byte
	binary.LittleEndian.PutUint16(c[:], b.Code)
	dst = append(dst, c[:]...)
	return append(dst, b.Reason...)
}

func decodeBye(payload []byte) (Body, error) {
	if len(payload) < 2 {
		return nil, ErrShortBuffer
	}
	return Bye{
		Code:   binary.LittleEndian.Uint16(payload[0:2]),
		Reason: string(payload[2:]),
	}, nil
}

// Query is a flooded keyword search (payload type 0x80): minimum-speed
// field then a NUL-terminated search string, optionally followed by
// the causal-tracing extension — 8 little-endian bytes of trace ID
// plus the tag byte 'T' appended after the NUL. The extension is
// emitted only when TraceID is nonzero, so untraced queries stay
// byte-identical to the legacy encoding, and the two forms are
// unambiguous: legacy payloads always end in NUL, extended payloads
// always end in the tag.
type Query struct {
	MinSpeed uint16
	Keywords string
	TraceID  uint64 // causal trace ID; 0 = untraced (no wire bytes)
}

// queryTraceTag terminates the trace-ID extension; never 0, so an
// extended payload cannot be mistaken for a legacy NUL-terminated one.
const queryTraceTag = 'T'

// Type implements Body.
func (Query) Type() byte { return TypeQuery }

// AppendTo implements Body.
func (q Query) AppendTo(dst []byte) []byte {
	var s [2]byte
	binary.LittleEndian.PutUint16(s[:], q.MinSpeed)
	dst = append(dst, s[:]...)
	dst = append(dst, q.Keywords...)
	dst = append(dst, 0)
	if q.TraceID != 0 {
		var tid [8]byte
		binary.LittleEndian.PutUint64(tid[:], q.TraceID)
		dst = append(dst, tid[:]...)
		dst = append(dst, queryTraceTag)
	}
	return dst
}

func decodeQuery(payload []byte) (Body, error) {
	if len(payload) < 3 {
		return nil, fmt.Errorf("protocol: query payload %d bytes, want >=3", len(payload))
	}
	if payload[len(payload)-1] == 0 {
		return Query{
			MinSpeed: binary.LittleEndian.Uint16(payload[0:2]),
			Keywords: string(payload[2 : len(payload)-1]),
		}, nil
	}
	// Trace extension: tag byte at the end, trace ID in the 8 bytes
	// before it, keywords NUL immediately before those.
	if len(payload) >= 12 && payload[len(payload)-1] == queryTraceTag && payload[len(payload)-10] == 0 {
		tid := binary.LittleEndian.Uint64(payload[len(payload)-9 : len(payload)-1])
		if tid != 0 {
			return Query{
				MinSpeed: binary.LittleEndian.Uint16(payload[0:2]),
				Keywords: string(payload[2 : len(payload)-10]),
				TraceID:  tid,
			}, nil
		}
	}
	return nil, fmt.Errorf("protocol: query keywords not NUL-terminated")
}

// QueryHit answers a Query along the reverse path (payload type 0x81).
type QueryHit struct {
	Addr      PeerAddr
	HitCount  uint8
	QueryGUID GUID
}

// Type implements Body.
func (QueryHit) Type() byte { return TypeQueryHit }

// AppendTo implements Body.
func (q QueryHit) AppendTo(dst []byte) []byte {
	dst = q.Addr.appendTo(dst)
	dst = append(dst, q.HitCount)
	return append(dst, q.QueryGUID[:]...)
}

func decodeQueryHit(payload []byte) (Body, error) {
	if len(payload) != 23 {
		return nil, fmt.Errorf("protocol: queryhit payload %d bytes, want 23", len(payload))
	}
	addr, err := decodeAddr(payload)
	if err != nil {
		return nil, err
	}
	var qh QueryHit
	qh.Addr = addr
	qh.HitCount = payload[6]
	copy(qh.QueryGUID[:], payload[7:23])
	return qh, nil
}

// NeighborList carries a peer's current neighbor set for the periodic
// neighbor-list exchange of §3.1 (payload type 0x84): a count followed
// by 6-byte address entries.
type NeighborList struct {
	Neighbors []PeerAddr
}

// Type implements Body.
func (NeighborList) Type() byte { return TypeNeighborList }

// AppendTo implements Body.
func (n NeighborList) AppendTo(dst []byte) []byte {
	var c [2]byte
	binary.LittleEndian.PutUint16(c[:], uint16(len(n.Neighbors)))
	dst = append(dst, c[:]...)
	for _, a := range n.Neighbors {
		dst = a.appendTo(dst)
	}
	return dst
}

func decodeNeighborList(payload []byte) (Body, error) {
	if len(payload) < 2 {
		return nil, ErrShortBuffer
	}
	count := int(binary.LittleEndian.Uint16(payload[0:2]))
	if len(payload) != 2+6*count {
		return nil, fmt.Errorf("protocol: neighbor list advertises %d entries in %d bytes", count, len(payload))
	}
	n := NeighborList{Neighbors: make([]PeerAddr, count)}
	for i := 0; i < count; i++ {
		a, err := decodeAddr(payload[2+6*i:])
		if err != nil {
			return nil, err
		}
		n.Neighbors[i] = a
	}
	return n, nil
}
