package msgsim

import (
	"math"
	"testing"

	"ddpolice/internal/eventsim"
	"ddpolice/internal/flood"
	"ddpolice/internal/overlay"
	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
)

func lineOverlay(t *testing.T, n int) *overlay.Overlay {
	t.Helper()
	b := topology.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(topology.NodeID(i), topology.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return overlay.New(b.Build())
}

func baOverlay(t *testing.T, n int, seed uint64) *overlay.Overlay {
	t.Helper()
	g, err := topology.BarabasiAlbert(rng.New(seed), n, 3)
	if err != nil {
		t.Fatal(err)
	}
	return overlay.New(g)
}

func bigCapacity() Config {
	cfg := DefaultConfig()
	cfg.CapacityPerMin = 1e9
	cfg.Burst = 1e9
	cfg.HopJitter = 0
	return cfg
}

func TestLineFloodBasics(t *testing.T) {
	ov := lineOverlay(t, 10)
	cfg := bigCapacity()
	cfg.TTL = 3
	s, err := New(ov, cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s.IssueAt(0, 0, []topology.NodeID{2})
	s.Run(eventsim.Minute)
	out := s.Outcomes()
	if len(out) != 1 {
		t.Fatalf("outcomes = %d", len(out))
	}
	o := out[0]
	if o.Processed != 3 || o.QueryMessages != 3 {
		t.Fatalf("processed=%d messages=%v, want 3/3", o.Processed, o.QueryMessages)
	}
	if !o.Hit || o.FirstHitHops != 2 {
		t.Fatalf("hit=%v hops=%d", o.Hit, o.FirstHitHops)
	}
	// 2 hops out at 50 ms plus 2 hops back: 200 ms.
	if o.ResponseDelay != 200*eventsim.Millisecond {
		t.Fatalf("response = %v", o.ResponseDelay)
	}
}

func TestDuplicateDropsOnTriangle(t *testing.T) {
	b := topology.NewBuilder(3)
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ov := overlay.New(b.Build())
	s, err := New(ov, bigCapacity(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	s.IssueAt(0, 0, nil)
	s.Run(eventsim.Minute)
	o := s.Outcomes()[0]
	if o.Processed != 2 || o.DupDrops != 2 || o.QueryMessages != 4 {
		t.Fatalf("processed=%d dups=%d messages=%v", o.Processed, o.DupDrops, o.QueryMessages)
	}
}

func TestCapacityDropsBlockQuery(t *testing.T) {
	ov := lineOverlay(t, 5)
	cfg := bigCapacity()
	cfg.TTL = 4
	s, err := New(ov, cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust peer 2's tokens before the flood reaches it.
	s.tokens[2] = 0
	s.cfg.CapacityPerMin = 1e-9 // effectively no refill
	s.IssueAt(0, 0, []topology.NodeID{4})
	s.Run(eventsim.Minute)
	o := s.Outcomes()[0]
	if o.Hit {
		t.Fatal("query crossed a saturated peer")
	}
	if o.CapacityDrops == 0 {
		t.Fatal("no capacity drop recorded")
	}
}

func TestOfflineIssuerFinalizes(t *testing.T) {
	ov := lineOverlay(t, 3)
	ov.SetOnline(0, false)
	s, err := New(ov, bigCapacity(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	s.IssueAt(0, 0, nil)
	s.Run(eventsim.Minute)
	if len(s.Outcomes()) != 1 {
		t.Fatal("offline issuance did not finalize")
	}
	if s.Outcomes()[0].QueryMessages != 0 {
		t.Fatal("offline issuer sent messages")
	}
}

func TestConfigValidation(t *testing.T) {
	ov := lineOverlay(t, 3)
	cfg := DefaultConfig()
	cfg.CapacityPerMin = 0
	if _, err := New(ov, cfg, rng.New(1)); err == nil {
		t.Error("zero capacity accepted")
	}
	cfg = DefaultConfig()
	cfg.TTL = 0
	if _, err := New(ov, cfg, rng.New(1)); err == nil {
		t.Error("zero TTL accepted")
	}
}

// TestSimCrossValidation: on an uncongested overlay the message-level
// simulator and the aggregate flood engine must agree exactly on
// reach, message counts, duplicate counts, success, and hop distances.
func TestSimCrossValidation(t *testing.T) {
	ov := baOverlay(t, 200, 5)
	eng := flood.NewEngine(ov)
	budget := flood.NewBudget(200, 1e9)
	cfg := bigCapacity()
	cfg.TTL = 3
	cat := []topology.NodeID{42, 77, 130}
	for issuer := PeerID(0); issuer < 20; issuer++ {
		agg := eng.FloodQuery(issuer, 3, cat, budget, flood.DelayModel{HopDelay: 0.05})
		s, err := New(ov, cfg, rng.New(uint64(issuer)))
		if err != nil {
			t.Fatal(err)
		}
		s.IssueAt(0, issuer, cat)
		s.Run(10 * eventsim.Minute)
		o := s.Outcomes()[0]
		if o.Processed != agg.Processed {
			t.Errorf("issuer %d: processed %d (msg) vs %d (agg)", issuer, o.Processed, agg.Processed)
		}
		if o.QueryMessages != agg.QueryMessages {
			t.Errorf("issuer %d: messages %v vs %v", issuer, o.QueryMessages, agg.QueryMessages)
		}
		if float64(o.DupDrops) != agg.DupMessages {
			t.Errorf("issuer %d: dups %d vs %v", issuer, o.DupDrops, agg.DupMessages)
		}
		if o.Hit != agg.Hit {
			t.Errorf("issuer %d: hit %v vs %v", issuer, o.Hit, agg.Hit)
		}
		if o.Hit && o.FirstHitHops != agg.FirstHitHops {
			t.Errorf("issuer %d: hops %d vs %d", issuer, o.FirstHitHops, agg.FirstHitHops)
		}
	}
}

// TestCrossValidationUnderLoad: with finite capacity, total processed
// counts across many queries must be in the same ballpark in both
// models (they differ in tie-breaking, not in physics).
func TestCrossValidationUnderLoad(t *testing.T) {
	const n = 200
	const queries = 120
	const capacityPerMin = 120

	// Aggregate model: queries spread over 60 ticks.
	ovA := baOverlay(t, n, 9)
	eng := flood.NewEngine(ovA)
	budget := flood.NewBudget(n, capacityPerMin/60)
	src := rng.New(10)
	var aggProcessed, aggHits int
	for tick := 0; tick < 60; tick++ {
		budget.Refill()
		for i := 0; i < queries/60; i++ {
			issuer := PeerID(src.Intn(n))
			r := eng.FloodQuery(issuer, 3, []topology.NodeID{5, 50, 150}, budget, flood.DefaultDelayModel())
			aggProcessed += r.Processed
			if r.Hit {
				aggHits++
			}
		}
	}

	// Message-level model: same issuance schedule.
	ovM := baOverlay(t, n, 9)
	cfg := DefaultConfig()
	cfg.CapacityPerMin = capacityPerMin
	cfg.TTL = 3
	s, err := New(ovM, cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	src = rng.New(10)
	for tick := 0; tick < 60; tick++ {
		for i := 0; i < queries/60; i++ {
			issuer := PeerID(src.Intn(n))
			s.IssueAt(eventsim.Time(tick)*eventsim.Second, issuer, []topology.NodeID{5, 50, 150})
		}
	}
	s.Run(5 * eventsim.Minute)
	var msgProcessed, msgHits int
	for _, o := range s.Outcomes() {
		msgProcessed += o.Processed
		if o.Hit {
			msgHits++
		}
	}
	if len(s.Outcomes()) != queries {
		t.Fatalf("completed %d of %d queries", len(s.Outcomes()), queries)
	}
	ratio := float64(msgProcessed) / float64(aggProcessed)
	if math.Abs(ratio-1) > 0.25 {
		t.Errorf("processed counts diverge: msg=%d agg=%d (ratio %.2f)", msgProcessed, aggProcessed, ratio)
	}
	hitRatio := float64(msgHits+1) / float64(aggHits+1)
	if hitRatio < 0.6 || hitRatio > 1.67 {
		t.Errorf("hits diverge: msg=%d agg=%d", msgHits, aggHits)
	}
}

func TestChurnMidFlight(t *testing.T) {
	// A peer leaving mid-flight must not panic the simulator; in-flight
	// copies addressed to it are dropped.
	ov := lineOverlay(t, 5)
	s, err := New(ov, bigCapacity(), rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	s.IssueAt(0, 0, []topology.NodeID{4})
	s.Engine().At(25*eventsim.Millisecond, func() { ov.SetOnline(2, false) })
	s.Run(eventsim.Minute)
	if len(s.Outcomes()) != 1 {
		t.Fatal("query never finalized")
	}
	if s.Outcomes()[0].Hit {
		t.Fatal("query crossed a departed peer")
	}
}

func BenchmarkSimVsDES(b *testing.B) {
	g, err := topology.BarabasiAlbert(rng.New(1), 200, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("aggregate", func(b *testing.B) {
		ov := overlay.New(g)
		eng := flood.NewEngine(ov)
		budget := flood.NewBudget(200, 1e9)
		for i := 0; i < b.N; i++ {
			eng.FloodQuery(PeerID(i%200), 3, nil, budget, flood.DefaultDelayModel())
		}
	})
	b.Run("message-level", func(b *testing.B) {
		ov := overlay.New(g)
		s, err := New(ov, bigCapacity(), rng.New(2))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			s.IssueAt(s.Engine().Now(), PeerID(i%200), nil)
			s.Run(s.Engine().Now() + eventsim.Minute)
		}
	})
}

// TestAttackDegradesDES: the message-level simulator reproduces the
// core phenomenon independently of the aggregate model — an agent's
// bogus floods consume tokens and good queries start failing.
func TestAttackDegradesDES(t *testing.T) {
	run := func(attack bool) (hits int) {
		ov := baOverlay(t, 120, 21)
		cfg := DefaultConfig()
		cfg.CapacityPerMin = 300
		cfg.TTL = 3
		cfg.HopJitter = 0
		s, err := New(ov, cfg, rng.New(22))
		if err != nil {
			t.Fatal(err)
		}
		if attack {
			if err := s.Attack(7, 0, 2*eventsim.Minute, 3000, AttackSpray); err != nil {
				t.Fatal(err)
			}
		}
		holders := []topology.NodeID{30, 60, 90}
		issuers := rng.New(23)
		for i := 0; i < 60; i++ {
			at := eventsim.Time(i) * 2 * eventsim.Second
			s.IssueAt(at, PeerID(issuers.Intn(120)), holders)
		}
		s.Run(5 * eventsim.Minute)
		for _, o := range s.Outcomes() {
			if o.Issuer != 7 && o.Hit {
				hits++
			}
		}
		return hits
	}
	clean, attacked := run(false), run(true)
	if clean == 0 {
		t.Fatal("no hits even without attack")
	}
	if attacked >= clean {
		t.Fatalf("attack did not reduce hits: %d vs %d", attacked, clean)
	}
}

func TestAttackValidation(t *testing.T) {
	ov := lineOverlay(t, 3)
	s, err := New(ov, bigCapacity(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attack(0, 0, eventsim.Minute, 0, AttackSpray); err == nil {
		t.Error("zero rate accepted")
	}
	if err := s.Attack(0, eventsim.Minute, 0, 100, AttackSpray); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestAttackBroadcastMode(t *testing.T) {
	ov := lineOverlay(t, 4)
	s, err := New(ov, bigCapacity(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attack(0, 0, eventsim.Second, 600, AttackBroadcast); err != nil {
		t.Fatal(err)
	}
	s.Run(eventsim.Minute)
	// 600/min for 1s => ~10 bogus queries, each flooding the line.
	var msgs float64
	for _, o := range s.Outcomes() {
		msgs += o.QueryMessages
	}
	if msgs < 10 {
		t.Fatalf("broadcast attack produced %v messages", msgs)
	}
}
