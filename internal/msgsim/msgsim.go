// Package msgsim is an exact message-level discrete-event simulator of
// Gnutella flooding: every query copy is an event with its own arrival
// time, TTL and path. It exists to cross-validate the tick-driven
// flow/flood simulator (internal/sim) on small configurations — the
// two models must agree on reach, message counts and success — and to
// measure per-message timing effects the aggregate model abstracts.
package msgsim

import (
	"fmt"

	"ddpolice/internal/eventsim"
	"ddpolice/internal/overlay"
	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
)

// PeerID aliases the overlay peer identifier.
type PeerID = overlay.PeerID

// Config parameterizes a message-level run.
type Config struct {
	// CapacityPerMin is each peer's query-processing rate.
	CapacityPerMin float64
	// Burst is the token-bucket depth (defaults to one second of
	// capacity when zero).
	Burst float64
	// HopDelay is the per-hop latency.
	HopDelay eventsim.Time
	// HopJitter adds uniform random latency in [0, HopJitter) per hop.
	HopJitter eventsim.Time
	// TTL is the flood time-to-live.
	TTL int
}

// DefaultConfig mirrors the aggregate simulator's operating point.
func DefaultConfig() Config {
	return Config{
		CapacityPerMin: 1000,
		HopDelay:       50 * eventsim.Millisecond,
		HopJitter:      10 * eventsim.Millisecond,
		TTL:            3,
	}
}

// QueryOutcome reports one completed query flood.
type QueryOutcome struct {
	ID            uint64
	Issuer        PeerID
	Issued        eventsim.Time
	Processed     int     // peers that accepted and forwarded the query
	QueryMessages float64 // copies sent
	DupDrops      int
	CapacityDrops int
	Hit           bool
	FirstHitHops  int
	ResponseDelay eventsim.Time // first QueryHit arrival minus issue time
}

// Simulator runs message-level floods over an overlay.
type Simulator struct {
	cfg    Config
	ov     *overlay.Overlay
	eng    *eventsim.Engine
	src    *rng.Source
	tokens []float64
	refill []eventsim.Time // last token update per peer

	nextQuery uint64
	seen      []map[uint64]struct{}
	active    map[uint64]*activeQuery
	done      []QueryOutcome
}

type activeQuery struct {
	out     QueryOutcome
	holders map[PeerID]struct{}
	pending int // in-flight copies; the query finalizes at zero
}

// New creates a message-level simulator.
func New(ov *overlay.Overlay, cfg Config, src *rng.Source) (*Simulator, error) {
	if cfg.CapacityPerMin <= 0 {
		return nil, fmt.Errorf("msgsim: capacity %v", cfg.CapacityPerMin)
	}
	if cfg.TTL < 1 {
		return nil, fmt.Errorf("msgsim: ttl %d", cfg.TTL)
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.CapacityPerMin / 60
	}
	n := ov.NumPeers()
	s := &Simulator{
		cfg:    cfg,
		ov:     ov,
		eng:    eventsim.New(),
		src:    src,
		tokens: make([]float64, n),
		refill: make([]eventsim.Time, n),
		seen:   make([]map[uint64]struct{}, n),
		active: make(map[uint64]*activeQuery),
	}
	for i := range s.tokens {
		s.tokens[i] = cfg.Burst
		s.seen[i] = make(map[uint64]struct{})
	}
	return s, nil
}

// Engine exposes the underlying event engine (for scheduling workload).
func (s *Simulator) Engine() *eventsim.Engine { return s.eng }

// takeToken updates v's bucket lazily and consumes one token if
// available.
func (s *Simulator) takeToken(v PeerID) bool {
	now := s.eng.Now()
	dt := (now - s.refill[v]).Seconds()
	s.refill[v] = now
	s.tokens[v] += dt * s.cfg.CapacityPerMin / 60
	if s.tokens[v] > s.cfg.Burst {
		s.tokens[v] = s.cfg.Burst
	}
	if s.tokens[v] < 1 {
		return false
	}
	s.tokens[v]--
	return true
}

// IssueAt schedules a query flood from issuer at virtual time t,
// searching for an object held by holders.
func (s *Simulator) IssueAt(t eventsim.Time, issuer PeerID, holders []topology.NodeID) uint64 {
	id := s.nextQuery
	s.nextQuery++
	s.eng.At(t, func() {
		if !s.ov.Online(issuer) {
			s.done = append(s.done, QueryOutcome{
				ID: id, Issuer: issuer, Issued: t, FirstHitHops: -1,
			})
			return
		}
		aq := &activeQuery{
			out:     QueryOutcome{ID: id, Issuer: issuer, Issued: t, FirstHitHops: -1},
			holders: make(map[PeerID]struct{}, len(holders)),
		}
		for _, h := range holders {
			if h != issuer {
				aq.holders[h] = struct{}{}
			}
		}
		s.active[id] = aq
		s.seen[issuer][id] = struct{}{}
		s.forward(aq, issuer, noSender, s.cfg.TTL)
		s.finalizeIfIdle(aq)
	})
	return id
}

const noSender PeerID = -1

// forward sends the query from peer u to all its active neighbors
// except sender, decrementing TTL.
func (s *Simulator) forward(aq *activeQuery, u, sender PeerID, ttl int) {
	if ttl <= 0 {
		return
	}
	var nbuf []PeerID
	for _, v := range s.ov.ActiveNeighbors(u, nbuf) {
		if v == sender {
			continue
		}
		v := v
		delay := s.cfg.HopDelay
		if s.cfg.HopJitter > 0 {
			delay += eventsim.Time(s.src.Uint64n(uint64(s.cfg.HopJitter)))
		}
		aq.out.QueryMessages++
		aq.pending++
		s.eng.After(delay, func() {
			aq.pending--
			s.receive(aq, v, u, ttl-1)
			s.finalizeIfIdle(aq)
		})
	}
}

// receive handles one query copy arriving at v from u with remaining ttl.
func (s *Simulator) receive(aq *activeQuery, v, u PeerID, ttl int) {
	if !s.ov.Online(v) || !s.ov.Connected(u, v) {
		return // receiver left or the link was cut mid-flight
	}
	if _, dup := s.seen[v][aq.out.ID]; dup {
		aq.out.DupDrops++
		return
	}
	s.seen[v][aq.out.ID] = struct{}{}
	if !s.takeToken(v) {
		aq.out.CapacityDrops++
		return
	}
	aq.out.Processed++
	hops := s.cfg.TTL - ttl
	if _, holds := aq.holders[v]; holds && !aq.out.Hit {
		aq.out.Hit = true
		aq.out.FirstHitHops = hops
		// QueryHit travels the reverse path: approximate with the same
		// per-hop delay both ways.
		respond := s.eng.Now() - aq.out.Issued + eventsim.Time(hops)*s.cfg.HopDelay
		aq.out.ResponseDelay = respond
	}
	s.forward(aq, v, u, ttl)
}

func (s *Simulator) finalizeIfIdle(aq *activeQuery) {
	if aq.pending > 0 {
		return
	}
	if _, ok := s.active[aq.out.ID]; !ok {
		return
	}
	delete(s.active, aq.out.ID)
	s.done = append(s.done, aq.out)
}

// Run drains the event queue up to the deadline.
func (s *Simulator) Run(until eventsim.Time) { s.eng.RunUntil(until) }

// Outcomes returns the completed queries in completion order.
func (s *Simulator) Outcomes() []QueryOutcome { return s.done }

// AttackMode selects how a message-level agent spreads its volume.
type AttackMode int

// Attack spreading modes (mirroring internal/attack).
const (
	// AttackSpray sends each bogus query into a single neighbor
	// connection, rotating round-robin (distinct streams per neighbor).
	AttackSpray AttackMode = iota
	// AttackBroadcast floods each bogus query to every neighbor.
	AttackBroadcast
)

// Attack schedules a message-level DDoS agent: from start to stop it
// issues bogus queries (no holders anywhere) at ratePerMin, each one a
// real flood competing for the same per-peer tokens as good queries.
func (s *Simulator) Attack(agent PeerID, start, stop eventsim.Time, ratePerMin float64, mode AttackMode) error {
	if ratePerMin <= 0 {
		return fmt.Errorf("msgsim: attack rate %v", ratePerMin)
	}
	if stop <= start {
		return fmt.Errorf("msgsim: attack window [%v, %v)", start, stop)
	}
	interval := eventsim.Time(float64(eventsim.Minute) / ratePerMin)
	if interval < 1 {
		interval = 1
	}
	round := 0
	var tick func()
	tick = func() {
		if s.eng.Now() >= stop || !s.ov.Online(agent) {
			return
		}
		id := s.nextQuery
		s.nextQuery++
		aq := &activeQuery{
			out:     QueryOutcome{ID: id, Issuer: agent, Issued: s.eng.Now(), FirstHitHops: -1},
			holders: map[PeerID]struct{}{},
		}
		s.active[id] = aq
		s.seen[agent][id] = struct{}{}
		switch mode {
		case AttackBroadcast:
			s.forward(aq, agent, noSender, s.cfg.TTL)
		case AttackSpray:
			var nbuf []PeerID
			nb := s.ov.ActiveNeighbors(agent, nbuf)
			if len(nb) > 0 {
				target := nb[round%len(nb)]
				round++
				s.forwardTo(aq, agent, target, s.cfg.TTL)
			}
		}
		s.finalizeIfIdle(aq)
		s.eng.After(interval, tick)
	}
	s.eng.At(start, tick)
	return nil
}

// forwardTo sends one copy from u to exactly v (the spray entry hop).
func (s *Simulator) forwardTo(aq *activeQuery, u, v PeerID, ttl int) {
	if ttl <= 0 {
		return
	}
	delay := s.cfg.HopDelay
	if s.cfg.HopJitter > 0 {
		delay += eventsim.Time(s.src.Uint64n(uint64(s.cfg.HopJitter)))
	}
	aq.out.QueryMessages++
	aq.pending++
	s.eng.After(delay, func() {
		aq.pending--
		s.receive(aq, v, u, ttl-1)
		s.finalizeIfIdle(aq)
	})
}
