package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Sampled(42) {
		t.Fatal("nil tracer sampled")
	}
	if tc := tr.Start(42, Span{Kind: KindQueryIssue}); tc != nil {
		t.Fatal("nil tracer started a trace")
	}
	tr.Record(42, Span{Kind: KindShed}) // must not panic
	if tr.Len() != 0 || tr.TraceCount() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer not inert")
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tc *Trace
	if got := tc.Add(Span{Kind: KindHop}); got != 0 {
		t.Fatalf("nil Add = %d", got)
	}
	tc.End()
	tc.EndAt(5)
	if tc.ID() != "" {
		t.Fatalf("nil ID = %q", tc.ID())
	}
}

func TestTraceLifecycle(t *testing.T) {
	tr := New(1.0, 0)
	id := QueryID(7, 3, 0)
	tc := tr.Start(id, Span{Kind: KindQueryIssue, T: 3, Node: 12})
	if tc == nil {
		t.Fatal("sample=1 must keep every trace")
	}
	if tr.Len() != 0 {
		t.Fatal("spans visible before End")
	}
	h1 := tc.Add(Span{Kind: KindHop, T: 3.1, Node: 20, Depth: 1})
	h2 := tc.Add(Span{Kind: KindHop, T: 3.2, Node: 21, Parent: h1, Depth: 2})
	if h1 != 1 || h2 != 2 {
		t.Fatalf("ordinals = %d, %d", h1, h2)
	}
	tc.EndAt(5)
	tc.End() // idempotent
	spans := tr.Spans()
	if len(spans) != 3 || tr.TraceCount() != 1 {
		t.Fatalf("spans=%d traces=%d", len(spans), tr.TraceCount())
	}
	if spans[0].ID != 0 || spans[0].Dur != 2 {
		t.Fatalf("root = %+v", spans[0])
	}
	if spans[0].Trace != FormatID(id) || spans[2].Parent != h1 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	tr1 := New(0.3, 0)
	tr2 := New(0.3, 0)
	kept := 0
	for i := uint64(0); i < 1000; i++ {
		id := QueryID(99, i, 0)
		if tr1.Sampled(id) != tr2.Sampled(id) {
			t.Fatalf("sampling disagrees for id %d", id)
		}
		if tr1.Sampled(id) {
			kept++
		}
	}
	// The hash is uniform, so 30% ± a generous margin.
	if kept < 200 || kept > 400 {
		t.Fatalf("kept %d/1000 at rate 0.3", kept)
	}
	if New(0, 0).Sampled(123) {
		t.Fatal("rate 0 sampled")
	}
	if !New(1, 0).Sampled(123) {
		t.Fatal("rate 1 rejected")
	}
}

func TestTracerCapDropsWholeTraces(t *testing.T) {
	tr := New(1.0, 4)
	tc := tr.Start(1, Span{Kind: KindQueryIssue})
	tc.Add(Span{Kind: KindHop})
	tc.End() // 2 spans committed
	tc2 := tr.Start(2, Span{Kind: KindQueryIssue})
	tc2.Add(Span{Kind: KindHop})
	tc2.Add(Span{Kind: KindHop}) // 3 spans: would exceed the cap of 4
	tc2.End()
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2 (second trace dropped whole)", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestIDsDistinctAcrossLifecycles(t *testing.T) {
	seen := map[uint64]string{}
	add := func(id uint64, what string) {
		if prev, ok := seen[id]; ok {
			t.Fatalf("id collision: %s vs %s", prev, what)
		}
		seen[id] = what
	}
	add(QueryID(7, 1, 2), "query")
	add(DetectionID(7, 1, 2, 3), "detection")
	add(OverloadID(7), "overload")
	add(QueryID(8, 1, 2), "query other seed")
	if QueryID(7, 1, 2) != QueryID(7, 1, 2) {
		t.Fatal("QueryID not pure")
	}
}

func TestFormatParseID(t *testing.T) {
	for _, id := range []uint64{0, 1, 0xDEADBEEF, ^uint64(0)} {
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID(%d) = %q", id, s)
		}
		back, err := ParseID(s)
		if err != nil || back != id {
			t.Fatalf("ParseID(%q) = %d, %v", s, back, err)
		}
	}
	if _, err := ParseID("zzzz"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	tr := New(1.0, 0)
	tc := tr.Start(QueryID(1, 0, 0), Span{Kind: KindQueryIssue, T: 1, Node: 3, Value: 17})
	tc.Add(Span{Kind: KindHop, T: 1.5, Node: 4, Peer: 3, Depth: 1})
	tc.Add(Span{Kind: KindTTLDeath, T: 2, Detail: "saturated"})
	tc.End()

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Spans()
	if len(back) != len(want) {
		t.Fatalf("round trip len = %d, want %d", len(back), len(want))
	}
	for i := range back {
		if back[i] != want[i] {
			t.Fatalf("span %d = %+v, want %+v", i, back[i], want[i])
		}
	}

	// Identical span streams must serialize byte-identically.
	var buf2 bytes.Buffer
	if err := tr.WriteNDJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		// buf was consumed by ReadNDJSON; re-render for the check.
		var a, b bytes.Buffer
		_ = tr.WriteNDJSON(&a)
		_ = tr.WriteNDJSON(&b)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("NDJSON not deterministic")
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := New(1.0, 0)
	tc := tr.Start(QueryID(1, 0, 0), Span{Kind: KindQueryIssue, T: 1, Node: 3})
	tc.Add(Span{Kind: KindHop, T: 1.5, Node: 4, Depth: 1})
	tc.End()
	tr.Record(DetectionID(1, 2, 3, 4), Span{Kind: KindCut, T: 9, Node: 2, Peer: 3})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int64   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 3 {
		t.Fatalf("doc = %+v", doc)
	}
	ev := doc.TraceEvents
	if ev[0].Ph != "X" || ev[0].TS != 1e6 || ev[0].Cat != "query" {
		t.Fatalf("root event = %+v", ev[0])
	}
	if ev[1].Dur != 1 { // instant span gets the 1 µs floor
		t.Fatalf("hop dur = %g", ev[1].Dur)
	}
	if ev[2].Cat != "detection" || ev[2].PID == ev[0].PID {
		t.Fatalf("cut event = %+v (pid clash with %+v)", ev[2], ev[0])
	}
	if ev[0].PID != ev[1].PID {
		t.Fatal("same trace split across pids")
	}
}

func TestReadNDJSONRejectsGarbage(t *testing.T) {
	_, err := ReadNDJSON(strings.NewReader("{\"trace\":\"x\"}\nnot json\n"))
	if err == nil {
		t.Fatal("garbage line accepted")
	}
}
