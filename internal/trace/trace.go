// Package trace is the causal tracing plane: span trees that connect
// the flat counters (telemetry) and flat events (journal) into the two
// causal stories the paper's evidence rests on — how one query's flood
// propagated hop by hop until delivery or death, and how one detection
// went from a crossed warning threshold through the NT round to a cut.
//
// The package mirrors the journal/telemetry contracts:
//
//   - nil-gated: every method on a nil *Tracer or nil *Trace is a
//     no-op, so instrumentation sites cost one pointer check when
//     tracing is off and the disabled paths stay byte-identical.
//   - deterministic: trace IDs are pure functions of the run seed and
//     the causal coordinates of the traced unit (tick and query index,
//     or observer/suspect/window), derived with rng.SubSeed, which
//     consumes no generator state. Identical-seed runs emit
//     byte-identical span streams.
//   - bounded: the span store has a hard cap; whole traces are dropped
//     (deterministically, in commit order) once it is full.
//
// Sampling is head-based on the trace ID: a trace is either recorded
// in full or not at all, decided by hashing the ID against a
// configurable rate. Because the ID is seed-derived, the sampled
// subset is itself deterministic.
package trace

import (
	"fmt"
	"math"
	"sync"

	"ddpolice/internal/rng"
)

// Span kinds. Query-trace kinds cover the flood lifecycle; detection
// kinds reuse the journal's event-type names so the two planes
// correlate textually; overload kinds annotate shed/quarantine/degraded
// transitions.
const (
	// Query lifecycle.
	KindQueryIssue = "query_issue" // root: a peer issued a search
	KindHop        = "hop"         // first delivery of the query to one peer
	KindDelivery   = "delivery"    // a replica holder answered
	KindTTLDeath   = "ttl_death"   // flood exhausted with no hit
	KindCongestion = "congestion_drop" // copy discarded at a saturated peer

	// Detection lifecycle (journal-aligned names).
	KindWarning   = "warning_crossed"
	KindNTRequest = "nt_request"
	KindNTReport  = "nt_report"
	KindNTTimeout = "nt_timeout"
	KindNTDefer   = "nt_defer"
	KindIndicator = "indicator"
	KindCut       = "cut"

	// Overload annotations.
	KindOverload   = "overload" // root of the per-run annotation trace
	KindShed       = "shed"
	KindQuarantine = "quarantine"
	KindDegraded   = "degraded"
)

// Span is one node of a causal trace tree. IDs are ordinals within
// their trace (the root is 0); Parent links form the tree. Field order
// is part of the NDJSON determinism contract — do not reorder.
type Span struct {
	Trace  string  `json:"trace"`            // 16-hex-digit trace ID
	ID     uint32  `json:"id"`               // ordinal within the trace; 0 = root
	Parent uint32  `json:"parent,omitempty"` // parent ordinal (0 for root/children of root)
	Kind   string  `json:"kind"`
	T      float64 `json:"t"`              // start, seconds (sim time or unix)
	Dur    float64 `json:"dur,omitempty"`  // duration, seconds; 0 = instant
	Node   int64   `json:"node,omitempty"` // acting peer/node
	Peer   int64   `json:"peer,omitempty"` // counterpart (suspect, NT member, hop parent)
	Depth  int     `json:"depth,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// Tracer collects committed spans. It is safe for concurrent use (live
// gnet nodes share one Tracer the way they share a Journal); the
// simulator drives it single-threaded, so commit order — and therefore
// the exported byte stream — is deterministic there.
type Tracer struct {
	mu        sync.Mutex
	threshold uint64 // keep a trace when sampleHash(id) < threshold
	limit     int    // max retained spans
	spans     []Span
	traces    int
	dropped   uint64 // spans discarded at the cap
}

// New returns a Tracer that head-samples traces at the given rate
// (0..1; 1 keeps everything) and retains at most maxSpans spans.
// maxSpans <= 0 selects a generous default.
func New(sample float64, maxSpans int) *Tracer {
	if maxSpans <= 0 {
		maxSpans = 1 << 20
	}
	t := &Tracer{limit: maxSpans}
	switch {
	case sample >= 1:
		t.threshold = math.MaxUint64
	case sample <= 0:
		t.threshold = 0
	default:
		t.threshold = uint64(sample * float64(math.MaxUint64))
	}
	return t
}

// sampleHash decorrelates the sampling decision from the structure of
// the ID itself (IDs are already SubSeed outputs, but re-mixing keeps
// the decision independent of how callers chose their dimensions).
func sampleHash(id uint64) uint64 { return rng.SubSeed(id, 0x7ace) }

// Sampled reports whether the trace with this ID passes head sampling.
// A nil Tracer samples nothing.
func (t *Tracer) Sampled(id uint64) bool {
	if t == nil || t.threshold == 0 {
		return false
	}
	if t.threshold == math.MaxUint64 {
		return true
	}
	return sampleHash(id) < t.threshold
}

// Start opens a trace with the given root span if the ID passes head
// sampling, returning nil otherwise (and on a nil Tracer). All methods
// of the returned *Trace are nil-safe, so callers may thread the
// result through unconditionally.
func (t *Tracer) Start(id uint64, root Span) *Trace {
	if !t.Sampled(id) {
		return nil
	}
	root.Trace = FormatID(id)
	root.ID = 0
	tc := &Trace{tr: t, id: root.Trace, next: 1}
	tc.spans = append(tc.spans, root)
	return tc
}

// Record commits one standalone span into the trace with the given ID,
// subject to head sampling. Live gnet nodes use it for spans whose
// tree position cannot be coordinated across processes (the trace ID
// groups them; ordering falls to timestamps).
func (t *Tracer) Record(id uint64, s Span) {
	if !t.Sampled(id) {
		return
	}
	s.Trace = FormatID(id)
	t.commit([]Span{s}, false)
}

// commit appends a finished trace's spans, dropping the whole batch if
// it would exceed the cap. newTrace counts it toward TraceCount. A nil
// receiver is inert: callers reach commit through Sampled, which
// rejects nil tracers, but the nil-gate contract (ddnilgate) holds on
// the guard, not on that coincidence.
func (t *Tracer) commit(spans []Span, newTrace bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans)+len(spans) > t.limit {
		t.dropped += uint64(len(spans))
		return
	}
	t.spans = append(t.spans, spans...)
	if newTrace {
		t.traces++
	}
}

// Spans returns a snapshot copy of every committed span, in commit
// order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of committed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// TraceCount returns the number of committed whole traces (standalone
// Record spans are not counted).
func (t *Tracer) TraceCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traces
}

// Dropped returns the number of spans discarded because the store was
// full.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Trace accumulates the spans of one trace tree and commits them
// atomically at End. Not safe for concurrent use; each trace belongs
// to one goroutine (the sim loop, or one gnet node's run loop).
type Trace struct {
	tr    *Tracer
	id    string
	next  uint32
	spans []Span
}

// Add appends a child span, assigning its ordinal ID, and returns that
// ID for use as a Parent by deeper spans. On a nil Trace it returns 0.
func (tc *Trace) Add(s Span) uint32 {
	if tc == nil {
		return 0
	}
	s.Trace = tc.id
	s.ID = tc.next
	tc.next++
	tc.spans = append(tc.spans, s)
	return s.ID
}

// End commits the trace to its Tracer. Idempotent: a second End is a
// no-op.
func (tc *Trace) End() {
	if tc == nil || tc.tr == nil {
		return
	}
	tc.tr.commit(tc.spans, true)
	tc.tr = nil
}

// EndAt stretches the root span to end at time t (if later than its
// start) and commits.
func (tc *Trace) EndAt(t float64) {
	if tc == nil {
		return
	}
	if d := t - tc.spans[0].T; d > 0 {
		tc.spans[0].Dur = d
	}
	tc.End()
}

// ID returns the formatted trace ID ("" on nil).
func (tc *Trace) ID() string {
	if tc == nil {
		return ""
	}
	return tc.id
}

// Trace-ID derivations. Each lifecycle gets its own leading dimension
// so IDs never collide across kinds; all are pure functions of the run
// seed, consuming no generator state.

// QueryID identifies the flood of the index-th query issued at the
// given tick.
func QueryID(seed, tick, index uint64) uint64 {
	return rng.SubSeed(seed, 1, tick, index)
}

// DetectionID identifies one observer's evaluation of one suspect in
// one minute window.
func DetectionID(seed, observer, suspect, window uint64) uint64 {
	return rng.SubSeed(seed, 2, observer, suspect, window)
}

// OverloadID identifies the per-run (or per-node, on the live path)
// overload annotation trace.
func OverloadID(seed uint64) uint64 {
	return rng.SubSeed(seed, 3)
}

// FormatID renders a trace ID as 16 lowercase hex digits.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID inverts FormatID.
func ParseID(s string) (uint64, error) {
	var id uint64
	if _, err := fmt.Sscanf(s, "%x", &id); err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return id, nil
}
