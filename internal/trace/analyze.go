package trace

import (
	"fmt"
	"io"
	"sort"
)

// TraceView is one reassembled trace: every span sharing a trace ID,
// in recorded order.
type TraceView struct {
	ID    string
	Spans []Span
}

// Group reassembles a span stream into traces, ordered by each
// trace's first appearance (deterministic for deterministic streams).
func Group(spans []Span) []TraceView {
	idx := make(map[string]int)
	var out []TraceView
	for _, s := range spans {
		i, ok := idx[s.Trace]
		if !ok {
			i = len(out)
			idx[s.Trace] = i
			out = append(out, TraceView{ID: s.Trace})
		}
		out[i].Spans = append(out[i].Spans, s)
	}
	return out
}

// Root returns the root span (ordinal 0), or the first span when the
// stream has no explicit root (live-path standalone spans).
func (tv *TraceView) Root() *Span {
	for i := range tv.Spans {
		if tv.Spans[i].ID == 0 {
			return &tv.Spans[i]
		}
	}
	if len(tv.Spans) == 0 {
		return nil
	}
	return &tv.Spans[0]
}

// Find returns the first span of the given kind, or nil.
func (tv *TraceView) Find(kind string) *Span {
	for i := range tv.Spans {
		if tv.Spans[i].Kind == kind {
			return &tv.Spans[i]
		}
	}
	return nil
}

// Kind classifies the trace by its root span's lifecycle.
func (tv *TraceView) Kind() string {
	if r := tv.Root(); r != nil {
		return kindCat(r.Kind)
	}
	return ""
}

// CriticalPath walks parent links from the trace's terminal span back
// to the root and returns the chain root-first. The terminal is the
// cut span if present, else the indicator, else the last span.
func CriticalPath(tv TraceView) []Span {
	if len(tv.Spans) == 0 {
		return nil
	}
	byID := make(map[uint32]Span, len(tv.Spans))
	for _, s := range tv.Spans {
		byID[s.ID] = s
	}
	term := tv.Find(KindCut)
	if term == nil {
		term = tv.Find(KindIndicator)
	}
	if term == nil {
		term = &tv.Spans[len(tv.Spans)-1]
	}
	var rev []Span
	cur := *term
	for {
		rev = append(rev, cur)
		if cur.ID == 0 {
			break
		}
		next, ok := byID[cur.Parent]
		if !ok || next.ID == cur.ID || len(rev) > len(tv.Spans) {
			break
		}
		cur = next
	}
	out := make([]Span, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// FanOut returns, for a query trace, the number of hop spans at each
// depth (index 0 is depth 1). Non-hop spans are ignored.
func FanOut(tv TraceView) []int {
	var out []int
	for _, s := range tv.Spans {
		if s.Kind != KindHop || s.Depth < 1 {
			continue
		}
		for len(out) < s.Depth {
			out = append(out, 0)
		}
		out[s.Depth-1]++
	}
	return out
}

// DetectionPath is the stage breakdown of one detection trace, every
// stage as seconds after the warning crossed. Stages that never
// happened are -1.
type DetectionPath struct {
	Trace       string
	Node        int64   // observing peer
	Suspect     int64
	WarnT       float64 // absolute time the warning crossed
	RequestSec  float64 // warning -> nt_request
	FirstRepSec float64 // warning -> first nt_report
	IndicSec    float64 // warning -> indicator
	CutSec      float64 // warning -> cut
	Reports     int
	Timeouts    int
	Defers      int
}

// DetectionPaths extracts the stage breakdown of every detection trace
// in the stream (traces whose root is a warning span), sorted by
// warning time then trace ID.
func DetectionPaths(views []TraceView) []DetectionPath {
	var out []DetectionPath
	for _, tv := range views {
		root := tv.Root()
		if root == nil || root.Kind != KindWarning {
			continue
		}
		p := DetectionPath{
			Trace: tv.ID, Node: root.Node, Suspect: root.Peer, WarnT: root.T,
			RequestSec: -1, FirstRepSec: -1, IndicSec: -1, CutSec: -1,
		}
		for _, s := range tv.Spans {
			rel := s.T - root.T
			switch s.Kind {
			case KindNTRequest:
				if p.RequestSec < 0 {
					p.RequestSec = rel
				}
			case KindNTReport:
				p.Reports++
				// Reports carry their round-trip in Dur; the report
				// lands at T+Dur.
				if at := rel + s.Dur; p.FirstRepSec < 0 || at < p.FirstRepSec {
					p.FirstRepSec = at
				}
			case KindNTTimeout:
				p.Timeouts++
			case KindNTDefer:
				p.Defers++
			case KindIndicator:
				if p.IndicSec < 0 {
					p.IndicSec = rel
				}
			case KindCut:
				if p.CutSec < 0 {
					p.CutSec = rel
				}
			}
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WarnT != out[j].WarnT {
			return out[i].WarnT < out[j].WarnT
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

// WriteTree prints the trace as an ASCII span tree, children indented
// under their parents in recorded order.
func WriteTree(w io.Writer, tv TraceView) error {
	if len(tv.Spans) == 0 {
		return nil
	}
	children := make(map[uint32][]int)
	var roots []int
	for i, s := range tv.Spans {
		if s.ID == 0 || (s.Parent == s.ID) {
			roots = append(roots, i)
			continue
		}
		children[s.Parent] = append(children[s.Parent], i)
	}
	if len(roots) == 0 { // live-path stream with no explicit root
		roots = append(roots, 0)
		for i := 1; i < len(tv.Spans); i++ {
			roots = append(roots, i)
		}
		children = nil
	}
	if _, err := fmt.Fprintf(w, "trace %s\n", tv.ID); err != nil {
		return err
	}
	var rec func(idx int, prefix string, last bool) error
	rec = func(idx int, prefix string, last bool) error {
		s := tv.Spans[idx]
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		line := fmt.Sprintf("%s%s%s t=%.3f", prefix, branch, s.Kind, s.T)
		if s.Dur > 0 {
			line += fmt.Sprintf(" dur=%.3f", s.Dur)
		}
		if s.Node != 0 {
			line += fmt.Sprintf(" node=%d", s.Node)
		}
		if s.Peer != 0 {
			line += fmt.Sprintf(" peer=%d", s.Peer)
		}
		if s.Depth != 0 {
			line += fmt.Sprintf(" depth=%d", s.Depth)
		}
		if s.Value != 0 {
			line += fmt.Sprintf(" value=%g", s.Value)
		}
		if s.Detail != "" {
			line += " " + s.Detail
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		kids := children[s.ID]
		for i, ci := range kids {
			if err := rec(ci, prefix+cont, i == len(kids)-1); err != nil {
				return err
			}
		}
		return nil
	}
	for i, ri := range roots {
		if err := rec(ri, "", i == len(roots)-1); err != nil {
			return err
		}
	}
	return nil
}
