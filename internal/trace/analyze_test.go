package trace

import (
	"strings"
	"testing"
)

// buildDetection assembles a realistic detection trace: warning →
// nt_request → two reports + one timeout → indicator → cut.
func buildDetection(tr *Tracer, seed uint64) string {
	id := DetectionID(seed, 3, 9, 1)
	tc := tr.Start(id, Span{Kind: KindWarning, T: 60, Node: 3, Peer: 9, Value: 720})
	req := tc.Add(Span{Kind: KindNTRequest, T: 61, Node: 3, Peer: 9, Value: 3})
	tc.Add(Span{Kind: KindNTReport, T: 61, Node: 3, Peer: 5, Parent: req, Dur: 0.5})
	tc.Add(Span{Kind: KindNTReport, T: 61, Node: 3, Peer: 6, Parent: req, Dur: 1.5})
	tc.Add(Span{Kind: KindNTTimeout, T: 91, Node: 3, Peer: 7, Parent: req})
	ind := tc.Add(Span{Kind: KindIndicator, T: 91, Node: 3, Peer: 9, Parent: req, Value: 6.3})
	tc.Add(Span{Kind: KindCut, T: 91, Node: 3, Peer: 9, Parent: ind, Value: 6.3})
	tc.End()
	return FormatID(id)
}

func TestGroupAndRoot(t *testing.T) {
	tr := New(1.0, 0)
	buildDetection(tr, 1)
	tc := tr.Start(QueryID(1, 0, 0), Span{Kind: KindQueryIssue, T: 0, Node: 8})
	tc.Add(Span{Kind: KindHop, T: 0.5, Node: 9, Depth: 1})
	tc.End()

	views := Group(tr.Spans())
	if len(views) != 2 {
		t.Fatalf("views = %d, want 2", len(views))
	}
	if views[0].Kind() != "detection" || views[1].Kind() != "query" {
		t.Fatalf("kinds = %q, %q", views[0].Kind(), views[1].Kind())
	}
	if r := views[0].Root(); r == nil || r.Kind != KindWarning {
		t.Fatalf("detection root = %+v", r)
	}
	if s := views[0].Find(KindCut); s == nil || s.Value != 6.3 {
		t.Fatalf("Find(cut) = %+v", s)
	}
}

func TestCriticalPath(t *testing.T) {
	tr := New(1.0, 0)
	buildDetection(tr, 1)
	views := Group(tr.Spans())
	path := CriticalPath(views[0])
	var kinds []string
	for _, s := range path {
		kinds = append(kinds, s.Kind)
	}
	want := []string{KindWarning, KindNTRequest, KindIndicator, KindCut}
	if len(kinds) != len(want) {
		t.Fatalf("path = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("path = %v, want %v", kinds, want)
		}
	}
}

func TestFanOut(t *testing.T) {
	tr := New(1.0, 0)
	tc := tr.Start(QueryID(1, 0, 0), Span{Kind: KindQueryIssue, T: 0})
	for i := 0; i < 3; i++ {
		tc.Add(Span{Kind: KindHop, T: 0.5, Depth: 1})
	}
	for i := 0; i < 5; i++ {
		tc.Add(Span{Kind: KindHop, T: 1, Depth: 2})
	}
	tc.Add(Span{Kind: KindCongestion, T: 1, Depth: 2}) // not a hop
	tc.Add(Span{Kind: KindHop, T: 1.5, Depth: 4})      // gap at depth 3
	tc.End()
	views := Group(tr.Spans())
	got := FanOut(views[0])
	want := []int{3, 5, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("fanout = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fanout = %v, want %v", got, want)
		}
	}
}

func TestDetectionPaths(t *testing.T) {
	tr := New(1.0, 0)
	buildDetection(tr, 1)
	// A query trace in the same stream must be ignored.
	qc := tr.Start(QueryID(1, 0, 0), Span{Kind: KindQueryIssue, T: 0})
	qc.End()

	paths := DetectionPaths(Group(tr.Spans()))
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	p := paths[0]
	if p.Node != 3 || p.Suspect != 9 || p.WarnT != 60 {
		t.Fatalf("path = %+v", p)
	}
	if p.RequestSec != 1 || p.FirstRepSec != 1.5 || p.IndicSec != 31 || p.CutSec != 31 {
		t.Fatalf("stages = %+v", p)
	}
	if p.Reports != 2 || p.Timeouts != 1 || p.Defers != 0 {
		t.Fatalf("counts = %+v", p)
	}
}

func TestDetectionPathsMissingStages(t *testing.T) {
	tr := New(1.0, 0)
	tc := tr.Start(DetectionID(1, 2, 3, 0), Span{Kind: KindWarning, T: 10, Node: 2, Peer: 3})
	tc.End() // warning that never progressed
	paths := DetectionPaths(Group(tr.Spans()))
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	p := paths[0]
	if p.RequestSec != -1 || p.FirstRepSec != -1 || p.IndicSec != -1 || p.CutSec != -1 {
		t.Fatalf("missing stages not -1: %+v", p)
	}
}

func TestWriteTree(t *testing.T) {
	tr := New(1.0, 0)
	id := buildDetection(tr, 1)
	views := Group(tr.Spans())
	var sb strings.Builder
	if err := WriteTree(&sb, views[0]); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "trace "+id) {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, want := range []string{KindWarning, KindNTRequest, KindNTReport, KindIndicator, KindCut, "└─"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree missing %q:\n%s", want, out)
		}
	}
	// The cut is a child of the indicator: it must be indented deeper.
	lines := strings.Split(out, "\n")
	indent := func(kind string) int {
		for _, l := range lines {
			if strings.Contains(l, kind) {
				return strings.Index(l, "─")
			}
		}
		return -1
	}
	if indent(KindCut) <= indent(KindIndicator) {
		t.Fatalf("cut not nested under indicator:\n%s", out)
	}
}

// TestWriteTreeLivePath: standalone Record spans (all ordinal 0) render
// as a flat list, not an infinite recursion.
func TestWriteTreeLivePath(t *testing.T) {
	tr := New(1.0, 0)
	id := DetectionID(5, 1, 2, 0)
	tr.Record(id, Span{Kind: KindWarning, T: 1, Node: 1, Peer: 2})
	tr.Record(id, Span{Kind: KindCut, T: 2, Node: 1, Peer: 2})
	views := Group(tr.Spans())
	var sb strings.Builder
	if err := WriteTree(&sb, views[0]); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "\n"); n != 3 {
		t.Fatalf("live-path tree lines = %d:\n%s", n, sb.String())
	}
}
