package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteNDJSON writes one span per line in commit order. The encoding
// is deterministic: struct field order, no HTML escaping surprises
// (span fields are plain identifiers and numbers).
func WriteNDJSON(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteNDJSON writes the tracer's committed spans as NDJSON.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	return WriteNDJSON(w, t.Spans())
}

// ReadNDJSON parses a span stream produced by WriteNDJSON. Blank lines
// are skipped; a malformed line is an error.
func ReadNDJSON(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" {
			continue
		}
		var s Span
		if err := json.Unmarshal([]byte(txt), &s); err != nil {
			return out, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// chromeEvent is one Chrome trace-event ("X" complete events only),
// the JSON dialect Perfetto and chrome://tracing load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// kindCat buckets span kinds into the three lifecycles for Perfetto's
// category filter.
func kindCat(kind string) string {
	switch kind {
	case KindWarning, KindNTRequest, KindNTReport, KindNTTimeout,
		KindNTDefer, KindIndicator, KindCut:
		return "detection"
	case KindOverload, KindShed, KindQuarantine, KindDegraded:
		return "overload"
	default:
		return "query"
	}
}

// WriteChromeTrace converts spans to Chrome trace-event JSON. Each
// distinct trace becomes one process row (pid assigned in order of
// first appearance, so output is deterministic); the acting node is
// the thread. Instant spans get a 1 µs floor so they stay visible.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	pids := make(map[string]int)
	for i := range spans {
		s := &spans[i]
		pid, ok := pids[s.Trace]
		if !ok {
			pid = len(pids) + 1
			pids[s.Trace] = pid
		}
		ev := chromeEvent{
			Name: s.Kind,
			Cat:  kindCat(s.Kind),
			Ph:   "X",
			TS:   s.T * 1e6,
			Dur:  s.Dur * 1e6,
			PID:  pid,
			TID:  s.Node,
		}
		if ev.Dur < 1 {
			ev.Dur = 1
		}
		args := map[string]any{"trace": s.Trace, "span": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.Peer != 0 {
			args["peer"] = s.Peer
		}
		if s.Depth != 0 {
			args["depth"] = s.Depth
		}
		if s.Value != 0 {
			args["value"] = s.Value
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		ev.Args = args
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(&ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTrace converts the tracer's committed spans.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Spans())
}
