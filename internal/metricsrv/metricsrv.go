// Package metricsrv serves the observability plane over HTTP:
//
//	GET /metrics  — Prometheus text exposition rendered from a
//	                telemetry.Registry snapshot
//	GET /healthz  — JSON liveness with uptime and journal occupancy
//	GET /journal  — NDJSON tail of the event journal (?n= bounds it;
//	                ?since=<seq> returns only events newer than seq,
//	                the incremental-poll cursor)
//	GET /trace    — NDJSON snapshot of the causal trace buffer
//
// All inputs are optional: a nil registry exposes an empty metrics
// page, a nil journal or tracer an empty stream — so ddnode and ddsim
// can enable the plane piecemeal. The server owns only a listener and
// handlers; rendering lives with the data types (telemetry.Snapshot,
// journal.Journal, trace.Tracer), keeping those packages free of
// net/http.
package metricsrv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"ddpolice/internal/journal"
	"ddpolice/internal/telemetry"
	"ddpolice/internal/trace"
)

// Config selects what the server exposes.
type Config struct {
	// Registry is snapshotted per /metrics request; nil serves an
	// empty exposition.
	Registry *telemetry.Registry
	// Journal backs /journal and the healthz occupancy fields; nil
	// serves an empty tail.
	Journal *journal.Journal
	// Tracer backs /trace; nil serves an empty stream.
	Tracer *trace.Tracer
	// Health, when non-nil, contributes extra fields to the /healthz
	// document (merged over the defaults).
	Health func() map[string]any
}

// defaultJournalTail bounds /journal responses when no ?n= is given.
const defaultJournalTail = 256

// Server is a running exposition endpoint.
type Server struct {
	cfg   Config
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Serve starts the exposition server on addr (host:0 picks a free
// port; read it back with Addr).
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metricsrv: listen: %w", err)
	}
	s := &Server{cfg: cfg, ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/journal", s.handleJournal)
	mux.HandleFunc("/trace", s.handleTrace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var snap telemetry.Snapshot
	if s.cfg.Registry != nil {
		snap = s.cfg.Registry.Snapshot()
	}
	_ = snap.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]any{
		"status":          "ok",
		"uptime_seconds":  time.Since(s.start).Seconds(),
		"journal_events":  s.cfg.Journal.Len(),
		"journal_dropped": s.cfg.Journal.Dropped(),
	}
	if s.cfg.Health != nil {
		for k, v := range s.cfg.Health() {
			doc[k] = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}

func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	var events []journal.Event
	if q := r.URL.Query().Get("since"); q != "" {
		// Cursor mode: everything newer than the given sequence number,
		// so pollers can resume where the previous scrape left off.
		since, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "metricsrv: bad since", http.StatusBadRequest)
			return
		}
		events = s.cfg.Journal.EventsSince(since)
	} else {
		n := defaultJournalTail
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "metricsrv: bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		events = s.cfg.Journal.Tail(n)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return
		}
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if s.cfg.Tracer == nil {
		return
	}
	_ = s.cfg.Tracer.WriteNDJSON(w)
}
