package metricsrv

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"ddpolice/internal/journal"
	"ddpolice/internal/telemetry"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServeEndpoints(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("gnet.reconnect_ok").Add(3)
	reg.Histogram("flood.hit_hops").Observe(2)
	jr := journal.New(8)
	for i := 0; i < 12; i++ {
		jr.Record(journal.Event{T: float64(i), Type: journal.TypeNTReport, Peer: 7})
	}
	srv, err := Serve("127.0.0.1:0", Config{
		Registry: reg,
		Journal:  jr,
		Health:   func() map[string]any { return map[string]any{"node_id": 42} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, ctype := get(t, base+"/metrics")
	if code != 200 || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("metrics: code=%d type=%q", code, ctype)
	}
	for _, want := range []string{
		"# TYPE gnet_reconnect_ok counter", "gnet_reconnect_ok 3",
		"# TYPE flood_hit_hops histogram", `flood_hit_hops_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	code, body, _ = get(t, base+"/healthz")
	if code != 200 {
		t.Fatalf("healthz code = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if doc["status"] != "ok" || doc["node_id"] != float64(42) {
		t.Fatalf("healthz doc = %v", doc)
	}
	if doc["journal_events"] != float64(8) || doc["journal_dropped"] != float64(4) {
		t.Fatalf("healthz journal fields = %v", doc)
	}

	code, body, ctype = get(t, base+"/journal?n=3")
	if code != 200 || ctype != "application/x-ndjson" {
		t.Fatalf("journal: code=%d type=%q", code, ctype)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal tail lines = %d:\n%s", len(lines), body)
	}
	var last journal.Event
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Seq != 12 || last.Peer != 7 {
		t.Fatalf("last journal event = %+v", last)
	}
	if code, _, _ := get(t, base+"/journal?n=bogus"); code != 400 {
		t.Fatalf("bad n accepted: %d", code)
	}
}

// TestServeNilInputs: the plane must degrade to empty documents, not
// panic, when a binary enables only part of it.
func TestServeNilInputs(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, body, _ := get(t, base+"/metrics"); code != 200 || body != "" {
		t.Fatalf("nil metrics: code=%d body=%q", code, body)
	}
	if code, body, _ := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("nil healthz: code=%d body=%q", code, body)
	}
	if code, body, _ := get(t, base+"/journal"); code != 200 || strings.TrimSpace(body) != "" {
		t.Fatalf("nil journal: code=%d body=%q", code, body)
	}
}
