package metricsrv

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"

	"ddpolice/internal/journal"
	"ddpolice/internal/telemetry"
	"ddpolice/internal/trace"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServeEndpoints(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("gnet.reconnect_ok").Add(3)
	reg.Histogram("flood.hit_hops").Observe(2)
	jr := journal.New(8)
	for i := 0; i < 12; i++ {
		jr.Record(journal.Event{T: float64(i), Type: journal.TypeNTReport, Peer: 7})
	}
	srv, err := Serve("127.0.0.1:0", Config{
		Registry: reg,
		Journal:  jr,
		Health:   func() map[string]any { return map[string]any{"node_id": 42} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, ctype := get(t, base+"/metrics")
	if code != 200 || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("metrics: code=%d type=%q", code, ctype)
	}
	for _, want := range []string{
		"# TYPE gnet_reconnect_ok counter", "gnet_reconnect_ok 3",
		"# TYPE flood_hit_hops histogram", `flood_hit_hops_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	code, body, _ = get(t, base+"/healthz")
	if code != 200 {
		t.Fatalf("healthz code = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if doc["status"] != "ok" || doc["node_id"] != float64(42) {
		t.Fatalf("healthz doc = %v", doc)
	}
	if doc["journal_events"] != float64(8) || doc["journal_dropped"] != float64(4) {
		t.Fatalf("healthz journal fields = %v", doc)
	}

	code, body, ctype = get(t, base+"/journal?n=3")
	if code != 200 || ctype != "application/x-ndjson" {
		t.Fatalf("journal: code=%d type=%q", code, ctype)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal tail lines = %d:\n%s", len(lines), body)
	}
	var last journal.Event
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Seq != 12 || last.Peer != 7 {
		t.Fatalf("last journal event = %+v", last)
	}
	if code, _, _ := get(t, base+"/journal?n=bogus"); code != 400 {
		t.Fatalf("bad n accepted: %d", code)
	}

	// The ?since cursor returns only events strictly newer than the
	// given sequence number, so a poller can resume where it left off.
	code, body, _ = get(t, base+"/journal?since=10")
	if code != 200 {
		t.Fatalf("journal since: code=%d", code)
	}
	lines = strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("since=10 lines = %d:\n%s", len(lines), body)
	}
	var first journal.Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 11 {
		t.Fatalf("since=10 first seq = %d", first.Seq)
	}
	if code, body, _ := get(t, base+"/journal?since=12"); code != 200 || strings.TrimSpace(body) != "" {
		t.Fatalf("since=latest: code=%d body=%q", code, body)
	}
	if code, _, _ := get(t, base+"/journal?since=-1"); code != 400 {
		t.Fatalf("bad since accepted: %d", code)
	}
}

func TestServeTrace(t *testing.T) {
	tr := trace.New(1.0, 0)
	id := trace.QueryID(42, 0, 0)
	tc := tr.Start(id, trace.Span{Kind: trace.KindQueryIssue, T: 1, Node: 5})
	tc.Add(trace.Span{Kind: trace.KindHop, T: 1.5, Node: 6, Depth: 1})
	tc.End()

	srv, err := Serve("127.0.0.1:0", Config{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, ctype := get(t, base+"/trace")
	if code != 200 || ctype != "application/x-ndjson" {
		t.Fatalf("trace: code=%d type=%q", code, ctype)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace lines = %d:\n%s", len(lines), body)
	}
	spans, err := trace.ReadNDJSON(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if spans[0].Trace != trace.FormatID(id) || spans[1].Kind != trace.KindHop {
		t.Fatalf("trace spans = %+v", spans)
	}
}

// TestPrometheusOverloadMetrics: the PR 7 overload instruments must
// surface in the exposition with legal names and HELP/TYPE preambles,
// since dashboards key on them during incident response.
func TestPrometheusOverloadMetrics(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("gnet.shed_query").Add(17)
	reg.Counter("gnet.shed_control").Add(2)
	reg.Gauge("gnet.quarantined_peers").Set(3)
	reg.Gauge("gnet.degraded").Set(1)

	srv, err := Serve("127.0.0.1:0", Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body, _ := get(t, "http://"+srv.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("metrics code = %d", code)
	}
	for name, typ := range map[string]string{
		"gnet_shed_query":        "counter",
		"gnet_shed_control":      "counter",
		"gnet_quarantined_peers": "gauge",
		"gnet_degraded":          "gauge",
	} {
		if !strings.Contains(body, "# HELP "+name+" ") {
			t.Fatalf("missing HELP for %s:\n%s", name, body)
		}
		if !strings.Contains(body, "# TYPE "+name+" "+typ) {
			t.Fatalf("missing TYPE for %s:\n%s", name, body)
		}
	}
	legal := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		name, _, _ = strings.Cut(name, "{")
		if !legal.MatchString(name) {
			t.Fatalf("illegal metric name %q", name)
		}
	}
}

// TestConcurrentScrape hammers every endpoint while the registry,
// journal, and tracer churn underneath — the race detector turns any
// unsynchronized snapshot path into a failure.
func TestConcurrentScrape(t *testing.T) {
	reg := telemetry.New()
	jr := journal.New(64)
	tr := trace.New(1.0, 0)
	srv, err := Serve("127.0.0.1:0", Config{Registry: reg, Journal: jr, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	const iters = 40
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: mutate all three data sources
		defer wg.Done()
		ctr := reg.Counter("gnet.shed_query")
		gauge := reg.Gauge("gnet.degraded")
		for i := 0; i < iters*4; i++ {
			ctr.Add(1)
			gauge.Set(int64(i % 2))
			jr.Record(journal.Event{T: float64(i), Type: journal.TypeShed, Value: 1})
			id := trace.QueryID(1, uint64(i), 0)
			if tc := tr.Start(id, trace.Span{Kind: trace.KindQueryIssue, T: float64(i)}); tc != nil {
				tc.Add(trace.Span{Kind: trace.KindHop, T: float64(i), Depth: 1})
				tc.End()
			}
		}
	}()
	go func() { // scraper: read every endpoint repeatedly
		defer wg.Done()
		for i := 0; i < iters; i++ {
			for _, path := range []string{"/metrics", "/healthz", "/journal", "/journal?since=5", "/trace"} {
				if code, _, _ := get(t, base+path); code != 200 {
					t.Errorf("%s code = %d", path, code)
					return
				}
			}
		}
	}()
	wg.Wait()
}

// TestServeNilInputs: the plane must degrade to empty documents, not
// panic, when a binary enables only part of it.
func TestServeNilInputs(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, body, _ := get(t, base+"/metrics"); code != 200 || body != "" {
		t.Fatalf("nil metrics: code=%d body=%q", code, body)
	}
	if code, body, _ := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("nil healthz: code=%d body=%q", code, body)
	}
	if code, body, _ := get(t, base+"/journal"); code != 200 || strings.TrimSpace(body) != "" {
		t.Fatalf("nil journal: code=%d body=%q", code, body)
	}
	if code, body, ctype := get(t, base+"/trace"); code != 200 || body != "" || ctype != "application/x-ndjson" {
		t.Fatalf("nil trace: code=%d body=%q type=%q", code, body, ctype)
	}
}
