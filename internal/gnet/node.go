// Package gnet implements a live Gnutella-lite node over TCP: the
// 0.6-style handshake, binary message framing (internal/protocol), a
// flooding query router with duplicate suppression and reverse-path
// QueryHit routing, a token-bucket processing model (the paper's §2.3
// testbed behaviour), and the DD-POLICE monitoring/defense extension.
//
// It reproduces the paper's real-machine experiments: the three-peer
// A -> B -> C pipeline behind Figures 5-6 (see examples/live_overlay and
// the Fig5/Fig6 benches) and the DDoS-agent prototype of Figure 4 (a
// node that replays a query trace at a configured rate).
package gnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"ddpolice/internal/capacity"
	"ddpolice/internal/police"
	"ddpolice/internal/protocol"
	"ddpolice/internal/rng"
	"ddpolice/internal/telemetry"
)

// handshake strings (Gnutella 0.6 flavor).
const (
	helloLine  = "GNUTELLA CONNECT/0.6"
	okLine     = "GNUTELLA/0.6 200 OK"
	headerTerm = "\r\n\r\n"
)

// Config parameterizes a Node.
type Config struct {
	// Name labels the node in logs and errors.
	Name string
	// NodeID is the node's overlay identity, carried in handshakes and
	// encoded as the synthetic 10.x.y.z address in Table 1 messages
	// (the paper identifies peers by IP; we virtualize that for
	// single-host deployments).
	NodeID int32
	// ListenAddr is the TCP listen address ("127.0.0.1:0" for tests).
	ListenAddr string
	// CapacityPerMin is the query-processing rate (paper: a dedicated
	// peer saturates at ~15,000/min; an in-the-wild peer at ~10,000).
	CapacityPerMin float64
	// Burst is the token bucket depth; defaults to one second of
	// capacity.
	Burst float64
	// TTL for queries this node issues.
	TTL byte
	// SharedObjects is the set of object keywords this node answers.
	SharedObjects []string
	// Police enables the DD-POLICE monitor with the given parameters;
	// nil disables it.
	Police *police.Config
	// Seed drives GUID generation.
	Seed uint64
	// MinuteLength shortens the monitoring window for tests; defaults
	// to one minute.
	MinuteLength time.Duration
	// Telemetry, when non-nil, receives the node's operational
	// counters (under the "gnet." prefix): inbox depth high-water
	// mark, send-queue stalls, handshake failures, transient-dial
	// errors. Several nodes may share one registry; their counts
	// aggregate. Nil disables recording at no measurable cost.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns a node config matching the paper's testbed.
func DefaultConfig(name string) Config {
	return Config{
		Name:           name,
		ListenAddr:     "127.0.0.1:0",
		CapacityPerMin: capacity.TestbedSaturationPerMin,
		TTL:            protocol.DefaultTTL,
		Seed:           1,
	}
}

// Stats is a snapshot of a node's counters.
type Stats struct {
	QueriesReceived  uint64
	QueriesProcessed uint64
	QueriesDropped   uint64 // capacity drops (the Fig 6 numerator)
	QueriesForwarded uint64 // copies sent to neighbors
	DupDropped       uint64
	HitsSent         uint64
	HitsReceived     uint64
	BytesIn          uint64
	BytesOut         uint64
	Disconnects      []Disconnect
}

// Disconnect records a DD-POLICE cut performed by this node.
type Disconnect struct {
	Peer    string
	Code    uint16
	Reason  string
	General float64
	Single  float64
}

// Node is one live overlay peer. All state is owned by the run loop
// goroutine; external callers communicate through channels.
type Node struct {
	cfg      Config
	ln       net.Listener
	proc     *capacity.Processor
	src      *rng.Source
	shared   map[string]bool
	inbox    chan inboundMsg
	ctl      chan func()
	done     chan struct{}
	closed   chan struct{}
	wg       sync.WaitGroup
	closeOne sync.Once

	peers     map[int32]*peerConn // key: remote overlay identity
	guidRoute map[protocol.GUID]*peerConn
	seen      map[protocol.GUID]struct{}
	forwarded map[protocol.GUID][]int32 // neighbors we forwarded each query to
	hits      map[protocol.GUID]chan protocol.QueryHit

	stats   Stats
	statsMu sync.Mutex

	tel nodeTelemetry

	monitor *monitor
}

// nodeTelemetry holds the node's resolved telemetry instruments. All
// fields are nil when Config.Telemetry is nil; recording through them
// is then a nil-check no-op, so the hot paths below never branch on
// whether telemetry is enabled.
type nodeTelemetry struct {
	inboxHWM      *telemetry.Gauge   // deepest observed inbox backlog
	sendStalls    *telemetry.Counter // sends dropped on a full peer queue
	handshakeFail *telemetry.Counter // failed inbound/outbound handshakes
	transientErr  *telemetry.Counter // transient Neighbor_Traffic dials that died
	transientOK   *telemetry.Counter // transient dials that returned a report
}

// inboundMsg is one decoded message plus its source connection.
type inboundMsg struct {
	from *peerConn
	msg  protocol.Message
}

// peerConn is one neighbor link.
type peerConn struct {
	conn     net.Conn
	addr     string // remote advertised listen address (for dialing)
	id       int32  // remote overlay identity
	sendCh   chan []byte
	node     *Node
	closeOne sync.Once
}

// NewNode starts a node listening on cfg.ListenAddr.
func NewNode(cfg Config) (*Node, error) {
	if cfg.CapacityPerMin <= 0 {
		return nil, fmt.Errorf("gnet: capacity %v", cfg.CapacityPerMin)
	}
	if cfg.TTL == 0 {
		cfg.TTL = protocol.DefaultTTL
	}
	if cfg.MinuteLength == 0 {
		cfg.MinuteLength = time.Minute
	}
	proc, err := capacity.NewProcessor(cfg.CapacityPerMin, cfg.Burst)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("gnet: listen: %w", err)
	}
	n := &Node{
		cfg:       cfg,
		ln:        ln,
		proc:      proc,
		src:       rng.New(cfg.Seed),
		shared:    make(map[string]bool),
		inbox:     make(chan inboundMsg, 1024),
		ctl:       make(chan func(), 64),
		done:      make(chan struct{}),
		closed:    make(chan struct{}),
		peers:     make(map[int32]*peerConn),
		guidRoute: make(map[protocol.GUID]*peerConn),
		seen:      make(map[protocol.GUID]struct{}),
		forwarded: make(map[protocol.GUID][]int32),
		hits:      make(map[protocol.GUID]chan protocol.QueryHit),
	}
	for _, obj := range cfg.SharedObjects {
		n.shared[obj] = true
	}
	n.tel = nodeTelemetry{
		inboxHWM:      cfg.Telemetry.Gauge("gnet.inbox_high_water"),
		sendStalls:    cfg.Telemetry.Counter("gnet.send_queue_stalls"),
		handshakeFail: cfg.Telemetry.Counter("gnet.handshake_failures"),
		transientErr:  cfg.Telemetry.Counter("gnet.transient_dial_errors"),
		transientOK:   cfg.Telemetry.Counter("gnet.transient_reports"),
	}
	if cfg.Police != nil {
		if err := cfg.Police.Validate(); err != nil {
			ln.Close()
			return nil, err
		}
		n.monitor = newMonitor(n, *cfg.Police)
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.runLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Name returns the node's label.
func (n *Node) Name() string { return n.cfg.Name }

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() {
	n.closeOne.Do(func() {
		close(n.done)
		n.ln.Close()
	})
	n.wg.Wait()
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	out := n.stats
	out.Disconnects = append([]Disconnect(nil), n.stats.Disconnects...)
	return out
}

// Neighbors returns the overlay ids of current neighbors.
func (n *Node) Neighbors() []int32 {
	res := make(chan []int32, 1)
	select {
	case n.ctl <- func() {
		var out []int32
		for id := range n.peers {
			out = append(out, id)
		}
		res <- out
	}:
	case <-n.closed:
		return nil
	}
	select {
	case out := <-res:
		return out
	case <-n.closed:
		return nil
	}
}

// Connect dials and handshakes with a remote node's listen address,
// establishing a full neighbor relationship.
func (n *Node) Connect(addr string) error {
	conn, err := dialHandshake(addr, n.Addr(), n.cfg.NodeID, false)
	if err != nil {
		n.tel.handshakeFail.Inc()
		return err
	}
	id, raddr, err := readPeerIdentity(conn)
	if err != nil {
		n.tel.handshakeFail.Inc()
		conn.Close()
		return err
	}
	if raddr == "" {
		raddr = addr
	}
	n.adoptConn(conn, raddr, id, true)
	return nil
}

// dialHandshake dials addr and performs the initiator handshake.
// transient connections are used for out-of-band Neighbor_Traffic
// exchanges and are not registered as neighbors on either side.
func dialHandshake(addr, listenAddr string, nodeID int32, transient bool) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("gnet: dial %s: %w", addr, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	conn.SetDeadline(deadline)
	kind := ""
	if transient {
		kind = "Transient: true\r\n"
	}
	if _, err := fmt.Fprintf(conn, "%s\r\nListen-Addr: %s\r\nNode-ID: %d\r\n%s\r\n",
		helloLine, listenAddr, nodeID, kind); err != nil {
		conn.Close()
		return nil, fmt.Errorf("gnet: handshake write: %w", err)
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}

// readPeerIdentity reads the responder's handshake block.
func readPeerIdentity(conn net.Conn) (int32, string, error) {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetDeadline(time.Time{})
	resp, err := readHandshake(conn)
	if err != nil {
		return 0, "", err
	}
	if !strings.HasPrefix(resp, okLine) {
		return 0, "", fmt.Errorf("gnet: handshake rejected: %q", firstLine(resp))
	}
	var id int64
	fmt.Sscanf(headerValue(resp, "Node-ID"), "%d", &id)
	return int32(id), headerValue(resp, "Listen-Addr"), nil
}

// serverHandshake runs the acceptor side; it returns the remote's
// identity, advertised listen address, and whether the connection is a
// transient control channel.
func (n *Node) serverHandshake(conn net.Conn) (int32, string, bool, error) {
	deadline := time.Now().Add(5 * time.Second)
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	req, err := readHandshake(conn)
	if err != nil {
		return 0, "", false, err
	}
	if !strings.HasPrefix(req, helloLine) {
		return 0, "", false, fmt.Errorf("gnet: bad hello: %q", firstLine(req))
	}
	remote := headerValue(req, "Listen-Addr")
	if remote == "" {
		remote = conn.RemoteAddr().String()
	}
	var id int64
	fmt.Sscanf(headerValue(req, "Node-ID"), "%d", &id)
	transient := headerValue(req, "Transient") == "true"
	if _, err := fmt.Fprintf(conn, "%s\r\nListen-Addr: %s\r\nNode-ID: %d%s",
		okLine, n.Addr(), n.cfg.NodeID, headerTerm); err != nil {
		return 0, "", false, fmt.Errorf("gnet: handshake reply: %w", err)
	}
	return int32(id), remote, transient, nil
}

// readHandshake reads until the blank-line terminator.
func readHandshake(conn net.Conn) (string, error) {
	var sb strings.Builder
	buf := make([]byte, 1)
	for sb.Len() < 4096 {
		if _, err := io.ReadFull(conn, buf); err != nil {
			return "", fmt.Errorf("gnet: handshake read: %w", err)
		}
		sb.WriteByte(buf[0])
		if strings.HasSuffix(sb.String(), headerTerm) {
			return sb.String(), nil
		}
	}
	return "", errors.New("gnet: handshake too long")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\r'); i >= 0 {
		return s[:i]
	}
	return s
}

func headerValue(block, key string) string {
	for _, line := range strings.Split(block, "\r\n") {
		if rest, ok := strings.CutPrefix(line, key+": "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
			}
			continue
		}
		go func() {
			id, remote, transient, err := n.serverHandshake(conn)
			if err != nil {
				n.tel.handshakeFail.Inc()
				conn.Close()
				return
			}
			n.adoptConn(conn, remote, id, !transient)
		}()
	}
}

// adoptConn starts a handshaked connection's pumps; register=false
// keeps it off the neighbor table (transient control channel).
func (n *Node) adoptConn(conn net.Conn, addr string, id int32, register bool) {
	pc := &peerConn{conn: conn, addr: addr, id: id, sendCh: make(chan []byte, 256), node: n}
	if register {
		select {
		case n.ctl <- func() {
			if old, dup := n.peers[id]; dup {
				old.close()
			}
			n.peers[id] = pc
			if n.monitor != nil {
				n.monitor.onNeighborUp(id)
			}
		}:
		case <-n.closed:
			conn.Close()
			return
		}
	}
	n.wg.Add(2)
	go pc.readLoop()
	go pc.writeLoop()
}

func (pc *peerConn) close() {
	pc.closeOne.Do(func() {
		pc.conn.Close()
		close(pc.sendCh)
	})
}

// send enqueues wire bytes, dropping on backpressure (a slow neighbor
// must not stall the node; this is where a saturated peer's drops show
// up on the sender side).
func (pc *peerConn) send(wire []byte) bool {
	defer func() { recover() }() // racing close(sendCh) loses the message
	select {
	case pc.sendCh <- wire:
		return true
	default:
		pc.node.tel.sendStalls.Inc()
		return false
	}
}

func (pc *peerConn) writeLoop() {
	defer pc.node.wg.Done()
	for wire := range pc.sendCh {
		if _, err := pc.conn.Write(wire); err != nil {
			pc.conn.Close()
			// Drain remaining queued messages until close.
			for range pc.sendCh {
			}
			return
		}
		pc.node.statsMu.Lock()
		pc.node.stats.BytesOut += uint64(len(wire))
		pc.node.statsMu.Unlock()
	}
}

func (pc *peerConn) readLoop() {
	n := pc.node
	defer n.wg.Done()
	defer func() {
		select {
		case n.ctl <- func() { n.dropPeer(pc) }:
		case <-n.closed:
		}
	}()
	sr := protocol.NewStreamReader(pc.conn, 64*1024)
	sr.Skip = true // survive peers speaking newer payload types
	for {
		msg, err := sr.Next()
		if err != nil {
			return
		}
		n.statsMu.Lock()
		n.stats.BytesIn += uint64(protocol.HeaderSize) + uint64(msg.Header.PayloadLen)
		n.statsMu.Unlock()
		select {
		case n.inbox <- inboundMsg{from: pc, msg: msg}:
			n.tel.inboxHWM.SetMax(int64(len(n.inbox)))
		case <-n.done:
			return
		}
	}
}

// dropPeer removes a neighbor (run-loop goroutine only).
func (n *Node) dropPeer(pc *peerConn) {
	if cur, ok := n.peers[pc.id]; ok && cur == pc {
		delete(n.peers, pc.id)
		if n.monitor != nil {
			n.monitor.onNeighborDown(pc.id)
		}
	}
	pc.close()
	for guid, route := range n.guidRoute {
		if route == pc {
			delete(n.guidRoute, guid)
		}
	}
}
