// Package gnet implements a live Gnutella-lite node over TCP: the
// 0.6-style handshake, binary message framing (internal/protocol), a
// flooding query router with duplicate suppression and reverse-path
// QueryHit routing, a token-bucket processing model (the paper's §2.3
// testbed behaviour), and the DD-POLICE monitoring/defense extension.
//
// It reproduces the paper's real-machine experiments: the three-peer
// A -> B -> C pipeline behind Figures 5-6 (see examples/live_overlay and
// the Fig5/Fig6 benches) and the DDoS-agent prototype of Figure 4 (a
// node that replays a query trace at a configured rate).
package gnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"ddpolice/internal/capacity"
	"ddpolice/internal/faults"
	"ddpolice/internal/journal"
	"ddpolice/internal/overload"
	"ddpolice/internal/police"
	"ddpolice/internal/protocol"
	"ddpolice/internal/rng"
	"ddpolice/internal/telemetry"
	"ddpolice/internal/trace"
)

// handshake strings (Gnutella 0.6 flavor).
const (
	helloLine  = "GNUTELLA CONNECT/0.6"
	okLine     = "GNUTELLA/0.6 200 OK"
	headerTerm = "\r\n\r\n"
)

// maxTransientDials caps concurrent out-of-band Neighbor_Traffic dials
// per node: an evaluation storm (many suspects, large buddy groups)
// used to spawn one unbounded goroutine per member.
const maxTransientDials = 8

// Config parameterizes a Node.
type Config struct {
	// Name labels the node in logs and errors.
	Name string
	// NodeID is the node's overlay identity, carried in handshakes and
	// encoded as the synthetic 10.x.y.z address in Table 1 messages
	// (the paper identifies peers by IP; we virtualize that for
	// single-host deployments).
	NodeID int32
	// ListenAddr is the TCP listen address ("127.0.0.1:0" for tests).
	ListenAddr string
	// CapacityPerMin is the query-processing rate (paper: a dedicated
	// peer saturates at ~15,000/min; an in-the-wild peer at ~10,000).
	CapacityPerMin float64
	// Burst is the token bucket depth; defaults to one second of
	// capacity.
	Burst float64
	// TTL for queries this node issues.
	TTL byte
	// SharedObjects is the set of object keywords this node answers.
	SharedObjects []string
	// Police enables the DD-POLICE monitor with the given parameters;
	// nil disables it.
	Police *police.Config
	// Seed drives GUID generation.
	Seed uint64
	// MinuteLength shortens the monitoring window for tests; defaults
	// to one minute.
	MinuteLength time.Duration
	// Clock supplies the monitor's detection-timing time source (rate
	// limiting, verdict deadlines, report latency, message timestamps);
	// nil means the real clock. Transport deadlines and dial backoff
	// always use the wall clock regardless. Tests inject a fake to
	// drive detection timing deterministically.
	Clock Clock
	// Telemetry, when non-nil, receives the node's operational
	// counters (under the "gnet." prefix): inbox depth high-water
	// mark, send-queue stalls, handshake failures, transient-dial
	// errors. Several nodes may share one registry; their counts
	// aggregate. Nil disables recording at no measurable cost.
	Telemetry *telemetry.Registry
	// Faults, when non-nil, wraps every post-handshake connection in
	// the fault-injection plane (internal/faults): seeded drop / delay
	// / duplicate / reset by message class plus partition sets. Several
	// nodes may share one plan so a whole harness fails from one
	// deterministic schedule. Nil costs one pointer check at adoption
	// time and nothing on the wire paths.
	Faults *faults.Plan
	// Journal, when non-nil, receives the node's detection-lifecycle
	// events (warning_crossed, nt_request/report/defer/timeout,
	// indicator, cut), peer-drop provenance and reconnect-supervisor
	// activity, stamped with wall-clock seconds. Several nodes may share
	// one journal; events interleave by arrival. Nil disables recording
	// at a pointer check per site.
	Journal *journal.Journal
	// Tracer, when non-nil, receives causal span traces: per-query
	// hop/outcome spans keyed by the trace ID riding the Query wire
	// extension (see protocol.Query.TraceID), per-suspect detection
	// traces (warning_crossed → NT round → indicator → cut), and
	// overload annotations (shed/quarantine/degraded). Several nodes
	// may share one tracer the way they share a Journal. Head sampling
	// is by trace-ID hash, so every node that sees a query agrees on
	// whether it is traced. Nil disables tracing at a pointer check
	// per site.
	Tracer *trace.Tracer
	// Overload, when non-nil, enables the overload-resilience plane:
	// per-peer send queues split by class (control vs. query) with
	// strict-priority draining and watermark shedding, a class-split
	// processing budget with a protected control reserve, per-peer
	// inbound quarantine circuit breakers, and degraded-mode
	// detection. Zero fields take their documented defaults. Nil keeps
	// the historical class-blind behaviour exactly.
	Overload *overload.Config
	// Reconnect, when non-nil, enables the self-healing supervisor:
	// neighbors lost to transport faults (resets, read errors) are
	// re-dialed with exponential backoff + jitter. Neighbors this node
	// cut via DD-POLICE — or dropped after an orderly Bye — are never
	// re-dialed; dropPeer tracks that provenance. Nil keeps the
	// pre-fault behaviour: a lost neighbor stays lost.
	Reconnect *ReconnectConfig
}

// ReconnectConfig bounds the reconnect supervisor's retry schedule.
type ReconnectConfig struct {
	// MaxAttempts is the number of re-dials before giving a neighbor up.
	MaxAttempts int
	// BaseDelay is the first backoff step; attempt k waits
	// BaseDelay·2^k plus up to 50% uniform jitter, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// DialTimeout bounds each re-dial attempt (and each transient
	// Neighbor_Traffic dial when set).
	DialTimeout time.Duration
}

// DefaultReconnectConfig returns the supervisor schedule used by the
// chaos harness: 6 attempts, 50ms base doubling to a 2s cap, 3s dials.
func DefaultReconnectConfig() *ReconnectConfig {
	return &ReconnectConfig{
		MaxAttempts: 6,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		DialTimeout: 3 * time.Second,
	}
}

// DefaultConfig returns a node config matching the paper's testbed.
func DefaultConfig(name string) Config {
	return Config{
		Name:           name,
		ListenAddr:     "127.0.0.1:0",
		CapacityPerMin: capacity.TestbedSaturationPerMin,
		TTL:            protocol.DefaultTTL,
		Seed:           1,
	}
}

// Stats is a snapshot of a node's counters.
type Stats struct {
	QueriesReceived  uint64
	QueriesProcessed uint64
	QueriesDropped   uint64 // capacity drops (the Fig 6 numerator)
	QueriesForwarded uint64 // copies sent to neighbors
	DupDropped       uint64
	HitsSent         uint64
	HitsReceived     uint64
	BytesIn          uint64
	BytesOut         uint64
	Disconnects      []Disconnect

	// Overload-plane counters (zero when Config.Overload is nil).
	ShedQuery         uint64 // query-class messages shed (send watermark / full queue)
	ShedControl       uint64 // control-class messages shed (last resort)
	QuarantineDropped uint64 // inbound queries throttled by a peer's breaker
	Degraded          bool   // node currently in degraded mode
}

// Disconnect records a DD-POLICE cut performed by this node.
type Disconnect struct {
	Peer    string
	Code    uint16
	Reason  string
	General float64
	Single  float64
}

// Node is one live overlay peer. All state is owned by the run loop
// goroutine; external callers communicate through channels.
type Node struct {
	cfg      Config
	ln       net.Listener
	proc     *capacity.Processor
	src      *rng.Source
	shared   map[string]bool
	inbox    chan inboundMsg
	ctl      chan func()
	done     chan struct{}
	closed   chan struct{}
	wg       sync.WaitGroup
	closeOne sync.Once

	// ctx is canceled by Close so in-flight dials (reconnects,
	// transient Neighbor_Traffic exchanges) abort instead of holding
	// wg.Wait hostage for a full dial timeout.
	ctx    context.Context
	cancel context.CancelFunc

	// transientSem bounds concurrent transient Neighbor_Traffic dials;
	// evaluations that would exceed it leave the member missing
	// (timeout-as-zero) and count gnet.transient_rejected.
	transientSem chan struct{}

	peers     map[int32]*peerConn // key: remote overlay identity
	guidRoute map[protocol.GUID]*peerConn
	seen      map[protocol.GUID]struct{}
	forwarded map[protocol.GUID][]int32 // neighbors we forwarded each query to
	hits      map[protocol.GUID]chan protocol.QueryHit

	// cutPeers records neighbors this node disconnected via DD-POLICE —
	// the supervisor must never re-dial them, whatever later transport
	// errors their dying connections produce. reconnecting tracks ids
	// with a backoff chain in flight so one loss starts one chain.
	// Both are run-loop-owned.
	cutPeers     map[int32]bool
	reconnecting map[int32]bool

	stats   Stats
	statsMu sync.Mutex

	tel nodeTelemetry

	monitor *monitor

	// ovl is the overload-resilience plane (nil when disabled).
	// inboxCtl is its control-priority inbox: the run loop drains it
	// before touching queued query traffic, so NT reports and neighbor
	// lists never wait behind a flood backlog. Nil when disabled — the
	// select case then blocks forever and the legacy path is exact.
	ovl      *overloadState
	inboxCtl chan inboundMsg
}

// nodeTelemetry holds the node's resolved telemetry instruments. All
// fields are nil when Config.Telemetry is nil; recording through them
// is then a nil-check no-op, so the hot paths below never branch on
// whether telemetry is enabled.
type nodeTelemetry struct {
	inboxHWM      *telemetry.Gauge   // deepest observed inbox backlog
	sendStalls    *telemetry.Counter // sends dropped on a full peer queue
	handshakeFail *telemetry.Counter // failed inbound/outbound handshakes
	transientErr  *telemetry.Counter // transient Neighbor_Traffic dials that died
	transientOK   *telemetry.Counter // transient dials that returned a report

	transientRejected *telemetry.Counter // dials refused by the semaphore
	transientRetries  *telemetry.Counter // transient dial retry attempts
	reconnectAttempts *telemetry.Counter // supervisor re-dials started
	reconnectOK       *telemetry.Counter // neighbors re-established
	reconnectGiveups  *telemetry.Counter // backoff chains exhausted
	reconnectBackoff  *telemetry.Gauge   // longest scheduled backoff, ms
	evalDeferred      *telemetry.Counter // verdicts deferred for quorum
	evalTimeoutZero   *telemetry.Counter // verdicts that scored silent members as zero
	ntLatency         *telemetry.Histogram // NT request→report round trip, ms

	// Per-class shedding split of the historical send_queue_stalls
	// aggregate (which keeps counting both for continuity).
	shedQuery        *telemetry.Counter // query-class messages shed under overload
	shedControl      *telemetry.Counter // control-class messages shed (last resort)
	quarantineDrops  *telemetry.Counter // inbound queries denied by a peer's breaker
	quarantinedPeers *telemetry.Gauge   // peers with an open breaker right now
	degraded         *telemetry.Gauge   // 1 while the node is in degraded mode
}

// inboundMsg is one decoded message plus its source connection.
type inboundMsg struct {
	from *peerConn
	msg  protocol.Message
}

// peerConn is one neighbor link.
type peerConn struct {
	conn     net.Conn
	addr     string // remote advertised listen address (for dialing)
	id       int32  // remote overlay identity
	sendCh   chan []byte
	node     *Node
	closeOne sync.Once

	// sendCtl is the dedicated control-class queue when the overload
	// plane is enabled (nil otherwise): the write pump drains it with
	// strict priority, so NT and neighbor-list frames never wait
	// behind a query backlog. shedder applies watermark hysteresis to
	// the query queue; both are guarded by sendMu like sendCh.
	sendCtl chan []byte
	shedder overload.Shedder

	// sendMu orders send against close: senders check sendClosed under
	// the mutex before touching sendCh, so close(sendCh) can never race
	// a send and the pumps need no recover band-aid.
	sendMu     sync.Mutex
	sendClosed bool
}

// NewNode starts a node listening on cfg.ListenAddr.
func NewNode(cfg Config) (*Node, error) {
	if cfg.CapacityPerMin <= 0 {
		return nil, fmt.Errorf("gnet: capacity %v", cfg.CapacityPerMin)
	}
	if cfg.TTL == 0 {
		cfg.TTL = protocol.DefaultTTL
	}
	if cfg.MinuteLength == 0 {
		cfg.MinuteLength = time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	proc, err := capacity.NewProcessor(cfg.CapacityPerMin, cfg.Burst)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("gnet: listen: %w", err)
	}
	n := &Node{
		cfg:          cfg,
		ln:           ln,
		proc:         proc,
		src:          rng.New(cfg.Seed),
		shared:       make(map[string]bool),
		inbox:        make(chan inboundMsg, 1024),
		ctl:          make(chan func(), 64),
		done:         make(chan struct{}),
		closed:       make(chan struct{}),
		transientSem: make(chan struct{}, maxTransientDials),
		peers:        make(map[int32]*peerConn),
		guidRoute:    make(map[protocol.GUID]*peerConn),
		seen:         make(map[protocol.GUID]struct{}),
		forwarded:    make(map[protocol.GUID][]int32),
		hits:         make(map[protocol.GUID]chan protocol.QueryHit),
		cutPeers:     make(map[int32]bool),
		reconnecting: make(map[int32]bool),
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	for _, obj := range cfg.SharedObjects {
		n.shared[obj] = true
	}
	n.tel = nodeTelemetry{
		inboxHWM:      cfg.Telemetry.Gauge("gnet.inbox_high_water"),
		sendStalls:    cfg.Telemetry.Counter("gnet.send_queue_stalls"),
		handshakeFail: cfg.Telemetry.Counter("gnet.handshake_failures"),
		transientErr:  cfg.Telemetry.Counter("gnet.transient_dial_errors"),
		transientOK:   cfg.Telemetry.Counter("gnet.transient_reports"),

		transientRejected: cfg.Telemetry.Counter("gnet.transient_rejected"),
		transientRetries:  cfg.Telemetry.Counter("gnet.transient_retries"),
		reconnectAttempts: cfg.Telemetry.Counter("gnet.reconnect_attempts"),
		reconnectOK:       cfg.Telemetry.Counter("gnet.reconnect_successes"),
		reconnectGiveups:  cfg.Telemetry.Counter("gnet.reconnect_giveups"),
		reconnectBackoff:  cfg.Telemetry.Gauge("gnet.reconnect_backoff_max_ms"),
		evalDeferred:      cfg.Telemetry.Counter("gnet.evaluations_deferred"),
		evalTimeoutZero:   cfg.Telemetry.Counter("gnet.evaluations_timeout_zero"),
		ntLatency:         cfg.Telemetry.Histogram("gnet.nt_report_latency_ms"),

		shedQuery:        cfg.Telemetry.Counter("gnet.shed_query"),
		shedControl:      cfg.Telemetry.Counter("gnet.shed_control"),
		quarantineDrops:  cfg.Telemetry.Counter("gnet.quarantine_dropped"),
		quarantinedPeers: cfg.Telemetry.Gauge("gnet.quarantined_peers"),
		degraded:         cfg.Telemetry.Gauge("gnet.degraded"),
	}
	if cfg.Faults != nil && cfg.Telemetry != nil {
		cfg.Faults.AttachTelemetry(cfg.Telemetry)
	}
	if cfg.Overload != nil {
		ovl, err := newOverloadState(*cfg.Overload, cfg.CapacityPerMin, cfg.Burst)
		if err != nil {
			ln.Close()
			return nil, err
		}
		n.ovl = ovl
		n.inboxCtl = make(chan inboundMsg, 256)
	}
	if cfg.Police != nil {
		if err := cfg.Police.Validate(); err != nil {
			ln.Close()
			return nil, err
		}
		n.monitor = newMonitor(n, *cfg.Police)
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.runLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Name returns the node's label.
func (n *Node) Name() string { return n.cfg.Name }

// Close shuts the node down and waits for its goroutines. Canceling
// ctx aborts in-flight reconnect and transient dials immediately, so
// Close never waits out a dial timeout.
func (n *Node) Close() {
	n.closeOne.Do(func() {
		close(n.done)
		n.cancel()
		n.ln.Close()
	})
	n.wg.Wait()
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.statsMu.Lock()
	out := n.stats
	out.Disconnects = append([]Disconnect(nil), n.stats.Disconnects...)
	n.statsMu.Unlock()
	if n.ovl != nil {
		out.Degraded = n.ovl.degraded.Load()
	}
	return out
}

// Neighbors returns the overlay ids of current neighbors.
func (n *Node) Neighbors() []int32 {
	res := make(chan []int32, 1)
	select {
	case n.ctl <- func() {
		var out []int32
		for id := range n.peers {
			out = append(out, id)
		}
		res <- out
	}:
	case <-n.closed:
		return nil
	}
	select {
	case out := <-res:
		return out
	case <-n.closed:
		return nil
	}
}

// Connect dials and handshakes with a remote node's listen address,
// establishing a full neighbor relationship.
func (n *Node) Connect(addr string) error {
	conn, id, raddr, err := n.dialPeer(addr, false)
	if err != nil {
		n.tel.handshakeFail.Inc()
		return err
	}
	if raddr == "" {
		raddr = addr
	}
	n.adoptConn(conn, raddr, id, true)
	return nil
}

// dialTimeout is the per-attempt dial budget: Reconnect's if set,
// otherwise the historical 5 seconds.
func (n *Node) dialTimeout() time.Duration {
	if rc := n.cfg.Reconnect; rc != nil && rc.DialTimeout > 0 {
		return rc.DialTimeout
	}
	return 5 * time.Second
}

// dialPeer dials addr, handshakes, and reads the responder's identity.
// The whole exchange aborts when the node closes: the dial goes through
// n.ctx and the identity read's socket is closed by a context hook, so
// goroutines blocked here never outlive Close.
func (n *Node) dialPeer(addr string, transient bool) (conn net.Conn, id int32, raddr string, err error) {
	conn, err = dialHandshake(n.ctx, addr, n.Addr(), n.cfg.NodeID, transient, n.dialTimeout())
	if err != nil {
		return nil, 0, "", err
	}
	stop := context.AfterFunc(n.ctx, func() { conn.Close() })
	id, raddr, err = readPeerIdentity(conn)
	stop()
	if err != nil {
		conn.Close()
		return nil, 0, "", err
	}
	return conn, id, raddr, nil
}

// dialHandshake dials addr and performs the initiator handshake.
// transient connections are used for out-of-band Neighbor_Traffic
// exchanges and are not registered as neighbors on either side.
func dialHandshake(ctx context.Context, addr, listenAddr string, nodeID int32, transient bool, timeout time.Duration) (net.Conn, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gnet: dial %s: %w", addr, err)
	}
	deadline := time.Now().Add(timeout)
	conn.SetDeadline(deadline)
	kind := ""
	if transient {
		kind = "Transient: true\r\n"
	}
	if _, err := fmt.Fprintf(conn, "%s\r\nListen-Addr: %s\r\nNode-ID: %d\r\n%s\r\n",
		helloLine, listenAddr, nodeID, kind); err != nil {
		conn.Close()
		return nil, fmt.Errorf("gnet: handshake write: %w", err)
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}

// readPeerIdentity reads the responder's handshake block.
func readPeerIdentity(conn net.Conn) (int32, string, error) {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetDeadline(time.Time{})
	resp, err := readHandshake(conn)
	if err != nil {
		return 0, "", err
	}
	if !strings.HasPrefix(resp, okLine) {
		return 0, "", fmt.Errorf("gnet: handshake rejected: %q", firstLine(resp))
	}
	var id int64
	fmt.Sscanf(headerValue(resp, "Node-ID"), "%d", &id)
	return int32(id), headerValue(resp, "Listen-Addr"), nil
}

// serverHandshake runs the acceptor side; it returns the remote's
// identity, advertised listen address, and whether the connection is a
// transient control channel.
func (n *Node) serverHandshake(conn net.Conn) (int32, string, bool, error) {
	deadline := time.Now().Add(5 * time.Second)
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	req, err := readHandshake(conn)
	if err != nil {
		return 0, "", false, err
	}
	if !strings.HasPrefix(req, helloLine) {
		return 0, "", false, fmt.Errorf("gnet: bad hello: %q", firstLine(req))
	}
	remote := headerValue(req, "Listen-Addr")
	if remote == "" {
		remote = conn.RemoteAddr().String()
	}
	var id int64
	fmt.Sscanf(headerValue(req, "Node-ID"), "%d", &id)
	transient := headerValue(req, "Transient") == "true"
	if _, err := fmt.Fprintf(conn, "%s\r\nListen-Addr: %s\r\nNode-ID: %d%s",
		okLine, n.Addr(), n.cfg.NodeID, headerTerm); err != nil {
		return 0, "", false, fmt.Errorf("gnet: handshake reply: %w", err)
	}
	return int32(id), remote, transient, nil
}

// readHandshake reads until the blank-line terminator.
func readHandshake(conn net.Conn) (string, error) {
	var sb strings.Builder
	buf := make([]byte, 1)
	for sb.Len() < 4096 {
		if _, err := io.ReadFull(conn, buf); err != nil {
			return "", fmt.Errorf("gnet: handshake read: %w", err)
		}
		sb.WriteByte(buf[0])
		if strings.HasSuffix(sb.String(), headerTerm) {
			return sb.String(), nil
		}
	}
	return "", errors.New("gnet: handshake too long")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\r'); i >= 0 {
		return s[:i]
	}
	return s
}

func headerValue(block, key string) string {
	for _, line := range strings.Split(block, "\r\n") {
		if rest, ok := strings.CutPrefix(line, key+": "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
			}
			continue
		}
		go func() {
			id, remote, transient, err := n.serverHandshake(conn)
			if err != nil {
				n.tel.handshakeFail.Inc()
				conn.Close()
				return
			}
			n.adoptConn(conn, remote, id, !transient)
		}()
	}
}

// classifyFrame maps one outbound wire frame to its fault class by the
// Gnutella header type byte. Frames shorter than a header (handshake
// text never reaches the wrapped path) fall into ClassOther.
func classifyFrame(frame []byte) faults.Class {
	if len(frame) < protocol.HeaderSize {
		return faults.ClassOther
	}
	switch frame[16] {
	case protocol.TypeQuery, protocol.TypeQueryHit:
		return faults.ClassQuery
	case protocol.TypeNeighborList, protocol.TypeNeighborTraffic:
		return faults.ClassControl
	default:
		return faults.ClassOther
	}
}

// adoptConn starts a handshaked connection's pumps; register=false
// keeps it off the neighbor table (transient control channel).
func (n *Node) adoptConn(conn net.Conn, addr string, id int32, register bool) {
	conn = faults.Wrap(conn, n.cfg.Faults, n.cfg.NodeID, id, classifyFrame)
	pc := &peerConn{conn: conn, addr: addr, id: id, sendCh: make(chan []byte, 256), node: n}
	if n.ovl != nil {
		oc := n.ovl.cfg
		pc.sendCh = make(chan []byte, oc.QueryQueueDepth)
		pc.sendCtl = make(chan []byte, oc.ControlQueueDepth)
		pc.shedder = overload.NewShedder(oc.QueryQueueDepth, oc.HighWatermark, oc.LowWatermark)
	}
	if register {
		select {
		case n.ctl <- func() {
			// A peer this node cut via DD-POLICE stays cut: accepting its
			// re-dial (or our own stale reconnect racing the verdict)
			// would undo the defense one handshake later.
			if n.cutPeers[id] {
				pc.close()
				return
			}
			if old, dup := n.peers[id]; dup {
				old.close()
			}
			n.peers[id] = pc
			if n.monitor != nil {
				n.monitor.onNeighborUp(id)
			}
		}:
		case <-n.closed:
			conn.Close()
			return
		}
	}
	n.wg.Add(2)
	go pc.readLoop()
	go pc.writeLoop()
}

func (pc *peerConn) close() {
	pc.closeOne.Do(func() {
		pc.conn.Close()
		pc.sendMu.Lock()
		pc.sendClosed = true
		close(pc.sendCh)
		if pc.sendCtl != nil {
			close(pc.sendCtl)
		}
		pc.sendMu.Unlock()
	})
}

// isControlFrame classifies one outbound wire frame: Query/QueryHit
// are the flood (query class); every other type — NT, neighbor lists,
// Ping/Pong, Bye — is control-plane.
func isControlFrame(frame []byte) bool {
	if len(frame) < protocol.HeaderSize {
		return true
	}
	switch frame[16] {
	case protocol.TypeQuery, protocol.TypeQueryHit:
		return false
	}
	return true
}

// shedQuery accounts one shed query-class frame: the per-class counter,
// the historical aggregate, the node stats, and the degraded-mode
// detector's window.
func (n *Node) shedQuery() {
	n.tel.sendStalls.Inc()
	n.tel.shedQuery.Inc()
	n.statsMu.Lock()
	n.stats.ShedQuery++
	n.statsMu.Unlock()
	n.recordShed()
}

// shedControl accounts one shed control-class frame — the last resort.
func (n *Node) shedControl() {
	n.tel.sendStalls.Inc()
	n.tel.shedControl.Inc()
	n.statsMu.Lock()
	n.stats.ShedControl++
	n.statsMu.Unlock()
}

// send enqueues wire bytes, dropping on backpressure (a slow neighbor
// must not stall the node; this is where a saturated peer's drops show
// up on the sender side). Sends to a closed link report failure instead
// of panicking: the closed flag is checked under the same mutex close()
// holds while closing sendCh, so real panics in callers propagate
// rather than being swallowed by a blanket recover.
//
// With the overload plane enabled the path is class-aware: control
// frames go to the dedicated sendCtl queue (shed only when that queue
// is itself full), query frames shed early once the query queue
// crosses the high watermark and keep shedding until it drains below
// the low one — backpressure costs the flood first.
func (pc *peerConn) send(wire []byte) bool {
	pc.sendMu.Lock()
	defer pc.sendMu.Unlock()
	if pc.sendClosed {
		return false
	}
	if pc.sendCtl != nil {
		if isControlFrame(wire) {
			select {
			case pc.sendCtl <- wire:
				return true
			default:
				pc.node.shedControl()
				return false
			}
		}
		if pc.shedder.ShouldShed(len(pc.sendCh)) {
			pc.node.shedQuery()
			return false
		}
		select {
		case pc.sendCh <- wire:
			return true
		default:
			pc.node.shedQuery()
			return false
		}
	}
	select {
	case pc.sendCh <- wire:
		return true
	default:
		// Class-blind queue, class-aware accounting: the aggregate
		// stall counter still ticks, split by frame type.
		pc.node.tel.sendStalls.Inc()
		if isControlFrame(wire) {
			pc.node.tel.shedControl.Inc()
		} else {
			pc.node.tel.shedQuery.Inc()
		}
		return false
	}
}

func (pc *peerConn) writeLoop() {
	defer pc.node.wg.Done()
	if pc.sendCtl != nil {
		pc.writeLoopClassed()
		return
	}
	for wire := range pc.sendCh {
		if _, err := pc.conn.Write(wire); err != nil {
			pc.conn.Close()
			// Drain remaining queued messages until close.
			for range pc.sendCh {
			}
			return
		}
		pc.node.statsMu.Lock()
		pc.node.stats.BytesOut += uint64(len(wire))
		pc.node.statsMu.Unlock()
	}
}

// writeLoopClassed is the dual-queue write pump: control frames drain
// with strict priority — a queued NT report goes on the wire before
// any backlog of query forwards. After a write error both queues keep
// draining until close, mirroring the single-queue pump.
func (pc *peerConn) writeLoopClassed() {
	ctl, qry := pc.sendCtl, pc.sendCh
	failed := false
	write := func(wire []byte) {
		if failed {
			return
		}
		if _, err := pc.conn.Write(wire); err != nil {
			pc.conn.Close()
			failed = true
			return
		}
		pc.node.statsMu.Lock()
		pc.node.stats.BytesOut += uint64(len(wire))
		pc.node.statsMu.Unlock()
	}
	for ctl != nil || qry != nil {
		if ctl != nil {
			select {
			case wire, ok := <-ctl:
				if !ok {
					ctl = nil
					continue
				}
				write(wire)
				continue
			default:
			}
		}
		select {
		case wire, ok := <-ctl:
			if !ok {
				ctl = nil
				continue
			}
			write(wire)
		case wire, ok := <-qry:
			if !ok {
				qry = nil
				continue
			}
			write(wire)
		}
	}
}

func (pc *peerConn) readLoop() {
	n := pc.node
	defer n.wg.Done()
	defer func() {
		// Close the link here, not only in dropPeer: the run loop may
		// already be gone (node closing), and the write pump's drain
		// blocks until sendCh closes. dropPeer still runs for the
		// bookkeeping (neighbor table, monitor, reconnect provenance).
		pc.close()
		select {
		case n.ctl <- func() { n.dropPeer(pc, dropTransport) }:
		case <-n.closed:
		}
	}()
	sr := protocol.NewStreamReader(pc.conn, 64*1024)
	sr.Skip = true // survive peers speaking newer payload types
	for {
		msg, err := sr.Next()
		if err != nil {
			return
		}
		n.statsMu.Lock()
		n.stats.BytesIn += uint64(protocol.HeaderSize) + uint64(msg.Header.PayloadLen)
		n.statsMu.Unlock()
		// Control messages bypass the query backlog: with the overload
		// plane enabled they go to the priority inbox, so a flooded
		// node still sees NT reports and neighbor lists promptly.
		dest := n.inbox
		if n.inboxCtl != nil && isControlMsg(msg.Body) {
			dest = n.inboxCtl
		}
		select {
		case dest <- inboundMsg{from: pc, msg: msg}:
			n.tel.inboxHWM.SetMax(int64(len(n.inbox)))
		case <-n.done:
			return
		}
	}
}

// dropCause records why a neighbor link went away — the provenance the
// reconnect supervisor keys on. Only transport faults qualify for
// re-dialing: an orderly Bye means the peer chose to leave, and a
// DD-POLICE cut must stay cut or the defense would undo itself.
type dropCause uint8

const (
	dropTransport dropCause = iota // read/write error, injected reset
	dropOrderly                    // peer sent Bye, or local Disconnect
	dropCut                        // DD-POLICE verdict by this node
)

// String names the cause for journal provenance and logs.
func (c dropCause) String() string {
	switch c {
	case dropOrderly:
		return "orderly"
	case dropCut:
		return "cut"
	default:
		return "transport"
	}
}

// traceSpan stamps the node identity and wall-clock seconds on s and
// records it as a standalone span of trace id; a nil-check no-op when
// the node has no tracer. Live nodes cannot coordinate span ordinals
// across processes, so spans carry no parent links here — the trace ID
// groups them and timestamps order them.
func (n *Node) traceSpan(id uint64, s trace.Span) {
	if n.cfg.Tracer == nil || id == 0 {
		return
	}
	s.Node = int64(n.cfg.NodeID)
	if s.T == 0 {
		s.T = float64(time.Now().UnixNano()) / 1e9
	}
	n.cfg.Tracer.Record(id, s)
}

// guidTraceID derives the deterministic trace ID of a locally issued
// query from its GUID (itself drawn from the node's seeded source).
func guidTraceID(g protocol.GUID) uint64 {
	return binary.LittleEndian.Uint64(g[0:8])
}

// journalEvent stamps the node identity and wall-clock seconds on e and
// records it into the configured journal; a nil-check no-op when the
// node has no journal.
func (n *Node) journalEvent(e journal.Event) {
	if n.cfg.Journal == nil {
		return
	}
	e.Node = int64(n.cfg.NodeID)
	if e.T == 0 {
		e.T = float64(time.Now().UnixNano()) / 1e9
	}
	n.cfg.Journal.Record(e)
}

// dropPeer removes a neighbor (run-loop goroutine only). The cause
// decides what happens next: dropCut marks the id permanently
// unredialable; dropTransport starts a reconnect chain when the
// supervisor is enabled. A stale pc (already replaced by a newer
// connection to the same id) only closes itself — in particular, the
// transport error a dying cut connection produces moments after the cut
// does not resurrect the neighbor.
func (n *Node) dropPeer(pc *peerConn, cause dropCause) {
	if cur, ok := n.peers[pc.id]; ok && cur == pc {
		delete(n.peers, pc.id)
		if n.monitor != nil {
			n.monitor.onNeighborDown(pc.id)
		}
		n.journalEvent(journal.Event{
			Type: journal.TypePeerDrop, Peer: int64(pc.id), Detail: cause.String(),
		})
		switch cause {
		case dropCut:
			n.cutPeers[pc.id] = true
		case dropTransport:
			// A quarantined peer that loses its link is not re-dialed:
			// the breaker judged it a flooder, and proactively restoring
			// its connection would hand it a fresh queue to fill. If it
			// dials back, the acceptor still admits it (control keeps
			// flowing) with the breaker — and its throttle — intact.
			if n.ovl != nil && n.ovl.isQuarantined(pc.id) {
				break
			}
			if n.cfg.Reconnect != nil && !n.cutPeers[pc.id] && !n.reconnecting[pc.id] {
				n.scheduleReconnect(pc.id, pc.addr, 0)
			}
		}
	}
	pc.close()
	for guid, route := range n.guidRoute {
		if route == pc {
			delete(n.guidRoute, guid)
		}
	}
}

// scheduleReconnect arms the next re-dial of a lost neighbor (run-loop
// goroutine only): exponential backoff with up to 50% uniform jitter,
// capped at MaxDelay.
func (n *Node) scheduleReconnect(id int32, addr string, attempt int) {
	rc := n.cfg.Reconnect
	if attempt >= rc.MaxAttempts {
		n.tel.reconnectGiveups.Inc()
		n.journalEvent(journal.Event{
			Type: journal.TypeReconnect, Peer: int64(id),
			Detail: "giveup", Value: float64(attempt),
		})
		delete(n.reconnecting, id)
		return
	}
	n.reconnecting[id] = true
	delay := rc.BaseDelay << attempt
	if delay > rc.MaxDelay || delay <= 0 {
		delay = rc.MaxDelay
	}
	delay += time.Duration(n.src.Float64() * float64(delay) / 2)
	n.tel.reconnectBackoff.SetMax(int64(delay / time.Millisecond))
	time.AfterFunc(delay, func() {
		select {
		case n.ctl <- func() { n.tryReconnect(id, addr, attempt) }:
		case <-n.closed:
		}
	})
}

// tryReconnect runs one supervised re-dial (run-loop goroutine only).
// The dial itself happens on a tracked goroutine so the loop never
// blocks; success re-registers through the normal adoptConn path.
func (n *Node) tryReconnect(id int32, addr string, attempt int) {
	if _, have := n.peers[id]; have || n.cutPeers[id] {
		delete(n.reconnecting, id)
		return
	}
	// A backoff chain that was already in flight when the peer got
	// quarantined stops here rather than re-dialing a judged flooder.
	if n.ovl != nil && n.ovl.isQuarantined(id) {
		delete(n.reconnecting, id)
		return
	}
	select {
	case <-n.done:
		return
	default:
	}
	n.tel.reconnectAttempts.Inc()
	n.journalEvent(journal.Event{
		Type: journal.TypeReconnect, Peer: int64(id),
		Detail: "attempt", Value: float64(attempt + 1),
	})
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		conn, rid, raddr, err := n.dialPeer(addr, false)
		if err != nil {
			select {
			case n.ctl <- func() { n.scheduleReconnect(id, addr, attempt+1) }:
			case <-n.closed:
			}
			return
		}
		if raddr == "" {
			raddr = addr
		}
		n.adoptConn(conn, raddr, rid, true)
		n.tel.reconnectOK.Inc()
		n.journalEvent(journal.Event{
			Type: journal.TypeReconnect, Peer: int64(id),
			Detail: "ok", Value: float64(attempt + 1),
		})
		select {
		case n.ctl <- func() { delete(n.reconnecting, id) }:
		case <-n.closed:
		}
	}()
}
