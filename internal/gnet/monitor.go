package gnet

import (
	"fmt"
	"net"
	"strconv"
	"time"

	"ddpolice/internal/faults"
	"ddpolice/internal/journal"
	"ddpolice/internal/police"
	"ddpolice/internal/protocol"
	"ddpolice/internal/rng"
	"ddpolice/internal/trace"
)

// monitor is the live DD-POLICE implementation: per-neighbor
// Out_query/In_query windows, periodic neighbor-list exchange,
// Neighbor_Traffic collection over transient connections, indicator
// evaluation and disconnection. All methods run on the node's run-loop
// goroutine unless noted.
type monitor struct {
	n   *Node
	cfg police.Config

	curOut, curIn   map[int32]float64 // this window, by neighbor id
	prevOut, prevIn map[int32]float64 // last closed window
	lists           map[int32][]protocol.PeerAddr
	lastNT          map[int32]time.Time
	windows         int

	// pending evaluations: suspect id -> collected reports.
	pending map[int32]*evaluation
}

type evaluation struct {
	suspect int32
	// own is the observer's report about the suspect, snapshotted from
	// the window that triggered the evaluation. The verdict fires half
	// a window later and may land after closeMinute has rolled the
	// windows; recomputing from prevOut/prevIn at that point would
	// compare the members' flood-window reports against the observer's
	// quiet new window and miss sustained floods.
	own     police.Report
	reports []police.Report
	// sources dedups reports per evaluation: a member reachable both
	// directly and over a transient dial (or an unsolicited third
	// party) must count once, not inflate k and skew g(j,t).
	sources map[[4]byte]struct{}
	missing int
	// started is when the NT round began; report arrivals observe
	// their latency against it.
	started time.Time
	// deferred marks that the verdict already got its one extra
	// half-window because every asked buddy was still silent.
	deferred bool
	// traceID keys this evaluation's causal spans; 0 when untraced.
	// Snapshotted at the warning so spans landing after the window
	// rolls still join the trace that opened them.
	traceID uint64
}

// transient-dial retry schedule: each member exchange gets
// transientMaxAttempts tries, backing off transientBaseBackoff·2^k with
// up to 100% uniform jitter between them. The totals stay well inside
// the half-window verdict deadline at the default minute length and the
// shortened test windows alike.
const (
	transientMaxAttempts = 3
	transientBaseBackoff = 25 * time.Millisecond
)

func newMonitor(n *Node, cfg police.Config) *monitor {
	return &monitor{
		n:       n,
		cfg:     cfg,
		curOut:  make(map[int32]float64),
		curIn:   make(map[int32]float64),
		prevOut: make(map[int32]float64),
		prevIn:  make(map[int32]float64),
		lists:   make(map[int32][]protocol.PeerAddr),
		lastNT:  make(map[int32]time.Time),
		pending: make(map[int32]*evaluation),
	}
}

func (m *monitor) countIn(id int32)  { m.curIn[id]++ }
func (m *monitor) countOut(id int32) { m.curOut[id]++ }

// uncountOut retroactively cancels a forward that turned out to be a
// duplicate at the receiver (no-dup accounting). The counted window may
// already have rolled; prefer the current window, fall back to prev.
func (m *monitor) uncountOut(id int32) {
	if m.curOut[id] > 0 {
		m.curOut[id]--
		return
	}
	if m.prevOut[id] > 0 {
		m.prevOut[id]--
	}
}

// onNeighborUp sends our neighbor list to the new neighbor (a joining
// peer "creates its BG membership after its first neighbor list
// exchanging operation").
func (m *monitor) onNeighborUp(id int32) {
	m.sendListTo(id)
	// And ask everyone else to refresh too, so the new peer's presence
	// propagates (event-driven flavor kept cheap: we just resend ours).
	m.broadcastList()
}

func (m *monitor) onNeighborDown(id int32) {
	delete(m.curOut, id)
	delete(m.curIn, id)
	delete(m.prevOut, id)
	delete(m.prevIn, id)
	delete(m.lists, id)
	if m.cfg.EventDriven {
		m.broadcastList()
	}
}

func (m *monitor) onNeighborList(id int32, nl protocol.NeighborList) {
	cp := make([]protocol.PeerAddr, len(nl.Neighbors))
	copy(cp, nl.Neighbors)
	m.lists[id] = cp
}

// ownList renders this node's neighbor set as wire entries carrying the
// overlay identity and the TCP port for out-of-band dialing.
func (m *monitor) ownList() protocol.NeighborList {
	var nl protocol.NeighborList
	for id, pc := range m.n.peers {
		port := uint16(0)
		if _, p, err := net.SplitHostPort(pc.addr); err == nil {
			if v, err := strconv.Atoi(p); err == nil {
				port = uint16(v)
			}
		}
		nl.Neighbors = append(nl.Neighbors, protocol.AddrFromNodeID(id, port))
	}
	return nl
}

func (m *monitor) sendListTo(id int32) {
	if pc, ok := m.n.peers[id]; ok {
		pc.send(protocol.Encode(nil, protocol.NewGUID(m.n.src), 1, 0, m.ownList()))
	}
}

func (m *monitor) broadcastList() {
	wire := protocol.Encode(nil, protocol.NewGUID(m.n.src), 1, 0, m.ownList())
	for _, pc := range m.n.peers {
		pc.send(wire)
	}
}

// closeMinute rolls the monitoring window and starts evaluations for
// suspicious neighbors.
func (m *monitor) closeMinute() {
	m.prevOut, m.curOut = m.curOut, make(map[int32]float64)
	m.prevIn, m.curIn = m.curIn, make(map[int32]float64)
	m.windows++

	// Periodic neighbor-list exchange.
	period := int(m.cfg.ExchangePeriod / 60)
	if period < 1 {
		period = 1
	}
	if m.cfg.EventDriven || m.windows%period == 0 {
		m.broadcastList()
	}

	// The paper's 50-second suppression is defined against one-minute
	// windows; scale it with the configured window length so shortened
	// test windows keep the same windows-per-round ratio.
	rateLimit := time.Duration(m.cfg.ReportRateLimit / 60 * float64(m.n.cfg.MinuteLength))
	for id, in := range m.prevIn {
		if in <= m.cfg.WarnThreshold {
			continue
		}
		m.n.journalEvent(journal.Event{
			Type: journal.TypeWarning, Peer: int64(id),
			Value: in, Window: m.windows,
		})
		tid := uint64(0)
		if m.n.cfg.Tracer != nil {
			// The node id seeds the derivation on the live path (each
			// node draws its own GUIDs the same way), so two nodes
			// evaluating the same suspect get distinct traces.
			tid = trace.DetectionID(uint64(uint32(m.n.cfg.NodeID)),
				uint64(uint32(m.n.cfg.NodeID)), uint64(uint32(id)), uint64(m.windows))
			m.n.traceSpan(tid, trace.Span{
				Kind: trace.KindWarning, Peer: int64(id), Value: in,
			})
		}
		if last, ok := m.lastNT[id]; ok && m.n.cfg.Clock.Since(last) < rateLimit {
			continue
		}
		m.lastNT[id] = m.n.cfg.Clock.Now()
		m.startEvaluation(id, tid)
	}
}

// startEvaluation sends Neighbor_Traffic requests to the suspect's
// buddy group and schedules the verdict after half a window.
func (m *monitor) startEvaluation(suspect int32, traceID uint64) {
	members, ok := m.lists[suspect]
	if !ok {
		return // no buddy-group view yet: defer (paper step 1 is a prerequisite)
	}
	ev := &evaluation{
		suspect: suspect,
		own:     police.Report{Out: m.prevOut[suspect], In: m.prevIn[suspect]},
		sources: make(map[[4]byte]struct{}),
		started: m.n.cfg.Clock.Now(),
		traceID: traceID,
	}
	m.pending[suspect] = ev
	nt := protocol.NeighborTraffic{
		SourceIP:  protocol.AddrFromNodeID(m.n.cfg.NodeID, 0).IP,
		SuspectIP: protocol.AddrFromNodeID(suspect, 0).IP,
		Timestamp: uint32(m.n.cfg.Clock.Now().Unix()),
		Outgoing:  uint32(m.prevOut[suspect]),
		Incoming:  uint32(m.prevIn[suspect]),
	}
	wire := protocol.Encode(nil, protocol.NewGUID(m.n.src), 1, 0, nt)
	asked := 0
	for _, member := range members {
		mid := member.NodeID()
		if mid == m.n.cfg.NodeID || mid == suspect {
			continue
		}
		asked++
		if pc, direct := m.n.peers[mid]; direct {
			pc.send(wire)
			continue
		}
		// Out-of-band: transient dial to the member's advertised port,
		// bounded by the node-wide semaphore. A rejected member simply
		// stays missing — §3.3's timeout-as-zero absorbs it — instead of
		// growing the goroutine count without limit.
		select {
		case m.n.transientSem <- struct{}{}:
			m.n.wg.Add(1)
			go m.transientNT(member, wire, m.n.src.Split())
		default:
			m.n.tel.transientRejected.Inc()
		}
	}
	ev.missing = asked // members count down as reports arrive
	m.n.journalEvent(journal.Event{
		Type: journal.TypeNTRequest, Peer: int64(suspect),
		K: asked, Window: m.windows,
	})
	m.n.traceSpan(ev.traceID, trace.Span{
		Kind: trace.KindNTRequest, Peer: int64(suspect), Value: float64(asked),
	})
	m.armVerdict(suspect)
}

// armVerdict schedules finishEvaluation half a window out.
func (m *monitor) armVerdict(suspect int32) {
	m.n.cfg.Clock.AfterFunc(m.n.cfg.MinuteLength/2, func() {
		select {
		case m.n.ctl <- func() { m.finishEvaluation(suspect) }:
		case <-m.n.closed:
		}
	})
}

// transientNT runs off the run loop on a wg-tracked goroutine holding
// one transientSem slot: up to transientMaxAttempts dial-and-exchange
// tries with exponential backoff + jitter between them. src is this
// goroutine's private stream, split off the run-loop source by the
// caller (rng.Source is not concurrency-safe).
func (m *monitor) transientNT(member protocol.PeerAddr, wire []byte, src *rng.Source) {
	n := m.n
	defer n.wg.Done()
	defer func() { <-n.transientSem }()
	backoff := transientBaseBackoff
	for attempt := 0; attempt < transientMaxAttempts; attempt++ {
		if attempt > 0 {
			n.tel.transientRetries.Inc()
			delay := backoff + time.Duration(src.Float64()*float64(backoff))
			backoff *= 2
			select {
			case <-time.After(delay):
			case <-n.done:
				return
			}
		}
		if m.transientAttempt(member, wire) {
			return
		}
		n.tel.transientErr.Inc()
	}
}

// transientAttempt is one dial-handshake-exchange round; it reports
// whether a Neighbor_Traffic reply made it back to the run loop. Each
// attempt is individually deadlined to half a monitoring window — the
// verdict fires then, so a slower reply could never count anyway.
func (m *monitor) transientAttempt(member protocol.PeerAddr, wire []byte) bool {
	host, _, err := net.SplitHostPort(m.n.Addr())
	if err != nil {
		return false
	}
	addr := net.JoinHostPort(host, fmt.Sprint(member.Port))
	conn, _, _, err := m.n.dialPeer(addr, true)
	if err != nil {
		return false
	}
	defer conn.Close()
	// The out-of-band channel fails like any other: wrap it in the same
	// fault plane the neighbor links live under.
	conn = faults.Wrap(conn, m.n.cfg.Faults, m.n.cfg.NodeID, member.NodeID(), classifyFrame)
	conn.SetDeadline(time.Now().Add(m.n.cfg.MinuteLength / 2))
	if _, err := conn.Write(wire); err != nil {
		return false
	}
	// Read one reply message.
	sr := protocol.NewStreamReader(conn, 4096)
	msg, err := sr.Next()
	if err != nil {
		return false
	}
	nt, ok := msg.Body.(protocol.NeighborTraffic)
	if !ok {
		return false
	}
	m.n.tel.transientOK.Inc()
	select {
	case m.n.ctl <- func() { m.recordReport(nt) }:
	case <-m.n.closed:
	}
	return true
}

// onNeighborTraffic handles an incoming Table 1 message. The wire
// format carries no request/reply flag, so solicitation state decides:
// while we have a pending evaluation for the suspect, an incoming NT
// is (or doubles as) a reply to our own round and is only recorded —
// answering it would bounce NT messages between two monitors forever,
// an echo storm the event journal made plainly visible. Unsolicited
// messages are someone else's request and get our report back (the
// paper's 50-second rule suppresses redundant *broadcast rounds*, not
// answers; a member that stonewalled would be indistinguishable from a
// cheater).
func (m *monitor) onNeighborTraffic(from *peerConn, nt protocol.NeighborTraffic) {
	suspect := protocol.PeerAddr{IP: nt.SuspectIP}.NodeID()
	if _, waiting := m.pending[suspect]; waiting {
		m.recordReport(nt)
		return
	}
	// Because window phases differ across nodes, report the heavier of
	// the last closed window and the current partial one — during a
	// sustained flood this is the window that actually contains it.
	reply := protocol.NeighborTraffic{
		SourceIP:  protocol.AddrFromNodeID(m.n.cfg.NodeID, 0).IP,
		SuspectIP: nt.SuspectIP,
		Timestamp: uint32(m.n.cfg.Clock.Now().Unix()),
		Outgoing:  uint32(maxf(m.prevOut[suspect], m.curOut[suspect])),
		Incoming:  uint32(maxf(m.prevIn[suspect], m.curIn[suspect])),
	}
	from.send(protocol.Encode(nil, protocol.NewGUID(m.n.src), 1, 0, reply))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func (m *monitor) recordReport(nt protocol.NeighborTraffic) {
	suspect := protocol.PeerAddr{IP: nt.SuspectIP}.NodeID()
	ev, ok := m.pending[suspect]
	if !ok {
		return
	}
	if _, dup := ev.sources[nt.SourceIP]; dup {
		return // one vote per buddy-group member, whatever the channel
	}
	ev.sources[nt.SourceIP] = struct{}{}
	ev.reports = append(ev.reports, police.Report{
		Out: float64(nt.Outgoing),
		In:  float64(nt.Incoming),
	})
	if ev.missing > 0 {
		ev.missing--
	}
	m.n.tel.ntLatency.ObserveDuration(m.n.cfg.Clock.Since(ev.started))
	m.n.journalEvent(journal.Event{
		Type: journal.TypeNTReport, Peer: int64(suspect),
		Member: int64(protocol.PeerAddr{IP: nt.SourceIP}.NodeID()),
		Window: m.windows,
	})
	m.n.traceSpan(ev.traceID, trace.Span{
		Kind: trace.KindNTReport,
		Peer: int64(protocol.PeerAddr{IP: nt.SourceIP}.NodeID()),
		Dur:  m.n.cfg.Clock.Since(ev.started).Seconds(),
	})
}

// finishEvaluation computes the indicators and cuts the suspect if
// either exceeds CT.
func (m *monitor) finishEvaluation(suspect int32) {
	ev, ok := m.pending[suspect]
	if !ok {
		return
	}
	// Graceful degradation under quorum loss: if we asked buddies and
	// every one of them is still silent (dead ports, partitions, dial
	// retries still in flight), give the group one extra half-window
	// before judging alone. One deferral only — after that the paper's
	// §3.3 timeout-as-zero applies and the verdict proceeds on whatever
	// arrived.
	if !ev.deferred && ev.missing > 0 && len(ev.reports) == 0 {
		ev.deferred = true
		m.n.tel.evalDeferred.Inc()
		m.n.journalEvent(journal.Event{
			Type: journal.TypeNTDefer, Peer: int64(suspect), Value: float64(ev.missing),
		})
		m.n.traceSpan(ev.traceID, trace.Span{
			Kind: trace.KindNTDefer, Peer: int64(suspect), Value: float64(ev.missing),
		})
		m.armVerdict(suspect)
		return
	}
	delete(m.pending, suspect)
	pc, connected := m.n.peers[suspect]
	if !connected {
		return
	}
	if ev.missing > 0 {
		// §3.3 timeout-as-zero: the verdict proceeds scoring each
		// still-silent member as a zero report. Journaled distinctly
		// from the deferral above — post-run the two used to be
		// indistinguishable.
		m.n.tel.evalTimeoutZero.Inc()
		m.n.journalEvent(journal.Event{
			Type: journal.TypeNTTimeout, Peer: int64(suspect), Value: float64(ev.missing),
		})
		m.n.traceSpan(ev.traceID, trace.Span{
			Kind: trace.KindNTTimeout, Peer: int64(suspect), Value: float64(ev.missing),
		})
	}
	g, s, k := police.ComputeIndicators(m.cfg.Q0, ev.own, ev.reports, ev.missing)
	m.n.journalEvent(journal.Event{
		Type: journal.TypeIndicator, Peer: int64(suspect),
		G: g, S: s, K: k, Window: m.windows,
	})
	m.n.traceSpan(ev.traceID, trace.Span{
		Kind: trace.KindIndicator, Peer: int64(suspect),
		Value: max(g, s), Detail: "g_s_max", Depth: k,
	})
	if g <= m.cfg.CutThreshold && s <= m.cfg.CutThreshold {
		return
	}
	reason := fmt.Sprintf("DD-POLICE: g=%.1f s=%.1f > CT=%.1f", g, s, m.cfg.CutThreshold)
	pc.send(protocol.Encode(nil, protocol.NewGUID(m.n.src), 1, 0,
		protocol.Bye{Code: protocol.ByeCodeDDoSSuspect, Reason: reason}))
	m.n.statsMu.Lock()
	m.n.stats.Disconnects = append(m.n.stats.Disconnects, Disconnect{
		Peer: pc.addr, Code: protocol.ByeCodeDDoSSuspect, Reason: reason,
		General: g, Single: s,
	})
	m.n.statsMu.Unlock()
	m.n.journalEvent(journal.Event{
		Type: journal.TypeCut, Peer: int64(suspect), G: g, S: s, Window: m.windows,
	})
	m.n.traceSpan(ev.traceID, trace.Span{
		Kind: trace.KindCut, Peer: int64(suspect), Value: max(g, s),
		Dur: m.n.cfg.Clock.Since(ev.started).Seconds(),
	})
	m.n.dropPeer(pc, dropCut)
}
