package gnet

import (
	"sort"
	"sync"
	"testing"
	"time"

	"ddpolice/internal/police"
	"ddpolice/internal/protocol"
)

// fakeClock is a manually advanced Clock. Advance moves virtual time
// and fires due AfterFunc callbacks in deadline order, outside the
// lock so a callback may schedule follow-up timers or hand work to a
// run loop without deadlocking.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	due time.Time
	f   func()
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *fakeClock) AfterFunc(d time.Duration, f func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timers = append(c.timers, &fakeTimer{due: c.now.Add(d), f: f})
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due, rest []*fakeTimer
	for _, tm := range c.timers {
		if tm.due.After(c.now) {
			rest = append(rest, tm)
		} else {
			due = append(due, tm)
		}
	}
	c.timers = rest
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].due.Before(due[j].due) })
	for _, tm := range due {
		tm.f()
	}
}

// clockPolicePair is policePair with an injected fake clock: the
// hour-long MinuteLength means detection timing moves only when the
// test advances the clock.
func clockPolicePair(t *testing.T, clk *fakeClock) (observer, suspect *Node) {
	t.Helper()
	pcfg := police.DefaultConfig()
	pcfg.Q0 = 10
	pcfg.WarnThreshold = 50
	pcfg.CutThreshold = 5
	mutate := func(cfg *Config) {
		cfg.Police = &pcfg
		cfg.MinuteLength = time.Hour
		cfg.Clock = clk
	}
	observer = newTestNode(t, "observer", 1, mutate)
	suspect = newTestNode(t, "suspect", 2, mutate)
	if err := observer.Connect(suspect.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		have := false
		runOnLoop(t, observer, func() {
			_, have = observer.monitor.lists[2]
		})
		return have
	}, "observer received the suspect's neighbor list")
	return observer, suspect
}

// TestMonitorNTRateLimitUsesInjectedClock is the regression test for
// the monitor reading raw wall time: the §3.3 50-second suppression
// (scaled to 50 virtual minutes by the hour-long test window) must
// follow the node's injected clock. Before the clock was injectable
// this rule was untestable without real sleeps — under chaos (stalled
// goroutines, slow CI wall time) the suppression window silently
// drifted relative to the window roll it is defined against.
func TestMonitorNTRateLimitUsesInjectedClock(t *testing.T) {
	clk := newFakeClock()
	observer, _ := clockPolicePair(t, clk)
	m := observer.monitor

	// Flood window: the evaluation starts and stamps lastNT at the
	// fake now.
	var ev1 *evaluation
	runOnLoop(t, observer, func() {
		m.curIn[2] = 1000
		m.closeMinute()
		ev1 = m.pending[2]
	})
	if ev1 == nil {
		t.Fatal("no evaluation started for the flooding neighbor")
	}

	// Still flooding 20 virtual minutes later — inside the 50-minute
	// suppression window, so no new broadcast round starts.
	clk.Advance(20 * time.Minute)
	runOnLoop(t, observer, func() {
		m.curIn[2] = 1000
		m.closeMinute()
		if m.pending[2] != ev1 {
			t.Error("rate limit ignored the injected clock: new evaluation inside the suppression window")
		}
	})

	// 40 more minutes puts the last broadcast 60 minutes back — past
	// the limit, so the next flood window starts a fresh round.
	clk.Advance(40 * time.Minute)
	runOnLoop(t, observer, func() {
		m.curIn[2] = 1000
		m.closeMinute()
		if m.pending[2] == ev1 {
			t.Error("suppression window never expired on the injected clock")
		}
	})
}

// TestVerdictDeadlineFollowsInjectedClock pins the half-window verdict
// deadline to the injected clock: armed at 30 virtual minutes, it must
// not fire at 29 and must fire once advanced past — entirely without
// wall-clock sleeps. The suspect's buddy group is just the observer
// itself here (asked = 0, so no deferral), and the observer's own
// 1000-query report is far beyond CT, so the verdict cuts.
func TestVerdictDeadlineFollowsInjectedClock(t *testing.T) {
	clk := newFakeClock()
	observer, _ := clockPolicePair(t, clk)
	m := observer.monitor

	runOnLoop(t, observer, func() {
		m.curIn[2] = 1000
		m.closeMinute()
		if _, ok := m.pending[2]; !ok {
			t.Error("no evaluation started for the flooding neighbor")
		}
	})

	// One virtual minute short of the deadline: nothing fires.
	clk.Advance(29 * time.Minute)
	runOnLoop(t, observer, func() {
		if _, ok := m.pending[2]; !ok {
			t.Error("verdict fired before its half-window deadline")
		}
	})

	// Past the deadline: the timer hands finishEvaluation to the run
	// loop, which cuts the suspect.
	clk.Advance(2 * time.Minute)
	waitFor(t, 2*time.Second, func() bool {
		gone := false
		runOnLoop(t, observer, func() {
			_, pending := m.pending[2]
			gone = !pending
		})
		return gone
	}, "verdict fired after the clock passed the deadline")

	cut := false
	for _, d := range observer.Stats().Disconnects {
		if d.Code == protocol.ByeCodeDDoSSuspect {
			cut = true
		}
	}
	if !cut {
		t.Fatal("deadline verdict did not cut the flooding neighbor")
	}
}
