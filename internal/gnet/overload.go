package gnet

import (
	"sync/atomic"

	"ddpolice/internal/capacity"
	"ddpolice/internal/journal"
	"ddpolice/internal/overload"
	"ddpolice/internal/protocol"
	"ddpolice/internal/trace"
)

// overloadState is the node's overload-resilience plane, present only
// when Config.Overload is set. The breaker and offered maps are
// run-loop-owned; the window counters are atomics because send-path
// sheds may be recorded from connection goroutines.
type overloadState struct {
	cfg   overload.Config
	cproc *capacity.ClassedProcessor

	// breakers holds one quarantine circuit breaker per peer ever
	// heard from; breakers deliberately survive reconnects, so a
	// flooder cannot reset its strike count by bouncing the link.
	breakers map[int32]*overload.Breaker
	// offered counts this window's inbound queries per peer (first
	// copies, admitted or not — what the breaker judges).
	offered map[int32]float64

	detector *overload.Detector
	windows  int

	// Window counters for the degraded-mode detector. Shed counts
	// every query-class message dropped by the overload plane (send
	// watermark, full queue, quarantine throttle); handled counts
	// queries that got processing tokens.
	winShed    atomic.Int64
	winHandled atomic.Int64

	// degraded mirrors the detector's mode for lock-free Stats reads.
	degraded atomic.Bool
	// quarantined mirrors the count of peers with an open breaker.
	quarantined atomic.Int64
}

func newOverloadState(cfg overload.Config, capacityPerMin, burst float64) (*overloadState, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cproc, err := capacity.NewClassedProcessor(capacityPerMin, burst, cfg.ControlReserveFrac)
	if err != nil {
		return nil, err
	}
	return &overloadState{
		cfg:      cfg,
		cproc:    cproc,
		breakers: make(map[int32]*overload.Breaker),
		offered:  make(map[int32]float64),
		detector: overload.NewDetector(cfg),
	}, nil
}

// breaker returns the peer's circuit breaker, creating it closed
// (run-loop goroutine only).
func (o *overloadState) breaker(id int32) *overload.Breaker {
	b, ok := o.breakers[id]
	if !ok {
		b = overload.NewBreaker(o.cfg)
		o.breakers[id] = b
	}
	return b
}

// isQuarantined reports whether the peer's breaker is open (run-loop
// goroutine only). Peers with no breaker yet are in good standing.
func (o *overloadState) isQuarantined(id int32) bool {
	b, ok := o.breakers[id]
	return ok && b.State() != overload.StateClosed
}

// admitQuery decides one inbound query from the peer: it always counts
// the offer (the breaker judges offered load, not admitted load) and
// throttles when the peer is quarantined or probing.
func (o *overloadState) admitQuery(id int32) bool {
	o.offered[id]++
	return o.breaker(id).Admit()
}

// closeOverloadWindow rolls every breaker and the degraded detector
// (run-loop goroutine only, driven by the overload ticker at
// MinuteLength). Breakers with no traffic still roll, so quarantine
// terms elapse and probes fire even when the flooder goes silent.
func (n *Node) closeOverloadWindow() {
	o := n.ovl
	o.windows++
	open := int64(0)
	for id, b := range o.breakers {
		off := o.offered[id]
		ev := b.CloseWindow(off)
		if ev != overload.EventNone {
			n.journalEvent(journal.Event{
				Type: journal.TypeQuarantine, Peer: int64(id),
				Detail: ev.String(), Value: off, Window: o.windows,
			})
			n.overloadSpan(trace.Span{
				Kind: trace.KindQuarantine, Peer: int64(id),
				Detail: ev.String(), Value: off,
			})
		}
		if b.State() != overload.StateClosed {
			open++
		}
	}
	for id := range o.offered {
		delete(o.offered, id)
	}
	o.quarantined.Store(open)
	n.tel.quarantinedPeers.Set(open)

	shed := o.winShed.Swap(0)
	handled := o.winHandled.Swap(0)
	if shed > 0 {
		n.journalEvent(journal.Event{
			Type: journal.TypeShed, Detail: overload.ClassQuery.String(),
			Value: float64(shed), Window: o.windows,
		})
		n.overloadSpan(trace.Span{
			Kind: trace.KindShed, Detail: overload.ClassQuery.String(),
			Value: float64(shed),
		})
	}
	if o.detector.CloseWindow(float64(shed), float64(handled)) {
		detail := "exit"
		deg := int64(0)
		if o.detector.Degraded() {
			detail = "enter"
			deg = 1
		}
		o.degraded.Store(o.detector.Degraded())
		n.tel.degraded.Set(deg)
		frac := 0.0
		if shed+handled > 0 {
			frac = float64(shed) / float64(shed+handled)
		}
		n.journalEvent(journal.Event{
			Type: journal.TypeDegraded, Detail: detail,
			Value: frac, Window: o.windows,
		})
		n.overloadSpan(trace.Span{
			Kind: trace.KindDegraded, Detail: detail, Value: frac,
		})
	}
}

// overloadSpan annotates this node's per-node overload trace (ID
// derived from the node identity) with a shed/quarantine/degraded
// marker; a nil-check no-op without a tracer.
func (n *Node) overloadSpan(s trace.Span) {
	if n.cfg.Tracer == nil {
		return
	}
	n.traceSpan(trace.OverloadID(uint64(uint32(n.cfg.NodeID))), s)
}

// recordShed counts one shed query-class message (any goroutine).
func (n *Node) recordShed() {
	if n.ovl != nil {
		n.ovl.winShed.Add(1)
	}
}

// Quarantined returns the ids of peers whose overload breaker is
// currently open (quarantined or probing); nil when the overload plane
// is disabled.
func (n *Node) Quarantined() []int32 {
	if n.ovl == nil {
		return nil
	}
	res := make(chan []int32, 1)
	select {
	case n.ctl <- func() {
		var out []int32
		for id, b := range n.ovl.breakers {
			if b.State() != overload.StateClosed {
				out = append(out, id)
			}
		}
		res <- out
	}:
	case <-n.closed:
		return nil
	}
	select {
	case out := <-res:
		return out
	case <-n.closed:
		return nil
	}
}

// Degraded reports whether the node is currently in degraded mode.
func (n *Node) Degraded() bool {
	return n.ovl != nil && n.ovl.degraded.Load()
}

// isControlMsg classifies one decoded inbound message: everything that
// is not flood traffic (Query/QueryHit) is control-plane — the sparse,
// load-bearing messages detection depends on.
func isControlMsg(body any) bool {
	switch body.(type) {
	case protocol.Query, protocol.QueryHit:
		return false
	default:
		return true
	}
}
