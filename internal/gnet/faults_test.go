package gnet

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ddpolice/internal/faults"
	"ddpolice/internal/police"
	"ddpolice/internal/protocol"
	"ddpolice/internal/rng"
	"ddpolice/internal/telemetry"
	"ddpolice/internal/topology"
)

// fastReconnect keeps supervisor tests quick without changing the
// schedule's shape.
func fastReconnect() *ReconnectConfig {
	return &ReconnectConfig{
		MaxAttempts: 10,
		BaseDelay:   20 * time.Millisecond,
		MaxDelay:    200 * time.Millisecond,
		DialTimeout: 2 * time.Second,
	}
}

func counterValue(reg *telemetry.Registry, name string) uint64 {
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestReconnectAfterInjectedReset is the acceptance test for the
// self-healing half of the supervisor: a neighbor lost to an injected
// TCP reset (a transport fault) must be re-dialed with backoff and
// re-established once the fault clears.
func TestReconnectAfterInjectedReset(t *testing.T) {
	reg := telemetry.New()
	plan := faults.NewPlan(1)
	a := newTestNode(t, "a", 1, func(cfg *Config) {
		cfg.Faults = plan
		cfg.Reconnect = fastReconnect()
		cfg.Telemetry = reg
	})
	b := newTestNode(t, "b", 2, nil)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(a.Neighbors()) == 1 }, "a sees b")

	// Every query frame now tears the connection down.
	plan.SetRule(faults.ClassQuery, faults.Rule{Reset: 1})
	a.SendRawQuery("boom")
	waitFor(t, 2*time.Second, func() bool {
		return counterValue(reg, "faults.injected_resets") >= 1
	}, "reset injected")
	plan.SetRule(faults.ClassQuery, faults.Rule{})

	waitFor(t, 5*time.Second, func() bool {
		ns := a.Neighbors()
		return len(ns) == 1 && ns[0] == 2
	}, "supervisor re-established the neighbor")
	if got := counterValue(reg, "gnet.reconnect_attempts"); got < 1 {
		t.Errorf("reconnect_attempts = %d, want >= 1", got)
	}
	if got := counterValue(reg, "gnet.reconnect_successes"); got < 1 {
		t.Errorf("reconnect_successes = %d, want >= 1", got)
	}
	// Backoff must have been observable in telemetry.
	var backoff int64
	for _, g := range reg.Snapshot().Gauges {
		if g.Name == "gnet.reconnect_backoff_max_ms" {
			backoff = g.Value
		}
	}
	if backoff < int64(fastReconnect().BaseDelay/time.Millisecond) {
		t.Errorf("reconnect_backoff_max_ms = %d, want >= base delay", backoff)
	}
}

// TestPoliceCutNeverReconnects is the provenance half: a neighbor this
// node disconnected via DD-POLICE must never be re-dialed, even with
// the supervisor enabled and the dying connection producing the usual
// transport errors moments later.
func TestPoliceCutNeverReconnects(t *testing.T) {
	reg := telemetry.New()
	pcfg := police.DefaultConfig()
	pcfg.Q0 = 10
	pcfg.WarnThreshold = 50
	pcfg.CutThreshold = 5
	observer := newTestNode(t, "observer", 1, func(cfg *Config) {
		cfg.Police = &pcfg
		cfg.MinuteLength = time.Hour // windows rolled by hand
		cfg.Telemetry = reg
		cfg.Reconnect = fastReconnect()
	})
	// The suspect gets neither the supervisor nor the observer's
	// registry: the assertion below is that the OBSERVER never re-dials.
	suspect := newTestNode(t, "suspect", 2, func(cfg *Config) {
		cfg.Police = &pcfg
		cfg.MinuteLength = time.Hour
	})
	if err := observer.Connect(suspect.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		have := false
		runOnLoop(t, observer, func() { _, have = observer.monitor.lists[2] })
		return have
	}, "observer received the suspect's neighbor list")

	// Flood window -> evaluation -> verdict, all driven by hand.
	m := observer.monitor
	runOnLoop(t, observer, func() {
		m.curIn[2] = 1000
		m.closeMinute()
		m.finishEvaluation(2)
	})
	waitFor(t, 2*time.Second, func() bool { return len(observer.Neighbors()) == 0 }, "suspect cut")

	// Give the (wrongly scheduled, if any) reconnect chain ample time.
	time.Sleep(500 * time.Millisecond)
	if got := counterValue(reg, "gnet.reconnect_attempts"); got != 0 {
		t.Errorf("reconnect_attempts = %d after a DD-POLICE cut, want 0", got)
	}
	if len(observer.Neighbors()) != 0 {
		t.Error("cut neighbor came back")
	}
	runOnLoop(t, observer, func() {
		if !observer.cutPeers[2] {
			t.Error("cut provenance not recorded in cutPeers")
		}
	})
}

// TestCloseDuringReconnectLeaksNoGoroutines is the goroutine-leak
// regression: Close during an in-flight evaluation (transient dials
// retrying dead members) plus a pending reconnect chain must return the
// process to its baseline goroutine count.
func TestCloseDuringReconnectLeaksNoGoroutines(t *testing.T) {
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	pcfg := police.DefaultConfig()
	pcfg.Q0 = 10
	pcfg.WarnThreshold = 50
	mutate := func(cfg *Config) {
		cfg.Police = &pcfg
		cfg.MinuteLength = time.Hour
		cfg.Reconnect = fastReconnect()
	}
	a := newTestNode(t, "a", 1, mutate)
	b := newTestNode(t, "b", 2, mutate)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(a.Neighbors()) == 1 }, "connected")

	// In-flight evaluation: four dead members, each retried with backoff.
	runOnLoop(t, a, func() {
		a.monitor.lists[7] = []protocol.PeerAddr{
			protocol.AddrFromNodeID(8, 1),
			protocol.AddrFromNodeID(9, 1),
			protocol.AddrFromNodeID(10, 1),
			protocol.AddrFromNodeID(11, 1),
		}
		a.monitor.prevIn[7] = 1000
		a.monitor.startEvaluation(7, 0)
	})
	// Pending reconnect: b dies, a's supervisor starts re-dialing.
	b.Close()
	time.Sleep(50 * time.Millisecond)
	a.Close()

	waitFor(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	}, fmt.Sprintf("goroutines back to baseline %d (now %d)", baseline, runtime.NumGoroutine()))
}

// TestChaosDetectionConverges is the end-to-end chaos validation: an
// 8-node TCP overlay under 20% injected message loss (queries AND
// DD-POLICE control traffic) plus one partition/heal cycle must still
// cut a flooding agent within the CT=5 window machinery.
func TestChaosDetectionConverges(t *testing.T) {
	g, err := topology.BarabasiAlbert(rng.New(11), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := police.DefaultConfig()
	pcfg.Q0 = 10
	pcfg.WarnThreshold = 40
	pcfg.CutThreshold = 5
	const agentIdx = 7
	plan := faults.NewPlan(77)
	plan.SetRule(faults.ClassQuery, faults.Rule{Drop: 0.2})
	plan.SetRule(faults.ClassControl, faults.Rule{Drop: 0.2})
	h, err := NewHarness(g, func(i int, cfg *Config) {
		cfg.Police = &pcfg
		cfg.MinuteLength = 400 * time.Millisecond
		cfg.Faults = plan
		cfg.Reconnect = fastReconnect()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	waitFor(t, 3*time.Second, func() bool {
		for i := 0; i < h.Len(); i++ {
			if len(h.Node(i).Neighbors()) != g.Degree(topology.NodeID(i)) {
				return false
			}
		}
		return true
	}, "overlay connected")

	// Attack: node 7 floods distinct bogus queries.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(3 * time.Millisecond)
		defer tick.Stop()
		i := 0
		for {
			select {
			case <-tick.C:
				h.Node(agentIdx).SendRawQuery(fmt.Sprintf("junk-%d", i))
				i++
			case <-stop:
				return
			}
		}
	}()

	// One partition/heal cycle while the attack runs: two honest nodes
	// are isolated for two windows, then healed.
	go func() {
		time.Sleep(time.Second)
		plan.Partition(2, 3)
		time.Sleep(800 * time.Millisecond)
		plan.Heal()
	}()

	waitFor(t, 20*time.Second, func() bool {
		for i := 0; i < h.Len(); i++ {
			if i == agentIdx {
				continue
			}
			for _, d := range h.Node(i).Stats().Disconnects {
				if d.Code == protocol.ByeCodeDDoSSuspect {
					return true
				}
			}
		}
		return false
	}, "an observer cut the agent despite 20% loss and a partition")
}
