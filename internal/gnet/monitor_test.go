package gnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ddpolice/internal/police"
	"ddpolice/internal/protocol"
	"ddpolice/internal/telemetry"
)

// runOnLoop executes fn on n's run-loop goroutine and waits for it, so
// tests can drive monitor state deterministically (window rolls and
// verdicts are ordered exactly as the bug scenarios require).
func runOnLoop(t *testing.T, n *Node, fn func()) {
	t.Helper()
	done := make(chan struct{})
	select {
	case n.ctl <- func() { fn(); close(done) }:
	case <-time.After(2 * time.Second):
		t.Fatal("ctl enqueue timeout")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ctl run timeout")
	}
}

// policePair builds observer -> suspect over real TCP with DD-POLICE on
// both, a MinuteLength long enough that no timer fires during the test,
// and waits until the observer holds the suspect's neighbor list.
func policePair(t *testing.T, reg *telemetry.Registry) (observer, suspect *Node) {
	t.Helper()
	pcfg := police.DefaultConfig()
	pcfg.Q0 = 10
	pcfg.WarnThreshold = 50
	pcfg.CutThreshold = 5
	mutate := func(cfg *Config) {
		cfg.Police = &pcfg
		cfg.MinuteLength = time.Hour // tests roll windows by hand
		cfg.Telemetry = reg
	}
	observer = newTestNode(t, "observer", 1, mutate)
	suspect = newTestNode(t, "suspect", 2, mutate)
	if err := observer.Connect(suspect.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		have := false
		runOnLoop(t, observer, func() {
			_, have = observer.monitor.lists[2]
		})
		return have
	}, "observer received the suspect's neighbor list")
	return observer, suspect
}

// TestEvaluationSurvivesWindowRoll is the regression test for the
// stale-window verdict bug: the half-window AfterFunc can fire after
// closeMinute rolls the windows, and the verdict used to recompute the
// observer's own report from the rolled (quiet) window — missing a
// sustained flood. The evaluation must carry the flood window's
// snapshot instead.
func TestEvaluationSurvivesWindowRoll(t *testing.T) {
	observer, _ := policePair(t, nil)
	m := observer.monitor

	// Flood window: the suspect sent 1000 queries this minute.
	runOnLoop(t, observer, func() {
		m.curIn[2] = 1000
		m.closeMinute() // rolls the window, starts the evaluation
		if _, ok := m.pending[2]; !ok {
			t.Error("no evaluation started for the flooding neighbor")
		}
	})
	// The next minute closes (quiet window) BEFORE the verdict fires.
	runOnLoop(t, observer, func() { m.closeMinute() })
	// Verdict, one window-roll late.
	runOnLoop(t, observer, func() { m.finishEvaluation(2) })

	cut := false
	for _, d := range observer.Stats().Disconnects {
		if d.Code == protocol.ByeCodeDDoSSuspect {
			cut = true
			if d.General <= 5 {
				t.Errorf("g = %v at cut time, want > CT", d.General)
			}
		}
	}
	if !cut {
		t.Fatal("verdict after a window roll missed the flooding neighbor")
	}
	waitFor(t, 2*time.Second, func() bool { return len(observer.Neighbors()) == 0 }, "suspect dropped")
}

// TestDuplicateReportsCountOnce is the regression test for report
// double-counting: a buddy-group member that answers on both the direct
// link and a transient dial (or an unsolicited third party repeating
// itself) must contribute one report, not inflate k and skew g(j,t).
func TestDuplicateReportsCountOnce(t *testing.T) {
	observer, _ := policePair(t, nil)
	m := observer.monitor

	runOnLoop(t, observer, func() {
		// Buddy-group view of suspect 2: two members besides us, both
		// unreachable (port 1), so all reports arrive via recordReport.
		m.lists[2] = []protocol.PeerAddr{
			protocol.AddrFromNodeID(1, 0), // the observer itself: skipped
			protocol.AddrFromNodeID(8, 1),
			protocol.AddrFromNodeID(9, 1),
		}
		m.prevIn[2] = 1000
		m.startEvaluation(2, 0)
	})

	nt := protocol.NeighborTraffic{
		SourceIP:  protocol.AddrFromNodeID(8, 0).IP,
		SuspectIP: protocol.AddrFromNodeID(2, 0).IP,
		Outgoing:  5,
		Incoming:  400,
	}
	var reports, missing int
	runOnLoop(t, observer, func() {
		m.recordReport(nt)
		m.recordReport(nt) // same member again over a second channel
		if ev, ok := m.pending[2]; ok {
			reports = len(ev.reports)
			missing = ev.missing
		} else {
			t.Error("evaluation vanished")
		}
	})
	if reports != 1 {
		t.Errorf("reports = %d after duplicate Neighbor_Traffic, want 1", reports)
	}
	if missing != 1 {
		t.Errorf("missing = %d, want 1 (only one distinct member answered)", missing)
	}

	// A distinct member still counts.
	nt2 := nt
	nt2.SourceIP = protocol.AddrFromNodeID(9, 0).IP
	runOnLoop(t, observer, func() {
		m.recordReport(nt2)
		if ev, ok := m.pending[2]; ok {
			reports = len(ev.reports)
			missing = ev.missing
		}
	})
	if reports != 2 || missing != 0 {
		t.Errorf("after second member: reports = %d, missing = %d, want 2, 0", reports, missing)
	}
}

// TestTelemetryConcurrentTransientDials exercises the gnet telemetry
// hooks from every goroutine that records them — transient dial
// failures, handshake failures, inbox high-water, send stalls — while
// another goroutine snapshots the registry. Run under -race by the CI
// target.
func TestTelemetryConcurrentTransientDials(t *testing.T) {
	reg := telemetry.New()
	observer, suspect := policePair(t, reg)
	m := observer.monitor

	// Members advertising dead ports: every evaluation round spawns
	// concurrent transient dials that fail and must count.
	runOnLoop(t, observer, func() {
		m.lists[7] = []protocol.PeerAddr{
			protocol.AddrFromNodeID(8, 1),
			protocol.AddrFromNodeID(9, 1),
			protocol.AddrFromNodeID(10, 1),
			protocol.AddrFromNodeID(11, 1),
		}
	})
	const rounds = 5
	for i := 0; i < rounds; i++ {
		runOnLoop(t, observer, func() {
			m.prevIn[7] = 1000
			m.startEvaluation(7, 0)
		})
	}

	// Concurrent wire traffic driving inbox/send counters.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				suspect.SendRawQuery(fmt.Sprintf("load-%d-%d", w, i))
			}
		}(w)
	}
	// A failed outbound handshake must count too.
	if err := observer.Connect("127.0.0.1:1"); err == nil {
		t.Error("connect to a dead port succeeded")
	}
	wg.Wait()

	waitFor(t, 5*time.Second, func() bool {
		snap := reg.Snapshot()
		vals := map[string]uint64{}
		for _, c := range snap.Counters {
			vals[c.Name] = c.Value
		}
		return vals["gnet.transient_dial_errors"] >= rounds*4 &&
			vals["gnet.handshake_failures"] >= 1
	}, "telemetry counters converged")

	snap := reg.Snapshot()
	var hwm int64
	for _, g := range snap.Gauges {
		if g.Name == "gnet.inbox_high_water" {
			hwm = g.Value
		}
	}
	if hwm < 1 {
		t.Errorf("inbox high-water mark = %d, want >= 1 under load", hwm)
	}
}
