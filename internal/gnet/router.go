package gnet

import (
	"fmt"
	"time"

	"ddpolice/internal/protocol"
	"ddpolice/internal/trace"
)

// runLoop owns all node state: it processes inbound messages, control
// closures, token refills and monitor windows in a single goroutine
// (share memory by communicating).
func (n *Node) runLoop() {
	defer n.wg.Done()
	defer close(n.closed)
	defer func() {
		for _, pc := range n.peers {
			pc.close()
		}
	}()

	refill := time.NewTicker(100 * time.Millisecond)
	defer refill.Stop()
	var minute *time.Ticker
	var minuteCh <-chan time.Time
	if n.monitor != nil {
		minute = time.NewTicker(n.cfg.MinuteLength)
		minuteCh = minute.C
		defer minute.Stop()
	}
	// The overload plane rolls its breaker/detector windows on its own
	// ticker so it works with or without the monitor. ovlCh is nil when
	// the plane is disabled, as is inboxCtl — those cases then never
	// fire and the loop is exactly the historical one.
	var ovlCh <-chan time.Time
	if n.ovl != nil {
		ovlTick := time.NewTicker(n.cfg.MinuteLength)
		ovlCh = ovlTick.C
		defer ovlTick.Stop()
	}
	last := time.Now()
	for {
		select {
		case <-n.done:
			return
		case fn := <-n.ctl:
			fn()
		case now := <-refill.C:
			if n.ovl != nil {
				n.ovl.cproc.Tick(now.Sub(last).Seconds())
			} else {
				n.proc.Tick(now.Sub(last).Seconds())
			}
			last = now
		case <-minuteCh:
			n.monitor.closeMinute()
		case <-ovlCh:
			n.closeOverloadWindow()
		case in := <-n.inboxCtl:
			n.handle(in)
		case in := <-n.inbox:
			// Strict priority inbound too: drain any control messages
			// that arrived while this query was queued.
			n.drainCtlInbox()
			n.handle(in)
		}
	}
}

// drainCtlInbox handles every currently-queued control message
// (run-loop goroutine only; no-op when the overload plane is off).
func (n *Node) drainCtlInbox() {
	if n.inboxCtl == nil {
		return
	}
	for {
		select {
		case in := <-n.inboxCtl:
			n.handle(in)
		default:
			return
		}
	}
}

// handle dispatches one inbound message (run-loop goroutine only).
// With the overload plane enabled, processing-heavy control messages
// (Ping, neighbor lists, NT) draw from the protected control reserve —
// which borrows idle query tokens and so only ever sheds when the node
// is completely dry. Bye is exempt: it is terminal and dropping it
// would leak the link's bookkeeping.
func (n *Node) handle(in inboundMsg) {
	switch body := in.msg.Body.(type) {
	case protocol.Query:
		n.handleQuery(in.from, in.msg.Header, body)
	case protocol.QueryHit:
		n.handleQueryHit(in.from, in.msg.Header, body)
	case protocol.Ping:
		if !n.admitControl() {
			return
		}
		pong := protocol.Pong{Addr: protocol.AddrFromNodeID(0, 0), FileCount: uint32(len(n.shared))}
		in.from.send(protocol.Encode(nil, in.msg.Header.GUID, 1, 0, pong))
	case protocol.Pong:
		// Liveness only.
	case protocol.Bye:
		n.dropPeer(in.from, dropOrderly)
	case protocol.NeighborList:
		if n.monitor != nil {
			if !n.admitControl() {
				return
			}
			n.monitor.onNeighborList(in.from.id, body)
		}
	case protocol.NeighborTraffic:
		if n.monitor != nil {
			if !n.admitControl() {
				return
			}
			n.monitor.onNeighborTraffic(in.from, body)
		}
	}
}

// admitControl meters one inbound control message against the
// protected reserve; always true when the overload plane is off.
func (n *Node) admitControl() bool {
	if n.ovl == nil {
		return true
	}
	if n.ovl.cproc.TryProcessControl() {
		return true
	}
	n.shedControl()
	return false
}

// handleQuery implements the §2.3 peer behaviour: count the arrival,
// dedup by GUID, consume a processing token ("first look up its local
// sharing storage index, and then forward the query"), answer if the
// local index matches, and rebroadcast to every other neighbor.
func (n *Node) handleQuery(from *peerConn, h protocol.Header, q protocol.Query) {
	n.statsMu.Lock()
	n.stats.QueriesReceived++
	n.statsMu.Unlock()
	if _, dup := n.seen[h.GUID]; dup {
		n.statsMu.Lock()
		n.stats.DupDropped++
		n.statsMu.Unlock()
		if n.monitor != nil {
			// The sender evidently had this query already: if we had
			// counted a forward of it to them, cancel that count so the
			// monitors implement the paper's no-duplication accounting
			// (duplicate copies exist on the wire but are never counted
			// by Out_query/In_query; Fig 2).
			if fwd, ok := n.forwarded[h.GUID]; ok {
				for i, id := range fwd {
					if id == from.id {
						n.monitor.uncountOut(id)
						n.forwarded[h.GUID] = append(fwd[:i], fwd[i+1:]...)
						break
					}
				}
			}
		}
		return
	}
	if n.monitor != nil {
		n.monitor.countIn(from.id) // first copy only (no-dup accounting)
	}
	n.rememberGUID(h.GUID)
	n.guidRoute[h.GUID] = from

	// Quarantine circuit breaker: the offer is counted (above — the
	// monitor and the breaker both judge offered load), but a
	// quarantined or probing peer only gets its per-window trickle.
	if n.ovl != nil && !n.ovl.admitQuery(from.id) {
		n.tel.quarantineDrops.Inc()
		n.ovl.winShed.Add(1)
		n.statsMu.Lock()
		n.stats.QuarantineDropped++
		n.statsMu.Unlock()
		n.traceSpan(q.TraceID, trace.Span{
			Kind: trace.KindShed, Peer: int64(from.id),
			Depth: int(h.Hops) + 1, Detail: "quarantine",
		})
		return
	}

	if !n.tryProcessQuery() {
		n.statsMu.Lock()
		n.stats.QueriesDropped++
		n.statsMu.Unlock()
		// A capacity drop is the saturation signal itself: it feeds the
		// degraded-mode detector alongside the overload plane's sheds.
		n.recordShed()
		n.traceSpan(q.TraceID, trace.Span{
			Kind: trace.KindCongestion, Peer: int64(from.id),
			Depth: int(h.Hops) + 1,
		})
		return
	}
	if n.ovl != nil {
		n.ovl.winHandled.Add(1)
	}
	n.statsMu.Lock()
	n.stats.QueriesProcessed++
	n.statsMu.Unlock()
	n.traceSpan(q.TraceID, trace.Span{
		Kind: trace.KindHop, Peer: int64(from.id), Depth: int(h.Hops) + 1,
	})

	if n.shared[q.Keywords] {
		hit := protocol.QueryHit{HitCount: 1, QueryGUID: h.GUID}
		if from.send(protocol.Encode(nil, protocol.NewGUID(n.src), n.cfg.TTL, 0, hit)) {
			n.statsMu.Lock()
			n.stats.HitsSent++
			n.statsMu.Unlock()
			n.traceSpan(q.TraceID, trace.Span{
				Kind: trace.KindDelivery, Peer: int64(from.id),
				Depth: int(h.Hops) + 1,
			})
		}
	}
	if h.TTL <= 1 {
		return
	}
	wire := protocol.Encode(nil, h.GUID, h.TTL-1, h.Hops+1, q)
	for id, pc := range n.peers {
		if pc == from {
			continue
		}
		if pc.send(wire) {
			n.statsMu.Lock()
			n.stats.QueriesForwarded++
			n.statsMu.Unlock()
			if n.monitor != nil {
				n.monitor.countOut(id)
				n.forwarded[h.GUID] = append(n.forwarded[h.GUID], id)
			}
		}
	}
}

// tracedQuery builds the Query body for a locally issued search. With
// a tracer attached and the GUID-derived trace ID head-sampled in, the
// ID rides the wire extension (propagated by every forwarding hop) and
// the origin records the root query_issue span; otherwise the body is
// the legacy untraced encoding, byte for byte.
func (n *Node) tracedQuery(guid protocol.GUID, keywords string) protocol.Query {
	q := protocol.Query{Keywords: keywords}
	if n.cfg.Tracer == nil {
		return q
	}
	tid := guidTraceID(guid)
	if tid == 0 || !n.cfg.Tracer.Sampled(tid) {
		return q
	}
	q.TraceID = tid
	n.traceSpan(tid, trace.Span{Kind: trace.KindQueryIssue})
	return q
}

// tryProcessQuery draws one query-processing token: the class-split
// bulk budget when the overload plane is on, the historical single
// bucket otherwise.
func (n *Node) tryProcessQuery() bool {
	if n.ovl != nil {
		return n.ovl.cproc.TryProcessQuery()
	}
	return n.proc.TryProcess()
}

// handleQueryHit routes a hit backwards along the query's reverse path;
// hits addressed to one of our own queries complete the local waiter.
func (n *Node) handleQueryHit(from *peerConn, h protocol.Header, qh protocol.QueryHit) {
	n.statsMu.Lock()
	n.stats.HitsReceived++
	n.statsMu.Unlock()
	if ch, mine := n.hits[qh.QueryGUID]; mine {
		select {
		case ch <- qh:
		default:
		}
		return
	}
	if back, ok := n.guidRoute[qh.QueryGUID]; ok && back != from && h.TTL > 1 {
		back.send(protocol.Encode(nil, h.GUID, h.TTL-1, h.Hops+1, qh))
	}
}

// rememberGUID records a GUID in the dedup set, bounding its size.
func (n *Node) rememberGUID(g protocol.GUID) {
	if len(n.seen) > 1<<17 {
		// Reset wholesale: a coarse but allocation-friendly LRU stand-in
		// (GUID reuse across resets is astronomically unlikely).
		n.seen = make(map[protocol.GUID]struct{})
		n.guidRoute = make(map[protocol.GUID]*peerConn)
		n.forwarded = make(map[protocol.GUID][]int32)
	}
	n.seen[g] = struct{}{}
}

// IssueQuery floods a query from this node and returns a channel that
// yields the first QueryHit (buffered; never blocks the router).
func (n *Node) IssueQuery(keywords string) (<-chan protocol.QueryHit, error) {
	res := make(chan protocol.QueryHit, 1)
	errCh := make(chan error, 1)
	select {
	case n.ctl <- func() {
		guid := protocol.NewGUID(n.src)
		n.rememberGUID(guid)
		n.hits[guid] = res
		wire := protocol.Encode(nil, guid, n.cfg.TTL, 0, n.tracedQuery(guid, keywords))
		sent := 0
		for id, pc := range n.peers {
			if pc.send(wire) {
				sent++
				if n.monitor != nil {
					n.monitor.countOut(id)
				}
			}
		}
		if sent == 0 {
			errCh <- errNoNeighbors
			return
		}
		errCh <- nil
	}:
	case <-n.closed:
		return nil, errClosed
	}
	select {
	case err := <-errCh:
		if err != nil {
			return nil, err
		}
		return res, nil
	case <-n.closed:
		return nil, errClosed
	}
}

// SendRawQuery floods a pre-addressed query at full rate without
// waiting for hits; the DDoS-agent prototype uses it to replay traces.
func (n *Node) SendRawQuery(keywords string) {
	select {
	case n.ctl <- func() {
		guid := protocol.NewGUID(n.src)
		n.rememberGUID(guid)
		wire := protocol.Encode(nil, guid, n.cfg.TTL, 0, n.tracedQuery(guid, keywords))
		for id, pc := range n.peers {
			if pc.send(wire) {
				if n.monitor != nil {
					n.monitor.countOut(id)
				}
			}
		}
	}:
	case <-n.closed:
	}
}

var (
	errNoNeighbors = errorString("gnet: no neighbors")
	errClosed      = errorString("gnet: node closed")
)

type errorString string

func (e errorString) Error() string { return string(e) }

// Disconnect sends an orderly Bye to neighbor id and drops the link.
func (n *Node) Disconnect(id int32, code uint16, reason string) error {
	errCh := make(chan error, 1)
	select {
	case n.ctl <- func() {
		pc, ok := n.peers[id]
		if !ok {
			errCh <- fmt.Errorf("gnet: no neighbor %d", id)
			return
		}
		pc.send(protocol.Encode(nil, protocol.NewGUID(n.src), 1, 0,
			protocol.Bye{Code: code, Reason: reason}))
		n.dropPeer(pc, dropOrderly)
		errCh <- nil
	}:
	case <-n.closed:
		return errClosed
	}
	select {
	case err := <-errCh:
		return err
	case <-n.closed:
		return errClosed
	}
}
