package gnet

import (
	"testing"
	"time"

	"ddpolice/internal/journal"
	"ddpolice/internal/police"
	"ddpolice/internal/telemetry"
)

// policeTriangle builds observer(1), suspect(2), buddy(3) with
// observer—suspect, buddy—suspect and observer—buddy links, so the
// suspect's advertised neighbor list gives the observer a real buddy
// member to collect a Neighbor_Traffic report from.
func policeTriangle(t *testing.T, jr *journal.Journal, reg *telemetry.Registry) (observer, suspect, buddy *Node) {
	t.Helper()
	pcfg := police.DefaultConfig()
	pcfg.Q0 = 10
	pcfg.WarnThreshold = 50
	pcfg.CutThreshold = 5
	mutate := func(cfg *Config) {
		cfg.Police = &pcfg
		cfg.MinuteLength = time.Hour // windows roll by hand
		cfg.Journal = jr
		cfg.Telemetry = reg
	}
	observer = newTestNode(t, "observer", 1, mutate)
	suspect = newTestNode(t, "suspect", 2, mutate)
	buddy = newTestNode(t, "buddy", 3, mutate)
	for _, dial := range []struct{ from, to *Node }{
		{observer, suspect}, {buddy, suspect}, {observer, buddy},
	} {
		if err := dial.from.Connect(dial.to.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool {
		sawBuddy := false
		runOnLoop(t, observer, func() {
			for _, m := range observer.monitor.lists[2] {
				if m.NodeID() == 3 {
					sawBuddy = true
				}
			}
		})
		return sawBuddy
	}, "observer learned the suspect's buddy group")
	return observer, suspect, buddy
}

// TestJournalWarningReportCutOrdering drives a full detection round
// over real TCP and asserts the journal shows the lifecycle in order:
// warning_crossed → nt_request → nt_report (from the buddy) →
// indicator → cut, followed by the cut-provenance peer_drop.
func TestJournalWarningReportCutOrdering(t *testing.T) {
	jr := journal.New(1024)
	reg := telemetry.New()
	observer, _, buddy := policeTriangle(t, jr, reg)

	// The suspect floods: 1000 inbound queries in the observer's
	// current window, then the window closes.
	runOnLoop(t, observer, func() {
		observer.monitor.curIn[2] = 1000
		observer.monitor.closeMinute()
	})
	// The buddy's report travels over the direct observer—buddy link.
	waitFor(t, 2*time.Second, func() bool {
		got := false
		runOnLoop(t, observer, func() {
			if ev, ok := observer.monitor.pending[2]; ok {
				got = len(ev.reports) == 1
			}
		})
		return got
	}, "buddy report arrived")
	runOnLoop(t, observer, func() { observer.monitor.finishEvaluation(2) })
	waitFor(t, 2*time.Second, func() bool { return len(observer.Neighbors()) == 1 }, "suspect cut")

	seq := map[string]uint64{}
	for _, e := range jr.Events() {
		if e.Node != 1 || (e.Peer != 2 && e.Type != journal.TypeNTReport) {
			continue
		}
		if _, ok := seq[e.Type]; !ok {
			seq[e.Type] = e.Seq
		}
	}
	order := []string{
		journal.TypeWarning, journal.TypeNTRequest, journal.TypeNTReport,
		journal.TypeIndicator, journal.TypeCut, journal.TypePeerDrop,
	}
	for i, typ := range order {
		if _, ok := seq[typ]; !ok {
			t.Fatalf("journal missing %q (have %v)", typ, seq)
		}
		if i > 0 && seq[typ] <= seq[order[i-1]] {
			t.Fatalf("%q (seq %d) not after %q (seq %d)", typ, seq[typ], order[i-1], seq[order[i-1]])
		}
	}
	// The report must be attributed to the buddy, the NT latency
	// histogram must have seen it, and the round used no timeout.
	for _, e := range jr.Events() {
		if e.Node == 1 && e.Type == journal.TypeNTReport && e.Member != 3 {
			t.Fatalf("nt_report member = %d, want 3", e.Member)
		}
	}
	if got := reg.Snapshot(); len(got.Histograms) == 0 || got.Histograms[0].Count == 0 {
		t.Fatal("gnet.nt_report_latency_ms recorded nothing")
	}
	if reg.Counter("gnet.evaluations_timeout_zero").Load() != 0 {
		t.Fatal("full quorum round counted a timeout-as-zero verdict")
	}
	_ = buddy
}

// TestNeighborTrafficNoEchoStorm is the regression test for the NT
// echo loop: requests and replies share one wire format, and answering
// a reply used to bounce Neighbor_Traffic between two monitors
// indefinitely. After an evaluation settles, NT traffic must stop.
func TestNeighborTrafficNoEchoStorm(t *testing.T) {
	jr := journal.New(4096)
	observer, _, buddy := policeTriangle(t, jr, nil)

	runOnLoop(t, observer, func() {
		observer.monitor.curIn[2] = 1000
		observer.monitor.closeMinute()
	})
	waitFor(t, 2*time.Second, func() bool {
		got := false
		runOnLoop(t, observer, func() {
			if ev, ok := observer.monitor.pending[2]; ok {
				got = len(ev.reports) == 1
			}
		})
		return got
	}, "buddy report arrived")
	runOnLoop(t, observer, func() { observer.monitor.finishEvaluation(2) })

	// With the evaluation settled, the observer↔buddy link must go
	// quiet; a storm shows up as ever-growing byte counts.
	settle := func() uint64 { return buddy.Stats().BytesIn }
	before := settle()
	time.Sleep(300 * time.Millisecond)
	if after := settle(); after != before {
		t.Fatalf("NT traffic still flowing after the round settled: %d -> %d bytes", before, after)
	}
}
