package gnet

// Benchmark hooks for cmd/ddbench: a Neighbor_Traffic evaluation round
// is normally triggered by closeMinute observing a hot window, which is
// far too slow (and too noisy) to benchmark directly. These hooks let
// the harness inject a synthetic buddy-group view and drive one full
// start → collect-reports → verdict round on the real TCP links and the
// real run loop, without waiting out monitoring windows.
//
// They are exported only for benchmarking; production code paths never
// call them.

import (
	"errors"
	"fmt"
	"time"

	"ddpolice/internal/protocol"
)

// errNodeClosed is returned when a bench hook races node shutdown.
var errNodeClosed = errors.New("gnet: node closed")

// runOnCtl executes fn on the node's run loop and waits for it to
// finish, mirroring what message handlers do internally.
func (n *Node) runOnCtl(fn func()) error {
	done := make(chan struct{})
	select {
	case n.ctl <- func() { fn(); close(done) }:
	case <-n.closed:
		return errNodeClosed
	case <-time.After(5 * time.Second):
		return errors.New("gnet: run loop stalled")
	}
	select {
	case <-done:
		return nil
	case <-n.closed:
		return errNodeClosed
	case <-time.After(5 * time.Second):
		return errors.New("gnet: run loop stalled")
	}
}

// BenchPrimeSuspect installs a synthetic buddy-group view for suspect
// on this node's monitor: the member list (as synthetic 10/8 addresses,
// so members that are direct peers are reached over the existing
// connections) plus last-window traffic counters for the suspect. Keep
// in/out modest relative to Q0 so the verdict does not cut the suspect
// and the topology survives repeated rounds.
func (n *Node) BenchPrimeSuspect(suspect int32, memberIDs []int32, in, out float64) error {
	if n.monitor == nil {
		return errors.New("gnet: police monitor not enabled")
	}
	members := make([]protocol.PeerAddr, len(memberIDs))
	for i, id := range memberIDs {
		members[i] = protocol.AddrFromNodeID(id, 0)
	}
	return n.runOnCtl(func() {
		m := n.monitor
		m.lists[suspect] = members
		m.prevIn[suspect] = in
		m.prevOut[suspect] = out
	})
}

// BenchNTRound drives one full Neighbor_Traffic evaluation round for a
// previously primed suspect: startEvaluation on the run loop, wait for
// every asked member's report to arrive over TCP, then the verdict.
// Returns the number of member reports collected.
func (n *Node) BenchNTRound(suspect int32, timeout time.Duration) (int, error) {
	if n.monitor == nil {
		return 0, errors.New("gnet: police monitor not enabled")
	}
	m := n.monitor
	if err := n.runOnCtl(func() { m.startEvaluation(suspect, 0) }); err != nil {
		return 0, err
	}
	deadline := time.Now().Add(timeout)
	for {
		var missing, got int
		pending := false
		if err := n.runOnCtl(func() {
			if ev, ok := m.pending[suspect]; ok {
				pending = true
				missing = ev.missing
				got = len(ev.reports)
			}
		}); err != nil {
			return 0, err
		}
		if !pending {
			// The armVerdict timer already fired and judged the round.
			return got, nil
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			return got, fmt.Errorf("gnet: NT round timed out with %d reports missing", missing)
		}
		time.Sleep(2 * time.Millisecond)
	}
	var got int
	err := n.runOnCtl(func() {
		if ev, ok := m.pending[suspect]; ok {
			got = len(ev.reports)
		}
		m.finishEvaluation(suspect)
	})
	return got, err
}
