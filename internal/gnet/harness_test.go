package gnet

import (
	"fmt"
	"testing"
	"time"

	"ddpolice/internal/police"
	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
)

func TestHarnessRingOverlay(t *testing.T) {
	g, err := topology.RingLattice(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	waitFor(t, 3*time.Second, func() bool {
		for i := 0; i < h.Len(); i++ {
			if len(h.Node(i).Neighbors()) != 2 {
				return false
			}
		}
		return true
	}, "ring fully connected")
}

func TestHarnessMultiHopSearch(t *testing.T) {
	// A 12-node random overlay over real TCP: a query from node 0 must
	// find the single sharer several hops away.
	g, err := topology.BarabasiAlbert(rng.New(3), 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	const sharer = 11
	h, err := NewHarness(g, func(i int, cfg *Config) {
		if i == sharer {
			cfg.SharedObjects = []string{"rare object"}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	waitFor(t, 3*time.Second, func() bool {
		for i := 0; i < h.Len(); i++ {
			if len(h.Node(i).Neighbors()) != g.Degree(topology.NodeID(i)) {
				return false
			}
		}
		return true
	}, "overlay fully connected")

	hits, err := h.Node(0).IssueQuery("rare object")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case hit := <-hits:
		if hit.HitCount != 1 {
			t.Fatalf("hit count = %d", hit.HitCount)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("multi-hop query found nothing")
	}
	// The flood must have fanned out: total received across the overlay
	// exceeds the issuer's degree.
	var received uint64
	for i := 0; i < h.Len(); i++ {
		received += h.Node(i).Stats().QueriesReceived
	}
	if received < uint64(g.NumEdges()) {
		t.Fatalf("flood reached too little of the overlay: %d receptions", received)
	}
}

func TestHarnessDuplicateSuppression(t *testing.T) {
	// Triangle: exactly one duplicate pair per query.
	b := topology.NewBuilder(3)
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	h, err := NewHarness(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	waitFor(t, 3*time.Second, func() bool {
		return len(h.Node(0).Neighbors()) == 2 &&
			len(h.Node(1).Neighbors()) == 2 && len(h.Node(2).Neighbors()) == 2
	}, "triangle connected")
	h.Node(0).SendRawQuery("x")
	waitFor(t, 3*time.Second, func() bool {
		return h.Node(1).Stats().DupDropped+h.Node(2).Stats().DupDropped == 2
	}, "each far endpoint dropped one duplicate")
}

// TestLiveDefenseUnderWorkload is the end-to-end live validation: an
// 8-node TCP overlay serves a steady stream of good queries while an
// agent floods; DD-POLICE must cut the agent and the good queries must
// keep being answered afterwards.
func TestLiveDefenseUnderWorkload(t *testing.T) {
	g, err := topology.BarabasiAlbert(rng.New(11), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := police.DefaultConfig()
	pcfg.Q0 = 10
	pcfg.WarnThreshold = 40
	const agentIdx = 7
	h, err := NewHarness(g, func(i int, cfg *Config) {
		cfg.Police = &pcfg
		cfg.MinuteLength = 400 * time.Millisecond
		cfg.SharedObjects = []string{"needle"}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	waitFor(t, 3*time.Second, func() bool {
		for i := 0; i < h.Len(); i++ {
			if len(h.Node(i).Neighbors()) != g.Degree(topology.NodeID(i)) {
				return false
			}
		}
		return true
	}, "overlay connected")

	// Attack: node 7 floods distinct bogus queries.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(3 * time.Millisecond)
		defer tick.Stop()
		i := 0
		for {
			select {
			case <-tick.C:
				h.Node(agentIdx).SendRawQuery(fmt.Sprintf("junk-%d", i))
				i++
			case <-stop:
				return
			}
		}
	}()

	// Wait until some node cuts the agent.
	agentID := int32(agentIdx + 1)
	waitFor(t, 15*time.Second, func() bool {
		for i := 0; i < h.Len(); i++ {
			if i == agentIdx {
				continue
			}
			for _, d := range h.Node(i).Stats().Disconnects {
				if d.Code == 451 {
					return true
				}
			}
		}
		return false
	}, "an observer cut the agent")

	// Good queries still succeed from a peer far from the agent.
	answered := 0
	for q := 0; q < 5; q++ {
		hits, err := h.Node(0).IssueQuery("needle")
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-hits:
			answered++
		case <-time.After(2 * time.Second):
		}
	}
	if answered == 0 {
		t.Fatal("no good query answered after the defense acted")
	}
	// No good peer should have lost ALL its links.
	for i := 0; i < h.Len()-1; i++ {
		if len(h.Node(i).Neighbors()) == 0 && g.Degree(topology.NodeID(i)) > 0 {
			t.Errorf("good node %d fully isolated", i)
		}
	}
	_ = agentID
}
