package gnet

import (
	"fmt"

	"ddpolice/internal/topology"
)

// Harness spins up a set of live nodes wired into a given topology on
// localhost — used by tests and demos to run real-TCP overlays without
// hand-managing addresses.
type Harness struct {
	nodes []*Node
}

// NewHarness starts one node per topology vertex (node i gets overlay
// id i+1) and dials every edge. mutate, if non-nil, customizes each
// node's config before start.
func NewHarness(g *topology.Graph, mutate func(i int, cfg *Config)) (*Harness, error) {
	h := &Harness{}
	for i := 0; i < g.NumNodes(); i++ {
		cfg := DefaultConfig(fmt.Sprintf("n%d", i))
		cfg.NodeID = int32(i + 1)
		cfg.Seed = uint64(i + 1)
		if mutate != nil {
			mutate(i, &cfg)
		}
		n, err := NewNode(cfg)
		if err != nil {
			h.Close()
			return nil, err
		}
		h.nodes = append(h.nodes, n)
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(topology.NodeID(u)) {
			if int(v) < u {
				continue // dial each undirected edge once
			}
			if err := h.nodes[u].Connect(h.nodes[v].Addr()); err != nil {
				h.Close()
				return nil, fmt.Errorf("edge %d-%d: %w", u, v, err)
			}
		}
	}
	return h, nil
}

// Node returns the i-th node (topology vertex i).
func (h *Harness) Node(i int) *Node { return h.nodes[i] }

// Len returns the number of nodes.
func (h *Harness) Len() int { return len(h.nodes) }

// Close shuts all nodes down.
func (h *Harness) Close() {
	for _, n := range h.nodes {
		if n != nil {
			n.Close()
		}
	}
}
