package gnet

import (
	"testing"
	"time"

	"ddpolice/internal/police"
	"ddpolice/internal/topology"
)

// TestBenchNTRoundCollectsReports exercises the ddbench hook end to
// end: a star around the observer, a primed buddy-group view, and one
// driven Neighbor_Traffic round that must collect a report from every
// member over the live TCP links without cutting the suspect.
func TestBenchNTRoundCollectsReports(t *testing.T) {
	const members = 4
	b := topology.NewBuilder(2 + members)
	b.AddEdge(0, 1) // observer - suspect
	for i := 0; i < members; i++ {
		b.AddEdge(0, topology.NodeID(2+i)) // observer - member
	}
	pcfg := police.DefaultConfig()
	h, err := NewHarness(b.Build(), func(i int, cfg *Config) {
		cfg.Police = &pcfg
		cfg.MinuteLength = time.Hour // rounds are driven by hand
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	observer := h.Node(0)
	const suspect = int32(2) // vertex 1
	memberIDs := make([]int32, members)
	for i := range memberIDs {
		memberIDs[i] = int32(3 + i) // vertices 2..members+1
	}
	if err := observer.BenchPrimeSuspect(suspect, memberIDs, 20, 20); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		got, err := observer.BenchNTRound(suspect, 2*time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got != members {
			t.Fatalf("round %d: collected %d reports, want %d", round, got, members)
		}
	}
	// The verdict must not have cut the suspect: the star survives.
	if nb := observer.Neighbors(); len(nb) != members+1 {
		t.Fatalf("observer has %d neighbors after rounds, want %d", len(nb), members+1)
	}
}
