package gnet

import (
	"testing"
	"time"

	"ddpolice/internal/capacity"
	"ddpolice/internal/police"
)

func newTestNode(t *testing.T, name string, id int32, mutate func(*Config)) *Node {
	t.Helper()
	cfg := DefaultConfig(name)
	cfg.NodeID = id
	cfg.Seed = uint64(id) + 1
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("timeout: " + msg)
}

func TestHandshakeAndNeighbors(t *testing.T) {
	a := newTestNode(t, "a", 1, nil)
	b := newTestNode(t, "b", 2, nil)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(a.Neighbors()) == 1 }, "a sees b")
	waitFor(t, 2*time.Second, func() bool { return len(b.Neighbors()) == 1 }, "b sees a")
	if got := a.Neighbors()[0]; got != 2 {
		t.Fatalf("a's neighbor id = %d", got)
	}
	if got := b.Neighbors()[0]; got != 1 {
		t.Fatalf("b's neighbor id = %d", got)
	}
}

func TestQueryFloodAndHit(t *testing.T) {
	// a - b - c, with c sharing the object: a's query must traverse two
	// hops and the hit must route back along the reverse path.
	a := newTestNode(t, "a", 1, nil)
	b := newTestNode(t, "b", 2, nil)
	c := newTestNode(t, "c", 3, func(cfg *Config) {
		cfg.SharedObjects = []string{"ubuntu iso"}
	})
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(c.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(b.Neighbors()) == 2 }, "b fully connected")

	hits, err := a.IssueQuery("ubuntu iso")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case hit := <-hits:
		if hit.HitCount != 1 {
			t.Fatalf("hit count = %d", hit.HitCount)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no QueryHit within deadline")
	}
	if got := c.Stats().HitsSent; got != 1 {
		t.Fatalf("c sent %d hits", got)
	}
	if got := b.Stats().QueriesForwarded; got == 0 {
		t.Fatal("b forwarded nothing")
	}
}

func TestQueryMissesUnsharedObject(t *testing.T) {
	a := newTestNode(t, "a", 1, nil)
	b := newTestNode(t, "b", 2, func(cfg *Config) {
		cfg.SharedObjects = []string{"something else"}
	})
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(a.Neighbors()) == 1 }, "connected")
	hits, err := a.IssueQuery("ubuntu iso")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-hits:
		t.Fatal("hit for unshared object")
	case <-time.After(300 * time.Millisecond):
	}
}

func TestIssueQueryWithoutNeighbors(t *testing.T) {
	a := newTestNode(t, "a", 1, nil)
	if _, err := a.IssueQuery("x"); err == nil {
		t.Fatal("expected error with no neighbors")
	}
}

func TestTTLBoundsPropagation(t *testing.T) {
	// Line a-b-c-d with TTL 2 from a: c receives (ttl 1) but must not
	// forward to d.
	a := newTestNode(t, "a", 1, func(cfg *Config) { cfg.TTL = 2 })
	b := newTestNode(t, "b", 2, nil)
	c := newTestNode(t, "c", 3, nil)
	d := newTestNode(t, "d", 4, func(cfg *Config) {
		cfg.SharedObjects = []string{"prize"}
	})
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(c.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(d.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return len(b.Neighbors()) == 2 && len(c.Neighbors()) == 2
	}, "line connected")
	hits, err := a.IssueQuery("prize")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-hits:
		t.Fatal("hit beyond TTL")
	case <-time.After(400 * time.Millisecond):
	}
	if got := d.Stats().QueriesReceived; got != 0 {
		t.Fatalf("d received %d queries despite TTL 2", got)
	}
}

// TestFig5PipelineSaturation reproduces the paper's A -> B -> C testbed
// at reduced rate: when A offers more than B's capacity, B processes at
// capacity and drops the excess (Figures 5 and 6).
func TestFig5PipelineSaturation(t *testing.T) {
	const capPerMin = 1200 // 20/s processing capacity at B
	a := newTestNode(t, "A", 1, nil)
	b := newTestNode(t, "B", 2, func(cfg *Config) {
		cfg.CapacityPerMin = capPerMin
		cfg.Burst = 5
	})
	c := newTestNode(t, "C", 3, nil)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(c.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(b.Neighbors()) == 2 }, "pipeline connected")

	// Offer ~3x B's capacity for two seconds.
	stop := time.After(2 * time.Second)
	ticker := time.NewTicker(time.Second / 60) // 60/s offered vs 20/s capacity
	defer ticker.Stop()
	offered := 0
offerLoop:
	for {
		select {
		case <-ticker.C:
			a.SendRawQuery("bogus query")
			offered++
		case <-stop:
			break offerLoop
		}
	}
	waitFor(t, 3*time.Second, func() bool {
		st := b.Stats()
		return st.QueriesProcessed+st.QueriesDropped >= uint64(offered)
	}, "B accounted for all offered queries")

	st := b.Stats()
	if st.QueriesDropped == 0 {
		t.Fatalf("B dropped nothing at 3x capacity (processed %d of %d)", st.QueriesProcessed, offered)
	}
	dropRate := float64(st.QueriesDropped) / float64(st.QueriesProcessed+st.QueriesDropped)
	if dropRate < 0.4 || dropRate > 0.9 {
		t.Errorf("drop rate = %.2f, want roughly 1 - capacity/offered (~0.67)", dropRate)
	}
	// C receives what B processed and forwarded, not what A offered.
	if got := c.Stats().QueriesReceived; got > st.QueriesProcessed {
		t.Errorf("C received %d, more than B processed (%d)", got, st.QueriesProcessed)
	}
}

// TestLiveDDPoliceDetection: a star of good peers around a hub; an
// attacker node floods bogus queries; the hub's DD-POLICE monitor must
// disconnect it within a few (shortened) minutes.
func TestLiveDDPoliceDetection(t *testing.T) {
	pcfg := police.DefaultConfig()
	pcfg.WarnThreshold = 50 // scaled down with the attack rate
	pcfg.CutThreshold = 5
	pcfg.Q0 = 10
	short := 400 * time.Millisecond
	withPolice := func(cfg *Config) {
		cfg.Police = &pcfg
		cfg.MinuteLength = short
		cfg.CapacityPerMin = capacity.TestbedSaturationPerMin
	}
	hub := newTestNode(t, "hub", 1, withPolice)
	good1 := newTestNode(t, "good1", 2, withPolice)
	good2 := newTestNode(t, "good2", 3, withPolice)
	// The agent is a stock client with an added flooding thread (§2.3):
	// it participates in the list exchange like everyone else.
	attacker := newTestNode(t, "attacker", 66, withPolice)
	for _, n := range []*Node{good1, good2, attacker} {
		if err := n.Connect(hub.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return len(hub.Neighbors()) == 3 }, "star connected")

	// The attacker floods distinct bogus queries far above q0.
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		i := 0
		for {
			select {
			case <-ticker.C:
				attacker.SendRawQuery("bogus " + time.Now().String())
				i++
			case <-done:
				return
			}
		}
	}()
	defer close(done)

	waitFor(t, 15*time.Second, func() bool {
		for _, d := range hub.Stats().Disconnects {
			if d.Code == 451 {
				return true
			}
		}
		return false
	}, "hub disconnected the attacker")
	// The attacker must be gone from the hub's neighbor set.
	waitFor(t, 2*time.Second, func() bool {
		for _, id := range hub.Neighbors() {
			if id == 66 {
				return false
			}
		}
		return true
	}, "attacker removed")
	// Good peers must still be connected.
	for _, id := range []int32{2, 3} {
		found := false
		for _, got := range hub.Neighbors() {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Errorf("good peer %d was disconnected", id)
		}
	}
}

func TestNodeConfigValidation(t *testing.T) {
	cfg := DefaultConfig("x")
	cfg.CapacityPerMin = 0
	if _, err := NewNode(cfg); err == nil {
		t.Fatal("zero capacity accepted")
	}
	cfg = DefaultConfig("x")
	bad := police.DefaultConfig()
	bad.Q0 = 0
	cfg.Police = &bad
	if _, err := NewNode(cfg); err == nil {
		t.Fatal("invalid police config accepted")
	}
}

func TestCleanShutdownUnderTraffic(t *testing.T) {
	a := newTestNode(t, "a", 1, nil)
	b := newTestNode(t, "b", 2, nil)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(a.Neighbors()) == 1 }, "connected")
	for i := 0; i < 100; i++ {
		a.SendRawQuery("load")
	}
	// Cleanup (t.Cleanup) closes both nodes; the test passes if nothing
	// deadlocks or panics.
}

func TestDisconnectSendsByeAndDrops(t *testing.T) {
	a := newTestNode(t, "a", 1, nil)
	b := newTestNode(t, "b", 2, nil)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(b.Neighbors()) == 1 }, "connected")
	if err := a.Disconnect(2, 200, "orderly shutdown"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(a.Neighbors()) == 0 }, "a dropped b")
	// b processes the Bye and drops a too.
	waitFor(t, 2*time.Second, func() bool { return len(b.Neighbors()) == 0 }, "b honored the Bye")
	if err := a.Disconnect(99, 200, "x"); err == nil {
		t.Fatal("disconnecting unknown neighbor succeeded")
	}
}
