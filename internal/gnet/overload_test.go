package gnet

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ddpolice/internal/journal"
	"ddpolice/internal/overload"
	"ddpolice/internal/police"
	"ddpolice/internal/protocol"
	"ddpolice/internal/rng"
	"ddpolice/internal/telemetry"
	"ddpolice/internal/topology"
)

func gaugeValue(reg *telemetry.Registry, name string) int64 {
	for _, g := range reg.Snapshot().Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// journalTypes returns the Detail strings of every event of the given
// type, in order.
func journalDetails(jr *journal.Journal, typ string) []string {
	var out []string
	for _, e := range jr.Events() {
		if e.Type == typ {
			out = append(out, e.Detail)
		}
	}
	return out
}

// TestOverloadBreakerLifecycle hand-drives the full quarantine circuit
// breaker state machine over real TCP: two hot windows trip the
// breaker, the quarantined peer's queries are throttled to the probe
// trickle while the link stays up, the quarantine term elapses into a
// half-open probe, and a quiet probe window restores the peer.
func TestOverloadBreakerLifecycle(t *testing.T) {
	reg := telemetry.New()
	jr := journal.New(256)
	ocfg := overload.DefaultConfig()
	ocfg.TripThreshold = 50
	ocfg.TripWindows = 2
	ocfg.QuarantineWindows = 2
	ocfg.ProbeAdmit = 2
	a := newTestNode(t, "a", 1, func(cfg *Config) {
		cfg.Overload = &ocfg
		cfg.MinuteLength = time.Hour // windows rolled by hand
		cfg.Telemetry = reg
		cfg.Journal = jr
	})
	b := newTestNode(t, "b", 2, nil)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(a.Neighbors()) == 1 }, "a sees b")

	// Two consecutive hot windows (> TripThreshold offered) trip the
	// breaker. The breaker is created explicitly: in live traffic
	// admitQuery does this on the first inbound query.
	runOnLoop(t, a, func() {
		a.ovl.breaker(2)
		a.ovl.offered[2] = 100
		a.closeOverloadWindow()
	})
	if q := a.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantined after one strike = %v, want none", q)
	}
	runOnLoop(t, a, func() {
		a.ovl.offered[2] = 100
		a.closeOverloadWindow()
	})
	if q := a.Quarantined(); len(q) != 1 || q[0] != 2 {
		t.Fatalf("quarantined = %v, want [2]", q)
	}
	if got := gaugeValue(reg, "gnet.quarantined_peers"); got != 1 {
		t.Fatalf("quarantined_peers gauge = %d, want 1", got)
	}

	// The link is still up — quarantine throttles, it does not cut.
	if len(a.Neighbors()) != 1 {
		t.Fatal("quarantine tore the connection down; it must only throttle")
	}

	// 8 queries from the quarantined peer: ProbeAdmit=2 pass, 6 shed.
	for i := 0; i < 8; i++ {
		b.SendRawQuery(fmt.Sprintf("q-%d", i))
	}
	waitFor(t, 2*time.Second, func() bool {
		return a.Stats().QuarantineDropped == 6
	}, "6 of 8 quarantined queries throttled")

	// Serve the quarantine term (2 windows) -> half-open probe, then a
	// quiet probe window -> restore.
	runOnLoop(t, a, func() { a.closeOverloadWindow() })
	runOnLoop(t, a, func() { a.closeOverloadWindow() })
	if q := a.Quarantined(); len(q) != 1 {
		t.Fatalf("probing peer should still be listed, got %v", q)
	}
	runOnLoop(t, a, func() { a.closeOverloadWindow() })
	if q := a.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantined after quiet probe = %v, want none", q)
	}
	if got := gaugeValue(reg, "gnet.quarantined_peers"); got != 0 {
		t.Fatalf("quarantined_peers gauge = %d after restore, want 0", got)
	}

	// Restored peers are admitted freely again.
	before := a.Stats().QuarantineDropped
	seen := a.Stats().QueriesReceived
	b.SendRawQuery("after-restore")
	waitFor(t, 2*time.Second, func() bool { return a.Stats().QueriesReceived > seen }, "query flowed")
	if got := a.Stats().QuarantineDropped; got != before {
		t.Fatalf("QuarantineDropped moved after restore: %d -> %d", before, got)
	}

	// The journal recorded the full transition sequence.
	want := []string{"quarantine", "probe", "restore"}
	got := journalDetails(jr, journal.TypeQuarantine)
	if len(got) != len(want) {
		t.Fatalf("quarantine journal = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quarantine journal = %v, want %v", got, want)
		}
	}
}

// TestChaosOverloadQuarantineNoRedial is the reconnect-supervisor-
// under-overload case: when a quarantined peer's transport dies, the
// supervisor must NOT re-dial it (re-dialing a flooder reopens the
// hose), and the whole arrangement must not leak goroutines.
func TestChaosOverloadQuarantineNoRedial(t *testing.T) {
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	reg := telemetry.New()
	ocfg := overload.DefaultConfig()
	ocfg.TripThreshold = 10
	ocfg.TripWindows = 1
	a := NewNodeMust(t, func(cfg *Config) {
		cfg.Overload = &ocfg
		cfg.MinuteLength = time.Hour
		cfg.Telemetry = reg
		cfg.Reconnect = fastReconnect()
	})
	b := NewNodeMust(t, func(cfg *Config) { cfg.NodeID = 2; cfg.Seed = 3 })
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(a.Neighbors()) == 1 }, "connected")

	// One hot window quarantines b on a.
	runOnLoop(t, a, func() {
		a.ovl.breaker(2)
		a.ovl.offered[2] = 100
		a.closeOverloadWindow()
	})
	if q := a.Quarantined(); len(q) != 1 {
		t.Fatalf("quarantined = %v, want [2]", q)
	}

	// The quarantined peer's transport dies. A non-quarantined peer
	// would be re-dialed (TestReconnectAfterInjectedReset); this one
	// must not be.
	b.Close()
	waitFor(t, 2*time.Second, func() bool { return len(a.Neighbors()) == 0 }, "b dropped")
	time.Sleep(300 * time.Millisecond) // several fastReconnect base delays
	if got := counterValue(reg, "gnet.reconnect_attempts"); got != 0 {
		t.Errorf("reconnect_attempts = %d for a quarantined peer, want 0", got)
	}
	if len(a.Neighbors()) != 0 {
		t.Error("quarantined peer was re-established")
	}

	a.Close()
	waitFor(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	}, fmt.Sprintf("goroutines back to baseline %d (now %d)", baseline, runtime.NumGoroutine()))
}

// NewNodeMust builds a node with explicit Close handled by the caller
// (the goroutine-leak test closes by hand before counting).
func NewNodeMust(t *testing.T, mutate func(*Config)) *Node {
	t.Helper()
	cfg := DefaultConfig("n")
	cfg.NodeID = 1
	cfg.Seed = 2
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

// TestOverloadFloodBoundedCut is the 3x offered-over-capacity
// acceptance test: an 8-node overlay whose nodes process 3000
// queries/min faces an agent flooding ~20000/min. With the overload
// plane on, (a) the control plane keeps >= 95% delivery (the classed
// processor's control drop rate stays under 5%), (b) query traffic is
// visibly shed, and (c) DD-POLICE still cuts the agent within a
// bounded deadline — saturation degrades the data plane, not the
// detection machinery.
func TestOverloadFloodBoundedCut(t *testing.T) {
	g, err := topology.BarabasiAlbert(rng.New(11), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := police.DefaultConfig()
	pcfg.Q0 = 10
	pcfg.WarnThreshold = 40
	pcfg.CutThreshold = 5
	ocfg := overload.DefaultConfig()
	// A fifth of capacity reserved for control: 600/min against the
	// handful of control messages per window an 8-node overlay sends.
	ocfg.ControlReserveFrac = 0.2
	const agentIdx = 7
	reg := telemetry.New()
	h, err := NewHarness(g, func(i int, cfg *Config) {
		cfg.Police = &pcfg
		cfg.MinuteLength = 400 * time.Millisecond
		cfg.CapacityPerMin = 3000 // 50/s; the agent offers ~333/s
		cfg.Overload = &ocfg
		cfg.Telemetry = reg
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	waitFor(t, 3*time.Second, func() bool {
		for i := 0; i < h.Len(); i++ {
			if len(h.Node(i).Neighbors()) != g.Degree(topology.NodeID(i)) {
				return false
			}
		}
		return true
	}, "overlay connected")

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(3 * time.Millisecond)
		defer tick.Stop()
		i := 0
		for {
			select {
			case <-tick.C:
				h.Node(agentIdx).SendRawQuery(fmt.Sprintf("junk-%d", i))
				i++
			case <-stop:
				return
			}
		}
	}()

	// Bounded time-to-cut: some honest node cuts the agent within 20s
	// (50 windows) despite running saturated the whole time.
	waitFor(t, 20*time.Second, func() bool {
		for i := 0; i < h.Len(); i++ {
			if i == agentIdx {
				continue
			}
			for _, d := range h.Node(i).Stats().Disconnects {
				if d.Code == protocol.ByeCodeDDoSSuspect {
					return true
				}
			}
		}
		return false
	}, "agent cut under 3x overload")

	// Control-plane delivery >= 95% on every honest node, while query
	// traffic was genuinely shed somewhere.
	var queryDrops uint64
	for i := 0; i < h.Len(); i++ {
		if i == agentIdx {
			continue
		}
		n := h.Node(i)
		st := n.Stats()
		queryDrops += st.QueriesDropped + st.ShedQuery + st.QuarantineDropped
		var ctlRate float64
		runOnLoop(t, n, func() { ctlRate = n.ovl.cproc.ControlDropRate() })
		if ctlRate > 0.05 {
			t.Errorf("node %d control drop rate = %.3f, want <= 0.05", i, ctlRate)
		}
	}
	if queryDrops == 0 {
		t.Error("no query traffic shed or dropped under a 3x flood")
	}
	if got := counterValue(reg, "gnet.shed_control"); got > 0 {
		// The control queues and reserve are sized for this overlay;
		// last-resort control sheds mean the reserve failed.
		t.Errorf("gnet.shed_control = %d, want 0", got)
	}
}

// TestOverloadDegradedMode saturates a nearly-zero-capacity node and
// asserts it detects its own degradation (shed fraction over the
// threshold), journals the transition, keeps serving control traffic,
// and recovers once the flood stops.
func TestOverloadDegradedMode(t *testing.T) {
	reg := telemetry.New()
	jr := journal.New(512)
	ocfg := overload.DefaultConfig()
	ocfg.TripThreshold = 1e9 // keep the breaker out of this test
	a := newTestNode(t, "a", 1, func(cfg *Config) {
		cfg.Overload = &ocfg
		cfg.CapacityPerMin = 60 // ~1 query/s: any flood saturates it
		cfg.Burst = 2
		cfg.MinuteLength = 300 * time.Millisecond
		cfg.Telemetry = reg
		cfg.Journal = jr
	})
	b := newTestNode(t, "b", 2, nil)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(a.Neighbors()) == 1 }, "connected")

	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		i := 0
		for {
			select {
			case <-tick.C:
				b.SendRawQuery(fmt.Sprintf("flood-%d", i))
				i++
			case <-stop:
				return
			}
		}
	}()

	waitFor(t, 10*time.Second, func() bool { return a.Degraded() }, "node entered degraded mode")
	if got := gaugeValue(reg, "gnet.degraded"); got != 1 {
		t.Errorf("gnet.degraded gauge = %d while degraded, want 1", got)
	}
	if counterValue(reg, "gnet.shed_query") == 0 && a.Stats().QueriesDropped == 0 {
		t.Error("degraded with no recorded query sheds or capacity drops")
	}
	// The degraded node still exchanges control traffic on the
	// protected budget: the link to b is alive.
	if len(a.Neighbors()) != 1 {
		t.Error("degraded node lost its neighbor; control plane must stay up")
	}

	close(stop)
	waitFor(t, 10*time.Second, func() bool { return !a.Degraded() }, "node recovered")
	if got := gaugeValue(reg, "gnet.degraded"); got != 0 {
		t.Errorf("gnet.degraded gauge = %d after recovery, want 0", got)
	}

	// Journal holds the enter/exit markers and per-window shed events.
	details := journalDetails(jr, journal.TypeDegraded)
	if len(details) < 2 || details[0] != "enter" || details[len(details)-1] != "exit" {
		t.Errorf("degraded journal = %v, want enter ... exit", details)
	}
	if len(journalDetails(jr, journal.TypeShed)) == 0 {
		t.Error("no shed events journaled for a saturated window")
	}
}
