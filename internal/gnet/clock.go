package gnet

import "time"

// Clock abstracts the time sources the DD-POLICE monitor's detection
// logic reads: the Neighbor_Traffic rate-limit window, evaluation
// latency, message timestamps, and the half-window verdict deadline.
// Production nodes use the real clock; tests inject a fake one and
// advance it explicitly, so detection-timing behaviour (the 50-second
// suppression, the verdict deadline, the one deferral) is exercised in
// virtual time instead of being approximated with shortened windows
// and sleeps.
//
// Deliberately NOT routed through the clock: transport concerns —
// connection deadlines, dial timeouts, transient-dial backoff — which
// pace real I/O and must follow the wall clock even under a fake one.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	// AfterFunc schedules f after d. Implementations must run f on
	// their own goroutine (or the test's Advance call); f itself hands
	// work to the node's run loop.
	AfterFunc(d time.Duration, f func())
}

// realClock is the default Clock, backed by package time.
type realClock struct{}

func (realClock) Now() time.Time                      { return time.Now() }
func (realClock) Since(t time.Time) time.Duration     { return time.Since(t) }
func (realClock) AfterFunc(d time.Duration, f func()) { time.AfterFunc(d, f) }
