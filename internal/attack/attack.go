// Package attack models overlay flooding DDoS agents: compromised
// peers that "generate as many bogus queries as they can" (§3.5). Each
// agent issues Q_d = min(20000, link capacity) queries per minute; per
// Figure 1 an agent may issue *different* queries to each neighbor so
// that duplicate suppression never cancels its traffic, or broadcast
// the same query stream to all neighbors.
package attack

import (
	"fmt"

	"ddpolice/internal/capacity"
	"ddpolice/internal/flood"
	"ddpolice/internal/flowplane"
	"ddpolice/internal/overlay"
	"ddpolice/internal/police"
	"ddpolice/internal/rng"
)

// PeerID aliases the overlay peer identifier.
type PeerID = overlay.PeerID

// Mode selects how an agent spreads its bogus queries.
type Mode int

// Attack spreading modes.
const (
	// ModeSpray issues a distinct query stream to each neighbor
	// (Figure 1: "a bad peer issues different queries to its
	// neighboring peers in order to make DDoS attacks more damaging").
	ModeSpray Mode = iota
	// ModeBroadcast floods the same query stream to all neighbors;
	// duplicate suppression then bounds each query to one pass.
	ModeBroadcast
)

// LinkModel assigns last-hop capacity, following the paper's use of
// [19]: 78% of peers have fast access links, 22% are bandwidth-poor
// ("22% of the participating peers have upstream bottleneck bandwidths
// of 100Kbps or less"). Capacities are expressed in queries/minute.
type LinkModel struct {
	SlowFraction float64
	// Slow peers' uplink capacity is drawn uniformly from
	// [SlowCapMinPerMin, SlowCapPerMin] — the measurement says
	// "100 Kbps or less", not exactly 100 Kbps.
	SlowCapMinPerMin float64
	SlowCapPerMin    float64
	FastCapPerMin    float64
}

// DefaultLinkModel translates the paper's bandwidth classes into query
// rates: a 100 Kbps uplink moves ~7,500 of the ~100-byte query messages
// per minute; fast links are effectively unconstrained relative to the
// 20,000/min generation bound.
func DefaultLinkModel() LinkModel {
	return LinkModel{SlowFraction: 0.22, SlowCapMinPerMin: 2000, SlowCapPerMin: 7500, FastCapPerMin: 75000}
}

// AgentConfig describes one agent's behaviour.
type AgentConfig struct {
	RatePerMin float64 // generation capability (paper: 20,000)
	Mode       Mode
	Cheat      police.CheatStrategy
	TTL        int
}

// DefaultAgentConfig returns the paper's agent: 20k queries/min,
// per-neighbor distinct streams, honest Neighbor_Traffic reporting
// (§3.4 concludes cheating cannot help), TTL 7.
func DefaultAgentConfig() AgentConfig {
	return AgentConfig{
		RatePerMin: capacity.BadPeerIssuePerMin,
		Mode:       ModeSpray,
		Cheat:      police.CheatNone,
		TTL:        7,
	}
}

// Agent is one compromised peer.
type Agent struct {
	ID              PeerID
	EffectivePerMin float64 // min(RatePerMin, link capacity)
	cfg             AgentConfig
}

// Fleet is the set of agents for one simulation run.
type Fleet struct {
	agents []Agent
	member []bool
}

// NewFleet compromises count distinct peers chosen uniformly at random
// from [0, numPeers). Link capacities are drawn from links. The same
// seed yields the same fleet.
func NewFleet(count, numPeers int, cfg AgentConfig, links LinkModel, src *rng.Source) (*Fleet, error) {
	if count < 0 || count > numPeers {
		return nil, fmt.Errorf("attack: %d agents among %d peers", count, numPeers)
	}
	if cfg.RatePerMin <= 0 || cfg.TTL <= 0 {
		return nil, fmt.Errorf("attack: agent config rate=%v ttl=%d", cfg.RatePerMin, cfg.TTL)
	}
	f := &Fleet{member: make([]bool, numPeers)}
	perm := src.Perm(numPeers)
	for i := 0; i < count; i++ {
		id := PeerID(perm[i])
		cap := links.FastCapPerMin
		if src.Bool(links.SlowFraction) {
			cap = links.SlowCapPerMin
			if links.SlowCapMinPerMin > 0 && links.SlowCapMinPerMin < links.SlowCapPerMin {
				cap = links.SlowCapMinPerMin + src.Float64()*(links.SlowCapPerMin-links.SlowCapMinPerMin)
			}
		}
		rate := cfg.RatePerMin
		if cap < rate {
			rate = cap // Q_d = min(20000, capacity of the link)
		}
		f.agents = append(f.agents, Agent{ID: id, EffectivePerMin: rate, cfg: cfg})
		f.member[id] = true
	}
	return f, nil
}

// Agents returns the fleet members.
func (f *Fleet) Agents() []Agent { return f.agents }

// IDs returns the agent peer ids.
func (f *Fleet) IDs() []PeerID {
	ids := make([]PeerID, len(f.agents))
	for i, a := range f.agents {
		ids[i] = a.ID
	}
	return ids
}

// Size returns the number of agents.
func (f *Fleet) Size() int { return len(f.agents) }

// IsAgent reports whether peer v is compromised.
func (f *Fleet) IsAgent(v PeerID) bool { return f.member[v] }

// Tick floods every agent's bogus query volume for a dt-second
// interval through eng, consuming budget like any other traffic, and
// returns the aggregate flood accounting. It is equivalent to
// TickSliced with a single slice.
func (f *Fleet) Tick(eng *flood.Engine, ov *overlay.Overlay, budget *flood.Budget, dt float64) flood.BatchResult {
	return f.TickSliced(eng, ov, budget, dt, 1, 0)
}

// TickSliced spreads the interval's attack volume over the given
// number of interleaved slices, rotating the agent order between
// slices (rotation seeded by round so the bias rotates across ticks).
//
// Slicing matters under saturation: peers' processing budgets are
// consumed first-come-first-served within a tick, so flooding each
// agent's full per-tick volume as a single batch would let whichever
// agent floods first starve the others — a serialization artifact. In
// the real network the queries of all agents interleave packet by
// packet and each peer's capacity is shared proportionally; a handful
// of interleaved slices reproduces that fair sharing, and with it the
// geometric per-hop thinning that makes overloaded floods die out
// close to their source.
func (f *Fleet) TickSliced(eng *flood.Engine, ov *overlay.Overlay, budget *flood.Budget, dt float64, slices, round int) flood.BatchResult {
	var total flood.BatchResult
	if slices < 1 {
		slices = 1
	}
	n := len(f.agents)
	if n == 0 {
		return total
	}
	var nbuf []PeerID
	for s := 0; s < slices; s++ {
		start := (round*slices + s) % n
		for i := 0; i < n; i++ {
			a := f.agents[(start+i)%n]
			f.emit(eng, ov, budget, a, dt/float64(slices), &total, &nbuf)
		}
	}
	return total
}

func (f *Fleet) emit(eng *flood.Engine, ov *overlay.Overlay, budget *flood.Budget, a Agent, dt float64, total *flood.BatchResult, nbuf *[]PeerID) {
	if !ov.Online(a.ID) {
		return
	}
	weight := a.EffectivePerMin * dt / 60
	if weight <= 0 {
		return
	}
	*nbuf = ov.ActiveNeighbors(a.ID, (*nbuf)[:0])
	if len(*nbuf) == 0 {
		return
	}
	switch a.cfg.Mode {
	case ModeBroadcast:
		// Ordinary flooding of the agent's distinct queries: the same
		// stream goes down every connection (k copies on the wire,
		// deduplicated downstream). The agent's source edges each carry
		// the full generation rate — a glaring Out_query signature.
		r := eng.FloodBatch(a.ID, -1, a.cfg.TTL, weight, budget)
		accumulate(total, r)
	case ModeSpray:
		// Figure 1's stealthier pattern: the generation budget is split
		// into per-neighbor *distinct* streams. Total flood mass is the
		// same, but each source edge carries only rate/k, and no
		// duplicate suppression ever cancels the sub-streams against
		// each other.
		per := weight / float64(len(*nbuf))
		for _, v := range *nbuf {
			r := eng.FloodBatch(a.ID, v, a.cfg.TTL, per, budget)
			accumulate(total, r)
		}
	}
}

// FloodKeys appends the (source, entry, TTL) traversal keys the fleet's
// next Tick/TickSliced call will flood — one unrestricted key per agent
// in broadcast mode, one entry-restricted key per active neighbor in
// spray mode — mirroring emit's own skip conditions (offline agent, no
// active neighbors, zero weight). The sim's proposal phase feeds these
// to flood.Engine.PrewarmTrees so the commit-phase batches replay
// cached trees instead of re-traversing.
func (f *Fleet) FloodKeys(ov *overlay.Overlay, buf []flood.TreeKey) []flood.TreeKey {
	var nbuf []PeerID
	for _, a := range f.agents {
		if !ov.Online(a.ID) || a.EffectivePerMin <= 0 {
			continue
		}
		nbuf = ov.ActiveNeighbors(a.ID, nbuf[:0])
		if len(nbuf) == 0 {
			continue
		}
		switch a.cfg.Mode {
		case ModeBroadcast:
			buf = append(buf, flood.TreeKey{Src: a.ID, Entry: -1, TTL: int32(a.cfg.TTL)})
		case ModeSpray:
			for _, v := range nbuf {
				buf = append(buf, flood.TreeKey{Src: a.ID, Entry: v, TTL: int32(a.cfg.TTL)})
			}
		}
	}
	return buf
}

func accumulate(total *flood.BatchResult, r flood.BatchResult) {
	total.QueryMessages += r.QueryMessages
	total.DupMessages += r.DupMessages
	total.CapacityDrops += r.CapacityDrops
	total.ProcessedMass += r.ProcessedMass
	total.PeersReached += r.PeersReached
}

// Emissions appends the fleet's monitoring-plane injections for one
// minute of attack (see internal/flowplane): each online agent's
// effective generation rate, split per neighbor in spray mode.
func (f *Fleet) Emissions(ov *overlay.Overlay, buf []flowplane.Emission) []flowplane.Emission {
	for _, a := range f.agents {
		if !ov.Online(a.ID) {
			continue
		}
		buf = append(buf, flowplane.Emission{
			Source:    a.ID,
			PerMinute: a.EffectivePerMin,
			Split:     a.cfg.Mode == ModeSpray,
		})
	}
	return buf
}
