package attack

import (
	"math"
	"testing"

	"ddpolice/internal/flood"
	"ddpolice/internal/flowplane"
	"ddpolice/internal/overlay"
	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
)

func baOverlay(t *testing.T, n int, seed uint64) *overlay.Overlay {
	t.Helper()
	g, err := topology.BarabasiAlbert(rng.New(seed), n, 3)
	if err != nil {
		t.Fatal(err)
	}
	return overlay.New(g)
}

func TestFleetSelection(t *testing.T) {
	f, err := NewFleet(50, 500, DefaultAgentConfig(), DefaultLinkModel(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 50 {
		t.Fatalf("size = %d", f.Size())
	}
	seen := map[PeerID]bool{}
	for _, a := range f.Agents() {
		if a.ID < 0 || int(a.ID) >= 500 {
			t.Fatalf("agent id %d out of range", a.ID)
		}
		if seen[a.ID] {
			t.Fatalf("duplicate agent %d", a.ID)
		}
		seen[a.ID] = true
		if !f.IsAgent(a.ID) {
			t.Fatalf("IsAgent(%d) false", a.ID)
		}
	}
	if f.IsAgent(pickNonAgent(f, 500)) {
		t.Fatal("non-agent reported as agent")
	}
	if len(f.IDs()) != 50 {
		t.Fatal("IDs length mismatch")
	}
}

func pickNonAgent(f *Fleet, n int) PeerID {
	for v := 0; v < n; v++ {
		if !f.IsAgent(PeerID(v)) {
			return PeerID(v)
		}
	}
	return -1
}

func TestFleetDeterministic(t *testing.T) {
	a, err := NewFleet(20, 300, DefaultAgentConfig(), DefaultLinkModel(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFleet(20, 300, DefaultAgentConfig(), DefaultLinkModel(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Agents() {
		if a.Agents()[i] != b.Agents()[i] {
			t.Fatal("same seed produced different fleets")
		}
	}
}

func TestLinkCapacityCapsRate(t *testing.T) {
	links := LinkModel{SlowFraction: 1, SlowCapMinPerMin: 2000, SlowCapPerMin: 7500, FastCapPerMin: 75000}
	f, err := NewFleet(10, 100, DefaultAgentConfig(), links, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range f.Agents() {
		if a.EffectivePerMin < 2000 || a.EffectivePerMin > 7500 {
			t.Fatalf("slow-link agent rate = %v, want in [2000, 7500] (Q_d = min cap)", a.EffectivePerMin)
		}
	}
	// Without a minimum, the slow cap is exact.
	links.SlowCapMinPerMin = 0
	f, err = NewFleet(10, 100, DefaultAgentConfig(), links, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range f.Agents() {
		if a.EffectivePerMin != 7500 {
			t.Fatalf("fixed slow cap = %v, want 7500", a.EffectivePerMin)
		}
	}
	links.SlowFraction = 0
	f, err = NewFleet(10, 100, DefaultAgentConfig(), links, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range f.Agents() {
		if a.EffectivePerMin != 20000 {
			t.Fatalf("fast-link agent rate = %v, want 20000", a.EffectivePerMin)
		}
	}
}

func TestFleetErrors(t *testing.T) {
	if _, err := NewFleet(-1, 10, DefaultAgentConfig(), DefaultLinkModel(), rng.New(1)); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := NewFleet(11, 10, DefaultAgentConfig(), DefaultLinkModel(), rng.New(1)); err == nil {
		t.Error("count > peers accepted")
	}
	cfg := DefaultAgentConfig()
	cfg.RatePerMin = 0
	if _, err := NewFleet(1, 10, cfg, DefaultLinkModel(), rng.New(1)); err == nil {
		t.Error("zero rate accepted")
	}
	cfg = DefaultAgentConfig()
	cfg.TTL = 0
	if _, err := NewFleet(1, 10, cfg, DefaultLinkModel(), rng.New(1)); err == nil {
		t.Error("zero TTL accepted")
	}
}

func TestTickEmitsExpectedVolume(t *testing.T) {
	ov := baOverlay(t, 300, 4)
	eng := flood.NewEngine(ov)
	budget := flood.NewBudget(300, 1e12)
	links := LinkModel{SlowFraction: 0, FastCapPerMin: 75000}
	// A single agent, so that its source-edge counters contain only its
	// own generation (not traffic forwarded for other agents).
	f, err := NewFleet(1, 300, DefaultAgentConfig(), links, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	res := f.Tick(eng, ov, budget, 60) // one full minute
	// The agent emits 20k on its access link and flooding multiplies
	// messages far beyond that.
	if res.QueryMessages < 100000 {
		t.Fatalf("query messages = %v, want >> 20000", res.QueryMessages)
	}
	// The monitoring counters must see exactly the generation rate on
	// the source edges: with one agent and no other traffic, the
	// agent's total counted out-flow is Q_d.
	ems := f.Emissions(ov, nil)
	if len(ems) != 1 || ems[0].PerMinute != 20000 || !ems[0].Split {
		t.Fatalf("emissions = %+v", ems)
	}
	ov.RollMinute()
	for _, a := range f.Agents() {
		var out float64
		for _, w := range ov.Graph().Neighbors(a.ID) {
			out += ov.LastMinute(a.ID, w)
		}
		if math.Abs(out-20000) > 1e-6 {
			t.Fatalf("agent %d counted emission %v, want 20000", a.ID, out)
		}
	}
}

func TestSprayVsBroadcastSignature(t *testing.T) {
	// Figure 1's point: spraying distinct streams per neighbor divides
	// the per-edge Out_query signature by the degree, while broadcast
	// puts the full generation rate on every source edge.
	maxSourceEdge := func(mode Mode) float64 {
		ov := baOverlay(t, 300, 6)
		cfg := DefaultAgentConfig()
		cfg.Mode = mode
		links := LinkModel{SlowFraction: 0, FastCapPerMin: 75000}
		f, err := NewFleet(1, 300, cfg, links, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		plane := flowplane.New(ov)
		// TTL 1 isolates the source-edge signature.
		if _, err := plane.AccumulateMinute(f.Emissions(ov, nil), 1); err != nil {
			t.Fatal(err)
		}
		ov.RollMinute()
		a := f.Agents()[0]
		var max float64
		for _, w := range ov.Graph().Neighbors(a.ID) {
			if v := ov.LastMinute(a.ID, w); v > max {
				max = v
			}
		}
		return max
	}
	spray, broadcast := maxSourceEdge(ModeSpray), maxSourceEdge(ModeBroadcast)
	if math.Abs(broadcast-20000) > 1 {
		t.Fatalf("broadcast per-edge signature = %v, want 20000", broadcast)
	}
	if spray >= broadcast/2 {
		t.Fatalf("spray signature %v not clearly below broadcast %v", spray, broadcast)
	}
}

func TestOfflineAgentEmitsNothing(t *testing.T) {
	ov := baOverlay(t, 100, 8)
	eng := flood.NewEngine(ov)
	budget := flood.NewBudget(100, 1e12)
	f, err := NewFleet(1, 100, DefaultAgentConfig(), DefaultLinkModel(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	ov.SetOnline(f.Agents()[0].ID, false)
	if res := f.Tick(eng, ov, budget, 60); res.QueryMessages != 0 {
		t.Fatalf("offline agent emitted %v messages", res.QueryMessages)
	}
}

func TestZeroAgents(t *testing.T) {
	ov := baOverlay(t, 100, 10)
	eng := flood.NewEngine(ov)
	f, err := NewFleet(0, 100, DefaultAgentConfig(), DefaultLinkModel(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if res := f.Tick(eng, ov, flood.NewBudget(100, 1e12), 60); res.QueryMessages != 0 {
		t.Fatal("empty fleet emitted traffic")
	}
}
