package flood

import (
	"math"
	"testing"

	"ddpolice/internal/overlay"
	"ddpolice/internal/rng"
	"ddpolice/internal/telemetry"
	"ddpolice/internal/topology"
)

// lineGraph builds 0-1-2-...-n-1.
func lineGraph(t *testing.T, n int) *overlay.Overlay {
	t.Helper()
	b := topology.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(topology.NodeID(i), topology.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return overlay.New(b.Build())
}

// star builds hub 0 with n-1 leaves.
func star(t *testing.T, n int) *overlay.Overlay {
	t.Helper()
	b := topology.NewBuilder(n)
	for i := 1; i < n; i++ {
		if err := b.AddEdge(0, topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return overlay.New(b.Build())
}

func bigBudget(n int) *Budget { return NewBudget(n, 1e9) }

func TestFloodQueryReachesTTL(t *testing.T) {
	ov := lineGraph(t, 10)
	e := NewEngine(ov)
	res := e.FloodQuery(0, 3, nil, bigBudget(10), DelayModel{HopDelay: 0.05})
	// Peers 1, 2, 3 processed; messages = 3 (no branching, no dups).
	if res.Processed != 3 {
		t.Fatalf("processed = %d, want 3", res.Processed)
	}
	if res.QueryMessages != 3 || res.DupMessages != 0 {
		t.Fatalf("messages = %v dups = %v", res.QueryMessages, res.DupMessages)
	}
	if res.Hit {
		t.Fatal("hit with no holders")
	}
	if res.FirstHitHops != -1 {
		t.Fatalf("FirstHitHops = %d", res.FirstHitHops)
	}
}

func TestFloodQueryHitAccounting(t *testing.T) {
	ov := lineGraph(t, 10)
	e := NewEngine(ov)
	holders := []topology.NodeID{2, 5, 9}
	res := e.FloodQuery(0, 7, holders, bigBudget(10), DelayModel{HopDelay: 0.05})
	if !res.Hit {
		t.Fatal("no hit")
	}
	if res.FirstHitHops != 2 {
		t.Fatalf("first hit at %d hops, want 2", res.FirstHitHops)
	}
	if res.HitHolders != 2 { // peers 2 and 5 are within TTL 7; peer 9 is not
		t.Fatalf("hit holders = %d, want 2", res.HitHolders)
	}
	if res.HitMessages != 7 { // 2 + 5 reverse-path messages
		t.Fatalf("hit messages = %v, want 7", res.HitMessages)
	}
	// Uncongested delay: 2 hops forward + 2 hops back at 50 ms.
	if math.Abs(res.ResponseDelay-0.2) > 1e-9 {
		t.Fatalf("response delay = %v, want 0.2", res.ResponseDelay)
	}
}

func TestIssuerNotCountedAsResponder(t *testing.T) {
	ov := lineGraph(t, 5)
	e := NewEngine(ov)
	res := e.FloodQuery(0, 7, []topology.NodeID{0}, bigBudget(5), DefaultDelayModel())
	if res.Hit {
		t.Fatal("issuer's own replica must not count as a hit")
	}
}

func TestFloodQueryDuplicates(t *testing.T) {
	// Triangle 0-1-2: 1 and 2 exchange duplicate copies.
	b := topology.NewBuilder(3)
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ov := overlay.New(b.Build())
	e := NewEngine(ov)
	res := e.FloodQuery(0, 7, nil, bigBudget(3), DefaultDelayModel())
	if res.Processed != 2 {
		t.Fatalf("processed = %d", res.Processed)
	}
	// Messages: 0->1, 0->2, then 1->2 and 2->1 (both dups). Total 4, 2 dups.
	if res.QueryMessages != 4 || res.DupMessages != 2 {
		t.Fatalf("messages = %v dups = %v", res.QueryMessages, res.DupMessages)
	}
}

func TestNeverSendsBackToParent(t *testing.T) {
	ov := lineGraph(t, 3)
	e := NewEngine(ov)
	res := e.FloodQuery(0, 7, nil, bigBudget(3), DefaultDelayModel())
	// 0->1, 1->2. Peer 1 must not send back to 0, peer 2 has no other
	// neighbor: exactly 2 messages, no dups.
	if res.QueryMessages != 2 || res.DupMessages != 0 {
		t.Fatalf("messages = %v dups = %v", res.QueryMessages, res.DupMessages)
	}
}

func TestCapacityDropsTruncateFlood(t *testing.T) {
	ov := lineGraph(t, 10)
	e := NewEngine(ov)
	budget := bigBudget(10)
	budget.Remaining[3] = 0 // peer 3 saturated
	res := e.FloodQuery(0, 9, []topology.NodeID{5}, budget, DefaultDelayModel())
	if res.Processed != 2 { // peers 1, 2
		t.Fatalf("processed = %d, want 2", res.Processed)
	}
	if res.CapacityDrops != 1 {
		t.Fatalf("capacity drops = %d", res.CapacityDrops)
	}
	if res.Hit {
		t.Fatal("query must not reach holder past a saturated peer on a line")
	}
}

func TestSaturatedHolderDoesNotRespond(t *testing.T) {
	ov := lineGraph(t, 5)
	e := NewEngine(ov)
	budget := bigBudget(5)
	budget.Remaining[2] = 0
	res := e.FloodQuery(0, 7, []topology.NodeID{2}, budget, DefaultDelayModel())
	if res.Hit {
		t.Fatal("a peer that dropped the query cannot answer it")
	}
}

func TestBudgetConsumption(t *testing.T) {
	ov := star(t, 6)
	e := NewEngine(ov)
	budget := NewBudget(6, 10)
	e.FloodQuery(1, 7, nil, budget, DefaultDelayModel())
	// Flood from leaf 1: hub 0 processes (9 left), leaves 2-5 process.
	if budget.Remaining[0] != 9 {
		t.Fatalf("hub budget = %v", budget.Remaining[0])
	}
	for p := 2; p < 6; p++ {
		if budget.Remaining[p] != 9 {
			t.Fatalf("leaf %d budget = %v", p, budget.Remaining[p])
		}
	}
	if budget.Remaining[1] != 10 {
		t.Fatal("issuer consumed its own budget")
	}
	budget.Refill()
	if budget.Remaining[0] != 10 {
		t.Fatal("refill failed")
	}
}

func TestUtilization(t *testing.T) {
	b := NewBudget(2, 10)
	b.Remaining[0] = 2.5
	if got := b.Utilization(0); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("utilization = %v", got)
	}
	b.Remaining[1] = 15 // over-full clamps to 0
	if got := b.Utilization(1); got != 0 {
		t.Fatalf("overfull utilization = %v", got)
	}
	b.PerTick[1] = 0
	if got := b.Utilization(1); got != 0 {
		t.Fatalf("idle zero-capacity utilization = %v, want 0", got)
	}
}

func TestQueueingDelayGrowsWithUtilization(t *testing.T) {
	ov := lineGraph(t, 4)
	e := NewEngine(ov)
	dm := DelayModel{HopDelay: 0.05, QueueFactor: 0.3, MaxQueue: 12}
	fast := e.FloodQuery(0, 7, []topology.NodeID{3}, bigBudget(4), dm)
	// Now a nearly-exhausted budget: utilization ~1 at every hop.
	tight := NewBudget(4, 1.0)
	slow := e.FloodQuery(0, 7, []topology.NodeID{3}, tight, dm)
	if !fast.Hit || !slow.Hit {
		t.Fatal("both floods should hit")
	}
	if slow.ResponseDelay <= fast.ResponseDelay*1.5 {
		t.Fatalf("congested delay %v not much larger than idle %v", slow.ResponseDelay, fast.ResponseDelay)
	}
}

func TestFloodFromOfflinePeerIsNoop(t *testing.T) {
	ov := lineGraph(t, 5)
	ov.SetOnline(0, false)
	e := NewEngine(ov)
	res := e.FloodQuery(0, 7, nil, bigBudget(5), DefaultDelayModel())
	if res.QueryMessages != 0 || res.Processed != 0 {
		t.Fatalf("offline flood produced traffic: %+v", res)
	}
	if res := e.FloodBatch(0, -1, 7, 100, bigBudget(5)); res.QueryMessages != 0 {
		t.Fatalf("offline batch produced traffic: %+v", res)
	}
}

func TestZeroTTLIsNoop(t *testing.T) {
	ov := lineGraph(t, 5)
	e := NewEngine(ov)
	if res := e.FloodQuery(0, 0, nil, bigBudget(5), DefaultDelayModel()); res.QueryMessages != 0 {
		t.Fatalf("TTL 0 flood produced traffic: %+v", res)
	}
}

func TestFloodBatchMatchesUnitFlood(t *testing.T) {
	// On an uncongested network, a batch of weight W produces exactly
	// W times the messages of a unit query (identical routing).
	g, err := topology.BarabasiAlbert(rng.New(4), 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	ov := overlay.New(g)
	e := NewEngine(ov)
	unit := e.FloodQuery(0, 7, nil, bigBudget(200), DefaultDelayModel())
	batch := e.FloodBatch(0, -1, 7, 50, bigBudget(200))
	if math.Abs(batch.QueryMessages-50*unit.QueryMessages) > 1e-6 {
		t.Fatalf("batch messages %v != 50 * unit %v", batch.QueryMessages, unit.QueryMessages)
	}
	if math.Abs(batch.DupMessages-50*unit.DupMessages) > 1e-6 {
		t.Fatalf("batch dups %v != 50 * unit %v", batch.DupMessages, unit.DupMessages)
	}
	if batch.PeersReached != unit.Processed {
		t.Fatalf("batch reached %d peers, unit processed %d", batch.PeersReached, unit.Processed)
	}
}

func TestFloodBatchCapacityClippingPhysical(t *testing.T) {
	ov := lineGraph(t, 5)
	e := NewEngine(ov)
	e.SetCounterMode(CounterPhysical)
	budget := NewBudget(5, 1e9)
	budget.Remaining[2] = 30 // clip point
	res := e.FloodBatch(0, -1, 7, 100, budget)
	// Peer 1 processes 100, peer 2 processes 30, peers 3, 4 process 30.
	if math.Abs(res.ProcessedMass-(100+30+30+30)) > 1e-9 {
		t.Fatalf("processed mass = %v", res.ProcessedMass)
	}
	if math.Abs(res.CapacityDrops-70) > 1e-9 {
		t.Fatalf("capacity drops = %v", res.CapacityDrops)
	}
	// Physical messages: 0->1 (100), 1->2 (100), 2->3 (30), 3->4 (30).
	if math.Abs(res.QueryMessages-260) > 1e-9 {
		t.Fatalf("query messages = %v, want 260", res.QueryMessages)
	}
}

func TestFloodBatchEntryRestriction(t *testing.T) {
	ov := star(t, 5) // hub 0, leaves 1..4
	e := NewEngine(ov)
	// Attacker is leaf 1; entry restricted to hub 0 trivially. Attack
	// from the hub with entry = 2: only leaf 2 receives.
	res := e.FloodBatch(0, 2, 7, 40, bigBudget(5))
	if res.QueryMessages != 40 {
		t.Fatalf("messages = %v, want 40 on the single entry edge", res.QueryMessages)
	}
	if res.PeersReached != 1 {
		t.Fatalf("reached %d peers", res.PeersReached)
	}
}

func TestFloodBatchZeroWeight(t *testing.T) {
	ov := lineGraph(t, 3)
	e := NewEngine(ov)
	if res := e.FloodBatch(0, -1, 7, 0, bigBudget(3)); res.QueryMessages != 0 {
		t.Fatalf("zero-weight batch produced traffic: %+v", res)
	}
}

func TestFig1TrafficMultiplication(t *testing.T) {
	// Fig 1's insight: flooding multiplies volume downstream, so the
	// network-wide message count far exceeds what crosses the bad
	// peer's own links. Chain: bad(0) - good(1) - good(2), where 2 has
	// further neighbors 3, 4.
	b := topology.NewBuilder(5)
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}, {2, 3}, {2, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ov := overlay.New(b.Build())
	e := NewEngine(ov)
	res := e.FloodBatch(0, -1, 7, 1000, bigBudget(5))
	// Source link carries 1000; total = 0->1, 1->2, 2->3, 2->4 = 4000.
	if res.QueryMessages != 4000 {
		t.Fatalf("total messages = %v, want 4x the source link volume", res.QueryMessages)
	}
}

func TestRepeatedFloodsIsolated(t *testing.T) {
	// Epoch bumping must isolate floods: a second flood must behave
	// identically to the first.
	g, err := topology.BarabasiAlbert(rng.New(9), 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	ov := overlay.New(g)
	e := NewEngine(ov)
	first := e.FloodQuery(5, 7, nil, bigBudget(100), DefaultDelayModel())
	second := e.FloodQuery(5, 7, nil, bigBudget(100), DefaultDelayModel())
	if first.QueryMessages != second.QueryMessages || first.Processed != second.Processed {
		t.Fatalf("floods differ: %+v vs %+v", first, second)
	}
}

func BenchmarkFloodQuery2000(b *testing.B) {
	g, err := topology.BarabasiAlbert(rng.New(1), 2000, 3)
	if err != nil {
		b.Fatal(err)
	}
	ov := overlay.New(g)
	e := NewEngine(ov)
	budget := NewBudget(2000, 1e9)
	dm := DefaultDelayModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.FloodQuery(PeerID(i%2000), 7, nil, budget, dm)
	}
}

func BenchmarkFloodBatch2000(b *testing.B) {
	g, err := topology.BarabasiAlbert(rng.New(1), 2000, 3)
	if err != nil {
		b.Fatal(err)
	}
	ov := overlay.New(g)
	e := NewEngine(ov)
	budget := NewBudget(2000, 1e9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.FloodBatch(PeerID(i%2000), -1, 7, 333, budget)
	}
}

func TestFloodBatchIdealCountersUnclipped(t *testing.T) {
	// In the paper's measurement plane the counters see the full flow
	// even past a saturated peer, while the surviving (success-plane)
	// mass thins.
	ov := lineGraph(t, 5)
	e := NewEngine(ov)
	if e.Mode() != CounterPhysical {
		t.Fatal("default mode must be CounterPhysical")
	}
	e.SetCounterMode(CounterIdeal)
	budget := NewBudget(5, 1e9)
	budget.Remaining[2] = 30
	res := e.FloodBatch(0, -1, 7, 100, budget)
	// Ideal plane: every edge on the line carries the full 100.
	if res.QueryMessages != 400 {
		t.Errorf("ideal messages = %v, want 400", res.QueryMessages)
	}
	// Success plane: peer 1 processes 100, peer 2 clips to 30, 3 and 4
	// inherit 30.
	if math.Abs(res.ProcessedMass-(100+30+30+30)) > 1e-9 {
		t.Errorf("processed mass = %v", res.ProcessedMass)
	}
	if math.Abs(res.CapacityDrops-70) > 1e-9 {
		t.Errorf("capacity drops = %v", res.CapacityDrops)
	}
}

func TestFloodQueryIdealCountersPastSaturation(t *testing.T) {
	// A saturated peer kills the real query but the counter plane keeps
	// flowing: downstream edges still record the message and downstream
	// holders cannot answer.
	ov := lineGraph(t, 6)
	e := NewEngine(ov)
	e.SetCounterMode(CounterIdeal)
	budget := bigBudget(6)
	budget.Remaining[2] = 0
	res := e.FloodQuery(0, 7, []topology.NodeID{4}, budget, DefaultDelayModel())
	if res.Hit {
		t.Fatal("query answered past a saturated peer")
	}
	// Peer 1 survives; peer 2 drops the query; peers 3..5 see only the
	// phantom counter-plane flow.
	if res.Processed != 1 {
		t.Fatalf("processed = %d, want 1", res.Processed)
	}
	if res.CapacityDrops != 1 {
		t.Fatalf("capacity drops = %d, want 1", res.CapacityDrops)
	}
	// Ideal plane keeps flowing past the saturated peer: all 5 line
	// edges carry the message.
	if res.QueryMessages != 5 {
		t.Fatalf("ideal plane stopped at saturation: messages = %v, want 5", res.QueryMessages)
	}
}

func TestFairShareProtectsOtherLinks(t *testing.T) {
	// Star hub with 4 leaves, fair-share on: leaf 1 floods a huge batch
	// but can only consume its per-connection share of the hub's
	// capacity; a later query from leaf 2 still gets through.
	ov := star(t, 5)
	e := NewEngine(ov)
	budget := NewBudget(5, 40)
	budget.EnableFairShare(ov)
	if !budget.FairShare() {
		t.Fatal("fair share not enabled")
	}
	// Hub capacity 40, degree 4: each inbound link may deliver 10.
	e.FloodBatch(1, -1, 7, 1000, budget)
	if got := budget.Remaining[0]; got != 30 {
		t.Fatalf("hub remaining = %v, want 30 (one link's share consumed)", got)
	}
	res := e.FloodQuery(2, 7, []topology.NodeID{3}, budget, DefaultDelayModel())
	if !res.Hit {
		t.Fatal("fair share failed to protect the other links")
	}
}

func TestFairShareVsFCFS(t *testing.T) {
	// Same scenario without fair share: the batch drains the hub
	// completely and the good query dies.
	ov := star(t, 5)
	e := NewEngine(ov)
	budget := NewBudget(5, 40)
	e.FloodBatch(1, -1, 7, 1000, budget)
	if got := budget.Remaining[0]; got != 0 {
		t.Fatalf("hub remaining = %v, want 0 under FCFS", got)
	}
	res := e.FloodQuery(2, 7, []topology.NodeID{3}, budget, DefaultDelayModel())
	if res.Hit {
		t.Fatal("FCFS hub should have been drained by the flood")
	}
}

func TestFairShareRefill(t *testing.T) {
	ov := star(t, 3)
	budget := NewBudget(3, 20)
	budget.EnableFairShare(ov)
	e := NewEngine(ov)
	e.FloodBatch(1, -1, 7, 100, budget)
	budget.Refill()
	eid, _ := ov.FindEdge(1, 0)
	if got := budget.arrivalCap(0, eid); got != 10 {
		t.Fatalf("per-link share after refill = %v, want 10", got)
	}
}

func TestEngineTelemetryCounters(t *testing.T) {
	// Triangle 0-1-2: one flood from 0 traverses 4 edges at TTL 2
	// (0->1, 0->2, then 1<->2 duplicates) and suppresses 2 duplicates.
	b := topology.NewBuilder(3)
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ov := overlay.New(b.Build())
	eng := NewEngine(ov)
	reg := telemetry.New()
	eng.AttachTelemetry(reg)

	eng.FloodQuery(0, 2, nil, bigBudget(3), DelayModel{HopDelay: 0.05})
	if got := reg.Counter("flood.floods").Load(); got != 1 {
		t.Errorf("floods = %d, want 1", got)
	}
	if got := reg.Counter("flood.edges_traversed").Load(); got != 4 {
		t.Errorf("edges = %d, want 4", got)
	}
	if got := reg.Counter("flood.dup_suppressed").Load(); got != 2 {
		t.Errorf("dups = %d, want 2", got)
	}
	if got := reg.Counter("flood.budget_drops").Load(); got != 0 {
		t.Errorf("drops = %d, want 0 with a large budget", got)
	}

	// A starving budget records drop events (batch plane too).
	eng.FloodQuery(0, 2, nil, NewBudget(3, 0), DelayModel{HopDelay: 0.05})
	if got := reg.Counter("flood.budget_drops").Load(); got == 0 {
		t.Error("no drop events under a zero budget")
	}
	before := reg.Counter("flood.floods").Load()
	eng.FloodBatch(0, -1, 2, 100, bigBudget(3))
	if got := reg.Counter("flood.floods").Load(); got != before+1 {
		t.Errorf("batch flood not counted: %d", got)
	}

	// Detach: recording must stop, not crash.
	eng.AttachTelemetry(nil)
	eng.FloodQuery(0, 2, nil, bigBudget(3), DelayModel{HopDelay: 0.05})
}
