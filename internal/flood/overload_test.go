package flood

import (
	"testing"
)

func TestReserveControlScalesBudget(t *testing.T) {
	b := NewBudget(2, 100)
	b.ReserveControl(0.05)
	for i := 0; i < 2; i++ {
		if got := b.PerTick[i]; got != 95 {
			t.Fatalf("PerTick[%d] = %v after 5%% reserve, want 95", i, got)
		}
		if got := b.Remaining[i]; got != 95 {
			t.Fatalf("Remaining[%d] = %v after 5%% reserve, want 95", i, got)
		}
	}
	// Zero and negative fractions are no-ops.
	b.ReserveControl(0)
	b.ReserveControl(-1)
	if got := b.PerTick[0]; got != 95 {
		t.Fatalf("PerTick[0] = %v after no-op reserves, want 95", got)
	}
	// Fractions above 1 clamp: all capacity reserved, query plane gets 0.
	b.ReserveControl(2)
	if got := b.PerTick[0]; got != 0 {
		t.Fatalf("PerTick[0] = %v after full reserve, want 0", got)
	}
}

func TestSetCapacityClampsAndAppliesImmediately(t *testing.T) {
	b := NewBudget(2, 100)
	b.SetCapacity(0, 40)
	if got := b.PerTick[0]; got != 40 {
		t.Fatalf("PerTick[0] = %v, want 40", got)
	}
	// The current tick's remaining tokens are clipped down immediately.
	if got := b.Remaining[0]; got != 40 {
		t.Fatalf("Remaining[0] = %v, want 40 (clipped to new capacity)", got)
	}
	b.SetCapacity(1, -5)
	if got, rem := b.PerTick[1], b.Remaining[1]; got != 0 || rem != 0 {
		t.Fatalf("PerTick[1]/Remaining[1] = %v/%v after negative capacity, want 0/0", got, rem)
	}
	// Raising capacity does not mint tokens mid-tick; the refill does.
	b.SetCapacity(0, 200)
	if got := b.Remaining[0]; got != 40 {
		t.Fatalf("Remaining[0] = %v after raise, want 40 until refill", got)
	}
	b.Refill()
	if got := b.Remaining[0]; got != 200 {
		t.Fatalf("Remaining[0] = %v after refill, want 200", got)
	}
}

// Capacity changes move PerTick without touching the overlay mutation
// counter, so the fair-share split must be rebuilt via the fairDirty
// flag, not version comparison alone.
func TestCapacityChangeRebuildsFairShare(t *testing.T) {
	ov := star(t, 4) // hub 0 with leaves 1..3
	b := NewBudget(4, 30)
	b.EnableFairShare(ov)
	e, ok := ov.FindEdge(1, 0)
	if !ok {
		t.Fatal("edge 1->0 missing")
	}
	if room := b.arrivalCap(0, e); room != 10 {
		t.Fatalf("edge share = %v, want 10 (30/3)", room)
	}
	b.SetCapacity(0, 15)
	b.Refill()
	if room := b.arrivalCap(0, e); room != 5 {
		t.Fatalf("edge share = %v after brownout+refill, want 5 (15/3)", room)
	}
	// Restore, then carve a control reserve: shares track (1-frac).
	b.SetCapacity(0, 30)
	b.ReserveControl(0.5)
	b.Refill()
	if room := b.arrivalCap(0, e); room != 5 {
		t.Fatalf("edge share = %v after 50%% reserve, want 5 (15/3)", room)
	}
}
