package flood

import (
	"testing"

	"ddpolice/internal/overlay"
	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
)

// cachePair builds two independent overlays over the same static graph
// and one engine on each: A with the traversal cache, B without. Graphs
// are immutable, so sharing one is safe.
func cachePair(t *testing.T, seed uint64, n, m int) (ovA, ovB *overlay.Overlay, engA, engB *Engine) {
	t.Helper()
	g, err := topology.BarabasiAlbert(rng.New(seed), n, m)
	if err != nil {
		t.Fatal(err)
	}
	ovA, ovB = overlay.New(g), overlay.New(g)
	engA, engB = NewEngine(ovA), NewEngine(ovB)
	engB.SetTraversalCache(false)
	if !engA.TraversalCacheEnabled() || engB.TraversalCacheEnabled() {
		t.Fatal("cache toggle wiring broken")
	}
	return ovA, ovB, engA, engB
}

// assertOverlayTrafficEqual compares the accumulating per-edge counters
// bit for bit.
func assertOverlayTrafficEqual(t *testing.T, step int, ovA, ovB *overlay.Overlay) {
	t.Helper()
	for e := 0; e < ovA.NumDirectedEdges(); e++ {
		a := ovA.CurrentMinuteEdge(overlay.EdgeID(e))
		b := ovB.CurrentMinuteEdge(overlay.EdgeID(e))
		if a != b {
			t.Fatalf("step %d: edge %d traffic diverged: cached=%v uncached=%v", step, e, a, b)
		}
	}
}

func assertBudgetsEqual(t *testing.T, step int, ba, bb *Budget) {
	t.Helper()
	for i := range ba.Remaining {
		if ba.Remaining[i] != bb.Remaining[i] {
			t.Fatalf("step %d: peer %d budget diverged: cached=%v uncached=%v", step, i, ba.Remaining[i], bb.Remaining[i])
		}
	}
}

// TestCachedQueryByteIdentical drives identical flood sequences through
// a cached and an uncached engine under a budget tight enough to force
// physical-mode drops (exercising the precheck fallback) and asserts
// every result field, edge counter, and budget cell stays bit-equal.
func TestCachedQueryByteIdentical(t *testing.T) {
	for _, mode := range []CounterMode{CounterPhysical, CounterIdeal} {
		_, _, engA, engB := cachePair(t, 11, 400, 3)
		ovA, ovB := engA.ov, engB.ov
		engA.SetCounterMode(mode)
		engB.SetCounterMode(mode)
		ba, bb := NewBudget(400, 12), NewBudget(400, 12)
		dm := DefaultDelayModel()
		holders := []topology.NodeID{7, 99, 250}
		r := rng.New(42)
		for step := 0; step < 600; step++ {
			if step%50 == 0 {
				ba.Refill()
				bb.Refill()
			}
			src := PeerID(r.Intn(40)) // few sources → repeats → trees build+replay
			ra := engA.FloodQuery(src, 4, holders, ba, dm)
			rb := engB.FloodQuery(src, 4, holders, bb, dm)
			if ra != rb {
				t.Fatalf("mode %v step %d src %d: result diverged:\ncached:   %+v\nuncached: %+v", mode, step, src, ra, rb)
			}
			assertOverlayTrafficEqual(t, step, ovA, ovB)
			assertBudgetsEqual(t, step, ba, bb)
		}
		st := engA.CacheStats()
		if st.Builds == 0 || st.Hits == 0 {
			t.Fatalf("mode %v: cache never engaged: %+v", mode, st)
		}
	}
}

// TestCachedBatchByteIdentical does the same for fluid batches,
// including entry-restricted (spray-pattern) floods and weights big
// enough to clip.
func TestCachedBatchByteIdentical(t *testing.T) {
	for _, mode := range []CounterMode{CounterPhysical, CounterIdeal} {
		_, _, engA, engB := cachePair(t, 5, 300, 3)
		ovA, ovB := engA.ov, engB.ov
		engA.SetCounterMode(mode)
		engB.SetCounterMode(mode)
		ba, bb := NewBudget(300, 40), NewBudget(300, 40)
		r := rng.New(7)
		for step := 0; step < 500; step++ {
			if step%25 == 0 {
				ba.Refill()
				bb.Refill()
			}
			src := PeerID(r.Intn(20))
			entry := PeerID(-1)
			if step%3 == 0 {
				nbrs := ovA.Graph().Neighbors(src)
				entry = nbrs[r.Intn(len(nbrs))]
			}
			w := 0.5 + 3*r.Float64()
			ra := engA.FloodBatch(src, entry, 4, w, ba)
			rb := engB.FloodBatch(src, entry, 4, w, bb)
			if ra != rb {
				t.Fatalf("mode %v step %d src %d entry %d: batch diverged:\ncached:   %+v\nuncached: %+v", mode, step, src, entry, ra, rb)
			}
			assertOverlayTrafficEqual(t, step, ovA, ovB)
			assertBudgetsEqual(t, step, ba, bb)
		}
		st := engA.CacheStats()
		if st.Builds == 0 || st.Hits == 0 {
			t.Fatalf("mode %v: cache never engaged: %+v", mode, st)
		}
	}
}

// TestCacheInvalidationOnMutation mutates the overlay mid-sequence —
// churn (SetOnline), cuts and heals — and asserts the cached engine
// tracks the uncached one through every flush.
func TestCacheInvalidationOnMutation(t *testing.T) {
	_, _, engA, engB := cachePair(t, 23, 300, 3)
	ovA, ovB := engA.ov, engB.ov
	ba, bb := NewBudget(300, 1e9), NewBudget(300, 1e9)
	dm := DefaultDelayModel()
	holders := []topology.NodeID{120, 200}
	r := rng.New(99)
	mutate := func(step int) {
		v := PeerID(100 + r.Intn(100))
		switch step % 3 {
		case 0:
			on := !ovA.Online(v)
			ovA.SetOnline(v, on)
			ovB.SetOnline(v, on)
		case 1:
			w := ovA.Graph().Neighbors(v)[0]
			if err := ovA.Cut(v, w); err != nil {
				t.Fatal(err)
			}
			if err := ovB.Cut(v, w); err != nil {
				t.Fatal(err)
			}
		case 2:
			w := ovA.Graph().Neighbors(v)[0]
			ovA.Uncut(v, w)
			ovB.Uncut(v, w)
		}
	}
	for step := 0; step < 400; step++ {
		if step%40 == 39 {
			mutate(step)
		}
		src := PeerID(r.Intn(30))
		ra := engA.FloodQuery(src, 4, holders, ba, dm)
		rb := engB.FloodQuery(src, 4, holders, bb, dm)
		if ra != rb {
			t.Fatalf("step %d src %d: result diverged after mutation:\ncached:   %+v\nuncached: %+v", step, src, ra, rb)
		}
		assertOverlayTrafficEqual(t, step, ovA, ovB)
	}
	st := engA.CacheStats()
	if st.Flushes == 0 {
		t.Fatalf("mutations never flushed the cache: %+v", st)
	}
	if st.Hits == 0 || st.Builds == 0 {
		t.Fatalf("cache never re-engaged between mutations: %+v", st)
	}
}

// TestCacheEagerBuildAfterStability verifies the adaptive build policy:
// under a stable topology the engine switches from build-on-second-use
// to build-on-first-use once cacheBuildAfterFloods floods pass.
func TestCacheEagerBuildAfterStability(t *testing.T) {
	ov := lineGraph(t, 12)
	eng := NewEngine(ov)
	b := bigBudget(12)
	dm := DefaultDelayModel()
	// Burn past the stability threshold with one repeating source.
	for i := uint64(0); i < cacheBuildAfterFloods+1; i++ {
		eng.FloodQuery(0, 3, nil, b, dm)
	}
	before := eng.CacheStats()
	eng.FloodQuery(5, 3, nil, b, dm) // first use of a fresh key
	eng.FloodQuery(5, 3, nil, b, dm)
	after := eng.CacheStats()
	if after.Builds != before.Builds+1 {
		t.Fatalf("expected eager build on first use after stability, stats before=%+v after=%+v", before, after)
	}
	if after.Hits <= before.Hits {
		t.Fatalf("expected replay hit on second use, stats before=%+v after=%+v", before, after)
	}
}

// TestCacheSkipsSaturatedTree checks the physical-mode fallback path:
// a tree whose precheck keeps failing stops attempting replay until the
// next flush, and the engine keeps producing correct (live) results.
func TestCacheSkipsSaturatedTree(t *testing.T) {
	ovA := lineGraph(t, 8)
	ovB := lineGraph(t, 8)
	engA, engB := NewEngine(ovA), NewEngine(ovB)
	engB.SetTraversalCache(false)
	dm := DefaultDelayModel()
	// Tokens for the first hops only: peers 4+ never have budget, so the
	// cached structural tree always fails the precheck.
	mkBudget := func() *Budget {
		b := NewBudget(8, 0)
		for i := 0; i < 4; i++ {
			b.PerTick[i] = 5
			b.Remaining[i] = 5
		}
		return b
	}
	for step := 0; step < 10; step++ {
		ba, bb := mkBudget(), mkBudget()
		ra := engA.FloodQuery(0, 7, []topology.NodeID{6}, ba, dm)
		rb := engB.FloodQuery(0, 7, []topology.NodeID{6}, bb, dm)
		if ra != rb {
			t.Fatalf("step %d: diverged under saturation:\ncached:   %+v\nuncached: %+v", step, ra, rb)
		}
	}
	st := engA.CacheStats()
	if st.Fallbacks == 0 {
		t.Fatalf("expected precheck fallbacks, stats %+v", st)
	}
	if st.Fallbacks > uint64(cacheSkipAfterFails) {
		t.Fatalf("skip flag did not arm after %d failures: %+v", cacheSkipAfterFails, st)
	}
}

// TestFairShareTracksChurn is the regression test for the stale-share
// bug: EnableFairShare used to split capacity by *static* degree once,
// so a peer whose neighbor left kept the old (smaller) per-link share
// and a rejoining peer's links were never re-capped. The split must
// follow the overlay's active degree across churn.
func TestFairShareTracksChurn(t *testing.T) {
	ov := star(t, 5) // hub 0 with leaves 1..4
	b := NewBudget(5, 8)
	b.EnableFairShare(ov)
	hub := PeerID(0)
	e1, _ := ov.FindEdge(1, hub) // arrival edge 1 -> hub
	if got := b.arrivalCap(hub, e1); got != 2 {
		t.Fatalf("initial share: got %v, want capacity/degree = 8/4 = 2", got)
	}
	// Two leaves leave: the hub's capacity now splits across 2 links.
	ov.SetOnline(3, false)
	ov.SetOnline(4, false)
	b.Refill()
	if got := b.arrivalCap(hub, e1); got != 4 {
		t.Fatalf("share after churn: got %v, want 8/2 = 4", got)
	}
	// One leaf rejoins; its link must be re-capped, not left at zero or
	// at a stale value.
	ov.SetOnline(3, true)
	b.Refill()
	e3, _ := ov.FindEdge(3, hub)
	if got := b.arrivalCap(hub, e3); got != 8.0/3 {
		t.Fatalf("rejoined link share: got %v, want 8/3", got)
	}
	if got := b.arrivalCap(hub, e1); got != 8.0/3 {
		t.Fatalf("surviving link share: got %v, want 8/3", got)
	}
	// A cut edge also changes the split.
	if err := ov.Cut(hub, 1); err != nil {
		t.Fatal(err)
	}
	b.Refill()
	if got := b.arrivalCap(hub, e3); got != 4 {
		t.Fatalf("share after cut: got %v, want 8/2 = 4", got)
	}
}
