// Sharded proposal phase: the parallel half of the deterministic
// two-phase tick engine.
//
// The key observation (DESIGN.md §13) is that a flood's first-visit
// tree is a pure function of overlay connectivity — not of budgets,
// delays, or any other per-tick state — so the expensive traversal work
// of a tick can run ahead of time, in parallel, against the immutable
// CSR snapshot, as long as every *stateful* effect (capacity clipping,
// queueing delay, fair-share accounting, telemetry, journaling) is
// applied later by the serial commit phase in the exact order the
// serial engine would have produced it. PrewarmTrees is that proposal
// phase: worker shards build the structural trees the tick has declared
// it will flood, each into private scratch, and a serial commit loop
// stores them into the traversal cache in canonical (input key) order.
// The commit phase is then the ordinary FloodQuery/FloodBatch sequence,
// which finds the trees cached and replays them — a path whose
// byte-identity with the live BFS is already contractual (cache.go).
//
// Shard assignment uses rng.SubSeed, a pure per-key hash substream
// derivation: it is order-independent (no generator state is consumed,
// so the assignment does not depend on scheduling) and decorrelates the
// hub-adjacent key clusters that a modulo split would lump onto one
// shard.
package flood

import (
	"sync"

	"ddpolice/internal/rng"
	"ddpolice/internal/telemetry"
)

// TreeKey names one traversal for proposal-phase prewarming: the flood
// source, the optional entry restriction (negative = unrestricted, as
// in FloodBatch), and the TTL.
type TreeKey struct {
	Src   PeerID
	Entry PeerID
	TTL   int32
}

// shardSalt decorrelates the shard-assignment hash from every other
// SubSeed consumer.
const shardSalt = 0xddb01ce5eed5a17e

// treeBuilder is one shard's private structural-BFS scratch. Builders
// share the read-only CSR adjacency snapshot but nothing mutable, so
// any number of them may run concurrently.
type treeBuilder struct {
	cache    *travCache
	epoch    uint32
	seen     []uint32
	parent   []PeerID
	frontier []PeerID
	next     []PeerID

	// Capacity hints for the next tree's visit/node slices, taken from
	// the previous build. Trees from nearby sources on the same
	// connectivity reach nearly the same peer set, so seeding the
	// capacity turns ~log(n) append-growth reallocations per build into
	// one or two exact allocations — the dominant allocation source in
	// large-overlay runs where most queries come from a source whose
	// tree is not cached. Hints only size memory; tree contents are
	// identical with or without them.
	visitHint int
	nodeHint  int

	// Shard-local tallies, merged serially at commit so the hot build
	// loop touches no shared counters.
	builds uint64
	visits uint64
}

func newTreeBuilder(n int) *treeBuilder {
	return &treeBuilder{
		seen:   make([]uint32, n),
		parent: make([]PeerID, n),
	}
}

// build runs the purely structural TTL-bounded BFS (parent skip +
// duplicate suppression, no budgets) and records the first-visit tree
// in frontier order. It reads only the CSR snapshot and its own
// scratch.
func (tb *treeBuilder) build(src, entry PeerID, ttl int) *travTree {
	tr := &travTree{
		visits: make([]visit, 0, tb.visitHint),
		nodes:  make([]travNode, 0, tb.nodeHint),
	}
	tb.epoch++
	if tb.epoch == 0 { // wrapped: clear marks once every 2^32 builds
		for i := range tb.seen {
			tb.seen[i] = 0
		}
		tb.epoch = 1
	}
	tb.seen[src] = tb.epoch
	tb.parent[src] = noParent
	tb.frontier = append(tb.frontier[:0], src)
	for depth := 1; depth <= ttl && len(tb.frontier) > 0; depth++ {
		tb.next = tb.next[:0]
		for _, u := range tb.frontier {
			nbrs, eids := tb.cache.adj(u)
			nd := travNode{u: u, vStart: int32(len(tr.visits))}
			for k, v := range nbrs {
				if v == tb.parent[u] {
					continue
				}
				if u == src && entry >= 0 && v != entry {
					continue
				}
				nd.edges++
				if tb.seen[v] == tb.epoch {
					nd.dups++
					continue
				}
				tb.seen[v] = tb.epoch
				tb.parent[v] = u
				tr.visits = append(tr.visits, visit{v: v, parent: u, eid: eids[k], depth: int32(depth)})
				tb.next = append(tb.next, v)
			}
			nd.vCount = int32(len(tr.visits)) - nd.vStart
			if nd.edges > 0 {
				tr.nodes = append(tr.nodes, nd)
				tr.edgeEvents += uint64(nd.edges)
				tr.dupEvents += uint64(nd.dups)
			}
		}
		tb.frontier, tb.next = tb.next, tb.frontier
	}
	tb.builds++
	tb.visits += uint64(len(tr.visits))
	tb.visitHint = len(tr.visits)
	tb.nodeHint = len(tr.nodes)
	return tr
}

// PrewarmTrees runs the proposal phase for one tick: it builds the
// structural first-visit trees for every key the caller has declared it
// will flood this tick, spreading the builds over the given number of
// worker shards, and stores them into the traversal cache in canonical
// input order. Returns the number of trees built.
//
// Determinism contract: the stored trees are identical to what the
// serial engine's own build paths would construct (both are the unique
// structural BFS of the current connectivity), shard assignment is a
// pure hash of the key (rng.SubSeed — independent of scheduling), and
// the cache store runs serially in input-key order, so a prewarmed run
// is byte-identical to a serial run in everything except the cache's
// effectiveness counters. Keys already cached, offline sources, and
// non-positive TTLs are skipped. No-op when the cache is disabled or
// shards < 1.
func (e *Engine) PrewarmTrees(keys []TreeKey, shards int) int {
	if e.cache == nil || shards < 1 || len(keys) == 0 {
		return 0
	}
	c := e.cache
	c.ensure(e.ov)

	// Serial filter: normalize, dedup, drop keys that already have a
	// tree (including skip-marked ones — their trees exist; replay
	// refusal is per-tick budget state, not a build problem).
	if e.prewarmSeen == nil {
		e.prewarmSeen = make(map[treeKey]struct{}, len(keys))
	}
	want := e.prewarmWant[:0]
	for _, k := range keys {
		if k.TTL <= 0 || !e.ov.Online(k.Src) {
			continue
		}
		entry := k.Entry
		if entry < 0 {
			entry = noEntry
		}
		ik := treeKey{src: k.Src, entry: entry, ttl: k.TTL}
		if _, dup := e.prewarmSeen[ik]; dup {
			continue
		}
		e.prewarmSeen[ik] = struct{}{}
		if _, cached := c.trees[ik]; cached {
			continue
		}
		want = append(want, ik)
	}
	clear(e.prewarmSeen)
	e.prewarmWant = want
	if len(want) == 0 {
		return 0
	}
	if shards > len(want) {
		shards = len(want)
	}

	// Deterministic shard assignment: a pure hash of the key, so the
	// split never depends on input order or scheduling.
	if cap(e.prewarmAssign) < len(want) {
		e.prewarmAssign = make([]uint8, len(want))
	}
	assign := e.prewarmAssign[:len(want)]
	for i, k := range want {
		assign[i] = uint8(rng.SubSeed(shardSalt, uint64(uint32(k.src)), uint64(uint32(k.entry)), uint64(uint32(k.ttl))) % uint64(shards))
	}

	// Parallel proposal: each shard builds its keys into private
	// scratch; built[i] cells are disjoint per shard, the CSR snapshot
	// is read-only, and nothing else is shared.
	for len(e.builders) < shards {
		e.builders = append(e.builders, newTreeBuilder(e.ov.NumPeers()))
	}
	built := make([]*travTree, len(want))
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		tb := e.builders[s]
		tb.cache = c
		wg.Add(1)
		go func(s int, tb *treeBuilder) {
			defer wg.Done()
			for i, k := range want {
				if int(assign[i]) != s {
					continue
				}
				built[i] = tb.build(k.src, k.entry, int(k.ttl))
			}
		}(s, tb)
	}
	wg.Wait()

	// Serial commit: canonical input order, shard tallies merged once.
	for i, k := range want {
		c.store(k, built[i])
	}
	var visits uint64
	for s := 0; s < shards; s++ {
		visits += e.builders[s].visits
		e.builders[s].builds, e.builders[s].visits = 0, 0
	}
	c.stats.Prewarmed += uint64(len(want))
	e.telPrewarm.Add(uint64(len(want)))
	e.telPrewarmVisits.Add(visits)
	return len(want)
}

// prewarmState is the Engine's proposal-phase scratch, reused across
// ticks. All fields are touched only from the serial phase (the workers
// PrewarmTrees spawns receive their builder by value and never look
// back at the engine).
type prewarmState struct {
	prewarmSeen   map[treeKey]struct{}
	prewarmWant   []treeKey
	prewarmAssign []uint8
	builders      []*treeBuilder
	serialTB      *treeBuilder // lazily built; serves Engine.buildTree

	telPrewarm       *telemetry.Counter // trees built by the proposal phase
	telPrewarmVisits *telemetry.Counter // first-visit events in those trees
}
