// Traversal cache: the TTL-bounded first-visit tree of a flood is a
// pure function of overlay connectivity (who is online, which edges are
// cut) — not of budgets or delays — whenever every visited peer keeps
// forwarding. The cache memoizes that tree per (source, entry, TTL) and
// replays it across ticks, re-running the per-tick parts (capacity
// clipping, queueing delay, fair-share accounting) live on the cached
// visit order. Trees are recorded as a byproduct of a live flood (and
// kept only when that flood was provably structural — no forwarding
// peer clipped away); there is no separate build pass. overlay.Version()
// keys validity: any join/leave or cut/uncut (including partition
// apply/heal) bumps it and flushes the cache.
//
// Replay is only attempted when it provably reproduces the uncached
// traversal byte for byte:
//
//   - In the ideal counter plane the tree is always structural, so
//     replay is always sound.
//   - In the physical plane a capacity-dropped peer stops forwarding,
//     which would reshape the tree. Replay therefore prechecks the
//     cached visits against the current budget (each peer and each
//     directed edge is charged at most once per flood, so budget cells
//     read before any take of this flood keep their values until their
//     own visit) and falls back to the live BFS if any visit would
//     clip. Floating-point accumulation per visit mirrors the live
//     event order exactly — same adds, same values, same sequence.
package flood

import "ddpolice/internal/overlay"

// noEntry keys an unrestricted flood (FloodQuery, or FloodBatch with
// entry < 0) in the tree cache.
const noEntry PeerID = -1

// Cache tuning. Exposed as vars only to the package tests.
var (
	// cacheBuildAfterFloods: once the overlay version has been stable
	// for this many floods, trees are built on first use; below it, a
	// (src, entry, ttl) key must be requested twice before its tree is
	// built, so a churn-heavy run does not pay build costs for trees it
	// will never replay.
	cacheBuildAfterFloods uint64 = 192
	// cacheSkipAfterFails: consecutive physical-mode precheck failures
	// before a tree stops attempting replay until the next version
	// change (saturated regions fail the precheck every tick).
	cacheSkipAfterFails = 2
	// cacheMaxVisits bounds total cached tree memory (visit + node
	// entries across all trees); exceeding it flushes the whole cache.
	cacheMaxVisits = 1 << 21
)

// treeKey identifies one memoized traversal.
type treeKey struct {
	src   PeerID
	entry PeerID
	ttl   int32
}

// visit is one first-visit event: peer v first reached at hop depth via
// directed edge eid from parent.
type visit struct {
	v      PeerID
	parent PeerID
	eid    overlay.EdgeID
	depth  int32
}

// travNode is one forwarding peer in frontier order, with its edge
// events: edges counts every copy it puts on a link (first visits +
// duplicates), dups the duplicate-suppressed subset, and
// visits[vStart:vStart+vCount] its first-visit children.
type travNode struct {
	u      PeerID
	vStart int32
	vCount int32
	edges  int32
	dups   int32
}

// travTree is the memoized first-visit tree of one (src, entry, ttl).
type travTree struct {
	nodes      []travNode
	visits     []visit
	edgeEvents uint64 // Σ nodes[i].edges
	dupEvents  uint64 // Σ nodes[i].dups
	failStreak int
	skip       bool // replay disabled until next version flush
}

// CacheStats reports traversal-cache effectiveness counters.
type CacheStats struct {
	Hits      uint64 // floods served by tree replay
	Misses    uint64 // floods with no usable tree (includes builds)
	Builds    uint64 // trees constructed (organic + prewarmed)
	Prewarmed uint64 // trees built by the sharded proposal phase (subset of Builds)
	Fallbacks uint64 // replays abandoned by the physical-mode precheck
	Flushes   uint64 // whole-cache invalidations (version change or size cap)
	Trees     int    // trees currently cached
}

// travCache holds the version-keyed derived views: a CSR snapshot of
// the active adjacency (online, uncut neighbors with their directed
// edge ids — shared by every traversal, cached and live) and the
// memoized first-visit trees.
type travCache struct {
	version uint64
	synced  bool

	// CSR active adjacency: adjPeer/adjEdge[adjStart[v]:adjStart[v+1]]
	// list v's reachable neighbors in static neighbor order.
	adjStart []int32
	adjPeer  []PeerID
	adjEdge  []overlay.EdgeID

	trees        map[treeKey]*travTree
	seenOnce     map[treeKey]struct{}
	floodsStable uint64 // floods since the last version change
	cachedVisits int    // Σ len(visits)+len(nodes) over trees

	stats CacheStats
}

func newTravCache() *travCache {
	return &travCache{
		trees:    make(map[treeKey]*travTree),
		seenOnce: make(map[treeKey]struct{}),
	}
}

// sync revalidates the cache against the overlay, flushing every
// derived view if connectivity changed. Called once per flood.
func (c *travCache) sync(ov *overlay.Overlay) {
	c.floodsStable++
	c.ensure(ov)
}

// ensure revalidates without advancing the flood counter: the sharded
// proposal phase (Engine.PrewarmTrees) calls it once per tick, and
// counting those calls as floods would make the build-policy heuristics
// diverge between serial and sharded runs of the same seed.
func (c *travCache) ensure(ov *overlay.Overlay) {
	if c.synced && c.version == ov.Version() {
		return
	}
	c.version = ov.Version()
	c.synced = true
	c.floodsStable = 0
	c.flush()
	c.rebuildAdj(ov)
}

func (c *travCache) flush() {
	if len(c.trees) > 0 || len(c.seenOnce) > 0 {
		c.stats.Flushes++
	}
	clear(c.trees)
	clear(c.seenOnce)
	c.cachedVisits = 0
}

// rebuildAdj snapshots the active adjacency in CSR form so traversals
// read a flat slice instead of re-filtering (and binary-searching edge
// ids from) the static graph on every hop.
func (c *travCache) rebuildAdj(ov *overlay.Overlay) {
	n := ov.NumPeers()
	if cap(c.adjStart) < n+1 {
		c.adjStart = make([]int32, n+1)
	}
	c.adjStart = c.adjStart[:n+1]
	c.adjPeer = c.adjPeer[:0]
	c.adjEdge = c.adjEdge[:0]
	g := ov.Graph()
	for v := 0; v < n; v++ {
		id := PeerID(v)
		c.adjStart[v] = int32(len(c.adjPeer))
		if !ov.Online(id) {
			continue
		}
		for k, w := range g.Neighbors(id) {
			e := ov.EdgeID(id, k)
			if ov.Online(w) && !ov.EdgeCut(e) {
				c.adjPeer = append(c.adjPeer, w)
				c.adjEdge = append(c.adjEdge, e)
			}
		}
	}
	c.adjStart[n] = int32(len(c.adjPeer))
}

// adj returns u's active neighbors and their directed edge ids.
func (c *travCache) adj(u PeerID) ([]PeerID, []overlay.EdgeID) {
	lo, hi := c.adjStart[u], c.adjStart[u+1]
	return c.adjPeer[lo:hi], c.adjEdge[lo:hi]
}

// lookup returns the replayable tree for key, or nil with build=true
// when the caller should construct (and store) one now. Build policy:
// second use by default, first use once the topology has been stable
// for cacheBuildAfterFloods floods.
func (c *travCache) lookup(k treeKey) (tr *travTree, build bool) {
	if tr, ok := c.trees[k]; ok {
		if tr.skip {
			c.stats.Misses++
			return nil, false
		}
		return tr, false
	}
	c.stats.Misses++
	if c.floodsStable >= cacheBuildAfterFloods {
		return nil, true
	}
	if _, ok := c.seenOnce[k]; ok {
		return nil, true
	}
	c.seenOnce[k] = struct{}{}
	return nil, false
}

// store inserts a freshly built tree, flushing first if the size cap
// would be exceeded.
func (c *travCache) store(k treeKey, tr *travTree) {
	c.stats.Builds++
	sz := len(tr.visits) + len(tr.nodes)
	if c.cachedVisits+sz > cacheMaxVisits {
		c.flush()
	}
	c.trees[k] = tr
	c.cachedVisits += sz
}

// clone copies the recorded tree into exactly-sized storage for the
// cache to own; the engine's scratch recording tree is reused by the
// next flood.
func (tr *travTree) clone() *travTree {
	return &travTree{
		nodes:      append([]travNode(nil), tr.nodes...),
		visits:     append([]visit(nil), tr.visits...),
		edgeEvents: tr.edgeEvents,
		dupEvents:  tr.dupEvents,
	}
}

// replayFailed records a physical-mode precheck failure; after
// cacheSkipAfterFails in a row the tree stops attempting replay until
// the next version flush.
func (tr *travTree) replayFailed() {
	tr.failStreak++
	if tr.failStreak >= cacheSkipAfterFails {
		tr.skip = true
	}
}
