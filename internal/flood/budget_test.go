package flood

import (
	"testing"
)

// TestTakeClampsAtZero is the regression test for the budget underflow
// bug: a caller's precomputed arrival cap can go stale when a same-tick
// sibling arrival lands between the arrivalCap read and the take, and
// the unclamped subtraction drove Remaining below zero.
func TestTakeClampsAtZero(t *testing.T) {
	b := NewBudget(3, 10)
	// Stale-cap race: the cap (10) was read, then a sibling consumed 8,
	// then the original take lands with its stale amount.
	room := b.arrivalCap(1, 0)
	if room != 10 {
		t.Fatalf("arrivalCap = %v, want 10", room)
	}
	b.take(1, 0, 8)    // sibling arrival
	b.take(1, 0, room) // stale take: 10 into a cell holding 2
	if got := b.Remaining[1]; got != 0 {
		t.Fatalf("Remaining[1] = %v after overdraw, want 0 (clamped)", got)
	}
	if got := b.arrivalCap(1, 0); got != 0 {
		t.Fatalf("arrivalCap = %v on an exhausted cell, want 0", got)
	}
	// Utilization must saturate at 1, not blow past it from the deficit.
	if u := b.Utilization(1); u != 1 {
		t.Fatalf("Utilization = %v on an exhausted peer, want 1", u)
	}
}

// TestTakeClampsFairShareEdges covers the same underflow on the
// per-directed-edge sub-budgets of fair-share mode.
func TestTakeClampsFairShareEdges(t *testing.T) {
	ov := star(t, 4) // hub 0 with leaves 1..3
	b := NewBudget(4, 30)
	b.EnableFairShare(ov)
	// Hub has 3 active connections: 10 tokens per inbound edge.
	e, ok := ov.FindEdge(1, 0)
	if !ok {
		t.Fatal("edge 1->0 missing")
	}
	if room := b.arrivalCap(0, e); room != 10 {
		t.Fatalf("edge share = %v, want 10", room)
	}
	b.take(0, e, 25) // overdraw both the edge share and part of the peer total
	if got := b.edgeRemaining[e]; got != 0 {
		t.Fatalf("edgeRemaining = %v after overdraw, want 0", got)
	}
	if got := b.Remaining[0]; got != 5 {
		t.Fatalf("Remaining[0] = %v, want 5", got)
	}
	if got := b.arrivalCap(0, e); got != 0 {
		t.Fatalf("arrivalCap = %v on a drained edge, want 0", got)
	}
}

// TestUtilZeroCapacityIdle is the regression test for the queueing-delay
// bug: a zero-capacity peer with no traffic reported utilization 1.0,
// charging every flood path through it the maximum queueing delay.
func TestUtilZeroCapacityIdle(t *testing.T) {
	b := NewBudget(2, 0)
	if u := b.Utilization(0); u != 0 {
		t.Fatalf("Utilization = %v for an idle zero-capacity peer, want 0", u)
	}
	b.Refill() // prevUtil capture must not resurrect the 1.0 either
	if u := b.Utilization(0); u != 0 {
		t.Fatalf("Utilization = %v after Refill, want 0", u)
	}
	dm := DefaultDelayModel()
	if d := dm.hopDelay(b.Utilization(0)); d != dm.HopDelay {
		t.Fatalf("hop delay = %v through an idle zero-capacity peer, want base %v", d, dm.HopDelay)
	}
}
