// Package flood implements Gnutella-style capacity-constrained query
// flooding over the overlay: a query is broadcast and rebroadcast with
// a TTL, peers drop duplicate copies ("a query message will be dropped
// if the query message has visited the peer before", §2.2/[15]), and a
// peer whose processing capacity is exhausted discards queries instead
// of forwarding them — the mechanism by which overlay DDoS degrades the
// system.
//
// Two entry points share one BFS core:
//
//   - FloodQuery floods a single (good-peer) query discretely and
//     reports success against a replica set, hop counts and delay.
//   - FloodBatch floods an attacker's per-tick query volume as one
//     weighted fluid batch: all queries of the batch follow the same
//     first-visit tree, and per-peer capacity clips the surviving
//     weight. This is the fluid limit of flooding N identical-topology
//     queries and lets the simulator handle 20,000 queries/min/agent
//     without per-message events.
package flood

import (
	"ddpolice/internal/overlay"
	"ddpolice/internal/telemetry"
	"ddpolice/internal/topology"
)

// PeerID aliases the overlay peer identifier.
type PeerID = overlay.PeerID

// noParent marks the flood source, which has no inbound edge.
const noParent PeerID = -1

// Budget tracks the per-tick processing tokens of every peer. The
// simulator refills it each tick from the peers' capacity model.
//
// By default tokens are taken first-come-first-served. EnableFairShare
// switches to the related-work baseline the paper contrasts DD-POLICE
// with (Daswani & Garcia-Molina's application-layer load balancing,
// reference [21]): each peer divides its capacity evenly across its
// incoming connections, so one flooding neighbor can only exhaust its
// own share and "clients get a fair share of available resources".
type Budget struct {
	// Remaining tokens this tick, indexed by peer.
	Remaining []float64
	// PerTick is the full refill amount, used for utilization-based
	// queueing delay.
	PerTick []float64
	// prevUtil is each peer's utilization over the last completed tick,
	// captured at Refill. Queueing delay uses it because mid-tick
	// utilization systematically understates a tick's true load.
	prevUtil []float64

	// Fair-share mode: per-directed-edge sub-budgets for the receiving
	// endpoint of each edge. edgeRemaining[e] caps what may arrive over
	// e this tick; the peer-level Remaining still applies on top.
	// fairVersion keys the shares to the overlay mutation counter:
	// churn and cuts change each peer's active connection count, so the
	// per-connection split is recomputed at the first Refill after any
	// connectivity change (previously the split was sized from the
	// static degree once at enable time, leaving stale shares on
	// rewired links and uncapped budget on links of rejoined peers).
	ov            *overlay.Overlay
	edgeRemaining []float64
	edgePerTick   []float64
	fairVersion   uint64
	// fairDirty forces a share rebuild at the next Refill after a
	// capacity change (ReserveControl, SetCapacity): those move PerTick
	// without touching the overlay mutation counter, so version
	// comparison alone would leave the per-edge split stale.
	fairDirty bool

	// Touched-peer tracking makes Refill O(touched) instead of O(N):
	// take/SetCapacity/Touch record each peer (and, in fair mode, each
	// edge) whose tokens moved this tick, deduplicated by epoch marks.
	// An untouched peer still holds Remaining == PerTick, so skipping
	// it at Refill is exactly the full scan's no-op (utilization 0,
	// reset to the value it already has). ReserveControl flips
	// refillAll for one full pass. Peers/edges with a sub-1.0 per-tick
	// allowance live on the frac lists and are refilled every tick so
	// fractional remainders accumulate (see refillPeer).
	touched     []PeerID
	touchedPrev []PeerID
	mark        []uint32
	etouched    []overlay.EdgeID
	emark       []uint32
	epoch       uint32
	refillAll   bool
	prevAll     bool // prevUtil may be nonzero anywhere; clear all next Refill
	fracPeers   []PeerID
	fracMark    []bool
	fracEdges   []overlay.EdgeID
}

// NewBudget allocates a budget for n peers with a uniform per-tick
// token allowance.
func NewBudget(n int, perTick float64) *Budget {
	b := &Budget{
		Remaining: make([]float64, n),
		PerTick:   make([]float64, n),
		prevUtil:  make([]float64, n),
		mark:      make([]uint32, n),
		fracMark:  make([]bool, n),
		epoch:     1,
	}
	for i := range b.Remaining {
		b.Remaining[i] = perTick
		b.PerTick[i] = perTick
		b.noteFrac(PeerID(i))
	}
	return b
}

// noteFrac keeps p's membership in the sub-1.0-allowance list current.
// Entries are removed lazily (fracMark cleared; the Refill sweep skips
// them) and may be re-appended after a toggle, so the sweep also
// deduplicates by epoch mark.
func (b *Budget) noteFrac(p PeerID) {
	frac := b.PerTick[p] > 0 && b.PerTick[p] < 1
	if frac && !b.fracMark[p] {
		b.fracMark[p] = true
		b.fracPeers = append(b.fracPeers, p)
	} else if !frac {
		b.fracMark[p] = false
	}
}

// Touch marks peer p as mutated this tick so the next Refill resets
// it. take and SetCapacity call it internally; callers that write
// Remaining directly (tests, external capacity models) must call it
// themselves or the O(touched) refill will skip the peer.
func (b *Budget) Touch(p PeerID) {
	if b.mark[p] != b.epoch {
		b.mark[p] = b.epoch
		b.touched = append(b.touched, p)
	}
}

// touchEdge is Touch for a fair-share arrival edge.
func (b *Budget) touchEdge(e overlay.EdgeID) {
	if b.emark[e] != b.epoch {
		b.emark[e] = b.epoch
		b.etouched = append(b.etouched, e)
	}
}

// EnableFairShare activates the [21]-style per-connection capacity
// split over ov's edges: the receiver of directed edge u->v accepts at
// most capacity(v)/activeDegree(v) per tick from u. The split follows
// the live overlay: Refill recomputes it whenever the overlay mutation
// counter has moved.
func (b *Budget) EnableFairShare(ov *overlay.Overlay) {
	b.ov = ov
	b.edgeRemaining = make([]float64, ov.NumDirectedEdges())
	b.edgePerTick = make([]float64, ov.NumDirectedEdges())
	b.emark = make([]uint32, ov.NumDirectedEdges())
	b.rebuildFairShare()
	copy(b.edgeRemaining, b.edgePerTick)
}

// rebuildFairShare recomputes every per-edge arrival share from the
// overlay's current connectivity: capacity(v) divided across v's
// *active* connections (online neighbor, edge not cut). Inactive edges
// get a zero share, so a link that later reactivates is recapped by
// the rebuild its reactivation triggers rather than inheriting stale
// or uncapped budget.
func (b *Budget) rebuildFairShare() {
	b.fairVersion = b.ov.Version()
	for i := range b.edgePerTick {
		b.edgePerTick[i] = 0
	}
	g := b.ov.Graph()
	for v := 0; v < b.ov.NumPeers(); v++ {
		id := PeerID(v)
		deg := b.ov.ActiveDegree(id)
		if deg == 0 {
			continue
		}
		share := b.PerTick[v] / float64(deg)
		for k, w := range g.Neighbors(id) {
			// Edge id of v->neighbor; the *incoming* share for v over
			// that link is tracked on the reverse edge, but since the
			// share is symmetric per endpoint we track arrival budget
			// on the edge pointing *to* v: reverse of v's k-th edge.
			e := b.ov.EdgeID(id, k)
			if !b.ov.Online(w) || b.ov.EdgeCut(e) {
				continue
			}
			b.edgePerTick[b.ov.Reverse(e)] = share
		}
	}
	// Arrival shares below one token accumulate across ticks (see
	// edgeRefill); rebuild that list alongside the shares.
	b.fracEdges = b.fracEdges[:0]
	for e, p := range b.edgePerTick {
		if p > 0 && p < 1 {
			b.fracEdges = append(b.fracEdges, overlay.EdgeID(e))
		}
	}
}

// FairShare reports whether per-connection splitting is active.
func (b *Budget) FairShare() bool { return b.ov != nil }

// ReserveControl carves a control-plane reserve out of every peer's
// budget: the query flood is metered against the remaining (1-frac)
// capacity from the next refill on. The overload plane's simulator
// mirror calls this once at setup; the reserve itself is not modeled
// as tokens here — control traffic is fluid in the sim — but the
// query plane paying for it is what raises query drop rates while
// control loss stays capped.
func (b *Budget) ReserveControl(frac float64) {
	if frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	for i := range b.PerTick {
		b.PerTick[i] *= 1 - frac
		if b.Remaining[i] > b.PerTick[i] {
			b.Remaining[i] = b.PerTick[i]
		}
		b.noteFrac(PeerID(i))
	}
	b.fairDirty = true
	b.refillAll = true // every peer moved; one full pass next Refill
}

// SetCapacity replaces peer p's per-tick allowance (negative clamps to
// zero), taking effect immediately on the current tick's remaining
// tokens and on the fair-share split at the next refill. The faults
// plane uses it for capacity brownouts.
func (b *Budget) SetCapacity(p PeerID, perTick float64) {
	if perTick < 0 {
		perTick = 0
	}
	b.PerTick[p] = perTick
	if b.Remaining[p] > perTick {
		b.Remaining[p] = perTick
	}
	b.noteFrac(p)
	b.Touch(p)
	b.fairDirty = true
}

// arrivalCap returns how much may still arrive at v via the directed
// edge e (u->v) this tick, bounded by both the edge share (fair mode)
// and the peer's remaining total. Never negative: a cell that was
// overdrawn (see take) reports zero room, not negative room that would
// push a caller's accepted mass below zero.
func (b *Budget) arrivalCap(v PeerID, e overlay.EdgeID) float64 {
	room := b.Remaining[v]
	if b.ov != nil && b.edgeRemaining[e] < room {
		room = b.edgeRemaining[e]
	}
	if room < 0 {
		return 0
	}
	return room
}

// take consumes amount from v's budget for an arrival via edge e,
// clamping at zero. Callers cap amount by arrivalCap first, but a
// precomputed cap can go stale when a same-tick sibling arrival lands
// between the read and the take; without the clamp that drives
// Remaining/edgeRemaining negative, and the deficit silently steals
// capacity from the next refill's utilization accounting.
func (b *Budget) take(v PeerID, e overlay.EdgeID, amount float64) {
	b.Touch(v)
	if r := b.Remaining[v] - amount; r > 0 {
		b.Remaining[v] = r
	} else {
		b.Remaining[v] = 0
	}
	if b.ov != nil {
		b.touchEdge(e)
		if r := b.edgeRemaining[e] - amount; r > 0 {
			b.edgeRemaining[e] = r
		} else {
			b.edgeRemaining[e] = 0
		}
	}
}

// refillPeer resets v's tokens for the next tick. An allowance of at
// least one token refills exactly (leftovers discarded, the original
// semantics); a sub-1.0 allowance instead accumulates its fractional
// remainder up to one whole token, so a peer granted 0.5 tokens/tick
// admits a query every other tick instead of rounding to zero and
// starving forever (the discrete flood path needs arrivalCap >= 1).
func (b *Budget) refillPeer(v PeerID) {
	p := b.PerTick[v]
	if p > 0 && p < 1 {
		if r := b.Remaining[v] + p; r < 1 {
			b.Remaining[v] = r
		} else {
			b.Remaining[v] = 1
		}
		return
	}
	b.Remaining[v] = p
}

// edgeRefill is refillPeer for a fair-share arrival edge.
func (b *Budget) edgeRefill(e overlay.EdgeID) {
	p := b.edgePerTick[e]
	if p > 0 && p < 1 {
		if r := b.edgeRemaining[e] + p; r < 1 {
			b.edgeRemaining[e] = r
		} else {
			b.edgeRemaining[e] = 1
		}
		return
	}
	b.edgeRemaining[e] = p
}

// Refill captures each touched peer's utilization for the ending tick,
// then resets its tokens to the per-tick allowance. Untouched peers
// need no work: their Remaining already equals PerTick, so their
// utilization is exactly 0 and the reset is the value they hold —
// which makes Refill O(touched + frac) rather than O(N). Sub-1.0
// allowances are visited every tick so their remainders accumulate.
func (b *Budget) Refill() {
	if b.refillAll {
		// ReserveControl moved every peer's allowance: one full pass.
		b.refillAll = false
		for i := range b.Remaining {
			b.prevUtil[i] = b.utilNow(PeerID(i))
			b.refillPeer(PeerID(i))
		}
		b.touched = b.touched[:0]
		b.touchedPrev = b.touchedPrev[:0]
		b.prevAll = true
	} else {
		// Clear the previous tick's utilization captures, then fold in
		// this tick's.
		if b.prevAll {
			b.prevAll = false
			for i := range b.prevUtil {
				b.prevUtil[i] = 0
			}
		} else {
			for _, v := range b.touchedPrev {
				b.prevUtil[v] = 0
			}
		}
		for _, v := range b.touched {
			b.prevUtil[v] = b.utilNow(v)
			b.refillPeer(v)
		}
		// Accumulating peers not touched this tick still gain their
		// fractional allowance. Marks double as the dedup against both
		// the touched pass above and stale duplicate list entries.
		for _, v := range b.fracPeers {
			if !b.fracMark[v] || b.mark[v] == b.epoch {
				continue
			}
			b.mark[v] = b.epoch
			b.refillPeer(v)
		}
		b.touchedPrev, b.touched = b.touched, b.touchedPrev[:0]
	}
	if b.ov != nil {
		if b.fairDirty || b.fairVersion != b.ov.Version() {
			b.rebuildFairShare()
			copy(b.edgeRemaining, b.edgePerTick)
			b.etouched = b.etouched[:0]
		} else {
			for _, e := range b.etouched {
				b.edgeRefill(e)
			}
			b.etouched = b.etouched[:0]
			for _, e := range b.fracEdges {
				if b.emark[e] == b.epoch {
					continue
				}
				b.emark[e] = b.epoch
				b.edgeRefill(e)
			}
		}
	}
	b.fairDirty = false
	b.epoch++
}

func (b *Budget) utilNow(p PeerID) float64 {
	full := b.PerTick[p]
	if full <= 0 {
		// A zero-capacity peer that processes nothing is idle, not
		// saturated: reporting u=1 here used to charge every flood path
		// through it the maximum queueing delay despite zero traffic.
		return 0
	}
	u := 1 - b.Remaining[p]/full
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Utilization returns peer p's load estimate for queueing-delay
// purposes: the larger of the last completed tick's utilization and the
// current tick's consumption so far.
func (b *Budget) Utilization(p PeerID) float64 {
	u := b.utilNow(p)
	if b.prevUtil[p] > u {
		return b.prevUtil[p]
	}
	return u
}

// DelayModel converts a flood path into a response-time estimate using
// an M/M/1-style queueing term per hop:
//
//	hop delay = HopDelay * (1 + min(MaxQueue, QueueFactor * u/(1-u)))
//
// where u is the visited peer's budget utilization.
type DelayModel struct {
	// HopDelay is the base one-way per-hop latency in seconds.
	HopDelay float64
	// QueueFactor scales the queueing term.
	QueueFactor float64
	// MaxQueue clamps the queueing multiplier at saturation.
	MaxQueue float64
}

// DefaultDelayModel returns the calibration used by the experiments:
// 50 ms per overlay hop with M/M/1 queueing inflation clamped at 40x at
// full saturation — calibrated so that the paper's ~100-agent-equivalent
// attack inflates mean response time by its reported ~2.4x.
func DefaultDelayModel() DelayModel {
	return DelayModel{HopDelay: 0.05, QueueFactor: 0.3, MaxQueue: 40}
}

// hopDelay returns the delay contribution of one hop at utilization u.
func (dm DelayModel) hopDelay(u float64) float64 {
	q := 0.0
	if u >= 1 {
		q = dm.MaxQueue
	} else {
		q = dm.QueueFactor * u / (1 - u)
		if q > dm.MaxQueue {
			q = dm.MaxQueue
		}
	}
	return dm.HopDelay * (1 + q)
}

// QueryResult reports one discrete query flood.
type QueryResult struct {
	Processed     int     // peers that processed (looked up + forwarded) the query
	QueryMessages float64 // query copies sent over edges (incl. duplicates)
	DupMessages   float64 // copies discarded as duplicates
	CapacityDrops int     // copies discarded because the receiver was saturated
	Hit           bool    // at least one replica holder processed the query
	HitHolders    int     // number of holders reached
	FirstHitHops  int     // overlay hops to the nearest responder (-1 if no hit)
	HitMessages   float64 // QueryHit messages routed back along reverse paths
	ResponseDelay float64 // seconds until the first response arrives (0 if no hit)
}

// BatchResult reports one fluid batch flood.
type BatchResult struct {
	QueryMessages float64 // total query copies (weighted, incl. duplicates)
	DupMessages   float64
	CapacityDrops float64 // weighted copies dropped at saturated peers
	ProcessedMass float64 // Σ over peers of processed weight
	PeersReached  int     // peers that processed any positive weight
}

// CounterMode selects how the per-edge Q counters (and message totals)
// account for capacity-dropped queries.
type CounterMode int

// Counter accounting modes.
const (
	// CounterIdeal is the paper's measurement plane: a query's flood
	// tree is counted as if every peer forwarded everything it
	// received — the assumption underlying Definitions 2.1-2.3 and the
	// Figure 2 analysis ("we assume ... all the incoming queries are
	// sent out"). Capacity still limits which queries are actually
	// *resolved* (looked up, answered), so success and response time
	// degrade under attack, but the monitoring counters see the
	// idealized flows that make the General/Single indicators sum to
	// issued/q0.
	CounterIdeal CounterMode = iota
	// CounterPhysical counts only what a capacity-limited peer could
	// actually forward. Under network-wide saturation this clips every
	// peer's outflow below the (k-1)*inflow identity and the indicators
	// go negative for attackers and good peers alike — an effect the
	// paper does not model, preserved here for the ablation study.
	CounterPhysical
)

// Engine holds the reusable BFS state for one simulation replica. Not
// safe for concurrent use.
type Engine struct {
	ov   *overlay.Overlay
	mode CounterMode

	// Telemetry event counters (nil until AttachTelemetry; nil-safe).
	// They count BFS events, not fluid weight: one edge traversal per
	// neighbor considered, one suppression per duplicate arrival, one
	// drop per saturated-receiver clip.
	telFloods *telemetry.Counter // floods started (queries + batches)
	telEdges  *telemetry.Counter // edges traversed (query copies put on a link)
	telDups   *telemetry.Counter // duplicate suppressions
	telDrops  *telemetry.Counter // budget (capacity) drop events

	// Latency/shape distributions, recorded per successful query.
	telHitHops *telemetry.Histogram // hops to the nearest responder
	telDelay   *telemetry.Histogram // first-response delay, ms

	epoch    uint32
	seen     []uint32  // epoch marks: peer received the query
	hop      []int32   // first-visit hop count
	parent   []PeerID  // BFS parent (valid for current epoch)
	delay    []float64 // accumulated one-way delay along first-visit path
	mass     []float64 // batch mode: surviving (processed) weight at peer
	frontier []PeerID
	next     []PeerID
	nbuf     []PeerID

	// cache is the topology-versioned traversal cache (see cache.go);
	// nil when disabled. accBuf carries per-visit accepted mass from a
	// batch replay's read-only precheck pass to its mutation pass. rec
	// is the scratch tree live floods record into when the build policy
	// asks for one (see resetRec).
	cache  *travCache
	accBuf []float64
	rec    travTree

	// prewarmState is the sharded proposal phase's scratch and
	// counters (see shard.go).
	prewarmState

	// tv, when non-nil, receives every first-visit event of discrete
	// query floods (see SetTraceVisitor). One pointer check per visit
	// when disarmed; the cached replay and the live BFS emit identical
	// visit sequences, so traces are byte-identical across cache
	// hits and misses.
	tv TraceVisitFn
}

// VisitOutcome classifies one first visit of a traced flood.
type VisitOutcome uint8

// Visit outcomes.
const (
	// VisitForwarded: the peer processed the query and keeps flooding.
	VisitForwarded VisitOutcome = iota
	// VisitDropped: the copy was discarded at this saturated peer.
	VisitDropped
	// VisitDead: the copy's upstream path had already died; the visit
	// exists only in the ideal counter plane's accounting.
	VisitDead
)

// TraceVisitFn receives one first-visit event: the visited peer, its
// BFS parent, the hop depth, and what happened to the copy. Duplicate
// copies are not reported (the cached replay cannot re-enumerate
// them); their counts live in QueryResult.DupMessages.
type TraceVisitFn func(v, parent PeerID, depth int32, outcome VisitOutcome)

// SetTraceVisitor arms (or, with nil, disarms) the per-visit trace
// hook for subsequent discrete query floods. The caller owns the
// arming window — typically around a single FloodQuery of a sampled
// query. Batch floods are not traced.
func (e *Engine) SetTraceVisitor(fn TraceVisitFn) { e.tv = fn }

// NewEngine creates a flood engine over ov using the physical counter
// plane (the experiments' default); use SetCounterMode to switch to the
// idealized plane for ablations.
func NewEngine(ov *overlay.Overlay) *Engine {
	n := ov.NumPeers()
	return &Engine{
		ov:     ov,
		mode:   CounterPhysical,
		seen:   make([]uint32, n),
		hop:    make([]int32, n),
		parent: make([]PeerID, n),
		delay:  make([]float64, n),
		mass:   make([]float64, n),
		cache:  newTravCache(),
	}
}

// SetTraversalCache enables or disables the topology-versioned
// traversal cache. It is on by default; results are byte-identical
// either way, so disabling exists for A/B verification and the perf
// gate's uncached baseline.
func (e *Engine) SetTraversalCache(on bool) {
	if on && e.cache == nil {
		e.cache = newTravCache()
	} else if !on {
		e.cache = nil
	}
}

// TraversalCacheEnabled reports whether the traversal cache is active.
func (e *Engine) TraversalCacheEnabled() bool { return e.cache != nil }

// CacheStats returns traversal-cache effectiveness counters (zero
// values when the cache is disabled).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	s := e.cache.stats
	s.Trees = len(e.cache.trees)
	return s
}

// AttachTelemetry wires the engine's hot-path event counters into reg
// under the "flood." prefix. A nil registry detaches (counters become
// no-ops again).
func (e *Engine) AttachTelemetry(reg *telemetry.Registry) {
	e.telFloods = reg.Counter("flood.floods")
	e.telEdges = reg.Counter("flood.edges_traversed")
	e.telDups = reg.Counter("flood.dup_suppressed")
	e.telDrops = reg.Counter("flood.budget_drops")
	e.telHitHops = reg.Histogram("flood.hit_hops")
	e.telDelay = reg.Histogram("flood.response_delay_ms")
	e.telPrewarm = reg.Counter("flood.prewarm_trees")
	e.telPrewarmVisits = reg.Counter("flood.prewarm_visits")
}

// SetCounterMode switches the counter accounting plane.
func (e *Engine) SetCounterMode(m CounterMode) { e.mode = m }

// Mode returns the current counter accounting plane.
func (e *Engine) Mode() CounterMode { return e.mode }

func (e *Engine) bump() {
	e.epoch++
	if e.epoch == 0 { // wrapped: clear marks once every 2^32 floods
		for i := range e.seen {
			e.seen[i] = 0
		}
		e.epoch = 1
	}
}

// activeAdj returns u's active neighbors, plus their directed edge ids
// when the traversal cache's CSR snapshot is available (nil eids means
// the caller must FindEdge).
func (e *Engine) activeAdj(u PeerID) ([]PeerID, []overlay.EdgeID) {
	if e.cache != nil {
		return e.cache.adj(u)
	}
	e.nbuf = e.ov.ActiveNeighbors(u, e.nbuf[:0])
	return e.nbuf, nil
}

// resetRec clears and returns the engine's scratch recording tree.
// Trees are recorded as a byproduct of the live BFS (no second
// structural pass): the live traversal IS the structural first-visit
// tree whenever every visited peer kept forwarding, and the dispatcher
// clones the scratch into the cache only when that held. Recording into
// a reused scratch keeps the no-store case (saturated floods that clip
// peers) allocation-free.
func (e *Engine) resetRec() *travTree {
	e.rec.nodes = e.rec.nodes[:0]
	e.rec.visits = e.rec.visits[:0]
	e.rec.edgeEvents, e.rec.dupEvents = 0, 0
	return &e.rec
}

// buildTree runs the purely structural TTL-bounded BFS (parent skip +
// duplicate suppression, no budgets) and records the first-visit tree
// in frontier order. Used when a flood that should seed the cache was
// capacity-clipped, so its own traversal was not structural: the tree
// is built separately and kept for later replay attempts (each
// prechecked against the then-current budget). The BFS itself lives on
// treeBuilder (shard.go) so the sharded proposal phase runs the exact
// same construction; this serial entry point uses a dedicated builder,
// leaving the live flood's epoch/seen marks untouched.
func (e *Engine) buildTree(src, entry PeerID, ttl int) *travTree {
	if e.serialTB == nil {
		e.serialTB = newTreeBuilder(e.ov.NumPeers())
	}
	e.serialTB.cache = e.cache
	return e.serialTB.build(src, entry, ttl)
}

// replayQuery re-runs one discrete flood over the cached tree. In the
// physical plane it first prechecks that no cached visit would be
// capacity-clipped (a clipped peer stops forwarding, which would
// reshape the tree); each peer and directed edge is charged at most
// once per flood, so the cells it reads keep their values until their
// own visit and the precheck is exact. Returns false (with no state
// mutated) when the flood must fall back to the live BFS.
func (e *Engine) replayQuery(tr *travTree, src PeerID, budget *Budget, dm DelayModel, res *QueryResult) bool {
	if e.mode == CounterPhysical {
		for i := range tr.visits {
			vt := &tr.visits[i]
			if budget.arrivalCap(vt.v, vt.eid) < 1 {
				tr.replayFailed()
				e.cache.stats.Fallbacks++
				return false
			}
		}
	}
	tr.failStreak = 0
	e.bump()
	e.seen[src] = e.epoch
	e.hop[src] = 0
	e.parent[src] = noParent
	e.delay[src] = 0
	res.QueryMessages = float64(tr.edgeEvents)
	res.DupMessages = float64(tr.dupEvents)
	e.telEdges.Add(tr.edgeEvents)
	e.telDups.Add(tr.dupEvents)
	for i := range tr.visits {
		vt := &tr.visits[i]
		e.ov.AddTraffic(vt.eid, 1)
		e.seen[vt.v] = e.epoch
		e.hop[vt.v] = vt.depth
		e.parent[vt.v] = vt.parent
		surviving := e.delay[vt.parent] >= 0
		outcome := VisitForwarded
		if !surviving {
			outcome = VisitDead
		}
		if surviving && budget.arrivalCap(vt.v, vt.eid) < 1 {
			res.CapacityDrops++
			e.telDrops.Inc()
			surviving = false
			outcome = VisitDropped
		}
		if surviving {
			budget.take(vt.v, vt.eid, 1)
			res.Processed++
			e.delay[vt.v] = e.delay[vt.parent] + dm.hopDelay(budget.Utilization(vt.v))
		} else {
			e.delay[vt.v] = -1
		}
		if e.tv != nil {
			e.tv(vt.v, vt.parent, vt.depth, outcome)
		}
	}
	return true
}

// FloodQuery floods one discrete query from src with the given TTL.
// holders is the replica set of the searched object (used for success
// accounting; the issuer itself is not counted as a responder). Each
// processing peer consumes one token from budget. Edge traffic counters
// in the overlay are incremented for every query copy sent.
func (e *Engine) FloodQuery(src PeerID, ttl int, holders []topology.NodeID, budget *Budget, dm DelayModel) QueryResult {
	res := QueryResult{FirstHitHops: -1}
	if ttl <= 0 || !e.ov.Online(src) {
		return res
	}
	e.telFloods.Inc()
	if e.cache != nil {
		e.cache.sync(e.ov)
		k := treeKey{src: src, entry: noEntry, ttl: int32(ttl)}
		tr, build := e.cache.lookup(k)
		if tr != nil && e.replayQuery(tr, src, budget, dm, &res) {
			e.cache.stats.Hits++
			e.scoreHolders(src, holders, dm, &res)
			return res
		}
		if tr == nil && build {
			rec := e.resetRec()
			e.liveQuery(src, ttl, budget, dm, &res, rec)
			e.scoreHolders(src, holders, dm, &res) // before buildTree clobbers the marks
			if e.mode == CounterIdeal || res.CapacityDrops == 0 {
				// The flood was structural: the recording is the tree.
				e.cache.store(k, rec.clone())
			} else {
				// A capacity-dropped peer stopped forwarding, so the
				// traversal was not structural; build the tree
				// separately and keep it for later replay attempts.
				e.cache.store(k, e.buildTree(src, noEntry, ttl))
			}
			return res
		}
	}
	e.liveQuery(src, ttl, budget, dm, &res, nil)
	e.scoreHolders(src, holders, dm, &res)
	return res
}

// liveQuery is the uncached BFS; it still reads the CSR adjacency
// snapshot when the cache is enabled (the snapshot is connectivity
// state, not traversal memoization, so it is always sound). A non-nil
// rec collects the first-visit tree in traversal order as it runs.
func (e *Engine) liveQuery(src PeerID, ttl int, budget *Budget, dm DelayModel, res *QueryResult, rec *travTree) {
	e.bump()
	e.seen[src] = e.epoch
	e.hop[src] = 0
	e.parent[src] = noParent
	e.delay[src] = 0
	e.frontier = append(e.frontier[:0], src)

	for depth := 1; depth <= ttl && len(e.frontier) > 0; depth++ {
		e.next = e.next[:0]
		for _, u := range e.frontier {
			nbrs, eids := e.activeAdj(u)
			var nd travNode
			if rec != nil {
				nd = travNode{u: u, vStart: int32(len(rec.visits))}
			}
			for k, v := range nbrs {
				if v == e.parent[u] {
					continue // never send back where it came from
				}
				res.QueryMessages++
				e.telEdges.Inc()
				if rec != nil {
					nd.edges++
				}
				if e.seen[v] == e.epoch {
					// Duplicate copy: wire traffic, but discarded before
					// the Out_query/In_query monitors count it (the
					// paper's no-duplication accounting, Fig 2).
					res.DupMessages++
					e.telDups.Inc()
					if rec != nil {
						nd.dups++
					}
					continue
				}
				eid := overlay.EdgeID(0)
				if eids != nil {
					eid = eids[k]
				} else {
					eid, _ = e.ov.FindEdge(u, v)
				}
				if rec != nil {
					rec.visits = append(rec.visits, visit{v: v, parent: u, eid: eid, depth: int32(depth)})
				}
				e.ov.AddTraffic(eid, 1)
				e.seen[v] = e.epoch
				e.hop[v] = int32(depth)
				e.parent[v] = u
				surviving := e.delay[u] >= 0
				outcome := VisitForwarded
				if !surviving {
					outcome = VisitDead
				}
				if surviving && budget.arrivalCap(v, eid) < 1 {
					res.CapacityDrops++
					e.telDrops.Inc()
					surviving = false
					outcome = VisitDropped
				}
				if e.tv != nil {
					e.tv(v, u, int32(depth), outcome)
				}
				if surviving {
					budget.take(v, eid, 1)
					res.Processed++
					e.delay[v] = e.delay[u] + dm.hopDelay(budget.Utilization(v))
				} else {
					// The real query died upstream or here; in the
					// ideal counter plane the message flow continues
					// for accounting, in the physical plane it stops.
					e.delay[v] = -1
					if e.mode == CounterPhysical {
						continue
					}
				}
				e.next = append(e.next, v)
			}
			if rec != nil && nd.edges > 0 {
				nd.vCount = int32(len(rec.visits)) - nd.vStart
				rec.nodes = append(rec.nodes, nd)
				rec.edgeEvents += uint64(nd.edges)
				rec.dupEvents += uint64(nd.dups)
			}
		}
		e.frontier, e.next = e.next, e.frontier
	}
}

// scoreHolders runs the success accounting against the replica set,
// reading the seen/hop/delay marks left by the traversal (live or
// replayed).
func (e *Engine) scoreHolders(src PeerID, holders []topology.NodeID, dm DelayModel, res *QueryResult) {
	for _, h := range holders {
		if h == src {
			continue // searching peers don't count their own copy
		}
		if e.seen[h] == e.epoch && e.delay[h] >= 0 && e.hop[h] > 0 {
			res.HitHolders++
			res.HitMessages += float64(e.hop[h]) // QueryHit returns along the reverse path
			if !res.Hit || int(e.hop[h]) < res.FirstHitHops {
				res.Hit = true
				res.FirstHitHops = int(e.hop[h])
				// Round trip: accumulated forward delay plus the return
				// path at base latency (QueryHits are few and cheap).
				res.ResponseDelay = e.delay[h] + float64(e.hop[h])*dm.HopDelay
			}
		}
	}
	if res.Hit {
		e.telHitHops.Observe(uint64(res.FirstHitHops))
		e.telDelay.Observe(uint64(res.ResponseDelay * 1000))
	}
}

// FloodBatch floods weight identical-routing bogus queries from src.
// entry optionally restricts the batch to enter the overlay through a
// single neighbor (the paper's Fig 1 attack pattern, where a bad peer
// issues *different* queries to each of its neighbors: the per-neighbor
// sub-batches never duplicate-cancel, so each is its own batch with
// entry = that neighbor). Pass entry = -1 for standard flooding to all
// neighbors.
//
// The source's own generation does not consume its processing budget;
// every downstream peer clips the surviving weight by its remaining
// tokens.
func (e *Engine) FloodBatch(src PeerID, entry PeerID, ttl int, weight float64, budget *Budget) BatchResult {
	var res BatchResult
	if ttl <= 0 || weight <= 0 || !e.ov.Online(src) {
		return res
	}
	e.telFloods.Inc()
	if e.cache != nil {
		e.cache.sync(e.ov)
		key := entry
		if key < 0 {
			key = noEntry // normalize "any negative = unrestricted"
		}
		k := treeKey{src: src, entry: key, ttl: int32(ttl)}
		tr, build := e.cache.lookup(k)
		if tr != nil && e.replayBatch(tr, src, weight, budget, &res) {
			e.cache.stats.Hits++
			return res
		}
		if tr == nil && build {
			rec := e.resetRec()
			// Partial clips keep the tree shape (the peer forwards its
			// reduced mass); only a zero-clip removes a subtree, and
			// only in the physical plane.
			zeroClip := e.liveBatch(src, entry, ttl, weight, budget, &res, rec)
			if e.mode == CounterIdeal || !zeroClip {
				e.cache.store(k, rec.clone())
			} else {
				e.cache.store(k, e.buildTree(src, entry, ttl))
			}
			return res
		}
	}
	e.liveBatch(src, entry, ttl, weight, budget, &res, nil)
	return res
}

// replayBatch re-runs one fluid batch over the cached tree in two
// passes. Pass 1 is read-only on the budget: it computes the accepted
// mass of every cached visit (exact, because each peer/edge budget
// cell is charged at most once per flood) and, in the physical plane,
// bails out if any visit would be clipped to zero — a zero-mass peer
// stops forwarding and the tree would diverge. Pass 2 applies the
// mutations in the live event order, add for add, so floating-point
// accumulation is byte-identical to the uncached path.
func (e *Engine) replayBatch(tr *travTree, src PeerID, weight float64, budget *Budget, res *BatchResult) bool {
	if cap(e.accBuf) < len(tr.visits) {
		e.accBuf = make([]float64, len(tr.visits))
	}
	acc := e.accBuf[:len(tr.visits)]
	e.mass[src] = weight
	for _, nd := range tr.nodes {
		s := e.mass[nd.u]
		for j := nd.vStart; j < nd.vStart+nd.vCount; j++ {
			vt := &tr.visits[j]
			a := s
			if room := budget.arrivalCap(vt.v, vt.eid); a > room {
				a = room
			}
			if a < 0 {
				a = 0
			}
			if e.mode == CounterPhysical && a <= 0 {
				tr.replayFailed()
				e.cache.stats.Fallbacks++
				return false
			}
			acc[j] = a
			e.mass[vt.v] = a
		}
	}
	tr.failStreak = 0
	e.bump()
	for _, nd := range tr.nodes {
		s := e.mass[nd.u]
		counted := weight
		if e.mode == CounterPhysical {
			counted = s
		}
		// Same-value adds commute with nothing here: the live loop adds
		// `counted` once per edge event of this node, consecutively, so
		// repeating the adds (rather than adding counted*edges) keeps
		// the accumulation bit-exact.
		for k := int32(0); k < nd.edges; k++ {
			res.QueryMessages += counted
		}
		for k := int32(0); k < nd.dups; k++ {
			res.DupMessages += counted
		}
		e.telEdges.Add(uint64(nd.edges))
		e.telDups.Add(uint64(nd.dups))
		for j := nd.vStart; j < nd.vStart+nd.vCount; j++ {
			vt := &tr.visits[j]
			a := acc[j]
			e.ov.AddTraffic(vt.eid, counted)
			budget.take(vt.v, vt.eid, a)
			if a < s {
				e.telDrops.Inc()
			}
			res.CapacityDrops += s - a
			if a > 0 {
				res.ProcessedMass += a
				res.PeersReached++
			}
		}
	}
	return true
}

// liveBatch is the uncached fluid BFS (CSR-accelerated when the cache
// is enabled). A non-nil rec collects the first-visit tree in
// traversal order; the return reports whether any first visit was
// capacity-clipped to zero, which in the physical plane prunes a
// subtree and makes the recording non-structural.
func (e *Engine) liveBatch(src PeerID, entry PeerID, ttl int, weight float64, budget *Budget, res *BatchResult, rec *travTree) (zeroClip bool) {
	e.bump()
	e.seen[src] = e.epoch
	e.hop[src] = 0
	e.parent[src] = noParent
	e.mass[src] = weight
	e.frontier = append(e.frontier[:0], src)

	for depth := 1; depth <= ttl && len(e.frontier) > 0; depth++ {
		e.next = e.next[:0]
		for _, u := range e.frontier {
			surviving := e.mass[u] // physical mass still alive at u
			counted := weight      // ideal plane: everything forwarded
			if e.mode == CounterPhysical {
				counted = surviving
				if counted <= 0 {
					continue
				}
			}
			nbrs, eids := e.activeAdj(u)
			var nd travNode
			if rec != nil {
				nd = travNode{u: u, vStart: int32(len(rec.visits))}
			}
			for k, v := range nbrs {
				if v == e.parent[u] {
					continue
				}
				if u == src && entry >= 0 && v != entry {
					continue // restricted entry: batch leaves via one neighbor
				}
				res.QueryMessages += counted
				e.telEdges.Inc()
				if rec != nil {
					nd.edges++
				}
				if e.seen[v] == e.epoch {
					res.DupMessages += counted
					e.telDups.Inc()
					if rec != nil {
						nd.dups++
					}
					continue
				}
				eid := overlay.EdgeID(0)
				if eids != nil {
					eid = eids[k]
				} else {
					eid, _ = e.ov.FindEdge(u, v)
				}
				if rec != nil {
					rec.visits = append(rec.visits, visit{v: v, parent: u, eid: eid, depth: int32(depth)})
				}
				e.ov.AddTraffic(eid, counted)
				e.seen[v] = e.epoch
				e.hop[v] = int32(depth)
				e.parent[v] = u
				accepted := surviving
				if room := budget.arrivalCap(v, eid); accepted > room {
					accepted = room
				}
				if accepted < 0 {
					accepted = 0
				}
				budget.take(v, eid, accepted)
				if accepted < surviving {
					e.telDrops.Inc()
				}
				res.CapacityDrops += surviving - accepted
				e.mass[v] = accepted
				if accepted > 0 {
					res.ProcessedMass += accepted
					res.PeersReached++
				}
				if accepted <= 0 && e.mode == CounterPhysical {
					zeroClip = true
				}
				if accepted > 0 || e.mode == CounterIdeal {
					e.next = append(e.next, v)
				}
			}
			if rec != nil && nd.edges > 0 {
				nd.vCount = int32(len(rec.visits)) - nd.vStart
				rec.nodes = append(rec.nodes, nd)
				rec.edgeEvents += uint64(nd.edges)
				rec.dupEvents += uint64(nd.dups)
			}
		}
		e.frontier, e.next = e.next, e.frontier
	}
	return zeroClip
}
