// Package flood implements Gnutella-style capacity-constrained query
// flooding over the overlay: a query is broadcast and rebroadcast with
// a TTL, peers drop duplicate copies ("a query message will be dropped
// if the query message has visited the peer before", §2.2/[15]), and a
// peer whose processing capacity is exhausted discards queries instead
// of forwarding them — the mechanism by which overlay DDoS degrades the
// system.
//
// Two entry points share one BFS core:
//
//   - FloodQuery floods a single (good-peer) query discretely and
//     reports success against a replica set, hop counts and delay.
//   - FloodBatch floods an attacker's per-tick query volume as one
//     weighted fluid batch: all queries of the batch follow the same
//     first-visit tree, and per-peer capacity clips the surviving
//     weight. This is the fluid limit of flooding N identical-topology
//     queries and lets the simulator handle 20,000 queries/min/agent
//     without per-message events.
package flood

import (
	"ddpolice/internal/overlay"
	"ddpolice/internal/telemetry"
	"ddpolice/internal/topology"
)

// PeerID aliases the overlay peer identifier.
type PeerID = overlay.PeerID

// noParent marks the flood source, which has no inbound edge.
const noParent PeerID = -1

// Budget tracks the per-tick processing tokens of every peer. The
// simulator refills it each tick from the peers' capacity model.
//
// By default tokens are taken first-come-first-served. EnableFairShare
// switches to the related-work baseline the paper contrasts DD-POLICE
// with (Daswani & Garcia-Molina's application-layer load balancing,
// reference [21]): each peer divides its capacity evenly across its
// incoming connections, so one flooding neighbor can only exhaust its
// own share and "clients get a fair share of available resources".
type Budget struct {
	// Remaining tokens this tick, indexed by peer.
	Remaining []float64
	// PerTick is the full refill amount, used for utilization-based
	// queueing delay.
	PerTick []float64
	// prevUtil is each peer's utilization over the last completed tick,
	// captured at Refill. Queueing delay uses it because mid-tick
	// utilization systematically understates a tick's true load.
	prevUtil []float64

	// Fair-share mode: per-directed-edge sub-budgets for the receiving
	// endpoint of each edge. edgeRemaining[e] caps what may arrive over
	// e this tick; the peer-level Remaining still applies on top.
	ov            *overlay.Overlay
	edgeRemaining []float64
	edgePerTick   []float64
}

// NewBudget allocates a budget for n peers with a uniform per-tick
// token allowance.
func NewBudget(n int, perTick float64) *Budget {
	b := &Budget{
		Remaining: make([]float64, n),
		PerTick:   make([]float64, n),
		prevUtil:  make([]float64, n),
	}
	for i := range b.Remaining {
		b.Remaining[i] = perTick
		b.PerTick[i] = perTick
	}
	return b
}

// EnableFairShare activates the [21]-style per-connection capacity
// split over ov's edges: the receiver of directed edge u->v accepts at
// most capacity(v)/degree(v) per tick from u.
func (b *Budget) EnableFairShare(ov *overlay.Overlay) {
	b.ov = ov
	b.edgeRemaining = make([]float64, ov.NumDirectedEdges())
	b.edgePerTick = make([]float64, ov.NumDirectedEdges())
	g := ov.Graph()
	for v := 0; v < ov.NumPeers(); v++ {
		id := PeerID(v)
		deg := g.Degree(id)
		if deg == 0 {
			continue
		}
		share := b.PerTick[v] / float64(deg)
		for k := range g.Neighbors(id) {
			// Edge id of v->neighbor; the *incoming* share for v over
			// that link is tracked on the reverse edge, but since the
			// share is symmetric per endpoint we track arrival budget
			// on the edge pointing *to* v: reverse of v's k-th edge.
			e := ov.Reverse(ov.EdgeID(id, k))
			b.edgePerTick[e] = share
			b.edgeRemaining[e] = share
		}
	}
}

// FairShare reports whether per-connection splitting is active.
func (b *Budget) FairShare() bool { return b.ov != nil }

// arrivalCap returns how much may still arrive at v via the directed
// edge e (u->v) this tick, bounded by both the edge share (fair mode)
// and the peer's remaining total.
func (b *Budget) arrivalCap(v PeerID, e overlay.EdgeID) float64 {
	room := b.Remaining[v]
	if b.ov != nil && b.edgeRemaining[e] < room {
		room = b.edgeRemaining[e]
	}
	return room
}

// take consumes amount from v's budget for an arrival via edge e.
func (b *Budget) take(v PeerID, e overlay.EdgeID, amount float64) {
	b.Remaining[v] -= amount
	if b.ov != nil {
		b.edgeRemaining[e] -= amount
	}
}

// Refill captures each peer's utilization for the ending tick, then
// resets its tokens to the per-tick allowance.
func (b *Budget) Refill() {
	for i := range b.Remaining {
		b.prevUtil[i] = b.utilNow(PeerID(i))
		b.Remaining[i] = b.PerTick[i]
	}
	if b.ov != nil {
		copy(b.edgeRemaining, b.edgePerTick)
	}
}

func (b *Budget) utilNow(p PeerID) float64 {
	full := b.PerTick[p]
	if full <= 0 {
		return 1
	}
	u := 1 - b.Remaining[p]/full
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Utilization returns peer p's load estimate for queueing-delay
// purposes: the larger of the last completed tick's utilization and the
// current tick's consumption so far.
func (b *Budget) Utilization(p PeerID) float64 {
	u := b.utilNow(p)
	if b.prevUtil[p] > u {
		return b.prevUtil[p]
	}
	return u
}

// DelayModel converts a flood path into a response-time estimate using
// an M/M/1-style queueing term per hop:
//
//	hop delay = HopDelay * (1 + min(MaxQueue, QueueFactor * u/(1-u)))
//
// where u is the visited peer's budget utilization.
type DelayModel struct {
	// HopDelay is the base one-way per-hop latency in seconds.
	HopDelay float64
	// QueueFactor scales the queueing term.
	QueueFactor float64
	// MaxQueue clamps the queueing multiplier at saturation.
	MaxQueue float64
}

// DefaultDelayModel returns the calibration used by the experiments:
// 50 ms per overlay hop with M/M/1 queueing inflation clamped at 40x at
// full saturation — calibrated so that the paper's ~100-agent-equivalent
// attack inflates mean response time by its reported ~2.4x.
func DefaultDelayModel() DelayModel {
	return DelayModel{HopDelay: 0.05, QueueFactor: 0.3, MaxQueue: 40}
}

// hopDelay returns the delay contribution of one hop at utilization u.
func (dm DelayModel) hopDelay(u float64) float64 {
	q := 0.0
	if u >= 1 {
		q = dm.MaxQueue
	} else {
		q = dm.QueueFactor * u / (1 - u)
		if q > dm.MaxQueue {
			q = dm.MaxQueue
		}
	}
	return dm.HopDelay * (1 + q)
}

// QueryResult reports one discrete query flood.
type QueryResult struct {
	Processed     int     // peers that processed (looked up + forwarded) the query
	QueryMessages float64 // query copies sent over edges (incl. duplicates)
	DupMessages   float64 // copies discarded as duplicates
	CapacityDrops int     // copies discarded because the receiver was saturated
	Hit           bool    // at least one replica holder processed the query
	HitHolders    int     // number of holders reached
	FirstHitHops  int     // overlay hops to the nearest responder (-1 if no hit)
	HitMessages   float64 // QueryHit messages routed back along reverse paths
	ResponseDelay float64 // seconds until the first response arrives (0 if no hit)
}

// BatchResult reports one fluid batch flood.
type BatchResult struct {
	QueryMessages float64 // total query copies (weighted, incl. duplicates)
	DupMessages   float64
	CapacityDrops float64 // weighted copies dropped at saturated peers
	ProcessedMass float64 // Σ over peers of processed weight
	PeersReached  int     // peers that processed any positive weight
}

// CounterMode selects how the per-edge Q counters (and message totals)
// account for capacity-dropped queries.
type CounterMode int

// Counter accounting modes.
const (
	// CounterIdeal is the paper's measurement plane: a query's flood
	// tree is counted as if every peer forwarded everything it
	// received — the assumption underlying Definitions 2.1-2.3 and the
	// Figure 2 analysis ("we assume ... all the incoming queries are
	// sent out"). Capacity still limits which queries are actually
	// *resolved* (looked up, answered), so success and response time
	// degrade under attack, but the monitoring counters see the
	// idealized flows that make the General/Single indicators sum to
	// issued/q0.
	CounterIdeal CounterMode = iota
	// CounterPhysical counts only what a capacity-limited peer could
	// actually forward. Under network-wide saturation this clips every
	// peer's outflow below the (k-1)*inflow identity and the indicators
	// go negative for attackers and good peers alike — an effect the
	// paper does not model, preserved here for the ablation study.
	CounterPhysical
)

// Engine holds the reusable BFS state for one simulation replica. Not
// safe for concurrent use.
type Engine struct {
	ov   *overlay.Overlay
	mode CounterMode

	// Telemetry event counters (nil until AttachTelemetry; nil-safe).
	// They count BFS events, not fluid weight: one edge traversal per
	// neighbor considered, one suppression per duplicate arrival, one
	// drop per saturated-receiver clip.
	telFloods *telemetry.Counter // floods started (queries + batches)
	telEdges  *telemetry.Counter // edges traversed (query copies put on a link)
	telDups   *telemetry.Counter // duplicate suppressions
	telDrops  *telemetry.Counter // budget (capacity) drop events

	// Latency/shape distributions, recorded per successful query.
	telHitHops *telemetry.Histogram // hops to the nearest responder
	telDelay   *telemetry.Histogram // first-response delay, ms

	epoch    uint32
	seen     []uint32  // epoch marks: peer received the query
	hop      []int32   // first-visit hop count
	parent   []PeerID  // BFS parent (valid for current epoch)
	delay    []float64 // accumulated one-way delay along first-visit path
	mass     []float64 // batch mode: surviving (processed) weight at peer
	frontier []PeerID
	next     []PeerID
	nbuf     []PeerID
}

// NewEngine creates a flood engine over ov using the physical counter
// plane (the experiments' default); use SetCounterMode to switch to the
// idealized plane for ablations.
func NewEngine(ov *overlay.Overlay) *Engine {
	n := ov.NumPeers()
	return &Engine{
		ov:     ov,
		mode:   CounterPhysical,
		seen:   make([]uint32, n),
		hop:    make([]int32, n),
		parent: make([]PeerID, n),
		delay:  make([]float64, n),
		mass:   make([]float64, n),
	}
}

// AttachTelemetry wires the engine's hot-path event counters into reg
// under the "flood." prefix. A nil registry detaches (counters become
// no-ops again).
func (e *Engine) AttachTelemetry(reg *telemetry.Registry) {
	e.telFloods = reg.Counter("flood.floods")
	e.telEdges = reg.Counter("flood.edges_traversed")
	e.telDups = reg.Counter("flood.dup_suppressed")
	e.telDrops = reg.Counter("flood.budget_drops")
	e.telHitHops = reg.Histogram("flood.hit_hops")
	e.telDelay = reg.Histogram("flood.response_delay_ms")
}

// SetCounterMode switches the counter accounting plane.
func (e *Engine) SetCounterMode(m CounterMode) { e.mode = m }

// Mode returns the current counter accounting plane.
func (e *Engine) Mode() CounterMode { return e.mode }

func (e *Engine) bump() {
	e.epoch++
	if e.epoch == 0 { // wrapped: clear marks once every 2^32 floods
		for i := range e.seen {
			e.seen[i] = 0
		}
		e.epoch = 1
	}
}

// FloodQuery floods one discrete query from src with the given TTL.
// holders is the replica set of the searched object (used for success
// accounting; the issuer itself is not counted as a responder). Each
// processing peer consumes one token from budget. Edge traffic counters
// in the overlay are incremented for every query copy sent.
func (e *Engine) FloodQuery(src PeerID, ttl int, holders []topology.NodeID, budget *Budget, dm DelayModel) QueryResult {
	res := QueryResult{FirstHitHops: -1}
	if ttl <= 0 || !e.ov.Online(src) {
		return res
	}
	e.telFloods.Inc()
	e.bump()
	e.seen[src] = e.epoch
	e.hop[src] = 0
	e.parent[src] = noParent
	e.delay[src] = 0
	e.frontier = append(e.frontier[:0], src)

	for depth := 1; depth <= ttl && len(e.frontier) > 0; depth++ {
		e.next = e.next[:0]
		for _, u := range e.frontier {
			e.nbuf = e.ov.ActiveNeighbors(u, e.nbuf[:0])
			for _, v := range e.nbuf {
				if v == e.parent[u] {
					continue // never send back where it came from
				}
				res.QueryMessages++
				e.telEdges.Inc()
				if e.seen[v] == e.epoch {
					// Duplicate copy: wire traffic, but discarded before
					// the Out_query/In_query monitors count it (the
					// paper's no-duplication accounting, Fig 2).
					res.DupMessages++
					e.telDups.Inc()
					continue
				}
				eid, _ := e.ov.FindEdge(u, v)
				e.ov.AddTraffic(eid, 1)
				e.seen[v] = e.epoch
				e.hop[v] = int32(depth)
				e.parent[v] = u
				surviving := e.delay[u] >= 0
				if surviving && budget.arrivalCap(v, eid) < 1 {
					res.CapacityDrops++
					e.telDrops.Inc()
					surviving = false
				}
				if surviving {
					budget.take(v, eid, 1)
					res.Processed++
					e.delay[v] = e.delay[u] + dm.hopDelay(budget.Utilization(v))
				} else {
					// The real query died upstream or here; in the
					// ideal counter plane the message flow continues
					// for accounting, in the physical plane it stops.
					e.delay[v] = -1
					if e.mode == CounterPhysical {
						continue
					}
				}
				e.next = append(e.next, v)
			}
		}
		e.frontier, e.next = e.next, e.frontier
	}

	// Success accounting against the replica set.
	for _, h := range holders {
		if h == src {
			continue // searching peers don't count their own copy
		}
		if e.seen[h] == e.epoch && e.delay[h] >= 0 && e.hop[h] > 0 {
			res.HitHolders++
			res.HitMessages += float64(e.hop[h]) // QueryHit returns along the reverse path
			if !res.Hit || int(e.hop[h]) < res.FirstHitHops {
				res.Hit = true
				res.FirstHitHops = int(e.hop[h])
				// Round trip: accumulated forward delay plus the return
				// path at base latency (QueryHits are few and cheap).
				res.ResponseDelay = e.delay[h] + float64(e.hop[h])*dm.HopDelay
			}
		}
	}
	if res.Hit {
		e.telHitHops.Observe(uint64(res.FirstHitHops))
		e.telDelay.Observe(uint64(res.ResponseDelay * 1000))
	}
	return res
}

// FloodBatch floods weight identical-routing bogus queries from src.
// entry optionally restricts the batch to enter the overlay through a
// single neighbor (the paper's Fig 1 attack pattern, where a bad peer
// issues *different* queries to each of its neighbors: the per-neighbor
// sub-batches never duplicate-cancel, so each is its own batch with
// entry = that neighbor). Pass entry = -1 for standard flooding to all
// neighbors.
//
// The source's own generation does not consume its processing budget;
// every downstream peer clips the surviving weight by its remaining
// tokens.
func (e *Engine) FloodBatch(src PeerID, entry PeerID, ttl int, weight float64, budget *Budget) BatchResult {
	var res BatchResult
	if ttl <= 0 || weight <= 0 || !e.ov.Online(src) {
		return res
	}
	e.telFloods.Inc()
	e.bump()
	e.seen[src] = e.epoch
	e.hop[src] = 0
	e.parent[src] = noParent
	e.mass[src] = weight
	e.frontier = append(e.frontier[:0], src)

	for depth := 1; depth <= ttl && len(e.frontier) > 0; depth++ {
		e.next = e.next[:0]
		for _, u := range e.frontier {
			surviving := e.mass[u] // physical mass still alive at u
			counted := weight      // ideal plane: everything forwarded
			if e.mode == CounterPhysical {
				counted = surviving
				if counted <= 0 {
					continue
				}
			}
			e.nbuf = e.ov.ActiveNeighbors(u, e.nbuf[:0])
			for _, v := range e.nbuf {
				if v == e.parent[u] {
					continue
				}
				if u == src && entry >= 0 && v != entry {
					continue // restricted entry: batch leaves via one neighbor
				}
				res.QueryMessages += counted
				e.telEdges.Inc()
				if e.seen[v] == e.epoch {
					res.DupMessages += counted
					e.telDups.Inc()
					continue
				}
				eid, _ := e.ov.FindEdge(u, v)
				e.ov.AddTraffic(eid, counted)
				e.seen[v] = e.epoch
				e.hop[v] = int32(depth)
				e.parent[v] = u
				accepted := surviving
				if room := budget.arrivalCap(v, eid); accepted > room {
					accepted = room
				}
				if accepted < 0 {
					accepted = 0
				}
				budget.take(v, eid, accepted)
				if accepted < surviving {
					e.telDrops.Inc()
				}
				res.CapacityDrops += surviving - accepted
				e.mass[v] = accepted
				if accepted > 0 {
					res.ProcessedMass += accepted
					res.PeersReached++
				}
				if accepted > 0 || e.mode == CounterIdeal {
					e.next = append(e.next, v)
				}
			}
		}
		e.frontier, e.next = e.next, e.frontier
	}
	return res
}
