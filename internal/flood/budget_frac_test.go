package flood

import (
	"math/rand"
	"testing"

	"ddpolice/internal/overlay"
	"ddpolice/internal/topology"
)

// A sub-1.0 per-tick allowance used to be discarded whole at every
// Refill: Remaining reset to PerTick < 1, the discrete flood path's
// arrivalCap >= 1 test never passed, and the peer starved forever.
// With fractional accumulation a 0.5/tick peer admits exactly one
// query every second tick.
func TestBudgetFractionalAccumulation(t *testing.T) {
	b := NewBudget(2, 0.5)
	// NewBudget seeds Remaining = PerTick = 0.5; the first refill tops
	// it up to the 1-token cap.
	admitted := 0
	for tick := 0; tick < 20; tick++ {
		b.Refill()
		if cap := b.arrivalCap(0, 0); cap >= 1 {
			b.take(0, 0, 1)
			admitted++
		}
	}
	if admitted != 10 {
		t.Fatalf("0.5/tick peer admitted %d of 20 ticks, want 10", admitted)
	}
	// The accumulator clamps at one whole token: an idle frac peer
	// does not bank unbounded credit.
	for tick := 0; tick < 50; tick++ {
		b.Refill()
	}
	if got := b.Remaining[1]; got != 1 {
		t.Fatalf("idle frac peer banked %v tokens, want cap 1", got)
	}
}

// An allowance of >= 1 token/tick must keep the exact historical
// semantics: leftovers are discarded, Remaining == PerTick after every
// Refill, bit for bit.
func TestBudgetWholeTokenRefillUnchanged(t *testing.T) {
	b := NewBudget(3, 16.7)
	for tick := 0; tick < 5; tick++ {
		b.Refill()
		b.take(1, 0, 3.25)
	}
	b.Refill()
	for i := range b.Remaining {
		if b.Remaining[i] != 16.7 {
			t.Fatalf("peer %d: Remaining = %v after refill, want exactly 16.7", i, b.Remaining[i])
		}
	}
}

// SetCapacity to a sub-1.0 rate mid-run moves the peer onto the
// accumulating path; restoring a whole-token rate moves it back off.
func TestBudgetFracMembershipFollowsSetCapacity(t *testing.T) {
	b := NewBudget(1, 10)
	b.Refill()
	b.SetCapacity(0, 0.25)
	for tick := 0; tick < 3; tick++ {
		b.Refill()
	}
	// 3 refills * 0.25 accrued on top of the clamped 0.25 remaining,
	// capped at 1.
	if got := b.Remaining[0]; got != 1 {
		t.Fatalf("after 3 frac refills Remaining = %v, want 1", got)
	}
	b.SetCapacity(0, 10)
	b.Refill()
	if got := b.Remaining[0]; got != 10 {
		t.Fatalf("restored peer Remaining = %v, want 10", got)
	}
	b.Refill()
	if got := b.Remaining[0]; got != 10 {
		t.Fatalf("restored peer stopped accumulating? Remaining = %v, want 10", got)
	}
}

// Fair-share edge shares below one token accumulate the same way, so
// a high-degree slow peer still accepts arrivals on every link
// eventually instead of starving all of them.
func TestBudgetFairShareFractionalEdges(t *testing.T) {
	// Star: hub 0, leaves 1..8.
	tb := topology.NewBuilder(9)
	for i := topology.NodeID(1); i < 9; i++ {
		if err := tb.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	ov := overlay.New(tb.Build())
	b := NewBudget(9, 4) // hub share: 4/8 = 0.5 per edge
	b.EnableFairShare(ov)
	// Arrival budget into the hub over the link from leaf 1 is tracked
	// on the directed edge leaf->hub (the reverse of the hub's own
	// edge), which is leaf 1's 0th edge.
	arrival, ok := ov.FindEdge(1, 0)
	if !ok {
		t.Fatal("no edge 1-0 in star")
	}
	admitted := 0
	for tick := 0; tick < 20; tick++ {
		b.Refill()
		if b.arrivalCap(0, arrival) >= 1 {
			b.take(0, arrival, 1)
			admitted++
		}
	}
	if admitted != 10 {
		t.Fatalf("0.5/tick edge admitted %d of 20 ticks, want 10", admitted)
	}
}

// The O(touched) refill must be observationally identical to the full
// scan it replaced: drive a reference implementation and the real one
// through the same random take/SetCapacity schedule and compare every
// peer's Remaining and Utilization each tick.
func TestBudgetTouchedRefillMatchesFullScan(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(7))
	real := NewBudget(n, 12)

	// Reference: the original semantics, plus the new frac
	// accumulation rule, applied to every peer every tick.
	refRemaining := make([]float64, n)
	refPerTick := make([]float64, n)
	refPrevUtil := make([]float64, n)
	for i := range refRemaining {
		refRemaining[i] = 12
		refPerTick[i] = 12
	}
	refUtilNow := func(i int) float64 {
		if refPerTick[i] <= 0 {
			return 0
		}
		u := 1 - refRemaining[i]/refPerTick[i]
		if u < 0 {
			return 0
		}
		if u > 1 {
			return 1
		}
		return u
	}
	refRefill := func() {
		for i := range refRemaining {
			refPrevUtil[i] = refUtilNow(i)
			p := refPerTick[i]
			if p > 0 && p < 1 {
				if r := refRemaining[i] + p; r < 1 {
					refRemaining[i] = r
				} else {
					refRemaining[i] = 1
				}
			} else {
				refRemaining[i] = p
			}
		}
	}

	for tick := 0; tick < 400; tick++ {
		real.Refill()
		refRefill()
		for i := 0; i < n; i++ {
			if real.Remaining[i] != refRemaining[i] {
				t.Fatalf("tick %d peer %d: Remaining %v != ref %v", tick, i, real.Remaining[i], refRemaining[i])
			}
			ru := refUtilNow(i)
			if refPrevUtil[i] > ru {
				ru = refPrevUtil[i]
			}
			if got := real.Utilization(PeerID(i)); got != ru {
				t.Fatalf("tick %d peer %d: Utilization %v != ref %v", tick, i, got, ru)
			}
		}
		// Random takes; a few peers drained hard, most untouched.
		for k := 0; k < 10; k++ {
			v := PeerID(rng.Intn(n))
			amt := rng.Float64() * 8
			real.take(v, 0, amt)
			if r := refRemaining[v] - amt; r > 0 {
				refRemaining[v] = r
			} else {
				refRemaining[v] = 0
			}
		}
		// Occasional capacity churn, including sub-1.0 rates.
		if tick%37 == 0 {
			v := PeerID(rng.Intn(n))
			c := []float64{0, 0.5, 3, 12}[rng.Intn(4)]
			real.SetCapacity(v, c)
			refPerTick[v] = c
			if refRemaining[v] > c {
				refRemaining[v] = c
			}
		}
	}
}
