package flood

import (
	"reflect"
	"testing"

	"ddpolice/internal/overlay"
	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
)

// shardGraph builds a small Barabási–Albert overlay two engines can
// share structurally (same seed, same graph).
func shardGraph(t *testing.T, n int) (*overlay.Overlay, *overlay.Overlay) {
	t.Helper()
	g1, err := topology.BarabasiAlbert(rng.New(11), n, 3)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := topology.BarabasiAlbert(rng.New(11), n, 3)
	if err != nil {
		t.Fatal(err)
	}
	return overlay.New(g1), overlay.New(g2)
}

func shardKeys(n int) []TreeKey {
	var keys []TreeKey
	for i := 0; i < 40; i++ {
		keys = append(keys, TreeKey{Src: PeerID((i * 13) % n), Entry: -1, TTL: 3})
	}
	// Entry-restricted (spray-style) keys too.
	keys = append(keys,
		TreeKey{Src: 0, Entry: 1, TTL: 3},
		TreeKey{Src: 0, Entry: 2, TTL: 3},
	)
	return keys
}

// TestPrewarmTreesMatchOrganicBuilds asserts the tentpole's core
// equality: a tree built by a proposal-phase shard is structurally
// identical to the tree the serial engine's own build path constructs
// for the same key.
func TestPrewarmTreesMatchOrganicBuilds(t *testing.T) {
	const n = 300
	ovA, ovB := shardGraph(t, n)
	engA, engB := NewEngine(ovA), NewEngine(ovB)
	keys := shardKeys(n)

	if built := engA.PrewarmTrees(keys, 4); built == 0 {
		t.Fatal("prewarm built nothing")
	}
	// Organic builds on B: generous budget keeps every flood structural,
	// and the direct builder path is exercised via buildTree.
	engB.cache.sync(ovB)
	for _, k := range keys {
		entry := k.Entry
		if entry < 0 {
			entry = noEntry
		}
		ik := treeKey{src: k.Src, entry: entry, ttl: k.TTL}
		if _, ok := engB.cache.trees[ik]; ok {
			continue
		}
		engB.cache.store(ik, engB.buildTree(k.Src, entry, int(k.TTL)))
	}
	if len(engA.cache.trees) != len(engB.cache.trees) {
		t.Fatalf("tree counts diverge: prewarmed %d vs organic %d",
			len(engA.cache.trees), len(engB.cache.trees))
	}
	for ik, trB := range engB.cache.trees {
		trA, ok := engA.cache.trees[ik]
		if !ok {
			t.Fatalf("prewarmed cache missing key %+v", ik)
		}
		if !reflect.DeepEqual(trA.nodes, trB.nodes) || !reflect.DeepEqual(trA.visits, trB.visits) ||
			trA.edgeEvents != trB.edgeEvents || trA.dupEvents != trB.dupEvents {
			t.Fatalf("tree %+v diverges between prewarm and organic build", ik)
		}
	}
}

// TestPrewarmDeterministicAcrossShardCounts: the stored tree set (and
// every tree in it) must not depend on how many shards built it.
func TestPrewarmDeterministicAcrossShardCounts(t *testing.T) {
	const n = 300
	keys := shardKeys(n)
	var ref map[treeKey]*travTree
	for _, shards := range []int{1, 2, 4, 8} {
		g, err := topology.BarabasiAlbert(rng.New(11), n, 3)
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(overlay.New(g))
		eng.PrewarmTrees(keys, shards)
		if ref == nil {
			ref = eng.cache.trees
			continue
		}
		if len(eng.cache.trees) != len(ref) {
			t.Fatalf("shards=%d: %d trees, want %d", shards, len(eng.cache.trees), len(ref))
		}
		for ik, want := range ref {
			got, ok := eng.cache.trees[ik]
			if !ok {
				t.Fatalf("shards=%d: missing tree %+v", shards, ik)
			}
			if !reflect.DeepEqual(got.visits, want.visits) || !reflect.DeepEqual(got.nodes, want.nodes) {
				t.Fatalf("shards=%d: tree %+v diverges", shards, ik)
			}
		}
	}
}

// TestPrewarmedFloodByteIdentical runs the same flood sequence on a
// prewarmed engine and a cold serial engine and asserts bit-equal
// results and budget state — the commit phase must not be able to tell
// the trees were built ahead of time.
func TestPrewarmedFloodByteIdentical(t *testing.T) {
	const n = 300
	ovA, ovB := shardGraph(t, n)
	engA, engB := NewEngine(ovA), NewEngine(ovB)
	budA, budB := NewBudget(n, 4), NewBudget(n, 4)
	dm := DefaultDelayModel()
	holders := []topology.NodeID{7, 99, 201}
	keys := shardKeys(n)

	engA.PrewarmTrees(keys, 4)
	for tick := 0; tick < 3; tick++ {
		budA.Refill()
		budB.Refill()
		for _, k := range keys {
			if k.Entry >= 0 {
				ra := engA.FloodBatch(k.Src, k.Entry, int(k.TTL), 2.5, budA)
				rb := engB.FloodBatch(k.Src, k.Entry, int(k.TTL), 2.5, budB)
				if ra != rb {
					t.Fatalf("tick %d: batch results diverge:\nprewarmed: %+v\nserial:    %+v", tick, ra, rb)
				}
				continue
			}
			ra := engA.FloodQuery(k.Src, int(k.TTL), holders, budA, dm)
			rb := engB.FloodQuery(k.Src, int(k.TTL), holders, budB, dm)
			if ra != rb {
				t.Fatalf("tick %d: query results diverge:\nprewarmed: %+v\nserial:    %+v", tick, ra, rb)
			}
		}
		if !reflect.DeepEqual(budA.Remaining, budB.Remaining) {
			t.Fatalf("tick %d: budget state diverges", tick)
		}
	}
	if engA.CacheStats().Prewarmed == 0 {
		t.Fatal("prewarmed counter never moved")
	}
}

// TestPrewarmSkipsUnbuildableKeys: cached keys, offline sources, and
// non-positive TTLs are filtered before any shard sees them, and
// duplicates collapse to one build.
func TestPrewarmSkipsUnbuildableKeys(t *testing.T) {
	const n = 100
	ovA, _ := shardGraph(t, n)
	eng := NewEngine(ovA)
	ovA.SetOnline(5, false)
	base := TreeKey{Src: 1, Entry: -1, TTL: 3}
	built := eng.PrewarmTrees([]TreeKey{
		base, base, // duplicate
		{Src: 5, Entry: -1, TTL: 3}, // offline
		{Src: 2, Entry: -1, TTL: 0}, // bad TTL
	}, 2)
	if built != 1 {
		t.Fatalf("built %d trees, want 1", built)
	}
	// Already cached: a second prewarm is a no-op.
	if again := eng.PrewarmTrees([]TreeKey{base}, 2); again != 0 {
		t.Fatalf("rebuilt a cached tree (%d builds)", again)
	}
	if s := eng.CacheStats(); s.Prewarmed != 1 || s.Builds != 1 {
		t.Fatalf("stats = %+v, want Prewarmed=1 Builds=1", s)
	}
}

// TestPrewarmDisabledCache: a no-op without the traversal cache.
func TestPrewarmDisabledCache(t *testing.T) {
	ovA, _ := shardGraph(t, 50)
	eng := NewEngine(ovA)
	eng.SetTraversalCache(false)
	if built := eng.PrewarmTrees([]TreeKey{{Src: 1, Entry: -1, TTL: 3}}, 4); built != 0 {
		t.Fatalf("prewarm built %d trees with the cache disabled", built)
	}
}
