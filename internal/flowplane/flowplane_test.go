package flowplane

import (
	"math"
	"testing"
	"testing/quick"

	"ddpolice/internal/overlay"
	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
)

func lineOverlay(t *testing.T, n int) *overlay.Overlay {
	t.Helper()
	b := topology.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(topology.NodeID(i), topology.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return overlay.New(b.Build())
}

func baOverlay(t *testing.T, n int, seed uint64) *overlay.Overlay {
	t.Helper()
	g, err := topology.BarabasiAlbert(rng.New(seed), n, 3)
	if err != nil {
		t.Fatal(err)
	}
	return overlay.New(g)
}

func TestLinePropagation(t *testing.T) {
	ov := lineOverlay(t, 6)
	p := New(ov)
	total, err := p.AccumulateMinute([]Emission{{Source: 0, PerMinute: 100}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ov.RollMinute()
	// Non-backtracking on a line: flow marches forward 3 hops.
	for _, c := range []struct {
		u, v topology.NodeID
		want float64
	}{{0, 1, 100}, {1, 2, 100}, {2, 3, 100}, {3, 4, 0}, {1, 0, 0}} {
		if got := ov.LastMinute(c.u, c.v); got != c.want {
			t.Errorf("flow %d->%d = %v, want %v", c.u, c.v, got, c.want)
		}
	}
	if total != 300 {
		t.Errorf("total = %v, want 300", total)
	}
}

func TestSplitEmission(t *testing.T) {
	// Star: hub 0 with 4 leaves. Split emission divides over the edges.
	b := topology.NewBuilder(5)
	for i := 1; i < 5; i++ {
		if err := b.AddEdge(0, topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	ov := overlay.New(b.Build())
	p := New(ov)
	if _, err := p.AccumulateMinute([]Emission{{Source: 0, PerMinute: 100, Split: true}}, 1); err != nil {
		t.Fatal(err)
	}
	ov.RollMinute()
	for leaf := topology.NodeID(1); leaf < 5; leaf++ {
		if got := ov.LastMinute(0, leaf); got != 25 {
			t.Errorf("split flow to %d = %v, want 25", leaf, got)
		}
	}
}

func TestBroadcastEmission(t *testing.T) {
	b := topology.NewBuilder(4)
	for i := 1; i < 4; i++ {
		if err := b.AddEdge(0, topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	ov := overlay.New(b.Build())
	p := New(ov)
	if _, err := p.AccumulateMinute([]Emission{{Source: 0, PerMinute: 100}}, 1); err != nil {
		t.Fatal(err)
	}
	ov.RollMinute()
	for leaf := topology.NodeID(1); leaf < 4; leaf++ {
		if got := ov.LastMinute(0, leaf); got != 100 {
			t.Errorf("broadcast flow to %d = %v, want 100", leaf, got)
		}
	}
}

// TestIndicatorUpperBoundAndTTLDeficit documents what the idealized
// walk plane actually shows (DESIGN.md "Calibration", finding 1):
//
//   - the paper's stated upper bound g(j) <= issued(j)/(k*q0) holds for
//     every peer (flows never make anyone look *worse* than the bound);
//   - but the TTL-expiry deficit — final-level arrivals are counted as
//     inflow yet never forwarded — drives g strongly negative for every
//     forwarding peer, attackers included. This is why the experiments
//     use the physical counter plane instead.
func TestIndicatorUpperBoundAndTTLDeficit(t *testing.T) {
	const q0 = 100.0
	ov := baOverlay(t, 200, 3)
	p := New(ov)
	src := rng.New(9)
	// Everyone issues a small background volume; one agent issues a lot.
	var ems []Emission
	issued := make([]float64, 200)
	for v := 0; v < 200; v++ {
		issued[v] = 1 + src.Float64()*5
		ems = append(ems, Emission{Source: PeerID(v), PerMinute: issued[v], Split: true})
	}
	const agent = 42
	issued[agent] = 20000
	ems[agent].PerMinute = 20000
	if _, err := p.AccumulateMinute(ems, 4); err != nil {
		t.Fatal(err)
	}
	ov.RollMinute()
	g := func(j PeerID) float64 {
		nb := ov.Graph().Neighbors(j)
		k := float64(len(nb))
		var out, in float64
		for _, m := range nb {
			out += ov.LastMinute(j, m)
			in += ov.LastMinute(m, j)
		}
		return (out - (k-1)*in) / (k * q0)
	}
	negative := 0
	for v := 0; v < 200; v++ {
		bound := issued[v] / (float64(ov.Graph().Degree(PeerID(v))) * q0)
		gv := g(PeerID(v))
		if gv > bound+1e-6 {
			t.Errorf("peer %d: g=%v exceeds upper bound %v", v, gv, bound)
		}
		if gv < 0 {
			negative++
		}
	}
	if negative < 150 {
		t.Errorf("only %d/200 peers have negative g; the TTL deficit should dominate", negative)
	}
	if ga := g(agent); ga > 0 {
		t.Errorf("agent g = %v: the walk plane should mask it (that is the finding)", ga)
	}
}

// TestSingleSourceTTL1Identity is the deficit-free case: with one
// emission and TTL 1 there are no forwarded flows to expire, so the
// agent's indicator is exactly issued/(k*q0) and every other peer reads
// negative.
func TestSingleSourceTTL1Identity(t *testing.T) {
	const q0 = 100.0
	ov := baOverlay(t, 200, 3)
	p := New(ov)
	const agent = 42
	if _, err := p.AccumulateMinute([]Emission{{Source: agent, PerMinute: 20000, Split: true}}, 1); err != nil {
		t.Fatal(err)
	}
	ov.RollMinute()
	nb := ov.Graph().Neighbors(agent)
	k := float64(len(nb))
	var out, in float64
	for _, m := range nb {
		out += ov.LastMinute(agent, m)
		in += ov.LastMinute(m, agent)
	}
	got := (out - (k-1)*in) / (k * q0)
	want := 20000 / (k * q0)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("agent g = %v, want exactly %v", got, want)
	}
}

func TestFlowConservationProperty(t *testing.T) {
	// Property: total counted flow never exceeds the geometric
	// amplification bound sum_h emission*(maxdeg-1)^(h-1)*deg and is
	// positive whenever the source has active neighbors.
	if err := quick.Check(func(seed uint64, rawTTL uint8) bool {
		ttl := int(rawTTL%4) + 1
		ov := baOverlay(t, 100, seed%16+1)
		p := New(ov)
		total, err := p.AccumulateMinute([]Emission{{Source: 5, PerMinute: 60}}, ttl)
		if err != nil {
			return false
		}
		deg := float64(ov.Graph().Degree(5))
		maxDeg := float64(ov.Graph().MaxDegree())
		bound := 0.0
		level := 60 * deg
		for h := 0; h < ttl; h++ {
			bound += level
			level *= maxDeg - 1
		}
		return total > 0 && total <= bound+1e-6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOfflineAndCutEdgesCarryNoFlow(t *testing.T) {
	ov := lineOverlay(t, 5)
	ov.SetOnline(2, false)
	p := New(ov)
	if _, err := p.AccumulateMinute([]Emission{{Source: 0, PerMinute: 100}}, 4); err != nil {
		t.Fatal(err)
	}
	ov.RollMinute()
	if got := ov.LastMinute(1, 2); got != 0 {
		t.Errorf("flow into offline peer = %v", got)
	}
	// Cut edge.
	ov2 := lineOverlay(t, 5)
	if err := ov2.Cut(1, 2); err != nil {
		t.Fatal(err)
	}
	p2 := New(ov2)
	if _, err := p2.AccumulateMinute([]Emission{{Source: 0, PerMinute: 100}}, 4); err != nil {
		t.Fatal(err)
	}
	ov2.RollMinute()
	if got := ov2.LastMinute(1, 2); got != 0 {
		t.Errorf("flow across cut edge = %v", got)
	}
	if got := ov2.LastMinute(0, 1); got != 100 {
		t.Errorf("flow before cut = %v, want 100", got)
	}
}

func TestOfflineSourceEmitsNothing(t *testing.T) {
	ov := lineOverlay(t, 3)
	ov.SetOnline(0, false)
	p := New(ov)
	total, err := p.AccumulateMinute([]Emission{{Source: 0, PerMinute: 100}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("offline source emitted %v", total)
	}
}

func TestInvalidTTL(t *testing.T) {
	p := New(lineOverlay(t, 3))
	if _, err := p.AccumulateMinute(nil, 0); err == nil {
		t.Fatal("ttl 0 accepted")
	}
}

func TestLinearity(t *testing.T) {
	// Flows are linear: two emissions together equal the sum of each
	// alone.
	mk := func(ems []Emission) []float64 {
		ov := baOverlay(t, 80, 7)
		p := New(ov)
		if _, err := p.AccumulateMinute(ems, 3); err != nil {
			t.Fatal(err)
		}
		ov.RollMinute()
		out := make([]float64, 0, 200)
		g := ov.Graph()
		for v := 0; v < 80; v++ {
			for _, w := range g.Neighbors(topology.NodeID(v)) {
				out = append(out, ov.LastMinute(topology.NodeID(v), w))
			}
		}
		return out
	}
	a := mk([]Emission{{Source: 3, PerMinute: 50}})
	b := mk([]Emission{{Source: 60, PerMinute: 70, Split: true}})
	both := mk([]Emission{{Source: 3, PerMinute: 50}, {Source: 60, PerMinute: 70, Split: true}})
	for i := range both {
		if math.Abs(both[i]-(a[i]+b[i])) > 1e-6 {
			t.Fatalf("linearity violated at edge %d: %v != %v + %v", i, both[i], a[i], b[i])
		}
	}
}

func BenchmarkAccumulateMinute2000(b *testing.B) {
	g, err := topology.BarabasiAlbert(rng.New(1), 2000, 3)
	if err != nil {
		b.Fatal(err)
	}
	ov := overlay.New(g)
	p := New(ov)
	ems := make([]Emission, 0, 2000)
	for v := 0; v < 2000; v++ {
		ems = append(ems, Emission{Source: PeerID(v), PerMinute: 0.3, Split: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.AccumulateMinute(ems, 7); err != nil {
			b.Fatal(err)
		}
	}
}
