// Package flowplane computes the DD-POLICE monitoring plane: the
// per-edge per-minute query counts Q_{u->v}(t) that Definitions 2.1-2.3
// are evaluated against.
//
// The paper's analysis (Figure 2) models flooding without duplicate
// suppression: every query a peer receives is forwarded to all
// neighbors except the sender ("we assume there are no query message
// duplications ... and all the incoming queries are sent out"). Under
// that assumption the query flows are exactly the TTL-bounded
// *non-backtracking walk* flows of the injected query volumes, and the
// General Indicator identity holds: for any peer that forwards
// faithfully, sum(out) - (k-1)*sum(in) = k * (own issued volume).
//
// Those flows are linear in the injections, so the entire minute's
// counter plane — all good peers' queries and all attack volumes at
// once — is computed with one TTL-step propagation over the directed
// edge set, O(TTL * E) per minute, instead of per-message simulation.
//
// The experiments do NOT use this plane: the walk flows diverge
// geometrically, so the TTL-expiry deficit (final-level arrivals are
// counted as inflow but never forwarded) drives the indicators negative
// for every forwarding peer — one of the calibration findings recorded
// in DESIGN.md. The package is kept as the executable form of the
// paper's idealized accounting, for the tests that demonstrate exactly
// where it breaks (see flowplane_test.go).
package flowplane

import (
	"fmt"

	"ddpolice/internal/overlay"
)

// PeerID aliases the overlay peer identifier.
type PeerID = overlay.PeerID

// Emission is one peer's query injection for a minute.
type Emission struct {
	Source PeerID
	// PerMinute is the total issued query volume this minute.
	PerMinute float64
	// Split controls how the volume enters the overlay: false floods
	// the full volume down every connection (normal Gnutella issuing —
	// and the broadcast attack); true splits it across connections
	// (the Figure 1 spray attack, distinct queries per neighbor).
	Split bool
}

// Plane propagates emissions into per-edge counted flows. One Plane is
// reused across minutes; it is not safe for concurrent use.
type Plane struct {
	ov   *overlay.Overlay
	cur  []float64 // flow entering this level, per directed edge
	next []float64
	inv  []float64 // per-node in-flow accumulator
	nbuf []PeerID
}

// New creates a flow plane over ov.
func New(ov *overlay.Overlay) *Plane {
	return &Plane{
		ov:   ov,
		cur:  make([]float64, ov.NumDirectedEdges()),
		next: make([]float64, ov.NumDirectedEdges()),
		inv:  make([]float64, ov.NumPeers()),
	}
}

// AccumulateMinute injects the emissions, propagates them for ttl hops
// of non-backtracking forwarding over the currently-active overlay
// edges, and adds the resulting flows to the overlay's current-minute
// edge counters. It returns the total counted flow (the minute's
// idealized message volume).
func (p *Plane) AccumulateMinute(emissions []Emission, ttl int) (float64, error) {
	if ttl < 1 {
		return 0, fmt.Errorf("flowplane: ttl = %d", ttl)
	}
	for i := range p.cur {
		p.cur[i] = 0
	}
	// Level 1: source emissions enter the source's active edges.
	for _, em := range emissions {
		if em.PerMinute <= 0 || !p.ov.Online(em.Source) {
			continue
		}
		p.nbuf = p.ov.ActiveNeighbors(em.Source, p.nbuf[:0])
		if len(p.nbuf) == 0 {
			continue
		}
		w := em.PerMinute
		if em.Split {
			w /= float64(len(p.nbuf))
		}
		g := p.ov.Graph()
		for k, v := range g.Neighbors(em.Source) {
			if !p.ov.Online(v) || p.ov.IsCut(em.Source, v) {
				continue
			}
			p.cur[p.ov.EdgeID(em.Source, k)] += w
		}
	}

	total := p.flush()
	// Levels 2..ttl: each arriving flow is forwarded to every active
	// edge of the receiver except back where it came from.
	for level := 2; level <= ttl; level++ {
		if total == 0 {
			break
		}
		p.step()
		total += p.flush()
	}
	return total, nil
}

// step computes next-level flows: next[u->v] = inflow(u) - cur[v->u],
// restricted to active edges.
func (p *Plane) step() {
	g := p.ov.Graph()
	n := p.ov.NumPeers()
	for v := 0; v < n; v++ {
		p.inv[v] = 0
	}
	for v := 0; v < n; v++ {
		id := PeerID(v)
		if !p.ov.Online(id) {
			continue
		}
		for k, w := range g.Neighbors(id) {
			e := p.ov.EdgeID(id, k)
			if f := p.cur[e]; f > 0 {
				p.inv[w] += f
			}
		}
	}
	for v := 0; v < n; v++ {
		id := PeerID(v)
		if !p.ov.Online(id) {
			continue
		}
		for k, w := range g.Neighbors(id) {
			e := p.ov.EdgeID(id, k)
			if !p.ov.Online(w) || p.ov.IsCut(id, w) {
				p.next[e] = 0
				continue
			}
			// Everything that arrived at id except what came from w.
			f := p.inv[v] - p.cur[p.ov.Reverse(e)]
			if f < 0 {
				f = 0
			}
			p.next[e] = f
		}
	}
	p.cur, p.next = p.next, p.cur
}

// flush adds the current level's flows into the overlay counters and
// returns the level total.
func (p *Plane) flush() float64 {
	var total float64
	for e, f := range p.cur {
		if f > 0 {
			p.ov.AddTraffic(overlay.EdgeID(e), f)
			total += f
		}
	}
	return total
}
