package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"ddpolice/internal/trace"
)

func tracedConfig() Config {
	cfg := equalityConfig()
	cfg.PoliceEnabled = true
	cfg.NumAgents = 4
	return cfg
}

// runTraced executes one config with a fully-sampled tracer attached
// and returns the instrumented streams plus the trace NDJSON.
func runTraced(t *testing.T, cfg Config) (res *Result, events, jrnl, spans []byte) {
	t.Helper()
	tr := trace.New(1.0, 0)
	cfg.Trace = tr
	res, events, jrnl = runInstrumented(t, cfg)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return res, events, jrnl, buf.Bytes()
}

// TestTraceByteIdentical is the tentpole acceptance property: two runs
// of the same seed emit byte-identical trace NDJSON, and the stream
// covers all three lifecycles (query, detection, overload).
func TestTraceByteIdentical(t *testing.T) {
	cfg := tracedConfig()
	_, _, _, spansA := runTraced(t, cfg)
	_, _, _, spansB := runTraced(t, cfg)
	if !bytes.Equal(spansA, spansB) {
		t.Fatalf("trace streams diverged (%d vs %d bytes)", len(spansA), len(spansB))
	}

	parsed, err := trace.ReadNDJSON(bytes.NewReader(spansA))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, s := range parsed {
		kinds[s.Kind]++
	}
	for _, want := range []string{
		trace.KindQueryIssue, trace.KindHop, trace.KindDelivery,
		trace.KindWarning, trace.KindNTRequest, trace.KindIndicator,
		trace.KindCut, trace.KindOverload,
	} {
		if kinds[want] == 0 {
			t.Fatalf("no %q spans in a police+attack run: %v", want, kinds)
		}
	}
}

// TestTracePassive: attaching a tracer must not perturb the run — the
// Result, event stream, and journal stay byte-identical to an untraced
// run of the same seed.
func TestTracePassive(t *testing.T) {
	cfg := tracedConfig()
	plain, evP, jrP := runInstrumented(t, cfg)
	traced, evT, jrT, spans := runTraced(t, cfg)
	assertSameRun(t, "traced-vs-untraced", "untraced", "traced",
		plain, traced, evP, evT, jrP, jrT)
	if len(spans) == 0 {
		t.Fatal("passivity test ran without any spans (vacuous)")
	}
}

// TestTraceCacheByteIdentical: the flood visit hook must observe the
// same visit sequence from a cache replay as from a live traversal, so
// traces survive the cached/uncached split byte-for-byte.
func TestTraceCacheByteIdentical(t *testing.T) {
	cfg := tracedConfig()
	_, _, _, spansC := runTraced(t, cfg)
	uc := cfg
	uc.DisableFloodCache = true
	_, _, _, spansU := runTraced(t, uc)
	if !bytes.Equal(spansC, spansU) {
		t.Fatalf("cached/uncached trace streams diverged (%d vs %d bytes)", len(spansC), len(spansU))
	}
}

// TestTraceSampling: at sample rate 0 the tracer stays empty; at a
// partial rate the sampled subset is a deterministic, per-trace-complete
// subset of the full stream.
func TestTraceSampling(t *testing.T) {
	cfg := tracedConfig()
	cfg.DurationSec = 180

	zero := trace.New(0, 0)
	cz := cfg
	cz.Trace = zero
	if _, err := Run(cz); err != nil {
		t.Fatal(err)
	}
	if zero.Len() != 0 {
		t.Fatalf("rate 0 recorded %d spans", zero.Len())
	}

	full := trace.New(1.0, 0)
	cf := cfg
	cf.Trace = full
	if _, err := Run(cf); err != nil {
		t.Fatal(err)
	}
	part := trace.New(0.25, 0)
	cp := cfg
	cp.Trace = part
	if _, err := Run(cp); err != nil {
		t.Fatal(err)
	}
	if part.Len() == 0 || part.Len() >= full.Len() {
		t.Fatalf("partial sample len = %d (full %d)", part.Len(), full.Len())
	}
	// Every sampled trace appears whole: group both streams and compare
	// the sampled IDs' span sets against the full run.
	fullByID := map[string]int{}
	for _, tv := range trace.Group(full.Spans()) {
		fullByID[tv.ID] = len(tv.Spans)
	}
	for _, tv := range trace.Group(part.Spans()) {
		if n, ok := fullByID[tv.ID]; !ok || n != len(tv.Spans) {
			t.Fatalf("sampled trace %s has %d spans, full run has %d", tv.ID, len(tv.Spans), n)
		}
	}
}

// TestTraceDetectionPathMatchesJournal: the detection critical path
// reconstructed from spans must agree with the journal's cut record.
func TestTraceDetectionPathMatchesJournal(t *testing.T) {
	cfg := tracedConfig()
	_, _, jrnl, spans := runTraced(t, cfg)
	parsed, err := trace.ReadNDJSON(bytes.NewReader(spans))
	if err != nil {
		t.Fatal(err)
	}
	paths := trace.DetectionPaths(trace.Group(parsed))
	var cutPaths []trace.DetectionPath
	for _, p := range paths {
		if p.CutSec >= 0 {
			cutPaths = append(cutPaths, p)
		}
	}
	if len(cutPaths) == 0 {
		t.Fatal("no cut detection paths in a police+attack run")
	}
	for _, p := range cutPaths {
		if p.RequestSec < 0 || p.IndicSec < 0 {
			t.Fatalf("cut path skipped stages: %+v", p)
		}
		if p.CutSec < p.RequestSec || p.IndicSec < p.RequestSec {
			t.Fatalf("stage times out of order: %+v", p)
		}
	}
	// Every traced cut corresponds to a journaled cut by (node, suspect).
	type cutKey struct{ node, peer int64 }
	journaled := map[cutKey]bool{}
	for _, line := range bytes.Split(jrnl, []byte("\n")) {
		if bytes.Contains(line, []byte(`"type":"cut"`)) {
			var e struct {
				Node int64 `json:"node"`
				Peer int64 `json:"peer"`
			}
			if err := json.Unmarshal(line, &e); err != nil {
				t.Fatal(err)
			}
			journaled[cutKey{e.Node, e.Peer}] = true
		}
	}
	for _, p := range cutPaths {
		if !journaled[cutKey{p.Node, p.Suspect}] {
			t.Fatalf("traced cut %+v has no journal record", p)
		}
	}
}
