package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ddpolice/internal/faults"
	"ddpolice/internal/journal"
	"ddpolice/internal/overload"
)

// denseMatrixConfig is the base configuration for the dense-vs-map
// representation cross-check: a police+attack run (so the per-edge
// detection state — the representation under test — is actually
// exercised) at the given overlay size. Agent count scales with the
// overlay so attack density stays near the paper's <=1% regime.
func denseMatrixConfig(peers int) Config {
	cfg := DefaultConfig()
	cfg.NumPeers = peers
	cfg.DurationSec = 360
	cfg.AttackStartSec = 60
	cfg.ChurnEnabled = false
	cfg.PoliceEnabled = true
	cfg.NumAgents = peers / 250
	cfg.Catalog.NumObjects = 2000
	return cfg
}

// denseMatrixScenarios enumerates the overlay-mutation regimes the
// dense/map equivalence must hold under. Every scenario keeps
// DD-POLICE on (otherwise the two representations share all code), and
// each adds one mutation source on top of the attack: none (detection
// cuts are the mutation), continuous churn, a timed partition, and a
// scheduled capacity brownout with the overload plane engaged.
func denseMatrixScenarios() []struct {
	name string
	cfg  func(peers int) Config
} {
	return []struct {
		name string
		cfg  func(peers int) Config
	}{
		{"cuts", denseMatrixConfig},
		{"churn", func(peers int) Config {
			cfg := denseMatrixConfig(peers)
			cfg.ChurnEnabled = true
			return cfg
		}},
		{"partition", func(peers int) Config {
			cfg := denseMatrixConfig(peers)
			cfg.Faults = &faults.Schedule{Partitions: []faults.PartitionEvent{
				{StartSec: 90, EndSec: 240, Peers: []int{1, 2, 3, 4, 5, 6, 7, 8}},
			}}
			return cfg
		}},
		{"brownout", func(peers int) Config {
			cfg := denseMatrixConfig(peers)
			cfg.Overload = &overload.SimPlane{}
			cfg.Faults = &faults.Schedule{Overloads: []faults.OverloadEvent{
				{StartSec: 120, EndSec: 240, Peers: []int{10, 11, 12}, Factor: 0.25},
			}}
			return cfg
		}},
	}
}

// TestDenseMapByteIdentical is the scale pass's representation matrix:
// for every mutation scenario at 2k and 10k peers, the dense
// directed-edge-indexed police state (the default) and the legacy
// map[PeerID]-keyed state (Police.LegacyMapState) must be
// indistinguishable — equal Results (modulo Cache) and byte-identical
// event, journal, and trace streams. The representations differ only
// in memory layout; any divergence here means the dense path changed
// iteration order or dropped an update the map path applied.
func TestDenseMapByteIdentical(t *testing.T) {
	sizes := []int{2000, 10000}
	if testing.Short() || raceDetectorOn {
		// The race detector multiplies each run ~5-10x; the 2k matrix
		// still exercises every scenario under -race, and the plain
		// `make test` pass covers the 10k legs.
		sizes = sizes[:1]
	}
	for _, peers := range sizes {
		for _, sc := range denseMatrixScenarios() {
			t.Run(fmt.Sprintf("%s/%dk", sc.name, peers/1000), func(t *testing.T) {
				dense := sc.cfg(peers)
				legacy := sc.cfg(peers)
				legacy.Police.LegacyMapState = true
				dr, evD, jrD, spD := runTraced(t, dense)
				lr, evL, jrL, spL := runTraced(t, legacy)
				scenario := fmt.Sprintf("%s@%d", sc.name, peers)
				assertSameRun(t, scenario, "dense", "legacy-map",
					dr, lr, evD, evL, jrD, jrL)
				if string(spD) != string(spL) {
					t.Fatalf("%s: trace streams diverged (%d vs %d bytes)",
						scenario, len(spD), len(spL))
				}
				if len(spD) == 0 {
					t.Fatalf("%s: no spans traced (vacuous)", scenario)
				}
				// Vacuousness guard for the representation itself: the
				// cuts scenario must actually drive the per-edge state
				// machine to disconnection, so the compared streams
				// contain real detection traffic, not just silence.
				if sc.name == "cuts" {
					if cuts := journalEvents(t, jrD, journal.TypeCut); len(cuts) == 0 {
						t.Fatalf("%s: no cut events journaled — matrix is vacuous", scenario)
					}
				}
			})
		}
	}
}

// TestShardedRunReleasesGoroutines is the pooled-buffer goroutine
// regression: the sharded proposal phase spawns worker goroutines every
// tick and the parallel replica runner spawns one per seed; both must
// be fully joined by the time Run returns. A leak here compounds per
// tick, so even a small overlay exposes it.
func TestShardedRunReleasesGoroutines(t *testing.T) {
	cfg := denseMatrixConfig(1000)
	cfg.DurationSec = 120
	cfg.Shards = 4
	baseline := runtime.NumGoroutine()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// Goroutine teardown is asynchronous after wg.Wait returns; poll
	// briefly before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before run, %d after", baseline, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTickMarginalAllocsBounded is the in-test mirror of ddbench's
// tick_100k_allocs_per_peer gate, cheap enough for racesmoke: with the
// pooled per-tick buffers (epoch-marked slices, budget touch lists,
// query-trace pool, treeBuilder capacity hints) the steady tick loop
// allocates O(workload), not O(peers). Differencing a 240s run against
// a 120s run cancels setup cost, leaving the per-tick marginal
// allocation rate, which must stay under the same 0.10-per-peer
// ceiling the benchmark gate enforces (steady state measures ~0.03;
// an O(N) rescan reintroduced into the tick loop shows up as >= 1).
func TestTickMarginalAllocsBounded(t *testing.T) {
	run := func(durationSec int) uint64 {
		cfg := DefaultConfig()
		cfg.NumPeers = 2000
		cfg.ChurnEnabled = false
		cfg.DurationSec = durationSec
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	short, long := run(120), run(240)
	if long <= short {
		t.Fatalf("marginal allocs non-positive (%d vs %d): measurement broken", short, long)
	}
	perPeerTick := float64(long-short) / 120 / 2000
	const ceiling = 0.10 // keep in sync with allocsPerPeerTickMax in cmd/ddbench
	t.Logf("marginal allocs per peer per tick: %.4f", perPeerTick)
	if perPeerTick > ceiling {
		t.Fatalf("marginal allocs per peer per tick = %.4f, want <= %.2f (tick loop no longer O(active))",
			perPeerTick, ceiling)
	}
}
