package sim

import (
	"testing"

	"ddpolice/internal/faults"
)

func faultCounter(r *Result, name string) uint64 {
	if r.Telemetry == nil {
		return 0
	}
	for _, c := range r.Telemetry.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

func TestValidateFaults(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Faults = &faults.Schedule{ControlLoss: -0.1} },
		func(c *Config) { c.Faults = &faults.Schedule{ControlLoss: 1.0} },
		func(c *Config) {
			c.Faults = &faults.Schedule{Partitions: []faults.PartitionEvent{
				{StartSec: 60, EndSec: 60, Peers: []int{1, 2}},
			}}
		},
		func(c *Config) {
			c.Faults = &faults.Schedule{Partitions: []faults.PartitionEvent{
				{StartSec: -1, EndSec: 60, Peers: []int{1, 2}},
			}}
		},
		func(c *Config) {
			c.Faults = &faults.Schedule{Partitions: []faults.PartitionEvent{
				{StartSec: 0, EndSec: 60},
			}}
		},
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad faults config %d accepted", i)
		}
	}
}

// TestPartitionApplyAndHeal: a timed partition severs exactly the
// boundary edges of its member set, the heal restores all of them, and
// none of it is billed to the defense's CutEdges.
func TestPartitionApplyAndHeal(t *testing.T) {
	cfg := smallConfig()
	cfg.Telemetry = true
	cfg.Faults = &faults.Schedule{Partitions: []faults.PartitionEvent{
		{StartSec: 60, EndSec: 180, Peers: []int{1, 2, 3, 4, 5}},
	}}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := faultCounter(r, "sim.partition_cut_edges")
	healed := faultCounter(r, "sim.partition_healed_edges")
	if cut == 0 {
		t.Fatal("partition cut no edges")
	}
	if healed != cut {
		t.Errorf("healed %d of %d partition edges", healed, cut)
	}
	if r.CutEdges != 0 {
		t.Errorf("CutEdges = %d, want 0 (no police, partition healed)", r.CutEdges)
	}
}

// TestUnhealedPartitionNotBilledAsDefenseCuts: a partition that outlives
// the run leaves edges severed, but those are injected faults and must
// not appear in the defense's cut count.
func TestUnhealedPartitionNotBilledAsDefenseCuts(t *testing.T) {
	cfg := smallConfig()
	cfg.Telemetry = true
	cfg.Faults = &faults.Schedule{Partitions: []faults.PartitionEvent{
		{StartSec: 60, EndSec: cfg.DurationSec + 100, Peers: []int{1, 2, 3}},
	}}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faultCounter(r, "sim.partition_cut_edges") == 0 {
		t.Fatal("partition cut no edges")
	}
	if faultCounter(r, "sim.partition_healed_edges") != 0 {
		t.Error("heal ran for a partition past the horizon")
	}
	if r.CutEdges != 0 {
		t.Errorf("CutEdges = %d, want 0 (all cuts were injected)", r.CutEdges)
	}
}

// TestCrashChurnSkipsLeaveNotifications: with every departure a crash,
// the run still completes and records the crash count; the defense keeps
// working off timeouts rather than leave notifications.
func TestCrashChurnSkipsLeaveNotifications(t *testing.T) {
	cfg := smallConfig()
	cfg.Telemetry = true
	cfg.ChurnEnabled = true
	cfg.Churn.MeanLifetime = 60
	cfg.Churn.StddevLifetime = 10
	cfg.Churn.MeanOffline = 60
	cfg.Churn.CrashFraction = 1
	cfg.PoliceEnabled = true
	cfg.NumAgents = 5
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := faultCounter(r, "sim.crash_departures"); got == 0 {
		t.Error("no crash departures recorded under CrashFraction=1")
	}
	if r.OverallSuccess <= 0 {
		t.Errorf("system collapsed entirely: success = %v", r.OverallSuccess)
	}
}

// TestFaultsDeterminism: the full fault plane (control loss, partition,
// crash churn) is driven by the run's seeded RNG streams, so identical
// configs give identical results.
func TestFaultsDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.ChurnEnabled = true
	cfg.Churn.CrashFraction = 0.5
	cfg.PoliceEnabled = true
	cfg.NumAgents = 5
	cfg.Faults = &faults.Schedule{
		ControlLoss: 0.2,
		Partitions: []faults.PartitionEvent{
			{StartSec: 90, EndSec: 150, Peers: []int{10, 11, 12}},
		},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.OverallSuccess != b.OverallSuccess || a.QueriesIssued != b.QueriesIssued ||
		a.Detections != b.Detections || a.CutEdges != b.CutEdges {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
