package sim

// Causal-trace plumbing for the tick loop: per-query span trees built
// from the flood engine's visit hook. Kept out of sim.go so the hot
// loop reads as before; everything here runs only for sampled queries.

import (
	"ddpolice/internal/flood"
	"ddpolice/internal/trace"
	"ddpolice/internal/workload"
)

// startQueryTrace opens the trace of one good-peer query and arms the
// flood engine's visit hook to grow the span tree hop by hop. Returns
// nil (and arms nothing) when the query is head-sampled out. The
// caller must disarm the engine after the flood returns.
func startQueryTrace(tcr *trace.Tracer, eng *flood.Engine, seed, tick, index uint64, q workload.Query, now float64) *trace.Trace {
	id := trace.QueryID(seed, tick, index)
	tc := tcr.Start(id, trace.Span{
		Kind: trace.KindQueryIssue, T: now,
		Node: int64(q.Issuer), Value: float64(q.Object),
	})
	if tc == nil {
		return nil
	}
	// spanOf maps a visited peer to its hop span, so deeper hops hang
	// off their BFS parent. The issuer is absent from the map; lookups
	// of depth-1 parents return the zero value, which is the root span
	// — exactly right.
	spanOf := make(map[flood.PeerID]uint32)
	eng.SetTraceVisitor(func(v, parent flood.PeerID, depth int32, out flood.VisitOutcome) {
		kind := trace.KindHop
		detail := ""
		switch out {
		case flood.VisitDropped:
			kind = trace.KindCongestion
		case flood.VisitDead:
			detail = "dead_upstream"
		}
		spanOf[v] = tc.Add(trace.Span{
			Kind: kind, Parent: spanOf[parent], T: now,
			Node: int64(v), Peer: int64(parent), Depth: int(depth),
			Detail: detail,
		})
	})
	return tc
}

// endQueryTrace records the query's terminal span — delivery with the
// first-response round trip, or death by TTL/saturation — and commits.
func endQueryTrace(tc *trace.Trace, now float64, qr flood.QueryResult) {
	if qr.Hit {
		tc.Add(trace.Span{
			Kind: trace.KindDelivery, T: now, Dur: qr.ResponseDelay,
			Depth: qr.FirstHitHops, Value: float64(qr.HitHolders),
		})
	} else {
		kind := trace.KindTTLDeath
		detail := ""
		if qr.CapacityDrops > 0 {
			detail = "saturated"
		}
		tc.Add(trace.Span{
			Kind: kind, T: now,
			Value: float64(qr.CapacityDrops), Detail: detail,
		})
	}
	tc.EndAt(now + qr.ResponseDelay)
}
