package sim

// Causal-trace plumbing for the tick loop: per-query span trees built
// from the flood engine's visit hook. Kept out of sim.go so the hot
// loop reads as before; everything here runs only for sampled queries.

import (
	"ddpolice/internal/flood"
	"ddpolice/internal/trace"
	"ddpolice/internal/workload"
)

// queryTracePool holds the reusable per-peer span index shared by all
// traced queries of one run. spanOf[v] is the span id of v's hop in the
// *current* query; mark/epoch invalidate the whole array in O(1)
// between queries, so tracing allocates nothing per query after the
// first (dense-index pooling, DESIGN §16).
type queryTracePool struct {
	spanOf []uint32
	mark   []uint32
	epoch  uint32
}

func newQueryTracePool(numPeers int) *queryTracePool {
	return &queryTracePool{
		spanOf: make([]uint32, numPeers),
		mark:   make([]uint32, numPeers),
	}
}

// get returns v's span in the current query, or 0 (the root span) when
// v has no hop span yet — matching the old map's zero-value lookup for
// the absent issuer.
func (p *queryTracePool) get(v flood.PeerID) uint32 {
	if p.mark[v] != p.epoch {
		return 0
	}
	return p.spanOf[v]
}

func (p *queryTracePool) set(v flood.PeerID, span uint32) {
	p.spanOf[v] = span
	p.mark[v] = p.epoch
}

// startQueryTrace opens the trace of one good-peer query and arms the
// flood engine's visit hook to grow the span tree hop by hop. Returns
// nil (and arms nothing) when the query is head-sampled out. The
// caller must disarm the engine after the flood returns.
func startQueryTrace(tcr *trace.Tracer, eng *flood.Engine, pool *queryTracePool, seed, tick, index uint64, q workload.Query, now float64) *trace.Trace {
	id := trace.QueryID(seed, tick, index)
	tc := tcr.Start(id, trace.Span{
		Kind: trace.KindQueryIssue, T: now,
		Node: int64(q.Issuer), Value: float64(q.Object),
	})
	if tc == nil {
		return nil
	}
	// The pool maps a visited peer to its hop span, so deeper hops hang
	// off their BFS parent. The issuer is never set; lookups of depth-1
	// parents return the zero value, which is the root span — exactly
	// right.
	pool.epoch++
	eng.SetTraceVisitor(func(v, parent flood.PeerID, depth int32, out flood.VisitOutcome) {
		kind := trace.KindHop
		detail := ""
		switch out {
		case flood.VisitDropped:
			kind = trace.KindCongestion
		case flood.VisitDead:
			detail = "dead_upstream"
		}
		pool.set(v, tc.Add(trace.Span{
			Kind: kind, Parent: pool.get(parent), T: now,
			Node: int64(v), Peer: int64(parent), Depth: int(depth),
			Detail: detail,
		}))
	})
	return tc
}

// endQueryTrace records the query's terminal span — delivery with the
// first-response round trip, or death by TTL/saturation — and commits.
func endQueryTrace(tc *trace.Trace, now float64, qr flood.QueryResult) {
	if qr.Hit {
		tc.Add(trace.Span{
			Kind: trace.KindDelivery, T: now, Dur: qr.ResponseDelay,
			Depth: qr.FirstHitHops, Value: float64(qr.HitHolders),
		})
	} else {
		kind := trace.KindTTLDeath
		detail := ""
		if qr.CapacityDrops > 0 {
			detail = "saturated"
		}
		tc.Add(trace.Span{
			Kind: kind, T: now,
			Value: float64(qr.CapacityDrops), Detail: detail,
		})
	}
	tc.EndAt(now + qr.ResponseDelay)
}
