package sim

import "testing"

func TestRunTelemetryStages(t *testing.T) {
	cfg := smallConfig()
	cfg.NumPeers = 200
	cfg.DurationSec = 120
	cfg.Catalog.NumObjects = 500
	cfg.ChurnEnabled = true
	cfg.NumAgents = 2
	cfg.PoliceEnabled = true
	cfg.Telemetry = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) != len(StageNames) {
		t.Fatalf("stages = %d, want %d", len(r.Stages), len(StageNames))
	}
	for i, st := range r.Stages {
		if st.Name != StageNames[i] {
			t.Errorf("stage %d = %q, want %q", i, st.Name, StageNames[i])
		}
	}
	byName := map[string]int{}
	for i, st := range r.Stages {
		byName[st.Name] = i
	}
	// Every instrumented stage ran in this configuration.
	for _, name := range []string{"churn", "attack", "querygen", "flood", "police", "metrics"} {
		st := r.Stages[byName[name]]
		if st.Count == 0 {
			t.Errorf("stage %q never recorded an interval", name)
		}
	}
	if r.Telemetry == nil {
		t.Fatal("no telemetry snapshot despite cfg.Telemetry")
	}
	counters := map[string]uint64{}
	for _, c := range r.Telemetry.Counters {
		counters[c.Name] = c.Value
	}
	if counters["flood.floods"] == 0 || counters["flood.edges_traversed"] == 0 {
		t.Errorf("flood engine counters empty: %v", counters)
	}
	if counters["flood.dup_suppressed"] == 0 {
		t.Errorf("no duplicate suppressions recorded on a cyclic overlay: %v", counters)
	}
}

func TestRunTelemetryDisabledByDefault(t *testing.T) {
	cfg := smallConfig()
	cfg.NumPeers = 200
	cfg.DurationSec = 60
	cfg.Catalog.NumObjects = 500
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stages != nil || r.Telemetry != nil {
		t.Fatal("telemetry present without cfg.Telemetry")
	}
}
