package sim

// Structured event logging: when Config.Events is set, the simulator
// emits one JSON object per line describing attack onset, DD-POLICE
// disconnect decisions, and per-minute system state — the raw material
// for post-hoc analysis beyond the aggregate Result.

import (
	"encoding/json"
	"io"

	"ddpolice/internal/metrics"
	"ddpolice/internal/overlay"
	"ddpolice/internal/police"
)

// Event is one log record. Type is one of "attack_start", "detection",
// "minute"; unused fields are omitted.
type Event struct {
	T    float64 `json:"t"` // seconds of virtual time
	Type string  `json:"type"`

	// attack_start
	Agents []overlay.PeerID `json:"agents,omitempty"`

	// detection
	Observer overlay.PeerID `json:"observer,omitempty"`
	Suspect  overlay.PeerID `json:"suspect,omitempty"`
	General  float64        `json:"g,omitempty"`
	Single   float64        `json:"s,omitempty"`
	BadPeer  *bool          `json:"bad,omitempty"`

	// minute
	Minute    int     `json:"minute,omitempty"`
	Success   float64 `json:"success,omitempty"`
	Traffic   float64 `json:"traffic,omitempty"`
	Online    int     `json:"online,omitempty"`
	CutEdges  int     `json:"cut_edges,omitempty"`
	Issued    int     `json:"issued,omitempty"`
	Succeeded int     `json:"succeeded,omitempty"`
}

// eventLog serializes events to the configured writer.
type eventLog struct {
	enc  *json.Encoder
	seen int // detections already logged
}

func newEventLog(w io.Writer) *eventLog {
	if w == nil {
		return nil
	}
	return &eventLog{enc: json.NewEncoder(w)}
}

func (l *eventLog) emit(e Event) {
	if l == nil {
		return
	}
	// Encoding errors are deliberately swallowed: event logging must
	// never abort a simulation mid-run.
	_ = l.enc.Encode(e)
}

func (l *eventLog) attackStart(t float64, agents []overlay.PeerID) {
	l.emit(Event{T: t, Type: "attack_start", Agents: agents})
}

// drainDetections logs any new disconnect decisions since the last call.
func (l *eventLog) drainDetections(pol *police.Police) {
	if l == nil || pol == nil {
		return
	}
	ds := pol.Detections()
	for ; l.seen < len(ds); l.seen++ {
		d := ds[l.seen]
		bad := pol.IsBad(d.Suspect)
		l.emit(Event{
			T: d.At, Type: "detection",
			Observer: d.Observer, Suspect: d.Suspect,
			General: d.General, Single: d.Single, BadPeer: &bad,
		})
	}
}

func (l *eventLog) minute(t float64, minute int, m metrics.MinuteStats, cutEdges int) {
	l.emit(Event{
		T: t, Type: "minute", Minute: minute,
		Success: m.SuccessRate(), Traffic: m.TrafficCost(),
		Online: m.OnlinePeers, CutEdges: cutEdges,
		Issued: m.Issued, Succeeded: m.Succeeded,
	})
}
