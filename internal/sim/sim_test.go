package sim

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"ddpolice/internal/metrics"
)

// smallConfig returns a fast configuration for unit tests: 1,000 peers
// (so that the test agent counts stay near the paper's <=1% density),
// 6 simulated minutes, no churn (tests opt in to churn explicitly).
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPeers = 1000
	cfg.DurationSec = 360
	cfg.AttackStartSec = 60
	cfg.ChurnEnabled = false
	cfg.Catalog.NumObjects = 2000
	return cfg
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumPeers = 5 },
		func(c *Config) { c.TopologyM = 0 },
		func(c *Config) { c.QueriesPerMin = -1 },
		func(c *Config) { c.TTL = 0 },
		func(c *Config) { c.GoodCapacityPerMin = 0 },
		func(c *Config) { c.NumAgents = -1 },
		func(c *Config) { c.NumAgents = 1000 },
		func(c *Config) { c.DurationSec = 30 },
		func(c *Config) { c.AttackStartSec = -1 },
		func(c *Config) { c.PoliceEnabled = true; c.Police.Q0 = 0 },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBaselineHealthy(t *testing.T) {
	cfg := smallConfig()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Minutes) != 6 {
		t.Fatalf("minutes = %d", len(r.Minutes))
	}
	if r.OverallSuccess < 0.9 {
		t.Fatalf("baseline success = %v, want healthy (>0.9)", r.OverallSuccess)
	}
	if r.MeanResponseTime <= 0 || r.MeanResponseTime > 1 {
		t.Fatalf("baseline response time = %v s", r.MeanResponseTime)
	}
	if r.QueriesIssued == 0 {
		t.Fatal("no queries issued")
	}
	if r.MeanHitHops < 1 {
		t.Fatalf("mean hit hops = %v", r.MeanHitHops)
	}
	if r.CutEdges != 0 || r.Detections != 0 {
		t.Fatal("undefended baseline recorded defense activity")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.NumAgents = 3
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.OverallSuccess != b.OverallSuccess || a.MeanTraffic != b.MeanTraffic ||
		a.QueriesIssued != b.QueriesIssued || a.AttackVolume != b.AttackVolume {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestAttackDegradesSystem verifies the §3.6 findings at reduced scale:
// agents inflate traffic and depress success rate and response time.
func TestAttackDegradesSystem(t *testing.T) {
	base, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.NumAgents = 10
	hit, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit.MeanTraffic < base.MeanTraffic*2 {
		t.Errorf("attack traffic %v not >= 2x baseline %v", hit.MeanTraffic, base.MeanTraffic)
	}
	if hit.OverallSuccess >= base.OverallSuccess {
		t.Errorf("attack success %v not below baseline %v", hit.OverallSuccess, base.OverallSuccess)
	}
	if hit.OverallSuccess > 0.7 {
		t.Errorf("a one-percent agent population should hurt: success %v", hit.OverallSuccess)
	}
	if hit.MeanResponseTime <= base.MeanResponseTime {
		t.Errorf("attack response %v not above baseline %v", hit.MeanResponseTime, base.MeanResponseTime)
	}
	if hit.AttackVolume == 0 {
		t.Error("no attack volume recorded")
	}
}

// TestPoliceRestoresService: with DD-POLICE enabled, agents are
// detected and the success rate recovers toward baseline.
func TestPoliceRestoresService(t *testing.T) {
	cfg := smallConfig()
	cfg.DurationSec = 600
	cfg.NumAgents = 10

	undefended, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PoliceEnabled = true
	defended, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if defended.Detections == 0 {
		t.Fatal("no detections")
	}
	if defended.FalsePositives > 2 {
		t.Errorf("missed %d of 10 agents", defended.FalsePositives)
	}
	if defended.OverallSuccess <= undefended.OverallSuccess {
		t.Errorf("defended success %v not above undefended %v",
			defended.OverallSuccess, undefended.OverallSuccess)
	}
	// Late minutes should be near-healthy once agents are isolated.
	late := defended.SuccessSeries[len(defended.SuccessSeries)-1]
	if late < 0.8 {
		t.Errorf("late defended success = %v, want recovered", late)
	}
	if defended.CutEdges == 0 {
		t.Error("no edges cut")
	}
	if defended.Overhead.Total() == 0 {
		t.Error("no control overhead recorded")
	}
}

func TestChurnRunCompletes(t *testing.T) {
	cfg := smallConfig()
	cfg.ChurnEnabled = true
	cfg.Churn.MeanLifetime = 120
	cfg.Churn.StddevLifetime = 30
	cfg.Churn.MeanOffline = 120
	cfg.NumAgents = 5
	cfg.PoliceEnabled = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Minutes) != 6 {
		t.Fatalf("minutes = %d", len(r.Minutes))
	}
	// With churn the online population must dip below the full size.
	sawPartial := false
	for _, m := range r.Minutes {
		if m.OnlinePeers < cfg.NumPeers {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("churn never took peers offline")
	}
}

func TestDamagePipeline(t *testing.T) {
	cfg := smallConfig()
	cfg.DurationSec = 600
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NumAgents = 10
	cfg.PoliceEnabled = true
	def, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dmg := metrics.DamageSeries(base.SuccessSeries, def.SuccessSeries)
	// Damage must spike after attack start (minute 1) and then recover.
	peak := 0.0
	for _, d := range dmg {
		if d > peak {
			peak = d
		}
	}
	if peak < 20 {
		t.Fatalf("peak damage = %v%%, expected an attack spike", peak)
	}
	tail := metrics.MeanTail(dmg, 0.2)
	if tail >= peak {
		t.Fatalf("damage did not recover: tail %v%% vs peak %v%%", tail, peak)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	cfgA := smallConfig()
	cfgB := smallConfig()
	cfgB.NumAgents = 5
	rs, err := RunParallel([]Config{cfgA, cfgB})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].OverallSuccess != seq.OverallSuccess || rs[1].MeanTraffic != seq.MeanTraffic {
		t.Fatal("parallel result differs from sequential run")
	}
}

func TestAveraged(t *testing.T) {
	cfg := smallConfig()
	cfg.DurationSec = 120
	r, err := Averaged(cfg, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.OverallSuccess <= 0 || r.OverallSuccess > 1 {
		t.Fatalf("averaged success = %v", r.OverallSuccess)
	}
	single, err := Averaged(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if single.QueriesIssued == 0 {
		t.Fatal("empty-seed Averaged did not run")
	}
}

func TestEventLog(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallConfig()
	cfg.DurationSec = 300
	cfg.NumAgents = 5
	cfg.PoliceEnabled = true
	cfg.Events = &buf
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	var (
		attackStarts, detections, minutes int
		sawBadDetection                   bool
	)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("bad event JSON: %v", err)
		}
		switch e.Type {
		case "attack_start":
			attackStarts++
			if len(e.Agents) != 5 {
				t.Errorf("attack_start lists %d agents", len(e.Agents))
			}
		case "detection":
			detections++
			if e.BadPeer == nil {
				t.Error("detection without ground-truth flag")
			} else if *e.BadPeer {
				sawBadDetection = true
			}
		case "minute":
			minutes++
		default:
			t.Errorf("unknown event type %q", e.Type)
		}
	}
	if attackStarts != 1 {
		t.Errorf("attack_start events = %d", attackStarts)
	}
	if minutes != 5 {
		t.Errorf("minute events = %d, want 5", minutes)
	}
	if detections == 0 || !sawBadDetection {
		t.Errorf("detections = %d (bad-peer seen: %v)", detections, sawBadDetection)
	}
}

func TestFairShareDropFlag(t *testing.T) {
	cfg := smallConfig()
	cfg.NumAgents = 5
	fcfs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FairShareDrop = true
	fair, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The budget policy must actually change the outcome.
	if fair.OverallSuccess == fcfs.OverallSuccess && fair.MeanTraffic == fcfs.MeanTraffic {
		t.Fatal("fair-share flag had no effect")
	}
	// And the same flag must stay deterministic.
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.OverallSuccess != fair.OverallSuccess {
		t.Fatal("fair-share run not deterministic")
	}
}

func TestIdealCountersFlag(t *testing.T) {
	cfg := smallConfig()
	cfg.NumAgents = 5
	cfg.PoliceEnabled = true
	physical, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.IdealCounters = true
	ideal, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The monitoring plane changes what observers see, hence decisions.
	if ideal.Detections == physical.Detections && ideal.FalseNegatives == physical.FalseNegatives {
		t.Fatal("ideal-counters flag had no effect on detection behaviour")
	}
}

func TestAgentsJoinAtAttackStart(t *testing.T) {
	cfg := smallConfig()
	cfg.NumAgents = 5
	cfg.AttackStartSec = 120
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Minute 0-1: agents offline => online population below full.
	if r.Minutes[0].OnlinePeers != cfg.NumPeers-cfg.NumAgents {
		t.Fatalf("pre-attack online = %d, want %d",
			r.Minutes[0].OnlinePeers, cfg.NumPeers-cfg.NumAgents)
	}
	// After the attack starts they are online (no churn in smallConfig).
	if r.Minutes[3].OnlinePeers != cfg.NumPeers {
		t.Fatalf("post-attack online = %d, want %d", r.Minutes[3].OnlinePeers, cfg.NumPeers)
	}
}
