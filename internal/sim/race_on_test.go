//go:build race

package sim

// raceDetectorOn lets heavyweight matrix tests trim their largest legs
// under `go test -race` (make racesmoke), where every run costs 5-10x.
const raceDetectorOn = true
