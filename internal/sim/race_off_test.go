//go:build !race

package sim

const raceDetectorOn = false
