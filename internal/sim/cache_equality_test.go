package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"ddpolice/internal/faults"
	"ddpolice/internal/flood"
	"ddpolice/internal/journal"
	"ddpolice/internal/telemetry"
)

// runInstrumented executes one config with the event stream and
// detection journal captured.
func runInstrumented(t *testing.T, cfg Config) (res *Result, events, jrnl []byte) {
	t.Helper()
	var ev bytes.Buffer
	cfg.Events = &ev
	jr := journal.New(4096)
	cfg.Journal = jr
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var jb bytes.Buffer
	if err := jr.WriteNDJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return res, ev.Bytes(), jb.Bytes()
}

// stripCache returns a copy of res with the cache-effectiveness
// counters zeroed. Result.Cache is the one field the determinism
// contract (DESIGN.md §13) exempts: hit/build/prewarm tallies
// legitimately differ between cached and uncached runs and between
// serial and sharded runs, while every other byte must match.
func stripCache(res *Result) *Result {
	c := *res
	c.Cache = flood.CacheStats{}
	return &c
}

// assertSameRun asserts the full acceptance property between two runs
// of the same seed: equal Results (modulo Cache) and byte-identical
// event/journal streams.
func assertSameRun(t *testing.T, scenario, labelA, labelB string, a, b *Result, evA, evB, jrA, jrB []byte) {
	t.Helper()
	if !reflect.DeepEqual(stripCache(a), stripCache(b)) {
		t.Fatalf("%s: Results diverged:\n%s: %+v\n%s: %+v", scenario, labelA, a, labelB, b)
	}
	if !bytes.Equal(evA, evB) {
		t.Fatalf("%s: event streams diverged (%d vs %d bytes)", scenario, len(evA), len(evB))
	}
	if !bytes.Equal(jrA, jrB) {
		t.Fatalf("%s: journals diverged (%d vs %d bytes)", scenario, len(jrA), len(jrB))
	}
}

// assertIdenticalRuns runs cfg with the traversal cache on and off and
// asserts the runs are indistinguishable.
func assertIdenticalRuns(t *testing.T, scenario string, cfg Config) {
	t.Helper()
	uc := cfg
	uc.DisableFloodCache = true
	cached, evC, jrC := runInstrumented(t, cfg)
	uncached, evU, jrU := runInstrumented(t, uc)
	assertSameRun(t, scenario, "cached", "uncached", cached, uncached, evC, evU, jrC, jrU)
}

func equalityConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPeers = 800
	cfg.DurationSec = 360
	cfg.AttackStartSec = 60
	cfg.ChurnEnabled = false
	cfg.Catalog.NumObjects = 2000
	return cfg
}

// equalityScenarios enumerates every overlay-mutation regime the
// determinism contract must hold under; the cached-vs-uncached tests
// and the serial-vs-sharded suite share this list.
func equalityScenarios() []struct {
	name string
	cfg  func() Config
} {
	return []struct {
		name string
		cfg  func() Config
	}{
		{"steady", equalityConfig},
		{"churn", func() Config {
			cfg := equalityConfig()
			cfg.ChurnEnabled = true
			return cfg
		}},
		{"partition", func() Config {
			cfg := equalityConfig()
			cfg.Faults = &faults.Schedule{Partitions: []faults.PartitionEvent{
				{StartSec: 90, EndSec: 210, Peers: []int{1, 2, 3, 4, 5, 6, 7, 8}},
			}}
			return cfg
		}},
		{"police", func() Config {
			cfg := equalityConfig()
			cfg.PoliceEnabled = true
			cfg.NumAgents = 4
			return cfg
		}},
		{"fairshare", func() Config {
			cfg := equalityConfig()
			cfg.ChurnEnabled = true
			cfg.FairShareDrop = true
			cfg.NumAgents = 4
			return cfg
		}},
	}
}

// TestCachedRunByteIdentical covers every scenario in
// equalityScenarios: the no-churn attack run the perf gate benchmarks
// ("steady"); continuous join/leave churn, where every SetOnline bumps
// the overlay version and must flush the traversal cache before the
// next flood ("churn"); timed partition apply and heal, which mutate
// connectivity through Cut/Uncut mid-run ("partition"); DD-POLICE
// detection cuts, the remaining overlay mutation source ("police");
// and the fair-share budget path under churn, where per-edge shares
// are rebuilt on the same mutation counter the traversal cache keys on
// ("fairshare").
func TestCachedRunByteIdentical(t *testing.T) {
	for _, sc := range equalityScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			assertIdenticalRuns(t, sc.name, sc.cfg())
		})
	}
}

// TestShardedRunByteIdentical is the tentpole acceptance suite: for
// every mutation scenario, the sharded two-phase tick (parallel tree
// proposal + serial commit) at 2, 4, and 8 shards must be
// byte-identical to the serial engine — same Result (modulo Cache),
// same event stream, same detection journal.
func TestShardedRunByteIdentical(t *testing.T) {
	for _, sc := range equalityScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			serial, evS, jrS := runInstrumented(t, sc.cfg())
			for _, shards := range []int{2, 4, 8} {
				cfg := sc.cfg()
				cfg.Shards = shards
				sharded, evP, jrP := runInstrumented(t, cfg)
				label := fmt.Sprintf("shards=%d", shards)
				assertSameRun(t, sc.name+"/"+label, "serial", label,
					serial, sharded, evS, evP, jrS, jrP)
			}
		})
	}
}

// TestShardedRunEngagesPrewarm guards the sharded suite against
// passing vacuously: a sharded steady run must actually route tree
// builds through the proposal phase.
func TestShardedRunEngagesPrewarm(t *testing.T) {
	cfg := equalityConfig()
	cfg.Shards = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Prewarmed == 0 {
		t.Fatalf("proposal phase never built a tree: %+v", res.Cache)
	}
	if res.Cache.Hits == 0 {
		t.Fatalf("prewarmed trees never replayed: %+v", res.Cache)
	}
}

// TestSteadyRunEngagesCache guards against the equality suite passing
// vacuously: in the steady-topology query loop (the configuration the
// perf gate benchmarks) the cache must actually replay floods, visible
// through the end-of-run telemetry gauges. No attack agents here on
// purpose — network-wide saturation clips floods, and clipped floods
// are exactly the ones replay must refuse (a clipped peer stops
// forwarding, so the cached tree would not be byte-identical).
func TestSteadyRunEngagesCache(t *testing.T) {
	cfg := equalityConfig()
	cfg.Registry = telemetry.New()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	hits := cfg.Registry.Gauge("flood.cache_hits").Load()
	builds := cfg.Registry.Gauge("flood.cache_builds").Load()
	if hits == 0 || builds == 0 {
		t.Fatalf("traversal cache never engaged: hits=%d builds=%d", hits, builds)
	}
}

