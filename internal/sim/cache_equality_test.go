package sim

import (
	"bytes"
	"reflect"
	"testing"

	"ddpolice/internal/faults"
	"ddpolice/internal/journal"
	"ddpolice/internal/telemetry"
)

// runCachedUncached executes the same config twice — traversal cache on
// and off — capturing the event stream and detection journal of each.
func runCachedUncached(t *testing.T, cfg Config) (cached, uncached *Result, evCached, evUncached []byte, jrCached, jrUncached []byte) {
	t.Helper()
	run := func(disable bool) (*Result, []byte, []byte) {
		c := cfg
		c.DisableFloodCache = disable
		var ev bytes.Buffer
		c.Events = &ev
		jr := journal.New(4096)
		c.Journal = jr
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		var jb bytes.Buffer
		if err := jr.WriteNDJSON(&jb); err != nil {
			t.Fatal(err)
		}
		return res, ev.Bytes(), jb.Bytes()
	}
	cached, evCached, jrCached = run(false)
	uncached, evUncached, jrUncached = run(true)
	return
}

// assertIdenticalRuns asserts the full acceptance property: equal
// Results and byte-identical event/journal streams.
func assertIdenticalRuns(t *testing.T, scenario string, cfg Config) {
	t.Helper()
	cached, uncached, evC, evU, jrC, jrU := runCachedUncached(t, cfg)
	if !reflect.DeepEqual(cached, uncached) {
		t.Fatalf("%s: Results diverged:\ncached:   %+v\nuncached: %+v", scenario, cached, uncached)
	}
	if !bytes.Equal(evC, evU) {
		t.Fatalf("%s: event streams diverged (%d vs %d bytes)", scenario, len(evC), len(evU))
	}
	if !bytes.Equal(jrC, jrU) {
		t.Fatalf("%s: journals diverged (%d vs %d bytes)", scenario, len(jrC), len(jrU))
	}
}

func equalityConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPeers = 800
	cfg.DurationSec = 360
	cfg.AttackStartSec = 60
	cfg.ChurnEnabled = false
	cfg.Catalog.NumObjects = 2000
	return cfg
}

// TestCachedRunByteIdenticalSteady covers the no-churn attack run — the
// configuration the perf gate benchmarks.
func TestCachedRunByteIdenticalSteady(t *testing.T) {
	assertIdenticalRuns(t, "steady", equalityConfig())
}

// TestCachedRunByteIdenticalChurn covers continuous join/leave churn:
// every SetOnline bumps the overlay version and must flush the
// traversal cache before the next flood.
func TestCachedRunByteIdenticalChurn(t *testing.T) {
	cfg := equalityConfig()
	cfg.ChurnEnabled = true
	assertIdenticalRuns(t, "churn", cfg)
}

// TestCachedRunByteIdenticalPartition covers timed partition apply and
// heal, which mutate connectivity through Cut/Uncut mid-run.
func TestCachedRunByteIdenticalPartition(t *testing.T) {
	cfg := equalityConfig()
	cfg.Faults = &faults.Schedule{Partitions: []faults.PartitionEvent{
		{StartSec: 90, EndSec: 210, Peers: []int{1, 2, 3, 4, 5, 6, 7, 8}},
	}}
	assertIdenticalRuns(t, "partition", cfg)
}

// TestCachedRunByteIdenticalPolice covers DD-POLICE detection cuts (and
// the fair-share baseline alongside), the remaining overlay mutation
// source.
func TestCachedRunByteIdenticalPolice(t *testing.T) {
	cfg := equalityConfig()
	cfg.PoliceEnabled = true
	cfg.NumAgents = 4
	assertIdenticalRuns(t, "police", cfg)
}

// TestSteadyRunEngagesCache guards against the equality suite passing
// vacuously: in the steady-topology query loop (the configuration the
// perf gate benchmarks) the cache must actually replay floods, visible
// through the end-of-run telemetry gauges. No attack agents here on
// purpose — network-wide saturation clips floods, and clipped floods
// are exactly the ones replay must refuse (a clipped peer stops
// forwarding, so the cached tree would not be byte-identical).
func TestSteadyRunEngagesCache(t *testing.T) {
	cfg := equalityConfig()
	cfg.Registry = telemetry.New()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	hits := cfg.Registry.Gauge("flood.cache_hits").Load()
	builds := cfg.Registry.Gauge("flood.cache_builds").Load()
	if hits == 0 || builds == 0 {
		t.Fatalf("traversal cache never engaged: hits=%d builds=%d", hits, builds)
	}
}

// TestCachedRunByteIdenticalFairShare covers the fair-share budget path
// under churn, where per-edge shares are rebuilt on the same mutation
// counter the traversal cache keys on.
func TestCachedRunByteIdenticalFairShare(t *testing.T) {
	cfg := equalityConfig()
	cfg.ChurnEnabled = true
	cfg.FairShareDrop = true
	cfg.NumAgents = 4
	assertIdenticalRuns(t, "fairshare", cfg)
}
