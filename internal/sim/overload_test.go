package sim

import (
	"bytes"
	"testing"

	"ddpolice/internal/faults"
	"ddpolice/internal/journal"
	"ddpolice/internal/overload"
)

// controlDelivery is the run's control-plane delivery rate: DD-POLICE
// messages that survived the loss model over messages sent.
func controlDelivery(r *Result) float64 {
	sent := float64(r.Overhead.Total())
	if sent == 0 {
		return 1
	}
	return 1 - float64(r.ControlLost)/sent
}

func journalEvents(t *testing.T, jrnl []byte, typ string) []journal.Event {
	t.Helper()
	evs, err := journal.ReadNDJSON(bytes.NewReader(jrnl))
	if err != nil {
		t.Fatal(err)
	}
	var out []journal.Event
	for _, e := range evs {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

func TestValidateOverload(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) {
			c.Faults = &faults.Schedule{Overloads: []faults.OverloadEvent{
				{StartSec: 60, EndSec: 60, Peers: []int{1}, Factor: 0.5},
			}}
		},
		func(c *Config) {
			c.Faults = &faults.Schedule{Overloads: []faults.OverloadEvent{
				{StartSec: 0, EndSec: 60, Factor: 0.5},
			}}
		},
		func(c *Config) {
			c.Faults = &faults.Schedule{Overloads: []faults.OverloadEvent{
				{StartSec: 0, EndSec: 60, Peers: []int{1}, Factor: 1},
			}}
		},
		func(c *Config) { c.Overload = &overload.SimPlane{ControlReserveFrac: 1.5} },
		func(c *Config) { c.Overload = &overload.SimPlane{ControlLossCap: 1} },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad overload config %d accepted", i)
		}
	}
}

// TestOverloadPlaneControlDelivery is the simulator half of the PR's
// acceptance test: under a saturating flood (agents at 20k queries/min
// against 1k/min peer capacity), the overload plane's control reserve
// keeps DD-POLICE delivery >= 95% and detection's time-to-cut bounded,
// while the same attack without the plane loses far more control
// traffic to congestion.
func TestOverloadPlaneControlDelivery(t *testing.T) {
	cfg := smallConfig()
	cfg.DurationSec = 600
	cfg.NumAgents = 10
	cfg.PoliceEnabled = true

	off, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The degraded threshold is over the *global* fluid drop fraction;
	// 10 attacked neighborhoods among 1000 peers dilute to ~0.22 during
	// the saturated minute, so the default node-local 0.5 is lowered.
	cfg.Overload = &overload.SimPlane{DegradedLossThreshold: 0.2}
	on, _, jrnl := runInstrumented(t, cfg)

	dOn, dOff := controlDelivery(on), controlDelivery(off)
	if dOn < 0.95 {
		t.Errorf("control delivery with overload plane = %.3f, want >= 0.95", dOn)
	}
	if dOn <= dOff {
		t.Errorf("plane did not help: delivery %.3f (on) vs %.3f (off)", dOn, dOff)
	}
	if on.Detections == 0 {
		t.Fatal("no detections with the overload plane enabled")
	}

	// Bounded time-to-cut: the first cut lands within 7 minutes of
	// attack start even though the attacked nodes run saturated.
	cuts := journalEvents(t, jrnl, journal.TypeCut)
	if len(cuts) == 0 {
		t.Fatal("no cut events journaled")
	}
	first := cuts[0].T
	for _, c := range cuts[1:] {
		if c.T < first {
			first = c.T
		}
	}
	bound := float64(cfg.AttackStartSec) + 7*60
	if first > bound {
		t.Errorf("first cut at t=%vs, want <= %vs", first, bound)
	}

	// Saturation is visible in the journal: query-plane shed markers
	// and at least one degraded-minute transition.
	if len(journalEvents(t, jrnl, journal.TypeShed)) == 0 {
		t.Error("no shed events journaled under a 20x flood")
	}
	if len(journalEvents(t, jrnl, journal.TypeDegraded)) == 0 {
		t.Error("no degraded transitions journaled under a 20x flood")
	}
}

// TestOverloadPlaneNilKeepsHistoricalStream: with Config.Overload nil
// the journal must contain none of the overload event types — the
// stream is exactly the historical (pre-overload-plane) one.
func TestOverloadPlaneNilKeepsHistoricalStream(t *testing.T) {
	cfg := smallConfig()
	cfg.DurationSec = 600
	cfg.NumAgents = 10
	cfg.PoliceEnabled = true
	_, _, jrnl := runInstrumented(t, cfg)
	for _, typ := range []string{
		journal.TypeShed, journal.TypeDegraded,
		journal.TypeQuarantine, journal.TypeOverload,
	} {
		if got := journalEvents(t, jrnl, typ); len(got) != 0 {
			t.Errorf("nil overload plane journaled %d %q events, want 0", len(got), typ)
		}
	}
}

// TestOverloadPlaneDeterministic: the overload plane and scheduled
// brownouts introduce no nondeterminism — identical seeds produce
// equal Results and byte-identical event/journal streams.
func TestOverloadPlaneDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.NumAgents = 5
	cfg.PoliceEnabled = true
	cfg.Overload = &overload.SimPlane{}
	cfg.Faults = &faults.Schedule{Overloads: []faults.OverloadEvent{
		{StartSec: 120, EndSec: 240, Peers: []int{10, 11, 12}, Factor: 0.25},
	}}
	a, evA, jrA := runInstrumented(t, cfg)
	b, evB, jrB := runInstrumented(t, cfg)
	assertSameRun(t, "overload plane", "first", "second", a, b, evA, evB, jrA, jrB)
}

// TestBrownoutEvents: a scheduled capacity brownout is applied and
// restored at its virtual-time boundaries, counted in telemetry, and
// journaled as a start/end pair.
func TestBrownoutEvents(t *testing.T) {
	cfg := smallConfig()
	cfg.Telemetry = true
	cfg.Faults = &faults.Schedule{Overloads: []faults.OverloadEvent{
		{StartSec: 60, EndSec: 180, Peers: []int{1, 2, 3, 4, 5}, Factor: 0},
	}}
	var res *Result
	var jrnl []byte
	res, _, jrnl = runInstrumented(t, cfg)
	if got := faultCounter(res, "sim.overload_brownouts"); got != 1 {
		t.Errorf("sim.overload_brownouts = %d, want 1", got)
	}
	evs := journalEvents(t, jrnl, journal.TypeOverload)
	if len(evs) != 2 {
		t.Fatalf("overload journal events = %d, want start+end", len(evs))
	}
	if evs[0].Detail != "start" || evs[0].T != 60 || evs[0].K != 5 {
		t.Errorf("start event = %+v", evs[0])
	}
	if evs[1].Detail != "end" || evs[1].T != 180 {
		t.Errorf("end event = %+v", evs[1])
	}
}
