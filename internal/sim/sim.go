// Package sim ties the substrates together into the paper's simulation:
// a BRITE-like topology of peers with KaZaA/Gnutella-calibrated
// workload, churn, overlay DDoS agents, and optionally DD-POLICE. Time
// advances in one-second ticks; per-minute windows drive the
// Out_query/In_query counters and DD-POLICE evaluation, exactly
// mirroring the paper's per-minute definitions.
package sim

import (
	"fmt"
	"io"

	"ddpolice/internal/attack"
	"ddpolice/internal/capacity"
	"ddpolice/internal/faults"
	"ddpolice/internal/flood"
	"ddpolice/internal/journal"
	"ddpolice/internal/metrics"
	"ddpolice/internal/overlay"
	"ddpolice/internal/overload"
	"ddpolice/internal/police"
	"ddpolice/internal/rng"
	"ddpolice/internal/telemetry"
	"ddpolice/internal/topology"
	"ddpolice/internal/trace"
	"ddpolice/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	Seed uint64

	// Topology.
	NumPeers  int // paper: 2,000
	TopologyM int // BA attachment parameter; 3 gives avg degree ~6

	// Workload.
	Catalog       workload.CatalogConfig
	QueriesPerMin float64 // per online peer; paper: 0.3
	TTL           int     // flood TTL; 7

	// Peer capability: the effective per-peer query forwarding/
	// processing rate (queries/min) that overload exhausts. See
	// capacity.EffectiveForwardPerMin for the calibration rationale.
	GoodCapacityPerMin float64

	// Churn.
	ChurnEnabled bool
	Churn        overlay.ChurnConfig

	// Attack.
	NumAgents      int
	Agent          attack.AgentConfig
	Links          attack.LinkModel
	AttackStartSec int // agents stay quiet before this
	// AttackSlices interleaves each tick's attack volume to model fair
	// capacity sharing among competing floods (see attack.TickSliced).
	AttackSlices int

	// Defense. PoliceEnabled=false leaves the system undefended.
	PoliceEnabled bool
	Police        police.Config
	// AgentsLieAboutLists makes agents advertise fabricated neighbor
	// lists (§3.1's lying scenario; countered by Police.VerifyLists).
	AgentsLieAboutLists bool

	// ControlLossCap bounds the congestion-driven loss probability of
	// DD-POLICE control messages (lists, reports). 0 disables loss.
	ControlLossCap float64

	// Overload, when non-nil, enables the simulator mirror of the
	// overload-resilience plane (internal/overload.SimPlane): a
	// control-plane capacity reserve is carved out of every peer's
	// query budget (queries shed more under flood), the
	// congestion-derived control-message loss is capped at the plane's
	// much tighter ControlLossCap (the reserve protects the control
	// plane from congestion — injected fault loss still adds on top),
	// and per-minute shed/degraded markers are journaled. Zero fields
	// take their defaults. Nil keeps the historical behaviour exactly:
	// identical-seed runs produce byte-identical Results and journals.
	Overload *overload.SimPlane

	// Faults, when non-nil, injects scheduled failures: an
	// unconditional control-message loss floor (added to the
	// congestion-derived loss each minute) and timed partition/heal
	// events that sever all edges between the listed peers and the rest
	// of the overlay. Crash-vs-graceful departures are configured on
	// Churn.CrashFraction: a crashed peer skips the leave-side protocol
	// notifications, so its buddies hold stale state until their own
	// timeouts clear it. Nil costs a pointer check per tick.
	Faults *faults.Schedule

	// IdealCounters switches the monitoring counters to the paper's
	// idealized forward-everything plane (flood.CounterIdeal) — an
	// ablation; see DESIGN.md "Calibration".
	IdealCounters bool

	// DisableFloodCache turns off the flood engine's topology-versioned
	// traversal cache and runs every flood as a full BFS. Results are
	// byte-identical either way (asserted by the equality suite in
	// cache_equality_test.go); the switch exists for that A/B check and
	// for the ddbench uncached baseline.
	DisableFloodCache bool

	// Shards > 1 enables the deterministic sharded tick engine: each
	// tick first runs a parallel *proposal* phase in which that many
	// worker shards build the structural traversal trees of every flood
	// the tick has declared (good-peer queries and attacker batches)
	// against the immutable connectivity snapshot, then a serial
	// *commit* phase floods them in the ordinary order, replaying the
	// prewarmed trees. Results are byte-identical to the serial engine
	// for every value except Result.Cache's effectiveness counters
	// (asserted across scenarios by the parallel-vs-serial suite in
	// cache_equality_test.go). 0 or 1 keeps the serial tick; the engine
	// also falls back to serial when DisableFloodCache is set, since
	// proposals ride the traversal cache. See DESIGN.md §13.
	Shards int

	// FairShareDrop enables the related-work baseline defense ([21],
	// Daswani & Garcia-Molina): peers split their processing capacity
	// evenly across incoming connections instead of serving
	// first-come-first-served. Composable with PoliceEnabled.
	FairShareDrop bool

	// Timing.
	DurationSec int
	Delay       flood.DelayModel

	// Events, when non-nil, receives a JSON-lines structured log of the
	// run (see Event).
	Events io.Writer

	// Telemetry enables the run observability layer: cumulative
	// per-stage wall-clock timers for each tick stage (Result.Stages)
	// and the flood engine's event counters (Result.Telemetry). Off by
	// default; when off the instrumentation sites reduce to nil checks.
	Telemetry bool

	// Registry, when non-nil, receives the run's instruments instead of
	// a private registry, so a live /metrics endpoint (ddsim -metrics)
	// can snapshot mid-run. Implies instrument recording regardless of
	// Telemetry (which additionally controls the stage timers).
	Registry *telemetry.Registry

	// Journal, when non-nil, receives the detection-lifecycle event
	// stream (warning_crossed, nt_request/report/timeout, indicator,
	// cut) plus attack-onset and fault-plane events, stamped with the
	// run's logical clock. The tick loop and protocol sweep are fully
	// deterministic, so identical-seed runs journal identical bytes.
	// Nil disables journaling at a pointer check per site.
	Journal *journal.Journal

	// Trace, when non-nil, receives causal span traces (see
	// internal/trace): one trace per sampled good-peer query (issue →
	// per-hop flood traversal → delivery or death), one per detection
	// evaluation (warning_crossed → NT round → indicator → cut), and a
	// per-run overload-annotation trace (shed / degraded / brownout
	// markers). Trace IDs derive from Seed via pure sub-seed hashing,
	// so identical-seed runs emit byte-identical span streams, cached
	// or uncached, at any shard count. Tracing is passive: a non-nil
	// tracer leaves Results, Events and the journal byte-identical to
	// a nil one. Nil costs a pointer check per site.
	Trace *trace.Tracer
}

// DefaultSimTTL is the flood TTL used by the scaled-down experiments.
// Real Gnutella uses TTL 7, but a TTL-7 flood on a 2,000-peer overlay
// with average degree 6 blankets the entire network, which removes the
// spatial confinement that real floods have on Gnutella-scale systems
// (where a flood ball covers a minority of peers). TTL 3 restores a
// partial-coverage regime (~1/3 of a full 2,000-peer overlay, less
// under churn), which is what produces the paper's gradual
// traffic/success curves as the agent count grows; the live nodes
// (internal/gnet) keep the protocol TTL of 7.
const DefaultSimTTL = 3

func defaultSimCatalog() workload.CatalogConfig {
	cfg := workload.DefaultCatalogConfig()
	// With partial flood coverage, 40 replicas give the healthy ~90%
	// baseline success rate the paper's no-attack runs show.
	cfg.MeanReplicas = 40
	return cfg
}

func defaultSimAgent() attack.AgentConfig {
	cfg := attack.DefaultAgentConfig()
	cfg.TTL = DefaultSimTTL // bogus queries obey the same overlay TTL
	return cfg
}

// DefaultConfig returns the paper's §3.5 environment scaled to run on a
// laptop: 2,000 peers, average degree 6, 0.3 queries/min/peer,
// 10-minute mean lifetimes, agents at 20k queries/min. See DESIGN.md
// ("Calibration") for how TTL and per-peer capacity were chosen.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		NumPeers:           2000,
		TopologyM:          3,
		Catalog:            defaultSimCatalog(),
		QueriesPerMin:      0.3,
		TTL:                DefaultSimTTL,
		GoodCapacityPerMin: capacity.EffectiveForwardPerMin,
		ChurnEnabled:       true,
		Churn:              overlay.DefaultChurnConfig(),
		NumAgents:          0,
		Agent:              defaultSimAgent(),
		Links:              attack.DefaultLinkModel(),
		AttackStartSec:     300,
		AttackSlices:       4,
		PoliceEnabled:      false,
		Police:             police.DefaultConfig(),
		ControlLossCap:     0.5,
		DurationSec:        1800,
		Delay:              flood.DefaultDelayModel(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumPeers < 10 {
		return fmt.Errorf("sim: NumPeers = %d", c.NumPeers)
	}
	if c.TopologyM < 1 {
		return fmt.Errorf("sim: TopologyM = %d", c.TopologyM)
	}
	if c.QueriesPerMin < 0 {
		return fmt.Errorf("sim: QueriesPerMin = %v", c.QueriesPerMin)
	}
	if c.TTL < 1 {
		return fmt.Errorf("sim: TTL = %d", c.TTL)
	}
	if c.GoodCapacityPerMin <= 0 {
		return fmt.Errorf("sim: GoodCapacityPerMin = %v", c.GoodCapacityPerMin)
	}
	if c.NumAgents < 0 || c.NumAgents >= c.NumPeers {
		return fmt.Errorf("sim: NumAgents = %d of %d peers", c.NumAgents, c.NumPeers)
	}
	if c.DurationSec < 60 {
		return fmt.Errorf("sim: DurationSec = %d (need at least one minute)", c.DurationSec)
	}
	if c.AttackStartSec < 0 {
		return fmt.Errorf("sim: AttackStartSec = %d", c.AttackStartSec)
	}
	if c.Shards < 0 || c.Shards > 256 {
		return fmt.Errorf("sim: Shards = %d (want 0..256)", c.Shards)
	}
	if c.PoliceEnabled {
		if err := c.Police.Validate(); err != nil {
			return err
		}
	}
	if c.Faults != nil {
		if c.Faults.ControlLoss < 0 || c.Faults.ControlLoss >= 1 {
			return fmt.Errorf("sim: Faults.ControlLoss = %v", c.Faults.ControlLoss)
		}
		for i, pe := range c.Faults.Partitions {
			if pe.StartSec < 0 || pe.EndSec <= pe.StartSec {
				return fmt.Errorf("sim: Faults.Partitions[%d] spans [%d,%d)", i, pe.StartSec, pe.EndSec)
			}
			if len(pe.Peers) == 0 {
				return fmt.Errorf("sim: Faults.Partitions[%d] has no peers", i)
			}
		}
		for i, oe := range c.Faults.Overloads {
			if oe.StartSec < 0 || oe.EndSec <= oe.StartSec {
				return fmt.Errorf("sim: Faults.Overloads[%d] spans [%d,%d)", i, oe.StartSec, oe.EndSec)
			}
			if len(oe.Peers) == 0 {
				return fmt.Errorf("sim: Faults.Overloads[%d] has no peers", i)
			}
			if oe.Factor < 0 || oe.Factor >= 1 {
				return fmt.Errorf("sim: Faults.Overloads[%d].Factor = %v (want [0, 1))", i, oe.Factor)
			}
		}
	}
	if c.Overload != nil {
		if err := c.Overload.WithDefaults().Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result aggregates a finished run.
type Result struct {
	Minutes          []metrics.MinuteStats
	SuccessSeries    []float64 // S(t) per minute
	OverallSuccess   float64
	MeanTraffic      float64 // messages per minute
	MeanResponseTime float64 // seconds
	ResponseP50      float64 // median response time, seconds
	ResponseP95      float64 // 95th-percentile response time, seconds
	MeanHitHops      float64
	QueriesIssued    uint64

	// Defense outcomes (zero-valued when PoliceEnabled is false).
	Detections     int
	FalseNegatives int // good peers wrongly disconnected (paper naming)
	FalsePositives int // agents never identified (paper naming)
	Overhead       police.Overhead
	CutEdges       int
	// ControlLost counts DD-POLICE control messages dropped by the loss
	// model; 1 - ControlLost/Overhead.Total() is the control-plane
	// delivery rate.
	ControlLost uint64

	// Attack-side accounting.
	AgentIDs     []overlay.PeerID
	AttackVolume float64 // bogus query messages put on the wire

	// Telemetry (nil unless Config.Telemetry): cumulative wall clock
	// per tick stage, in StageNames order, and the run's counter
	// snapshot (flood engine event counters).
	Stages    []telemetry.Stage
	Telemetry *telemetry.Snapshot

	// Cache reports the flood engine's traversal-cache effectiveness
	// counters (always populated; zero when DisableFloodCache). The
	// counters depend on execution strategy — cached vs uncached,
	// sharded vs serial — while every other Result field does not, so
	// the byte-identity suites zero this field before comparing runs.
	Cache flood.CacheStats
}

// Tick stages timed when Config.Telemetry is set, in StageNames order.
const (
	StageChurn    = iota // churn + police join/leave notifications
	StageAttack          // agent batch floods (both half-tick slices)
	StageQueryGen        // online scan + good-peer query generation
	StageFlood           // good-peer query flood propagation
	StagePolice          // DD-POLICE Tick and minute evaluation
	StageMetrics         // minute close: collection, events, loss derivation
	StageProposal        // sharded mode: parallel traversal-tree prewarm
	numStages
)

// StageNames labels the tick stages, indexed by the Stage constants.
var StageNames = []string{"churn", "attack", "querygen", "flood", "police", "metrics", "proposal"}

// Run executes one simulation and returns its result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)

	g, err := topology.BarabasiAlbert(root.Split(), cfg.NumPeers, cfg.TopologyM)
	if err != nil {
		return nil, err
	}
	ov := overlay.New(g)

	cat, err := workload.NewCatalog(cfg.Catalog, cfg.NumPeers, root.Split())
	if err != nil {
		return nil, err
	}
	qgen, err := workload.NewQueryGen(cat, cfg.QueriesPerMin, root.Split())
	if err != nil {
		return nil, err
	}

	fleet, err := attack.NewFleet(cfg.NumAgents, cfg.NumPeers, cfg.Agent, cfg.Links, root.Split())
	if err != nil {
		return nil, err
	}

	var pol *police.Police
	if cfg.PoliceEnabled {
		pol, err = police.New(ov, cfg.Police)
		if err != nil {
			return nil, err
		}
		for _, a := range fleet.Agents() {
			pol.SetBad(a.ID, cfg.Agent.Cheat)
			if cfg.AgentsLieAboutLists {
				pol.SetListLiar(a.ID)
			}
		}
	}

	var churn *overlay.Churn
	if cfg.ChurnEnabled {
		churn = overlay.NewChurn(ov, cfg.Churn, root.Split())
		// Agents are dedicated machines: they do not churn.
		for _, a := range fleet.Agents() {
			churn.Pin(a.ID)
		}
	}
	// Agents "walk in" when the attack begins (§2.1): they are offline
	// until AttackStartSec and join the overlay then.
	for _, a := range fleet.Agents() {
		ov.SetOnline(a.ID, false)
	}

	eng := flood.NewEngine(ov)
	if cfg.IdealCounters {
		eng.SetCounterMode(flood.CounterIdeal)
	}
	if cfg.DisableFloodCache {
		eng.SetTraversalCache(false)
	}
	// Observability: nil when disabled, making every Start/Stop and
	// counter site below a nil-check no-op. An externally supplied
	// registry (ddsim -metrics) turns instrument recording on even when
	// the stage timers are off.
	var stages *telemetry.StageSet
	reg := cfg.Registry
	if cfg.Telemetry {
		stages = telemetry.NewStages(StageNames...)
		if reg == nil {
			reg = telemetry.New()
		}
	}
	if reg != nil {
		eng.AttachTelemetry(reg)
	}
	jr := cfg.Journal
	if pol != nil {
		pol.SetJournal(jr)
	}
	// Causal tracing plane. The overload-annotation trace is opened
	// eagerly (its root doubles as a run marker) and committed after
	// the loop; query and detection traces open and close per unit.
	tcr := cfg.Trace
	var ovTr *trace.Trace
	if tcr != nil {
		if pol != nil {
			pol.SetTracer(tcr, cfg.Seed)
		}
		ovTr = tcr.Start(trace.OverloadID(cfg.Seed), trace.Span{
			Kind: trace.KindOverload, T: 0, Value: float64(cfg.NumPeers),
		})
	}
	budget := flood.NewBudget(cfg.NumPeers, cfg.GoodCapacityPerMin/60)
	if cfg.FairShareDrop {
		budget.EnableFairShare(ov)
	}
	// Overload plane mirror: carve the control reserve out of every
	// peer's query budget and arm the degraded-mode detector. The
	// queryPerTick baseline (post-reserve) is also what brownout events
	// scale and restore.
	queryPerTick := cfg.GoodCapacityPerMin / 60
	var ovp *overload.SimPlane
	var degDet *overload.Detector
	if cfg.Overload != nil {
		p := cfg.Overload.WithDefaults()
		ovp = &p
		budget.ReserveControl(p.ControlReserveFrac)
		queryPerTick *= 1 - p.ControlReserveFrac
		degDet = overload.NewDetector(overload.Config{
			DegradedShedFrac: p.DegradedLossThreshold,
		}.WithDefaults())
	}
	coll := metrics.NewCollector()
	lossSrc := root.Split()
	events := newEventLog(cfg.Events)

	// Scheduled fault state: one tracker per partition event, recording
	// exactly which edges the partition severed so healing restores only
	// those (DD-POLICE cuts made meanwhile must stay cut).
	var parts []partitionState
	if cfg.Faults != nil {
		parts = make([]partitionState, len(cfg.Faults.Partitions))
		for i, pe := range cfg.Faults.Partitions {
			parts[i].ev = pe
			parts[i].members = make([]bool, cfg.NumPeers)
			for _, p := range pe.Peers {
				parts[i].members[p] = true
			}
		}
	}
	// Fault counters resolve to nil no-ops when telemetry is off.
	crashCtr := reg.Counter("sim.crash_departures")
	partCutCtr := reg.Counter("sim.partition_cut_edges")
	partHealCtr := reg.Counter("sim.partition_healed_edges")
	brownoutCtr := reg.Counter("sim.overload_brownouts")

	var (
		onlineBuf  []overlay.PeerID
		onlineVer  uint64
		onlineInit bool
		queryBuf   []workload.Query
		keyBuf     []flood.TreeKey
		tracePool  *queryTracePool
		overheadAt uint64
		res        Result
	)
	if cfg.PoliceEnabled {
		// Initial neighbor-list exchange: the network is already
		// running at t=0, so every peer has performed at least one
		// exchange (its join-time exchange).
		for v := 0; v < cfg.NumPeers; v++ {
			if ov.Online(overlay.PeerID(v)) {
				pol.NotifyJoin(overlay.PeerID(v), 0)
			}
		}
		// The injected loss floor applies from the first minute; the
		// congestion-derived term joins it at each minute close.
		if cfg.Faults != nil && cfg.Faults.ControlLoss > 0 {
			pol.SetControlLoss(cfg.Faults.ControlLoss, lossSrc)
		}
	}

	for t := 0; t < cfg.DurationSec; t++ {
		now := float64(t)
		budget.Refill()

		// 0. Scheduled partition/heal events take effect at the top of
		// their tick so the whole tick sees the new connectivity.
		for i := range parts {
			p := &parts[i]
			if t == p.ev.StartSec {
				if cut := p.apply(ov, partCutCtr); cut > 0 {
					jr.Record(journal.Event{T: now, Type: journal.TypePartition, Value: float64(cut)})
				}
			}
			if t == p.ev.EndSec {
				if healed := p.heal(ov, partHealCtr); healed > 0 {
					jr.Record(journal.Event{T: now, Type: journal.TypeHeal, Value: float64(healed)})
				}
			}
		}
		// Capacity brownouts scale the listed peers' query budgets for
		// the event's span and restore the (post-reserve) baseline after.
		if cfg.Faults != nil {
			for _, oe := range cfg.Faults.Overloads {
				if t == oe.StartSec {
					for _, p := range oe.Peers {
						budget.SetCapacity(overlay.PeerID(p), queryPerTick*oe.Factor)
					}
					brownoutCtr.Inc()
					jr.Record(journal.Event{
						T: now, Type: journal.TypeOverload, Detail: "start",
						Value: oe.Factor, K: len(oe.Peers),
					})
					ovTr.Add(trace.Span{
						Kind: trace.KindOverload, T: now,
						Value: oe.Factor, Detail: "brownout_start",
					})
				}
				if t == oe.EndSec {
					for _, p := range oe.Peers {
						budget.SetCapacity(overlay.PeerID(p), queryPerTick)
					}
					jr.Record(journal.Event{
						T: now, Type: journal.TypeOverload, Detail: "end",
						Value: oe.Factor, K: len(oe.Peers),
					})
					ovTr.Add(trace.Span{
						Kind: trace.KindOverload, T: now,
						Value: oe.Factor, Detail: "brownout_end",
					})
				}
			}
		}

		// 1. Churn, with police notifications derived from the diff.
		// Crashed peers vanish silently: no NotifyLeave, so their
		// buddies keep stale group state until timeouts clear it —
		// exactly the degraded view §3.3's timeout-as-zero is for.
		if churn != nil {
			t0 := stages.Start()
			churn.Tick(1)
			if pol != nil {
				// Churn reports its flips in ascending order — the same
				// order the old full prevOnline diff scanned in — so the
				// notification stream is byte-identical in O(flips).
				for _, id := range churn.Flips() {
					if ov.Online(id) {
						pol.NotifyJoin(id, now)
					} else if churn.Crashed(id) {
						crashCtr.Inc()
						jr.Record(journal.Event{T: now, Type: journal.TypeCrash, Peer: int64(id)})
					} else {
						pol.NotifyLeave(id, now)
					}
				}
			}
			stages.Stop(StageChurn, t0)
		}

		// 1b. Attack onset: the agents join the overlay.
		if t == cfg.AttackStartSec && fleet.Size() > 0 {
			for _, a := range fleet.Agents() {
				ov.SetOnline(a.ID, true)
				if pol != nil {
					pol.NotifyJoin(a.ID, now)
				}
			}
			events.attackStart(now, fleet.IDs())
			for _, a := range fleet.Agents() {
				jr.Record(journal.Event{T: now, Type: journal.TypeAttackStart, Peer: int64(a.ID)})
			}
		}

		// 2. Good-peer query *generation*, hoisted ahead of the attack
		// slices: the tick's full flood workload must be known before
		// the proposal phase can prewarm its traversal trees. Issue
		// order is untouched — generation only draws from qgen's private
		// stream and the connectivity-keyed online list, neither of
		// which the attack slices read or write — so hoisting it is
		// byte-invisible to the serial engine. The floods themselves
		// still run mid-tick (step 3) so good queries compete with
		// attack traffic on fair terms.
		attacking := t >= cfg.AttackStartSec && fleet.Size() > 0
		slices := cfg.AttackSlices
		if slices < 2 {
			slices = 2
		}
		t0 := stages.Start()
		// The online list only changes when overlay connectivity does;
		// recopy from the overlay's dense index (O(online), ascending
		// order) keyed on the mutation counter instead of every tick.
		if !onlineInit || onlineVer != ov.Version() {
			onlineInit = true
			onlineVer = ov.Version()
			onlineBuf = ov.AppendOnline(onlineBuf[:0])
		}
		queryBuf = qgen.Tick(onlineBuf, 1, queryBuf[:0])
		stages.Stop(StageQueryGen, t0)

		// 2b. Proposal phase (sharded mode): every traversal this tick
		// will flood — the attacker batches and the good-peer queries
		// just generated — is declared to the engine, which builds the
		// missing trees on parallel worker shards and stores them in
		// canonical key order. The commit phase below then replays them
		// through the ordinary serial flood calls.
		if cfg.Shards > 1 && eng.TraversalCacheEnabled() {
			t0 = stages.Start()
			keyBuf = keyBuf[:0]
			if attacking {
				keyBuf = fleet.FloodKeys(ov, keyBuf)
			}
			for _, q := range queryBuf {
				keyBuf = append(keyBuf, flood.TreeKey{Src: q.Issuer, Entry: -1, TTL: int32(cfg.TTL)})
			}
			eng.PrewarmTrees(keyBuf, cfg.Shards)
			stages.Stop(StageProposal, t0)
		}

		// 2c. First half of the tick's attack volume.
		if attacking {
			t0 = stages.Start()
			br := fleet.TickSliced(eng, ov, budget, 0.5, slices/2, 2*t)
			coll.RecordBatch(br)
			res.AttackVolume += br.QueryMessages
			stages.Stop(StageAttack, t0)
		}

		// 3. Good-peer query floods, interleaved mid-tick so they
		// compete with attack traffic on fair terms rather than always
		// seeing a drained (or untouched) budget.
		t0 = stages.Start()
		for qi, q := range queryBuf {
			var tc *trace.Trace
			if tcr != nil {
				if tracePool == nil {
					tracePool = newQueryTracePool(cfg.NumPeers)
				}
				tc = startQueryTrace(tcr, eng, tracePool, cfg.Seed, uint64(t), uint64(qi), q, now)
			}
			qr := eng.FloodQuery(q.Issuer, cfg.TTL, cat.Holders(q.Object), budget, cfg.Delay)
			if tc != nil {
				eng.SetTraceVisitor(nil)
				endQueryTrace(tc, now, qr)
			}
			coll.RecordQuery(qr)
		}
		stages.Stop(StageFlood, t0)

		// 3b. Second half of the attack volume.
		if attacking {
			t0 = stages.Start()
			br := fleet.TickSliced(eng, ov, budget, 0.5, slices-slices/2, 2*t+1)
			coll.RecordBatch(br)
			res.AttackVolume += br.QueryMessages
			stages.Stop(StageAttack, t0)
		}

		// 4. DD-POLICE periodic work.
		if pol != nil {
			t0 = stages.Start()
			pol.Tick(now)
			stages.Stop(StagePolice, t0)
		}

		// 5. Minute boundary: close counters, evaluate, collect.
		if (t+1)%60 == 0 {
			ov.RollMinute()
			if pol != nil {
				t0 = stages.Start()
				pol.EvaluateMinute(now + 1)
				stages.Stop(StagePolice, t0)
				oh := pol.Overhead().Total()
				coll.AddControl(float64(oh - overheadAt))
				overheadAt = oh
			}
			t0 = stages.Start()
			coll.SetOnline(len(onlineBuf))
			coll.CloseMinute()
			if events != nil {
				ms := coll.Minutes()
				events.drainDetections(pol)
				events.minute(now+1, len(ms)-1, ms[len(ms)-1], ov.CutCount())
			}
			if ovp != nil {
				// Journal the minute's query-plane shedding and roll the
				// degraded-mode detector so late cuts are attributable to
				// saturation. Gated on the overload plane: a nil plane
				// journals exactly the historical stream.
				ms := coll.Minutes()
				last := ms[len(ms)-1]
				minute := len(ms) - 1
				if last.CapacityDrop > 0 {
					jr.Record(journal.Event{
						T: now + 1, Type: journal.TypeShed,
						Detail: overload.ClassQuery.String(),
						Value:  last.CapacityDrop, Window: minute,
					})
					ovTr.Add(trace.Span{
						Kind: trace.KindShed, T: now + 1,
						Value: last.CapacityDrop, Detail: overload.ClassQuery.String(),
					})
				}
				if degDet.CloseWindow(last.CapacityDrop, last.QueryMsgs) {
					detail := "exit"
					if degDet.Degraded() {
						detail = "enter"
					}
					frac := 0.0
					if total := last.QueryMsgs + last.CapacityDrop; total > 0 {
						frac = last.CapacityDrop / total
					}
					jr.Record(journal.Event{
						T: now + 1, Type: journal.TypeDegraded,
						Detail: detail, Value: frac, Window: minute,
					})
					ovTr.Add(trace.Span{
						Kind: trace.KindDegraded, T: now + 1,
						Value: frac, Detail: detail,
					})
				}
			}
			if pol != nil {
				// DD-POLICE control messages ride the same saturated
				// links as the attack traffic: derive their loss rate
				// for the next minute from the congestion just measured.
				// The scheduled fault floor adds on top: congestion and
				// injected loss are independent failure sources.
				ms := coll.Minutes()
				last := ms[len(ms)-1]
				loss := 0.0
				if total := last.QueryMsgs + last.CapacityDrop; total > 0 {
					loss = last.CapacityDrop / total
				}
				// The overload plane's control reserve bounds how much
				// congestion can hurt the control plane: its (much
				// tighter) cap replaces the historical one.
				lossCap := cfg.ControlLossCap
				if ovp != nil {
					lossCap = ovp.ControlLossCap
				}
				if loss > lossCap {
					loss = lossCap
				}
				if cfg.Faults != nil {
					loss += cfg.Faults.ControlLoss
					if loss > 0.95 {
						loss = 0.95
					}
				}
				pol.SetControlLoss(loss, lossSrc)
			}
			stages.Stop(StageMetrics, t0)
		}
	}

	res.Minutes = coll.Minutes()
	res.SuccessSeries = coll.SuccessSeries()
	res.OverallSuccess = coll.OverallSuccessRate()
	res.MeanTraffic = coll.MeanTrafficPerMinute()
	res.MeanResponseTime = coll.MeanResponseTime()
	res.ResponseP50 = coll.ResponseTimeQuantile(0.5)
	res.ResponseP95 = coll.ResponseTimeQuantile(0.95)
	res.MeanHitHops = coll.MeanHitHops()
	res.QueriesIssued = qgen.Issued()
	res.AgentIDs = fleet.IDs()
	res.CutEdges = ov.CutCount()
	// Partitions that never healed (EndSec past the horizon) still hold
	// edges cut; those are injected faults, not DD-POLICE decisions, so
	// they don't count as defense cuts.
	for i := range parts {
		p := &parts[i]
		if !p.applied || p.healed {
			continue
		}
		for _, e := range p.cutEdges {
			if ov.IsCut(e[0], e[1]) {
				res.CutEdges--
			}
		}
	}
	if pol != nil {
		res.Detections = len(pol.Detections())
		res.FalseNegatives = pol.FalseNegatives()
		res.FalsePositives = pol.FalsePositives(fleet.IDs())
		res.Overhead = pol.Overhead()
		res.ControlLost = pol.ControlLost()
	}
	ovTr.EndAt(float64(cfg.DurationSec))
	res.Cache = eng.CacheStats()
	if cfg.Telemetry {
		res.Stages = stages.Snapshot()
	}
	if reg != nil {
		// Traversal-cache effectiveness, exported once at run end (the
		// engine accumulates internally; per-tick gauge updates would
		// cost atomics on the hot path for no added information).
		cs := res.Cache
		reg.Gauge("flood.cache_hits").Set(int64(cs.Hits))
		reg.Gauge("flood.cache_misses").Set(int64(cs.Misses))
		reg.Gauge("flood.cache_builds").Set(int64(cs.Builds))
		reg.Gauge("flood.cache_prewarmed").Set(int64(cs.Prewarmed))
		reg.Gauge("flood.cache_fallbacks").Set(int64(cs.Fallbacks))
		reg.Gauge("flood.cache_flushes").Set(int64(cs.Flushes))
		snap := reg.Snapshot()
		res.Telemetry = &snap
	}
	return &res, nil
}

// partitionState tracks one scheduled faults.PartitionEvent through a
// run. The partition severs every boundary edge (member <-> non-member)
// that is intact when it starts, and the heal restores exactly those
// edges — never ones DD-POLICE cut in the meantime, and never
// member-internal edges, which a network partition leaves working.
type partitionState struct {
	ev       faults.PartitionEvent
	members  []bool // dense membership, indexed by PeerID
	cutEdges [][2]overlay.PeerID
	applied  bool
	healed   bool
}

func (p *partitionState) apply(ov *overlay.Overlay, ctr *telemetry.Counter) int {
	if p.applied {
		return 0
	}
	p.applied = true
	// Iterate the event's peer slice in its given order: cutEdges order
	// feeds deterministic outputs (the event journal must be
	// byte-identical across identical-seed runs).
	cut := 0
	for _, pid := range p.ev.Peers {
		m := overlay.PeerID(pid)
		for _, w := range ov.Graph().Neighbors(m) {
			if p.members[w] {
				continue
			}
			if ov.IsCut(m, w) {
				continue // already severed by the defense; not ours
			}
			if err := ov.Cut(m, w); err == nil {
				p.cutEdges = append(p.cutEdges, [2]overlay.PeerID{m, w})
				ctr.Inc()
				cut++
			}
		}
	}
	return cut
}

func (p *partitionState) heal(ov *overlay.Overlay, ctr *telemetry.Counter) int {
	if !p.applied || p.healed {
		return 0
	}
	p.healed = true
	healed := 0
	for _, e := range p.cutEdges {
		if ov.IsCut(e[0], e[1]) {
			ov.Uncut(e[0], e[1])
			ctr.Inc()
			healed++
		}
	}
	return healed
}
