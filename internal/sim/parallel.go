package sim

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"ddpolice/internal/metrics"
	"ddpolice/internal/overlay"
	"ddpolice/internal/telemetry"
)

// RunParallel executes the given configurations concurrently on a
// bounded worker pool and returns results in input order. Each
// configuration carries its own seed, so results are deterministic
// regardless of scheduling. The first error (if any, in input order)
// is returned with whatever results completed.
//
// Workers are capped at min(GOMAXPROCS, len(cfgs)) and pull indices
// from a channel: a 10k-seed sweep runs on a dozen goroutines, not ten
// thousand parked ones (the previous version spawned one goroutine per
// config before acquiring its semaphore slot).
func RunParallel(cfgs []Config) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Averaged runs the same configuration with the given seeds and merges
// scalar outputs by arithmetic mean: series element-wise, counters by
// rounded mean, control-overhead message counts per class by rounded
// mean, and the traversal-cache effectiveness counters (Result.Cache)
// field-wise by rounded mean. Minutes is averaged element-wise
// (truncated to the shortest run, which is a no-op for a fixed
// DurationSec), Stages element-wise when every run timed the same
// stage list (always true: StageNames is fixed), Telemetry by
// name-union of instruments with an absent instrument contributing 0,
// and ControlLost by rounded mean.
//
// The single remaining first-seed field is AgentIDs: agent placement
// is per-seed identity data, not a statistic — a cross-seed mean of
// peer IDs is meaningless, so the merged result carries the first
// seed's placement as "one representative run". Everything else in
// Result is averaged. It reduces run-to-run noise for the figure
// sweeps.
func Averaged(cfg Config, seeds []uint64) (*Result, error) {
	if len(seeds) == 0 {
		return Run(cfg)
	}
	cfgs := make([]Config, len(seeds))
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		cfgs[i] = c
	}
	rs, err := RunParallel(cfgs)
	if err != nil {
		return nil, err
	}
	return mergeResults(rs), nil
}

// mergeResults averages rs into a fresh Result without modifying any
// input: the accumulator deep-copies every slice field first, so the
// first seed's series are not mutated in place.
func mergeResults(rs []*Result) *Result {
	out := *rs[0]
	out.Minutes = append([]metrics.MinuteStats(nil), rs[0].Minutes...)
	out.SuccessSeries = append([]float64(nil), rs[0].SuccessSeries...)
	out.AgentIDs = append([]overlay.PeerID(nil), rs[0].AgentIDs...)
	out.Stages = append([]telemetry.Stage(nil), rs[0].Stages...)
	n := float64(len(rs))
	for _, r := range rs[1:] {
		out.OverallSuccess += r.OverallSuccess
		out.MeanTraffic += r.MeanTraffic
		out.MeanResponseTime += r.MeanResponseTime
		out.ResponseP50 += r.ResponseP50
		out.ResponseP95 += r.ResponseP95
		out.MeanHitHops += r.MeanHitHops
		out.QueriesIssued += r.QueriesIssued
		out.Detections += r.Detections
		out.FalseNegatives += r.FalseNegatives
		out.FalsePositives += r.FalsePositives
		out.ControlLost += r.ControlLost
		out.CutEdges += r.CutEdges
		out.AttackVolume += r.AttackVolume
		out.Overhead.NeighborListMsgs += r.Overhead.NeighborListMsgs
		out.Overhead.NeighborTrafficMsgs += r.Overhead.NeighborTrafficMsgs
		out.Overhead.VerifyMsgs += r.Overhead.VerifyMsgs
		out.Cache.Hits += r.Cache.Hits
		out.Cache.Misses += r.Cache.Misses
		out.Cache.Builds += r.Cache.Builds
		out.Cache.Prewarmed += r.Cache.Prewarmed
		out.Cache.Fallbacks += r.Cache.Fallbacks
		out.Cache.Flushes += r.Cache.Flushes
		out.Cache.Trees += r.Cache.Trees
		for i := range out.SuccessSeries {
			if i < len(r.SuccessSeries) {
				out.SuccessSeries[i] += r.SuccessSeries[i]
			}
		}
	}
	out.OverallSuccess /= n
	out.MeanTraffic /= n
	out.MeanResponseTime /= n
	out.ResponseP50 /= n
	out.ResponseP95 /= n
	out.MeanHitHops /= n
	out.AttackVolume /= n
	out.QueriesIssued = roundDivU64(out.QueriesIssued, n)
	out.Detections = roundDiv(out.Detections, n)
	out.FalseNegatives = roundDiv(out.FalseNegatives, n)
	out.FalsePositives = roundDiv(out.FalsePositives, n)
	// ControlLost was silently first-seed-only — it never appeared in the
	// documented list and was never accumulated, so "averaged" sweeps
	// reported one run's control-plane losses as the mean.
	out.ControlLost = roundDivU64(out.ControlLost, n)
	out.CutEdges = roundDiv(out.CutEdges, n)
	// Overhead was previously copied wholesale from the first seed, so
	// "averaged" sweeps reported one run's control traffic as the mean;
	// its three message counters are plain totals and average cleanly.
	out.Overhead.NeighborListMsgs = roundDivU64(out.Overhead.NeighborListMsgs, n)
	out.Overhead.NeighborTrafficMsgs = roundDivU64(out.Overhead.NeighborTrafficMsgs, n)
	out.Overhead.VerifyMsgs = roundDivU64(out.Overhead.VerifyMsgs, n)
	// Cache counters are plain scalars and average cleanly; reporting
	// the first seed's values verbatim (the previous behaviour) let one
	// run's hit/miss/replay profile masquerade as the sweep's.
	out.Cache.Hits = roundDivU64(out.Cache.Hits, n)
	out.Cache.Misses = roundDivU64(out.Cache.Misses, n)
	out.Cache.Builds = roundDivU64(out.Cache.Builds, n)
	out.Cache.Prewarmed = roundDivU64(out.Cache.Prewarmed, n)
	out.Cache.Fallbacks = roundDivU64(out.Cache.Fallbacks, n)
	out.Cache.Flushes = roundDivU64(out.Cache.Flushes, n)
	out.Cache.Trees = roundDiv(out.Cache.Trees, n)
	for i := range out.SuccessSeries {
		out.SuccessSeries[i] /= n
	}
	mergeMinutes(&out, rs, n)
	mergeStages(&out, rs, n)
	out.Telemetry = mergeTelemetry(rs, n)
	return &out
}

// mergeMinutes averages the per-minute series element-wise: counts by
// rounded mean, message/drop rates by float mean. Runs of the same
// Config always produce the same number of minutes; the truncation to
// the shortest run is a defensive guard, not an expected path.
func mergeMinutes(out *Result, rs []*Result, n float64) {
	for _, r := range rs[1:] {
		if len(r.Minutes) < len(out.Minutes) {
			out.Minutes = out.Minutes[:len(r.Minutes)]
		}
	}
	for i := range out.Minutes {
		m := &out.Minutes[i]
		issued, succeeded, online := float64(m.Issued), float64(m.Succeeded), float64(m.OnlinePeers)
		for _, r := range rs[1:] {
			rm := &r.Minutes[i]
			issued += float64(rm.Issued)
			succeeded += float64(rm.Succeeded)
			online += float64(rm.OnlinePeers)
			m.QueryMsgs += rm.QueryMsgs
			m.HitMsgs += rm.HitMsgs
			m.ControlMsgs += rm.ControlMsgs
			m.CapacityDrop += rm.CapacityDrop
		}
		m.Issued = int(issued/n + 0.5)
		m.Succeeded = int(succeeded/n + 0.5)
		m.OnlinePeers = int(online/n + 0.5)
		m.QueryMsgs /= n
		m.HitMsgs /= n
		m.ControlMsgs /= n
		m.CapacityDrop /= n
	}
}

// mergeStages averages the per-stage wall-clock timers element-wise.
// Every telemetry-enabled run times the identical StageNames list, so
// positions align by construction; if a run diverges (different length
// or names — nothing produces this today) the merge keeps the first
// seed's stages verbatim rather than average mismatched stages.
func mergeStages(out *Result, rs []*Result, n float64) {
	for _, r := range rs[1:] {
		if len(r.Stages) != len(out.Stages) {
			return
		}
		for i := range out.Stages {
			if r.Stages[i].Name != out.Stages[i].Name {
				return
			}
		}
	}
	for i := range out.Stages {
		s := &out.Stages[i]
		for _, r := range rs[1:] {
			s.Total += r.Stages[i].Total
			s.Count += r.Stages[i].Count
		}
		s.Total = time.Duration(math.Round(float64(s.Total) / n))
		s.Count = roundDivU64(s.Count, n)
	}
}

// mergeTelemetry averages instrument snapshots by name union: an
// instrument absent from a run contributes 0 to its mean, which is the
// honest reading (the event never fired there). Histogram buckets merge
// by bound union the same way. The result is nil only when every run's
// snapshot is nil; Snapshot's sorted-by-name invariant is preserved.
func mergeTelemetry(rs []*Result, n float64) *telemetry.Snapshot {
	any := false
	for _, r := range rs {
		if r.Telemetry != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	counters := map[string]uint64{}
	gauges := map[string]int64{}
	timers := map[string]telemetry.TimerValue{}
	hists := map[string]*telemetry.HistogramValue{}
	for _, r := range rs {
		if r.Telemetry == nil {
			continue
		}
		for _, c := range r.Telemetry.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range r.Telemetry.Gauges {
			gauges[g.Name] += g.Value
		}
		for _, tv := range r.Telemetry.Timers {
			acc := timers[tv.Name]
			acc.Name = tv.Name
			acc.Total += tv.Total
			acc.Count += tv.Count
			timers[tv.Name] = acc
		}
		for _, h := range r.Telemetry.Histograms {
			acc := hists[h.Name]
			if acc == nil {
				acc = &telemetry.HistogramValue{Name: h.Name}
				hists[h.Name] = acc
			}
			acc.Count += h.Count
			acc.Sum += h.Sum
		outer:
			for _, b := range h.Buckets {
				for i := range acc.Buckets {
					if acc.Buckets[i].Le == b.Le {
						acc.Buckets[i].Count += b.Count
						continue outer
					}
				}
				acc.Buckets = append(acc.Buckets, b)
			}
		}
	}
	snap := &telemetry.Snapshot{}
	for name, v := range counters {
		snap.Counters = append(snap.Counters, telemetry.CounterValue{Name: name, Value: roundDivU64(v, n)})
	}
	for name, v := range gauges {
		snap.Gauges = append(snap.Gauges, telemetry.GaugeValue{Name: name, Value: int64(math.Round(float64(v) / n))})
	}
	for _, tv := range timers {
		tv.Total = time.Duration(math.Round(float64(tv.Total) / n))
		tv.Count = roundDivU64(tv.Count, n)
		snap.Timers = append(snap.Timers, tv)
	}
	for _, h := range hists {
		h.Count = roundDivU64(h.Count, n)
		h.Sum = roundDivU64(h.Sum, n)
		kept := h.Buckets[:0]
		for _, b := range h.Buckets {
			b.Count = roundDivU64(b.Count, n)
			if b.Count > 0 {
				kept = append(kept, b)
			}
		}
		h.Buckets = kept
		sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].Le < h.Buckets[j].Le })
		snap.Histograms = append(snap.Histograms, *h)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Timers, func(i, j int) bool { return snap.Timers[i].Name < snap.Timers[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

func roundDiv(sum int, n float64) int {
	return int(float64(sum)/n + 0.5)
}

func roundDivU64(sum uint64, n float64) uint64 {
	return uint64(float64(sum)/n + 0.5)
}
