package sim

import (
	"runtime"
	"sync"

	"ddpolice/internal/metrics"
	"ddpolice/internal/overlay"
	"ddpolice/internal/telemetry"
)

// RunParallel executes the given configurations concurrently, bounded
// by GOMAXPROCS workers, and returns results in input order. Each
// configuration carries its own seed, so results are deterministic
// regardless of scheduling. The first error (if any) is returned with
// whatever results completed.
func RunParallel(cfgs []Config) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = Run(cfgs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Averaged runs the same configuration with the given seeds and merges
// scalar outputs by arithmetic mean (series element-wise, counters by
// rounded mean). Non-scalar fields (Minutes, Overhead, AgentIDs) are
// taken from the first seed's run. It reduces run-to-run noise for the
// figure sweeps.
func Averaged(cfg Config, seeds []uint64) (*Result, error) {
	if len(seeds) == 0 {
		return Run(cfg)
	}
	cfgs := make([]Config, len(seeds))
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		cfgs[i] = c
	}
	rs, err := RunParallel(cfgs)
	if err != nil {
		return nil, err
	}
	return mergeResults(rs), nil
}

// mergeResults averages rs into a fresh Result without modifying any
// input: the accumulator deep-copies every slice field first, so the
// first seed's series are not mutated in place.
func mergeResults(rs []*Result) *Result {
	out := *rs[0]
	out.Minutes = append([]metrics.MinuteStats(nil), rs[0].Minutes...)
	out.SuccessSeries = append([]float64(nil), rs[0].SuccessSeries...)
	out.AgentIDs = append([]overlay.PeerID(nil), rs[0].AgentIDs...)
	out.Stages = append([]telemetry.Stage(nil), rs[0].Stages...)
	if rs[0].Telemetry != nil {
		snap := rs[0].Telemetry.Clone()
		out.Telemetry = &snap
	}
	n := float64(len(rs))
	for _, r := range rs[1:] {
		out.OverallSuccess += r.OverallSuccess
		out.MeanTraffic += r.MeanTraffic
		out.MeanResponseTime += r.MeanResponseTime
		out.MeanHitHops += r.MeanHitHops
		out.Detections += r.Detections
		out.FalseNegatives += r.FalseNegatives
		out.FalsePositives += r.FalsePositives
		out.CutEdges += r.CutEdges
		out.AttackVolume += r.AttackVolume
		for i := range out.SuccessSeries {
			if i < len(r.SuccessSeries) {
				out.SuccessSeries[i] += r.SuccessSeries[i]
			}
		}
	}
	out.OverallSuccess /= n
	out.MeanTraffic /= n
	out.MeanResponseTime /= n
	out.MeanHitHops /= n
	out.AttackVolume /= n
	out.Detections = roundDiv(out.Detections, n)
	out.FalseNegatives = roundDiv(out.FalseNegatives, n)
	out.FalsePositives = roundDiv(out.FalsePositives, n)
	out.CutEdges = roundDiv(out.CutEdges, n)
	for i := range out.SuccessSeries {
		out.SuccessSeries[i] /= n
	}
	return &out
}

func roundDiv(sum int, n float64) int {
	return int(float64(sum)/n + 0.5)
}
