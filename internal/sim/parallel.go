package sim

import (
	"runtime"
	"sync"

	"ddpolice/internal/metrics"
	"ddpolice/internal/overlay"
	"ddpolice/internal/telemetry"
)

// RunParallel executes the given configurations concurrently on a
// bounded worker pool and returns results in input order. Each
// configuration carries its own seed, so results are deterministic
// regardless of scheduling. The first error (if any, in input order)
// is returned with whatever results completed.
//
// Workers are capped at min(GOMAXPROCS, len(cfgs)) and pull indices
// from a channel: a 10k-seed sweep runs on a dozen goroutines, not ten
// thousand parked ones (the previous version spawned one goroutine per
// config before acquiring its semaphore slot).
func RunParallel(cfgs []Config) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Averaged runs the same configuration with the given seeds and merges
// scalar outputs by arithmetic mean: series element-wise, counters by
// rounded mean, control-overhead message counts per class by rounded
// mean, and the traversal-cache effectiveness counters (Result.Cache)
// field-wise by rounded mean.
//
// First-seed-only fields — the single authoritative list: Minutes,
// AgentIDs, Stages, and Telemetry remain the first seed's run verbatim.
// They are full per-minute / per-stage / per-instrument structures
// whose element-wise mean would misrepresent runs that diverge in
// length, agent placement, or instrument set; treat them as "one
// representative run", not a cross-seed aggregate. Everything else in
// Result is averaged. It reduces run-to-run noise for the figure
// sweeps.
func Averaged(cfg Config, seeds []uint64) (*Result, error) {
	if len(seeds) == 0 {
		return Run(cfg)
	}
	cfgs := make([]Config, len(seeds))
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		cfgs[i] = c
	}
	rs, err := RunParallel(cfgs)
	if err != nil {
		return nil, err
	}
	return mergeResults(rs), nil
}

// mergeResults averages rs into a fresh Result without modifying any
// input: the accumulator deep-copies every slice field first, so the
// first seed's series are not mutated in place.
func mergeResults(rs []*Result) *Result {
	out := *rs[0]
	out.Minutes = append([]metrics.MinuteStats(nil), rs[0].Minutes...)
	out.SuccessSeries = append([]float64(nil), rs[0].SuccessSeries...)
	out.AgentIDs = append([]overlay.PeerID(nil), rs[0].AgentIDs...)
	out.Stages = append([]telemetry.Stage(nil), rs[0].Stages...)
	if rs[0].Telemetry != nil {
		snap := rs[0].Telemetry.Clone()
		out.Telemetry = &snap
	}
	n := float64(len(rs))
	for _, r := range rs[1:] {
		out.OverallSuccess += r.OverallSuccess
		out.MeanTraffic += r.MeanTraffic
		out.MeanResponseTime += r.MeanResponseTime
		out.ResponseP50 += r.ResponseP50
		out.ResponseP95 += r.ResponseP95
		out.MeanHitHops += r.MeanHitHops
		out.QueriesIssued += r.QueriesIssued
		out.Detections += r.Detections
		out.FalseNegatives += r.FalseNegatives
		out.FalsePositives += r.FalsePositives
		out.CutEdges += r.CutEdges
		out.AttackVolume += r.AttackVolume
		out.Overhead.NeighborListMsgs += r.Overhead.NeighborListMsgs
		out.Overhead.NeighborTrafficMsgs += r.Overhead.NeighborTrafficMsgs
		out.Overhead.VerifyMsgs += r.Overhead.VerifyMsgs
		out.Cache.Hits += r.Cache.Hits
		out.Cache.Misses += r.Cache.Misses
		out.Cache.Builds += r.Cache.Builds
		out.Cache.Prewarmed += r.Cache.Prewarmed
		out.Cache.Fallbacks += r.Cache.Fallbacks
		out.Cache.Flushes += r.Cache.Flushes
		out.Cache.Trees += r.Cache.Trees
		for i := range out.SuccessSeries {
			if i < len(r.SuccessSeries) {
				out.SuccessSeries[i] += r.SuccessSeries[i]
			}
		}
	}
	out.OverallSuccess /= n
	out.MeanTraffic /= n
	out.MeanResponseTime /= n
	out.ResponseP50 /= n
	out.ResponseP95 /= n
	out.MeanHitHops /= n
	out.AttackVolume /= n
	out.QueriesIssued = roundDivU64(out.QueriesIssued, n)
	out.Detections = roundDiv(out.Detections, n)
	out.FalseNegatives = roundDiv(out.FalseNegatives, n)
	out.FalsePositives = roundDiv(out.FalsePositives, n)
	out.CutEdges = roundDiv(out.CutEdges, n)
	// Overhead was previously copied wholesale from the first seed, so
	// "averaged" sweeps reported one run's control traffic as the mean;
	// its three message counters are plain totals and average cleanly.
	out.Overhead.NeighborListMsgs = roundDivU64(out.Overhead.NeighborListMsgs, n)
	out.Overhead.NeighborTrafficMsgs = roundDivU64(out.Overhead.NeighborTrafficMsgs, n)
	out.Overhead.VerifyMsgs = roundDivU64(out.Overhead.VerifyMsgs, n)
	// Cache counters are plain scalars and average cleanly; reporting
	// the first seed's values verbatim (the previous behaviour) let one
	// run's hit/miss/replay profile masquerade as the sweep's.
	out.Cache.Hits = roundDivU64(out.Cache.Hits, n)
	out.Cache.Misses = roundDivU64(out.Cache.Misses, n)
	out.Cache.Builds = roundDivU64(out.Cache.Builds, n)
	out.Cache.Prewarmed = roundDivU64(out.Cache.Prewarmed, n)
	out.Cache.Fallbacks = roundDivU64(out.Cache.Fallbacks, n)
	out.Cache.Flushes = roundDivU64(out.Cache.Flushes, n)
	out.Cache.Trees = roundDiv(out.Cache.Trees, n)
	for i := range out.SuccessSeries {
		out.SuccessSeries[i] /= n
	}
	return &out
}

func roundDiv(sum int, n float64) int {
	return int(float64(sum)/n + 0.5)
}

func roundDivU64(sum uint64, n float64) uint64 {
	return uint64(float64(sum)/n + 0.5)
}
