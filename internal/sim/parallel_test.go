package sim

import (
	"reflect"
	"testing"

	"ddpolice/internal/metrics"
	"ddpolice/internal/overlay"
	"ddpolice/internal/telemetry"
	"time"
)

// TestMergeResultsLeavesInputsUnmodified is the regression test for the
// Averaged aliasing bug: the accumulator used to start from a shallow
// copy of rs[0], so averaging SuccessSeries element-wise mutated the
// first seed's underlying array in place.
func TestMergeResultsLeavesInputsUnmodified(t *testing.T) {
	first := &Result{
		SuccessSeries:  []float64{1, 1, 1},
		Minutes:        []metrics.MinuteStats{{Issued: 10, Succeeded: 10}},
		AgentIDs:       []overlay.PeerID{7},
		OverallSuccess: 1,
		Detections:     4,
		Stages:         []telemetry.Stage{{Name: "flood", Total: time.Second, Count: 3}},
		Telemetry:      &telemetry.Snapshot{Counters: []telemetry.CounterValue{{Name: "flood.floods", Value: 9}}},
	}
	second := &Result{
		SuccessSeries:  []float64{0, 0, 0},
		Minutes:        []metrics.MinuteStats{{Issued: 10, Succeeded: 0}},
		AgentIDs:       []overlay.PeerID{7},
		OverallSuccess: 0,
		Detections:     2,
	}
	wantSeries := append([]float64(nil), first.SuccessSeries...)
	wantMinutes := append([]metrics.MinuteStats(nil), first.Minutes...)

	merged := mergeResults([]*Result{first, second})

	if !reflect.DeepEqual(first.SuccessSeries, wantSeries) {
		t.Errorf("merge mutated rs[0].SuccessSeries: %v", first.SuccessSeries)
	}
	if !reflect.DeepEqual(first.Minutes, wantMinutes) {
		t.Errorf("merge mutated rs[0].Minutes: %v", first.Minutes)
	}
	if got := merged.SuccessSeries; !reflect.DeepEqual(got, []float64{0.5, 0.5, 0.5}) {
		t.Errorf("merged series = %v, want element-wise mean", got)
	}
	if merged.Detections != 3 {
		t.Errorf("merged detections = %d, want rounded mean 3", merged.Detections)
	}

	// The merged result must not alias any input storage either:
	// mutating it afterwards must leave the inputs intact.
	merged.SuccessSeries[0] = -1
	merged.Minutes[0].Issued = -1
	merged.AgentIDs[0] = -1
	merged.Stages[0].Count = 99
	merged.Telemetry.Counters[0].Value = 99
	if first.SuccessSeries[0] != 1 || first.Minutes[0].Issued != 10 || first.AgentIDs[0] != 7 {
		t.Error("merged result aliases the first input's slices")
	}
	if first.Stages[0].Count != 3 || first.Telemetry.Counters[0].Value != 9 {
		t.Error("merged result aliases the first input's telemetry")
	}
}

// TestAveragedMatchesSingleRuns checks Averaged end-to-end on real (tiny)
// runs: deterministic per-seed results, averaged scalars, and no
// corruption across repeated calls with the same seeds.
func TestAveragedMatchesSingleRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.NumPeers = 200
	cfg.DurationSec = 120
	cfg.Catalog.NumObjects = 500
	seeds := []uint64{1, 2}

	singles := make([]*Result, len(seeds))
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		singles[i] = r
	}
	avg, err := Averaged(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	want := (singles[0].OverallSuccess + singles[1].OverallSuccess) / 2
	if diff := avg.OverallSuccess - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("averaged success = %v, want %v", avg.OverallSuccess, want)
	}
	for i := range avg.SuccessSeries {
		want := (singles[0].SuccessSeries[i] + singles[1].SuccessSeries[i]) / 2
		if diff := avg.SuccessSeries[i] - want; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("minute %d: averaged S(t) = %v, want %v", i, avg.SuccessSeries[i], want)
		}
	}
	// A second averaged call must reproduce the first exactly (no state
	// leaked between calls through shared arrays).
	again, err := Averaged(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(avg.SuccessSeries, again.SuccessSeries) {
		t.Errorf("Averaged is not repeatable: %v vs %v", avg.SuccessSeries, again.SuccessSeries)
	}
}
