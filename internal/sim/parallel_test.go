package sim

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ddpolice/internal/metrics"
	"ddpolice/internal/overlay"
	"ddpolice/internal/police"
	"ddpolice/internal/telemetry"
)

// TestMergeResultsLeavesInputsUnmodified is the regression test for the
// Averaged aliasing bug: the accumulator used to start from a shallow
// copy of rs[0], so averaging SuccessSeries element-wise mutated the
// first seed's underlying array in place.
func TestMergeResultsLeavesInputsUnmodified(t *testing.T) {
	first := &Result{
		SuccessSeries:  []float64{1, 1, 1},
		Minutes:        []metrics.MinuteStats{{Issued: 10, Succeeded: 10}},
		AgentIDs:       []overlay.PeerID{7},
		OverallSuccess: 1,
		Detections:     4,
		Stages:         []telemetry.Stage{{Name: "flood", Total: time.Second, Count: 3}},
		Telemetry:      &telemetry.Snapshot{Counters: []telemetry.CounterValue{{Name: "flood.floods", Value: 9}}},
	}
	second := &Result{
		SuccessSeries:  []float64{0, 0, 0},
		Minutes:        []metrics.MinuteStats{{Issued: 10, Succeeded: 0}},
		AgentIDs:       []overlay.PeerID{7},
		OverallSuccess: 0,
		Detections:     2,
	}
	wantSeries := append([]float64(nil), first.SuccessSeries...)
	wantMinutes := append([]metrics.MinuteStats(nil), first.Minutes...)

	merged := mergeResults([]*Result{first, second})

	if !reflect.DeepEqual(first.SuccessSeries, wantSeries) {
		t.Errorf("merge mutated rs[0].SuccessSeries: %v", first.SuccessSeries)
	}
	if !reflect.DeepEqual(first.Minutes, wantMinutes) {
		t.Errorf("merge mutated rs[0].Minutes: %v", first.Minutes)
	}
	if got := merged.SuccessSeries; !reflect.DeepEqual(got, []float64{0.5, 0.5, 0.5}) {
		t.Errorf("merged series = %v, want element-wise mean", got)
	}
	if merged.Detections != 3 {
		t.Errorf("merged detections = %d, want rounded mean 3", merged.Detections)
	}

	// The merged result must not alias any input storage either:
	// mutating it afterwards must leave the inputs intact.
	merged.SuccessSeries[0] = -1
	merged.Minutes[0].Issued = -1
	merged.AgentIDs[0] = -1
	merged.Stages[0].Count = 99
	merged.Telemetry.Counters[0].Value = 99
	if first.SuccessSeries[0] != 1 || first.Minutes[0].Issued != 10 || first.AgentIDs[0] != 7 {
		t.Error("merged result aliases the first input's slices")
	}
	if first.Stages[0].Count != 3 || first.Telemetry.Counters[0].Value != 9 {
		t.Error("merged result aliases the first input's telemetry")
	}
}

// TestMergeResultsAveragesOverhead is the regression test for the
// first-seed-only Overhead bug: "averaged" sweeps used to report the
// first seed's control-message counts as if they were the mean. The
// per-class counters must now be rounded means; P50/P95 and
// QueriesIssued were silently first-seed-only too.
func TestMergeResultsAveragesOverhead(t *testing.T) {
	first := &Result{
		Overhead:      police.Overhead{NeighborListMsgs: 100, NeighborTrafficMsgs: 10, VerifyMsgs: 5},
		ResponseP50:   0.2,
		ResponseP95:   1.0,
		QueriesIssued: 1000,
	}
	second := &Result{
		Overhead:      police.Overhead{NeighborListMsgs: 200, NeighborTrafficMsgs: 31, VerifyMsgs: 0},
		ResponseP50:   0.4,
		ResponseP95:   3.0,
		QueriesIssued: 3001,
	}
	merged := mergeResults([]*Result{first, second})
	want := police.Overhead{NeighborListMsgs: 150, NeighborTrafficMsgs: 21, VerifyMsgs: 3}
	if merged.Overhead != want {
		t.Errorf("merged overhead = %+v, want rounded mean %+v", merged.Overhead, want)
	}
	if d := merged.ResponseP50 - 0.3; d < -1e-12 || d > 1e-12 {
		t.Errorf("merged P50 = %v, want mean 0.3", merged.ResponseP50)
	}
	if merged.ResponseP95 != 2.0 {
		t.Errorf("merged P95 = %v, want mean 2.0", merged.ResponseP95)
	}
	if merged.QueriesIssued != 2001 {
		t.Errorf("merged queries issued = %d, want rounded mean 2001", merged.QueriesIssued)
	}
	if first.Overhead.NeighborListMsgs != 100 || second.Overhead.NeighborListMsgs != 200 {
		t.Error("merge mutated an input's Overhead")
	}
}

// TestRunParallelBoundedWorkers is the regression test for unbounded
// goroutine spawning: RunParallel used to launch one goroutine per
// config before acquiring a semaphore slot, so a large sweep parked
// thousands of goroutines at once. The worker pool must keep the
// goroutine count near GOMAXPROCS even for a big config slice, while
// still returning every result in input order.
func TestRunParallelBoundedWorkers(t *testing.T) {
	base := smallConfig()
	base.NumPeers = 50
	base.TopologyM = 2
	base.DurationSec = 60
	base.Catalog.NumObjects = 100
	cfgs := make([]Config, 300)
	for i := range cfgs {
		c := base
		c.Seed = uint64(i + 1)
		cfgs[i] = c
	}
	before := runtime.NumGoroutine()
	var peak atomic.Int64
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				close(done)
				return
			default:
				if n := int64(runtime.NumGoroutine()); n > peak.Load() {
					peak.Store(n)
				}
				runtime.Gosched()
			}
		}
	}()
	rs, err := RunParallel(cfgs)
	done <- struct{}{}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	// Generous bound: workers + the run's own baseline + slack. The old
	// implementation peaked at before+len(cfgs) (~300+).
	limit := int64(before + runtime.GOMAXPROCS(0) + 20)
	if p := peak.Load(); p > limit {
		t.Errorf("goroutine peak %d exceeds bound %d for %d configs", p, limit, len(cfgs))
	}
	// Input-order results: each seed's run is deterministic, so result i
	// must match an independent run of cfgs[i].
	for _, i := range []int{0, 137, 299} {
		want, err := Run(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if rs[i] == nil || rs[i].OverallSuccess != want.OverallSuccess || rs[i].QueriesIssued != want.QueriesIssued {
			t.Errorf("result %d not in input order (got %+v)", i, rs[i])
		}
	}
}

// TestAveragedMatchesSingleRuns checks Averaged end-to-end on real (tiny)
// runs: deterministic per-seed results, averaged scalars, and no
// corruption across repeated calls with the same seeds.
func TestAveragedMatchesSingleRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.NumPeers = 200
	cfg.DurationSec = 120
	cfg.Catalog.NumObjects = 500
	seeds := []uint64{1, 2}

	singles := make([]*Result, len(seeds))
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		singles[i] = r
	}
	avg, err := Averaged(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	want := (singles[0].OverallSuccess + singles[1].OverallSuccess) / 2
	if diff := avg.OverallSuccess - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("averaged success = %v, want %v", avg.OverallSuccess, want)
	}
	for i := range avg.SuccessSeries {
		want := (singles[0].SuccessSeries[i] + singles[1].SuccessSeries[i]) / 2
		if diff := avg.SuccessSeries[i] - want; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("minute %d: averaged S(t) = %v, want %v", i, avg.SuccessSeries[i], want)
		}
	}
	// A second averaged call must reproduce the first exactly (no state
	// leaked between calls through shared arrays).
	again, err := Averaged(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(avg.SuccessSeries, again.SuccessSeries) {
		t.Errorf("Averaged is not repeatable: %v vs %v", avg.SuccessSeries, again.SuccessSeries)
	}
}

// TestMergeResultsAveragesDeepFields is the regression test for the
// remaining first-seed-only traps: ControlLost was silently never
// accumulated (and absent from the documented list), and Minutes,
// Stages, and Telemetry were first-seed-only by doc. All of them must
// now be cross-seed means; only AgentIDs (per-seed identity data)
// stays the first seed's verbatim.
func TestMergeResultsAveragesDeepFields(t *testing.T) {
	first := &Result{
		ControlLost: 100,
		Minutes: []metrics.MinuteStats{
			{Issued: 10, Succeeded: 10, QueryMsgs: 200, OnlinePeers: 50},
			{Issued: 20, Succeeded: 0, QueryMsgs: 100, OnlinePeers: 60},
		},
		Stages: []telemetry.Stage{{Name: "flood", Total: 2 * time.Second, Count: 4}},
		Telemetry: &telemetry.Snapshot{
			Counters: []telemetry.CounterValue{
				{Name: "both", Value: 10},
				{Name: "only-first", Value: 8},
			},
			Gauges: []telemetry.GaugeValue{{Name: "depth", Value: -4}},
		},
	}
	second := &Result{
		ControlLost: 50,
		Minutes: []metrics.MinuteStats{
			{Issued: 30, Succeeded: 11, QueryMsgs: 100, OnlinePeers: 50},
			{Issued: 40, Succeeded: 1, QueryMsgs: 300, OnlinePeers: 70},
		},
		Stages: []telemetry.Stage{{Name: "flood", Total: 4 * time.Second, Count: 6}},
		Telemetry: &telemetry.Snapshot{
			Counters: []telemetry.CounterValue{{Name: "both", Value: 30}},
			Gauges:   []telemetry.GaugeValue{{Name: "depth", Value: -7}},
		},
	}
	merged := mergeResults([]*Result{first, second})

	if merged.ControlLost != 75 {
		t.Errorf("merged ControlLost = %d, want mean 75", merged.ControlLost)
	}
	wantMinutes := []metrics.MinuteStats{
		{Issued: 20, Succeeded: 11, QueryMsgs: 150, OnlinePeers: 50},
		{Issued: 30, Succeeded: 1, QueryMsgs: 200, OnlinePeers: 65},
	}
	// Succeeded means: (10+11)/2 = 10.5 rounds to 11, (0+1)/2 rounds to 1.
	if !reflect.DeepEqual(merged.Minutes, wantMinutes) {
		t.Errorf("merged Minutes = %+v, want %+v", merged.Minutes, wantMinutes)
	}
	wantStages := []telemetry.Stage{{Name: "flood", Total: 3 * time.Second, Count: 5}}
	if !reflect.DeepEqual(merged.Stages, wantStages) {
		t.Errorf("merged Stages = %+v, want %+v", merged.Stages, wantStages)
	}
	wantCounters := []telemetry.CounterValue{
		{Name: "both", Value: 20},
		{Name: "only-first", Value: 4}, // absent in seed 2 contributes 0
	}
	if !reflect.DeepEqual(merged.Telemetry.Counters, wantCounters) {
		t.Errorf("merged counters = %+v, want %+v", merged.Telemetry.Counters, wantCounters)
	}
	wantGauges := []telemetry.GaugeValue{{Name: "depth", Value: -6}} // mean -5.5 rounds away from the trap of truncation toward zero
	if !reflect.DeepEqual(merged.Telemetry.Gauges, wantGauges) {
		t.Errorf("merged gauges = %+v, want %+v", merged.Telemetry.Gauges, wantGauges)
	}
	if first.ControlLost != 100 || first.Minutes[0].Issued != 10 ||
		first.Stages[0].Count != 4 || first.Telemetry.Counters[0].Value != 10 {
		t.Error("merge mutated the first input")
	}
	if second.Minutes[1].Issued != 40 || second.Telemetry.Counters[0].Value != 30 {
		t.Error("merge mutated the second input")
	}
}
