package sim

import (
	"bytes"
	"testing"

	"ddpolice/internal/faults"
	"ddpolice/internal/journal"
)

func journalRunConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPeers = 250
	cfg.NumAgents = 2
	cfg.AttackStartSec = 120
	cfg.DurationSec = 480
	cfg.PoliceEnabled = true
	cfg.Faults = &faults.Schedule{
		Partitions: []faults.PartitionEvent{{StartSec: 200, EndSec: 320, Peers: []int{5, 6, 7, 8}}},
	}
	return cfg
}

// TestJournalDeterministicAcrossRuns is the acceptance gate for the
// observability plane: two identical-seed runs must journal identical
// bytes. This covers the protocol sweep's iteration order, the
// partition tracker (which must walk the event's peer slice, not its
// member map) and the NDJSON encoding.
func TestJournalDeterministicAcrossRuns(t *testing.T) {
	render := func() []byte {
		jr := journal.New(1 << 16)
		cfg := journalRunConfig()
		cfg.Journal = jr
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := jr.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if len(a) == 0 {
		t.Fatal("journal empty: the run recorded no events")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("identical-seed journals differ (%d vs %d bytes)", len(a), len(b))
	}
}

// TestJournalLifecycleEvents checks the recorded stream actually walks
// the DD-POLICE lifecycle: attack onset, warning crossings, NT rounds,
// indicators, cuts, and the scheduled partition/heal pair.
func TestJournalLifecycleEvents(t *testing.T) {
	jr := journal.New(1 << 16)
	cfg := journalRunConfig()
	cfg.Journal = jr
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 {
		t.Fatal("run produced no detections; lifecycle test needs cuts")
	}
	seen := map[string]int{}
	var prevSeq uint64
	for _, e := range jr.Events() {
		if e.Seq <= prevSeq {
			t.Fatalf("sequence not increasing: %d after %d", e.Seq, prevSeq)
		}
		prevSeq = e.Seq
		seen[e.Type]++
	}
	for _, typ := range []string{
		journal.TypeAttackStart, journal.TypeWarning, journal.TypeNTRequest,
		journal.TypeNTReport, journal.TypeIndicator, journal.TypeCut,
		journal.TypePartition, journal.TypeHeal,
	} {
		if seen[typ] == 0 {
			t.Errorf("no %q events recorded (saw %v)", typ, seen)
		}
	}
	if seen[journal.TypeAttackStart] != cfg.NumAgents {
		t.Errorf("attack_start events = %d, want %d", seen[journal.TypeAttackStart], cfg.NumAgents)
	}
	// Per suspect, warning must precede the first cut.
	firstWarn := map[int64]uint64{}
	for _, e := range jr.Events() {
		switch e.Type {
		case journal.TypeWarning:
			if _, ok := firstWarn[e.Peer]; !ok {
				firstWarn[e.Peer] = e.Seq
			}
		case journal.TypeCut:
			if e.G == 0 && e.S == 0 {
				continue // verify-list cut, no preceding warning
			}
			w, ok := firstWarn[e.Peer]
			if !ok || w > e.Seq {
				t.Fatalf("cut of %d at seq %d without earlier warning", e.Peer, e.Seq)
			}
		}
	}
}
