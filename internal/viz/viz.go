// Package viz renders simple line charts as standalone SVG documents
// using only the standard library. cmd/ddexp uses it to emit the
// paper's figures as images next to the printed tables.
package viz

import (
	"fmt"
	"io"
	"math"
)

// Series is one named line.
type Series struct {
	Label string
	X, Y  []float64
}

// Chart is a 2-D line chart with linear axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height default to 640x400 when zero.
	Width, Height int
	// YMin/YMax force the y range when non-nil.
	YMin, YMax *float64
}

// Default palette (colorblind-safe Okabe-Ito subset).
var palette = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000",
}

type bounds struct{ xmin, xmax, ymin, ymax float64 }

func (c *Chart) bounds() (bounds, error) {
	b := bounds{math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)}
	points := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return b, fmt.Errorf("viz: series %q has %d x but %d y", s.Label, len(s.X), len(s.Y))
		}
		for i := range s.X {
			points++
			b.xmin = math.Min(b.xmin, s.X[i])
			b.xmax = math.Max(b.xmax, s.X[i])
			b.ymin = math.Min(b.ymin, s.Y[i])
			b.ymax = math.Max(b.ymax, s.Y[i])
		}
	}
	if points == 0 {
		return b, fmt.Errorf("viz: chart %q has no points", c.Title)
	}
	if c.YMin != nil {
		b.ymin = *c.YMin
	}
	if c.YMax != nil {
		b.ymax = *c.YMax
	}
	if b.xmax == b.xmin {
		b.xmax = b.xmin + 1
	}
	if b.ymax == b.ymin {
		b.ymax = b.ymin + 1
	}
	return b, nil
}

// niceTicks returns ~n aesthetically spaced tick positions covering
// [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	rawStep := span / float64(n-1)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch norm := rawStep / mag; {
	case norm < 1.5:
		step = mag
	case norm < 3:
		step = 2 * mag
	case norm < 7:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/1e6; v += step {
		// Round away float drift.
		ticks = append(ticks, math.Round(v/step)*step)
	}
	return ticks
}

// fmtTick renders a tick value compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// RenderSVG writes the chart as a complete SVG document.
func (c *Chart) RenderSVG(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 400
	}
	b, err := c.bounds()
	if err != nil {
		return err
	}
	const (
		marginL = 70
		marginR = 150
		marginT = 40
		marginB = 55
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	if plotW <= 0 || plotH <= 0 {
		return fmt.Errorf("viz: chart %dx%d too small", width, height)
	}
	px := func(x float64) float64 { return marginL + (x-b.xmin)/(b.xmax-b.xmin)*plotW }
	py := func(y float64) float64 { return float64(marginT) + plotH - (y-b.ymin)/(b.ymax-b.ymin)*plotH }

	pr := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := pr(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height); err != nil {
		return err
	}
	pr(`<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	pr(`<text x="%d" y="24" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginL, xmlEscape(c.Title))

	// Axes.
	pr(`<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, float64(marginT)+plotH, float64(marginL)+plotW, float64(marginT)+plotH)
	pr(`<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT, marginL, float64(marginT)+plotH)

	// Ticks and gridlines.
	for _, tx := range niceTicks(b.xmin, b.xmax, 7) {
		x := px(tx)
		pr(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			x, float64(marginT)+plotH, x, float64(marginT)+plotH+5)
		pr(`<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, float64(marginT)+plotH+18, fmtTick(tx))
	}
	for _, ty := range niceTicks(b.ymin, b.ymax, 6) {
		y := py(ty)
		pr(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd"/>`+"\n",
			float64(marginL), y, float64(marginL)+plotW, y)
		pr(`<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			float64(marginL)-7, y+4, fmtTick(ty))
	}

	// Axis labels.
	if c.XLabel != "" {
		pr(`<text x="%.1f" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
			float64(marginL)+plotW/2, height-12, xmlEscape(c.XLabel))
	}
	if c.YLabel != "" {
		pr(`<text x="16" y="%.1f" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
			float64(marginT)+plotH/2, float64(marginT)+plotH/2, xmlEscape(c.YLabel))
	}

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		if len(s.X) > 1 {
			path := ""
			for j := range s.X {
				path += fmt.Sprintf("%.1f,%.1f ", px(s.X[j]), py(clamp(s.Y[j], b.ymin, b.ymax)))
			}
			pr(`<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", path, color)
		}
		for j := range s.X {
			pr(`<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				px(s.X[j]), py(clamp(s.Y[j], b.ymin, b.ymax)), color)
		}
		// Legend entry.
		ly := marginT + 14 + i*18
		pr(`<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			float64(marginL)+plotW+10, ly, float64(marginL)+plotW+30, ly, color)
		pr(`<text x="%.1f" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			float64(marginL)+plotW+35, ly+4, xmlEscape(s.Label))
	}
	return pr("</svg>\n")
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func xmlEscape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		case '"':
			out = append(out, []rune("&quot;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
