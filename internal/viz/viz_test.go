package viz

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, c *Chart) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// wellFormed checks the output parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v", err)
		}
	}
}

func twoSeries() *Chart {
	return &Chart{
		Title:  "Figure N: test",
		XLabel: "agents",
		YLabel: "success (%)",
		Series: []Series{
			{Label: "no defense", X: []float64{0, 5, 10}, Y: []float64{90, 60, 40}},
			{Label: "DD-POLICE", X: []float64{0, 5, 10}, Y: []float64{90, 85, 80}},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	svg := render(t, twoSeries())
	wellFormed(t, svg)
	for _, want := range []string{
		"<svg", "polyline", "circle", "Figure N: test",
		"no defense", "DD-POLICE", "agents", "success (%)",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q in SVG", want)
		}
	}
	// Two polylines: one per series.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestSinglePointSeries(t *testing.T) {
	c := &Chart{
		Title:  "points",
		Series: []Series{{Label: "p", X: []float64{1}, Y: []float64{2}}},
	}
	svg := render(t, c)
	wellFormed(t, svg)
	if strings.Contains(svg, "<polyline") {
		t.Error("single-point series must not draw a line")
	}
	if !strings.Contains(svg, "<circle") {
		t.Error("single-point series must draw a marker")
	}
}

func TestConstantSeriesDoesNotDivideByZero(t *testing.T) {
	c := &Chart{
		Title:  "flat",
		Series: []Series{{Label: "f", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}},
	}
	svg := render(t, c)
	wellFormed(t, svg)
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("degenerate range leaked NaN/Inf into SVG")
	}
}

func TestEmptyChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Chart{Title: "empty"}).RenderSVG(&buf); err == nil {
		t.Fatal("empty chart rendered")
	}
	c := &Chart{Series: []Series{{Label: "bad", X: []float64{1, 2}, Y: []float64{1}}}}
	if err := c.RenderSVG(&buf); err == nil {
		t.Fatal("mismatched series rendered")
	}
}

func TestYBoundsOverride(t *testing.T) {
	lo, hi := 0.0, 100.0
	c := twoSeries()
	c.YMin, c.YMax = &lo, &hi
	svg := render(t, c)
	wellFormed(t, svg)
	if !strings.Contains(svg, ">100<") {
		t.Error("forced y max 100 not reflected in ticks")
	}
}

func TestEscaping(t *testing.T) {
	c := twoSeries()
	c.Title = `<attack> & "defense"`
	svg := render(t, c)
	wellFormed(t, svg)
	if strings.Contains(svg, "<attack>") {
		t.Fatal("unescaped markup in title")
	}
}

func TestNiceTicks(t *testing.T) {
	cases := []struct {
		lo, hi float64
		n      int
	}{
		{0, 100, 6}, {0, 1, 6}, {3, 7, 5}, {-50, 50, 7}, {0, 0.003, 5}, {12345, 98765, 6},
	}
	for _, tc := range cases {
		ticks := niceTicks(tc.lo, tc.hi, tc.n)
		if len(ticks) < 2 {
			t.Errorf("[%v,%v]: only %d ticks", tc.lo, tc.hi, len(ticks))
			continue
		}
		step := ticks[1] - ticks[0]
		for i := 1; i < len(ticks); i++ {
			if math.Abs((ticks[i]-ticks[i-1])-step) > step*1e-6 {
				t.Errorf("[%v,%v]: uneven ticks %v", tc.lo, tc.hi, ticks)
			}
		}
		if ticks[0] < tc.lo-step*1e-6 || ticks[len(ticks)-1] > tc.hi+step*1e-6 {
			t.Errorf("[%v,%v]: ticks out of range %v", tc.lo, tc.hi, ticks)
		}
		if len(ticks) > 3*tc.n {
			t.Errorf("[%v,%v]: too many ticks (%d)", tc.lo, tc.hi, len(ticks))
		}
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		5:        "5",
		1500000:  "1.5M",
		25000:    "25k",
		0.25:     "0.25",
		-3000000: "-3M",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}
