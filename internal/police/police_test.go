package police

import (
	"math"
	"testing"

	"ddpolice/internal/overlay"
	"ddpolice/internal/topology"
)

// starOverlay builds suspect j=0 at the center of k leaves 1..k.
func starOverlay(t *testing.T, k int) *overlay.Overlay {
	t.Helper()
	b := topology.NewBuilder(k + 1)
	for i := 1; i <= k; i++ {
		if err := b.AddEdge(0, topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return overlay.New(b.Build())
}

// exchangeAll triggers an immediate neighbor-list exchange for every
// peer so buddy-group views are fully populated.
func exchangeAll(p *Police, ov *overlay.Overlay, now float64) {
	for v := 0; v < ov.NumPeers(); v++ {
		if ov.Online(PeerID(v)) {
			p.exchangeFrom(PeerID(v), now)
		}
	}
}

func addTraffic(t *testing.T, ov *overlay.Overlay, u, v PeerID, amount float64) {
	t.Helper()
	if err := ov.AddTrafficBetween(u, v, amount); err != nil {
		t.Fatal(err)
	}
}

// loadFig2 populates the Figure 2 scenario: suspect j=0 with three
// neighbors i=1, m2=2, m3=3. j issues issued queries itself, receives
// q1, q2, q3 from its neighbors, and forwards everything to everyone
// (minus the sender).
func loadFig2(t *testing.T, ov *overlay.Overlay, issued, q1, q2, q3 float64) {
	t.Helper()
	addTraffic(t, ov, 1, 0, q1)
	addTraffic(t, ov, 2, 0, q2)
	addTraffic(t, ov, 3, 0, q3)
	addTraffic(t, ov, 0, 1, issued+q2+q3)
	addTraffic(t, ov, 0, 2, issued+q1+q3)
	addTraffic(t, ov, 0, 3, issued+q1+q2)
	ov.RollMinute()
}

// TestIndicatorsFigure2Example reproduces the paper's worked example:
// with full forwarding, g(j,t) = s(j,t,i) = issued / q0.
func TestIndicatorsFigure2Example(t *testing.T) {
	ov := starOverlay(t, 3)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 1200, 300, 400, 500)
	g, s, k, ok := p.Indicators(1, 0, 60)
	if !ok {
		t.Fatal("no buddy-group view")
	}
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	if math.Abs(g-12) > 1e-9 {
		t.Errorf("g = %v, want 12 (= issued/q0)", g)
	}
	if math.Abs(s-12) > 1e-9 {
		t.Errorf("s = %v, want 12", s)
	}
}

// TestGoodForwarderLowIndicator: a peer that only forwards (issues ~0)
// has g ≈ 0 even under heavy through-traffic.
func TestGoodForwarderLowIndicator(t *testing.T) {
	ov := starOverlay(t, 3)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 0, 3000, 2000, 1000) // forwards 6000/min of others' queries
	g, s, _, ok := p.Indicators(1, 0, 60)
	if !ok {
		t.Fatal("no view")
	}
	if g > 0.5 || s > 0.5 {
		t.Fatalf("pure forwarder flagged: g=%v s=%v", g, s)
	}
}

func TestEvaluateCutsAttacker(t *testing.T) {
	ov := starOverlay(t, 3)
	cfg := DefaultConfig()
	cfg.CutThreshold = 5
	p, err := New(ov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.SetBad(0, CheatNone)
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 3000, 10, 10, 10) // attacker issues 3000/min
	p.EvaluateMinute(60)
	for leaf := PeerID(1); leaf <= 3; leaf++ {
		if ov.Connected(leaf, 0) {
			t.Errorf("leaf %d still connected to attacker", leaf)
		}
	}
	if p.DetectedBad() != 1 {
		t.Errorf("detected bad = %d", p.DetectedBad())
	}
	if p.FalseNegatives() != 0 {
		t.Errorf("false negatives = %d", p.FalseNegatives())
	}
	if len(p.Detections()) == 0 {
		t.Fatal("no detection records")
	}
	d := p.Detections()[0]
	if d.Suspect != 0 || d.General < 5 {
		t.Errorf("detection = %+v", d)
	}
}

func TestGoodForwarderSurvivesEvaluation(t *testing.T) {
	// Peer 0 forwards a massive flow it received from neighbor 1 (an
	// attacker that reports honestly): peer 0's other neighbors must
	// NOT cut it, even though observer 0 correctly cuts peer 1.
	ov := starOverlay(t, 3)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.SetBad(1, CheatNone)
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 0, 6000, 0, 0) // all volume originates at peer 1
	p.EvaluateMinute(60)
	if !ov.Connected(2, 0) || !ov.Connected(3, 0) {
		t.Fatal("good forwarder was cut despite honest buddy reports")
	}
	if p.FalseNegatives() != 0 {
		t.Fatalf("false negatives = %d", p.FalseNegatives())
	}
}

func TestDeflatingCheaterFramesGoodPeer(t *testing.T) {
	// Same scenario, but the source peer 1 is a deflating attacker: it
	// under-reports Q_{1->0}, so peer 0 appears to have issued the
	// flood itself (the paper's Case 2).
	ov := starOverlay(t, 3)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.SetBad(1, CheatDeflate)
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 0, 6000, 0, 0)
	p.EvaluateMinute(60)
	if ov.Connected(2, 0) && ov.Connected(3, 0) {
		t.Fatal("deflating cheater failed to frame the forwarder")
	}
	if p.FalseNegatives() != 1 {
		t.Fatalf("false negatives = %d, want 1", p.FalseNegatives())
	}
}

func TestSilentCheaterActsLikeDeflation(t *testing.T) {
	ov := starOverlay(t, 3)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.SetBad(1, CheatSilent)
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 0, 6000, 0, 0)
	p.EvaluateMinute(60)
	if p.FalseNegatives() != 1 {
		t.Fatalf("false negatives = %d, want 1", p.FalseNegatives())
	}
}

func TestInflatingCheaterHelpsSuspect(t *testing.T) {
	// Case 1: inflation makes the forwarder look even more innocent.
	ov := starOverlay(t, 3)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.SetBad(1, CheatInflate)
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 0, 6000, 0, 0)
	g, _, _, ok := p.Indicators(2, 0, 60)
	if !ok {
		t.Fatal("no view")
	}
	if g > 0 {
		t.Fatalf("g = %v under inflation, want negative (suspect looks good)", g)
	}
	p.EvaluateMinute(60)
	if p.FalseNegatives() != 0 {
		t.Fatal("inflation should not frame the suspect")
	}
}

func TestMissingMemberReportInflatesIndicator(t *testing.T) {
	// The true source (peer 1) goes offline before evaluation: its
	// report is missing, so observer 2 over-estimates peer 0's issuing.
	ov := starOverlay(t, 3)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 0, 6000, 0, 0)
	gBefore, _, _, _ := p.Indicators(2, 0, 60)
	ov.SetOnline(1, false)
	gAfter, _, _, ok := p.Indicators(2, 0, 60)
	if !ok {
		t.Fatal("no view")
	}
	if gAfter <= gBefore {
		t.Fatalf("missing report did not inflate g: before=%v after=%v", gBefore, gAfter)
	}
	// Note: SetOnline(offline) clears the leaving peer's edge counters,
	// which is exactly the information loss DD-POLICE suffers under
	// churn.
	if gAfter < 5 {
		t.Fatalf("g = %v, expected false-cut territory", gAfter)
	}
}

func TestNoDecisionWithoutBuddyView(t *testing.T) {
	ov := starOverlay(t, 3)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// No exchange performed: observers hold no list for the suspect.
	loadFig2(t, ov, 3000, 10, 10, 10)
	p.EvaluateMinute(60)
	if len(p.Detections()) != 0 {
		t.Fatal("detection without buddy-group view")
	}
	if _, _, _, ok := p.Indicators(1, 0, 60); ok {
		t.Fatal("Indicators returned a view that was never exchanged")
	}
}

func TestWarnThresholdGate(t *testing.T) {
	ov := starOverlay(t, 3)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.SetBad(0, CheatNone)
	exchangeAll(p, ov, 0)
	// 450/min to each neighbor: below the 500 warning threshold, so no
	// evaluation happens even though g would be 4.5.
	addTraffic(t, ov, 0, 1, 450)
	addTraffic(t, ov, 0, 2, 450)
	addTraffic(t, ov, 0, 3, 450)
	ov.RollMinute()
	p.EvaluateMinute(60)
	if len(p.Detections()) != 0 {
		t.Fatal("evaluated below warning threshold")
	}
}

func TestReportRateLimit(t *testing.T) {
	ov := starOverlay(t, 3)
	cfg := DefaultConfig()
	cfg.CutThreshold = 1e9 // never cut; we only watch the report traffic
	p, err := New(ov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 3000, 10, 10, 10)
	p.EvaluateMinute(60)
	msgs := p.Overhead().NeighborTrafficMsgs
	if msgs == 0 {
		t.Fatal("no neighbor-traffic messages on first round")
	}
	// A second evaluation 10 s later is inside the 50 s rate limit.
	p.EvaluateMinute(70)
	if got := p.Overhead().NeighborTrafficMsgs; got != msgs {
		t.Fatalf("rate limit violated: %d -> %d", msgs, got)
	}
	// 60 s later the window has passed.
	loadFig2(t, ov, 3000, 10, 10, 10)
	p.EvaluateMinute(120)
	if got := p.Overhead().NeighborTrafficMsgs; got <= msgs {
		t.Fatal("no re-evaluation after rate-limit window")
	}
}

func TestPeriodicExchangeStaggered(t *testing.T) {
	ov := starOverlay(t, 3)
	cfg := DefaultConfig()
	cfg.ExchangePeriod = 120
	p, err := New(ov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Peers 0..3 have phases 0, 30, 60, 90.
	p.Tick(0)
	if _, _, _, ok := p.Indicators(1, 0, 1); !ok {
		t.Fatal("peer 0's exchange at phase 0 missing")
	}
	base := p.Overhead().NeighborListMsgs
	p.Tick(30)
	if got := p.Overhead().NeighborListMsgs; got <= base {
		t.Fatal("peer 1's exchange at phase 30 missing")
	}
}

func TestStaleListExpiry(t *testing.T) {
	ov := starOverlay(t, 3)
	cfg := DefaultConfig()
	cfg.StaleAfter = 100
	p, err := New(ov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 1200, 10, 10, 10)
	if _, _, _, ok := p.Indicators(1, 0, 50); !ok {
		t.Fatal("fresh view rejected")
	}
	if _, _, _, ok := p.Indicators(1, 0, 200); ok {
		t.Fatal("stale view accepted")
	}
}

func TestEventDrivenNotifications(t *testing.T) {
	ov := starOverlay(t, 3)
	cfg := DefaultConfig()
	cfg.EventDriven = true
	p, err := New(ov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tick is a no-op in event-driven mode.
	p.Tick(0)
	if p.Overhead().NeighborListMsgs != 0 {
		t.Fatal("event-driven mode sent periodic lists")
	}
	p.NotifyJoin(0, 5)
	if _, _, _, ok := p.Indicators(1, 0, 6); !ok {
		t.Fatal("join notification did not propagate the list")
	}
	before := p.Overhead().NeighborListMsgs
	ov.SetOnline(2, false)
	p.NotifyLeave(2, 10)
	if got := p.Overhead().NeighborListMsgs; got <= before {
		t.Fatal("leave notification sent no updates")
	}
}

func TestVerifyListsCatchesLiar(t *testing.T) {
	// Liar 0 has neighbors 1-3 plus non-neighbors 4, 5 it can
	// fabricate claims about.
	b := topology.NewBuilder(6)
	for i := 1; i <= 3; i++ {
		if err := b.AddEdge(0, topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(4, 5); err != nil {
		t.Fatal(err)
	}
	ov := overlay.New(b.Build())
	cfg := DefaultConfig()
	cfg.VerifyLists = true
	p, err := New(ov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.SetListLiar(0)
	exchangeAll(p, ov, 0)
	// At least one neighbor should have disconnected the liar.
	cut := 0
	for leaf := PeerID(1); leaf <= 3; leaf++ {
		if !ov.Connected(leaf, 0) {
			cut++
		}
	}
	if cut == 0 {
		t.Fatal("lying peer kept all connections")
	}
	if p.Overhead().VerifyMsgs == 0 {
		t.Fatal("no verification traffic counted")
	}
}

func TestRadius2PropagatesLists(t *testing.T) {
	// Line 0-1-2: with r=2, peer 2 learns peer 0's list via peer 1.
	b := topology.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ov := overlay.New(b.Build())
	cfg := DefaultConfig()
	cfg.Radius = 2
	p, err := New(ov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.exchangeFrom(0, 0) // 1 now holds 0's list
	p.exchangeFrom(1, 1) // r=2: 1 relays 0's list to 2
	if _, ok := p.states[2].lists[0]; !ok {
		t.Fatal("r=2 relay did not deliver the two-hop list")
	}
	// With r=1 the same sequence must NOT deliver it.
	p1, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p1.exchangeFrom(0, 0)
	p1.exchangeFrom(1, 1)
	if _, ok := p1.states[2].lists[0]; ok {
		t.Fatal("r=1 leaked a two-hop list")
	}
}

func TestFalsePositiveAccounting(t *testing.T) {
	ov := starOverlay(t, 3)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.SetBad(0, CheatNone)
	p.SetBad(2, CheatNone) // never sends anything: stays undetected
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 3000, 10, 10, 10)
	p.EvaluateMinute(60)
	agents := []PeerID{0, 2}
	if got := p.FalsePositives(agents); got != 1 {
		t.Fatalf("false positives = %d, want 1 (silent agent 2)", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Q0: 0, WarnThreshold: 1, CutThreshold: 1, ExchangePeriod: 1, Radius: 1},
		{Q0: 1, WarnThreshold: 0, CutThreshold: 1, ExchangePeriod: 1, Radius: 1},
		{Q0: 1, WarnThreshold: 1, CutThreshold: 0, ExchangePeriod: 1, Radius: 1},
		{Q0: 1, WarnThreshold: 1, CutThreshold: 1, ExchangePeriod: 0, Radius: 1},
		{Q0: 1, WarnThreshold: 1, CutThreshold: 1, ExchangePeriod: 1, Radius: 0},
		{Q0: 1, WarnThreshold: 1, CutThreshold: 1, ExchangePeriod: 1, Radius: 3},
	}
	for i, cfg := range bad {
		if _, err := New(overlay.New(mustRing(t)), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// Event-driven mode does not require an exchange period.
	ok := Config{Q0: 1, WarnThreshold: 1, CutThreshold: 1, EventDriven: true, Radius: 1}
	if _, err := New(overlay.New(mustRing(t)), ok); err != nil {
		t.Errorf("event-driven config rejected: %v", err)
	}
}

func mustRing(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.RingLattice(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHigherCTRequiresLargerIndicator(t *testing.T) {
	// An attacker whose indicator lands at ~6 is cut at CT=5 but
	// escapes at CT=7 — the Fig 13 false-positive mechanism.
	for _, tc := range []struct {
		ct      float64
		wantCut bool
	}{{5, true}, {7, false}} {
		ov := starOverlay(t, 3)
		cfg := DefaultConfig()
		cfg.CutThreshold = tc.ct
		p, err := New(ov, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.SetBad(0, CheatNone)
		exchangeAll(p, ov, 0)
		loadFig2(t, ov, 600, 10, 10, 10) // g = 6
		p.EvaluateMinute(60)
		cut := !ov.Connected(1, 0)
		if cut != tc.wantCut {
			t.Errorf("CT=%v: cut=%v, want %v", tc.ct, cut, tc.wantCut)
		}
	}
}

func BenchmarkEvaluateMinuteStar(b *testing.B) {
	bld := topology.NewBuilder(21)
	for i := 1; i <= 20; i++ {
		if err := bld.AddEdge(0, topology.NodeID(i)); err != nil {
			b.Fatal(err)
		}
	}
	ov := overlay.New(bld.Build())
	p, err := New(ov, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for v := 0; v < 21; v++ {
		p.exchangeFrom(PeerID(v), 0)
	}
	for i := 1; i <= 20; i++ {
		_ = ov.AddTrafficBetween(0, PeerID(i), 600)
	}
	ov.RollMinute()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EvaluateMinute(float64(i) * 60)
	}
}

func TestComputeIndicatorsPure(t *testing.T) {
	// Fig 2 numbers, expressed directly through the pure helper: the
	// observer's own edge plus two honest reports.
	own := Report{Out: 300, In: 1200 + 400 + 500} // q1=300 issued=1200
	others := []Report{
		{Out: 400, In: 1200 + 300 + 500},
		{Out: 500, In: 1200 + 300 + 400},
	}
	g, s, k := ComputeIndicators(100, own, others, 0)
	if k != 3 {
		t.Fatalf("k = %d", k)
	}
	if math.Abs(g-12) > 1e-12 || math.Abs(s-12) > 1e-12 {
		t.Fatalf("g=%v s=%v, want 12/12", g, s)
	}
}

func TestComputeIndicatorsMissingSeats(t *testing.T) {
	// A missing member keeps its seat in k but contributes zero: g
	// inflates relative to the fully-reported case.
	own := Report{Out: 0, In: 4000}
	full := []Report{{Out: 3000, In: 1000}, {Out: 1000, In: 3000}}
	gFull, _, kFull := ComputeIndicators(100, own, full, 0)
	// Losing the heavy-Out report (the member that fed the suspect its
	// traffic) removes the exculpatory evidence.
	gMissing, _, kMissing := ComputeIndicators(100, own, full[1:], 1)
	if kFull != kMissing {
		t.Fatalf("k changed: %d vs %d", kFull, kMissing)
	}
	if gMissing <= gFull {
		t.Fatalf("missing report must inflate g: %v vs %v", gMissing, gFull)
	}
}

func TestComputeIndicatorsSoloObserver(t *testing.T) {
	// Degenerate buddy group (k=1): g collapses to In/q0.
	g, s, k := ComputeIndicators(10, Report{Out: 5, In: 200}, nil, 0)
	if k != 1 {
		t.Fatalf("k = %d", k)
	}
	if g != 20 || s != 20 {
		t.Fatalf("g=%v s=%v, want 20/20", g, s)
	}
}

func TestBlacklistCutsRejoinedSuspect(t *testing.T) {
	ov := starOverlay(t, 3)
	cfg := DefaultConfig()
	cfg.BlacklistSec = 300
	p, err := New(ov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.SetBad(0, CheatNone)
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 3000, 10, 10, 10)
	p.EvaluateMinute(60)
	if ov.Connected(1, 0) {
		t.Fatal("attacker not cut")
	}
	// The attacker rejoins (fresh edges, empty counters) and stays
	// quiet. Without a blacklist it would go unnoticed; with one it is
	// cut on sight at the next evaluation.
	ov.SetOnline(0, false)
	ov.SetOnline(0, true)
	if !ov.Connected(1, 0) {
		t.Fatal("rejoin did not restore edges")
	}
	p.EvaluateMinute(120)
	if ov.Connected(1, 0) {
		t.Fatal("blacklisted suspect kept its connection after rejoin")
	}
	// After expiry the ban lifts.
	ov.SetOnline(0, false)
	ov.SetOnline(0, true)
	p.EvaluateMinute(500) // 60+300 < 500: expired
	if !ov.Connected(1, 0) {
		t.Fatal("expired blacklist still cutting")
	}
}

func TestNoBlacklistByDefault(t *testing.T) {
	ov := starOverlay(t, 3)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.SetBad(0, CheatNone)
	exchangeAll(p, ov, 0)
	loadFig2(t, ov, 3000, 10, 10, 10)
	p.EvaluateMinute(60)
	ov.SetOnline(0, false)
	ov.SetOnline(0, true)
	p.EvaluateMinute(120) // no traffic this minute: quiet rejoiner survives
	if !ov.Connected(1, 0) {
		t.Fatal("paper-default DD-POLICE must not remember old convictions")
	}
}

// TestBuddyGroupFigure7 reproduces the Figure 7 construction: peer j's
// buddy group BG1-j = {A, B, C, D} is exactly the set of j's direct
// neighbors, and every member learns it from j's list exchange.
func TestBuddyGroupFigure7(t *testing.T) {
	// j=0; A..D = 1..4.
	ov := starOverlay(t, 4)
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	exchangeAll(p, ov, 0)
	for member := PeerID(1); member <= 4; member++ {
		got := p.membersOf(member, 0, 1)
		if got == nil {
			t.Fatalf("member %d has no view of BG1-j", member)
		}
		// The view excludes the member itself: the other three peers.
		if len(got) != 3 {
			t.Fatalf("member %d sees %d buddies, want 3", member, len(got))
		}
		for _, m := range got {
			if m == member || m == 0 || m < 1 || m > 4 {
				t.Fatalf("member %d sees bogus buddy %d", member, m)
			}
		}
	}
}

// TestProtocolWalkthroughFigure8 plays the §3.4 example: peer j floods;
// neighbor h (and the rest of BG1-j) exchange Neighbor_Traffic, conclude
// j issued the volume, and all disconnect from j — while peer m, who
// forwarded j's queries onward and is itself questioned by BG1-m,
// is exonerated by j's (honest) report.
func TestProtocolWalkthroughFigure8(t *testing.T) {
	// Topology: j=0 with neighbors h=1, r=2, m=3; m additionally has
	// neighbors x=4, y=5 (forming BG1-m = {0, 4, 5}).
	b := topology.NewBuilder(6)
	for _, e := range [][2]topology.NodeID{{0, 1}, {0, 2}, {0, 3}, {3, 4}, {3, 5}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ov := overlay.New(b.Build())
	p, err := New(ov, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.SetBad(0, CheatNone)
	exchangeAll(p, ov, 0)

	// j issues 3000/min, spread to its 3 neighbors; m forwards its
	// 1000 to x and y.
	addTraffic(t, ov, 0, 1, 1000)
	addTraffic(t, ov, 0, 2, 1000)
	addTraffic(t, ov, 0, 3, 1000)
	addTraffic(t, ov, 3, 4, 1000)
	addTraffic(t, ov, 3, 5, 1000)
	ov.RollMinute()

	p.EvaluateMinute(60)
	// All of BG1-j disconnected from j.
	for _, member := range []PeerID{1, 2, 3} {
		if ov.Connected(member, 0) {
			t.Errorf("BG1-j member %d still connected to j", member)
		}
	}
	// m keeps its other connections: BG1-m exonerated it.
	if !ov.Connected(3, 4) || !ov.Connected(3, 5) {
		t.Fatal("forwarder m was wrongly cut by its own buddy group")
	}
	if p.FalseNegatives() != 0 {
		t.Fatalf("false negatives = %d", p.FalseNegatives())
	}
	if p.DetectedBad() != 1 {
		t.Fatalf("detected bad = %d", p.DetectedBad())
	}
}

func TestOverheadEstimatedBytes(t *testing.T) {
	o := Overhead{NeighborListMsgs: 10, NeighborTrafficMsgs: 5, VerifyMsgs: 2}
	got := o.EstimatedBytes(6)
	// Lists: 10*(23+2+36)=610; NT: 5*43=215; verify: 2*60=120.
	if got != 610+215+120 {
		t.Fatalf("bytes = %d", got)
	}
	if (Overhead{}).EstimatedBytes(6) != 0 {
		t.Fatal("empty overhead must cost nothing")
	}
}
