package police

// This file implements the protocol mechanics: list exchange (step 1),
// report collection and indicator evaluation (step 3). Step 2 — the
// per-minute Out_query/In_query counters — lives in internal/overlay
// and is read here via LastMinute.

import (
	"math"
	"slices"

	"ddpolice/internal/journal"
	"ddpolice/internal/trace"
)

// Tick runs time-driven protocol work for the second ending at now
// (seconds). In periodic mode it fires due neighbor-list exchanges.
//
// On the simulator's integer-second cadence the due peers come from a
// calendar queue — O(due this tick) instead of an O(N) scan of every
// state — and fire in ascending peer order, exactly the order the scan
// produced: for integer t, float64(t) >= nextExchange iff
// t >= ceil(nextExchange) (ceil of a float64 is exact), so bucketing
// peers by ceil(nextExchange) fires each peer on precisely the tick
// the scan would have. A call off that cadence (fractional now, or a
// skipped second) falls back to the scan and rebuilds the queue lazily.
func (p *Police) Tick(now float64) {
	if p.cfg.EventDriven {
		return
	}
	t := int64(now)
	if float64(t) != now || (p.exqReady && t != p.exqNext) {
		p.exqReady = false
		p.tickScan(now)
		return
	}
	if !p.exqReady {
		p.buildExchangeQueue(t)
	}
	p.exqNext = t + 1
	b := &p.exqBucket[t%int64(len(p.exqBucket))]
	due := *b
	*b = nil
	if len(due) == 0 {
		return
	}
	// Buckets receive refires from multiple earlier ticks, so restore
	// the scan's ascending-peer order before firing.
	slices.Sort(due)
	for _, v := range due {
		st := &p.states[v]
		st.nextExchange += p.cfg.ExchangePeriod
		if p.ov.Online(v) {
			p.exchangeFrom(v, now)
		}
		p.enqueueExchange(v, t+1)
	}
	// Keep the drained backing array for a future bucket.
	if cap(due) > 0 {
		*b = due[:0]
	}
}

// tickScan is the original O(N) exchange sweep, kept as the fallback
// for off-cadence Tick calls (tests driving fractional time).
func (p *Police) tickScan(now float64) {
	for v := range p.states {
		st := &p.states[v]
		if now < st.nextExchange {
			continue
		}
		st.nextExchange += p.cfg.ExchangePeriod
		if p.ov.Online(PeerID(v)) {
			p.exchangeFrom(PeerID(v), now)
		}
	}
}

// buildExchangeQueue (re)derives the calendar buckets from the float
// schedule, starting service at integer tick t.
func (p *Police) buildExchangeQueue(t int64) {
	// A peer that just fired reschedules at most ceil(period) ticks
	// out, and overdue peers land in the current bucket, so
	// ceil(period)+2 buckets can never collide across rounds.
	nb := int64(math.Ceil(p.cfg.ExchangePeriod)) + 2
	if p.exqBucket == nil || int64(len(p.exqBucket)) != nb {
		p.exqBucket = make([][]PeerID, nb)
	}
	for i := range p.exqBucket {
		p.exqBucket[i] = p.exqBucket[i][:0]
	}
	for v := range p.states {
		p.enqueueExchange(PeerID(v), t)
	}
	p.exqReady = true
	p.exqNext = t
}

// enqueueExchange places v into the bucket for ceil(nextExchange),
// clamped to floor (the earliest tick the queue will still serve): an
// overdue peer fires once per tick until it catches up, exactly like
// the scan.
func (p *Police) enqueueExchange(v PeerID, floor int64) {
	fire := int64(math.Ceil(p.states[v].nextExchange))
	if fire < floor {
		fire = floor
	}
	i := fire % int64(len(p.exqBucket))
	p.exqBucket[i] = append(p.exqBucket[i], v)
}

// NotifyJoin must be called when peer v comes online. The joining peer
// performs its first neighbor-list exchange immediately ("a joining
// peer creates its BG membership after its first neighbor list
// exchanging operation"), and in event-driven mode its neighbors push
// updates too.
func (p *Police) NotifyJoin(v PeerID, now float64) {
	if p.dense {
		// Reset v's received-list and rate-limit slots: one directed
		// edge per static neighbor, O(degree).
		for k := range p.ov.Graph().Neighbors(v) {
			e := p.ov.EdgeID(v, k)
			p.listAt[e] = listNone
			p.lastNT[e] = ntNever
		}
	} else if p.states[v].lists == nil {
		// Reuse the joining peer's state maps across churn cycles
		// instead of leaving the old ones to the collector every rejoin.
		p.states[v].lists = make(map[PeerID]advertised)
		p.states[v].lastReport = make(map[PeerID]float64)
	} else {
		clear(p.states[v].lists)
		clear(p.states[v].lastReport)
	}
	p.exchangeFrom(v, now)
	// The new peer also learns its neighbors' lists right away (the
	// exchange is mutual on connect).
	p.joinBuf = p.ov.ActiveNeighbors(v, p.joinBuf[:0])
	for _, w := range p.joinBuf {
		p.sendList(w, v, now)
	}
	if p.cfg.EventDriven {
		// sendList above cannot shuffle joinBuf, but exchangeFrom fans
		// out through exBuf, so reusing joinBuf for this second pass is
		// still safe.
		p.joinBuf = p.ov.ActiveNeighbors(v, p.joinBuf[:0])
		for _, w := range p.joinBuf {
			p.exchangeFrom(w, now)
		}
	}
}

// NotifyLeave must be called when peer v goes offline. In event-driven
// mode the departed peer's neighbors push updated lists.
func (p *Police) NotifyLeave(v PeerID, now float64) {
	if p.cfg.EventDriven {
		for _, w := range p.ov.Graph().Neighbors(v) {
			if p.ov.Online(w) {
				p.exchangeFrom(w, now)
			}
		}
	}
}

// exchangeFrom makes peer v push its neighbor list to all its active
// neighbors (and, for Radius 2, relay the lists it holds one hop on).
func (p *Police) exchangeFrom(v PeerID, now float64) {
	p.exBuf = p.ov.ActiveNeighbors(v, p.exBuf[:0])
	for _, w := range p.exBuf {
		p.sendList(v, w, now)
		if p.cfg.Radius >= 2 {
			// DD-POLICE-r, r=2: v relays the freshest lists it holds so
			// w can build buddy groups for peers two hops away.
			for owner, adv := range p.states[v].lists {
				if owner == w {
					continue
				}
				p.overhead.NeighborListMsgs++
				p.storeList(w, owner, adv.members, adv.at)
			}
		}
	}
}

// sendList delivers v's own current neighbor list to receiver w.
func (p *Police) sendList(v, w PeerID, now float64) {
	p.sendBuf = p.ov.ActiveNeighbors(v, p.sendBuf[:0])
	members := p.sendBuf
	if p.liar[v] {
		// A lying peer pads its list with fabricated claims: peers it
		// is not actually connected to.
		fakes := 0
		for fake := PeerID(0); fake < PeerID(p.ov.NumPeers()) && fakes < 4; fake++ {
			if fake != v && fake != w && !p.ov.Connected(v, fake) {
				members = append(members, fake)
				fakes++
			}
		}
	}
	p.overhead.NeighborListMsgs++
	if p.lost() {
		return // the push never reached w
	}
	if p.cfg.VerifyLists {
		p.verifyList(w, v, members, now)
	}
	p.storeList(w, v, members, now)
}

// storeList records at receiver the advertised list of owner.
func (p *Police) storeList(receiver, owner PeerID, members []PeerID, at float64) {
	if p.dense {
		// Radius 1: every push travels one hop, so owner is a direct
		// neighbor and the (receiver, owner) pair addresses a directed
		// edge. The per-edge backing array is reused across pushes.
		e, ok := p.ov.FindEdge(receiver, owner)
		if !ok {
			return // not reachable at Radius 1; map mode never stores it either
		}
		if p.listAt[e] != listNone && p.listAt[e] > at {
			return // keep the fresher list
		}
		p.listAt[e] = at
		p.listMem[e] = append(p.listMem[e][:0], members...)
		return
	}
	st := &p.states[receiver]
	if prev, ok := st.lists[owner]; ok && prev.at > at {
		return // keep the fresher list
	}
	cp := make([]PeerID, len(members))
	copy(cp, members)
	st.lists[owner] = advertised{at: at, members: cp}
}

// verifyList performs the §3.1 consistency check at the receiver: each
// claimed neighbor is confirmed with the corresponding peer. "If a peer
// finds out that the claim of a pair of neighboring peers are not
// consistent, it will disconnect with the one which is its neighbor."
func (p *Police) verifyList(receiver, owner PeerID, members []PeerID, now float64) {
	for _, claimed := range members {
		p.overhead.VerifyMsgs++
		if claimed == receiver {
			continue // the receiver can check its own edge directly
		}
		if !p.ov.Connected(owner, claimed) {
			if p.ov.Connected(receiver, owner) {
				_ = p.ov.Cut(receiver, owner)
				p.recordCut(receiver, owner, 0, 0, now)
			}
			return
		}
	}
}

// membersOf returns the observer's view of suspect j's buddy group
// BG1-j (excluding the observer itself), based on the advertised list
// it holds, filtered for staleness.
func (p *Police) membersOf(observer, suspect PeerID, now float64) []PeerID {
	var at float64
	var members []PeerID
	if p.dense {
		e, ok := p.ov.FindEdge(observer, suspect)
		if !ok || p.listAt[e] == listNone {
			return nil
		}
		at, members = p.listAt[e], p.listMem[e]
	} else {
		adv, ok := p.states[observer].lists[suspect]
		if !ok {
			return nil
		}
		at, members = adv.at, adv.members
	}
	if p.cfg.StaleAfter > 0 && now-at > p.cfg.StaleAfter {
		return nil
	}
	out := p.memberBuf[:0]
	for _, m := range members {
		if m != observer {
			out = append(out, m)
		}
	}
	p.memberBuf = out
	return out
}

// report produces member m's Neighbor_Traffic answer about suspect j:
// (Out = Q_{m->j}, In = Q_{j->m}) for the last closed minute. ok is
// false when no report arrives (member offline, edge gone, or the
// member stonewalls) — the collector then assumes zero, exactly as the
// paper prescribes for silent peers.
func (p *Police) report(m, suspect PeerID, now float64) (out, in float64, ok bool) {
	// The member must be online and must actually be a logical neighbor
	// of the suspect. A cut edge does not silence the report: the
	// counters describe the minute that already elapsed, during which
	// the member observed the suspect directly.
	if !p.ov.Online(m) || !p.ov.Online(suspect) {
		return 0, 0, false
	}
	if _, isEdge := p.ov.FindEdge(m, suspect); !isEdge {
		return 0, 0, false
	}
	if p.lost() {
		return 0, 0, false // report lost on a congested link
	}
	out = p.ov.LastMinute(m, suspect)
	in = p.ov.LastMinute(suspect, m)
	if p.isBad[m] {
		switch p.cheat[m] {
		case CheatSilent:
			return 0, 0, false
		case CheatDeflate:
			// Case 2: under-report what the cheater sent to the suspect
			// so the suspect appears to have generated the traffic.
			out = 0
		case CheatInflate:
			// Case 1: over-report.
			out *= 10
		}
	}
	p.overhead.NeighborTrafficMsgs++
	return out, in, true
}

// Indicators computes g(j,t) and s(j,t,i) as seen by the observer,
// along with the buddy-group size k used. It returns ok=false when the
// observer has no usable buddy-group view for the suspect (decision
// must be deferred).
func (p *Police) Indicators(observer, suspect PeerID, now float64) (g, s float64, k int, ok bool) {
	members := p.membersOf(observer, suspect, now)
	if members == nil {
		return 0, 0, 0, false
	}
	// Observer's own measurements of the suspect's edge.
	own := Report{
		Out: p.ov.LastMinute(observer, suspect), // Q_{i->j}
		In:  p.ov.LastMinute(suspect, observer), // Q_{j->i}
	}
	p.jr.Record(journal.Event{
		T: now, Type: journal.TypeNTRequest,
		Node: int64(observer), Peer: int64(suspect),
		K: len(members), Window: int(now) / 60,
	})
	dt := p.curDet
	if dt != nil {
		dt.req = dt.tc.Add(trace.Span{
			Kind: trace.KindNTRequest, T: now,
			Node: int64(observer), Peer: int64(suspect),
			Value: float64(len(members)),
		})
	}
	others := p.reportBuf[:0]
	missing := 0
	for _, m := range members {
		rOut, rIn, got := p.report(m, suspect, now)
		if !got {
			missing++ // missing report counts as zero but keeps its seat
			p.jr.Record(journal.Event{
				T: now, Type: journal.TypeNTTimeout,
				Node: int64(observer), Peer: int64(suspect), Member: int64(m),
			})
			if dt != nil {
				dt.tc.Add(trace.Span{
					Kind: trace.KindNTTimeout, Parent: dt.req, T: now,
					Node: int64(observer), Peer: int64(m),
				})
			}
			continue
		}
		others = append(others, Report{Out: rOut, In: rIn})
		p.jr.Record(journal.Event{
			T: now, Type: journal.TypeNTReport,
			Node: int64(observer), Peer: int64(suspect), Member: int64(m),
		})
		if dt != nil {
			dt.tc.Add(trace.Span{
				Kind: trace.KindNTReport, Parent: dt.req, T: now,
				Node: int64(observer), Peer: int64(m), Value: rIn,
			})
		}
	}
	p.reportBuf = others
	g, s, k = ComputeIndicators(p.cfg.Q0, own, others, missing)
	p.jr.Record(journal.Event{
		T: now, Type: journal.TypeIndicator,
		Node: int64(observer), Peer: int64(suspect),
		G: g, S: s, K: k, Window: int(now) / 60,
	})
	if dt != nil {
		dt.ind = dt.tc.Add(trace.Span{
			Kind: trace.KindIndicator, Parent: dt.req, T: now,
			Node: int64(observer), Peer: int64(suspect),
			Value: max(g, s), Detail: "g_s_max",
		})
	}
	return g, s, k, true
}

// EvaluateMinute runs bad-peer recognition for the minute that just
// closed (call immediately after overlay.RollMinute). Every online peer
// inspects its neighbors' last-minute inbound volume; suspects above
// the warning threshold are judged against the cut threshold.
//
// Decisions are collected first and applied after the sweep: the real
// protocol runs at all observers concurrently over the same minute's
// reports, so one observer's disconnect must not erase the evidence a
// later observer's computation depends on.
func (p *Police) EvaluateMinute(now float64) {
	cuts := p.cutBuf[:0]
	// Sweep online observers only, in ascending order — identical to
	// the old all-peers scan with its offline skip, in O(online).
	p.obsBuf = p.ov.AppendOnline(p.obsBuf[:0])
	for _, observer := range p.obsBuf {
		p.evalBuf = p.ov.ActiveNeighbors(observer, p.evalBuf[:0])
		for _, suspect := range p.evalBuf {
			if p.blacklisted(observer, suspect, now) {
				// Future-work extension: a previously-convicted suspect
				// that reconnected is cut on sight.
				cuts = append(cuts, verdict{observer, suspect, 0, 0})
				continue
			}
			inbound := p.ov.LastMinute(suspect, observer)
			if inbound <= p.cfg.WarnThreshold {
				continue
			}
			p.jr.Record(journal.Event{
				T: now, Type: journal.TypeWarning,
				Node: int64(observer), Peer: int64(suspect),
				Value: inbound, Window: int(now) / 60,
			})
			p.curDet = nil
			if p.tracer != nil {
				id := trace.DetectionID(p.traceSeed,
					uint64(observer), uint64(suspect), uint64(int(now)/60))
				if tc := p.tracer.Start(id, trace.Span{
					Kind: trace.KindWarning, T: now,
					Node: int64(observer), Peer: int64(suspect),
					Value: inbound,
				}); tc != nil {
					dt := &detTrace{tc: tc}
					p.curDet = dt
					p.openDet[detKey(observer, suspect)] = dt
					p.openOrd = append(p.openOrd, dt)
				}
			}
			// Rate-limit Neighbor_Traffic rounds per (observer, suspect).
			if p.dense {
				e, _ := p.ov.FindEdge(observer, suspect)
				if now-p.lastNT[e] < p.cfg.ReportRateLimit {
					continue
				}
				p.lastNT[e] = now
			} else {
				st := &p.states[observer]
				if last, sent := st.lastReport[suspect]; sent && now-last < p.cfg.ReportRateLimit {
					continue
				}
				st.lastReport[suspect] = now
			}
			g, s, k, ok := p.Indicators(observer, suspect, now)
			p.curDet = nil
			if !ok {
				continue
			}
			// The observer's own broadcast to the group.
			p.overhead.NeighborTrafficMsgs += uint64(k - 1)
			if g > p.cfg.CutThreshold || s > p.cfg.CutThreshold {
				cuts = append(cuts, verdict{observer, suspect, g, s})
			}
		}
	}
	for _, c := range cuts {
		if err := p.ov.Cut(c.observer, c.suspect); err == nil {
			p.recordCut(c.observer, c.suspect, c.g, c.s, now)
		}
	}
	p.cutBuf = cuts // keep the grown capacity for the next minute
	// Commit this minute's detection traces in creation order (cut or
	// not — a warning with no verdict is still a complete story).
	if len(p.openOrd) > 0 {
		for _, dt := range p.openOrd {
			dt.tc.End()
		}
		p.openOrd = p.openOrd[:0]
		clear(p.openDet)
	}
	p.curDet = nil
}

// blacklisted reports whether the observer currently bans the suspect.
func (p *Police) blacklisted(observer, suspect PeerID, now float64) bool {
	if p.blacklist == nil {
		return false
	}
	bl := p.blacklist[observer]
	if bl == nil {
		return false
	}
	exp, ok := bl[suspect]
	if !ok {
		return false
	}
	if now >= exp {
		delete(bl, suspect)
		return false
	}
	return true
}

func (p *Police) recordCut(observer, suspect PeerID, g, s, now float64) {
	if p.blacklist != nil {
		if p.blacklist[observer] == nil {
			p.blacklist[observer] = make(map[PeerID]float64)
		}
		p.blacklist[observer][suspect] = now + p.cfg.BlacklistSec
	}
	p.detections = append(p.detections, Detection{
		At: now, Observer: observer, Suspect: suspect, General: g, Single: s,
	})
	p.jr.Record(journal.Event{
		T: now, Type: journal.TypeCut,
		Node: int64(observer), Peer: int64(suspect), G: g, S: s,
		Window: int(now) / 60,
	})
	// Blacklist and verify-list cuts have no open warning trace; the
	// lookup simply misses for them.
	if dt, ok := p.openDet[detKey(observer, suspect)]; ok {
		dt.tc.Add(trace.Span{
			Kind: trace.KindCut, Parent: dt.ind, T: now,
			Node: int64(observer), Peer: int64(suspect), Value: max(g, s),
		})
	}
	if p.isBad[suspect] {
		if !p.detected[suspect] {
			p.detected[suspect] = true
			p.detectedN++
		}
	} else if !p.cutGood[suspect] {
		p.cutGood[suspect] = true
		p.cutGoodN++
	}
}
