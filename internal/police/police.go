// Package police implements DD-POLICE, the paper's defense: peers
// police their neighbors' query behaviour by cooperating with each
// suspect's Buddy Group (its other direct neighbors), exchanging
// Neighbor_Traffic query-volume reports, computing the General and
// Single indicators of Definitions 2.1-2.3, and disconnecting peers
// whose indicator exceeds the cut threshold CT.
//
// The three protocol steps of §3:
//
//  1. Neighbor list exchanging — periodic (every ExchangePeriod, the
//     paper settles on 2 minutes) or event-driven; received lists form
//     each peer's view of its neighbors' Buddy Groups.
//  2. Neighbor query traffic monitoring — per-minute Out_query/In_query
//     counters per logical neighbor (held by internal/overlay).
//  3. Bad peer recognition — when In_query(j) exceeds the warning
//     threshold (500/min), the observer collects Neighbor_Traffic
//     reports from BG1-j, computes g(j,t) and s(j,t,i), and cuts the
//     connection when either exceeds CT.
package police

import (
	"fmt"

	"ddpolice/internal/journal"
	"ddpolice/internal/trace"
	"ddpolice/internal/overlay"
	"ddpolice/internal/rng"
)

// PeerID aliases the overlay peer identifier.
type PeerID = overlay.PeerID

// Config holds the DD-POLICE protocol parameters.
type Config struct {
	// Q0 is the good-peer issuing bound q (queries/min); Definition 2.1
	// sets q = 100.
	Q0 float64
	// WarnThreshold marks a neighbor suspicious when it sends more than
	// this many queries in a minute (§3.3 example: 500).
	WarnThreshold float64
	// CutThreshold is CT: disconnect when g or s exceeds it.
	CutThreshold float64
	// ExchangePeriod is the neighbor-list exchange interval in seconds
	// (periodic policy; paper uses 120).
	ExchangePeriod float64
	// EventDriven switches to the event-driven exchange policy: lists
	// are pushed whenever a neighbor joins or leaves.
	EventDriven bool
	// ReportRateLimit is the Neighbor_Traffic per-member resend
	// suppression window in seconds (paper: 50).
	ReportRateLimit float64
	// StaleAfter discards advertised lists older than this many
	// seconds; 0 disables expiry.
	StaleAfter float64
	// VerifyLists enables the §3.1 consistency check: claims in a
	// received list are confirmed with the claimed peers, and liars are
	// disconnected.
	VerifyLists bool
	// Radius is r in DD-POLICE-r. r=1 (the paper's focus) uses direct
	// neighbor lists only; r=2 additionally propagates lists one hop
	// further, making buddy-group views resilient to a missed exchange.
	Radius int
	// BlacklistSec is a future-work extension (§5: "No mechanism can
	// prevent the DDoS Agent from joining the system again"): an
	// observer that disconnected a suspect refuses to serve it again
	// for this many seconds, cutting re-established connections
	// immediately. 0 disables the blacklist (the paper's behaviour).
	BlacklistSec float64
	// LegacyMapState forces the original map[PeerID]-keyed per-peer
	// bookkeeping instead of the dense directed-edge-indexed arrays
	// used for Radius 1. The two representations are byte-identical in
	// every observable stream (results, events, journal, traces); the
	// flag exists so the determinism matrix test can prove it. Radius 2
	// always uses maps (relayed lists reach peers two hops out, beyond
	// the directed-edge address space).
	LegacyMapState bool
}

// DefaultConfig returns the paper's operating point: q0=100, warn=500,
// CT=5, 2-minute periodic exchange, 50 s rate limit, r=1.
func DefaultConfig() Config {
	return Config{
		Q0:              100,
		WarnThreshold:   500,
		CutThreshold:    5,
		ExchangePeriod:  120,
		ReportRateLimit: 50,
		StaleAfter:      600,
		Radius:          1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Q0 <= 0 {
		return fmt.Errorf("police: Q0 = %v", c.Q0)
	}
	if c.WarnThreshold <= 0 {
		return fmt.Errorf("police: WarnThreshold = %v", c.WarnThreshold)
	}
	if c.CutThreshold <= 0 {
		return fmt.Errorf("police: CutThreshold = %v", c.CutThreshold)
	}
	if !c.EventDriven && c.ExchangePeriod <= 0 {
		return fmt.Errorf("police: ExchangePeriod = %v", c.ExchangePeriod)
	}
	if c.Radius < 1 || c.Radius > 2 {
		return fmt.Errorf("police: Radius = %d (supported: 1, 2)", c.Radius)
	}
	return nil
}

// CheatStrategy models how a malicious peer answers Neighbor_Traffic
// requests about one of its neighbors (§3.4's three choices).
type CheatStrategy int

// Cheating strategies for Neighbor_Traffic reporting.
const (
	// CheatNone: report truthfully (the paper argues this is the
	// attacker's rational choice).
	CheatNone CheatStrategy = iota
	// CheatInflate: report a larger outgoing count than real (Case 1 —
	// helps the accused good peer, pointless for the attacker).
	CheatInflate
	// CheatDeflate: report a smaller outgoing count (Case 2 — frames
	// the good neighbor as the query source).
	CheatDeflate
	// CheatSilent: refuse to report (treated as zero by the collector,
	// same effect as Case 2).
	CheatSilent
)

// Overhead tallies DD-POLICE control traffic (message counts).
type Overhead struct {
	NeighborListMsgs    uint64 // periodic + event-driven list pushes
	NeighborTrafficMsgs uint64 // Table 1 reports exchanged in BGs
	VerifyMsgs          uint64 // list consistency confirmations
}

// Total returns the total control message count.
func (o Overhead) Total() uint64 {
	return o.NeighborListMsgs + o.NeighborTrafficMsgs + o.VerifyMsgs
}

// EstimatedBytes converts the message counts into wire bytes using the
// protocol's frame sizes: every message carries the 23-byte unified
// header; a Neighbor_Traffic body is the fixed 20 bytes of Table 1; a
// neighbor list averages 2 + 6*avgDegree bytes; a verification probe is
// approximated as a Ping/Pong pair.
func (o Overhead) EstimatedBytes(avgDegree float64) uint64 {
	const header = 23
	listBody := 2 + 6*avgDegree
	ntBody := 20.0
	pingPong := 2*header + 14.0
	total := float64(o.NeighborListMsgs)*(header+listBody) +
		float64(o.NeighborTrafficMsgs)*(header+ntBody) +
		float64(o.VerifyMsgs)*pingPong
	return uint64(total)
}

// Detection records one disconnect decision.
type Detection struct {
	At       float64 // seconds
	Observer PeerID
	Suspect  PeerID
	General  float64 // g(j,t) at decision time
	Single   float64 // s(j,t,i) at decision time
}

// advertised is a neighbor list received from a peer.
type advertised struct {
	at      float64
	members []PeerID
}

// peerState is the per-peer DD-POLICE bookkeeping.
type peerState struct {
	lists        map[PeerID]advertised // owner -> owner's advertised neighbor list
	lastReport   map[PeerID]float64    // suspect -> last Neighbor_Traffic sent
	nextExchange float64
}

// Police drives the protocol over one overlay. Not safe for concurrent
// use; each simulation replica owns one instance.
type Police struct {
	cfg    Config
	ov     *overlay.Overlay
	states []peerState
	cheat  []CheatStrategy
	isBad  []bool
	liar   []bool // advertises fabricated neighbor-list entries

	detections []Detection
	overhead   Overhead
	cutGood    []bool // good peers cut at least once (false negatives)
	cutGoodN   int    // count of set cutGood entries
	detected   []bool // bad peers detected at least once
	detectedN  int    // count of set detected entries

	lossProb  float64
	lossSrc   *rng.Source
	lostCount uint64 // control messages dropped by the loss model

	// jr receives detection-lifecycle events stamped with the
	// simulator's logical clock; nil disables journaling.
	jr *journal.Journal

	// tracer, when non-nil, mirrors the journal's detection lifecycle
	// into causal span trees (see internal/trace): one trace per
	// (observer, suspect, minute window) from warning_crossed to cut.
	// traceSeed feeds the deterministic trace-ID derivation; nil
	// tracer costs one pointer check per site.
	tracer    *trace.Tracer
	traceSeed uint64
	curDet    *detTrace            // trace of the evaluation in flight
	openDet   map[uint64]*detTrace // (observer,suspect) -> open trace this minute
	openOrd   []*detTrace          // commit order (map iteration is not deterministic)

	// blacklist[observer][suspect] = expiry time (BlacklistSec > 0).
	blacklist []map[PeerID]float64

	// Pooled scratch buffers. The minute sweep and the exchange
	// fan-outs run for every online peer every simulated minute, so
	// their transient slices are reused across calls instead of
	// re-allocated per observer/suspect round. Each buffer is owned by
	// exactly one (non-reentrant) call path: membersOf/Indicators never
	// nest inside each other, exchangeFrom never calls NotifyJoin, and
	// sendList is a leaf.
	memberBuf []PeerID  // membersOf result
	reportBuf []Report  // Indicators' collected Neighbor_Traffic answers
	cutBuf    []verdict // EvaluateMinute's deferred cut decisions
	evalBuf   []PeerID  // EvaluateMinute's per-observer suspect scan
	obsBuf    []PeerID  // EvaluateMinute's online-observer sweep list
	exBuf     []PeerID  // exchangeFrom's neighbor fan-out
	sendBuf   []PeerID  // sendList's advertised members (liars append)
	joinBuf   []PeerID  // NotifyJoin's neighbor push list

	// Dense directed-edge-indexed state (Radius 1, LegacyMapState off).
	// A stored list or rate-limit stamp always concerns a direct
	// neighbor there, so the (receiver, owner) pair addresses the
	// directed edge receiver->owner and the map lookups become array
	// loads; the per-edge member slices are pooled across exchanges
	// (storeList in map mode allocates a fresh copy per push).
	dense   bool
	listAt  []float64  // receipt time of the list on edge recv->owner; listNone = none
	listMem [][]PeerID // advertised members on that edge (reused backing arrays)
	lastNT  []float64  // last NT round on edge observer->suspect; ntNever = never

	// Calendar queue for the periodic exchange schedule: exqBucket[t%B]
	// holds the peers whose next exchange is due at integer tick t, so
	// Tick touches O(due) peers instead of scanning all N states. Kept
	// exactly equivalent to the float schedule in states[].nextExchange
	// (see Tick); falls back to the linear scan — and rebuilds lazily —
	// when Tick is called off the integer-second cadence.
	exqBucket [][]PeerID
	exqNext   int64 // integer tick the queue expects to serve next
	exqReady  bool
}

// Sentinels for the dense edge-indexed state. listNone marks "no list
// held" (any real receipt time is >= 0); ntNever marks "no NT round
// yet" (now-ntNever dwarfs any ReportRateLimit, matching the map's
// missing-key behaviour).
const (
	listNone = -1.0
	ntNever  = -1e18
)

// verdict is one deferred disconnect decision from the minute sweep.
type verdict struct {
	observer, suspect PeerID
	g, s              float64
}

// New creates a DD-POLICE instance over ov. Exchange phases are
// staggered per peer so the control traffic spreads over the period.
func New(ov *overlay.Overlay, cfg Config) (*Police, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := ov.NumPeers()
	p := &Police{
		cfg:      cfg,
		ov:       ov,
		states:   make([]peerState, n),
		cheat:    make([]CheatStrategy, n),
		isBad:    make([]bool, n),
		liar:     make([]bool, n),
		cutGood:  make([]bool, n),
		detected: make([]bool, n),
		dense:    cfg.Radius == 1 && !cfg.LegacyMapState,
		// Non-nil from the start: membersOf's callers distinguish "no
		// usable list" (nil) from "an empty buddy group" (empty slice).
		memberBuf: make([]PeerID, 0, 8),
	}
	if p.dense {
		ne := ov.NumDirectedEdges()
		p.listAt = make([]float64, ne)
		p.listMem = make([][]PeerID, ne)
		p.lastNT = make([]float64, ne)
		for e := 0; e < ne; e++ {
			p.listAt[e] = listNone
			p.lastNT[e] = ntNever
		}
	}
	for i := range p.states {
		if !p.dense {
			p.states[i] = peerState{
				lists:      make(map[PeerID]advertised),
				lastReport: make(map[PeerID]float64),
			}
		}
		if !cfg.EventDriven {
			// Deterministic stagger: spread phases across the period.
			p.states[i].nextExchange = cfg.ExchangePeriod * float64(i) / float64(n)
		}
	}
	if cfg.BlacklistSec > 0 {
		p.blacklist = make([]map[PeerID]float64, n)
	}
	return p, nil
}

// SetBad marks peer v as a DDoS agent with the given reporting
// strategy. Ground truth is used only for error accounting; the
// protocol itself never reads it.
func (p *Police) SetBad(v PeerID, cheat CheatStrategy) {
	p.isBad[v] = true
	p.cheat[v] = cheat
}

// SetListLiar makes v advertise a fabricated neighbor list (tested by
// the VerifyLists consistency check).
func (p *Police) SetListLiar(v PeerID) { p.liar[v] = true }

// Detections returns all disconnect decisions so far.
func (p *Police) Detections() []Detection { return p.detections }

// Overhead returns control-traffic counters.
func (p *Police) Overhead() Overhead { return p.overhead }

// FalseNegatives returns the number of distinct good peers wrongly
// disconnected (the paper's "false negative").
func (p *Police) FalseNegatives() int { return p.cutGoodN }

// DetectedBad returns the number of distinct bad peers disconnected at
// least once.
func (p *Police) DetectedBad() int { return p.detectedN }

// FalsePositives returns the number of bad peers among the given agent
// set that were never identified (the paper's "false positive").
func (p *Police) FalsePositives(agents []PeerID) int {
	missed := 0
	for _, a := range agents {
		if !p.detected[a] {
			missed++
		}
	}
	return missed
}

// Report is one Neighbor_Traffic data point about a suspect: what the
// reporting member sent to the suspect (Out = Q_{m->j}) and received
// from it (In = Q_{j->m}) in the last closed minute.
type Report struct {
	Out float64
	In  float64
}

// ComputeIndicators evaluates Definitions 2.1 and 2.2 from collected
// reports. own is the observer's direct measurement of the suspect's
// edge; others are the remaining buddy-group members' reports (missing
// reports are simply absent — the caller decides whether a member that
// never answered still counts toward k via missingMembers).
func ComputeIndicators(q0 float64, own Report, others []Report, missingMembers int) (g, s float64, k int) {
	k = 1 + len(others) + missingMembers
	sumToSuspect := own.Out  // Σ_m Q_{m->j}
	sumFromSuspect := own.In // Σ_m Q_{j->m}
	othersToSuspect := 0.0   // Σ_{m≠i} Q_{m->j}
	for _, r := range others {
		sumToSuspect += r.Out
		sumFromSuspect += r.In
		othersToSuspect += r.Out
	}
	g = (sumFromSuspect - float64(k-1)*sumToSuspect) / (float64(k) * q0)
	s = (own.In - othersToSuspect) / q0
	return g, s, k
}

// SetControlLoss sets the probability that an individual control
// message (neighbor-list push or Neighbor_Traffic report) is lost in
// transit, drawn from src. The simulator derives this from current
// network congestion: DD-POLICE's own messages ride the same saturated
// overlay links as the attack traffic. A nil src disables loss.
func (p *Police) SetControlLoss(prob float64, src *rng.Source) {
	p.lossProb = prob
	p.lossSrc = src
}

// lost reports whether one control message should be dropped, counting
// losses so delivery rates are measurable after a run.
func (p *Police) lost() bool {
	if p.lossSrc != nil && p.lossProb > 0 && p.lossSrc.Bool(p.lossProb) {
		p.lostCount++
		return true
	}
	return false
}

// ControlLost returns how many control messages the loss model dropped
// so far. Overhead().Total() counts messages sent (lost ones included),
// so the run's control-plane delivery rate is 1 - lost/sent.
func (p *Police) ControlLost() uint64 { return p.lostCount }

// SetJournal attaches an event journal recording the detection
// lifecycle (warning → NT round → indicators → cut) with logical
// timestamps. The protocol sweep is single-threaded and iterates peers
// and buddy members in deterministic order, so two identical-seed runs
// journal identical event sequences. A nil journal disables recording.
func (p *Police) SetJournal(j *journal.Journal) { p.jr = j }

// detTrace is one open detection trace plus the span ordinals deeper
// protocol stages hang their children from.
type detTrace struct {
	tc  *trace.Trace
	req uint32 // nt_request span ordinal
	ind uint32 // indicator span ordinal
}

// SetTracer attaches the causal tracing plane. seed is the run seed
// the deterministic trace IDs derive from; a nil tracer disables
// tracing. Like the journal, tracing is passive: it reads protocol
// state but never mutates it, so traced and untraced runs stay
// byte-identical.
func (p *Police) SetTracer(tr *trace.Tracer, seed uint64) {
	p.tracer = tr
	p.traceSeed = seed
	if tr != nil && p.openDet == nil {
		p.openDet = make(map[uint64]*detTrace)
	}
}

// detKey packs an (observer, suspect) pair for the open-trace map.
func detKey(observer, suspect PeerID) uint64 {
	return uint64(uint32(observer))<<32 | uint64(uint32(suspect))
}

// IsBad reports ground truth for peer v (error accounting only).
func (p *Police) IsBad(v PeerID) bool { return p.isBad[v] }
