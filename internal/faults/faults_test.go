package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"ddpolice/internal/telemetry"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	p.SetRule(ClassQuery, Rule{Drop: 1})
	p.SetAll(Rule{Drop: 1})
	p.Partition(1, 2)
	p.Heal()
	p.AttachTelemetry(nil)
	if p.Blocked(1, 3) {
		t.Fatal("nil plan blocked a frame")
	}
	if v := p.Decide(ClassQuery); v != (Verdict{}) {
		t.Fatalf("nil plan verdict = %+v, want zero", v)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if got := Wrap(a, nil, 1, 2, nil); got != a {
		t.Fatal("Wrap(nil plan) should return the conn unchanged")
	}
}

func TestDecideDeterministic(t *testing.T) {
	mk := func() []Verdict {
		p := NewPlan(42)
		p.SetRule(ClassQuery, Rule{Drop: 0.3, Duplicate: 0.2, Delay: time.Millisecond, Jitter: time.Millisecond})
		out := make([]Verdict, 200)
		for i := range out {
			out[i] = p.Decide(ClassQuery)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRuleProbabilities(t *testing.T) {
	p := NewPlan(7)
	p.SetRule(ClassControl, Rule{Drop: 1})
	for i := 0; i < 50; i++ {
		if v := p.Decide(ClassControl); !v.Drop {
			t.Fatal("Drop=1 rule did not drop")
		}
		if v := p.Decide(ClassQuery); v != (Verdict{}) {
			t.Fatalf("unruled class got verdict %+v", v)
		}
	}
	p.SetRule(ClassControl, Rule{Reset: 1, Drop: 1})
	if v := p.Decide(ClassControl); !v.Reset || v.Drop {
		t.Fatalf("reset should preempt drop, got %+v", v)
	}
	p.SetRule(ClassControl, Rule{})
	if v := p.Decide(ClassControl); v != (Verdict{}) {
		t.Fatalf("cleared rule still fires: %+v", v)
	}
}

func TestPartitionBlockedAndHeal(t *testing.T) {
	p := NewPlan(1)
	p.Partition(1, 2)
	cases := []struct {
		a, b    int32
		blocked bool
	}{
		{1, 3, true},  // member -> outsider
		{3, 2, true},  // outsider -> member
		{1, 2, false}, // both inside
		{3, 4, false}, // both outside
	}
	for _, c := range cases {
		if got := p.Blocked(c.a, c.b); got != c.blocked {
			t.Errorf("Blocked(%d,%d) = %v, want %v", c.a, c.b, got, c.blocked)
		}
	}
	p.Heal()
	if p.Blocked(1, 3) {
		t.Fatal("healed partition still blocks")
	}
}

// pipeReader drains one frame-sized read from the far pipe end.
func pipeReader(t *testing.T, conn net.Conn, n int) <-chan []byte {
	t.Helper()
	out := make(chan []byte, 4)
	go func() {
		for {
			buf := make([]byte, n)
			if _, err := io.ReadFull(conn, buf); err != nil {
				close(out)
				return
			}
			out <- buf
		}
	}()
	return out
}

func TestConnDropAndDeliver(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	plan := NewPlan(3)
	plan.SetRule(ClassOther, Rule{Drop: 1})
	wc := Wrap(a, plan, 1, 2, nil)
	defer wc.Close()

	frame := []byte("hello")
	if n, err := wc.Write(frame); n != len(frame) || err != nil {
		t.Fatalf("dropped write: n=%d err=%v", n, err)
	}
	got := pipeReader(t, b, len(frame))
	select {
	case f := <-got:
		t.Fatalf("dropped frame was delivered: %q", f)
	case <-time.After(50 * time.Millisecond):
	}

	plan.SetRule(ClassOther, Rule{})
	if _, err := wc.Write(frame); err != nil {
		t.Fatalf("clean write: %v", err)
	}
	select {
	case f := <-got:
		if !bytes.Equal(f, frame) {
			t.Fatalf("delivered %q, want %q", f, frame)
		}
	case <-time.After(time.Second):
		t.Fatal("clean frame never delivered")
	}
}

func TestConnDuplicate(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	plan := NewPlan(3)
	plan.SetRule(ClassOther, Rule{Duplicate: 1})
	wc := Wrap(a, plan, 1, 2, nil)
	defer wc.Close()

	frame := []byte("twice")
	got := pipeReader(t, b, len(frame))
	if _, err := wc.Write(frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	for i := 0; i < 2; i++ {
		select {
		case f := <-got:
			if !bytes.Equal(f, frame) {
				t.Fatalf("copy %d = %q, want %q", i, f, frame)
			}
		case <-time.After(time.Second):
			t.Fatalf("copy %d never arrived", i)
		}
	}
}

func TestConnPartitionSwallows(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	plan := NewPlan(3)
	plan.Partition(1)
	wc := Wrap(a, plan, 1, 2, nil)
	defer wc.Close()

	if n, err := wc.Write([]byte("x")); n != 1 || err != nil {
		t.Fatalf("blocked write: n=%d err=%v", n, err)
	}
	select {
	case f := <-pipeReader(t, b, 1):
		t.Fatalf("partitioned frame delivered: %q", f)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestConnInjectedReset(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	plan := NewPlan(3)
	plan.SetRule(ClassOther, Rule{Reset: 1})
	wc := Wrap(a, plan, 1, 2, nil)

	_, err := wc.Write([]byte("x"))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write error = %v, want ErrInjectedReset", err)
	}
	// The underlying conn must be closed: further writes fail even with
	// the rule cleared.
	plan.SetRule(ClassOther, Rule{})
	if _, err := wc.Write([]byte("y")); err == nil {
		t.Fatal("write after injected reset succeeded")
	}
}

func TestConnClassifierRoutesRules(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	plan := NewPlan(3)
	plan.SetRule(ClassControl, Rule{Drop: 1})
	classify := func(frame []byte) Class {
		if frame[0] == 'c' {
			return ClassControl
		}
		return ClassQuery
	}
	wc := Wrap(a, plan, 1, 2, classify)
	defer wc.Close()

	got := pipeReader(t, b, 1)
	wc.Write([]byte("c")) // control: dropped
	wc.Write([]byte("q")) // query: delivered
	select {
	case f := <-got:
		if f[0] != 'q' {
			t.Fatalf("delivered %q, want the query frame", f)
		}
	case <-time.After(time.Second):
		t.Fatal("query frame never delivered")
	}
}

func TestPlanTelemetry(t *testing.T) {
	reg := telemetry.New()
	plan := NewPlan(9)
	plan.AttachTelemetry(reg)
	plan.SetRule(ClassQuery, Rule{Drop: 1})
	plan.Decide(ClassQuery)
	plan.Partition(1)
	plan.Blocked(1, 2)
	if got := reg.Counter("faults.injected_drops").Load(); got != 1 {
		t.Fatalf("injected_drops = %d, want 1", got)
	}
	if got := reg.Counter("faults.partition_blocked").Load(); got != 1 {
		t.Fatalf("partition_blocked = %d, want 1", got)
	}
}
