package faults

import (
	"errors"
	"net"
	"time"
)

// ErrInjectedReset is returned from Conn.Write when the plan tears the
// connection down; callers see it as a hard transport failure.
var ErrInjectedReset = errors.New("faults: injected connection reset")

// Classifier maps one outbound wire frame to its fault class. gnet
// passes a header-type classifier; nil classifies everything ClassOther.
type Classifier func(frame []byte) Class

// Conn applies a Plan's verdicts to every outbound frame of a wrapped
// net.Conn. Reads pass through untouched — injecting on the send side
// only keeps each fault attributable to exactly one decision while
// still exercising the receiver's loss handling.
//
// The wrapper assumes one protocol frame per Write call, which gnet's
// post-handshake pumps guarantee (protocol.Encode emits whole frames).
type Conn struct {
	net.Conn
	plan     *Plan
	local    int32
	remote   int32
	classify Classifier
}

// Wrap layers plan over conn for the (local, remote) pair. A nil plan
// returns conn unchanged so the fault-free path costs nothing.
func Wrap(conn net.Conn, plan *Plan, local, remote int32, classify Classifier) net.Conn {
	if plan == nil {
		return conn
	}
	return &Conn{Conn: conn, plan: plan, local: local, remote: remote, classify: classify}
}

// Write applies the plan to one outbound frame. Dropped and
// partition-blocked frames report success (the bytes vanish in the
// "network", exactly like UDP-style loss over a socket the sender still
// trusts); injected resets close the underlying connection and surface
// as a write error.
func (c *Conn) Write(p []byte) (int, error) {
	if c.plan.Blocked(c.local, c.remote) {
		return len(p), nil
	}
	class := ClassOther
	if c.classify != nil {
		class = c.classify(p)
	}
	v := c.plan.Decide(class)
	switch {
	case v.Reset:
		c.Conn.Close()
		return 0, ErrInjectedReset
	case v.Drop:
		return len(p), nil
	}
	if v.Delay > 0 {
		time.Sleep(v.Delay)
	}
	n, err := c.Conn.Write(p)
	if err == nil && v.Duplicate {
		c.Conn.Write(p)
	}
	return n, err
}
