// Package faults is the deterministic fault-injection plane shared by
// the live TCP node (internal/gnet) and the simulator (internal/sim).
//
// DD-POLICE's premise is surviving hostile, lossy overlays: §3.3
// prescribes timeout-as-zero for missing Neighbor_Traffic replies and
// §3.5 studies detection under heavy churn. Evaluating that claim
// requires injecting the failures on purpose — and reproducibly, so a
// chaos run that exposes a bug can be replayed. Everything here is
// seeded through internal/rng; the same seed and call sequence yields
// the same fault schedule.
//
// Two consumers, two shapes:
//
//   - Plan drives the live node: per-message-class drop / delay /
//     duplicate / reset probabilities plus named partition sets, applied
//     by the Conn wrapper (conn.go) on every outbound frame.
//   - Schedule drives the simulator: a control-message loss floor,
//     virtual-time partition/heal events, and the crash fraction for
//     churn departures.
//
// A nil *Plan is fully inert — every method no-ops and Wrap returns the
// underlying connection untouched — so "faults disabled" costs a nil
// check and nothing else, the same contract internal/telemetry follows.
package faults

import (
	"sync"
	"time"

	"ddpolice/internal/rng"
	"ddpolice/internal/telemetry"
)

// Class buckets wire messages for fault matching: floods and control
// traffic fail differently in practice (bulk query traffic rides
// saturated links; DD-POLICE control messages are sparse but
// load-bearing), so rules target them separately.
type Class uint8

// Message classes.
const (
	// ClassQuery is the flood plane: Query and QueryHit frames.
	ClassQuery Class = iota
	// ClassControl is the DD-POLICE control plane: Neighbor_List and
	// Neighbor_Traffic frames.
	ClassControl
	// ClassOther covers everything else (Ping/Pong/Bye, unframed bytes).
	ClassOther
	numClasses
)

// Rule is one class's fault probabilities. Zero value = no faults.
type Rule struct {
	// Drop is the probability an outbound frame is silently discarded.
	Drop float64
	// Duplicate is the probability a frame is sent twice.
	Duplicate float64
	// Reset is the probability the connection is torn down (hard TCP
	// reset) instead of delivering the frame.
	Reset float64
	// Delay stalls the frame before delivery; Jitter adds a uniform
	// random extra in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
}

// Verdict is one frame's fate, drawn from the matching Rule.
type Verdict struct {
	Drop      bool
	Duplicate bool
	Reset     bool
	Delay     time.Duration
}

// Plan is a mutable, seeded fault schedule for live connections. All
// methods are safe for concurrent use (write pumps of many peers share
// one plan) and no-op on a nil receiver.
type Plan struct {
	mu         sync.Mutex
	src        *rng.Source
	rules      [numClasses]Rule
	partitions []map[int32]struct{}

	tel planTelemetry
}

// planTelemetry holds the plan's injection counters; nil fields (no
// registry attached) make recording a no-op.
type planTelemetry struct {
	drops   *telemetry.Counter
	dups    *telemetry.Counter
	resets  *telemetry.Counter
	delays  *telemetry.Counter
	blocked *telemetry.Counter
}

// NewPlan returns an empty plan whose verdict draws are seeded by seed.
func NewPlan(seed uint64) *Plan {
	return &Plan{src: rng.New(seed)}
}

// AttachTelemetry routes injection counts into reg under the "faults."
// prefix: injected_drops, injected_dups, injected_resets,
// injected_delays, partition_blocked.
func (p *Plan) AttachTelemetry(reg *telemetry.Registry) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tel = planTelemetry{
		drops:   reg.Counter("faults.injected_drops"),
		dups:    reg.Counter("faults.injected_dups"),
		resets:  reg.Counter("faults.injected_resets"),
		delays:  reg.Counter("faults.injected_delays"),
		blocked: reg.Counter("faults.partition_blocked"),
	}
}

// SetRule installs r for one message class, replacing the previous rule.
func (p *Plan) SetRule(c Class, r Rule) {
	if p == nil || c >= numClasses {
		return
	}
	p.mu.Lock()
	p.rules[c] = r
	p.mu.Unlock()
}

// SetAll installs r for every message class.
func (p *Plan) SetAll(r Rule) {
	if p == nil {
		return
	}
	p.mu.Lock()
	for c := range p.rules {
		p.rules[c] = r
	}
	p.mu.Unlock()
}

// Partition isolates the given node IDs from the rest of the overlay:
// frames between a member and a non-member are blocked in both
// directions until Heal. Multiple partitions may be active at once.
func (p *Plan) Partition(ids ...int32) {
	if p == nil || len(ids) == 0 {
		return
	}
	set := make(map[int32]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	p.mu.Lock()
	p.partitions = append(p.partitions, set)
	p.mu.Unlock()
}

// Heal removes every active partition.
func (p *Plan) Heal() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.partitions = nil
	p.mu.Unlock()
}

// Blocked reports whether a frame from a to b crosses an active
// partition boundary.
func (p *Plan) Blocked(a, b int32) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, set := range p.partitions {
		_, inA := set[a]
		_, inB := set[b]
		if inA != inB {
			p.tel.blocked.Inc()
			return true
		}
	}
	return false
}

// Decide draws one frame's fate from the class's rule. The zero Verdict
// (deliver untouched) is returned on a nil plan.
func (p *Plan) Decide(c Class) Verdict {
	if p == nil {
		return Verdict{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if c >= numClasses {
		c = ClassOther
	}
	r := p.rules[c]
	var v Verdict
	if r.Reset > 0 && p.src.Bool(r.Reset) {
		v.Reset = true
		p.tel.resets.Inc()
		return v
	}
	if r.Drop > 0 && p.src.Bool(r.Drop) {
		v.Drop = true
		p.tel.drops.Inc()
		return v
	}
	if r.Duplicate > 0 && p.src.Bool(r.Duplicate) {
		v.Duplicate = true
		p.tel.dups.Inc()
	}
	if r.Delay > 0 || r.Jitter > 0 {
		v.Delay = r.Delay
		if r.Jitter > 0 {
			v.Delay += time.Duration(p.src.Float64() * float64(r.Jitter))
		}
		p.tel.delays.Inc()
	}
	return v
}

// PartitionEvent isolates Peers from the rest of the simulated overlay
// between StartSec (inclusive) and EndSec (exclusive) of virtual time.
type PartitionEvent struct {
	StartSec int
	EndSec   int
	Peers    []int
}

// OverloadEvent browns out the listed peers' processing capacity
// between StartSec (inclusive) and EndSec (exclusive): each peer's
// per-tick query budget is scaled by Factor (0 = total brownout, 0.5 =
// half capacity) and restored at EndSec. Overlapping events on the
// same peer are not supported — the later restore wins.
type OverloadEvent struct {
	StartSec int
	EndSec   int
	Peers    []int
	Factor   float64
}

// Schedule is the simulator-facing fault plan: a fixed control-message
// loss floor (added to the congestion-derived loss each minute),
// timed partition/heal events, and timed capacity brownouts.
// Crash-vs-graceful departures are configured on overlay.ChurnConfig
// (CrashFraction), which the simulator composes with this schedule.
type Schedule struct {
	// ControlLoss is an unconditional loss probability applied to every
	// DD-POLICE control message, on top of congestion-derived loss.
	ControlLoss float64
	// Partitions are applied and healed by virtual-time tick.
	Partitions []PartitionEvent
	// Overloads are capacity brownouts applied and restored by
	// virtual-time tick.
	Overloads []OverloadEvent
}
