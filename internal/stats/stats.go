// Package stats provides the statistical accumulators used by the
// DD-POLICE simulator and its experiment harness: streaming moments
// (Welford), quantiles over bounded samples, fixed-width histograms,
// exponentially weighted moving averages, and per-tick time series with
// windowed aggregation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates count, mean and variance in a single numerically
// stable pass. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddN incorporates x with integer weight n (n identical observations).
func (w *Welford) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		w.Add(x)
	}
}

// Merge folds other into w (parallel reduction).
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	d := other.mean - w.mean
	n := w.n + other.n
	w.m2 += other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.mean += d * float64(other.n) / float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (n-1 denominator).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the minimum observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the maximum observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// Sum returns n * mean.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// CI95 returns the half-width of the 95% confidence interval on the
// mean under a normal approximation.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Stddev() / math.Sqrt(float64(w.n))
}

// String renders a compact summary.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		w.n, w.Mean(), w.Stddev(), w.min, w.max)
}

// Sample is a bounded in-memory sample supporting exact quantiles.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a Sample with the given initial capacity hint.
func NewSample(capacity int) *Sample {
	return &Sample{xs: make([]float64, 0, capacity)}
}

// Add appends x.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
// It returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Mean returns the sample mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Histogram is a fixed-width histogram over [lo, hi) with overflow and
// underflow buckets.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []int64
	under   int64
	over    int64
	total   int64
	sum     float64
}

// NewHistogram creates a histogram with n equal buckets over [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int64, n)}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // float rounding at the upper edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns total observations (including under/overflow).
func (h *Histogram) Count() int64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Underflow and Overflow return out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the count of observations >= hi.
func (h *Histogram) Overflow() int64 { return h.over }

// Mean returns the mean of all recorded values.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// EWMA is an exponentially weighted moving average with smoothing
// factor alpha in (0, 1]. The zero value is invalid; use NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha out of (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Update folds in x and returns the new average.
func (e *EWMA) Update(x float64) float64 {
	if !e.init {
		e.value, e.init = x, true
	} else {
		e.value = e.alpha*x + (1-e.alpha)*e.value
	}
	return e.value
}

// Value returns the current average (0 before the first update).
func (e *EWMA) Value() float64 { return e.value }

// TimeSeries records one float64 per tick and supports windowed sums.
type TimeSeries struct {
	vs []float64
}

// Append adds the value for the next tick.
func (ts *TimeSeries) Append(v float64) { ts.vs = append(ts.vs, v) }

// Len returns the number of ticks recorded.
func (ts *TimeSeries) Len() int { return len(ts.vs) }

// At returns the value at tick i.
func (ts *TimeSeries) At(i int) float64 { return ts.vs[i] }

// Values returns the backing slice (not a copy).
func (ts *TimeSeries) Values() []float64 { return ts.vs }

// WindowSum returns the sum of values in ticks [from, to).
// Out-of-range portions are ignored.
func (ts *TimeSeries) WindowSum(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(ts.vs) {
		to = len(ts.vs)
	}
	var sum float64
	for i := from; i < to; i++ {
		sum += ts.vs[i]
	}
	return sum
}

// WindowMean returns the mean over [from, to), or 0 if empty.
func (ts *TimeSeries) WindowMean(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(ts.vs) {
		to = len(ts.vs)
	}
	if to <= from {
		return 0
	}
	return ts.WindowSum(from, to) / float64(to-from)
}

// Downsample returns a new series where each point is the mean of
// factor consecutive ticks (the final partial window is averaged too).
func (ts *TimeSeries) Downsample(factor int) []float64 {
	if factor <= 0 {
		panic("stats: non-positive downsample factor")
	}
	var out []float64
	for i := 0; i < len(ts.vs); i += factor {
		end := i + factor
		if end > len(ts.vs) {
			end = len(ts.vs)
		}
		out = append(out, ts.WindowMean(i, end))
	}
	return out
}
