package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ddpolice/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v", w.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almostEq(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v", w.Variance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
	if !almostEq(w.Sum(), 40, 1e-9) {
		t.Errorf("sum = %v", w.Sum())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Stddev() != 0 || w.CI95() != 0 {
		t.Fatal("empty Welford must report zeros")
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	if err := quick.Check(func(seed uint64, split uint8) bool {
		r := rng.New(seed)
		n := 200
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		k := int(split) % n
		var all, a, b Welford
		for i, x := range xs {
			all.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return almostEq(a.Mean(), all.Mean(), 1e-9) &&
			almostEq(a.Variance(), all.Variance(), 1e-7) &&
			a.Count() == all.Count() &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Fatal("merge with empty changed state")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != 2 || b.Count() != 2 {
		t.Fatal("merge into empty lost data")
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.99, 99.01},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Q(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSampleQuantileEmptyAndSingle(t *testing.T) {
	s := NewSample(0)
	if s.Quantile(0.5) != 0 {
		t.Error("empty sample quantile must be 0")
	}
	s.Add(7)
	for _, q := range []float64{0, 0.3, 1} {
		if s.Quantile(q) != 7 {
			t.Errorf("single-element Q(%v) = %v", q, s.Quantile(q))
		}
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	s := NewSample(0)
	s.Add(10)
	s.Add(1)
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("min = %v", got)
	}
	s.Add(0.5) // must re-sort lazily
	if got := s.Quantile(0); got != 0.5 {
		t.Fatalf("after re-add, min = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	if h.Bucket(0) != 2 { // 0 and 0.5
		t.Errorf("bucket 0 = %d", h.Bucket(0))
	}
	if h.Bucket(5) != 1 {
		t.Errorf("bucket 5 = %d", h.Bucket(5))
	}
	if h.Bucket(9) != 1 { // 9.999
		t.Errorf("bucket 9 = %d", h.Bucket(9))
	}
}

func TestHistogramEdgeRounding(t *testing.T) {
	// A value infinitesimally below hi must land in the last bucket, not
	// panic from float rounding.
	h := NewHistogram(0, 0.3, 3)
	h.Add(math.Nextafter(0.3, 0))
	if h.Bucket(2) != 1 {
		t.Fatal("upper-edge value not placed in final bucket")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid bounds")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Error("initial value must be 0")
	}
	if got := e.Update(10); got != 10 {
		t.Errorf("first update = %v", got)
	}
	if got := e.Update(20); !almostEq(got, 15, 1e-12) {
		t.Errorf("second update = %v", got)
	}
}

func TestEWMAPanics(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() { recover() }()
			NewEWMA(alpha)
			t.Errorf("alpha=%v: expected panic", alpha)
		}()
	}
}

func TestTimeSeriesWindows(t *testing.T) {
	var ts TimeSeries
	for i := 1; i <= 10; i++ {
		ts.Append(float64(i))
	}
	if got := ts.WindowSum(0, 10); got != 55 {
		t.Errorf("full sum = %v", got)
	}
	if got := ts.WindowSum(-5, 3); got != 6 {
		t.Errorf("clamped-low sum = %v", got)
	}
	if got := ts.WindowSum(8, 99); got != 19 {
		t.Errorf("clamped-high sum = %v", got)
	}
	if got := ts.WindowMean(0, 10); got != 5.5 {
		t.Errorf("mean = %v", got)
	}
	if got := ts.WindowMean(5, 5); got != 0 {
		t.Errorf("empty-window mean = %v", got)
	}
}

func TestTimeSeriesDownsample(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 7; i++ {
		ts.Append(float64(i))
	}
	got := ts.Downsample(3)
	want := []float64{1, 4, 6} // means of {0,1,2},{3,4,5},{6}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Errorf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i & 1023))
	}
}
