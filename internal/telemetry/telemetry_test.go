package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every recording call on nil instruments must be a no-op, not a
	// panic: this is the "telemetry disabled" fast path.
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	tm := r.Timer("x")
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.SetMax(9)
	tm.Add(time.Second)
	tm.Observe(time.Now())
	if c.Load() != 0 || g.Load() != 0 || tm.Total() != 0 || tm.Count() != 0 {
		t.Fatal("nil instruments retained data")
	}
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Timers) != 0 {
		t.Fatal("nil registry produced a non-empty snapshot")
	}
	var s *StageSet
	start := s.Start()
	if !start.IsZero() {
		t.Fatal("nil stage set read the clock")
	}
	s.Stop(0, start)
	if s.Snapshot() != nil {
		t.Fatal("nil stage set produced stages")
	}
}

func TestCounterGaugeTimer(t *testing.T) {
	r := New()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("events") != c {
		t.Fatal("lookup did not return the same counter")
	}
	g := r.Gauge("depth")
	g.SetMax(7)
	g.SetMax(3) // lower: must not regress the high-water mark
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.Set(2)
	if got := g.Load(); got != 2 {
		t.Fatalf("gauge = %d after Set, want 2", got)
	}
	tm := r.Timer("work")
	tm.Add(2 * time.Millisecond)
	tm.Add(3 * time.Millisecond)
	if got := tm.Total(); got != 5*time.Millisecond {
		t.Fatalf("timer total = %v", got)
	}
	if got := tm.Count(); got != 2 {
		t.Fatalf("timer count = %d", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Exercised under -race by the CI target: many goroutines hammer the
	// same instruments while another snapshots.
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	tm := r.Timer("t")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				tm.Add(time.Microsecond)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Load(); got != workers*per-1 {
		t.Fatalf("gauge high-water = %d, want %d", got, workers*per-1)
	}
	if got := tm.Count(); got != workers*per {
		t.Fatalf("timer count = %d, want %d", got, workers*per)
	}
}

func TestSnapshotSortedAndCloned(t *testing.T) {
	r := New()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Timer("t").Add(time.Millisecond)
	r.Gauge("g").Set(1)
	snap := r.Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a" || snap.Counters[1].Name != "b" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	cl := snap.Clone()
	cl.Counters[0].Value = 99
	if snap.Counters[0].Value == 99 {
		t.Fatal("Clone shares storage with the original")
	}
	var buf bytes.Buffer
	if err := snap.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter", "a", "gauge", "timer"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestStageSet(t *testing.T) {
	s := NewStages("alpha", "beta")
	st := s.Start()
	time.Sleep(time.Millisecond)
	s.Stop(0, st)
	s.Stop(1, s.Start())
	stages := s.Snapshot()
	if len(stages) != 2 {
		t.Fatalf("stages = %d", len(stages))
	}
	if stages[0].Name != "alpha" || stages[0].Total <= 0 || stages[0].Count != 1 {
		t.Fatalf("alpha stage = %+v", stages[0])
	}
	var buf bytes.Buffer
	if err := WriteStageTable(&buf, stages); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "alpha") || !strings.Contains(buf.String(), "total") {
		t.Fatalf("stage table:\n%s", buf.String())
	}
}

func TestProfileHooks(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for i := 0; i < 1e6; i++ {
		busy += i
	}
	_ = busy
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}

	tr := filepath.Join(dir, "run.trace")
	stop, err = StartTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(tr); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}

	if _, err := StartCPUProfile(filepath.Join(dir, "missing", "x")); err == nil {
		t.Fatal("profile into missing directory succeeded")
	}
}
