package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every recording call on nil instruments must be a no-op, not a
	// panic: this is the "telemetry disabled" fast path.
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	tm := r.Timer("x")
	h := r.Histogram("x")
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.SetMax(9)
	tm.Add(time.Second)
	tm.Observe(time.Now())
	h.Observe(42)
	h.ObserveDuration(time.Second)
	if c.Load() != 0 || g.Load() != 0 || tm.Total() != 0 || tm.Count() != 0 {
		t.Fatal("nil instruments retained data")
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram retained data")
	}
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Timers)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry produced a non-empty snapshot")
	}
	var s *StageSet
	start := s.Start()
	if !start.IsZero() {
		t.Fatal("nil stage set read the clock")
	}
	s.Stop(0, start)
	if s.Snapshot() != nil {
		t.Fatal("nil stage set produced stages")
	}
}

func TestCounterGaugeTimer(t *testing.T) {
	r := New()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("events") != c {
		t.Fatal("lookup did not return the same counter")
	}
	g := r.Gauge("depth")
	g.SetMax(7)
	g.SetMax(3) // lower: must not regress the high-water mark
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.Set(2)
	if got := g.Load(); got != 2 {
		t.Fatalf("gauge = %d after Set, want 2", got)
	}
	tm := r.Timer("work")
	tm.Add(2 * time.Millisecond)
	tm.Add(3 * time.Millisecond)
	if got := tm.Total(); got != 5*time.Millisecond {
		t.Fatalf("timer total = %v", got)
	}
	if got := tm.Count(); got != 2 {
		t.Fatalf("timer count = %d", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Exercised under -race by the CI target: many goroutines hammer the
	// same instruments while another snapshots.
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	tm := r.Timer("t")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				tm.Add(time.Microsecond)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Load(); got != workers*per-1 {
		t.Fatalf("gauge high-water = %d, want %d", got, workers*per-1)
	}
	if got := tm.Count(); got != workers*per {
		t.Fatalf("timer count = %d, want %d", got, workers*per)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	if r.Histogram("lat") != h {
		t.Fatal("lookup did not return the same histogram")
	}
	// 0 → bucket 0 (le 0); 1 → le 1; 5,7 → le 7; 100 → le 127.
	for _, v := range []uint64{0, 1, 5, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 113 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	hv := r.Snapshot().Histograms[0]
	wantBuckets := []HistogramBucket{{Le: 0, Count: 1}, {Le: 1, Count: 1}, {Le: 7, Count: 2}, {Le: 127, Count: 1}}
	if len(hv.Buckets) != len(wantBuckets) {
		t.Fatalf("buckets = %+v", hv.Buckets)
	}
	for i, b := range hv.Buckets {
		if b != wantBuckets[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, wantBuckets[i])
		}
	}
	if got := hv.Quantile(0); got != 0 {
		t.Fatalf("p0 = %d", got)
	}
	if got := hv.Quantile(0.5); got != 7 {
		t.Fatalf("p50 = %d, want 7", got)
	}
	if got := hv.Quantile(1); got != 127 {
		t.Fatalf("p100 = %d, want 127", got)
	}
	if got := hv.Mean(); got != 113.0/5 {
		t.Fatalf("mean = %g", got)
	}
	// ObserveDuration records integer milliseconds, clamping negatives.
	h2 := r.Histogram("dur")
	h2.ObserveDuration(3 * time.Millisecond)
	h2.ObserveDuration(-time.Second)
	if h2.Count() != 2 || h2.Sum() != 3 {
		t.Fatalf("duration histogram count=%d sum=%d", h2.Count(), h2.Sum())
	}
}

// TestHistogramConcurrent is part of the -race CI gate: many writers,
// one snapshotting reader.
func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(i))
				if i%200 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var inBuckets uint64
	for _, b := range r.Snapshot().Histograms[0].Buckets {
		inBuckets += b.Count
	}
	if inBuckets != workers*per {
		t.Fatalf("bucket total = %d, want %d", inBuckets, workers*per)
	}
}

func TestWriteTableDeterministicWithMean(t *testing.T) {
	r := New()
	r.Counter("sim.queries").Add(12)
	r.Gauge("gnet.inbox_hwm").Set(7)
	r.Timer("stage.flood").Add(10 * time.Millisecond)
	r.Timer("stage.flood").Add(30 * time.Millisecond)
	r.Histogram("flood.hit_hops").Observe(3)
	snap := r.Snapshot()
	var a, b bytes.Buffer
	if err := snap.WriteTable(&a); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteTable is not deterministic for the same snapshot")
	}
	if !strings.Contains(a.String(), "mean") || !strings.Contains(a.String(), "20ms") {
		t.Fatalf("timer mean missing:\n%s", a.String())
	}
	if !strings.Contains(a.String(), "histogram") || !strings.Contains(a.String(), "p95") {
		t.Fatalf("histogram section missing:\n%s", a.String())
	}
	// A long name in one section must not disturb another section's
	// column widths (per-section flush): rendering only the timer
	// section yields the same timer lines as the full table.
	timerOnly := Snapshot{Timers: snap.Timers}
	var c bytes.Buffer
	if err := timerOnly.WriteTable(&c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), strings.TrimSuffix(c.String(), "\n")) {
		t.Fatalf("timer section depends on other sections:\nfull:\n%s\ntimers only:\n%s", a.String(), c.String())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("gnet.reconnect_ok").Add(2)
	r.Gauge("gnet.inbox_hwm").Set(5)
	r.Timer("stage.flood").Add(1500 * time.Millisecond)
	h := r.Histogram("flood.hit_hops")
	h.Observe(0)
	h.Observe(3)
	h.Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gnet_reconnect_ok counter\ngnet_reconnect_ok 2\n",
		"# TYPE gnet_inbox_hwm gauge\ngnet_inbox_hwm 5\n",
		"# TYPE stage_flood_seconds summary\nstage_flood_seconds_sum 1.5\nstage_flood_seconds_count 1\n",
		"flood_hit_hops_bucket{le=\"0\"} 1\n",
		"flood_hit_hops_bucket{le=\"3\"} 3\n",
		"flood_hit_hops_bucket{le=\"+Inf\"} 3\n",
		"flood_hit_hops_sum 6\n",
		"flood_hit_hops_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := PromName("9flood.hit-hops"); got != "_9flood_hit_hops" {
		t.Fatalf("PromName = %q", got)
	}
}

func TestSnapshotSortedAndCloned(t *testing.T) {
	r := New()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Timer("t").Add(time.Millisecond)
	r.Gauge("g").Set(1)
	snap := r.Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a" || snap.Counters[1].Name != "b" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	cl := snap.Clone()
	cl.Counters[0].Value = 99
	if snap.Counters[0].Value == 99 {
		t.Fatal("Clone shares storage with the original")
	}
	var buf bytes.Buffer
	if err := snap.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter", "a", "gauge", "timer"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestStageSet(t *testing.T) {
	s := NewStages("alpha", "beta")
	st := s.Start()
	time.Sleep(time.Millisecond)
	s.Stop(0, st)
	s.Stop(1, s.Start())
	stages := s.Snapshot()
	if len(stages) != 2 {
		t.Fatalf("stages = %d", len(stages))
	}
	if stages[0].Name != "alpha" || stages[0].Total <= 0 || stages[0].Count != 1 {
		t.Fatalf("alpha stage = %+v", stages[0])
	}
	var buf bytes.Buffer
	if err := WriteStageTable(&buf, stages); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "alpha") || !strings.Contains(buf.String(), "total") {
		t.Fatalf("stage table:\n%s", buf.String())
	}
}

func TestProfileHooks(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for i := 0; i < 1e6; i++ {
		busy += i
	}
	_ = busy
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}

	tr := filepath.Join(dir, "run.trace")
	stop, err = StartTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(tr); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}

	if _, err := StartCPUProfile(filepath.Join(dir, "missing", "x")); err == nil {
		t.Fatal("profile into missing directory succeeded")
	}
}
