// Package telemetry is the run observability layer: a lightweight,
// allocation-conscious registry of counters, gauges and wall-clock
// timers, plus optional CPU-profile and execution-trace hooks
// (profile.go).
//
// Everything is sync/atomic-based so hot paths — the live gnet run
// loop, transient-connection goroutines, the simulator tick loop — can
// record without locks. Every instrument is nil-safe: a nil *Counter,
// *Gauge, *Timer, *Registry or *StageSet turns every recording call
// into a nil-check no-op, so "telemetry disabled" costs a predictable
// branch and nothing else. Instrumented code therefore never guards
// its recording sites:
//
//	var reg *telemetry.Registry // nil: disabled
//	c := reg.Counter("flood.edges") // nil
//	c.Inc()                         // no-op
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil Counter discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level. SetMax makes it a high-water mark.
// The zero value is ready; a nil Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n if n exceeds the current value
// (lock-free high-water mark).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current level (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates wall-clock durations and an observation count. The
// zero value is ready; a nil Timer discards all updates.
type Timer struct {
	ns atomic.Int64
	n  atomic.Uint64
}

// Add folds in one observed duration.
func (t *Timer) Add(d time.Duration) {
	if t != nil {
		t.ns.Add(int64(d))
		t.n.Add(1)
	}
}

// Observe folds in the time elapsed since start (as returned by
// time.Now at the start of the measured region).
func (t *Timer) Observe(start time.Time) {
	if t != nil {
		t.Add(time.Since(start))
	}
}

// Total returns the accumulated duration (0 on nil).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Count returns the number of observations (0 on nil).
func (t *Timer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// Registry names and owns a set of instruments. Instrument lookup
// takes the registry lock; the returned pointers record lock-free, so
// hot paths resolve their instruments once and keep them. A nil
// *Registry returns nil instruments from every lookup, which is how
// "telemetry disabled" propagates through instrumented code.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = new(Timer)
		r.timers[name] = t
	}
	return t
}

// CounterValue is one named counter reading.
type CounterValue struct {
	Name  string
	Value uint64
}

// GaugeValue is one named gauge reading.
type GaugeValue struct {
	Name  string
	Value int64
}

// TimerValue is one named timer reading.
type TimerValue struct {
	Name  string
	Total time.Duration
	Count uint64
}

// Snapshot is a point-in-time reading of every instrument, sorted by
// name within each kind.
type Snapshot struct {
	Counters []CounterValue
	Gauges   []GaugeValue
	Timers   []TimerValue
}

// Snapshot reads every instrument. Safe to call while recording
// continues; readings are per-instrument atomic. An empty snapshot is
// returned on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Load()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Load()})
	}
	for name, t := range r.timers {
		s.Timers = append(s.Timers, TimerValue{Name: name, Total: t.Total(), Count: t.Count()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Timers, func(i, j int) bool { return s.Timers[i].Name < s.Timers[j].Name })
	return s
}

// Clone deep-copies the snapshot (its slices share no storage with s).
func (s Snapshot) Clone() Snapshot {
	return Snapshot{
		Counters: append([]CounterValue(nil), s.Counters...),
		Gauges:   append([]GaugeValue(nil), s.Gauges...),
		Timers:   append([]TimerValue(nil), s.Timers...),
	}
}

// WriteTable renders the snapshot as an aligned text table.
func (s Snapshot) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(s.Counters) > 0 {
		fmt.Fprintln(tw, "counter\tvalue")
		for _, c := range s.Counters {
			fmt.Fprintf(tw, "%s\t%d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(tw, "gauge\tvalue")
		for _, g := range s.Gauges {
			fmt.Fprintf(tw, "%s\t%d\n", g.Name, g.Value)
		}
	}
	if len(s.Timers) > 0 {
		fmt.Fprintln(tw, "timer\ttotal\tcount")
		for _, t := range s.Timers {
			fmt.Fprintf(tw, "%s\t%v\t%d\n", t.Name, t.Total, t.Count)
		}
	}
	return tw.Flush()
}

// Stage is one stage's cumulative wall-clock reading.
type Stage struct {
	Name  string
	Total time.Duration
	Count uint64 // number of timed intervals
}

// StageSet times a fixed set of named pipeline stages addressed by
// index, the allocation-free shape of a per-tick instrumentation loop.
// A nil StageSet no-ops: Start returns the zero time without reading
// the clock and Stop discards.
type StageSet struct {
	names  []string
	timers []Timer
}

// NewStages creates a stage set; stage i is names[i].
func NewStages(names ...string) *StageSet {
	return &StageSet{names: names, timers: make([]Timer, len(names))}
}

// Start reads the clock (zero time on nil).
func (s *StageSet) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// Stop charges the interval since start to stage i.
func (s *StageSet) Stop(i int, start time.Time) {
	if s == nil {
		return
	}
	s.timers[i].Add(time.Since(start))
}

// Snapshot returns the per-stage readings in stage order (nil on a nil
// set).
func (s *StageSet) Snapshot() []Stage {
	if s == nil {
		return nil
	}
	out := make([]Stage, len(s.names))
	for i, name := range s.names {
		out[i] = Stage{Name: name, Total: s.timers[i].Total(), Count: s.timers[i].Count()}
	}
	return out
}

// WriteStageTable renders per-stage totals with their share of the
// summed stage time.
func WriteStageTable(w io.Writer, stages []Stage) error {
	var sum time.Duration
	for _, st := range stages {
		sum += st.Total
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\ttotal\tshare\tintervals")
	for _, st := range stages {
		share := 0.0
		if sum > 0 {
			share = float64(st.Total) / float64(sum) * 100
		}
		fmt.Fprintf(tw, "%s\t%v\t%.1f%%\t%d\n", st.Name, st.Total, share, st.Count)
	}
	fmt.Fprintf(tw, "total\t%v\t\t\n", sum)
	return tw.Flush()
}
