// Package telemetry is the run observability layer: a lightweight,
// allocation-conscious registry of counters, gauges and wall-clock
// timers, plus optional CPU-profile and execution-trace hooks
// (profile.go).
//
// Everything is sync/atomic-based so hot paths — the live gnet run
// loop, transient-connection goroutines, the simulator tick loop — can
// record without locks. Every instrument is nil-safe: a nil *Counter,
// *Gauge, *Timer, *Registry or *StageSet turns every recording call
// into a nil-check no-op, so "telemetry disabled" costs a predictable
// branch and nothing else. Instrumented code therefore never guards
// its recording sites:
//
//	var reg *telemetry.Registry // nil: disabled
//	c := reg.Counter("flood.edges") // nil
//	c.Inc()                         // no-op
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil Counter discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level. SetMax makes it a high-water mark.
// The zero value is ready; a nil Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n if n exceeds the current value
// (lock-free high-water mark).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current level (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates wall-clock durations and an observation count. The
// zero value is ready; a nil Timer discards all updates.
type Timer struct {
	ns atomic.Int64
	n  atomic.Uint64
}

// Add folds in one observed duration.
func (t *Timer) Add(d time.Duration) {
	if t != nil {
		t.ns.Add(int64(d))
		t.n.Add(1)
	}
}

// Observe folds in the time elapsed since start (as returned by
// time.Now at the start of the measured region).
func (t *Timer) Observe(start time.Time) {
	if t != nil {
		t.Add(time.Since(start))
	}
}

// Total returns the accumulated duration (0 on nil).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Count returns the number of observations (0 on nil).
func (t *Timer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// histogramBuckets is the number of log₂ buckets: bucket 0 holds the
// value 0, bucket i (1..64) holds values in [2^(i-1), 2^i).
const histogramBuckets = 65

// Histogram is a log₂-bucketed distribution of non-negative integer
// observations (latencies in some unit, hop counts, sizes). Bucket
// index is bits.Len64(v), so recording is a couple of atomic adds and
// no floating point. The zero value is ready; a nil Histogram discards
// all updates, preserving the package's zero-cost-when-disabled
// contract.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histogramBuckets]atomic.Uint64
}

// Observe folds in one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveDuration folds in a duration as integer milliseconds
// (negative durations clamp to zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d / time.Millisecond))
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry names and owns a set of instruments. Instrument lookup
// takes the registry lock; the returned pointers record lock-free, so
// hot paths resolve their instruments once and keep them. A nil
// *Registry returns nil instruments from every lookup, which is how
// "telemetry disabled" propagates through instrumented code.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = new(Timer)
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = new(Histogram)
		r.histograms[name] = h
	}
	return h
}

// CounterValue is one named counter reading.
type CounterValue struct {
	Name  string
	Value uint64
}

// GaugeValue is one named gauge reading.
type GaugeValue struct {
	Name  string
	Value int64
}

// TimerValue is one named timer reading.
type TimerValue struct {
	Name  string
	Total time.Duration
	Count uint64
}

// Mean returns the average observed duration (0 with no observations).
func (t TimerValue) Mean() time.Duration {
	if t.Count == 0 {
		return 0
	}
	return t.Total / time.Duration(t.Count)
}

// HistogramBucket is one occupied log₂ bucket: Count observations with
// value ≤ Le (and greater than the previous bucket's Le).
type HistogramBucket struct {
	Le    uint64 // inclusive upper bound (2^i − 1)
	Count uint64
}

// HistogramValue is one named histogram reading. Buckets holds only
// the occupied buckets, in ascending bound order.
type HistogramValue struct {
	Name    string
	Count   uint64
	Sum     uint64
	Buckets []HistogramBucket
}

// Mean returns the average observed value (0 with no observations).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns the upper bound of the bucket containing the
// q-quantile observation (q in [0,1]); 0 with no observations. The
// answer is exact to within the bucket's power-of-two resolution.
func (h HistogramValue) Quantile(q float64) uint64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen uint64
	for _, b := range h.Buckets {
		seen += b.Count
		if rank < seen {
			return b.Le
		}
	}
	return h.Buckets[len(h.Buckets)-1].Le
}

// Snapshot is a point-in-time reading of every instrument, sorted by
// name within each kind.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Timers     []TimerValue
	Histograms []HistogramValue
}

// Snapshot reads every instrument. Safe to call while recording
// continues; readings are per-instrument atomic. An empty snapshot is
// returned on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Load()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Load()})
	}
	for name, t := range r.timers {
		s.Timers = append(s.Timers, TimerValue{Name: name, Total: t.Total(), Count: t.Count()})
	}
	for name, h := range r.histograms {
		hv := HistogramValue{Name: name, Count: h.count.Load(), Sum: h.sum.Load()}
		for i := range h.buckets {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			le := ^uint64(0)
			if i < 64 {
				le = 1<<uint(i) - 1
			}
			hv.Buckets = append(hv.Buckets, HistogramBucket{Le: le, Count: n})
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Timers, func(i, j int) bool { return s.Timers[i].Name < s.Timers[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Clone deep-copies the snapshot (its slices share no storage with s).
func (s Snapshot) Clone() Snapshot {
	c := Snapshot{
		Counters:   append([]CounterValue(nil), s.Counters...),
		Gauges:     append([]GaugeValue(nil), s.Gauges...),
		Timers:     append([]TimerValue(nil), s.Timers...),
		Histograms: append([]HistogramValue(nil), s.Histograms...),
	}
	for i := range c.Histograms {
		c.Histograms[i].Buckets = append([]HistogramBucket(nil), c.Histograms[i].Buckets...)
	}
	return c
}

// WriteTable renders the snapshot as aligned text tables, one section
// per instrument kind. Each section is flushed independently so its
// column widths — and therefore the rendered bytes — depend only on
// that section's rows, keeping output stable for golden-file
// comparison. Rows are in Snapshot's sorted-by-name order.
func (s Snapshot) WriteTable(w io.Writer) error {
	flush := func(emit func(tw *tabwriter.Writer)) error {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		emit(tw)
		return tw.Flush()
	}
	if len(s.Counters) > 0 {
		if err := flush(func(tw *tabwriter.Writer) {
			fmt.Fprintln(tw, "counter\tvalue")
			for _, c := range s.Counters {
				fmt.Fprintf(tw, "%s\t%d\n", c.Name, c.Value)
			}
		}); err != nil {
			return err
		}
	}
	if len(s.Gauges) > 0 {
		if err := flush(func(tw *tabwriter.Writer) {
			fmt.Fprintln(tw, "gauge\tvalue")
			for _, g := range s.Gauges {
				fmt.Fprintf(tw, "%s\t%d\n", g.Name, g.Value)
			}
		}); err != nil {
			return err
		}
	}
	if len(s.Timers) > 0 {
		if err := flush(func(tw *tabwriter.Writer) {
			fmt.Fprintln(tw, "timer\ttotal\tcount\tmean")
			for _, t := range s.Timers {
				fmt.Fprintf(tw, "%s\t%v\t%d\t%v\n", t.Name, t.Total, t.Count, t.Mean())
			}
		}); err != nil {
			return err
		}
	}
	if len(s.Histograms) > 0 {
		if err := flush(func(tw *tabwriter.Writer) {
			fmt.Fprintln(tw, "histogram\tcount\tmean\tp50\tp95\tmax")
			for _, h := range s.Histograms {
				fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%d\t%d\n",
					h.Name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(1))
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

// Stage is one stage's cumulative wall-clock reading.
type Stage struct {
	Name  string
	Total time.Duration
	Count uint64 // number of timed intervals
}

// StageSet times a fixed set of named pipeline stages addressed by
// index, the allocation-free shape of a per-tick instrumentation loop.
// A nil StageSet no-ops: Start returns the zero time without reading
// the clock and Stop discards.
type StageSet struct {
	names  []string
	timers []Timer
}

// NewStages creates a stage set; stage i is names[i].
func NewStages(names ...string) *StageSet {
	return &StageSet{names: names, timers: make([]Timer, len(names))}
}

// Start reads the clock (zero time on nil).
func (s *StageSet) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// Stop charges the interval since start to stage i.
func (s *StageSet) Stop(i int, start time.Time) {
	if s == nil {
		return
	}
	s.timers[i].Add(time.Since(start))
}

// Snapshot returns the per-stage readings in stage order (nil on a nil
// set).
func (s *StageSet) Snapshot() []Stage {
	if s == nil {
		return nil
	}
	out := make([]Stage, len(s.names))
	for i, name := range s.names {
		out[i] = Stage{Name: name, Total: s.timers[i].Total(), Count: s.timers[i].Count()}
	}
	return out
}

// WriteStageTable renders per-stage totals with their share of the
// summed stage time.
func WriteStageTable(w io.Writer, stages []Stage) error {
	var sum time.Duration
	for _, st := range stages {
		sum += st.Total
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\ttotal\tshare\tintervals")
	for _, st := range stages {
		share := 0.0
		if sum > 0 {
			share = float64(st.Total) / float64(sum) * 100
		}
		fmt.Fprintf(tw, "%s\t%v\t%.1f%%\t%d\n", st.Name, st.Total, share, st.Count)
	}
	fmt.Fprintf(tw, "total\t%v\t\t\n", sum)
	return tw.Flush()
}
