package telemetry

import (
	"fmt"
	"os"
	"runtime/pprof"
	"runtime/trace"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file. Only one CPU
// profile may be active per process.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// StartTrace begins writing a runtime execution trace to path and
// returns the function that stops tracing and closes the file.
func StartTrace(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: trace: %w", err)
	}
	if err := trace.Start(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: trace: %w", err)
	}
	return func() error {
		trace.Stop()
		return f.Close()
	}, nil
}
