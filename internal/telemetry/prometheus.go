package telemetry

// Prometheus text exposition (format version 0.0.4) for a Snapshot.
// This is the rendering half of the /metrics plane; the HTTP half
// lives in internal/metricsrv so telemetry keeps zero net/http
// dependencies.

import (
	"fmt"
	"io"
	"strings"
)

// PromName maps an instrument name to a legal Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_' (dots separate
// subsystems in this codebase, e.g. "gnet.reconnect_ok" →
// "gnet_reconnect_ok"), and a leading digit gains a '_' prefix.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format. Counters and gauges map directly; timers render
// as summaries in seconds (<name>_seconds_sum / <name>_seconds_count);
// histograms render with cumulative <name>_bucket{le="..."} series
// plus _sum and _count, in the unit the instrument was fed. Every
// family gets a # HELP line carrying the instrument's original dotted
// name (the registry keeps no free-text descriptions) ahead of its
// # TYPE line. Output order follows the snapshot's sorted-by-name
// order, so identical snapshots render byte-identically.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		n := PromName(c.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", n, c.Name, n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := PromName(g.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", n, g.Name, n, n, g.Value); err != nil {
			return err
		}
	}
	for _, t := range s.Timers {
		n := PromName(t.Name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n%s_sum %g\n%s_count %d\n",
			n, t.Name, n, n, t.Total.Seconds(), n, t.Count); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		n := PromName(h.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", n, h.Name, n); err != nil {
			return err
		}
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b.Le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			n, h.Count, n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}
