// Package capacity models a peer's query-processing capability as a
// token bucket. The paper calibrates this with a real testbed (§2.3,
// Figs 4-6): a LimeWire peer on a P3-733 began discarding queries when
// offered ~15,000 queries/min and dropped 47% when offered ~29,000/min
// (i.e. it saturates at roughly 15k/min when dedicated); the paper then
// conservatively assumes a good peer in the wild processes 10,000
// queries/min, while a bad peer can generate 20,000/min.
package capacity

import "fmt"

// Paper calibration constants (queries per minute).
const (
	// TestbedSaturationPerMin is the processing rate at which the
	// dedicated testbed peer saturated (Figs 5-6).
	TestbedSaturationPerMin = 15000
	// GoodPeerProcessPerMin is the assumed in-the-wild processing
	// capacity of a good peer (§2.3, end).
	GoodPeerProcessPerMin = 10000
	// BadPeerIssuePerMin is the assumed generation rate of a DDoS agent.
	BadPeerIssuePerMin = 20000
	// GoodPeerIssueBoundPerMin is q0: a good peer never issues more
	// than 100 queries/min (Definition 2.1's threshold q).
	GoodPeerIssueBoundPerMin = 100
)

// Processor is a token-bucket query processor. Tokens accrue at the
// processing rate and each accepted query consumes one token; queries
// offered when the bucket is empty are dropped, exactly like peer B
// discarding queries in the paper's testbed.
type Processor struct {
	ratePerSec float64
	burst      float64
	tokens     float64
	processed  float64
	dropped    float64
}

// NewProcessor creates a processor with the given sustained rate
// (queries/min) and burst tolerance (queries). Burst defaults to one
// second of capacity when <= 0.
//
// A non-positive rate is clamped to 0 (mirroring flood.Budget.take's
// zero clamp): the processor is valid but accrues no tokens, so every
// offered query is dropped and DropRate reports 1 once traffic has
// been offered. This is the brownout limit of the faults plane — a
// peer whose capacity has been scaled to nothing still accounts for
// the queries it sheds.
//
// A *positive* rate always gets a bucket depth of at least one token:
// a sub-60/min rate used to default burst to ratePerSec < 1, so the
// bucket could never hold a whole token and TryProcess starved the
// peer forever despite its positive sustained rate (the paper's slow
// 100 Kbps class must process slowly, not never). The same floor
// applies to explicit sub-1.0 bursts — e.g. a classed processor's
// control reserve sized as a small fraction of a modest burst — so a
// discrete consumer drains slowly instead of rounding to zero.
func NewProcessor(ratePerMin, burst float64) (*Processor, error) {
	if ratePerMin < 0 {
		ratePerMin = 0
	}
	p := &Processor{ratePerSec: ratePerMin / 60}
	if burst <= 0 {
		burst = p.ratePerSec
	}
	if p.ratePerSec > 0 && burst < 1 {
		burst = 1
	}
	p.burst = burst
	p.tokens = burst
	return p, nil
}

// Tick accrues dt seconds of processing tokens.
func (p *Processor) Tick(dt float64) {
	p.tokens += p.ratePerSec * dt
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
}

// Offer presents n queries (fractional allowed, for fluid batches) and
// returns how many were processed; the remainder is dropped. Accepted
// is clamped at zero (the Budget.take clamp), so a drained — or
// zero-rate — bucket drops the whole batch and the processed/dropped
// ledgers always agree with what DropRate reports.
func (p *Processor) Offer(n float64) (accepted float64) {
	if n <= 0 {
		return 0
	}
	accepted = n
	if accepted > p.tokens {
		accepted = p.tokens
	}
	if accepted < 0 {
		accepted = 0
	}
	p.tokens -= accepted
	p.processed += accepted
	p.dropped += n - accepted
	return accepted
}

// TryProcess attempts to process a single query, reporting success.
func (p *Processor) TryProcess() bool {
	if p.tokens >= 1 {
		p.tokens--
		p.processed++
		return true
	}
	p.dropped++
	return false
}

// Tokens returns the currently available tokens.
func (p *Processor) Tokens() float64 { return p.tokens }

// Processed returns the cumulative accepted count.
func (p *Processor) Processed() float64 { return p.processed }

// Dropped returns the cumulative dropped count.
func (p *Processor) Dropped() float64 { return p.dropped }

// DropRate returns dropped/(processed+dropped), or 0 if idle.
func (p *Processor) DropRate() float64 {
	total := p.processed + p.dropped
	if total == 0 {
		return 0
	}
	return p.dropped / total
}

// Reset clears counters and refills the bucket.
func (p *Processor) Reset() {
	p.tokens = p.burst
	p.processed, p.dropped = 0, 0
}

// ClassedProcessor splits one peer's processing capacity into a small
// protected control reserve and a bulk query budget, so a query flood
// can exhaust the query tokens without starving the control plane the
// detection pipeline depends on. Control work draws its own reserve
// first and may borrow idle query tokens; query work never touches the
// reserve — strict priority in the direction that matters.
type ClassedProcessor struct {
	control Processor
	query   Processor
}

// NewClassedProcessor splits ratePerMin into a controlFrac reserve and
// a (1-controlFrac) query budget, each its own token bucket. Burst
// follows the same split; controlFrac must be in (0, 1).
func NewClassedProcessor(ratePerMin, burst, controlFrac float64) (*ClassedProcessor, error) {
	if controlFrac <= 0 || controlFrac >= 1 {
		return nil, fmt.Errorf("capacity: control fraction %v outside (0, 1)", controlFrac)
	}
	ctl, err := NewProcessor(ratePerMin*controlFrac, burst*controlFrac)
	if err != nil {
		return nil, err
	}
	qry, err := NewProcessor(ratePerMin*(1-controlFrac), burst*(1-controlFrac))
	if err != nil {
		return nil, err
	}
	return &ClassedProcessor{control: *ctl, query: *qry}, nil
}

// Tick accrues dt seconds of tokens in both buckets.
func (cp *ClassedProcessor) Tick(dt float64) {
	cp.control.Tick(dt)
	cp.query.Tick(dt)
}

// TryProcessQuery attempts to process one query message from the bulk
// budget only; the control reserve is never borrowed downward.
func (cp *ClassedProcessor) TryProcessQuery() bool {
	return cp.query.TryProcess()
}

// TryProcessControl attempts to process one control message: the
// reserve first, then an idle query token. Only a node with *both*
// buckets dry sheds control work — the last resort.
func (cp *ClassedProcessor) TryProcessControl() bool {
	if cp.control.tokens >= 1 {
		cp.control.tokens--
		cp.control.processed++
		return true
	}
	if cp.query.tokens >= 1 {
		cp.query.tokens--
		cp.control.processed++
		return true
	}
	cp.control.dropped++
	return false
}

// QueryDropRate returns the query bucket's drop rate.
func (cp *ClassedProcessor) QueryDropRate() float64 { return cp.query.DropRate() }

// ControlDropRate returns the control plane's drop rate (drops only
// when reserve and borrowable query tokens are both exhausted).
func (cp *ClassedProcessor) ControlDropRate() float64 { return cp.control.DropRate() }

// QueryDropped returns the cumulative shed query count.
func (cp *ClassedProcessor) QueryDropped() float64 { return cp.query.dropped }

// QueryProcessed returns the cumulative accepted query count.
func (cp *ClassedProcessor) QueryProcessed() float64 { return cp.query.processed }

// ControlDropped returns the cumulative shed control count.
func (cp *ClassedProcessor) ControlDropped() float64 { return cp.control.dropped }

// DropRate aggregates both classes: dropped/(processed+dropped), 0 idle.
func (cp *ClassedProcessor) DropRate() float64 {
	total := cp.control.processed + cp.control.dropped + cp.query.processed + cp.query.dropped
	if total == 0 {
		return 0
	}
	return (cp.control.dropped + cp.query.dropped) / total
}

// SaturationPoint measures one offered-load level: it simulates
// durationSec seconds of a constant offered rate (queries/min) against
// a fresh processor and reports the achieved processing rate and drop
// rate — one X position of Figs 5 and 6.
type SaturationPoint struct {
	OfferedPerMin   float64
	ProcessedPerMin float64
	DropRate        float64
}

// SaturationCurve sweeps offered load levels against a processor with
// the given capacity, regenerating the data behind Figs 5 and 6.
func SaturationCurve(capacityPerMin float64, offeredPerMin []float64, durationSec int) ([]SaturationPoint, error) {
	if durationSec <= 0 {
		return nil, fmt.Errorf("capacity: non-positive duration %d", durationSec)
	}
	out := make([]SaturationPoint, 0, len(offeredPerMin))
	for _, offered := range offeredPerMin {
		p, err := NewProcessor(capacityPerMin, 0)
		if err != nil {
			return nil, err
		}
		perSec := offered / 60
		for s := 0; s < durationSec; s++ {
			p.Tick(1)
			p.Offer(perSec)
		}
		out = append(out, SaturationPoint{
			OfferedPerMin:   offered,
			ProcessedPerMin: p.Processed() / float64(durationSec) * 60,
			DropRate:        p.DropRate(),
		})
	}
	return out, nil
}

// EffectiveForwardPerMin is the calibrated per-peer effective
// forwarding rate (queries/min) used by the overlay simulator's
// contention model. A peer's local lookup engine sustains
// GoodPeerProcessPerMin, but the rate at which it can usefully relay
// query messages onward is bounded by its share of access-link
// bandwidth (the paper's [19] bandwidth classes put 22% of peers at
// <= 100 Kbps). The simulator uses this single effective bottleneck for
// flood propagation; DESIGN.md ("Calibration") documents the sweep that
// selected it so that agent indicators separate from good-peer
// indicators exactly over the paper's CT range.
const EffectiveForwardPerMin = 1000
