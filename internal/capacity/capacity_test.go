package capacity

import (
	"math"
	"testing"
)

func TestProcessorBasics(t *testing.T) {
	p, err := NewProcessor(600, 10) // 10 queries/sec, burst 10
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Offer(4); got != 4 {
		t.Fatalf("accepted %v of 4 with full bucket", got)
	}
	if got := p.Offer(10); got != 6 {
		t.Fatalf("accepted %v, want remaining 6 tokens", got)
	}
	if p.Dropped() != 4 {
		t.Fatalf("dropped = %v", p.Dropped())
	}
	p.Tick(1) // +10 tokens
	if got := p.Tokens(); got != 10 {
		t.Fatalf("tokens after tick = %v", got)
	}
	p.Tick(100) // bucket must cap at burst
	if got := p.Tokens(); got != 10 {
		t.Fatalf("tokens capped = %v", got)
	}
}

func TestTryProcess(t *testing.T) {
	p, err := NewProcessor(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.TryProcess() || !p.TryProcess() {
		t.Fatal("burst of 2 not honored")
	}
	if p.TryProcess() {
		t.Fatal("processed with empty bucket")
	}
	if p.Processed() != 2 || p.Dropped() != 1 {
		t.Fatalf("processed=%v dropped=%v", p.Processed(), p.Dropped())
	}
	if got := p.DropRate(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("drop rate = %v", got)
	}
}

func TestOfferNonPositive(t *testing.T) {
	p, _ := NewProcessor(60, 1)
	if got := p.Offer(0); got != 0 {
		t.Fatalf("Offer(0) = %v", got)
	}
	if got := p.Offer(-5); got != 0 {
		t.Fatalf("Offer(-5) = %v", got)
	}
	if p.DropRate() != 0 {
		t.Fatal("idle drop rate must be 0")
	}
}

func TestReset(t *testing.T) {
	p, _ := NewProcessor(600, 5)
	p.Offer(100)
	p.Reset()
	if p.Processed() != 0 || p.Dropped() != 0 || p.Tokens() != 5 {
		t.Fatalf("reset incomplete: %+v", *p)
	}
}

func TestNewProcessorErrors(t *testing.T) {
	if _, err := NewProcessor(0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewProcessor(-10, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

// TestFig5Shape regenerates the Figure 5 anchor points: below capacity
// the processed rate tracks the offered rate; above capacity it
// plateaus at the testbed saturation level (~15k/min).
func TestFig5Shape(t *testing.T) {
	offered := []float64{1000, 5000, 10000, 14000, 15000, 20000, 25000, 29000}
	pts, err := SaturationCurve(TestbedSaturationPerMin, offered, 600)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.OfferedPerMin <= TestbedSaturationPerMin {
			if math.Abs(pt.ProcessedPerMin-pt.OfferedPerMin) > pt.OfferedPerMin*0.01 {
				t.Errorf("offered %v: processed %v, want ~offered", pt.OfferedPerMin, pt.ProcessedPerMin)
			}
		} else {
			if math.Abs(pt.ProcessedPerMin-TestbedSaturationPerMin) > TestbedSaturationPerMin*0.01 {
				t.Errorf("offered %v: processed %v, want plateau ~%v",
					pt.OfferedPerMin, pt.ProcessedPerMin, float64(TestbedSaturationPerMin))
			}
		}
	}
}

// TestFig6Anchor checks the paper's headline drop-rate measurement:
// "When peer A sends queries to B as fast as it is capable of
// [~29,000/min], 47% of the queries are dropped by peer B."
func TestFig6Anchor(t *testing.T) {
	pts, err := SaturationCurve(TestbedSaturationPerMin, []float64{29000}, 600)
	if err != nil {
		t.Fatal(err)
	}
	got := pts[0].DropRate
	want := 1 - float64(TestbedSaturationPerMin)/29000 // 48.3%
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("drop rate at 29k/min = %v, want ~%v", got, want)
	}
	if got < 0.44 || got > 0.52 {
		t.Fatalf("drop rate %v outside the paper's ~47%% anchor", got)
	}
}

// TestFig6Monotone: drop rate must be zero below saturation and grow
// monotonically beyond it.
func TestFig6Monotone(t *testing.T) {
	offered := []float64{5000, 10000, 15000, 17000, 20000, 23000, 26000, 29000}
	pts, err := SaturationCurve(TestbedSaturationPerMin, offered, 600)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, pt := range pts {
		if pt.OfferedPerMin < TestbedSaturationPerMin && pt.DropRate > 0.01 {
			t.Errorf("offered %v below capacity dropped %v", pt.OfferedPerMin, pt.DropRate)
		}
		if pt.DropRate < prev-1e-9 {
			t.Errorf("drop rate not monotone at offered %v", pt.OfferedPerMin)
		}
		prev = pt.DropRate
	}
}

func TestSaturationCurveErrors(t *testing.T) {
	if _, err := SaturationCurve(1000, []float64{1}, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func BenchmarkOffer(b *testing.B) {
	p, _ := NewProcessor(600000, 0)
	for i := 0; i < b.N; i++ {
		p.Tick(0.001)
		p.Offer(10)
	}
}
