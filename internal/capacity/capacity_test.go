package capacity

import (
	"math"
	"testing"
)

func TestProcessorBasics(t *testing.T) {
	p, err := NewProcessor(600, 10) // 10 queries/sec, burst 10
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Offer(4); got != 4 {
		t.Fatalf("accepted %v of 4 with full bucket", got)
	}
	if got := p.Offer(10); got != 6 {
		t.Fatalf("accepted %v, want remaining 6 tokens", got)
	}
	if p.Dropped() != 4 {
		t.Fatalf("dropped = %v", p.Dropped())
	}
	p.Tick(1) // +10 tokens
	if got := p.Tokens(); got != 10 {
		t.Fatalf("tokens after tick = %v", got)
	}
	p.Tick(100) // bucket must cap at burst
	if got := p.Tokens(); got != 10 {
		t.Fatalf("tokens capped = %v", got)
	}
}

func TestTryProcess(t *testing.T) {
	p, err := NewProcessor(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.TryProcess() || !p.TryProcess() {
		t.Fatal("burst of 2 not honored")
	}
	if p.TryProcess() {
		t.Fatal("processed with empty bucket")
	}
	if p.Processed() != 2 || p.Dropped() != 1 {
		t.Fatalf("processed=%v dropped=%v", p.Processed(), p.Dropped())
	}
	if got := p.DropRate(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("drop rate = %v", got)
	}
}

func TestOfferNonPositive(t *testing.T) {
	p, _ := NewProcessor(60, 1)
	if got := p.Offer(0); got != 0 {
		t.Fatalf("Offer(0) = %v", got)
	}
	if got := p.Offer(-5); got != 0 {
		t.Fatalf("Offer(-5) = %v", got)
	}
	if p.DropRate() != 0 {
		t.Fatal("idle drop rate must be 0")
	}
}

func TestReset(t *testing.T) {
	p, _ := NewProcessor(600, 5)
	p.Offer(100)
	p.Reset()
	if p.Processed() != 0 || p.Dropped() != 0 || p.Tokens() != 5 {
		t.Fatalf("reset incomplete: %+v", *p)
	}
}

// TestZeroRateClamp is the regression test for the zero-rate boundary:
// a non-positive rate clamps to 0 (mirroring flood.Budget.take), the
// processor stays valid, and Offer/TryProcess accounting agrees with
// DropRate — everything offered is dropped, so DropRate is exactly 1.
func TestZeroRateClamp(t *testing.T) {
	for _, rate := range []float64{0, -10} {
		p, err := NewProcessor(rate, 0)
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if p.Tokens() != 0 {
			t.Fatalf("rate %v: tokens = %v, want 0", rate, p.Tokens())
		}
		if p.DropRate() != 0 {
			t.Fatalf("rate %v: idle drop rate = %v, want 0", rate, p.DropRate())
		}
		if got := p.Offer(10); got != 0 {
			t.Fatalf("rate %v: Offer accepted %v", rate, got)
		}
		if p.TryProcess() {
			t.Fatalf("rate %v: TryProcess succeeded", rate)
		}
		p.Tick(1000) // accrues nothing at rate 0
		if p.Tokens() != 0 {
			t.Fatalf("rate %v: tokens after tick = %v", rate, p.Tokens())
		}
		if p.Processed() != 0 || p.Dropped() != 11 {
			t.Fatalf("rate %v: processed=%v dropped=%v", rate, p.Processed(), p.Dropped())
		}
		if p.DropRate() != 1 {
			t.Fatalf("rate %v: drop rate = %v, want 1", rate, p.DropRate())
		}
	}
}

// TestOfferClampedAtZero: even with an (artificially) drained bucket,
// accepted never goes negative and the ledgers stay consistent.
func TestOfferClampedAtZero(t *testing.T) {
	p, _ := NewProcessor(600, 10)
	p.Offer(10) // drain exactly
	if got := p.Offer(5); got != 0 {
		t.Fatalf("drained bucket accepted %v", got)
	}
	if p.Processed() != 10 || p.Dropped() != 5 {
		t.Fatalf("processed=%v dropped=%v", p.Processed(), p.Dropped())
	}
	if got, want := p.DropRate(), 5.0/15; math.Abs(got-want) > 1e-12 {
		t.Fatalf("drop rate = %v, want %v", got, want)
	}
}

func TestClassedProcessorPriority(t *testing.T) {
	// 600/min with burst 100 and a 10% reserve: control bucket holds
	// 10 tokens, query bucket 90.
	cp, err := NewClassedProcessor(600, 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Queries exhaust their own bucket and never dip into the reserve.
	accepted := 0
	for i := 0; i < 200; i++ {
		if cp.TryProcessQuery() {
			accepted++
		}
	}
	if accepted != 90 {
		t.Fatalf("query accepted = %d, want 90", accepted)
	}
	// Control still has its full reserve.
	ctl := 0
	for i := 0; i < 50; i++ {
		if cp.TryProcessControl() {
			ctl++
		}
	}
	if ctl != 10 {
		t.Fatalf("control accepted = %d, want reserve of 10", ctl)
	}
	if cp.QueryDropped() != 110 || cp.ControlDropped() != 40 {
		t.Fatalf("dropped: query=%v control=%v", cp.QueryDropped(), cp.ControlDropped())
	}
	if got, want := cp.QueryDropRate(), 110.0/200; math.Abs(got-want) > 1e-12 {
		t.Fatalf("query drop rate = %v, want %v", got, want)
	}
	if got, want := cp.ControlDropRate(), 40.0/50; math.Abs(got-want) > 1e-12 {
		t.Fatalf("control drop rate = %v, want %v", got, want)
	}
	if got, want := cp.DropRate(), 150.0/250; math.Abs(got-want) > 1e-12 {
		t.Fatalf("aggregate drop rate = %v, want %v", got, want)
	}
}

func TestClassedProcessorControlBorrowsQuery(t *testing.T) {
	cp, err := NewClassedProcessor(600, 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the control reserve (10 tokens); query bucket still has 90.
	for i := 0; i < 10; i++ {
		if !cp.TryProcessControl() {
			t.Fatalf("reserve token %d denied", i)
		}
	}
	// Control borrows idle query tokens rather than shedding.
	if !cp.TryProcessControl() {
		t.Fatal("control could not borrow an idle query token")
	}
	if cp.ControlDropped() != 0 {
		t.Fatalf("control dropped = %v while query tokens idle", cp.ControlDropped())
	}
	// The borrowed token is gone from the query budget.
	accepted := 0
	for cp.TryProcessQuery() {
		accepted++
	}
	if accepted != 89 {
		t.Fatalf("query accepted after borrow = %d, want 89", accepted)
	}
}

func TestClassedProcessorTickRefillsBoth(t *testing.T) {
	cp, err := NewClassedProcessor(600, 100, 0.1) // 10/sec total
	if err != nil {
		t.Fatal(err)
	}
	for cp.TryProcessQuery() {
	}
	for cp.TryProcessControl() {
	}
	cp.Tick(1) // +1 control, +9 query
	ctl, qry := 0, 0
	for cp.TryProcessControl() {
		ctl++
	}
	for cp.TryProcessQuery() {
		qry++
	}
	// The refilled second splits 10%/90%; control's single token plus
	// nothing borrowable (queries drained after) — drain order matters,
	// so drain control first: 1 reserve token, then borrows 9 query.
	if ctl != 10 || qry != 0 {
		t.Fatalf("after tick: control=%d query=%d, want 10/0 (reserve+borrow)", ctl, qry)
	}
}

func TestNewClassedProcessorErrors(t *testing.T) {
	for _, frac := range []float64{0, -0.1, 1, 1.5} {
		if _, err := NewClassedProcessor(600, 10, frac); err == nil {
			t.Errorf("control fraction %v accepted", frac)
		}
	}
}

// TestFig5Shape regenerates the Figure 5 anchor points: below capacity
// the processed rate tracks the offered rate; above capacity it
// plateaus at the testbed saturation level (~15k/min).
func TestFig5Shape(t *testing.T) {
	offered := []float64{1000, 5000, 10000, 14000, 15000, 20000, 25000, 29000}
	pts, err := SaturationCurve(TestbedSaturationPerMin, offered, 600)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.OfferedPerMin <= TestbedSaturationPerMin {
			if math.Abs(pt.ProcessedPerMin-pt.OfferedPerMin) > pt.OfferedPerMin*0.01 {
				t.Errorf("offered %v: processed %v, want ~offered", pt.OfferedPerMin, pt.ProcessedPerMin)
			}
		} else {
			if math.Abs(pt.ProcessedPerMin-TestbedSaturationPerMin) > TestbedSaturationPerMin*0.01 {
				t.Errorf("offered %v: processed %v, want plateau ~%v",
					pt.OfferedPerMin, pt.ProcessedPerMin, float64(TestbedSaturationPerMin))
			}
		}
	}
}

// TestFig6Anchor checks the paper's headline drop-rate measurement:
// "When peer A sends queries to B as fast as it is capable of
// [~29,000/min], 47% of the queries are dropped by peer B."
func TestFig6Anchor(t *testing.T) {
	pts, err := SaturationCurve(TestbedSaturationPerMin, []float64{29000}, 600)
	if err != nil {
		t.Fatal(err)
	}
	got := pts[0].DropRate
	want := 1 - float64(TestbedSaturationPerMin)/29000 // 48.3%
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("drop rate at 29k/min = %v, want ~%v", got, want)
	}
	if got < 0.44 || got > 0.52 {
		t.Fatalf("drop rate %v outside the paper's ~47%% anchor", got)
	}
}

// TestFig6Monotone: drop rate must be zero below saturation and grow
// monotonically beyond it.
func TestFig6Monotone(t *testing.T) {
	offered := []float64{5000, 10000, 15000, 17000, 20000, 23000, 26000, 29000}
	pts, err := SaturationCurve(TestbedSaturationPerMin, offered, 600)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, pt := range pts {
		if pt.OfferedPerMin < TestbedSaturationPerMin && pt.DropRate > 0.01 {
			t.Errorf("offered %v below capacity dropped %v", pt.OfferedPerMin, pt.DropRate)
		}
		if pt.DropRate < prev-1e-9 {
			t.Errorf("drop rate not monotone at offered %v", pt.OfferedPerMin)
		}
		prev = pt.DropRate
	}
}

func TestSaturationCurveErrors(t *testing.T) {
	if _, err := SaturationCurve(1000, []float64{1}, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func BenchmarkOffer(b *testing.B) {
	p, _ := NewProcessor(600000, 0)
	for i := 0; i < b.N; i++ {
		p.Tick(0.001)
		p.Offer(10)
	}
}

// A sub-60/min rate used to default its burst to ratePerSec < 1, so
// the bucket could never hold one whole token and TryProcess starved
// the peer forever. The floor of one token lets it drain slowly — one
// query every ceil(60/rate) seconds — instead of never.
func TestProcessorSubMinuteRateNotStarved(t *testing.T) {
	p, err := NewProcessor(30, 0) // 0.5 tokens/sec
	if err != nil {
		t.Fatal(err)
	}
	// Freshly built bucket holds its (floored) burst: one token.
	if !p.TryProcess() {
		t.Fatal("fresh sub-minute-rate processor rejected its first query")
	}
	ok := 0
	for s := 0; s < 60; s++ {
		p.Tick(1)
		if p.TryProcess() {
			ok++
		}
	}
	if ok != 30 {
		t.Fatalf("0.5/s processor served %d of 60 seconds, want 30", ok)
	}
}

// The floor also applies to explicit sub-1.0 bursts with a positive
// rate (a classed processor's control reserve sized as a small
// fraction of a modest burst), but never resurrects a zero-rate
// processor.
func TestProcessorBurstFloor(t *testing.T) {
	p, err := NewProcessor(600, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tokens() != 1 {
		t.Fatalf("explicit 0.2 burst with positive rate: tokens = %v, want floored 1", p.Tokens())
	}
	z, err := NewProcessor(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	z.Tick(100)
	if z.TryProcess() {
		t.Fatal("zero-rate processor served a query")
	}
}

// Rates >= 60/min keep their historical default burst of exactly one
// second of capacity.
func TestProcessorDefaultBurstUnchangedAtWholeRates(t *testing.T) {
	p, err := NewProcessor(6000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tokens() != 100 {
		t.Fatalf("default burst = %v, want 100", p.Tokens())
	}
}
