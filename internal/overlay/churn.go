package overlay

import (
	"ddpolice/internal/rng"
)

// ChurnConfig models peer session dynamics. The paper assigns each
// joining peer a lifetime drawn from the distribution observed in [19]
// with mean 10 minutes and "variance half of the value of the mean"
// (interpreted in minutes: std-dev = sqrt(5) min ≈ 134 s), and peers
// rejoin after an offline period so the online population stays near
// its target.
type ChurnConfig struct {
	MeanLifetime   float64 // seconds online per session (paper: 600)
	StddevLifetime float64 // seconds (paper: ~134)
	MeanOffline    float64 // seconds between sessions; exponential
	// CrashFraction is the probability a departure is a crash rather
	// than a graceful leave. A crashed peer vanishes without the
	// leave-side protocol actions (its buddies keep stale state until
	// their own timeouts clear it); the fault-injection studies sweep
	// this. Zero (the default) keeps every departure graceful.
	CrashFraction float64
}

// DefaultChurnConfig returns the paper's churn parameters.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{MeanLifetime: 600, StddevLifetime: 134, MeanOffline: 600}
}

// Churn drives on/off toggling of peers in whole-second ticks.
type Churn struct {
	cfg       ChurnConfig
	src       *rng.Source
	ov        *Overlay
	remaining []float64 // seconds until state flip; <0 means pinned
	pinned    []bool    // peers excluded from churn (e.g. DDoS agents)
	crashed   []bool    // last departure of v was a crash, not a leave
	flips     []PeerID  // peers that flipped during the last Tick, ascending
	joins     int
	leaves    int
	crashes   int
}

// NewChurn creates a churn driver. Every peer starts online with a
// fresh lifetime.
func NewChurn(ov *Overlay, cfg ChurnConfig, src *rng.Source) *Churn {
	c := &Churn{
		cfg:       cfg,
		src:       src,
		ov:        ov,
		remaining: make([]float64, ov.NumPeers()),
		pinned:    make([]bool, ov.NumPeers()),
		crashed:   make([]bool, ov.NumPeers()),
	}
	for v := range c.remaining {
		// Stagger initial lifetimes: peers are mid-session at t=0, so
		// sample a residual uniformly within a full lifetime.
		c.remaining[v] = c.sampleLifetime() * c.src.Float64()
	}
	return c
}

func (c *Churn) sampleLifetime() float64 {
	if c.cfg.StddevLifetime <= 0 {
		return c.cfg.MeanLifetime
	}
	return c.src.LogNormal(c.cfg.MeanLifetime, c.cfg.StddevLifetime)
}

// Pin excludes peer v from churn (used for dedicated DDoS agents, which
// the paper models as continuously attacking).
func (c *Churn) Pin(v PeerID) {
	c.pinned[v] = true
	c.ov.SetOnline(v, true)
}

// Unpin re-enrolls v into churn with a fresh lifetime.
func (c *Churn) Unpin(v PeerID) {
	c.pinned[v] = false
	c.remaining[v] = c.sampleLifetime()
}

// Joins returns the number of join events so far.
func (c *Churn) Joins() int { return c.joins }

// Leaves returns the number of leave events so far (crashes included).
func (c *Churn) Leaves() int { return c.leaves }

// Crashes returns the number of departures that were crashes.
func (c *Churn) Crashes() int { return c.crashes }

// Crashed reports whether v's most recent departure was a crash. The
// flag clears when v rejoins.
func (c *Churn) Crashed(v PeerID) bool { return c.crashed[v] }

// Flips returns the peers that changed state during the most recent
// Tick, in ascending PeerID order — the same order a full online-state
// diff against the pre-Tick snapshot would yield. The slice is reused
// by the next Tick.
func (c *Churn) Flips() []PeerID { return c.flips }

// Tick advances churn by dt seconds, flipping any peers whose session
// or offline period expired. The peers that flipped are retrievable in
// ascending order via Flips until the next Tick.
func (c *Churn) Tick(dt float64) {
	c.flips = c.flips[:0]
	for v := range c.remaining {
		if c.pinned[v] {
			continue
		}
		c.remaining[v] -= dt
		if c.remaining[v] > 0 {
			continue
		}
		id := PeerID(v)
		c.flips = append(c.flips, id)
		if c.ov.Online(id) {
			c.ov.SetOnline(id, false)
			c.leaves++
			if c.cfg.CrashFraction > 0 && c.src.Bool(c.cfg.CrashFraction) {
				c.crashed[v] = true
				c.crashes++
			}
			if c.cfg.MeanOffline <= 0 {
				c.remaining[v] = 1e18 // never rejoins
			} else {
				c.remaining[v] = c.src.ExpFloat64(1 / c.cfg.MeanOffline)
			}
		} else {
			c.ov.SetOnline(id, true)
			c.joins++
			c.crashed[v] = false
			c.remaining[v] = c.sampleLifetime()
		}
	}
}
