package overlay

import (
	"testing"

	"ddpolice/internal/rng"
	"ddpolice/internal/topology"
)

func ring(t *testing.T, n, k int) *topology.Graph {
	t.Helper()
	g, err := topology.RingLattice(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewAllOnline(t *testing.T) {
	o := New(ring(t, 10, 2))
	if o.NumPeers() != 10 || o.OnlineCount() != 10 {
		t.Fatalf("peers=%d online=%d", o.NumPeers(), o.OnlineCount())
	}
	if o.NumDirectedEdges() != 40 { // 20 undirected edges
		t.Fatalf("directed edges = %d", o.NumDirectedEdges())
	}
}

func TestEdgeLookupAndEndpoints(t *testing.T) {
	g := ring(t, 10, 2)
	o := New(g)
	for v := topology.NodeID(0); v < 10; v++ {
		for k, w := range g.Neighbors(v) {
			e := o.EdgeID(v, k)
			from, to := o.Endpoints(e)
			if from != v || to != w {
				t.Fatalf("endpoints(%d) = (%d,%d), want (%d,%d)", e, from, to, v, w)
			}
			fe, ok := o.FindEdge(v, w)
			if !ok || fe != e {
				t.Fatalf("FindEdge(%d,%d) = %d,%v want %d", v, w, fe, ok, e)
			}
			// Reverse must point back.
			rf, rt := o.Endpoints(o.Reverse(e))
			if rf != w || rt != v {
				t.Fatalf("reverse(%d) endpoints = (%d,%d)", e, rf, rt)
			}
		}
	}
	if _, ok := o.FindEdge(0, 5); ok {
		t.Fatal("found non-existent edge")
	}
}

func TestActiveNeighborsRespectOnlineAndCuts(t *testing.T) {
	o := New(ring(t, 10, 2))
	// Node 0's ring-lattice neighbors are 1, 2, 8, 9.
	ns := o.ActiveNeighbors(0, nil)
	if len(ns) != 4 {
		t.Fatalf("active neighbors = %v", ns)
	}
	o.SetOnline(1, false)
	if err := o.Cut(0, 2); err != nil {
		t.Fatal(err)
	}
	ns = o.ActiveNeighbors(0, nil)
	if len(ns) != 2 || ns[0] != 8 || ns[1] != 9 {
		t.Fatalf("after offline+cut: %v", ns)
	}
	if o.ActiveDegree(0) != 2 {
		t.Fatalf("active degree = %d", o.ActiveDegree(0))
	}
	if o.Connected(0, 2) || o.Connected(0, 1) || !o.Connected(0, 9) {
		t.Fatal("Connected wrong")
	}
	// Offline peer has no active neighbors.
	if got := o.ActiveNeighbors(1, nil); len(got) != 0 {
		t.Fatalf("offline peer neighbors = %v", got)
	}
	if o.ActiveDegree(1) != 0 {
		t.Fatal("offline peer degree != 0")
	}
}

func TestCutSymmetricAndCount(t *testing.T) {
	o := New(ring(t, 10, 2))
	if err := o.Cut(3, 4); err != nil {
		t.Fatal(err)
	}
	if !o.IsCut(3, 4) || !o.IsCut(4, 3) {
		t.Fatal("cut not symmetric")
	}
	if o.CutCount() != 1 {
		t.Fatalf("cut count = %d", o.CutCount())
	}
	if err := o.Cut(0, 5); err == nil {
		t.Fatal("cut of non-edge accepted")
	}
}

func TestRejoinClearsCutsAndCounters(t *testing.T) {
	o := New(ring(t, 10, 2))
	if err := o.Cut(3, 4); err != nil {
		t.Fatal(err)
	}
	if err := o.AddTrafficBetween(3, 4, 100); err != nil {
		t.Fatal(err)
	}
	o.RollMinute()
	if o.LastMinute(3, 4) != 100 {
		t.Fatal("counter lost before rejoin")
	}
	o.SetOnline(3, false)
	o.SetOnline(3, true)
	if o.IsCut(3, 4) {
		t.Fatal("cut survived rejoin")
	}
	if o.LastMinute(3, 4) != 0 {
		t.Fatal("counters survived rejoin")
	}
}

func TestSetOnlineIdempotent(t *testing.T) {
	o := New(ring(t, 10, 2))
	if err := o.Cut(0, 1); err != nil {
		t.Fatal(err)
	}
	o.SetOnline(0, true) // no-op: must NOT clear the cut
	if !o.IsCut(0, 1) {
		t.Fatal("no-op SetOnline cleared cut state")
	}
}

func TestTrafficWindows(t *testing.T) {
	o := New(ring(t, 10, 2))
	e, _ := o.FindEdge(0, 1)
	o.AddTraffic(e, 30)
	o.AddTraffic(e, 12.5)
	if got := o.CurrentMinuteEdge(e); got != 42.5 {
		t.Fatalf("current = %v", got)
	}
	if got := o.LastMinuteEdge(e); got != 0 {
		t.Fatalf("last before roll = %v", got)
	}
	o.RollMinute()
	if got := o.LastMinute(0, 1); got != 42.5 {
		t.Fatalf("last after roll = %v", got)
	}
	if got := o.CurrentMinuteEdge(e); got != 0 {
		t.Fatalf("current after roll = %v", got)
	}
	o.RollMinute()
	if got := o.LastMinute(0, 1); got != 0 {
		t.Fatalf("stale count survived second roll: %v", got)
	}
	if o.LastMinute(0, 5) != 0 {
		t.Fatal("non-edge traffic must read 0")
	}
	if err := o.AddTrafficBetween(0, 5, 1); err == nil {
		t.Fatal("traffic on non-edge accepted")
	}
}

func TestChurnTogglesPeers(t *testing.T) {
	g, err := topology.BarabasiAlbert(rng.New(1), 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := New(g)
	c := NewChurn(o, ChurnConfig{MeanLifetime: 60, StddevLifetime: 13, MeanOffline: 60}, rng.New(2))
	for i := 0; i < 600; i++ { // 10 simulated minutes
		c.Tick(1)
	}
	if c.Joins() == 0 || c.Leaves() == 0 {
		t.Fatalf("no churn: joins=%d leaves=%d", c.Joins(), c.Leaves())
	}
	// With equal on/off means, roughly half the peers are online.
	on := o.OnlineCount()
	if on < 90 || on > 210 {
		t.Fatalf("online count = %d, want around 150", on)
	}
}

func TestChurnPinnedPeerStaysOnline(t *testing.T) {
	g, err := topology.BarabasiAlbert(rng.New(3), 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := New(g)
	c := NewChurn(o, ChurnConfig{MeanLifetime: 5, StddevLifetime: 1, MeanOffline: 5}, rng.New(4))
	c.Pin(7)
	for i := 0; i < 300; i++ {
		c.Tick(1)
		if !o.Online(7) {
			t.Fatal("pinned peer went offline")
		}
	}
	c.Unpin(7)
	off := false
	for i := 0; i < 300; i++ {
		c.Tick(1)
		if !o.Online(7) {
			off = true
			break
		}
	}
	if !off {
		t.Fatal("unpinned peer never churned")
	}
}

func TestChurnNoRejoinWhenMeanOfflineZero(t *testing.T) {
	g, err := topology.BarabasiAlbert(rng.New(5), 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := New(g)
	c := NewChurn(o, ChurnConfig{MeanLifetime: 10, StddevLifetime: 2, MeanOffline: 0}, rng.New(6))
	for i := 0; i < 200; i++ {
		c.Tick(1)
	}
	if c.Joins() != 0 {
		t.Fatalf("peers rejoined despite MeanOffline=0: %d", c.Joins())
	}
	if o.OnlineCount() != 0 {
		t.Fatalf("%d peers still online after 20 mean lifetimes", o.OnlineCount())
	}
}

func BenchmarkActiveNeighbors(b *testing.B) {
	g, err := topology.BarabasiAlbert(rng.New(1), 2000, 3)
	if err != nil {
		b.Fatal(err)
	}
	o := New(g)
	buf := make([]PeerID, 0, 64)
	for i := 0; i < b.N; i++ {
		buf = o.ActiveNeighbors(PeerID(i%2000), buf[:0])
	}
	_ = buf
}

func BenchmarkRollMinute2000(b *testing.B) {
	g, err := topology.BarabasiAlbert(rng.New(1), 2000, 3)
	if err != nil {
		b.Fatal(err)
	}
	o := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.RollMinute()
	}
}

// TestRandomOpSequenceInvariants drives the overlay with random
// operations and checks structural invariants after every step.
func TestRandomOpSequenceInvariants(t *testing.T) {
	g, err := topology.BarabasiAlbert(rng.New(77), 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := New(g)
	src := rng.New(78)
	check := func(step int) {
		for v := 0; v < 150; v++ {
			id := PeerID(v)
			ad := o.ActiveDegree(id)
			if ad < 0 || ad > g.Degree(id) {
				t.Fatalf("step %d: active degree %d outside [0,%d]", step, ad, g.Degree(id))
			}
			if !o.Online(id) && ad != 0 {
				t.Fatalf("step %d: offline peer %d has active degree %d", step, v, ad)
			}
			for _, w := range g.Neighbors(id) {
				if o.IsCut(id, w) != o.IsCut(w, id) {
					t.Fatalf("step %d: asymmetric cut (%d,%d)", step, v, w)
				}
				if o.Connected(id, w) != o.Connected(w, id) {
					t.Fatalf("step %d: asymmetric connectivity (%d,%d)", step, v, w)
				}
				if o.LastMinute(id, w) < 0 {
					t.Fatalf("step %d: negative counter", step)
				}
			}
		}
	}
	for step := 0; step < 400; step++ {
		v := PeerID(src.Intn(150))
		switch src.Intn(5) {
		case 0:
			o.SetOnline(v, true)
		case 1:
			o.SetOnline(v, false)
		case 2:
			ns := g.Neighbors(v)
			if len(ns) > 0 {
				_ = o.Cut(v, ns[src.Intn(len(ns))])
			}
		case 3:
			ns := g.Neighbors(v)
			if len(ns) > 0 {
				_ = o.AddTrafficBetween(v, ns[src.Intn(len(ns))], src.Float64()*100)
			}
		case 4:
			o.RollMinute()
		}
		check(step)
	}
}

// TestVersionCountsConnectivityMutations pins the mutation-counter
// contract that the flood traversal cache and the fair-share budget key
// their validity on: every state-changing SetOnline/Cut/Uncut bumps it,
// and no-op mutations leave it alone.
func TestVersionCountsConnectivityMutations(t *testing.T) {
	o := New(ring(t, 10, 2))
	v0 := o.Version()

	o.SetOnline(3, false)
	if o.Version() != v0+1 {
		t.Fatalf("leave: version %d, want %d", o.Version(), v0+1)
	}
	o.SetOnline(3, false) // no-op: already offline
	if o.Version() != v0+1 {
		t.Fatalf("no-op leave bumped version to %d", o.Version())
	}
	o.SetOnline(3, true)
	if o.Version() != v0+2 {
		t.Fatalf("rejoin: version %d, want %d", o.Version(), v0+2)
	}
	o.SetOnline(3, true) // no-op: already online
	if o.Version() != v0+2 {
		t.Fatalf("no-op join bumped version to %d", o.Version())
	}

	if err := o.Cut(0, 1); err != nil {
		t.Fatal(err)
	}
	if o.Version() != v0+3 {
		t.Fatalf("cut: version %d, want %d", o.Version(), v0+3)
	}
	if err := o.Cut(0, 1); err != nil {
		t.Fatal(err)
	}
	if o.Version() != v0+3 {
		t.Fatalf("re-cut of severed edge bumped version to %d", o.Version())
	}
	o.Uncut(0, 1)
	if o.Version() != v0+4 {
		t.Fatalf("heal: version %d, want %d", o.Version(), v0+4)
	}
	o.Uncut(0, 1) // no-op: edge intact
	if o.Version() != v0+4 {
		t.Fatalf("no-op heal bumped version to %d", o.Version())
	}
	o.Uncut(5, 9) // no-op: not an edge
	if o.Version() != v0+4 {
		t.Fatalf("uncut of non-edge bumped version to %d", o.Version())
	}

	// Traffic accounting and minute rolls are not connectivity.
	if err := o.AddTrafficBetween(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	o.RollMinute()
	if o.Version() != v0+4 {
		t.Fatalf("traffic/minute bookkeeping bumped version to %d", o.Version())
	}
}

// TestEdgeCutMatchesIsCut checks the O(1) edge-id form against the
// endpoint form.
func TestEdgeCutMatchesIsCut(t *testing.T) {
	o := New(ring(t, 10, 2))
	if err := o.Cut(2, 3); err != nil {
		t.Fatal(err)
	}
	e, ok := o.FindEdge(2, 3)
	if !ok {
		t.Fatal("edge 2-3 missing")
	}
	if !o.EdgeCut(e) || !o.EdgeCut(o.Reverse(e)) {
		t.Fatal("EdgeCut false for severed edge")
	}
	if f, _ := o.FindEdge(3, 4); o.EdgeCut(f) {
		t.Fatal("EdgeCut true for intact edge")
	}
}
