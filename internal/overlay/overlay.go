// Package overlay maintains the dynamic state of the unstructured P2P
// overlay on top of a static logical topology: which peers are online
// (the paper "simulates the joining and leaving behavior of peers via
// turning on/off logical peers"), which logical connections have been
// cut by DD-POLICE, and the per-directed-edge per-minute query counters
// Q_{i->h}(t) that Definitions 2.1-2.3 are computed from.
package overlay

import (
	"fmt"

	"ddpolice/internal/topology"
)

// PeerID identifies a peer; it equals the topology.NodeID of the
// underlying static graph.
type PeerID = topology.NodeID

// EdgeID indexes a *directed* logical edge (u -> k-th neighbor of u).
type EdgeID int32

// Overlay is the mutable overlay state. It is not safe for concurrent
// mutation; each simulation replica owns one Overlay.
type Overlay struct {
	g        *topology.Graph
	online   []bool
	edgeBase []EdgeID // edgeBase[v] + k = directed edge id of v -> adj[v][k]
	reverse  []EdgeID // reverse[e] = id of the opposite direction
	slot     []int32  // slot[e] = k such that e is (u -> adj[u][k]); for lookups
	cut      []bool   // per directed edge, symmetric
	curQ     []float64
	prevQ    []float64
	numEdges int
	// Dense online index: onlineIDs lists the online peers in
	// ascending PeerID order and onlinePos[v] is v's position in it
	// (-1 while offline). Maintained incrementally by SetOnline so
	// OnlineCount is O(1) and AppendOnline is O(active) — the tick
	// hot path iterates active peers without scanning all N.
	onlineIDs []PeerID
	onlinePos []int32
	// version counts connectivity mutations (join/leave, cut/uncut —
	// including partition apply/heal, which go through Cut/Uncut).
	// Traversal caches and fair-share budgets key their validity on it;
	// no-op mutations (cutting an already-cut edge, re-onlining an
	// online peer) deliberately do not bump it.
	version uint64
}

// New creates an overlay over g with every peer online and no cuts.
func New(g *topology.Graph) *Overlay {
	n := g.NumNodes()
	o := &Overlay{g: g, online: make([]bool, n), edgeBase: make([]EdgeID, n+1),
		onlineIDs: make([]PeerID, n), onlinePos: make([]int32, n)}
	var total EdgeID
	for v := 0; v < n; v++ {
		o.online[v] = true
		o.onlineIDs[v] = PeerID(v)
		o.onlinePos[v] = int32(v)
		o.edgeBase[v] = total
		total += EdgeID(g.Degree(PeerID(v)))
	}
	o.edgeBase[n] = total
	o.numEdges = int(total)
	o.reverse = make([]EdgeID, total)
	o.slot = make([]int32, total)
	o.cut = make([]bool, total)
	o.curQ = make([]float64, total)
	o.prevQ = make([]float64, total)
	for v := 0; v < n; v++ {
		for k, w := range g.Neighbors(PeerID(v)) {
			e := o.edgeBase[v] + EdgeID(k)
			o.slot[e] = int32(k)
			re, ok := o.lookupEdge(w, PeerID(v))
			if !ok {
				panic("overlay: asymmetric adjacency")
			}
			o.reverse[e] = re
		}
	}
	return o
}

// lookupEdge finds the directed edge u->w by scanning u's (sorted)
// neighbor list with binary search.
func (o *Overlay) lookupEdge(u, w PeerID) (EdgeID, bool) {
	ns := o.g.Neighbors(u)
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ns) && ns[lo] == w {
		return o.edgeBase[u] + EdgeID(lo), true
	}
	return 0, false
}

// Graph returns the static logical topology.
func (o *Overlay) Graph() *topology.Graph { return o.g }

// NumPeers returns the total number of logical peers.
func (o *Overlay) NumPeers() int { return o.g.NumNodes() }

// NumDirectedEdges returns the number of directed logical edges.
func (o *Overlay) NumDirectedEdges() int { return o.numEdges }

// Version returns the connectivity mutation counter. It increments on
// every state-changing SetOnline, Cut and Uncut, so any derived view of
// reachability (flood traversal caches, fair-share edge budgets, online
// peer lists) is valid exactly while Version is unchanged.
func (o *Overlay) Version() uint64 { return o.version }

// Online reports whether v is currently in the system.
func (o *Overlay) Online(v PeerID) bool { return o.online[v] }

// OnlineCount returns the number of online peers in O(1).
func (o *Overlay) OnlineCount() int { return len(o.onlineIDs) }

// AppendOnline appends the online peers in ascending PeerID order to
// buf and returns the extended slice — the same order a full
// O(NumPeers) scan of Online would produce, in O(online) time. buf may
// be nil. The returned contents are a copy; they stay valid across
// subsequent mutations.
func (o *Overlay) AppendOnline(buf []PeerID) []PeerID {
	return append(buf, o.onlineIDs...)
}

// SetOnline toggles peer v. Transitioning in either direction clears
// all cuts and traffic counters on v's edges: a leaving peer tears its
// connections down, and a (re)joining peer establishes fresh
// connections — which is also how a disconnected DDoS agent "joins the
// system again and launches another round of attacks" (§3.7.2).
func (o *Overlay) SetOnline(v PeerID, on bool) {
	if o.online[v] == on {
		return
	}
	o.online[v] = on
	o.version++
	if on {
		// Insert v into the sorted dense list.
		lo, hi := 0, len(o.onlineIDs)
		for lo < hi {
			mid := (lo + hi) / 2
			if o.onlineIDs[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		o.onlineIDs = append(o.onlineIDs, 0)
		copy(o.onlineIDs[lo+1:], o.onlineIDs[lo:])
		o.onlineIDs[lo] = v
		for i := lo; i < len(o.onlineIDs); i++ {
			o.onlinePos[o.onlineIDs[i]] = int32(i)
		}
	} else {
		pos := int(o.onlinePos[v])
		copy(o.onlineIDs[pos:], o.onlineIDs[pos+1:])
		o.onlineIDs = o.onlineIDs[:len(o.onlineIDs)-1]
		o.onlinePos[v] = -1
		for i := pos; i < len(o.onlineIDs); i++ {
			o.onlinePos[o.onlineIDs[i]] = int32(i)
		}
	}
	for k := range o.g.Neighbors(v) {
		e := o.edgeBase[v] + EdgeID(k)
		re := o.reverse[e]
		o.cut[e] = false
		o.cut[re] = false
		o.curQ[e], o.prevQ[e] = 0, 0
		o.curQ[re], o.prevQ[re] = 0, 0
	}
}

// EdgeID returns the directed edge id for u's k-th static neighbor.
func (o *Overlay) EdgeID(u PeerID, k int) EdgeID { return o.edgeBase[u] + EdgeID(k) }

// Reverse returns the opposite-direction edge id.
func (o *Overlay) Reverse(e EdgeID) EdgeID { return o.reverse[e] }

// Endpoints returns (from, to) for a directed edge id.
func (o *Overlay) Endpoints(e EdgeID) (from, to PeerID) {
	// Binary search edgeBase for the owner.
	lo, hi := 0, len(o.edgeBase)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if o.edgeBase[mid] <= e {
			lo = mid
		} else {
			hi = mid
		}
	}
	from = PeerID(lo)
	return from, o.g.Neighbors(from)[o.slot[e]]
}

// FindEdge returns the directed edge id u->w, if {u,w} is a logical edge.
func (o *Overlay) FindEdge(u, w PeerID) (EdgeID, bool) { return o.lookupEdge(u, w) }

// Connected reports whether the logical edge {u,w} exists, both ends
// are online, and the edge has not been cut.
func (o *Overlay) Connected(u, w PeerID) bool {
	if !o.online[u] || !o.online[w] {
		return false
	}
	e, ok := o.lookupEdge(u, w)
	return ok && !o.cut[e]
}

// ActiveNeighbors appends to buf the currently reachable neighbors of v
// (online, edge not cut) and returns the extended slice. buf may be nil.
func (o *Overlay) ActiveNeighbors(v PeerID, buf []PeerID) []PeerID {
	if !o.online[v] {
		return buf
	}
	base := o.edgeBase[v]
	for k, w := range o.g.Neighbors(v) {
		if o.online[w] && !o.cut[base+EdgeID(k)] {
			buf = append(buf, w)
		}
	}
	return buf
}

// ActiveDegree returns the number of active neighbors of v.
func (o *Overlay) ActiveDegree(v PeerID) int {
	if !o.online[v] {
		return 0
	}
	base := o.edgeBase[v]
	d := 0
	for k, w := range o.g.Neighbors(v) {
		if o.online[w] && !o.cut[base+EdgeID(k)] {
			d++
		}
	}
	return d
}

// Cut severs the logical connection {u,w} in both directions. It
// returns an error if the edge does not exist.
func (o *Overlay) Cut(u, w PeerID) error {
	e, ok := o.lookupEdge(u, w)
	if !ok {
		return fmt.Errorf("overlay: cut of non-edge (%d,%d)", u, w)
	}
	if !o.cut[e] {
		o.version++
	}
	o.cut[e] = true
	o.cut[o.reverse[e]] = true
	return nil
}

// Uncut restores a severed logical connection {u,w} in both directions
// — the healing half of a timed partition event. Uncutting an intact or
// non-existent edge is a no-op, so heals compose with churn: SetOnline
// may already have cleared the flags while the partition was up.
func (o *Overlay) Uncut(u, w PeerID) {
	e, ok := o.lookupEdge(u, w)
	if !ok {
		return
	}
	if o.cut[e] {
		o.version++
	}
	o.cut[e] = false
	o.cut[o.reverse[e]] = false
}

// EdgeCut reports whether directed edge e has been severed. It is the
// O(1) form of IsCut for callers that already hold an edge id.
func (o *Overlay) EdgeCut(e EdgeID) bool { return o.cut[e] }

// IsCut reports whether the logical edge {u,w} has been severed.
func (o *Overlay) IsCut(u, w PeerID) bool {
	e, ok := o.lookupEdge(u, w)
	return ok && o.cut[e]
}

// CutCount returns the number of undirected edges currently cut.
func (o *Overlay) CutCount() int {
	c := 0
	for _, b := range o.cut {
		if b {
			c++
		}
	}
	return c / 2
}

// AddTraffic records amount queries flowing over directed edge e in the
// current minute window. Fractional amounts arise from attacker batch
// floods.
func (o *Overlay) AddTraffic(e EdgeID, amount float64) { o.curQ[e] += amount }

// AddTrafficBetween records traffic on the directed edge u->w; it is a
// convenience for tests and the message-level simulator.
func (o *Overlay) AddTrafficBetween(u, w PeerID, amount float64) error {
	e, ok := o.lookupEdge(u, w)
	if !ok {
		return fmt.Errorf("overlay: traffic on non-edge (%d,%d)", u, w)
	}
	o.curQ[e] += amount
	return nil
}

// RollMinute closes the current per-minute counter window: current
// counts become the "past one minute" values that Neighbor_Traffic
// messages report, and the current window resets.
func (o *Overlay) RollMinute() {
	o.prevQ, o.curQ = o.curQ, o.prevQ
	for i := range o.curQ {
		o.curQ[i] = 0
	}
}

// LastMinute returns Q_{u->w} for the most recently closed minute.
func (o *Overlay) LastMinute(u, w PeerID) float64 {
	e, ok := o.lookupEdge(u, w)
	if !ok {
		return 0
	}
	return o.prevQ[e]
}

// LastMinuteEdge returns the closed-minute count for a directed edge id.
func (o *Overlay) LastMinuteEdge(e EdgeID) float64 { return o.prevQ[e] }

// CurrentMinuteEdge returns the accumulating count for a directed edge.
func (o *Overlay) CurrentMinuteEdge(e EdgeID) float64 { return o.curQ[e] }
