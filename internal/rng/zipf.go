package rng

import "math"

// Zipf samples ranks 1..N with probability proportional to rank^-s.
// It is used for the query-popularity model: measurements of Gnutella
// query traces ([16] in the paper) show a Zipf-like popularity curve.
//
// The sampler uses rejection-inversion (Hörmann & Derflinger), which is
// O(1) per sample for any s >= 0, s != 1 handled too.
type Zipf struct {
	src              *Source
	n                uint64
	s                float64
	oneMinusS        float64
	oneOverOneMinusS float64
	hIntegralX1      float64
	hIntegralN       float64
	threshold        float64
}

// NewZipf creates a Zipf sampler over ranks [1, n] with exponent s >= 0.
// It panics if n == 0 or s < 0.
func NewZipf(src *Source, n uint64, s float64) *Zipf {
	if n == 0 {
		panic("rng: Zipf with zero n")
	}
	if s < 0 {
		panic("rng: Zipf with negative exponent")
	}
	z := &Zipf{src: src, n: n, s: s, oneMinusS: 1 - s}
	if z.oneMinusS != 0 {
		z.oneOverOneMinusS = 1 / z.oneMinusS
	}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(float64(n) + 0.5)
	z.threshold = 2 - z.helper1inv(z.hIntegral(2.5)-z.h(2))
	return z
}

// N returns the rank-space size.
func (z *Zipf) N() uint64 { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// h is the (unnormalized) density x^-s.
func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

// hIntegral is the antiderivative of h.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusS*logX) * logX
}

// helper2 computes (exp(x)-1)/x with a stable series near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x/2*(1+x/3*(1+x/4))
}

// helper1inv computes the inverse used in rejection-inversion:
// given t, return x with hIntegral(x) == t (in shifted form).
func (z *Zipf) helper1inv(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a stable series near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x/2*(1-x/3*(1-x/4))
}

// Rank draws a rank in [1, n], rank 1 being the most popular.
func (z *Zipf) Rank() uint64 {
	for {
		u := z.hIntegralN + z.src.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.helper1inv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.threshold || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k)
		}
	}
}

// ZipfWeights returns the normalized probability of each rank 1..n under
// exponent s. Useful for replication placement and analytic checks.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		w[i] = math.Exp(-s * math.Log(float64(i+1)))
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
