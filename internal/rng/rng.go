// Package rng provides a fast, deterministic random number generator and
// the distribution samplers used throughout the DD-POLICE simulator.
//
// Simulation reproducibility is a hard requirement: every experiment in
// the paper is regenerated from a seed, and parallel replicas must not
// share generator state. Source implements xoshiro256** (Blackman &
// Vigna), seeded through SplitMix64 so that small or correlated seeds
// still produce well-mixed streams. Split derives independent child
// streams for parallel replicas.
package rng

import "math"

// Source is a deterministic xoshiro256** generator. It is NOT safe for
// concurrent use; derive one Source per goroutine with Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed reinitializes the generator state from seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Split returns a new Source whose stream is independent of r for all
// practical purposes. It advances r.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

// SubSeed derives a substream seed from a base seed and a coordinate
// vector by chaining the SplitMix64 finalizer over the coordinates. It
// is a pure function: unlike Split it consumes no generator state, so
// the derivation does not depend on the order in which substreams are
// requested — any worker can compute the seed for coordinate (a, b, c)
// and get the same value. Distinct coordinate vectors (including
// different orderings of the same values) yield decorrelated seeds.
func SubSeed(seed uint64, dims ...uint64) uint64 {
	z := mix64(seed + 0x9e3779b97f4a7c15)
	for _, d := range dims {
		z = mix64(z + 0x9e3779b97f4a7c15*d + 0x2545f4914f6cdd1d)
	}
	return z
}

// mix64 is the SplitMix64 output finalizer (Vigna), a strong 64-bit
// mixing bijection.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Substream returns a Source seeded at SubSeed(seed, dims...): a
// deterministic per-coordinate stream that can be created concurrently
// from any goroutine without sharing or advancing a parent generator.
func Substream(seed uint64, dims ...uint64) *Source {
	return New(SubSeed(seed, dims...))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *Source) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-
// shift rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n // (2^64 - n) mod n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
func (r *Source) ExpFloat64(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: ExpFloat64 with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / lambda
}

// Poisson returns a Poisson variate with the given mean. For small
// means it uses Knuth's product method; for large means a normal
// approximation with continuity correction, which is accurate to well
// under the simulator's noise floor for mean >= 30.
func (r *Source) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		v := mean + math.Sqrt(mean)*r.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
}

// LogNormal returns a log-normal variate parameterized by the desired
// mean and standard deviation of the *resulting* distribution (not of
// the underlying normal). This matches how the paper specifies peer
// lifetimes ("the mean of the distribution is 10 minutes, the variance
// half of the mean").
func (r *Source) LogNormal(mean, stddev float64) float64 {
	if mean <= 0 {
		panic("rng: LogNormal with non-positive mean")
	}
	if stddev <= 0 {
		return mean
	}
	cv2 := (stddev / mean) * (stddev / mean)
	sigma2 := math.Log(1 + cv2)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*r.NormFloat64())
}

// Pareto returns a Pareto(alpha, xm) variate (heavy-tailed, minimum xm).
func (r *Source) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// Weibull returns a Weibull(shape, scale) variate.
func (r *Source) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	return scale * math.Pow(-math.Log(1-r.Float64()), 1/shape)
}
