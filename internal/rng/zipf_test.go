package rng

import (
	"math"
	"testing"
)

func TestZipfRanksInRange(t *testing.T) {
	src := New(1)
	for _, s := range []float64{0, 0.5, 0.8, 1.0, 1.5, 2.5} {
		z := NewZipf(src, 1000, s)
		for i := 0; i < 5000; i++ {
			k := z.Rank()
			if k < 1 || k > 1000 {
				t.Fatalf("s=%v: rank %d out of [1,1000]", s, k)
			}
		}
	}
}

func TestZipfMatchesAnalyticDistribution(t *testing.T) {
	src := New(2)
	const n, s, draws = 50, 0.8, 500000
	z := NewZipf(src, n, s)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[z.Rank()]++
	}
	want := ZipfWeights(n, s)
	for rank := 1; rank <= n; rank++ {
		got := float64(counts[rank]) / draws
		w := want[rank-1]
		tol := 4*math.Sqrt(w*(1-w)/draws) + 1e-4
		if math.Abs(got-w) > tol {
			t.Errorf("rank %d: freq %.5f, want %.5f (tol %.5f)", rank, got, w, tol)
		}
	}
}

func TestZipfExponentZeroIsUniform(t *testing.T) {
	src := New(3)
	const n, draws = 20, 200000
	z := NewZipf(src, n, 0)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[z.Rank()]++
	}
	want := float64(draws) / n
	for rank := 1; rank <= n; rank++ {
		if math.Abs(float64(counts[rank])-want) > 5*math.Sqrt(want) {
			t.Errorf("rank %d: %d draws, want ~%.0f", rank, counts[rank], want)
		}
	}
}

func TestZipfExponentOne(t *testing.T) {
	// s == 1 is the harmonic special case; the stable helpers must not
	// divide by zero.
	src := New(4)
	z := NewZipf(src, 100, 1)
	top, rest := 0, 0
	for i := 0; i < 100000; i++ {
		if z.Rank() == 1 {
			top++
		} else {
			rest++
		}
	}
	want := ZipfWeights(100, 1)[0]
	got := float64(top) / 100000
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("rank-1 frequency %v, want ~%v", got, want)
	}
}

func TestZipfSingleElement(t *testing.T) {
	z := NewZipf(New(5), 1, 1.2)
	for i := 0; i < 100; i++ {
		if z.Rank() != 1 {
			t.Fatal("Zipf over a single rank must always return 1")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero n":     func() { NewZipf(New(1), 0, 1) },
		"negative s": func() { NewZipf(New(1), 10, -0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestZipfWeightsNormalized(t *testing.T) {
	for _, s := range []float64{0, 0.8, 1, 2} {
		w := ZipfWeights(200, s)
		var sum float64
		for i, v := range w {
			if v <= 0 {
				t.Fatalf("s=%v: weight[%d] non-positive", s, i)
			}
			if i > 0 && v > w[i-1]+1e-12 {
				t.Fatalf("s=%v: weights not non-increasing at %d", s, i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("s=%v: weights sum to %v", s, sum)
		}
	}
}

func BenchmarkZipfRank(b *testing.B) {
	z := NewZipf(New(1), 100000, 0.8)
	for i := 0; i < b.N; i++ {
		z.Rank()
	}
}
