package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	collisions := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("split streams collided %d/1000 times", collisions)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(9)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(12)
	const lambda, n = 2.5, 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64(lambda)
	}
	if mean := sum / n; math.Abs(mean-1/lambda) > 0.01 {
		t.Fatalf("exp mean = %v, want ~%v", mean, 1/lambda)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(13)
	for _, mean := range []float64{0.3, 3, 20, 100, 2000} {
		const n = 50000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sum2 += v * v
		}
		m := sum / n
		v := sum2/n - m*m
		if math.Abs(m-mean) > 4*math.Sqrt(mean/n)+0.6 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(v-mean)/mean > 0.1 {
			t.Errorf("Poisson(%v) variance = %v", mean, v)
		}
	}
}

func TestPoissonZeroAndNegativeMean(t *testing.T) {
	r := New(14)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	if got := r.Poisson(-5); got != 0 {
		t.Errorf("Poisson(-5) = %d", got)
	}
}

func TestLogNormalMoments(t *testing.T) {
	r := New(15)
	// Paper's lifetime parameterization: mean 600 s, variance = mean/2
	// in minutes => stddev ~134 s; here we test the generic contract.
	const mean, stddev, n = 600.0, 300.0, 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.LogNormal(mean, stddev)
		if v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
		sum += v
		sum2 += v * v
	}
	m := sum / n
	sd := math.Sqrt(sum2/n - m*m)
	if math.Abs(m-mean)/mean > 0.02 {
		t.Errorf("lognormal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(sd-stddev)/stddev > 0.05 {
		t.Errorf("lognormal stddev = %v, want ~%v", sd, stddev)
	}
}

func TestLogNormalZeroStddev(t *testing.T) {
	if got := New(1).LogNormal(42, 0); got != 42 {
		t.Fatalf("LogNormal(42, 0) = %v, want 42", got)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(16)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 10); v < 10 {
			t.Fatalf("Pareto below minimum: %v", v)
		}
	}
}

func TestWeibullPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if v := r.Weibull(1.5, 100); v < 0 {
			t.Fatalf("Weibull negative: %v", v)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(18)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	if frac := float64(trues) / n; math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkPoissonSmallMean(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Poisson(0.3)
	}
}

func TestSubSeedDeterministicAndPure(t *testing.T) {
	a := SubSeed(42, 7, 9)
	b := SubSeed(42, 7, 9)
	if a != b {
		t.Fatalf("SubSeed not deterministic: %x vs %x", a, b)
	}
	// Purity: deriving other substreams in between must not change it.
	_ = SubSeed(42, 1)
	_ = SubSeed(99, 7, 9)
	if c := SubSeed(42, 7, 9); c != a {
		t.Fatalf("SubSeed depends on call history: %x vs %x", c, a)
	}
}

func TestSubSeedDistinctCoordinates(t *testing.T) {
	seen := make(map[uint64][2]uint64)
	for i := uint64(0); i < 512; i++ {
		for j := uint64(0); j < 64; j++ {
			s := SubSeed(1, i, j)
			if prev, dup := seen[s]; dup {
				t.Fatalf("collision: (%d,%d) and (%d,%d) -> %x", i, j, prev[0], prev[1], s)
			}
			seen[s] = [2]uint64{i, j}
		}
	}
	if SubSeed(1, 2, 3) == SubSeed(1, 3, 2) {
		t.Fatal("SubSeed ignores coordinate order")
	}
	if SubSeed(1, 2) == SubSeed(1, 2, 0) {
		t.Fatal("SubSeed ignores a trailing zero coordinate")
	}
	if SubSeed(1) == SubSeed(2) {
		t.Fatal("SubSeed ignores the base seed")
	}
}

func TestSubstreamDecorrelated(t *testing.T) {
	// Neighboring coordinates must yield streams with no obvious bias:
	// the mean of pooled uniform draws stays near 1/2.
	var sum float64
	const streams, draws = 64, 256
	for i := uint64(0); i < streams; i++ {
		src := Substream(7, i)
		for d := 0; d < draws; d++ {
			sum += src.Float64()
		}
	}
	if mean := sum / (streams * draws); math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("pooled substream mean = %v, want ~0.5", mean)
	}
}
