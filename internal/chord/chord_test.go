package chord

import (
	"testing"

	"ddpolice/internal/rng"
)

func ring(t *testing.T, n int) *Ring {
	t.Helper()
	r, err := New(n, DefaultConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, DefaultConfig(), rng.New(1)); err == nil {
		t.Error("size 1 accepted")
	}
	cfg := DefaultConfig()
	cfg.SuccessorListLen = 0
	if _, err := New(10, cfg, rng.New(1)); err == nil {
		t.Error("zero successor list accepted")
	}
	cfg = DefaultConfig()
	cfg.CapacityPerMin = 0
	if _, err := New(10, cfg, rng.New(1)); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestLookupReachesResponsibleNode(t *testing.T) {
	r := ring(t, 256)
	src := rng.New(2)
	for i := 0; i < 500; i++ {
		r.Tick()
		key := NodeID(src.Uint64())
		res := r.Lookup(src.Intn(256), key)
		if !res.OK {
			t.Fatalf("lookup %d failed", i)
		}
		// The owner must be the key's successor.
		want := r.successorOf(key)
		if res.Owner != want {
			t.Fatalf("lookup %d: owner %d, want %d", i, res.Owner, want)
		}
	}
	st := r.Stats()
	if st.Failures != 0 {
		t.Fatalf("failures = %d", st.Failures)
	}
	// Hop counts must be logarithmic: comfortably under log2(n) + slack.
	if st.MeanHops > 10 {
		t.Fatalf("mean hops = %v on a 256-node ring", st.MeanHops)
	}
	if st.MeanHops < 1 {
		t.Fatalf("mean hops = %v, implausibly small", st.MeanHops)
	}
}

func TestLookupHopsScaleLogarithmically(t *testing.T) {
	src := rng.New(3)
	meanAt := func(n int) float64 {
		r, err := New(n, DefaultConfig(), rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			r.Tick()
			r.Lookup(src.Intn(n), NodeID(src.Uint64()))
		}
		return r.Stats().MeanHops
	}
	small, large := meanAt(64), meanAt(2048)
	if large <= small {
		t.Fatalf("hops did not grow with ring size: %v vs %v", small, large)
	}
	// 32x more nodes must cost ~5 extra hops, not 32x more.
	if large > small*3 {
		t.Fatalf("hops grew super-logarithmically: %v -> %v", small, large)
	}
}

func TestLookupSurvivesOfflineNodes(t *testing.T) {
	r := ring(t, 300)
	src := rng.New(5)
	// Take 25% of the ring offline.
	for p := 0; p < 300; p += 4 {
		r.SetOnline(p, false)
	}
	okCount := 0
	for i := 0; i < 400; i++ {
		r.Tick()
		origin := src.Intn(300)
		if !r.Online(origin) {
			continue
		}
		if res := r.Lookup(origin, NodeID(src.Uint64())); res.OK {
			okCount++
			if !r.Online(indexOf(r, res.Owner)) {
				t.Fatal("lookup resolved to an offline owner")
			}
		}
	}
	if okCount < 250 {
		t.Fatalf("only %d lookups survived 25%% churn", okCount)
	}
}

// indexOf maps a ring position back to the external index.
func indexOf(r *Ring, pos int) int {
	for p, q := range r.index {
		if q == pos {
			return p
		}
	}
	return -1
}

func TestSaturationDropsLookups(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityPerMin = 60 // one token per tick per node
	r, err := New(100, cfg, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	r.Tick()
	// Many lookups within one tick: capacity must bite.
	for i := 0; i < 2000; i++ {
		r.Lookup(src.Intn(100), NodeID(src.Uint64()))
	}
	st := r.Stats()
	if st.Drops == 0 {
		t.Fatal("no capacity drops under a within-tick burst")
	}
	r.Tick()
	res := r.Lookup(0, NodeID(src.Uint64()))
	if !res.OK {
		t.Fatal("refilled ring still failing")
	}
}

func TestOfflineOriginFails(t *testing.T) {
	r := ring(t, 50)
	r.SetOnline(7, false)
	if res := r.Lookup(7, 12345); res.OK {
		t.Fatal("offline origin routed a lookup")
	}
}

func TestExpectedHops(t *testing.T) {
	if ExpectedHops(1024) <= ExpectedHops(16) {
		t.Fatal("expected hops must grow with n")
	}
}
