// Package chord implements a compact Chord-style structured overlay —
// the paper's §5 future work ("studying overlay DDoS in structured P2P
// systems [40]"). Where unstructured flooding amplifies each bogus
// query by the flood-ball size, a DHT lookup costs O(log n) hops, so
// the same agent generation rate buys an attacker orders of magnitude
// less damage. The Ring here is simulation-grade: finger tables are
// computed from the membership directly (no join/stabilize protocol),
// lookups are routed hop by hop through capacity-limited nodes, and a
// successor list provides the customary resilience to failed hops.
package chord

import (
	"fmt"
	"math/bits"
	"sort"

	"ddpolice/internal/rng"
)

// NodeID is a position on the 64-bit identifier ring.
type NodeID uint64

// Config parameterizes a ring.
type Config struct {
	// SuccessorListLen is the number of successors each node can fall
	// back to when a finger points at an offline node (Chord's r).
	SuccessorListLen int
	// CapacityPerMin is each node's lookup-processing rate, matching
	// the unstructured simulator's per-peer capacity.
	CapacityPerMin float64
}

// DefaultConfig mirrors the unstructured simulator's operating point.
func DefaultConfig() Config {
	return Config{SuccessorListLen: 8, CapacityPerMin: 1000}
}

// node is one ring participant.
type node struct {
	id      NodeID
	online  bool
	fingers []int // indexes into Ring.nodes, for id + 2^i
	succ    []int // successor list indexes
}

// Ring is a static Chord ring over n nodes.
type Ring struct {
	cfg     Config
	nodes   []node    // sorted by id
	index   []int     // peer p (external index) -> position in nodes
	perMin  []float64 // remaining capacity tokens per tick, by position
	perTick float64

	// Stats.
	lookups  uint64
	failures uint64
	hopTotal uint64
	drops    uint64
}

// New builds a ring of n nodes with deterministic random identifiers.
func New(n int, cfg Config, src *rng.Source) (*Ring, error) {
	if n < 2 {
		return nil, fmt.Errorf("chord: ring size %d", n)
	}
	if cfg.SuccessorListLen < 1 {
		return nil, fmt.Errorf("chord: successor list %d", cfg.SuccessorListLen)
	}
	if cfg.CapacityPerMin <= 0 {
		return nil, fmt.Errorf("chord: capacity %v", cfg.CapacityPerMin)
	}
	r := &Ring{cfg: cfg}
	seen := make(map[NodeID]bool, n)
	for len(r.nodes) < n {
		id := NodeID(src.Uint64())
		if seen[id] {
			continue
		}
		seen[id] = true
		r.nodes = append(r.nodes, node{id: id, online: true})
	}
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i].id < r.nodes[j].id })
	r.index = make([]int, n)
	for i := range r.index {
		r.index[i] = i
	}
	r.buildTables()
	r.perTick = cfg.CapacityPerMin / 60
	r.perMin = make([]float64, n)
	for i := range r.perMin {
		r.perMin[i] = r.perTick
	}
	return r, nil
}

// buildTables computes finger tables and successor lists.
func (r *Ring) buildTables() {
	n := len(r.nodes)
	for i := range r.nodes {
		nd := &r.nodes[i]
		nd.fingers = nd.fingers[:0]
		for b := 0; b < 64; b++ {
			target := nd.id + (NodeID(1) << b)
			nd.fingers = append(nd.fingers, r.successorOf(target))
		}
		nd.succ = nd.succ[:0]
		for s := 1; s <= r.cfg.SuccessorListLen && s < n; s++ {
			nd.succ = append(nd.succ, (i+s)%n)
		}
	}
}

// successorOf returns the position of the first node with id >= target
// (wrapping).
func (r *Ring) successorOf(target NodeID) int {
	lo, hi := 0, len(r.nodes)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.nodes[mid].id < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.nodes) {
		return 0
	}
	return lo
}

// NumNodes returns the ring size.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// SetOnline toggles node p (external index).
func (r *Ring) SetOnline(p int, on bool) { r.nodes[r.index[p]].online = on }

// Online reports node p's state.
func (r *Ring) Online(p int) bool { return r.nodes[r.index[p]].online }

// Tick refills every node's per-tick lookup budget.
func (r *Ring) Tick() {
	for i := range r.perMin {
		r.perMin[i] = r.perTick
	}
}

// distance returns the clockwise distance from a to b on the ring.
func distance(a, b NodeID) NodeID { return b - a }

// LookupResult reports one routed lookup.
type LookupResult struct {
	OK    bool
	Hops  int
	Owner int // position of the responsible node (valid when OK)
}

// Lookup routes a key from origin (external index) to the key's
// successor, consuming one capacity token per intermediate node. It
// fails when routing stalls (all candidate hops offline) or a node on
// the path is saturated.
func (r *Ring) Lookup(origin int, key NodeID) LookupResult {
	r.lookups++
	cur := r.index[origin]
	if !r.nodes[cur].online {
		r.failures++
		return LookupResult{}
	}
	ownerPos := r.successorOf(key)
	// Owner may be offline: its first online successor takes over.
	ownerPos, ok := r.firstOnlineFrom(ownerPos)
	if !ok {
		r.failures++
		return LookupResult{}
	}
	owner := r.nodes[ownerPos].id
	hops := 0
	for r.nodes[cur].id != owner {
		next, ok := r.nextHop(cur, key)
		if !ok {
			r.failures++
			return LookupResult{Hops: hops}
		}
		cur = next
		hops++
		if hops > 2*len(r.nodes) {
			r.failures++ // routing loop guard; cannot happen with sane tables
			return LookupResult{Hops: hops}
		}
		// The hop consumes processing capacity; a saturated node drops
		// the lookup (the DDoS damage mechanism).
		if r.perMin[cur] < 1 {
			r.drops++
			r.failures++
			return LookupResult{Hops: hops}
		}
		r.perMin[cur]--
	}
	r.hopTotal += uint64(hops)
	return LookupResult{OK: true, Hops: hops, Owner: cur}
}

// nextHop picks the closest preceding online finger, falling back to
// the successor list.
func (r *Ring) nextHop(cur int, key NodeID) (int, bool) {
	nd := &r.nodes[cur]
	target := r.nodes[r.successorOf(key)].id
	bestDist := distance(nd.id, target)
	best := -1
	// Closest preceding finger: maximize progress without overshooting.
	for b := 63; b >= 0; b-- {
		f := nd.fingers[b]
		fn := &r.nodes[f]
		if !fn.online || f == cur {
			continue
		}
		d := distance(nd.id, fn.id)
		if d > 0 && d <= bestDist {
			best = f
			break
		}
	}
	if best >= 0 {
		return best, true
	}
	// Fall back to the first online successor.
	for _, s := range nd.succ {
		if r.nodes[s].online {
			return s, true
		}
	}
	return 0, false
}

// firstOnlineFrom scans clockwise for an online node.
func (r *Ring) firstOnlineFrom(pos int) (int, bool) {
	n := len(r.nodes)
	for i := 0; i < n; i++ {
		p := (pos + i) % n
		if r.nodes[p].online {
			return p, true
		}
	}
	return 0, false
}

// Stats summarizes routed lookups.
type Stats struct {
	Lookups  uint64
	Failures uint64
	Drops    uint64 // failures caused by saturated nodes
	MeanHops float64
}

// Stats returns cumulative counters.
func (r *Ring) Stats() Stats {
	st := Stats{Lookups: r.lookups, Failures: r.failures, Drops: r.drops}
	if ok := r.lookups - r.failures; ok > 0 {
		st.MeanHops = float64(r.hopTotal) / float64(ok)
	}
	return st
}

// ExpectedHops returns the theoretical O(log2 n / 2) hop count.
func ExpectedHops(n int) float64 {
	return float64(bits.Len(uint(n))) / 2
}
