package ddclock_test

import (
	"testing"

	"ddpolice/internal/lint/analysis"
	"ddpolice/internal/lint/analysistest"
	"ddpolice/internal/lint/ddclock"
	"ddpolice/internal/lint/load"
)

func TestDDClock(t *testing.T) {
	analysistest.Run(t, ddclock.Analyzer, "../testdata/src/clockbad", "ddpolice/internal/sim/clockfixture")
}

// The same violations under a live-edge import path are out of scope:
// gnet and telemetry are allowed to read wall clocks.
func TestDDClockOutOfScope(t *testing.T) {
	pkg, err := load.Dir("../testdata/src/clockbad", "ddpolice/internal/telemetry/clockfixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(ddclock.Analyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics outside the deterministic scope, got %d: %v", len(diags), diags)
	}
}
