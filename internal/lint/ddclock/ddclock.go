// Package ddclock forbids wall-clock reads in the deterministic
// packages. The byte-identity matrices (DESIGN.md §12–§17) only hold
// because simulated time flows from the tick loop; one time.Now in a
// journal stamp or a trace span breaks replay equality in a way the
// runtime tests catch late and this analyzer catches at lint time.
// Code on the live edges that genuinely needs wall time takes it
// through an injectable Clock (internal/gnet/clock.go) or lives in a
// package outside the deterministic set.
package ddclock

import (
	"go/ast"
	"go/types"

	"ddpolice/internal/lint/analysis"
	"ddpolice/internal/lint/scope"
)

// forbidden is the set of time-package functions that read or arm the
// wall clock. Types (time.Time, time.Duration) and pure conversions
// (time.Unix, time.Duration arithmetic) stay legal: values may be
// carried through deterministic code, they just may not originate
// there.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
}

var Analyzer = &analysis.Analyzer{
	Name: "ddclock",
	Doc:  "forbid wall-clock reads (time.Now etc.) in the deterministic packages; inject a Clock or thread tick time instead",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.InDeterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !forbidden[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"wall clock: time.%s in deterministic package %s; use the injectable Clock or the tick's logical time",
				fn.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}
