// Package lint assembles the ddlint analyzer suite — the repo's
// determinism invariants as compile-time checks (DESIGN.md §18).
package lint

import (
	"ddpolice/internal/lint/analysis"
	"ddpolice/internal/lint/ddallow"
	"ddpolice/internal/lint/ddclock"
	"ddpolice/internal/lint/ddmaporder"
	"ddpolice/internal/lint/ddnilgate"
	"ddpolice/internal/lint/ddoutfile"
	"ddpolice/internal/lint/ddrand"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ddallow.Analyzer,
		ddclock.Analyzer,
		ddmaporder.Analyzer,
		ddnilgate.Analyzer,
		ddoutfile.Analyzer,
		ddrand.Analyzer,
	}
}
