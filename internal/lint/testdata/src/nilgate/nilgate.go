// Package journal is a ddnilgate fixture standing in for the real
// plane package: analysistest loads it under the import path
// ddpolice/internal/journal, which puts the local type Journal under
// the nil-gate contract.
package journal

import "sync"

type Journal struct {
	mu     sync.Mutex
	events []int
	limit  int
}

// Record is the canonical gate: guard first, then dereference.
func (j *Journal) Record(e int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, e)
}

// Len guards through a compound condition; the tail of the || chain
// runs only when the receiver is non-nil.
func (j *Journal) Len() int {
	if j == nil || j.limit == 0 {
		return 0
	}
	return len(j.events)
}

// Tail needs no guard of its own: its first receiver use delegates to
// a method already proven nil-safe.
func (j *Journal) Tail(n int) int {
	j.Record(n)
	return n
}

func (j *Journal) Bad() int { // want "nil-receiver"
	return len(j.events)
}

// BadDelegate reaches an unexported helper that is itself unsafe; the
// finding lands on the exported entry point.
func (j *Journal) BadDelegate() { // want "nil-receiver"
	j.flush()
}

// flush is unexported: not a finding itself, but poisons exported
// callers.
func (j *Journal) flush() {
	j.events = nil
}

// ElseForm dereferences only in the non-nil branch.
func (j *Journal) ElseForm() int {
	if j == nil {
		return 0
	} else {
		return len(j.events)
	}
}

// NotNilForm guards with the && body form.
func (j *Journal) NotNilForm() int {
	n := 0
	if j != nil && j.limit > 0 {
		n = len(j.events)
	}
	return n
}

// ValueOnly never dereferences: storing, passing, and comparing the
// receiver are safe on nil.
func (j *Journal) ValueOnly(sink *[]*Journal) bool {
	*sink = append(*sink, j)
	return j == nil
}

//ddlint:allow nilgate -- reviewed: fixture method, caller constructs the receiver unconditionally
func (j *Journal) Allowed() int {
	return len(j.events)
}
