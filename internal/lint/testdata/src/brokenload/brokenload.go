// Package brokenload does not type-check. It exists so the regression
// tests can prove a lint run that cannot load a package exits nonzero
// instead of silently skipping it.
package brokenload

func Broken() int {
	return "not an int"
}
