package clockfixture

import wall "time"

// A renamed import does not hide the read: detection is type-based,
// not import-name-based.
func renamed() wall.Time {
	return wall.Now() // want "wall clock"
}

var _ = renamed
