// Package clockfixture seeds ddclock violations. analysistest loads
// it under the import path ddpolice/internal/sim/clockfixture so the
// deterministic-package scope applies.
package clockfixture

import "time"

// Tick shows the clean idiom: logical time threaded as a value.
func Tick(now float64) float64 { return now + 1 }

func bad() time.Time {
	return time.Now() // want "wall clock"
}

func sinceBad(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall clock"
}

func timerBad() *time.Timer {
	return time.NewTimer(time.Second) // want "wall clock"
}

func tickerBad() {
	tk := time.NewTicker(time.Second) // want "wall clock"
	defer tk.Stop()
	<-time.After(time.Second) // want "wall clock"
}

// Referencing the function as a value is a read source too.
var nowFn = time.Now // want "wall clock"

func allowedAbove() time.Time {
	//ddlint:allow clock -- live telemetry edge: feeds a stage timer, never a committed stream
	return time.Now()
}

func allowedInline() time.Time {
	return time.Now() //ddlint:allow clock -- live edge probe, never journaled
}

// Clean: carrying and transforming time values is fine; only reading
// the wall clock is banned.
func double(d time.Duration) time.Duration { return d * 2 }

func use() {
	_ = bad()
	_ = sinceBad(time.Time{})
	_ = timerBad()
	tickerBad()
	_ = nowFn
	_ = allowedAbove()
	_ = allowedInline()
	_ = double(time.Second)
}
