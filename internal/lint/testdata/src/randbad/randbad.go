// Package randbad seeds ddrand violations. cmd/ddlint's nonzero-exit
// regression test also points at this package by its on-disk testdata
// path, so it must compile standalone.
package randbad

import (
	"math/rand"

	"ddpolice/internal/rng"
)

func Intn(n int) int {
	return rand.Intn(n) // want "math/rand"
}

func NewStream(seed int64) *rand.Rand { // want "math/rand"
	return rand.New(rand.NewSource(seed)) // want "math/rand" "math/rand"
}

func Allowed() float64 {
	//ddlint:allow rand -- reviewed: fixture jitter, never reaches a committed stream
	return rand.Float64()
}

// Clean: streams derived through internal/rng's SubSeed discipline.
func Clean(seed uint64) uint64 {
	r := rng.New(rng.SubSeed(seed, 1))
	return r.Uint64()
}
