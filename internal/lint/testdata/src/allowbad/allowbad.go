// Package allowbad seeds malformed //ddlint:allow directives for the
// ddallow analyzer: the escape hatch itself must be well-formed.
package allowbad

//ddlint:allow // want "bare //ddlint:allow"
func a() {}

//ddlint:allow clock // want "a reviewed reason is required"
func b() {}

//ddlint:allow clock -- // want "a reviewed reason is required"
func c() {}

//ddlint:allow frobnicate -- because the moon phase says so // want "unknown ddlint check"
func d() {}

//ddlint:allow clock -- reviewed: exercises the well-formed path, suppresses nothing here
func e() {}

func use() { a(); b(); c(); d(); e() }
