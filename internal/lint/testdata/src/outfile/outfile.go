// Package lintfixture seeds ddoutfile violations. analysistest loads
// it under ddpolice/cmd/lintfixture so the cmd-tool scope applies.
package lintfixture

import (
	"fmt"
	"io"
	"os"

	"ddpolice/internal/outfile"
)

func Bad(path string) error {
	f, err := os.Create(path) // want "os.Create"
	if err != nil {
		return err
	}
	defer f.Close() // want "unchecked Close"
	fmt.Fprintln(f, "result")
	return nil
}

func BadOpenFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644) // want "os.OpenFile"
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "result")
	return f.Close()
}

// CleanRead: read-side files are out of scope; an unchecked Close
// after reading loses nothing.
func CleanRead(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, _ := f.Read(buf)
	return buf[:n], nil
}

// CleanReadOnlyOpenFile: O_RDONLY is statically visible in the flags.
func CleanReadOnlyOpenFile(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDONLY, 0)
}

// CleanOutfile is the house idiom: every byte flows through the
// sticky-error writer and a failed flush becomes a nonzero exit.
func CleanOutfile(path string) error {
	return outfile.Write(path, func(w io.Writer) error {
		_, err := fmt.Fprintln(w, "result")
		return err
	})
}

// CheckedClose: with a reviewed allow on the create, a Close whose
// error is consumed stays silent.
func CheckedClose(path string) error {
	//ddlint:allow outfile -- reviewed: fixture demonstrates a hand-checked Close without the wrapper
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := fmt.Fprintln(f, "x")
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
