// Package maporderfixture seeds ddmaporder violations: map ranges
// whose bodies reach order-dependent sinks, next to the sorted-keys
// idiom that stays silent.
package maporderfixture

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ddpolice/internal/journal"
)

func BadFprintf(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration order"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func BadJournal(j *journal.Journal, m map[int]float64) {
	for id, v := range m { // want "map iteration order"
		j.Record(journal.Event{Peer: int64(id), Value: v})
	}
}

func BadBuilder(m map[string]bool) string {
	var b strings.Builder
	for k := range m { // want "map iteration order"
		b.WriteString(k)
	}
	return b.String()
}

func BadNested(w io.Writer, m map[string][]int) {
	for k, vs := range m { // want "map iteration order"
		for _, v := range vs {
			fmt.Fprintln(w, k, v)
		}
	}
}

// CleanSorted is the house idiom: collect, sort, then emit.
func CleanSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// CleanAggregate: order-independent reduction inside a map range is
// fine.
func CleanAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// CleanSlice: ranging a slice is never order-dependent.
func CleanSlice(w io.Writer, vs []int) {
	for _, v := range vs {
		fmt.Fprintln(w, v)
	}
}

func Allowed(w io.Writer, m map[string]int) {
	//ddlint:allow maporder -- reviewed: interactive debug dump, never a committed artifact
	for k := range m {
		fmt.Fprintln(w, k)
	}
}
