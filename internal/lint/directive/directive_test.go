package directive

import (
	"go/parser"
	"go/token"
	"testing"
)

func parseSrc(t *testing.T, src string) []Allow {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return Parse(fset, f)
}

func TestParse(t *testing.T) {
	src := `package p

//ddlint:allow clock -- live edge stage timer
func a() {}

//ddlint:allow clock
func b() {}

//ddlint:allow
func c() {}

//ddlint:allow maporder -- debug dump // want "unused"
func d() {}

//ddlint:allowed nothing to see
func e() {}

// ddlint:allow clock -- leading space disqualifies, like go:build
func f() {}
`
	allows := parseSrc(t, src)
	if len(allows) != 4 {
		t.Fatalf("expected 4 directives, got %d: %+v", len(allows), allows)
	}
	if !allows[0].WellFormed() || allows[0].Check != "clock" || allows[0].Reason != "live edge stage timer" {
		t.Errorf("first directive misparsed: %+v", allows[0])
	}
	if allows[1].WellFormed() || allows[1].Check != "clock" || allows[1].HasSep {
		t.Errorf("bare directive must not be well-formed: %+v", allows[1])
	}
	if allows[2].WellFormed() || allows[2].Check != "" {
		t.Errorf("empty directive must not be well-formed: %+v", allows[2])
	}
	// The trailing // want assertion is stripped before parsing.
	if !allows[3].WellFormed() || allows[3].Reason != "debug dump" {
		t.Errorf("want-suffixed directive misparsed: %+v", allows[3])
	}
}

func TestUnknownCheckNotWellFormed(t *testing.T) {
	allows := parseSrc(t, "package p\n\n//ddlint:allow frobnicate -- reason\nfunc a() {}\n")
	if len(allows) != 1 {
		t.Fatalf("expected 1 directive, got %d", len(allows))
	}
	if allows[0].WellFormed() {
		t.Fatalf("unknown check must not be well-formed: %+v", allows[0])
	}
}
