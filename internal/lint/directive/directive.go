// Package directive parses ddlint's escape-hatch comments.
//
// The only directive is the allow:
//
//	//ddlint:allow <check> -- <reason>
//
// where <check> names the analyzer without its dd prefix (clock, rand,
// maporder, nilgate, outfile) and <reason> is a non-empty free-text
// justification. The reason is mandatory by design: an allow is a
// reviewed decision, and the review has to survive in the source. A
// bare allow — no "--", or an empty reason — parses but is not
// WellFormed, so it suppresses nothing and the ddallow analyzer
// reports it.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

const prefix = "ddlint:allow"

// Known is the set of valid check tokens, one per enforcing analyzer.
var Known = map[string]bool{
	"clock":    true,
	"rand":     true,
	"maporder": true,
	"nilgate":  true,
	"outfile":  true,
}

// Allow is one parsed //ddlint:allow directive.
type Allow struct {
	Line   int    // 1-based line of the comment
	Pos    token.Pos
	Check  string // first token after ddlint:allow ("" if absent)
	Reason string // text after " -- " ("" if absent)
	HasSep bool   // the "--" separator was present
}

// WellFormed reports whether the directive can suppress a finding: a
// known check name and a non-empty reason behind the separator.
func (a Allow) WellFormed() bool {
	return Known[a.Check] && a.HasSep && a.Reason != ""
}

// Parse extracts every allow directive from a file's comments, keyed
// to the line each comment sits on.
func Parse(fset *token.FileSet, f *ast.File) []Allow {
	var out []Allow
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := directiveText(c.Text)
			if !ok {
				continue
			}
			a := parseAllow(text)
			a.Pos = c.Pos()
			a.Line = fset.Position(c.Pos()).Line
			out = append(out, a)
		}
	}
	return out
}

// directiveText strips the comment markers and reports whether the
// comment is a ddlint:allow directive. Like go:build directives, the
// form is //ddlint:allow with no space after the slashes; /* */
// comments are not directives.
func directiveText(comment string) (string, bool) {
	if !strings.HasPrefix(comment, "//") {
		return "", false
	}
	body := comment[2:]
	if !strings.HasPrefix(body, prefix) {
		return "", false
	}
	rest := body[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //ddlint:allowed — not ours
	}
	// A trailing "// want ..." is an analysistest assertion riding on
	// the directive line in lint fixtures, not part of the directive.
	if at := strings.Index(rest, "// want"); at >= 0 {
		rest = rest[:at]
	}
	return strings.TrimSpace(rest), true
}

func parseAllow(rest string) Allow {
	var a Allow
	if at := strings.Index(rest, "--"); at >= 0 {
		a.HasSep = true
		a.Reason = strings.TrimSpace(rest[at+2:])
		rest = strings.TrimSpace(rest[:at])
	}
	fields := strings.Fields(rest)
	if len(fields) > 0 {
		a.Check = fields[0]
	}
	return a
}
