// Package scope names the package sets ddlint's house rules apply to.
// One list, shared by the analyzers and quoted in DESIGN.md §18, so
// "the deterministic packages" means the same thing to the linter, the
// byte-identity test matrices, and the documentation.
package scope

import "strings"

// Deterministic lists the packages whose committed output (events,
// journals, traces, results) must be byte-identical across replays,
// shard counts, and plane on/off. Everything here runs on simulated
// time and seeded randomness; wall clocks and unseeded rand are build
// errors. The live edges (gnet, telemetry, metricsrv) are deliberately
// absent — they stamp wall-clock time by design.
var Deterministic = []string{
	"ddpolice/internal/sim",
	"ddpolice/internal/flood",
	"ddpolice/internal/police",
	"ddpolice/internal/trace",
	"ddpolice/internal/journal",
	"ddpolice/internal/overlay",
	"ddpolice/internal/overload",
}

// CmdPrefix is the import-path prefix of the command-line tools, whose
// result artifacts must flow through internal/outfile's sticky-error
// writer.
const CmdPrefix = "ddpolice/cmd/"

// RNG is the one package allowed to touch raw generator construction;
// everyone else derives streams via rng.SubSeed / Source.Split.
const RNG = "ddpolice/internal/rng"

// InDeterministic reports whether pkgPath is one of the deterministic
// packages or a package nested under one.
func InDeterministic(pkgPath string) bool {
	for _, p := range Deterministic {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// InCmd reports whether pkgPath is one of the cmd tools.
func InCmd(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, CmdPrefix)
}
