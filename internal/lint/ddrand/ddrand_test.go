package ddrand_test

import (
	"testing"

	"ddpolice/internal/lint/analysis"
	"ddpolice/internal/lint/analysistest"
	"ddpolice/internal/lint/ddrand"
	"ddpolice/internal/lint/load"
)

func TestDDRand(t *testing.T) {
	analysistest.Run(t, ddrand.Analyzer, "../testdata/src/randbad", "ddpolice/internal/lint/testdata/src/randbad")
}

// internal/rng is the one package allowed to own raw generator
// mechanics.
func TestDDRandExemptsRNG(t *testing.T) {
	pkg, err := load.Dir("../testdata/src/randbad", "ddpolice/internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(ddrand.Analyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics inside internal/rng, got %d", len(diags))
	}
}
