// Package ddrand forbids math/rand outside internal/rng. Replay
// equality requires every random stream to be derived from the run
// seed through rng.SubSeed (order-independent) or Source.Split; the
// global math/rand generator is seeded from runtime entropy and shared
// across goroutines, and even a locally constructed rand.New(...)
// bypasses the substream-derivation discipline the sharded tick engine
// depends on. internal/rng is the single owner of raw generator
// mechanics.
package ddrand

import (
	"go/ast"

	"ddpolice/internal/lint/analysis"
	"ddpolice/internal/lint/scope"
)

var Analyzer = &analysis.Analyzer{
	Name: "ddrand",
	Doc:  "forbid math/rand outside internal/rng; derive streams with rng.SubSeed / rng.Source",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == scope.RNG {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(),
					"math/rand: %s.%s outside internal/rng; derive a deterministic stream with rng.SubSeed / rng.New",
					obj.Pkg().Path(), obj.Name())
			}
			return true
		})
	}
	return nil, nil
}
