// Package ddnilgate enforces the nil-gated plane contract on the
// optional observation planes (*journal.Journal, *trace.Tracer,
// *trace.Trace). The engine threads these as possibly-nil fields so a
// disabled plane costs one pointer check and — critically — so plane
// on/off cannot perturb the committed byte streams. That only holds if
// every exported method of a plane type is nil-receiver-safe: callers
// all over sim/police/gnet/metricsrv invoke plane methods without
// guarding, because the method itself is the gate.
//
// The analyzer proves the contract method by method. An exported
// pointer-receiver method on a plane type is nil-safe when, before any
// dereference of the receiver (field access, or a call to a method not
// itself proven safe), one of these holds:
//
//   - a dominating guard: `if recv == nil { return ... }` (possibly
//     `recv == nil || ...`), or the use sits inside an
//     `if recv != nil` body or the else-branch of a nil-check;
//   - the use is a call to a method of the same type already proven
//     nil-safe (delegation-first, e.g. Tail calling Events);
//   - the receiver is used only as a value (stored, compared, passed),
//     never dereferenced.
//
// Safety is computed as a fixpoint over the type's whole method set —
// unexported helpers included, since an exported method is only as
// safe as the helpers it calls before guarding. Methods that cannot be
// proven safe are findings; a reviewed //ddlint:allow nilgate with a
// reason is the escape hatch for shapes the proof cannot follow.
package ddnilgate

import (
	"go/ast"
	"go/token"
	"go/types"

	"ddpolice/internal/lint/analysis"
)

// planeTypes names the nil-gated types per defining package.
var planeTypes = map[string]map[string]bool{
	"ddpolice/internal/journal": {"Journal": true},
	"ddpolice/internal/trace":   {"Tracer": true, "Trace": true},
}

var Analyzer = &analysis.Analyzer{
	Name: "ddnilgate",
	Doc:  "exported methods on the nil-gated plane types (journal.Journal, trace.Tracer/Trace) must be nil-receiver-safe",
	Run:  run,
}

type status int

const (
	unknown status = iota
	safe
	unsafe
)

type method struct {
	decl *ast.FuncDecl
	recv types.Object // receiver variable, nil if unnamed
	st   status
}

func run(pass *analysis.Pass) (interface{}, error) {
	names := planeTypes[pass.Pkg.Path()]
	if len(names) == 0 {
		return nil, nil
	}
	// Collect the full method set per plane type, unexported included.
	methods := map[string]map[string]*method{} // type name -> method name -> info
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			tname := recvTypeName(fd.Recv.List[0].Type)
			if !names[tname] {
				continue
			}
			m := &method{decl: fd}
			if recvNames := fd.Recv.List[0].Names; len(recvNames) > 0 && recvNames[0].Name != "_" {
				m.recv = pass.TypesInfo.Defs[recvNames[0]]
			}
			if methods[tname] == nil {
				methods[tname] = map[string]*method{}
			}
			methods[tname][fd.Name.Name] = m
		}
	}
	for tname, set := range methods {
		fixpoint(pass, tname, set)
		for _, m := range set {
			if m.decl.Name.IsExported() && m.st != safe {
				pass.Reportf(m.decl.Name.Pos(),
					"nil-receiver: exported method (*%s).%s dereferences its receiver before a nil guard; a nil %s plane must be inert (guard `if %s == nil`, or delegate first to a nil-safe method)",
					tname, m.decl.Name.Name, tname, recvName(m))
			}
		}
	}
	return nil, nil
}

func recvName(m *method) string {
	if m.recv != nil {
		return m.recv.Name()
	}
	return "recv"
}

func recvTypeName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // generic receiver, not used by the planes
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// fixpoint resolves method safety until stable; anything still unknown
// (mutual recursion) is conservatively unsafe.
func fixpoint(pass *analysis.Pass, tname string, set map[string]*method) {
	for changed := true; changed; {
		changed = false
		for _, m := range set {
			if m.st != unknown {
				continue
			}
			if st := evaluate(pass, tname, set, m); st != unknown {
				m.st = st
				changed = true
			}
		}
	}
	for _, m := range set {
		if m.st == unknown {
			m.st = unsafe
		}
	}
}

// span is a half-open position range within which the receiver is
// known non-nil.
type span struct{ from, to token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.from && p < s.to }

// evaluate classifies one method: unsafe on the first unguarded
// dereference, unknown if safety hinges on a not-yet-resolved callee,
// safe otherwise.
func evaluate(pass *analysis.Pass, tname string, set map[string]*method, m *method) status {
	if m.recv == nil || m.decl.Body == nil {
		return safe // receiver never referenced
	}
	guards := guardedSpans(pass, m)
	result := safe
	walk(m.decl.Body, func(n ast.Node, stack []ast.Node) {
		if result == unsafe {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != m.recv {
			return
		}
		if inGuard(guards, id.Pos()) {
			return
		}
		switch classifyUse(pass, tname, set, id, stack) {
		case unsafe:
			result = unsafe
		case unknown:
			if result == safe {
				result = unknown
			}
		}
	})
	return result
}

// classifyUse decides whether one unguarded appearance of the receiver
// dereferences it. stack[len-1] is the ident's parent.
func classifyUse(pass *analysis.Pass, tname string, set map[string]*method, id *ast.Ident, stack []ast.Node) status {
	if len(stack) == 0 {
		return safe
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.StarExpr:
		return unsafe // *recv
	case *ast.SelectorExpr:
		if parent.X != id {
			return safe
		}
		// recv.Something: a call to a same-type method inherits that
		// method's status; a field access or method value is a deref.
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == parent {
				if callee, ok := pass.TypesInfo.Uses[parent.Sel].(*types.Func); ok && methodOf(callee, tname) {
					if peer := set[callee.Name()]; peer != nil {
						return peer.st
					}
				}
				return unsafe // method of another type via embedding, or unknown callee
			}
		}
		return unsafe
	default:
		return safe // value use: argument, composite literal, comparison, assignment
	}
}

func methodOf(fn *types.Func, tname string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == tname
}

// guardedSpans collects the regions where the receiver is proven
// non-nil by an explicit nil check.
func guardedSpans(pass *analysis.Pass, m *method) []span {
	var spans []span
	body := m.decl.Body
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if nilCheck := orOperand(pass, ifs.Cond, m.recv, token.EQL); nilCheck != nil {
			// `if recv == nil || ... { terminate }`: the rest of the
			// condition short-circuits behind the check, the else
			// branch is non-nil, and if the body terminates so is
			// everything after the if.
			spans = append(spans, span{nilCheck.End(), ifs.Cond.End()})
			if ifs.Else != nil {
				spans = append(spans, span{ifs.Else.Pos(), ifs.Else.End()})
			}
			if terminates(ifs.Body) {
				spans = append(spans, span{ifs.End(), body.End()})
			}
		}
		if nilCheck := andOperand(pass, ifs.Cond, m.recv); nilCheck != nil {
			// `if recv != nil && ... { ... }`: the body and the
			// condition's tail are non-nil regions.
			spans = append(spans, span{nilCheck.End(), ifs.Cond.End()})
			spans = append(spans, span{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return spans
}

func inGuard(spans []span, p token.Pos) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

// orOperand returns the `recv <op> nil` comparison appearing as the
// condition itself or as a leading operand of an || chain.
func orOperand(pass *analysis.Pass, cond ast.Expr, recv types.Object, op token.Token) ast.Expr {
	if cmp := nilCompare(pass, cond, recv, op); cmp != nil {
		return cmp
	}
	if b, ok := cond.(*ast.BinaryExpr); ok && b.Op == token.LOR {
		if cmp := orOperand(pass, b.X, recv, op); cmp != nil {
			return cmp
		}
	}
	return nil
}

// andOperand returns the `recv != nil` comparison appearing as the
// condition itself or as a leading operand of an && chain.
func andOperand(pass *analysis.Pass, cond ast.Expr, recv types.Object) ast.Expr {
	if cmp := nilCompare(pass, cond, recv, token.NEQ); cmp != nil {
		return cmp
	}
	if b, ok := cond.(*ast.BinaryExpr); ok && b.Op == token.LAND {
		if cmp := andOperand(pass, b.X, recv); cmp != nil {
			return cmp
		}
	}
	return nil
}

func nilCompare(pass *analysis.Pass, expr ast.Expr, recv types.Object, op token.Token) ast.Expr {
	b, ok := expr.(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return nil
	}
	if isRecv(pass, b.X, recv) && isNil(pass, b.Y) {
		return b
	}
	if isNil(pass, b.X) && isRecv(pass, b.Y, recv) {
		return b
	}
	return nil
}

func isRecv(pass *analysis.Pass, e ast.Expr, recv types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == recv
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilConst
}

// terminates reports whether a block always leaves the function:
// return, panic, or os.Exit as its final statement.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				return fun.Sel.Name == "Exit" || fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf"
			}
		}
	}
	return false
}

// walk traverses the AST carrying the ancestor stack (innermost last).
func walk(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
