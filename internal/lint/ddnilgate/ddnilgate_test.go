package ddnilgate_test

import (
	"testing"

	"ddpolice/internal/lint/analysis"
	"ddpolice/internal/lint/analysistest"
	"ddpolice/internal/lint/ddnilgate"
	"ddpolice/internal/lint/load"
)

func TestDDNilGate(t *testing.T) {
	analysistest.Run(t, ddnilgate.Analyzer, "../testdata/src/nilgate", "ddpolice/internal/journal")
}

// The contract binds the plane-defining packages only: an unrelated
// package defining its own type named Journal is not under it.
func TestDDNilGateScopedToPlanePackages(t *testing.T) {
	pkg, err := load.Dir("../testdata/src/nilgate", "ddpolice/internal/metricsrv/journalish")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(ddnilgate.Analyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics outside the plane packages, got %d", len(diags))
	}
}

// The real plane packages must satisfy their own contract — this is
// the live invariant, not a fixture.
func TestRealPlanesSatisfyContract(t *testing.T) {
	pkgs, err := load.Load("./internal/journal", "./internal/trace")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(ddnilgate.Analyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s", pkg.Fset.Position(d.Pos), d.Message)
		}
	}
}
