// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only
// framework. Fixtures live under testdata (so tier-1 go build/test
// never sees them) and are loaded under a caller-chosen import path,
// because several analyzers key their scope off the path shape
// (ddclock's deterministic list, ddoutfile's cmd/ prefix, ddnilgate's
// plane-defining packages).
//
// A want comment is a trailing comment on the offending line:
//
//	time.Now() // want "wall clock"
//
// Each quoted string must be a substring of some diagnostic on that
// line, every diagnostic must be matched by a want, and lines without
// wants must stay silent — both misses and false positives fail.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ddpolice/internal/lint/analysis"
	"ddpolice/internal/lint/load"
)

var wantRE = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)
var quoteRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads dir as a package with import path pkgPath, applies the
// analyzer, and asserts the diagnostics exactly match the fixture's
// want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg, err := load.Dir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(pkg)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		ok := false
		for i, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if pos.Filename == w.file && pos.Line == w.line && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s:%d: want diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("diagnostic: %s: %s", pkg.Fset.Position(d.Pos), d.Message)
		}
	}
}

type want struct {
	file   string
	line   int
	substr string
}

func collectWants(pkg *load.Package) []want {
	var wants []want
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The assertion may ride at the end of another comment
				// (a //ddlint:allow directive under test), so anchor on
				// the last "// want" in the raw comment text.
				at := strings.LastIndex(c.Text, "// want")
				if at < 0 {
					continue
				}
				text := strings.TrimSpace(c.Text[at+2:])
				m := wantRE.FindStringSubmatch(text)
				if m == nil || !strings.HasPrefix(text, "want") {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, q := range quoteRE.FindAllStringSubmatch(m[1], -1) {
					wants = append(wants, want{file: name, line: line, substr: unescape(q[1])})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

func unescape(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	return strings.ReplaceAll(s, `\\`, `\`)
}

// Pos formats a token position for test failure messages.
func Pos(fset *token.FileSet, p token.Pos) string {
	return fmt.Sprint(fset.Position(p))
}
