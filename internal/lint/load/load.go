// Package load type-checks packages for ddlint without depending on
// golang.org/x/tools/go/packages (unavailable in the offline build
// image). The strategy is the one the go command itself supports:
// `go list -export -deps` compiles dependencies and reports the path
// of each one's export data, and go/importer's "gc" importer consumes
// that export data through a lookup function. Targets are then parsed
// from source with comments (the analyzers need directive and // want
// comments) and type-checked against the dependency exports.
//
// Loading is strict on purpose — the writefail philosophy applied to
// static analysis. A package that fails to list, parse, or type-check
// is an error the caller must surface as a nonzero exit, never a
// package silently skipped: a lint gate that skips what it cannot
// load reports a clean tree it never looked at.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, fully type-checked target.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *listError
	DepsErrors []*listError
}

type listError struct {
	Err string
}

// ModuleRoot returns the directory containing go.mod — the directory
// all load patterns are resolved against, so ddlint behaves the same
// from any working directory.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("load: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", errors.New("load: not inside a module (go env GOMOD is empty)")
	}
	return filepath.Dir(gomod), nil
}

// Load lists, parses, and type-checks the non-test sources of every
// package matched by patterns (resolved from the module root). Any
// package that cannot be fully loaded makes the whole call fail.
func Load(patterns ...string) ([]*Package, error) {
	root, err := ModuleRoot()
	if err != nil {
		return nil, err
	}
	listed, err := goList(root, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listPackage
	var loadErrs []string
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Error != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", lp.ImportPath, lp.Error.Err))
		}
		for _, de := range lp.DepsErrors {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", lp.ImportPath, de.Err))
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	if len(loadErrs) > 0 {
		sort.Strings(loadErrs)
		return nil, fmt.Errorf("load: %s", strings.Join(loadErrs, "; "))
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("load: no packages matched %v", patterns)
	}
	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := check(lp.ImportPath, lp.Dir, sourceFiles(lp), exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Dir loads a single directory of Go files as a package with the given
// import path, resolving its imports through `go list -export`. This
// is the fixture path: analysistest loads testdata packages under a
// caller-chosen import path so scope-sensitive analyzers (ddclock's
// deterministic-package list, ddoutfile's cmd/ prefix) see the path
// shape they enforce against.
func Dir(dir, pkgPath string) (*Package, error) {
	root, err := ModuleRoot()
	if err != nil {
		return nil, err
	}
	if !filepath.IsAbs(dir) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		dir = abs
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	asts, err := parseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	exports, err := exportsFor(root, imports(asts))
	if err != nil {
		return nil, err
	}
	return typeCheck(pkgPath, dir, fset, asts, exports)
}

func sourceFiles(lp *listPackage) []string {
	files := make([]string, 0, len(lp.GoFiles))
	for _, f := range lp.GoFiles {
		files = append(files, filepath.Join(lp.Dir, f))
	}
	return files
}

func goList(root string, args []string) ([]*listPackage, error) {
	cmdArgs := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Incomplete,Error,DepsErrors",
	}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %w: %s",
			strings.Join(args, " "), err, strings.TrimSpace(stderr.String()))
	}
	var out []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := &listPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// exportsFor resolves export data for a set of import paths (and their
// transitive dependencies). Unlike Load, the named packages themselves
// are dependencies here, so their own exports are required too.
func exportsFor(root string, paths []string) (map[string]string, error) {
	exports := map[string]string{}
	if len(paths) == 0 {
		return exports, nil
	}
	listed, err := goList(root, paths)
	if err != nil {
		return nil, err
	}
	var loadErrs []string
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Error != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", lp.ImportPath, lp.Error.Err))
		}
	}
	if len(loadErrs) > 0 {
		sort.Strings(loadErrs)
		return nil, fmt.Errorf("load: %s", strings.Join(loadErrs, "; "))
	}
	return exports, nil
}

func imports(files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "unsafe" || seen[path] { // the importer resolves unsafe itself
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

func parseFiles(fset *token.FileSet, files []string) ([]*ast.File, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		asts = append(asts, f)
	}
	return asts, nil
}

func check(pkgPath, dir string, files []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	asts, err := parseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	return typeCheck(pkgPath, dir, fset, asts, exports)
}

func typeCheck(pkgPath, dir string, fset *token.FileSet, asts []*ast.File, exports map[string]string) (*Package, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	var typeErrs []string
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(pkgPath, fset, asts, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load: type-checking %s: %s", pkgPath, strings.Join(typeErrs, "; "))
	}
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     asts,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
