package load

import (
	"os/exec"
	"strings"
	"testing"
)

func TestLoadPackage(t *testing.T) {
	pkgs, err := Load("./internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("expected 1 package, got %d", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.PkgPath != "ddpolice/internal/rng" {
		t.Errorf("PkgPath = %q", pkg.PkgPath)
	}
	if pkg.Types.Scope().Lookup("SubSeed") == nil {
		t.Error("type-checked package is missing SubSeed")
	}
	if len(pkg.TypesInfo.Uses) == 0 {
		t.Error("TypesInfo.Uses is empty; analyzers need full type info")
	}
}

// A package that does not type-check must fail the whole load — the
// writefail philosophy: a lint gate that skips what it cannot see
// reports a clean tree it never inspected.
func TestLoadTypeErrorFails(t *testing.T) {
	_, err := Load("./internal/lint/testdata/src/brokenload")
	if err == nil {
		t.Fatal("expected an error loading a package with type errors")
	}
	if !strings.Contains(err.Error(), "brokenload") {
		t.Errorf("error does not name the broken package: %v", err)
	}
}

// Lint fixtures live under testdata so the tier-1 gate never builds
// them: `go build ./...` and `go test ./...` must not see a package
// seeded with violations (brokenload does not even compile).
func TestFixturesExcludedFromTier1(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "list", "./...")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if strings.Contains(line, "/testdata/") {
			t.Errorf("tier-1 package pattern matches a lint fixture: %s", line)
		}
	}
}
