// Package analysis is a stdlib-only mirror of the
// golang.org/x/tools/go/analysis API surface that ddlint's analyzers
// are written against. The container this repo builds in is offline,
// so the real x/tools module cannot be a dependency; the subset here
// (Analyzer, Pass, Diagnostic, a Run driver) keeps the analyzers
// source-compatible with the upstream shape should the dependency ever
// become available — an analyzer is a name, a doc string, and a Run
// function over a type-checked package.
//
// The driver layers the repo's //ddlint:allow escape hatch on top:
// a diagnostic whose line (or the line above it) carries a well-formed
// allow directive for the reporting analyzer is suppressed. Bare or
// malformed directives never suppress anything — the ddallow analyzer
// rejects them — so every suppression in the tree is a reviewed one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ddpolice/internal/lint/directive"
)

// Analyzer describes one static check. Name doubles as the directive
// token's "dd"-stripped prefix: //ddlint:allow clock suppresses
// ddclock findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// AllowToken is the token that names this analyzer in a
// //ddlint:allow directive (the analyzer name without the dd prefix).
func (a *Analyzer) AllowToken() string {
	return strings.TrimPrefix(a.Name, "dd")
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags  []Diagnostic
	allows map[string]map[int]directive.Allow
}

// Diagnostic is one finding, anchored to a position in the package.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding unless a reviewed //ddlint:allow directive
// for this analyzer covers the line (trailing on the same line, or on
// the line immediately above — the tail of a doc comment counts).
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

func (p *Pass) allowedAt(position token.Position) bool {
	lines, ok := p.allows[position.Filename]
	if !ok {
		return false
	}
	token := p.Analyzer.AllowToken()
	for _, line := range []int{position.Line, position.Line - 1} {
		if a, ok := lines[line]; ok && a.WellFormed() && a.Check == token {
			return true
		}
	}
	return false
}

// Run drives one analyzer over one package and returns its surviving
// diagnostics sorted by position.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		allows:    map[string]map[int]directive.Allow{},
	}
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		for _, al := range directive.Parse(fset, f) {
			if pass.allows[name] == nil {
				pass.allows[name] = map[int]directive.Allow{}
			}
			pass.allows[name][al.Line] = al
		}
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.Slice(pass.diags, func(i, j int) bool { return pass.diags[i].Pos < pass.diags[j].Pos })
	return pass.diags, nil
}
