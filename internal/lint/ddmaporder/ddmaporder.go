// Package ddmaporder flags map iteration whose body reaches an
// order-dependent sink. Go randomizes map iteration order per run, so
// a `for k := range m` that appends to the journal, commits a trace
// span, or prints into a CSV/chart/Prometheus writer emits bytes in a
// different order every execution — exactly the class of bug the
// byte-identity matrices exist to catch, found here before a test ever
// runs. The fix is the sorted-keys idiom used throughout the repo:
// collect the keys, sort them, range over the sorted slice.
//
// Aggregation inside a map range (sums, counts, building a slice that
// is sorted afterwards) is fine: only bodies that directly reach a
// sink are flagged.
package ddmaporder

import (
	"go/ast"
	"go/types"
	"strings"

	"ddpolice/internal/lint/analysis"
)

// sinkPkgs are packages whose methods commit to ordered output
// streams: one call inside a map range is an order leak.
var sinkPkgs = map[string]bool{
	"ddpolice/internal/journal": true,
	"ddpolice/internal/trace":   true,
	"ddpolice/internal/outfile": true,
	"encoding/csv":              true,
}

var Analyzer = &analysis.Analyzer{
	Name: "ddmaporder",
	Doc:  "flag map iteration that reaches an order-dependent sink (journal, trace, fmt.Fprint*, Write* on an io.Writer); sort keys first",
	Run:  run,
}

// ioWriter is a structural io.Writer used to recognize Write*-method
// sinks without importing the target's dependency graph.
var ioWriter = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	results := types.NewTuple(
		types.NewVar(0, nil, "", types.Typ[types.Int]),
		types.NewVar(0, nil, "", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, types.NewTuple(types.NewVar(0, nil, "", byteSlice)), results, false)
	fn := types.NewFunc(0, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{fn}, nil)
	iface.Complete()
	return iface
}()

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findSink(pass, rs.Body); sink != "" {
				pass.Reportf(rs.Pos(),
					"map iteration order leaks into %s; collect the keys, sort, and range over the sorted slice",
					sink)
			}
			return true
		})
	}
	return nil, nil
}

// findSink returns a description of the first order-dependent sink
// call inside body, or "".
func findSink(pass *analysis.Pass, body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil {
			return true
		}
		// Package-level print functions: fmt.Fprint*, fmt.Print*.
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			if strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print") {
				sink = "fmt." + fn.Name()
				return false
			}
		}
		// Methods on the committed-stream types (journal, trace,
		// outfile, csv), whatever the method.
		if recv := receiverPkgPath(obj); sinkPkgs[recv] {
			sink = recv + "." + obj.Name()
			return false
		}
		// Write* methods on anything that is an io.Writer — bufio
		// writers, strings.Builder, files: direct byte emission.
		if strings.HasPrefix(obj.Name(), "Write") {
			if rt := pass.TypesInfo.TypeOf(sel.X); rt != nil && implementsWriter(rt) {
				sink = types.TypeString(rt, nil) + "." + obj.Name()
				return false
			}
		}
		return true
	})
	return sink
}

func receiverPkgPath(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

func implementsWriter(t types.Type) bool {
	if types.Implements(t, ioWriter) {
		return true
	}
	return types.Implements(types.NewPointer(t), ioWriter)
}
