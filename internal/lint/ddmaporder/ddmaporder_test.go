package ddmaporder_test

import (
	"testing"

	"ddpolice/internal/lint/analysistest"
	"ddpolice/internal/lint/ddmaporder"
)

func TestDDMapOrder(t *testing.T) {
	analysistest.Run(t, ddmaporder.Analyzer, "../testdata/src/maporder", "ddpolice/internal/sim/maporderfixture")
}
