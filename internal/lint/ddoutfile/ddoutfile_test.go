package ddoutfile_test

import (
	"testing"

	"ddpolice/internal/lint/analysis"
	"ddpolice/internal/lint/analysistest"
	"ddpolice/internal/lint/ddoutfile"
	"ddpolice/internal/lint/load"
)

func TestDDOutfile(t *testing.T) {
	analysistest.Run(t, ddoutfile.Analyzer, "../testdata/src/outfile", "ddpolice/cmd/lintfixture")
}

// Library packages are out of scope: internal/outfile itself wraps
// os.Create, and the telemetry profile writer hands its file straight
// to pprof.
func TestDDOutfileScopedToCmd(t *testing.T) {
	pkg, err := load.Dir("../testdata/src/outfile", "ddpolice/internal/outfile/fixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(ddoutfile.Analyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics outside cmd/, got %d", len(diags))
	}
}
