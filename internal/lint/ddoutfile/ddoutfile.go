// Package ddoutfile enforces the sticky-error output discipline in
// the cmd tools. The failure mode (DESIGN.md §17): a tool writes its
// result artifact through a bare os.Create + deferred Close, the disk
// fills, the deferred Close swallows the error, and the tool exits
// zero with a truncated artifact that poisons everything downstream.
// internal/outfile exists so every emitted byte flows through a writer
// whose Write, Flush, and Close errors all surface; this analyzer
// makes reaching for os.Create in a cmd package a lint failure.
//
// Read-side files (os.Open) are untouched — an unchecked Close after
// reading loses nothing.
package ddoutfile

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"

	"ddpolice/internal/lint/analysis"
	"ddpolice/internal/lint/scope"
)

var Analyzer = &analysis.Analyzer{
	Name: "ddoutfile",
	Doc:  "cmd tools must write result artifacts through internal/outfile, not os.Create/os.OpenFile with an unchecked Close",
	Run:  run,
}

const writeFlags = os.O_WRONLY | os.O_RDWR | os.O_CREATE | os.O_TRUNC | os.O_APPEND

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.InCmd(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCreate(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkCloses(pass, n.Body)
				}
			case *ast.FuncLit:
				checkCloses(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkCreate flags os.Create always, and os.OpenFile when the flag
// argument requests writing (or cannot be evaluated statically).
func checkCreate(pass *analysis.Pass, call *ast.CallExpr) {
	fn := osFunc(pass, call)
	if fn == nil {
		return
	}
	switch fn.Name() {
	case "Create":
		pass.Reportf(call.Pos(),
			"result artifact: os.Create in a cmd tool; use outfile.Create / outfile.Write so write and close errors become a nonzero exit")
	case "OpenFile":
		if len(call.Args) == 3 && !opensForWrite(pass, call.Args[1]) {
			return
		}
		pass.Reportf(call.Pos(),
			"result artifact: os.OpenFile for writing in a cmd tool; use outfile.Create / outfile.Write so write and close errors become a nonzero exit")
	}
}

func opensForWrite(pass *analysis.Pass, flagArg ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[flagArg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return true // non-constant flags: assume the worst
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return true
	}
	return v&int64(writeFlags) != 0
}

// checkCloses flags f.Close() whose error is discarded (expression
// statement or defer) when f is an *os.File opened for writing in the
// same function.
func checkCloses(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, _ = st.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = st.Call
		default:
			return true
		}
		if call == nil {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" || !isOSFile(pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !writeOrigin(pass, body, obj) {
			return true
		}
		pass.Reportf(call.Pos(),
			"unchecked Close on a write file: a deferred write error vanishes here; use outfile.Create (sticky-error Close) or check the Close error")
		return true
	})
}

// writeOrigin reports whether obj is assigned from os.Create or a
// writing os.OpenFile anywhere in body.
func writeOrigin(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := osFunc(pass, call)
		if fn == nil {
			return true
		}
		isWrite := fn.Name() == "Create" ||
			(fn.Name() == "OpenFile" && (len(call.Args) != 3 || opensForWrite(pass, call.Args[1])))
		if !isWrite {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if pass.TypesInfo.Defs[id] == obj || pass.TypesInfo.Uses[id] == obj {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func osFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return nil
	}
	return fn
}

func isOSFile(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}
