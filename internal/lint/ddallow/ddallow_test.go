package ddallow_test

import (
	"testing"

	"ddpolice/internal/lint/analysistest"
	"ddpolice/internal/lint/ddallow"
)

func TestDDAllow(t *testing.T) {
	analysistest.Run(t, ddallow.Analyzer, "../testdata/src/allowbad", "ddpolice/internal/lint/testdata/src/allowbad")
}
