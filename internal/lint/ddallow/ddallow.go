// Package ddallow polices the escape hatch itself. A //ddlint:allow
// directive only suppresses a finding when it names a known check and
// carries a reason behind the -- separator; this analyzer reports the
// ones that don't — bare allows, missing reasons, unknown check names.
// Without it, a malformed allow would fail silently in the worst way:
// the author believes the site is waived, the directive suppresses
// nothing, and the disagreement surfaces only when the underlying
// analyzer fires. With it, a malformed allow is itself a finding, so
// the gate and the author can never disagree about what is waived.
//
// ddallow has no escape hatch of its own: its findings cannot be
// suppressed.
package ddallow

import (
	"sort"
	"strings"

	"ddpolice/internal/lint/analysis"
	"ddpolice/internal/lint/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "ddallow",
	Doc:  "every //ddlint:allow must name a known check and carry a reason (//ddlint:allow <check> -- <reason>)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, a := range directive.Parse(pass.Fset, f) {
			switch {
			case a.Check == "":
				pass.Reportf(a.Pos,
					"bare //ddlint:allow: name the check and the reviewed reason (//ddlint:allow <check> -- <reason>)")
			case !directive.Known[a.Check]:
				pass.Reportf(a.Pos,
					"unknown ddlint check %q in //ddlint:allow (known: %s)", a.Check, knownList())
			case !a.HasSep || a.Reason == "":
				pass.Reportf(a.Pos,
					"bare //ddlint:allow %s: a reviewed reason is required (//ddlint:allow %s -- <reason>)", a.Check, a.Check)
			}
		}
	}
	return nil, nil
}

func knownList() string {
	names := make([]string, 0, len(directive.Known))
	for name := range directive.Known {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
