GO ?= go

.PHONY: ci lint build vet ddlint staticcheck test race racesmoke chaos smoke writefail bench benchsmoke benchgo telemetry

# ci is the gate: static checks, full build, full tests, then a short
# race pass over the packages with real concurrency (the live TCP node
# and the parallel replica runner), then the full-package race smoke
# over the engine/sim/gnet suites (catches data races in the sharded
# proposal phase that the scoped -run regex would skip), then the chaos
# pass (fault injection, reconnect supervision, transient-dial
# recovery), then the metrics smoke (a live ddnode answering /metrics
# and /healthz), then a one-iteration pass over the pinned benchmark
# suite (exercises every bench fixture; no timing gate, no BENCH.json
# update).
ci: lint build test race racesmoke chaos smoke writefail benchsmoke

build:
	$(GO) build ./...

# lint is the full static-analysis gate (DESIGN.md §18): go vet, then
# the ddlint determinism analyzers, then pinned staticcheck. Every leg
# runs unconditionally — there is deliberately no PATH-probe-and-skip
# path left; a static gate that cannot run must fail loudly (the
# writefail philosophy), never report a clean tree it did not inspect.
lint: vet ddlint staticcheck

vet:
	$(GO) vet ./...

# ddlint runs the house determinism analyzers (ddclock, ddrand,
# ddmaporder, ddnilgate, ddoutfile, ddallow) over the whole module.
# Exit 1 = findings, exit 2 = a package failed to load or type-check
# (a hard failure, not a skip).
ddlint:
	$(GO) run ./cmd/ddlint ./...

# staticcheck is hermetic: the release is pinned here (module version
# and the matching -version string) and executed via `go run
# module@version`, so the gate runs the exact same check set on every
# machine with no preinstalled binary. A PATH binary is used only as a
# fast path when it matches the pin exactly; any mismatch falls back to
# the pinned `go run`, so a drive-by upgrade can shift nothing. The pin
# lives here rather than as a go.mod tool dependency because go.mod
# must stay dependency-free for the offline hermetic build; in a fully
# offline environment with no module cache this target fails loudly —
# intentionally, there is no silent-skip path (`make vet ddlint` still
# covers the house rules offline).
STATICCHECK_VERSION ?= 2024.1
STATICCHECK_MODVER ?= v0.5.0
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1 && staticcheck -version 2>/dev/null | grep -q "$(STATICCHECK_VERSION)"; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: running pinned $(STATICCHECK_VERSION) via $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_MODVER)"; \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_MODVER) ./...; \
	fi

test:
	$(GO) test ./...

# The race pass is scoped to the concurrency-heavy suites so ci stays
# fast: gnet's monitor/telemetry tests exercise transient dials and the
# registry from many goroutines; sim's merge/telemetry tests cover the
# parallel replica fan-out; the histogram and journal suites hammer
# their instruments from many writers.
race:
	$(GO) test -race -run 'Telemetry|Monitor|Evaluation|Duplicate|MergeResults|Averaged|Parallel|Histogram|Journal' ./internal/gnet/ ./internal/sim/ ./internal/telemetry/ ./internal/journal/

# racesmoke runs the flood/sim/gnet/overload suites in full under the
# race detector: the sharded proposal phase (flood.Engine.PrewarmTrees
# and the sim byte-identity matrix at 2/4/8 shards) only races when
# whole ticks run, which the scoped `race` regex above does not cover;
# the gnet suite includes the overload chaos cases (quarantine under
# flood, degraded mode, dual-queue send pumps); metricsrv's concurrent
# scrape-vs-churn test covers the exposition plane's snapshot paths.
racesmoke:
	$(GO) test -race ./internal/flood/ ./internal/sim/ ./internal/gnet/ ./internal/overload/ ./internal/capacity/ ./internal/metricsrv/

# The chaos pass runs the fault-injection suites under the race
# detector: injected resets with reconnect backoff, cut-vs-crash
# provenance, goroutine-leak regression, and the 8-node lossy overlay.
chaos:
	$(GO) vet ./internal/faults/
	$(GO) test -race -run 'Chaos|Reconnect|Transient' ./internal/gnet/...

# The smoke pass boots a real ddnode with the exposition plane on and
# asserts /metrics serves non-empty Prometheus text and /healthz is ok.
smoke:
	./scripts/metrics_smoke.sh

# writefail asserts every cmd tool exits nonzero when its output file
# write fails (injected via /dev/full): a truncated artifact reported
# as success poisons everything downstream.
writefail:
	./scripts/writefail_smoke.sh

# bench regenerates the committed perf trajectory (BENCH.json) from the
# pinned suite in cmd/ddbench and enforces the derived gates: the
# traversal-cache speedup (cached vs uncached 2k-peer tick loop must
# stay >= 1.5x), the sharded-tick speedup (serial vs 4-shard 10k
# churn+attack loop, floor derated to GOMAXPROCS — see cmd/ddbench),
# the nt_flood_delivery robustness floor (control delivery >= 0.95
# under a 3x flood with the overload plane on), the trace_overhead
# ceiling (tick loop with a sample-rate-0 tracer <= 1.03x untraced),
# and the tick_100k_allocs_per_peer ceiling (steady 100k-peer loop must
# stay O(active peers) in per-tick allocations, <= 0.10 per peer).
# It also writes the timestamped BENCH_PR9.json snapshot. Timings are
# machine-relative: compare the derived ratios across commits, not raw
# ns across machines.
bench:
	$(GO) run ./cmd/ddbench -out BENCH.json -gate

# benchsmoke runs every benchmark fixture once, with no warmup, no gate
# and no snapshot — a compile-and-execute check for ci, cheap enough to
# run always.
benchsmoke:
	$(GO) run ./cmd/ddbench -quick -out /tmp/BENCH.quick.json

# benchgo runs the per-figure go test benchmarks (paper regeneration
# paths); the pinned perf trajectory lives in `make bench` / BENCH.json.
benchgo:
	$(GO) test -bench . -benchtime 1x ./...

telemetry:
	$(GO) run ./cmd/ddexp -fig table1 -telemetry
