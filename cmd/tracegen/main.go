// Command tracegen synthesizes and analyzes query trace logs in the
// format of the paper's monitoring-node experiment (§2.3: a modified
// LimeWire super-node logged 13,075,339 queries in 24 hours; the DDoS
// agent prototype replays such logs).
//
// Generate:
//
//	tracegen -out trace.log.gz -peers 2000 -rate 0.3 -duration 1h
//
// Analyze:
//
//	tracegen -analyze trace.log.gz
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"ddpolice/internal/outfile"
	"ddpolice/internal/rng"
	"ddpolice/internal/workload"
)

func main() {
	var (
		out      = flag.String("out", "", "output trace file (.gz enables compression)")
		analyze  = flag.String("analyze", "", "trace file to analyze instead of generating")
		peers    = flag.Int("peers", 2000, "number of issuing peers")
		rate     = flag.Float64("rate", 0.3, "queries per minute per peer")
		duration = flag.Duration("duration", time.Hour, "trace duration")
		objects  = flag.Int("objects", 10000, "catalog size")
		zipf     = flag.Float64("zipf", 0.8, "popularity exponent")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	switch {
	case *analyze != "":
		if err := analyzeTrace(*analyze, os.Stdout); err != nil {
			fatal(err)
		}
	case *out != "":
		if err := generate(*out, *peers, *rate, *duration, *objects, *zipf, *seed); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func generate(path string, peers int, rate float64, duration time.Duration, objects int, zipf float64, seed uint64) error {
	src := rng.New(seed)
	catCfg := workload.DefaultCatalogConfig()
	catCfg.NumObjects = objects
	catCfg.ZipfExponent = zipf
	cat, err := workload.NewCatalog(catCfg, peers, src)
	if err != nil {
		return err
	}
	var n uint64
	err = outfile.Write(path, func(w io.Writer) error {
		tw := workload.NewTraceWriter(w, strings.HasSuffix(path, ".gz"))
		n, err = workload.GenerateTrace(tw, cat, peers, rate, int(duration.Seconds()), src)
		if err != nil {
			return err
		}
		return tw.Close()
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d queries over %s from %d peers to %s\n", n, duration, peers, path)
	return nil
}

// analyzeTrace reads a trace log and writes summary statistics to w.
// A truncated or corrupt file (half-written .gz, interrupted transfer —
// routine for the multi-hour captures §2.3 describes) is not fatal:
// the clean prefix is analyzed and the truncation reported, so long
// captures keep their value. Only a file with no readable records at
// all returns an error.
func analyzeTrace(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.NewTraceReader(f, strings.HasSuffix(path, ".gz"))
	if err != nil {
		return err
	}
	defer tr.Close()

	var (
		count      uint64
		lastMS     int64
		byIssuer   = map[int32]uint64{}
		byObject   = map[int32]uint64{}
		peakPerMin uint64
		curMinute  int64 = -1
		curCount   uint64
		truncErr   error
	)
	for {
		rec, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			truncErr = err
			break
		}
		count++
		lastMS = rec.TimestampMS
		byIssuer[int32(rec.Issuer)]++
		byObject[int32(rec.Object)]++
		minute := rec.TimestampMS / 60000
		if minute != curMinute {
			if curCount > peakPerMin {
				peakPerMin = curCount
			}
			curMinute, curCount = minute, 0
		}
		curCount++
	}
	if curCount > peakPerMin {
		peakPerMin = curCount
	}
	if truncErr != nil {
		if count == 0 {
			return fmt.Errorf("no readable records: %w", truncErr)
		}
		fmt.Fprintf(w, "warning: trace truncated after %d records (%v); analyzing the clean prefix\n", count, truncErr)
	}
	fmt.Fprintf(w, "queries:        %d\n", count)
	fmt.Fprintf(w, "span:           %s\n", time.Duration(lastMS)*time.Millisecond)
	fmt.Fprintf(w, "unique issuers: %d\n", len(byIssuer))
	fmt.Fprintf(w, "unique objects: %d\n", len(byObject))
	fmt.Fprintf(w, "peak rate:      %d queries/min\n", peakPerMin)
	if lastMS > 0 && len(byIssuer) > 0 {
		perPeerPerMin := float64(count) / float64(len(byIssuer)) / (float64(lastMS) / 60000)
		fmt.Fprintf(w, "mean rate:      %.3f queries/min/peer\n", perPeerPerMin)
	}
	// Top objects: the Zipf head.
	type oc struct {
		obj int32
		n   uint64
	}
	tops := make([]oc, 0, len(byObject))
	for o, n := range byObject {
		tops = append(tops, oc{o, n})
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].n > tops[j].n })
	fmt.Fprintln(w, "top objects:")
	for i := 0; i < 5 && i < len(tops); i++ {
		fmt.Fprintf(w, "  obj%-6d %6d queries (%.2f%%)\n",
			tops[i].obj, tops[i].n, float64(tops[i].n)/float64(count)*100)
	}
	counts := make([]uint64, 0, len(byObject))
	for _, n := range byObject {
		counts = append(counts, n)
	}
	if s, err := workload.FitZipf(counts); err == nil {
		fmt.Fprintf(w, "fitted Zipf exponent: %.2f (Gnutella traces [16]: ~0.8)\n", s)
	}
	return nil
}
