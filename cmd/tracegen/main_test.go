package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestGenerateAndAnalyze(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.log.gz")
	if err := generate(path, 50, 1.0, 10*time.Minute, 500, 0.8, 7); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := analyzeTrace(path, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"queries:", "unique issuers:", "peak rate:", "top objects:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "warning:") {
		t.Fatalf("clean trace reported truncation:\n%s", out)
	}
}

// TestAnalyzeTruncatedGzip: a half-written capture must yield prefix
// statistics plus a truncation warning, not a raw decode error — long
// captures routinely die mid-write and the prefix is still valuable.
func TestAnalyzeTruncatedGzip(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log.gz")
	if err := generate(full, 50, 1.0, 10*time.Minute, 500, 0.8, 7); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.log.gz")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := analyzeTrace(trunc, &sb); err != nil {
		t.Fatalf("truncated trace not recovered: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "warning: trace truncated after") {
		t.Fatalf("no truncation warning:\n%s", out)
	}
	if !strings.Contains(out, "queries:") || strings.Contains(out, "queries:        0\n") {
		t.Fatalf("no prefix stats:\n%s", out)
	}
}

// TestAnalyzeCorruptGzip: garbage that yields no records at all is a
// hard error — there is no prefix worth reporting.
func TestAnalyzeCorruptGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.log.gz")
	if err := os.WriteFile(path, []byte("\x1f\x8b\x08\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := analyzeTrace(path, &sb); err == nil {
		t.Fatalf("corrupt header accepted:\n%s", sb.String())
	}
}
