// Command ddexp regenerates every table and figure of the paper's
// evaluation section and prints the rows/series the paper reports.
//
// Usage:
//
//	ddexp [-scale quick|paper] [-csv dir]
//	      [-fig all|5|6|9|10|11|12|13|14|freq|cheat|table1|radius|liar|ablate]
//
// At -scale paper the full regeneration takes tens of minutes on one
// core; -scale quick replays every experiment at reduced size in a few
// seconds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"ddpolice"
	"ddpolice/internal/outfile"
	"ddpolice/internal/protocol"
	"ddpolice/internal/telemetry"
	dtrace "ddpolice/internal/trace"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or paper")
	figFlag := flag.String("fig", "all", "figure to regenerate: all, 5, 6, 9, 10, 11, 12, 13, 14, freq, cheat, table1, radius, liar, ablate, baseline, blacklist, structured, faults, detect, overload, trace, scale")
	csvDir := flag.String("csv", "", "also write one CSV per figure into this directory")
	svgDir := flag.String("svg", "", "also render one SVG per figure into this directory")
	telemetryFlag := flag.Bool("telemetry", false, "run the telemetry study and print per-stage timing tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	tracePath := flag.String("trace", "", "write an execution trace to this file (go tool trace)")
	traceOut := flag.String("trace-out", "", "capture causal traces of one policed timeline run at the chosen scale (.json = Chrome/Perfetto, else NDJSON for ddtrace)")
	traceSmp := flag.Float64("trace-sample", 1.0, "head-sampling rate for -trace-out (0..1)")
	flag.Parse()

	if *cpuProfile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		deferCleanup(stop)
	}
	if *tracePath != "" {
		stop, err := telemetry.StartTrace(*tracePath)
		if err != nil {
			fatal(err)
		}
		deferCleanup(stop)
	}
	defer runCleanups()
	for _, dir := range []string{*csvDir, *svgDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
	}
	csvOut = *csvDir
	svgOut = *svgDir

	var scale ddpolice.Scale
	switch *scaleFlag {
	case "quick":
		scale = ddpolice.QuickScale()
	case "paper":
		scale = ddpolice.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := func(keys ...string) bool {
		if *figFlag == "all" {
			return true
		}
		for _, k := range keys {
			if *figFlag == k {
				return true
			}
		}
		return false
	}

	if want("table1") {
		printTable1()
	}
	if want("5", "6") {
		if err := printFig5And6(); err != nil {
			fatal(err)
		}
	}
	if want("radius") {
		if err := printRadiusStudy(scale); err != nil {
			fatal(err)
		}
	}
	if want("liar") {
		if err := printLiarStudy(scale); err != nil {
			fatal(err)
		}
	}
	if want("ablate") {
		if err := printAblationStudy(scale); err != nil {
			fatal(err)
		}
	}
	if want("baseline") {
		if err := printBaselineStudy(scale); err != nil {
			fatal(err)
		}
	}
	if want("blacklist") {
		if err := printBlacklistStudy(scale); err != nil {
			fatal(err)
		}
	}
	if want("structured") {
		if err := printStructuredStudy(scale); err != nil {
			fatal(err)
		}
	}
	if want("faults") {
		if err := printFaultsStudy(scale); err != nil {
			fatal(err)
		}
	}
	if want("detect") {
		if err := printDetectStudy(scale); err != nil {
			fatal(err)
		}
	}
	if want("overload") {
		if err := printOverloadStudy(scale); err != nil {
			fatal(err)
		}
	}
	if want("trace") {
		if err := printTraceStudy(scale); err != nil {
			fatal(err)
		}
	}
	if want("scale") {
		if err := printScaleStudy(scale); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := captureTrace(scale, *traceOut, *traceSmp); err != nil {
			fatal(err)
		}
	}
	if want("9", "10", "11") {
		if err := printFig9To11(scale); err != nil {
			fatal(err)
		}
	}
	if want("12") {
		if err := printFig12(scale); err != nil {
			fatal(err)
		}
	}
	if want("13", "14") {
		if err := printFig13And14(scale); err != nil {
			fatal(err)
		}
	}
	if want("freq") {
		if err := printFreqStudy(scale); err != nil {
			fatal(err)
		}
	}
	if want("cheat") {
		if err := printCheatStudy(scale); err != nil {
			fatal(err)
		}
	}
	if *telemetryFlag {
		if err := printTelemetryStudy(scale); err != nil {
			fatal(err)
		}
	}
}

// cleanups holds profile/trace stop functions. fatal exits with
// os.Exit, which skips deferred calls, so both the normal return path
// and fatal drain this list — otherwise a failed figure would leave a
// truncated pprof file behind.
var cleanups []func() error

func deferCleanup(fn func() error) { cleanups = append(cleanups, fn) }

func runCleanups() {
	for i := len(cleanups) - 1; i >= 0; i-- {
		if err := cleanups[i](); err != nil {
			fmt.Fprintln(os.Stderr, "ddexp:", err)
		}
	}
	cleanups = nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddexp:", err)
	runCleanups()
	os.Exit(1)
}

// csvOut and svgOut are the optional artifact output directories.
var csvOut, svgOut string

// saveSVG renders one figure when -svg is set.
func saveSVG(name string, render func(w io.Writer) error) {
	if svgOut == "" {
		return
	}
	if err := outfile.Write(svgOut+"/"+name, render); err != nil {
		fatal(err)
	}
}

// saveCSV writes one figure's CSV when -csv is set.
func saveCSV(name string, render func(w io.Writer) error) {
	if csvOut == "" {
		return
	}
	if err := outfile.Write(csvOut+"/"+name, render); err != nil {
		fatal(err)
	}
}

func section(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func printTable1() {
	section("Table 1: Neighbor_Traffic message body")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "field\tbyte offset\tsize")
	fmt.Fprintf(w, "Source IP Address\t%d\t4\n", protocol.OffsetSourceIP)
	fmt.Fprintf(w, "Suspect IP Address\t%d\t4\n", protocol.OffsetSuspectIP)
	fmt.Fprintf(w, "Source timestamp\t%d\t4\n", protocol.OffsetTimestamp)
	fmt.Fprintf(w, "# of Outgoing queries\t%d\t4\n", protocol.OffsetOutgoing)
	fmt.Fprintf(w, "# of Incoming queries\t%d\t4\n", protocol.OffsetIncoming)
	w.Flush()
	fmt.Printf("payload type 0x%02x, body %d bytes, full message %d bytes\n",
		protocol.TypeNeighborTraffic, protocol.NeighborTrafficBodySize,
		protocol.HeaderSize+protocol.NeighborTrafficBodySize)
}

func printFig5And6() error {
	pts, err := ddpolice.Fig5And6()
	if err != nil {
		return err
	}
	saveCSV("fig5_6_saturation.csv", func(w io.Writer) error { return ddpolice.SaturationCSV(w, pts) })
	saveSVG("fig5.svg", func(w io.Writer) error { return ddpolice.Fig5SVG(w, pts) })
	saveSVG("fig6.svg", func(w io.Writer) error { return ddpolice.Fig6SVG(w, pts) })
	section("Figures 5 & 6: single-peer saturation (testbed calibration)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "offered (q/min)\tprocessed (q/min)\tdrop rate (%)")
	for _, p := range pts {
		fmt.Fprintf(w, "%.0f\t%.0f\t%.1f\n", p.OfferedPerMin, p.ProcessedPerMin, p.DropRate*100)
	}
	return w.Flush()
}

func printFig9To11(scale ddpolice.Scale) error {
	pts, err := ddpolice.Fig9To11(scale)
	if err != nil {
		return err
	}
	saveCSV("fig9_10_11_sweep.csv", func(w io.Writer) error { return ddpolice.SweepCSV(w, pts) })
	saveSVG("fig9.svg", func(w io.Writer) error { return ddpolice.Fig9SVG(w, pts) })
	saveSVG("fig10.svg", func(w io.Writer) error { return ddpolice.Fig10SVG(w, pts) })
	saveSVG("fig11.svg", func(w io.Writer) error { return ddpolice.Fig11SVG(w, pts) })
	section("Figure 9: average traffic cost (messages/min)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "agents\tno attack\tDDoS, no defense\tDDoS + DD-POLICE")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.0f\n", p.Agents, p.TrafficBaseline, p.TrafficAttack, p.TrafficDefended)
	}
	w.Flush()

	section("Figure 10: average response time (s)")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "agents\tno attack\tDDoS, no defense\tDDoS + DD-POLICE")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\n", p.Agents, p.ResponseBaseline, p.ResponseAttack, p.ResponseDefended)
	}
	w.Flush()

	section("Figure 11: average success rate (%)")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "agents\tno attack\tDDoS, no defense\tDDoS + DD-POLICE\tdetections\tFN\tFP")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%d\t%d\t%d\n", p.Agents,
			p.SuccessBaseline*100, p.SuccessAttack*100, p.SuccessDefended*100,
			p.Detections, p.FalseNegatives, p.FalsePositives)
	}
	return w.Flush()
}

func printFig12(scale ddpolice.Scale) error {
	tl, err := ddpolice.Fig12(scale)
	if err != nil {
		return err
	}
	saveCSV("fig12_damage.csv", func(w io.Writer) error { return ddpolice.TimelinesCSV(w, tl) })
	saveSVG("fig12.svg", func(w io.Writer) error { return ddpolice.Fig12SVG(w, tl) })
	section(fmt.Sprintf("Figure 12: damage rate D(t) over time (%d agents)", scale.TimelineAgents))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	head := []string{"minute"}
	for _, v := range tl {
		head = append(head, v.Label)
	}
	fmt.Fprintln(w, strings.Join(head, "\t"))
	for m := 0; m < len(tl[0].Damage); m++ {
		row := []string{fmt.Sprint(m)}
		for _, v := range tl {
			if m < len(v.Damage) {
				row = append(row, fmt.Sprintf("%.1f", v.Damage[m]))
			} else {
				row = append(row, "-")
			}
		}
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	return w.Flush()
}

func printFig13And14(scale ddpolice.Scale) error {
	pts, err := ddpolice.Fig13And14(scale)
	if err != nil {
		return err
	}
	saveCSV("fig13_14_ct.csv", func(w io.Writer) error { return ddpolice.CTPointsCSV(w, pts) })
	saveSVG("fig13.svg", func(w io.Writer) error { return ddpolice.Fig13SVG(w, pts) })
	saveSVG("fig14.svg", func(w io.Writer) error { return ddpolice.Fig14SVG(w, pts) })
	section("Figures 13 & 14: errors and damage recovery time vs cut threshold")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CT\tfalse negative\tfalse positive\tfalse judgment\trecovery (min)\tstable damage (%)")
	for _, p := range pts {
		rec := fmt.Sprint(p.RecoveryMinutes)
		if p.RecoveryMinutes < 0 {
			rec = "never"
		}
		fmt.Fprintf(w, "%g\t%d\t%d\t%d\t%s\t%.1f\n",
			p.CutThreshold, p.FalseNegatives, p.FalsePositives, p.FalseJudgment, rec, p.StableDamage)
	}
	return w.Flush()
}

func printFreqStudy(scale ddpolice.Scale) error {
	pts, err := ddpolice.ExchangeFrequencyStudy(scale, []float64{1, 2, 4, 5, 10})
	if err != nil {
		return err
	}
	saveCSV("freq_study.csv", func(w io.Writer) error { return ddpolice.FreqPointsCSV(w, pts) })
	section("§3.7.1: neighbor-list exchange frequency study")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tlist msgs\tfalse negative\tfalse positive\trecovery (min)")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n",
			p.Label, p.ListMessages, p.FalseNegatives, p.FalsePositives, p.RecoveryMinutes)
	}
	return w.Flush()
}

func printCheatStudy(scale ddpolice.Scale) error {
	pts, err := ddpolice.CheatingStudy(scale)
	if err != nil {
		return err
	}
	saveCSV("cheat_study.csv", func(w io.Writer) error { return ddpolice.CheatPointsCSV(w, pts) })
	section("§3.4: Neighbor_Traffic cheating strategies")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tdetections\tfalse negative\tfalse positive\tsuccess (%)")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\n",
			p.Strategy, p.Detections, p.FalseNegatives, p.FalsePositives, p.Success*100)
	}
	return w.Flush()
}

func printTelemetryStudy(scale ddpolice.Scale) error {
	rows, err := ddpolice.TelemetryStudy(scale)
	if err != nil {
		return err
	}
	section("Run telemetry: per-stage wall-clock breakdown")
	for _, row := range rows {
		fmt.Printf("\n-- %s --\n", row.Label)
		if err := telemetry.WriteStageTable(os.Stdout, row.Stages); err != nil {
			return err
		}
		if len(row.Counters.Counters) > 0 || len(row.Counters.Gauges) > 0 {
			fmt.Println()
			if err := row.Counters.WriteTable(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

func printRadiusStudy(scale ddpolice.Scale) error {
	pts, err := ddpolice.RadiusStudy(scale)
	if err != nil {
		return err
	}
	saveCSV("radius_study.csv", func(w io.Writer) error { return ddpolice.RadiusPointsCSV(w, pts) })
	section("DD-POLICE-r: buddy groups from r-hop list propagation")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "radius\tdetections\tFN\tFP\tlist msgs\tsuccess (%)\trecovery (min)")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.1f\t%d\n",
			p.Radius, p.Detections, p.FalseNegatives, p.FalsePositives,
			p.ListMessages, p.Success*100, p.RecoveryMinutes)
	}
	return w.Flush()
}

func printLiarStudy(scale ddpolice.Scale) error {
	pts, err := ddpolice.LiarStudy(scale)
	if err != nil {
		return err
	}
	saveCSV("liar_study.csv", func(w io.Writer) error { return ddpolice.LiarPointsCSV(w, pts) })
	section("§3.1: lying about neighbor lists vs the verification check")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tdetections\tFP\tsuccess (%)\tverify msgs")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%d\n",
			p.Label, p.Detections, p.FalsePositives, p.Success*100, p.VerifyMsgs)
	}
	return w.Flush()
}

func printAblationStudy(scale ddpolice.Scale) error {
	pts, err := ddpolice.AblationStudy(scale)
	if err != nil {
		return err
	}
	saveCSV("ablation_study.csv", func(w io.Writer) error { return ddpolice.AblationPointsCSV(w, pts) })
	section("Modeling-decision ablations (DESIGN.md, Calibration)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tsuccess defended (%)\tsuccess undefended (%)\tdetections\tFN\tFP")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%d\t%d\t%d\n",
			p.Label, p.Success*100, p.SuccessNoDef*100,
			p.Detections, p.FalseNegatives, p.FalsePositives)
	}
	return w.Flush()
}

func printBaselineStudy(scale ddpolice.Scale) error {
	pts, err := ddpolice.BaselineDefenseStudy(scale)
	if err != nil {
		return err
	}
	saveCSV("baseline_study.csv", func(w io.Writer) error { return ddpolice.BaselinePointsCSV(w, pts) })
	section("Defense comparison: DD-POLICE vs fair-share load balancing [21]")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tsuccess (%)\tresponse (s)\tdetections\tFN")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%.1f\t%.3f\t%d\t%d\n",
			p.Label, p.Success*100, p.Response, p.Detections, p.FalseNegatives)
	}
	return w.Flush()
}

func printBlacklistStudy(scale ddpolice.Scale) error {
	pts, err := ddpolice.BlacklistStudy(scale)
	if err != nil {
		return err
	}
	saveCSV("blacklist_study.csv", func(w io.Writer) error { return ddpolice.BlacklistPointsCSV(w, pts) })
	section("Future work (§5): blacklisting rejoining agents")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tstable damage (%)\tdetections\tsuccess (%)")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%.1f\t%d\t%.1f\n", p.Label, p.StableDamage, p.Detections, p.Success*100)
	}
	return w.Flush()
}

func printFaultsStudy(scale ddpolice.Scale) error {
	pts, err := ddpolice.FaultsStudy(scale, []float64{0, 0.1, 0.2, 0.4})
	if err != nil {
		return err
	}
	saveCSV("faults_study.csv", func(w io.Writer) error { return ddpolice.FaultPointsCSV(w, pts) })
	saveSVG("faults.svg", func(w io.Writer) error { return ddpolice.FaultsSVG(w, pts) })
	section("Fault plane: judgment quality under control loss x churn")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "control loss\tchurn\tdetections\tFN\tFP\tfalse judgment\tsuccess (%)")
	for _, p := range pts {
		fmt.Fprintf(w, "%.0f%%\t%s\t%d\t%d\t%d\t%d\t%.1f\n",
			p.ControlLoss*100, p.Churn, p.Detections,
			p.FalseNegatives, p.FalsePositives, p.FalseJudgment, p.Success*100)
	}
	return w.Flush()
}

func printOverloadStudy(scale ddpolice.Scale) error {
	pts, err := ddpolice.OverloadStudy(scale, []float64{1, 3, 10})
	if err != nil {
		return err
	}
	saveCSV("overload_study.csv", func(w io.Writer) error { return ddpolice.OverloadPointsCSV(w, pts) })
	saveSVG("overload.svg", func(w io.Writer) error { return ddpolice.OverloadSVG(w, pts) })
	section("Overload plane: control delivery and time-to-cut vs offered-over-capacity")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "factor\tplane\tcontrol delivery (%)\tquery shed (%)\ttime to cut (s)\tdetections\tdegraded")
	for _, p := range pts {
		plane := "off"
		if p.Plane {
			plane = "on"
		}
		cut := "never"
		if p.TimeToCutSec >= 0 {
			cut = fmt.Sprintf("%.0f", p.TimeToCutSec)
		}
		fmt.Fprintf(w, "%.0fx\t%s\t%.1f\t%.1f\t%s\t%d\t%d\n",
			p.Factor, plane, p.ControlDelivery*100, p.QueryShedRate*100,
			cut, p.Detections, p.Degraded)
	}
	return w.Flush()
}

// printScaleStudy runs the peers-vs-tick-latency sweep. The paper
// scale pushes to 100k peers (a couple of minutes of wall clock); the
// quick scale stops at 25k so `-fig all` stays fast.
func printScaleStudy(scale ddpolice.Scale) error {
	peerCounts, durationSec := []int{2000, 10000, 25000}, 60
	if scale.DurationSec >= 1800 {
		peerCounts, durationSec = []int{2000, 10000, 50000, 100000}, 120
	}
	pts, err := ddpolice.ScaleStudy(peerCounts, durationSec, scale.Seed)
	if err != nil {
		return err
	}
	saveCSV("scale_study.csv", func(w io.Writer) error { return ddpolice.ScalePointsCSV(w, pts) })
	saveSVG("scale.svg", func(w io.Writer) error { return ddpolice.ScaleSVG(w, pts) })
	section("Scale: tick latency and allocation vs overlay size (steady loop)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "peers\tms/tick\tallocs/tick\tKB/tick\tpeers/sec")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.2f\t%.0f\t%.0f\t%.0f\n",
			p.Peers, p.NsPerTick/1e6, p.AllocsPerTick, p.BytesPerTick/1024, p.PeersPerSec)
	}
	return w.Flush()
}

func printTraceStudy(scale ddpolice.Scale) error {
	pts, err := ddpolice.TraceStudy(scale)
	if err != nil {
		return err
	}
	saveCSV("trace_study.csv", func(w io.Writer) error { return ddpolice.TracePointsCSV(w, pts) })
	saveSVG("trace.svg", func(w io.Writer) error { return ddpolice.TraceSVG(w, pts) })
	section("Causal traces: detection critical path and flood fan-out vs agents")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "agents\ttraces\tspans\twarnings\tcuts\treq (s)\tindicator (s)\tcut (s)\thops/query\tmax depth")
	for _, p := range pts {
		stage := func(v float64) string {
			if v < 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", v)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%s\t%s\t%s\t%.1f\t%d\n",
			p.Agents, p.Traces, p.Spans, p.Warnings, p.Cuts,
			stage(p.MeanRequest), stage(p.MeanIndic), stage(p.MeanCut),
			p.HopsPerQuery, p.MaxDepth)
	}
	return w.Flush()
}

// captureTrace runs one policed timeline run at the chosen scale with
// the causal tracer attached and writes the span stream by extension.
func captureTrace(scale ddpolice.Scale, path string, sample float64) error {
	cfg := ddpolice.DefaultConfig()
	cfg.NumPeers = scale.NumPeers
	cfg.DurationSec = scale.DurationSec
	cfg.AttackStartSec = scale.AttackStartSec
	cfg.Seed = scale.Seed
	cfg.NumAgents = scale.TimelineAgents
	cfg.PoliceEnabled = true
	tr := dtrace.New(sample, 0)
	cfg.Trace = tr
	if _, err := ddpolice.Run(cfg); err != nil {
		return err
	}
	err := outfile.Write(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".json") {
			return tr.WriteChromeTrace(w)
		}
		return tr.WriteNDJSON(w)
	})
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d spans in %d traces -> %s\n", tr.Len(), tr.TraceCount(), path)
	return nil
}

func printDetectStudy(scale ddpolice.Scale) error {
	rep, err := ddpolice.DetectStudy(scale)
	if err != nil {
		return err
	}
	saveCSV("detect_timelines.csv", func(w io.Writer) error { return ddpolice.DetectPointsCSV(w, rep.Points) })
	saveCSV("detect_latency_cdf.csv", func(w io.Writer) error { return ddpolice.DetectCDFCSV(w, rep) })
	saveCSV("detect_overhead.csv", func(w io.Writer) error { return ddpolice.DetectOverheadCSV(w, rep) })
	saveSVG("detect_latency_cdf.svg", func(w io.Writer) error { return ddpolice.DetectCDFSVG(w, rep) })
	section("Detection pipeline: journal-reconstructed timelines")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "suspect\tagent\tflood start\tfirst warning\tquorum\tcut\tlatency (s)\tNT reports\tNT timeouts")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%d\t%v\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%d\t%d\n",
			p.Suspect, p.Agent, p.FloodStart, p.FirstWarning,
			p.QuorumAt, p.CutAt, p.LatencySec, p.Reports, p.Timeouts)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("journal: %d events (%d dropped); %d cuts; %d NT msgs (%.1f per cut)\n",
		rep.Events, rep.Dropped, rep.Cuts, rep.NTMessages, rep.NTPerCut)
	if n := len(rep.CDF); n > 0 {
		fmt.Printf("latency p50 %.0fs, p90 %.0fs, max %.0fs over %d cut suspects\n",
			rep.CDF[(n-1)/2].LatencySec, rep.CDF[(n-1)*9/10].LatencySec,
			rep.CDF[n-1].LatencySec, n)
	}
	return nil
}

func printStructuredStudy(scale ddpolice.Scale) error {
	pts, err := ddpolice.StructuredStudy(scale)
	if err != nil {
		return err
	}
	saveCSV("structured_study.csv", func(w io.Writer) error { return ddpolice.StructuredPointsCSV(w, pts) })
	section("Future work (§5): overlay DDoS on a structured (Chord) P2P")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "agents\tunstructured success (%)\tstructured success (%)\tDHT mean hops")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\n",
			p.Agents, p.UnstructuredSuccess*100, p.StructuredSuccess*100, p.StructuredMeanHops)
	}
	return w.Flush()
}
