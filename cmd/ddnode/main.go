// Command ddnode runs a live Gnutella-lite node (internal/gnet): it
// listens for peers, floods queries, and — with -police — defends
// itself with DD-POLICE. With -attack it behaves as the paper's DDoS
// agent prototype (§2.3), replaying a query trace at a fixed rate.
//
// A three-terminal reproduction of the paper's testbed (Figs 4-6):
//
//	ddnode -id 3 -listen 127.0.0.1:7003 -share "prize"          # peer C
//	ddnode -id 2 -listen 127.0.0.1:7002 -connect 127.0.0.1:7003 \
//	       -capacity 15000                                      # peer B
//	ddnode -id 1 -listen 127.0.0.1:7001 -connect 127.0.0.1:7002 \
//	       -attack -rate 29000 -trace trace.log                 # peer A
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ddpolice/internal/gnet"
	"ddpolice/internal/journal"
	"ddpolice/internal/metricsrv"
	"ddpolice/internal/outfile"
	"ddpolice/internal/police"
	"ddpolice/internal/telemetry"
	dtrace "ddpolice/internal/trace"
	"ddpolice/internal/workload"
)

func main() {
	var (
		id       = flag.Int("id", 1, "node id (overlay identity)")
		listen   = flag.String("listen", "127.0.0.1:0", "listen address")
		connect  = flag.String("connect", "", "comma-separated peer addresses to dial")
		capacity = flag.Float64("capacity", 15000, "query processing capacity (queries/min)")
		share    = flag.String("share", "", "comma-separated shared object keywords")
		policed  = flag.Bool("police", false, "enable DD-POLICE")
		ct       = flag.Float64("ct", 5, "DD-POLICE cut threshold")
		attack   = flag.Bool("attack", false, "run as a DDoS agent (flood bogus queries)")
		rate     = flag.Float64("rate", 20000, "attack send rate (queries/min)")
		trace    = flag.String("trace", "", "query trace to replay while attacking (tracegen format)")
		stats    = flag.Duration("stats", 10*time.Second, "stats print interval")
		query    = flag.String("query", "", "periodically search for this keyword")
		queryIv  = flag.Duration("query-interval", 10*time.Second, "interval between -query searches")
		metrics  = flag.String("metrics", "", "serve /metrics, /healthz, /journal and /trace on this address")
		jcap     = flag.Int("journal-cap", 4096, "event journal ring capacity")
		traceOut = flag.String("trace-out", "", "dump causal traces here on shutdown (.json = Chrome/Perfetto, else NDJSON)")
		traceSmp = flag.Float64("trace-sample", 1.0, "head-sampling rate for traces (0..1)")
	)
	flag.Parse()

	cfg := gnet.DefaultConfig(fmt.Sprintf("node-%d", *id))
	cfg.NodeID = int32(*id)
	cfg.ListenAddr = *listen
	cfg.CapacityPerMin = *capacity
	cfg.Seed = uint64(*id)
	if *share != "" {
		cfg.SharedObjects = strings.Split(*share, ",")
	}
	if *policed {
		pc := police.DefaultConfig()
		pc.CutThreshold = *ct
		cfg.Police = &pc
	}
	if *metrics != "" {
		cfg.Telemetry = telemetry.New()
		cfg.Journal = journal.New(*jcap)
		cfg.Journal.AttachTelemetry(cfg.Telemetry)
	}
	if *traceOut != "" || *metrics != "" {
		cfg.Tracer = dtrace.New(*traceSmp, 0)
	}
	node, err := gnet.NewNode(cfg)
	if err != nil {
		fatal(err)
	}
	defer node.Close()
	if *metrics != "" {
		srv, err := metricsrv.Serve(*metrics, metricsrv.Config{
			Registry: cfg.Telemetry,
			Journal:  cfg.Journal,
			Tracer:   cfg.Tracer,
			Health: func() map[string]any {
				st := node.Stats()
				return map[string]any{
					"node_id":   *id,
					"neighbors": len(node.Neighbors()),
					"cuts":      len(st.Disconnects),
				}
			},
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s\n", srv.Addr())
	}
	fmt.Printf("%s listening on %s (capacity %.0f q/min, police=%v)\n",
		node.Name(), node.Addr(), *capacity, *policed)

	for _, addr := range strings.Split(*connect, ",") {
		if addr == "" {
			continue
		}
		if err := node.Connect(addr); err != nil {
			fatal(err)
		}
		fmt.Printf("connected to %s\n", addr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *attack {
		go runAgent(node, *rate, *trace, stop)
	}
	if *query != "" {
		go runSearcher(node, *query, *queryIv, stop)
	}

	ticker := time.NewTicker(*stats)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("shutting down")
			if *traceOut != "" {
				if err := dumpTrace(cfg.Tracer, *traceOut); err != nil {
					// A truncated trace reported as success poisons
					// every later analysis step; die loudly instead.
					node.Close()
					fatal(fmt.Errorf("trace dump: %w", err))
				}
				fmt.Printf("trace: %d spans -> %s\n", cfg.Tracer.Len(), *traceOut)
			}
			return
		case <-ticker.C:
			st := node.Stats()
			fmt.Printf("recv=%d processed=%d dropped=%d fwd=%d dup=%d hits(tx/rx)=%d/%d cuts=%d\n",
				st.QueriesReceived, st.QueriesProcessed, st.QueriesDropped,
				st.QueriesForwarded, st.DupDropped, st.HitsSent, st.HitsReceived,
				len(st.Disconnects))
			for _, d := range st.Disconnects {
				fmt.Printf("  cut %s: %s\n", d.Peer, d.Reason)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddnode:", err)
	os.Exit(1)
}

// dumpTrace writes the node's collected spans by output extension:
// .json gets Chrome trace-event JSON (load in Perfetto), anything else
// NDJSON (feed to ddtrace).
func dumpTrace(tr *dtrace.Tracer, path string) error {
	return outfile.Write(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".json") {
			return tr.WriteChromeTrace(w)
		}
		return tr.WriteNDJSON(w)
	})
}

// runSearcher periodically issues a search and reports the outcome.
func runSearcher(node *gnet.Node, keywords string, interval time.Duration, stop <-chan os.Signal) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			start := time.Now()
			hits, err := node.IssueQuery(keywords)
			if err != nil {
				fmt.Printf("query %q: %v\n", keywords, err)
				continue
			}
			select {
			case <-hits:
				fmt.Printf("query %q answered in %v\n", keywords, time.Since(start).Round(time.Millisecond))
			case <-time.After(interval / 2):
				fmt.Printf("query %q: no answer\n", keywords)
			}
		}
	}
}

// runAgent floods bogus queries at the configured rate, replaying a
// trace file if given (the paper's agent "reads queries from the log
// file collected by the monitoring node and issues these queries").
func runAgent(node *gnet.Node, ratePerMin float64, tracePath string, stop <-chan os.Signal) {
	var keywords []string
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			fatal(err)
		}
		tr, err := workload.NewTraceReader(f, strings.HasSuffix(tracePath, ".gz"))
		if err != nil {
			fatal(err)
		}
		for len(keywords) < 100000 {
			rec, err := tr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			keywords = append(keywords, rec.Keywords)
		}
		tr.Close()
		f.Close()
		fmt.Printf("agent: loaded %d trace queries\n", len(keywords))
	}
	interval := time.Duration(float64(time.Minute) / ratePerMin)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	i := 0
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			kw := fmt.Sprintf("bogus-%d", i)
			if len(keywords) > 0 {
				kw = keywords[i%len(keywords)]
			}
			node.SendRawQuery(kw)
			i++
		}
	}
}
